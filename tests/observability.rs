//! Workspace-level observability contracts: the metrics layer must be
//! deterministic where the solvers are deterministic, and must never
//! change a solver result.
//!
//! The metric registry is process-global, so every test that enables
//! recording serializes behind one mutex (this file is its own test
//! binary, and metrics stay disabled everywhere else, so no other test
//! can interleave).

use proptest::prelude::*;
use std::sync::Mutex;
use vertical_power_delivery::core::{
    run_tolerance, Architecture, DroopSweep, DroopSweepReport, DroopSweepSettings, FaultScenario,
    FaultSweep, McSettings, SharingSolver,
};
use vertical_power_delivery::obs;
use vertical_power_delivery::prelude::*;

/// Serializes tests that enable the process-global registry.
fn lock() -> std::sync::MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn paper() -> (SystemSpec, Calibration) {
    (SystemSpec::paper_default(), Calibration::paper_default())
}

/// Runs one MC sweep plus one fault sweep at `threads` and returns the
/// metric snapshot of just that work.
fn instrumented_run(threads: usize) -> obs::MetricsSnapshot {
    let (spec, calib) = paper();
    obs::reset();
    run_tolerance(
        Architecture::InterposerEmbedded,
        VrTopologyKind::Dsch,
        &spec,
        &calib,
        &McSettings {
            samples: 24,
            threads,
            ..McSettings::default()
        },
    )
    .unwrap();
    let sweep = FaultSweep::new(
        Architecture::InterposerPeriphery,
        VrTopologyKind::Dsch,
        &spec,
        &calib,
    )
    .unwrap();
    sweep
        .run(&FaultScenario::n_minus_1(sweep.vr_count()), threads)
        .unwrap();
    obs::snapshot()
}

/// The sweeps are bitwise thread-count-independent, so every counter
/// that tallies *work done* (solves, iterations, fallbacks) must be
/// identical serial vs parallel. Timing histograms and gauges are
/// wall-clock and legitimately differ.
#[test]
fn work_counters_are_thread_count_deterministic() {
    let _gate = lock();
    obs::set_enabled(true);
    let serial = instrumented_run(1);
    let parallel = instrumented_run(4);
    obs::set_enabled(false);

    for name in [
        "cg.solves",
        "cg.iterations",
        "cg.warm_hits",
        "solve.solves",
        "solve.warm_cg",
        "solve.cold_restart",
        "solve.dense_lu",
        "solve.stagnations",
        "plan.solves",
        "plan.restamps",
        "grid.solves",
        "mc.runs",
        "mc.samples",
        "faults.runs",
        "faults.scenarios",
        "faults.fallbacks",
        "faults.stagnations",
        "par.jobs",
        "par.tasks",
    ] {
        assert_eq!(
            serial.counter(name),
            parallel.counter(name),
            "counter {name} differs between serial and parallel runs"
        );
    }
    // And the sweeps actually ran through the instrumented paths.
    assert_eq!(serial.counter("mc.samples"), Some(24));
    assert_eq!(serial.counter("faults.runs"), Some(1));
    assert!(serial.counter("cg.iterations").unwrap_or(0) > 0);
    // The iteration histogram's totals agree with the counters.
    let hist = serial
        .histogram("cg.iterations_per_solve")
        .expect("histogram registered");
    assert_eq!(Some(hist.count), serial.counter("cg.solves"));
    assert_eq!(Some(hist.sum), serial.counter("cg.iterations"));
}

/// A snapshot of the same seeded run twice must be identical in every
/// deterministic dimension (full counter list, not a hand-picked set).
#[test]
fn same_seed_reruns_reproduce_every_counter() {
    let _gate = lock();
    obs::set_enabled(true);
    let a = instrumented_run(1);
    let b = instrumented_run(1);
    obs::set_enabled(false);
    assert_eq!(a.counters, b.counters);
}

/// One droop sweep (3 amplitudes × 2 slews on the A2 ladder) at
/// `threads`, instrumented; returns the report and its metric snapshot.
fn instrumented_droop_sweep(threads: usize) -> (DroopSweepReport, obs::MetricsSnapshot) {
    let spec = SystemSpec::paper_default();
    let sweep = DroopSweep::for_architecture(
        Architecture::InterposerEmbedded,
        &spec,
        Seconds::from_microseconds(20.0),
        Seconds::from_nanoseconds(50.0),
    )
    .unwrap();
    let mut settings = DroopSweepSettings::paper_default(&spec, 3, 2).unwrap();
    settings.threads = threads;
    obs::reset();
    let report = sweep.run(&settings).unwrap();
    (report, obs::snapshot())
}

/// The droop-sweep engine's thread count is unobservable in both the
/// result (bitwise) and every work counter it emits: workers clone a
/// pre-factored plan, so `transient.*` tallies depend only on the grid.
#[test]
fn droop_sweep_is_bitwise_and_counter_deterministic_across_threads() {
    let _gate = lock();
    obs::set_enabled(true);
    let (serial_report, serial) = instrumented_droop_sweep(1);
    let (parallel_report, parallel) = instrumented_droop_sweep(4);
    obs::set_enabled(false);

    assert_eq!(serial_report, parallel_report, "sweep reports diverge");
    assert_eq!(serial_report.points.len(), 6);
    for name in [
        "transient.runs",
        "transient.steps",
        "transient.factorizations",
        "transient.plan_builds",
        "droop.sweeps",
        "droop.points",
        "par.jobs",
        "par.tasks",
    ] {
        assert_eq!(
            serial.counter(name),
            parallel.counter(name),
            "counter {name} differs between serial and parallel sweeps"
        );
    }
    // The sweep ran through the instrumented paths: one run per grid
    // point, and the pre-factored clones never factored again.
    assert_eq!(serial.counter("transient.runs"), Some(6));
    assert_eq!(serial.counter("droop.points"), Some(6));
    assert_eq!(serial.counter("transient.factorizations").unwrap_or(0), 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Enabling metrics never changes a solver result, bitwise — the
    /// instrumentation is observational only.
    #[test]
    fn prop_metrics_never_change_results(
        n_vrs in 4_usize..56,
        power in 300.0_f64..1400.0,
        placement_pick in 0_usize..2,
    ) {
        let placement = [VrPlacement::Periphery, VrPlacement::BelowDie][placement_pick];
        let spec = SystemSpec::new(
            Volts::new(48.0),
            Volts::new(1.0),
            Watts::new(power),
            CurrentDensity::from_amps_per_square_millimeter(2.0),
        ).unwrap();
        let calib = Calibration::paper_default();

        let _gate = lock();
        obs::set_enabled(false);
        let off = SharingSolver::builder(&spec, &calib)
            .placement(placement)
            .modules(n_vrs)
            .solve()
            .unwrap();
        obs::set_enabled(true);
        let on = SharingSolver::builder(&spec, &calib)
            .placement(placement)
            .modules(n_vrs)
            .solve()
            .unwrap();
        obs::set_enabled(false);

        // Bitwise: PartialEq on SharingReport is exact f64 equality.
        prop_assert_eq!(off, on);
    }
}
