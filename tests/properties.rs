//! Workspace-level property tests: invariants that must hold across
//! arbitrary specifications, calibrations, and module counts.

use proptest::prelude::*;
use vertical_power_delivery::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every feasible analysis keeps efficiency in (0, 1], decomposes
    /// additively, and has non-negative segments.
    #[test]
    fn prop_analysis_invariants(
        power in 200.0_f64..1200.0,
        density in 0.5_f64..3.0,
        arch_pick in 0_usize..4,
    ) {
        let spec = SystemSpec::new(
            Volts::new(48.0),
            Volts::new(1.0),
            Watts::new(power),
            CurrentDensity::from_amps_per_square_millimeter(density),
        ).unwrap();
        let calib = Calibration::paper_default();
        let arch = [
            Architecture::Reference,
            Architecture::InterposerPeriphery,
            Architecture::InterposerEmbedded,
            Architecture::TwoStage { bus: Volts::new(12.0) },
        ][arch_pick];
        if let Ok(report) = analyze(
            arch,
            VrTopologyKind::Dsch,
            &spec,
            &calib,
            &AnalysisOptions::default(),
        ) {
            let b = &report.breakdown;
            let eta = b.end_to_end_efficiency().fraction();
            prop_assert!(eta > 0.0 && eta <= 1.0);
            for s in b.segments() {
                prop_assert!(s.power.value() >= 0.0, "{}: negative loss", s.name);
            }
            let parts = b.conversion_loss() + b.horizontal_loss()
                + b.vertical_loss() + b.grid_loss();
            prop_assert!(b.total().approx_eq(parts, 1e-9));
        }
    }

    /// Regulator sharing always conserves the POL current and every
    /// module sources non-negative current for physical module counts.
    #[test]
    fn prop_sharing_conserves(
        n_vrs in 4_usize..64,
        power in 200.0_f64..1500.0,
        placement_pick in 0_usize..2,
    ) {
        let spec = SystemSpec::new(
            Volts::new(48.0),
            Volts::new(1.0),
            Watts::new(power),
            CurrentDensity::from_amps_per_square_millimeter(2.0),
        ).unwrap();
        let calib = Calibration::paper_default();
        let placement = [VrPlacement::Periphery, VrPlacement::BelowDie][placement_pick];
        let rep = vertical_power_delivery::core::solve_sharing(
            &spec, &calib, placement, n_vrs).unwrap();
        let total: f64 = rep.per_vr().iter().map(|a| a.value()).sum();
        prop_assert!((total - power).abs() < 1e-3 * power,
            "sum {total} vs load {power}");
        prop_assert!(rep.per_vr().iter().all(|a| a.value() > -1e-6));
        prop_assert!(rep.grid_loss().value() >= 0.0);
    }

    /// The Monte-Carlo engine's thread count is unobservable: any
    /// worker count produces the bitwise-identical summary the serial
    /// run does, for any seed and architecture.
    #[test]
    fn prop_monte_carlo_thread_count_is_unobservable(
        threads in 2_usize..9,
        samples in 5_usize..14,
        seed in 0_u64..1000,
        arch_pick in 0_usize..3,
    ) {
        use vertical_power_delivery::core::{run_tolerance, McSettings};
        let spec = SystemSpec::paper_default();
        let calib = Calibration::paper_default();
        let arch = [
            Architecture::Reference,
            Architecture::InterposerPeriphery,
            Architecture::InterposerEmbedded,
        ][arch_pick];
        let settings = McSettings {
            samples,
            seed,
            threads: 1,
            ..McSettings::default()
        };
        let serial = run_tolerance(
            arch, VrTopologyKind::Dsch, &spec, &calib, &settings).unwrap();
        let parallel = run_tolerance(
            arch, VrTopologyKind::Dsch, &spec, &calib,
            &McSettings { threads, ..settings }).unwrap();
        prop_assert_eq!(serial, parallel);
    }

    /// Converter curves: efficiency bounded and loss monotone in load
    /// above the peak point.
    #[test]
    fn prop_converter_curves_bounded(load in 1.0_f64..100.0) {
        let conv = Converter::dpmih_48v_to_1v();
        let eta = conv.efficiency(Amps::new(load)).unwrap().fraction();
        prop_assert!(eta > 0.5 && eta <= 1.0);
        let a_bit_more = (load * 1.1).min(100.0);
        let l1 = conv.loss(Amps::new(load)).unwrap().value();
        let l2 = conv.loss(Amps::new(a_bit_more)).unwrap().value();
        prop_assert!(l2 >= l1 - 1e-12);
    }

    /// Via allocation never exceeds its EM limit or its platform cap for
    /// any feasible current.
    #[test]
    fn prop_via_allocation_limits(current in 1.0_f64..1500.0) {
        use vertical_power_delivery::package::ViaAllocation;
        for tech in [InterconnectTech::TSV, InterconnectTech::CU_PAD] {
            if let Ok(alloc) = ViaAllocation::for_current(
                tech, Amps::new(current), tech.default_platform_area) {
                prop_assert!(
                    alloc.current_per_via().value()
                        <= tech.max_current_per_via().value() * (1.0 + 1e-9));
                prop_assert!(alloc.utilization() <= tech.power_site_cap + 1e-9);
            }
        }
    }

    /// Higher conversion-at-PCB voltage always reduces horizontal loss
    /// for the vertical architectures (the paper's core argument).
    #[test]
    fn prop_higher_bus_means_less_lateral_loss(
        bus_lo in 3.0_f64..8.0,
        factor in 1.5_f64..3.0,
    ) {
        let bus_hi = (bus_lo * factor).min(20.0);
        let spec = SystemSpec::paper_default();
        let calib = Calibration::paper_default();
        let opts = AnalysisOptions::default();
        let lateral = |bus: f64| {
            analyze(
                Architecture::TwoStage { bus: Volts::new(bus) },
                VrTopologyKind::Dsch,
                &spec, &calib, &opts,
            ).ok().map(|r| r.breakdown.horizontal_loss().value())
        };
        if let (Some(lo), Some(hi)) = (lateral(bus_lo), lateral(bus_hi)) {
            prop_assert!(hi <= lo + 1e-9,
                "bus {bus_lo:.1} V: {lo:.1} W vs bus {bus_hi:.1} V: {hi:.1} W");
        }
    }
}
