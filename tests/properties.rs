//! Workspace-level property tests: invariants that must hold across
//! arbitrary specifications, calibrations, and module counts.

use proptest::prelude::*;
use vertical_power_delivery::circuit::{ElementId, Netlist, NodeId, PwmSchedule, SwitchState};
use vertical_power_delivery::prelude::*;

/// A randomized RLC supply ladder with a PWM switch and a stepping
/// load: `stages` series R‖L sections from the 1 V source to the load
/// node, a decap at every intermediate node, and a switched bleed
/// branch at the load. Returns the netlist, the load node, and the
/// step source's element id (for plan restamping).
#[allow(clippy::too_many_arguments)]
fn random_ladder_with_step(
    stages: usize,
    r: f64,
    l: f64,
    c: f64,
    freq_mhz: f64,
    duty: f64,
    base: f64,
    after: f64,
    at_ns: f64,
) -> (Netlist, NodeId, ElementId) {
    let mut net = Netlist::new();
    let vin = net.node("n_in");
    net.voltage_source(vin, net.ground(), Volts::new(1.0))
        .unwrap();
    let mut prev = vin;
    for k in 0..stages {
        let node = net.node(&format!("n{k}"));
        net.resistor(prev, node, Ohms::new(r * (1.0 + k as f64 * 0.3)))
            .unwrap();
        net.inductor(prev, node, Henries::new(l), Amps::new(0.0))
            .unwrap();
        net.capacitor(node, net.ground(), Farads::new(c), Volts::new(1.0))
            .unwrap();
        prev = node;
    }
    let load = net.node("n_load");
    net.resistor(prev, load, Ohms::new(r)).unwrap();
    let schedule = PwmSchedule::new(Hertz::from_megahertz(freq_mhz), duty, 0.25).unwrap();
    net.switch(
        load,
        net.ground(),
        Ohms::new(0.5),
        Ohms::new(1.0e6),
        Some(schedule),
        SwitchState::Off,
    )
    .unwrap();
    let el = net
        .step_current_source(
            load,
            net.ground(),
            Amps::new(base),
            Amps::new(after),
            Seconds::from_nanoseconds(at_ns),
        )
        .unwrap();
    (net, load, el)
}

/// [`random_ladder_with_step`] with the default 25%-of-`after` base
/// load stepping at 500 ns.
fn random_ladder(
    stages: usize,
    r: f64,
    l: f64,
    c: f64,
    freq_mhz: f64,
    duty: f64,
    after: f64,
) -> (Netlist, NodeId, ElementId) {
    random_ladder_with_step(stages, r, l, c, freq_mhz, duty, after * 0.25, after, 500.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every feasible analysis keeps efficiency in (0, 1], decomposes
    /// additively, and has non-negative segments.
    #[test]
    fn prop_analysis_invariants(
        power in 200.0_f64..1200.0,
        density in 0.5_f64..3.0,
        arch_pick in 0_usize..4,
    ) {
        let spec = SystemSpec::new(
            Volts::new(48.0),
            Volts::new(1.0),
            Watts::new(power),
            CurrentDensity::from_amps_per_square_millimeter(density),
        ).unwrap();
        let calib = Calibration::paper_default();
        let arch = [
            Architecture::Reference,
            Architecture::InterposerPeriphery,
            Architecture::InterposerEmbedded,
            Architecture::TwoStage { bus: Volts::new(12.0) },
        ][arch_pick];
        if let Ok(report) = analyze(
            arch,
            VrTopologyKind::Dsch,
            &spec,
            &calib,
            &AnalysisOptions::default(),
        ) {
            let b = &report.breakdown;
            let eta = b.end_to_end_efficiency().fraction();
            prop_assert!(eta > 0.0 && eta <= 1.0);
            for s in b.segments() {
                prop_assert!(s.power.value() >= 0.0, "{}: negative loss", s.name);
            }
            let parts = b.conversion_loss() + b.horizontal_loss()
                + b.vertical_loss() + b.grid_loss();
            prop_assert!(b.total().approx_eq(parts, 1e-9));
        }
    }

    /// Regulator sharing always conserves the POL current and every
    /// module sources non-negative current for physical module counts.
    #[test]
    fn prop_sharing_conserves(
        n_vrs in 4_usize..64,
        power in 200.0_f64..1500.0,
        placement_pick in 0_usize..2,
    ) {
        let spec = SystemSpec::new(
            Volts::new(48.0),
            Volts::new(1.0),
            Watts::new(power),
            CurrentDensity::from_amps_per_square_millimeter(2.0),
        ).unwrap();
        let calib = Calibration::paper_default();
        let placement = [VrPlacement::Periphery, VrPlacement::BelowDie][placement_pick];
        let rep = vertical_power_delivery::core::solve_sharing(
            &spec, &calib, placement, n_vrs).unwrap();
        let total: f64 = rep.per_vr().iter().map(|a| a.value()).sum();
        prop_assert!((total - power).abs() < 1e-3 * power,
            "sum {total} vs load {power}");
        prop_assert!(rep.per_vr().iter().all(|a| a.value() > -1e-6));
        prop_assert!(rep.grid_loss().value() >= 0.0);
    }

    /// The Monte-Carlo engine's thread count is unobservable: any
    /// worker count produces the bitwise-identical summary the serial
    /// run does, for any seed and architecture.
    #[test]
    fn prop_monte_carlo_thread_count_is_unobservable(
        threads in 2_usize..9,
        samples in 5_usize..14,
        seed in 0_u64..1000,
        arch_pick in 0_usize..3,
    ) {
        use vertical_power_delivery::core::{run_tolerance, McSettings};
        let spec = SystemSpec::paper_default();
        let calib = Calibration::paper_default();
        let arch = [
            Architecture::Reference,
            Architecture::InterposerPeriphery,
            Architecture::InterposerEmbedded,
        ][arch_pick];
        let settings = McSettings {
            samples,
            seed,
            threads: 1,
            ..McSettings::default()
        };
        let serial = run_tolerance(
            arch, VrTopologyKind::Dsch, &spec, &calib, &settings).unwrap();
        let parallel = run_tolerance(
            arch, VrTopologyKind::Dsch, &spec, &calib,
            &McSettings { threads, ..settings }).unwrap();
        prop_assert_eq!(serial, parallel);
    }

    /// Converter curves: efficiency bounded and loss monotone in load
    /// above the peak point.
    #[test]
    fn prop_converter_curves_bounded(load in 1.0_f64..100.0) {
        let conv = Converter::dpmih_48v_to_1v();
        let eta = conv.efficiency(Amps::new(load)).unwrap().fraction();
        prop_assert!(eta > 0.5 && eta <= 1.0);
        let a_bit_more = (load * 1.1).min(100.0);
        let l1 = conv.loss(Amps::new(load)).unwrap().value();
        let l2 = conv.loss(Amps::new(a_bit_more)).unwrap().value();
        prop_assert!(l2 >= l1 - 1e-12);
    }

    /// Via allocation never exceeds its EM limit or its platform cap for
    /// any feasible current.
    #[test]
    fn prop_via_allocation_limits(current in 1.0_f64..1500.0) {
        use vertical_power_delivery::package::ViaAllocation;
        for tech in [InterconnectTech::TSV, InterconnectTech::CU_PAD] {
            if let Ok(alloc) = ViaAllocation::for_current(
                tech, Amps::new(current), tech.default_platform_area) {
                prop_assert!(
                    alloc.current_per_via().value()
                        <= tech.max_current_per_via().value() * (1.0 + 1e-9));
                prop_assert!(alloc.utilization() <= tech.power_site_cap + 1e-9);
            }
        }
    }

    /// The compiled transient plan is bitwise-identical to the legacy
    /// interpreter on arbitrary RLC ladders with a PWM switch — same
    /// sample times, node voltages, and element currents, bit for bit.
    #[test]
    fn prop_transient_plan_matches_legacy_on_random_netlists(
        stages in 1_usize..4,
        r in 1e-3_f64..1e-1,
        l in 1e-10_f64..1e-8,
        c in 1e-8_f64..1e-6,
        freq_mhz in 1.0_f64..10.0,
        duty in 0.2_f64..0.8,
        after in 10.0_f64..400.0,
    ) {
        use vertical_power_delivery::circuit::{
            transient, TransientPlan, TransientSettings,
        };
        let (net, _, _) = random_ladder(stages, r, l, c, freq_mhz, duty, after);
        let settings = TransientSettings::new(
            Seconds::from_microseconds(1.0),
            Seconds::from_nanoseconds(5.0),
        ).unwrap();
        let legacy = transient(&net, &settings).unwrap();
        let mut plan = TransientPlan::compile(&net, &settings).unwrap();
        prop_assert_eq!(plan.run().unwrap(), &legacy);
        // Replaying the compiled plan reproduces the same bits.
        prop_assert_eq!(plan.run().unwrap(), &legacy);
    }

    /// Restamping a compiled plan's load step is indistinguishable from
    /// rebuilding the netlist with the new stimulus, and never costs a
    /// new factorization.
    #[test]
    fn prop_restamped_plan_matches_rebuilt_netlist(
        stages in 1_usize..4,
        r in 1e-3_f64..1e-1,
        l in 1e-10_f64..1e-8,
        c in 1e-8_f64..1e-6,
        freq_mhz in 1.0_f64..10.0,
        duty in 0.2_f64..0.8,
        first in 10.0_f64..400.0,
        second in 10.0_f64..400.0,
        at_ns in 0.0_f64..900.0,
    ) {
        use vertical_power_delivery::circuit::{
            transient, TransientPlan, TransientSettings,
        };
        let settings = TransientSettings::new(
            Seconds::from_microseconds(1.0),
            Seconds::from_nanoseconds(5.0),
        ).unwrap();
        let (net, _, el) = random_ladder(stages, r, l, c, freq_mhz, duty, first);
        let mut plan = TransientPlan::compile(&net, &settings).unwrap();
        plan.run().unwrap();
        let factorizations = plan.cached_factorizations();
        plan.set_load_step(
            el,
            Amps::new(first * 0.25),
            Amps::new(second),
            Seconds::from_nanoseconds(at_ns),
        ).unwrap();
        // The rebuilt netlist carries the second stimulus from scratch.
        let (fresh, _, _) = random_ladder_with_step(
            stages, r, l, c, freq_mhz, duty,
            first * 0.25, second, at_ns,
        );
        let rebuilt = transient(&fresh, &settings).unwrap();
        prop_assert_eq!(plan.run().unwrap(), &rebuilt);
        prop_assert_eq!(plan.cached_factorizations(), factorizations);
    }

    /// The settled-statistics windows: the mean lies inside the tail's
    /// envelope, RMS dominates the mean, ripple is the tail's exact
    /// peak-to-peak span, and a full-width window reproduces the plain
    /// whole-series statistics.
    #[test]
    fn prop_settled_tail_invariants(
        series in proptest::collection::vec(-2.0_f64..2.0, 1..64),
        fraction in 0.01_f64..1.0,
    ) {
        use vertical_power_delivery::circuit::TransientResult;
        let mean = TransientResult::settled_mean(&series, fraction);
        let rms = TransientResult::settled_rms(&series, fraction);
        let ripple = TransientResult::settled_ripple(&series, fraction);
        let n = series.len();
        let start = ((1.0 - fraction) * n as f64) as usize;
        let tail = &series[start.min(n)..];
        if tail.is_empty() {
            // Tiny fraction of a tiny series: the empty window defines
            // all three statistics as exactly zero.
            prop_assert_eq!((mean, rms, ripple), (0.0, 0.0, 0.0));
        } else {
            let lo = tail.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = tail.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(mean >= lo - 1e-12 && mean <= hi + 1e-12);
            prop_assert!(rms + 1e-12 >= mean.abs(), "rms {rms} < |mean| {mean}");
            prop_assert!((ripple - (hi - lo)).abs() < 1e-12);
        }
        let full_mean = series.iter().sum::<f64>() / n as f64;
        prop_assert!(
            (TransientResult::settled_mean(&series, 1.0) - full_mean).abs() < 1e-12
        );
    }

    /// A faulted impedance profile computed by value-restamping the
    /// compiled AC plan is bitwise-identical to rebuilding the faulted
    /// PDN model from scratch and sweeping it fresh, for arbitrary
    /// fault scenarios and frequency grids.
    #[test]
    fn prop_faulted_ac_restamp_matches_scratch(
        arch_pick in 0_usize..3,
        k in 1_usize..4,
        seed in 0_u64..1000,
        fmin_khz in 1.0_f64..100.0,
        decades in 1.0_f64..5.0,
        points in 2_usize..12,
    ) {
        use vertical_power_delivery::core::{FaultImpedanceSweep, FaultScenario};
        let arch = [
            Architecture::InterposerPeriphery,
            Architecture::InterposerEmbedded,
            Architecture::TwoStage { bus: Volts::new(12.0) },
        ][arch_pick];
        let sweep = FaultImpedanceSweep::new(
            arch,
            &SystemSpec::paper_default(),
            &Calibration::paper_default(),
        ).unwrap();
        let scenario = FaultScenario::random_k(
            k, 1, seed, sweep.vr_count(), sweep.grid_side(),
        ).remove(0);
        let fmin = fmin_khz * 1e3;
        let span = points - 1;
        let freqs: Vec<Hertz> = (0..points)
            .map(|i| Hertz::new(fmin * 10f64.powf(decades * i as f64 / span as f64)))
            .collect();
        let restamped = sweep.profile(&scenario, &freqs).unwrap();
        let scratch = sweep
            .faulted_model(&scenario).unwrap()
            .impedance_profile(&freqs).unwrap();
        prop_assert_eq!(restamped.points, scratch, "{}", scenario.name);
    }

    /// Higher conversion-at-PCB voltage always reduces horizontal loss
    /// for the vertical architectures (the paper's core argument).
    #[test]
    fn prop_higher_bus_means_less_lateral_loss(
        bus_lo in 3.0_f64..8.0,
        factor in 1.5_f64..3.0,
    ) {
        let bus_hi = (bus_lo * factor).min(20.0);
        let spec = SystemSpec::paper_default();
        let calib = Calibration::paper_default();
        let opts = AnalysisOptions::default();
        let lateral = |bus: f64| {
            analyze(
                Architecture::TwoStage { bus: Volts::new(bus) },
                VrTopologyKind::Dsch,
                &spec, &calib, &opts,
            ).ok().map(|r| r.breakdown.horizontal_loss().value())
        };
        if let (Some(lo), Some(hi)) = (lateral(bus_lo), lateral(bus_hi)) {
            prop_assert!(hi <= lo + 1e-9,
                "bus {bus_lo:.1} V: {lo:.1} W vs bus {bus_hi:.1} V: {hi:.1} W");
        }
    }
}
