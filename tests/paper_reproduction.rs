//! End-to-end reproduction checks for every table, figure, and §IV
//! claim of the paper, exercised through the public facade. These are
//! the assertions EXPERIMENTS.md reports.

use vertical_power_delivery::converters::TopologyCharacteristics;
use vertical_power_delivery::core::explore_matrix;
use vertical_power_delivery::package::{required_platform_area, ViaAllocation};
use vertical_power_delivery::prelude::*;

fn env() -> (SystemSpec, Calibration, AnalysisOptions) {
    (
        SystemSpec::paper_default(),
        Calibration::paper_default(),
        AnalysisOptions::default(),
    )
}

#[test]
fn table1_derived_quantities() {
    // Per-via resistances from ρ·h/A and site counts from platform/pitch².
    let checks = [
        (InterconnectTech::BGA, 0.310, 2812),
        (InterconnectTech::C4, 1.159, 30_000),
        (InterconnectTech::TSV, 42.0, 12_000_000),
        (InterconnectTech::MICRO_BUMP, 4.60, 138_888),
        (InterconnectTech::CU_PAD, 1.68, 1_250_000),
    ];
    for (tech, r_mohm, sites) in checks {
        assert!(
            (tech.via_resistance().as_milliohms() - r_mohm).abs() < r_mohm * 0.02,
            "{}: R_via",
            tech.name
        );
        assert_eq!(tech.default_sites(), sites, "{}: sites", tech.name);
    }
}

#[test]
fn table2_catalog_matches_paper() {
    use vertical_power_delivery::converters::VrTopologyKind::*;
    let dpmih = TopologyCharacteristics::table_ii(Dpmih);
    assert_eq!(
        (dpmih.switches, dpmih.inductors, dpmih.capacitors),
        (8, 4, 3)
    );
    assert!((dpmih.total_inductance.value() - 4e-6).abs() < 1e-12);
    let dsch = TopologyCharacteristics::table_ii(Dsch);
    assert_eq!((dsch.switches, dsch.inductors, dsch.capacitors), (5, 2, 2));
    assert!((dsch.total_capacitance.value() - 6.6e-6).abs() < 1e-12);
    let tlhd = TopologyCharacteristics::table_ii(ThreeLevelHybridDickson);
    assert_eq!((tlhd.switches, tlhd.inductors, tlhd.capacitors), (11, 3, 5));
    // Peak-efficiency anchors survive the curve fit end to end.
    for (conv, i, pct) in [
        (Converter::dpmih_48v_to_1v(), 30.0, 90.0),
        (Converter::dsch_48v_to_1v(), 10.0, 91.5),
        (Converter::three_level_hybrid_dickson_48v_to_1v(), 3.0, 90.4),
    ] {
        let eta = conv.efficiency(Amps::new(i)).unwrap();
        assert!((eta.percent() - pct).abs() < 0.05, "{}", conv.name());
    }
}

#[test]
fn figure7_shape_holds() {
    let (spec, calib, opts) = env();
    let entries = explore_matrix(
        &[VrTopologyKind::Dpmih, VrTopologyKind::Dsch],
        &spec,
        &calib,
        &opts,
    );
    let get = |name: &str, topo: VrTopologyKind| {
        entries
            .iter()
            .find(|e| e.architecture.name() == name && e.topology == topo)
            .and_then(|e| e.outcome.as_ref().ok())
            .unwrap_or_else(|| panic!("{name} missing"))
    };
    let a0 = get("A0", VrTopologyKind::Dsch);
    // "over 40% power loss" for the traditional approach.
    assert!(a0.loss_percent() > 40.0);
    // "most of the proposed architectures exhibit promising efficiency
    // of ~80%".
    let mut near_80 = 0;
    for e in entries.iter().filter(|e| e.architecture.name() != "A0") {
        let r = e.outcome.as_ref().unwrap();
        assert!(r.loss_percent() < 30.0, "{}", e.architecture.name());
        if (75.0..90.0).contains(&r.breakdown.end_to_end_efficiency().percent()) {
            near_80 += 1;
        }
    }
    assert!(near_80 >= 6, "most proposed bars around 80% efficiency");
    // A0 is the worst bar; vertical interconnect negligible everywhere.
    for e in &entries {
        if let Ok(r) = &e.outcome {
            assert!(r.loss_percent() <= a0.loss_percent() + 1e-9);
            assert!(r.breakdown.vertical_loss().value() < 2.0);
        }
    }
}

#[test]
fn figure7_excludes_3lhd_like_the_paper() {
    let (spec, calib, opts) = env();
    let entries = explore_matrix(
        &[VrTopologyKind::ThreeLevelHybridDickson],
        &spec,
        &calib,
        &opts,
    );
    // A1/A2 with 3LHD cannot supply 1 kA from 48 modules of 12 A.
    let failures = entries
        .iter()
        .filter(|e| {
            matches!(
                e.architecture,
                Architecture::InterposerPeriphery | Architecture::InterposerEmbedded
            )
        })
        .filter(|e| e.outcome.is_err())
        .count();
    assert_eq!(failures, 2);
}

#[test]
fn claim_c1_utilization_and_reference_die() {
    let (spec, _, _) = env();
    let i_hv = Amps::new(spec.pol_power().value() / 48.0);
    let i_pol = spec.pol_current();
    let util = |tech: InterconnectTech, i: Amps| {
        ViaAllocation::for_current(tech, i, tech.default_platform_area)
            .unwrap()
            .utilization()
    };
    assert!((util(InterconnectTech::BGA, i_hv) - 0.012).abs() < 0.005); // ~1%
    assert!((util(InterconnectTech::C4, i_hv) - 0.018).abs() < 0.005); // ~2%
    assert!((util(InterconnectTech::TSV, i_pol) - 0.104).abs() < 0.01); // ~10%
    assert!(util(InterconnectTech::CU_PAD, i_pol) <= 0.201); // <20%

    let a0_die = required_platform_area(InterconnectTech::C4, i_pol).unwrap();
    let mm2 = a0_die.as_square_millimeters();
    assert!((mm2 - 1200.0).abs() < 30.0, "A0 die {mm2:.0} mm²");
    let density = i_pol.value() / mm2;
    assert!((density - 0.83).abs() < 0.05, "A0 density {density:.2}");
}

#[test]
fn claim_c2_sharing_bands() {
    let (spec, calib, _) = env();
    let peri =
        vertical_power_delivery::core::solve_sharing(&spec, &calib, VrPlacement::Periphery, 48)
            .unwrap();
    let below =
        vertical_power_delivery::core::solve_sharing(&spec, &calib, VrPlacement::BelowDie, 48)
            .unwrap();
    // Paper: 16–27 A (A1) and 10–93 A (A2); allow the documented
    // calibration tolerance.
    assert!((12.0..=20.0).contains(&peri.min().value()));
    assert!((23.0..=32.0).contains(&peri.max().value()));
    assert!((6.0..=14.0).contains(&below.min().value()));
    assert!((75.0..=110.0).contains(&below.max().value()));
    // Conservation through the whole mesh solve.
    let sum: f64 = below.per_vr().iter().map(|a| a.value()).sum();
    assert!((sum - 1000.0).abs() < 0.5);
}

#[test]
fn claim_c3_horizontal_reduction() {
    let (spec, calib, opts) = env();
    let h = |arch: Architecture| {
        analyze(arch, VrTopologyKind::Dsch, &spec, &calib, &opts)
            .unwrap()
            .breakdown
            .horizontal_loss()
            .value()
    };
    let h0 = h(Architecture::Reference);
    let r12 = h0
        / h(Architecture::TwoStage {
            bus: Volts::new(12.0),
        });
    let r6 = h0
        / h(Architecture::TwoStage {
            bus: Volts::new(6.0),
        });
    assert!((14.0..26.0).contains(&r12), "{r12:.1}x vs paper 19x");
    assert!((5.0..10.0).contains(&r6), "{r6:.1}x vs paper 7x");
}

#[test]
fn claim_c4_ppdn_vs_converter_split() {
    let (spec, calib, opts) = env();
    for arch in Architecture::paper_set().into_iter().skip(1) {
        let r = analyze(arch, VrTopologyKind::Dsch, &spec, &calib, &opts).unwrap();
        let b = &r.breakdown;
        assert!(
            b.percent_of_pol_power(b.ppdn_loss()) < 10.0,
            "{}: PPDN <10%",
            arch.name()
        );
        assert!(
            b.percent_of_pol_power(b.conversion_loss()) > 10.0,
            "{}: converters >10%",
            arch.name()
        );
    }
}

#[test]
fn loss_breakdown_is_additive_everywhere() {
    let (spec, calib, opts) = env();
    for arch in Architecture::paper_set() {
        let r = analyze(arch, VrTopologyKind::Dsch, &spec, &calib, &opts).unwrap();
        let b = &r.breakdown;
        let parts = b.conversion_loss() + b.horizontal_loss() + b.vertical_loss() + b.grid_loss();
        assert!(
            b.total().approx_eq(parts, 1e-9),
            "{}: decomposition must sum",
            arch.name()
        );
        let segsum: Watts = b.segments().iter().map(|s| s.power).sum();
        assert!(b.total().approx_eq(segsum, 1e-9));
    }
}
