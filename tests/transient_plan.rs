//! Transient correctness suite: golden waveform statistics per
//! architecture, plan-vs-legacy bitwise identity, and the paper's
//! A0-vs-A2 droop ordering, pinned against the paper-scale stimulus
//! (25% → 100% of the 1 kA POL current at 5 µs, 60 µs @ 10 ns).
//!
//! The golden numbers were produced by this engine and freeze its
//! behaviour: any change to companion stamping, LU pivoting, or the
//! settled-statistics windows shows up here first.

// Goldens are pinned at full f64 precision on purpose.
#![allow(clippy::excessive_precision)]

use vertical_power_delivery::circuit::{
    transient, ElementId, Netlist, TransientPlan, TransientResult, TransientSettings,
};
use vertical_power_delivery::core::{simulate_droop, LoadStep, PdnModel};
use vertical_power_delivery::prelude::*;

/// Trailing fraction of the run the settled statistics average over.
const TAIL: f64 = 0.25;

/// The five PDN configurations of the paper's Figure 7, with the names
/// the goldens are keyed by.
fn architectures() -> [(&'static str, Architecture); 5] {
    [
        ("A0", Architecture::Reference),
        ("A1", Architecture::InterposerPeriphery),
        ("A2", Architecture::InterposerEmbedded),
        (
            "A3-12",
            Architecture::TwoStage {
                bus: Volts::new(12.0),
            },
        ),
        (
            "A3-6",
            Architecture::TwoStage {
                bus: Volts::new(6.0),
            },
        ),
    ]
}

/// The paper-scale droop window.
fn window() -> (Seconds, Seconds) {
    (
        Seconds::from_microseconds(60.0),
        Seconds::from_nanoseconds(10.0),
    )
}

/// The architecture's PDN ladder plus the paper's load step, and the
/// die node the waveform is measured at.
fn stepped_netlist(arch: Architecture) -> (Netlist, vertical_power_delivery::circuit::NodeId) {
    let spec = SystemSpec::paper_default();
    let step = LoadStep::paper_default(&spec);
    let (mut net, die) = PdnModel::for_architecture(arch).netlist().unwrap();
    net.step_current_source(die, net.ground(), step.base, step.after, step.at)
        .unwrap();
    (net, die)
}

#[test]
fn golden_settled_statistics_per_architecture() {
    // (name, settled mean, settled RMS, settled peak-to-peak ripple).
    // A0's ladder rings hard against the ideal step — its tail never
    // settles — while every vertical architecture converges to a flat
    // steady state (ripple exactly 0.0 at double precision).
    let goldens = [
        (
            "A0",
            0.840022492865372,
            1.249674744360936,
            2.778804105343790,
        ),
        ("A1", 0.946999999999971, 0.947000000000003, 0.0),
        ("A2", 0.986000000000026, 0.986000000000000, 0.0),
        ("A3-12", 0.946999999999971, 0.947000000000003, 0.0),
        ("A3-6", 0.946999999999971, 0.947000000000003, 0.0),
    ];
    let (sim, dt) = window();
    for ((name, arch), (gname, mean, rms, ripple)) in architectures().into_iter().zip(goldens) {
        assert_eq!(name, gname);
        let (net, die) = stepped_netlist(arch);
        let settings = TransientSettings::new(sim, dt).unwrap();
        let r = transient(&net, &settings).unwrap();
        let v = r.voltage(die);
        assert!(
            (TransientResult::settled_mean(v, TAIL) - mean).abs() < 1e-9,
            "{name}: settled mean {} vs golden {mean}",
            TransientResult::settled_mean(v, TAIL)
        );
        assert!(
            (TransientResult::settled_rms(v, TAIL) - rms).abs() < 1e-9,
            "{name}: settled RMS {} vs golden {rms}",
            TransientResult::settled_rms(v, TAIL)
        );
        assert!(
            (TransientResult::settled_ripple(v, TAIL) - ripple).abs() < 1e-9,
            "{name}: settled ripple {} vs golden {ripple}",
            TransientResult::settled_ripple(v, TAIL)
        );
    }
}

#[test]
fn golden_droop_per_architecture() {
    // (name, worst droop in volts, ΔI·|Z|_peak bound in volts). A1 and
    // both A3 buses share the below-die ladder, so their time-domain
    // droops coincide — the architectures differ upstream of the PDN.
    let goldens = [
        ("A0", 3.789391477218087, 66.141558697702934),
        ("A1", 0.161509011369071, 0.459140800915328),
        ("A2", 0.048000968443278, 0.141589030937983),
        ("A3-12", 0.161509011369071, 0.459140800915328),
        ("A3-6", 0.161509011369071, 0.459140800915328),
    ];
    let spec = SystemSpec::paper_default();
    let step = LoadStep::paper_default(&spec);
    let (sim, dt) = window();
    for ((name, arch), (gname, droop, bound)) in architectures().into_iter().zip(goldens) {
        assert_eq!(name, gname);
        let model = PdnModel::for_architecture(arch);
        let r = simulate_droop(&model, &step, sim, dt).unwrap();
        assert!(
            (r.droop.value() - droop).abs() < 1e-9,
            "{name}: droop {} vs golden {droop}",
            r.droop
        );
        assert!(
            (r.impedance_bound.value() - bound).abs() < 1e-9,
            "{name}: bound {} vs golden {bound}",
            r.impedance_bound
        );
        assert!((r.droop.value() - (r.v_before - r.v_min).value()).abs() < 1e-15);
    }
}

#[test]
fn plan_is_bitwise_identical_to_legacy_transient() {
    // The compiled plan replays the same ops the interpreter walks, so
    // every node voltage, element current, and sample time must match
    // the legacy engine bit for bit — not approximately.
    let (sim, dt) = (
        Seconds::from_microseconds(20.0),
        Seconds::from_nanoseconds(20.0),
    );
    for (name, arch) in architectures() {
        let (net, _) = stepped_netlist(arch);
        let settings = TransientSettings::new(sim, dt).unwrap();
        let legacy = transient(&net, &settings).unwrap();
        let mut plan = TransientPlan::compile(&net, &settings).unwrap();
        assert_eq!(plan.run().unwrap(), &legacy, "{name}: plan != legacy");
        // A second run of the same plan reproduces the same bits.
        assert_eq!(plan.run().unwrap(), &legacy, "{name}: rerun differs");
    }
}

#[test]
fn restamped_plan_matches_a_rebuilt_netlist_bitwise() {
    // Sweeping the stimulus through `set_load_step` must be
    // indistinguishable from building a fresh netlist with the new
    // step — across amplitude, timing, and a return to the original.
    let spec = SystemSpec::paper_default();
    let base = LoadStep::paper_default(&spec);
    let (sim, dt) = (
        Seconds::from_microseconds(20.0),
        Seconds::from_nanoseconds(20.0),
    );
    let settings = TransientSettings::new(sim, dt).unwrap();

    let build = |step: &LoadStep| -> (Netlist, ElementId) {
        let (mut net, die) = PdnModel::for_architecture(Architecture::InterposerEmbedded)
            .netlist()
            .unwrap();
        let el = net
            .step_current_source(die, net.ground(), step.base, step.after, step.at)
            .unwrap();
        let _ = die;
        (net, el)
    };
    let (net, el) = build(&base);
    let mut plan = TransientPlan::compile(&net, &settings).unwrap();
    let sweep = [
        base,
        LoadStep {
            after: base.after * 0.6,
            ..base
        },
        LoadStep {
            at: Seconds::from_microseconds(11.0),
            ..base
        },
        base,
    ];
    for step in &sweep {
        plan.set_load_step(el, step.base, step.after, step.at)
            .unwrap();
        let (fresh_net, _) = build(step);
        let fresh = transient(&fresh_net, &settings).unwrap();
        assert_eq!(plan.run().unwrap(), &fresh, "restamp at {:?}", step);
    }
    // The whole sweep shares one system matrix: nothing re-factored.
    assert_eq!(plan.cached_factorizations(), 1);
}

#[test]
fn reference_droops_worse_than_interposer_embedded() {
    // The paper's core time-domain claim: moving conversion under the
    // die (A2) beats board-level conversion (A0) by well over the 5%
    // supply budget, not by a rounding margin.
    let spec = SystemSpec::paper_default();
    let step = LoadStep::paper_default(&spec);
    let (sim, dt) = window();
    let a0 = simulate_droop(
        &PdnModel::for_architecture(Architecture::Reference),
        &step,
        sim,
        dt,
    )
    .unwrap();
    let a2 = simulate_droop(
        &PdnModel::for_architecture(Architecture::InterposerEmbedded),
        &step,
        sim,
        dt,
    )
    .unwrap();
    let budget = 0.05 * spec.pol_voltage().value();
    assert!(
        a0.droop.value() > 5.0 * a2.droop.value(),
        "A0 {} vs A2 {}",
        a0.droop,
        a2.droop
    );
    assert!(
        a0.droop.value() > budget,
        "A0 holds the budget: {}",
        a0.droop
    );
    assert!(
        a2.droop.value() < budget,
        "A2 busts the budget: {}",
        a2.droop
    );
}
