//! Sparse direct-solver contracts, checked across crate boundaries:
//! the permutation primitive round-trips, the sparse Cholesky factor
//! agrees with the dense oracle, direct-mode analysis tracks warm-CG
//! within solver tolerance on every paper architecture, and the
//! direct-mode sweep engines keep the serial == parallel bitwise
//! guarantee.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vertical_power_delivery::circuit::DcPlanMode;
use vertical_power_delivery::converters::VrTopologyKind;
use vertical_power_delivery::core::{
    AnalysisOptions, AnalysisSession, Architecture, Calibration, FaultScenario, FaultSweep,
    SystemSpec,
};
use vertical_power_delivery::numeric::{
    CholeskyFactor, CooMatrix, CsrMatrix, DenseMatrix, SparseCholesky,
};

/// A 2-D grid Laplacian with a per-node leak to ground — the SPD matrix
/// family every die-grid solve reduces to.
fn grid_laplacian(side: usize, leaks: &[f64]) -> CsrMatrix {
    let n = side * side;
    assert_eq!(leaks.len(), n);
    let mut coo = CooMatrix::new(n, n);
    for y in 0..side {
        for x in 0..side {
            let i = y * side + x;
            let mut d = leaks[i];
            if x + 1 < side {
                coo.push(i, i + 1, -1.0);
                coo.push(i + 1, i, -1.0);
                d += 1.0;
            }
            if x > 0 {
                d += 1.0;
            }
            if y + 1 < side {
                coo.push(i, i + side, -1.0);
                coo.push(i + side, i, -1.0);
                d += 1.0;
            }
            if y > 0 {
                d += 1.0;
            }
            coo.push(i, i, d);
        }
    }
    coo.to_csr()
}

fn densify(a: &CsrMatrix) -> DenseMatrix {
    DenseMatrix::from_fn(a.rows(), a.cols(), |i, j| a.get(i, j))
}

/// Deterministic Fisher–Yates permutation of `0..n` from a seed.
fn random_perm(n: usize, seed: u64) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        perm.swap(i, rng.gen_range(0..=i));
    }
    perm
}

/// Largest grid side the properties sample; leak vectors are drawn at
/// this capacity and sliced down to the sampled `side * side`.
const MAX_SIDE: usize = 6;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Satellite contract: `P·A·Pᵀ` keeps every value (bitwise) and the
    /// symmetry of the pattern, and permuting back by the inverse
    /// restores the original matrix exactly.
    #[test]
    fn permuted_round_trips_values_and_symmetry(
        side in 2usize..=MAX_SIDE,
        leaks in proptest::collection::vec(0.05f64..2.0, MAX_SIDE * MAX_SIDE),
        seed in 0u64..u64::MAX,
    ) {
        let a = grid_laplacian(side, &leaks[..side * side]);
        let n = a.rows();
        let perm = random_perm(n, seed);
        let b = a.permuted(&perm).unwrap();

        let mut iperm = vec![0usize; n];
        for (new, &old) in perm.iter().enumerate() {
            iperm[old] = new;
        }
        for i in 0..n {
            for j in 0..n {
                let expect = a.get(perm[i], perm[j]);
                prop_assert_eq!(b.get(i, j).to_bits(), expect.to_bits());
                prop_assert_eq!(b.get(i, j).to_bits(), b.get(j, i).to_bits());
            }
        }

        let back = b.permuted(&iperm).unwrap();
        prop_assert_eq!(back.rows(), a.rows());
        for i in 0..n {
            for j in 0..n {
                prop_assert_eq!(back.get(i, j).to_bits(), a.get(i, j).to_bits());
            }
        }
    }

    /// The sparse factorization must agree with the dense Cholesky
    /// oracle on the same system.
    #[test]
    fn sparse_cholesky_matches_dense_oracle(
        side in 2usize..=MAX_SIDE,
        leaks in proptest::collection::vec(0.05f64..2.0, MAX_SIDE * MAX_SIDE),
        seed in 0u64..u64::MAX,
    ) {
        let a = grid_laplacian(side, &leaks[..side * side]);
        let n = a.rows();
        let mut rng = StdRng::seed_from_u64(seed);
        let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();

        let mut sparse = SparseCholesky::factor(&a).unwrap();
        let xs = sparse.solve(&b).unwrap();
        let xd = CholeskyFactor::new(&densify(&a)).unwrap().solve(&b).unwrap();
        for (s, d) in xs.iter().zip(&xd) {
            prop_assert!((s - d).abs() < 1e-8, "sparse {} vs dense {}", s, d);
        }
        // And the answer actually solves the system.
        for (axi, bi) in a.matvec(&xs).iter().zip(&b) {
            prop_assert!((axi - bi).abs() < 1e-8);
        }
    }
}

/// Direct-mode analysis must track the warm-CG default within solver
/// tolerance on every paper architecture (A0 through A3).
#[test]
fn direct_mode_tracks_warm_cg_on_all_paper_architectures() {
    let spec = SystemSpec::paper_default();
    let calib = Calibration::paper_default();
    for arch in Architecture::paper_set() {
        let mut cg_sess =
            AnalysisSession::new(arch, &spec, &calib, &AnalysisOptions::default()).unwrap();
        let direct_opts = AnalysisOptions {
            solve_mode: DcPlanMode::DirectCholesky,
            ..AnalysisOptions::default()
        };
        let mut direct_sess = AnalysisSession::new(arch, &spec, &calib, &direct_opts).unwrap();
        let cg = cg_sess.analyze(VrTopologyKind::Dsch, &calib).unwrap();
        let direct = direct_sess.analyze(VrTopologyKind::Dsch, &calib).unwrap();

        let (a, b) = (
            cg.breakdown.total().value(),
            direct.breakdown.total().value(),
        );
        assert!(
            (a - b).abs() < 1e-6 * a.max(1.0),
            "{arch:?}: total loss {a} vs {b}"
        );
        for (x, y) in cg.sharing.per_vr().iter().zip(direct.sharing.per_vr()) {
            assert!((x.value() - y.value()).abs() < 1e-6, "{arch:?}: {x} vs {y}");
        }
    }
}

/// The sweep engines' serial == parallel bitwise contract holds in
/// direct-Cholesky mode, not just the warm-CG default.
#[test]
fn direct_mode_fault_sweep_is_bitwise_thread_independent() {
    let spec = SystemSpec::paper_default();
    let calib = Calibration::paper_default();
    let mut sweep = FaultSweep::new(
        Architecture::InterposerPeriphery,
        VrTopologyKind::Dsch,
        &spec,
        &calib,
    )
    .unwrap();
    sweep.set_solve_mode(DcPlanMode::DirectCholesky).unwrap();

    let mut scenarios = FaultScenario::n_minus_1(6);
    scenarios.extend(FaultScenario::random_k(
        2,
        6,
        0xB10C,
        sweep.vr_count(),
        sweep.grid_side(),
    ));
    let serial = sweep.run(&scenarios, 1).unwrap();
    assert_eq!(serial.fallback_count, 0, "direct rung must hold");
    for threads in [2, 4, 7] {
        let parallel = sweep.run(&scenarios, threads).unwrap();
        assert_eq!(serial, parallel, "threads = {threads}");
    }
}
