//! Numeric-substrate oracle tests: the four solvers (dense LU, dense
//! Cholesky, sparse CG, complex LU) must agree wherever their domains
//! overlap, and the spectral diagnostics must predict CG behavior.

use proptest::prelude::*;
use vertical_power_delivery::circuit::PowerGrid;
use vertical_power_delivery::numeric::{
    condition_estimate_spd, conjugate_gradient, conjugate_gradient_into, dominant_eigenvalue,
    resilient_solve, CgSettings, CgWorkspace, CholeskyFactor, Complex, ComplexLu, ComplexMatrix,
    CooMatrix, CsrMatrix, DenseMatrix, LuFactor, Preconditioner, ResilientSettings, SolveMethod,
};
use vertical_power_delivery::units::{Amps, Ohms, Volts};

/// A grounded 2-D grid Laplacian (the PDN solve's matrix shape).
fn grid_laplacian(n: usize, leak: f64) -> CsrMatrix {
    let mut coo = CooMatrix::new(n * n, n * n);
    for y in 0..n {
        for x in 0..n {
            let i = y * n + x;
            let mut d = leak;
            if x + 1 < n {
                coo.push(i, i + 1, -1.0);
                coo.push(i + 1, i, -1.0);
                d += 1.0;
            }
            if x > 0 {
                d += 1.0;
            }
            if y + 1 < n {
                coo.push(i, i + n, -1.0);
                coo.push(i + n, i, -1.0);
                d += 1.0;
            }
            if y > 0 {
                d += 1.0;
            }
            coo.push(i, i, d);
        }
    }
    coo.to_csr()
}

fn densify(a: &CsrMatrix) -> DenseMatrix {
    DenseMatrix::from_fn(a.rows(), a.cols(), |i, j| a.get(i, j))
}

/// The same grid Laplacian split into its symbolic and numeric halves:
/// structural entries (whose push order never depends on `leak`) plus
/// the raw value sequence in that order — the input contract of
/// [`CooMatrix::to_csr_with_pattern`] / [`CsrMatrix::update_values`].
fn grid_laplacian_parts(n: usize, leak: f64) -> (CooMatrix, Vec<f64>) {
    let mut coo = CooMatrix::new(n * n, n * n);
    let mut raw = Vec::new();
    for y in 0..n {
        for x in 0..n {
            let i = y * n + x;
            let mut d = leak;
            if x + 1 < n {
                coo.push_structural(i, i + 1);
                raw.push(-1.0);
                coo.push_structural(i + 1, i);
                raw.push(-1.0);
                d += 1.0;
            }
            if x > 0 {
                d += 1.0;
            }
            if y + 1 < n {
                coo.push_structural(i, i + n);
                raw.push(-1.0);
                coo.push_structural(i + n, i);
                raw.push(-1.0);
                d += 1.0;
            }
            if y > 0 {
                d += 1.0;
            }
            coo.push_structural(i, i);
            raw.push(d);
        }
    }
    (coo, raw)
}

#[test]
fn four_solvers_agree_on_a_grid_laplacian() {
    let a = grid_laplacian(6, 0.3);
    let n = a.rows();
    let b: Vec<f64> = (0..n).map(|i| ((i * 7) % 5) as f64 - 2.0).collect();

    let dense = densify(&a);
    let x_lu = LuFactor::new(&dense).unwrap().solve(&b).unwrap();
    let x_ch = CholeskyFactor::new(&dense).unwrap().solve(&b).unwrap();
    let (x_cg, _) = conjugate_gradient(&a, &b, &CgSettings::default()).unwrap();

    // Complex LU with purely real inputs must match too.
    let mut ac = ComplexMatrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            ac.set(i, j, Complex::from_real(dense.at(i, j)));
        }
    }
    let bc: Vec<Complex> = b.iter().map(|&v| Complex::from_real(v)).collect();
    let x_c = ComplexLu::new(&ac).unwrap().solve(&bc).unwrap();

    for i in 0..n {
        assert!((x_lu[i] - x_ch[i]).abs() < 1e-8, "lu vs cholesky at {i}");
        assert!((x_lu[i] - x_cg[i]).abs() < 1e-6, "lu vs cg at {i}");
        assert!((x_lu[i] - x_c[i].re).abs() < 1e-8, "lu vs complex at {i}");
        assert!(x_c[i].im.abs() < 1e-10, "real system, real solution");
    }
}

#[test]
fn condition_number_predicts_cg_difficulty() {
    // Weaker ground leak → worse conditioning → more CG iterations.
    let easy = grid_laplacian(8, 1.0);
    let hard = grid_laplacian(8, 0.001);
    let k_easy = condition_estimate_spd(&easy, 1e-10, 100_000).unwrap();
    let k_hard = condition_estimate_spd(&hard, 1e-10, 100_000).unwrap();
    assert!(k_hard > 10.0 * k_easy, "κ {k_easy:.1} vs {k_hard:.1}");

    // A non-uniform right-hand side (the all-ones vector is an
    // eigenvector of a uniform-leak Laplacian and converges instantly).
    let b: Vec<f64> = (0..easy.rows()).map(|i| ((i % 7) as f64) - 3.0).collect();
    let settings = CgSettings {
        preconditioner: Preconditioner::None,
        ..CgSettings::default()
    };
    let (_, rep_easy) = conjugate_gradient(&easy, &b, &settings).unwrap();
    let (_, rep_hard) = conjugate_gradient(&hard, &b, &settings).unwrap();
    assert!(
        rep_hard.iterations > rep_easy.iterations,
        "{} vs {}",
        rep_easy.iterations,
        rep_hard.iterations
    );
}

#[test]
fn dominant_eigenvalue_bounds_the_laplacian() {
    // A 4-connected grid Laplacian's λ_max is below 8 + leak
    // (Gershgorin) and above the mean diagonal.
    let leak = 0.5;
    let a = grid_laplacian(10, leak);
    let top = dominant_eigenvalue(&a, 1e-10, 50_000).unwrap();
    assert!(top.eigenvalue <= 8.0 + leak + 1e-6);
    assert!(top.eigenvalue > 4.0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// For random grounded Laplacians, CG with Jacobi never needs more
    /// iterations than twice plain CG (and both solve correctly).
    #[test]
    fn prop_jacobi_never_catastrophically_worse(
        n in 3_usize..7,
        leak in 0.05_f64..2.0,
    ) {
        let a = grid_laplacian(n, leak);
        let b: Vec<f64> = (0..a.rows()).map(|i| ((i % 5) as f64) - 2.0).collect();
        let plain = conjugate_gradient(&a, &b, &CgSettings {
            preconditioner: Preconditioner::None,
            ..CgSettings::default()
        });
        let jacobi = conjugate_gradient(&a, &b, &CgSettings::default());
        let (xp, rp) = plain.unwrap();
        let (xj, rj) = jacobi.unwrap();
        // Jacobi may lose a few iterations on tiny well-conditioned
        // systems but must never be catastrophically worse.
        prop_assert!(rj.iterations <= 2 * rp.iterations + 8,
            "jacobi {} vs plain {}", rj.iterations, rp.iterations);
        for (p, j) in xp.iter().zip(&xj) {
            prop_assert!((p - j).abs() < 1e-6);
        }
    }

    /// Warm-started CG lands on the same solution as cold CG and dense
    /// LU on random SPD grid Laplacians, regardless of guess quality.
    #[test]
    fn prop_warm_cg_matches_cold_cg_and_lu(
        n in 3_usize..7,
        leak in 0.1_f64..2.0,
        guess_scale in 0.8_f64..1.2,
    ) {
        let a = grid_laplacian(n, leak);
        let b: Vec<f64> = (0..a.rows()).map(|i| ((i * 3 % 7) as f64) - 3.0).collect();

        let x_lu = LuFactor::new(&densify(&a)).unwrap().solve(&b).unwrap();
        let (x_cold, _) = conjugate_gradient(&a, &b, &CgSettings::default()).unwrap();

        // Warm start from a nearby system's solution, further scaled —
        // the Monte-Carlo regime (good guess) through a mediocre one.
        let a_near = grid_laplacian(n, leak * guess_scale);
        let (mut x, _) = conjugate_gradient(&a_near, &b, &CgSettings::default()).unwrap();
        for v in &mut x {
            *v *= guess_scale;
        }
        let mut ws = CgWorkspace::new();
        let report =
            conjugate_gradient_into(&a, &b, &mut x, &CgSettings::default(), &mut ws).unwrap();

        for i in 0..x.len() {
            prop_assert!((x[i] - x_lu[i]).abs() < 1e-6, "warm vs LU at {i}");
            prop_assert!((x[i] - x_cold[i]).abs() < 1e-6, "warm vs cold at {i}");
        }
        prop_assert!(report.relative_residual <= 1e-10 || report.iterations == 0);
    }

    /// Restamping a compiled pattern with new values and re-solving is
    /// indistinguishable from assembling the perturbed system from
    /// scratch: the matrices agree entry-for-entry (bitwise — same
    /// accumulation order) and CG agrees on the solution.
    #[test]
    fn prop_update_values_matches_from_scratch(
        n in 3_usize..7,
        leak_a in 0.1_f64..2.0,
        leak_b in 0.1_f64..2.0,
    ) {
        // Compile once at leak_a, restamp to leak_b…
        let (coo, raw_a) = grid_laplacian_parts(n, leak_a);
        let (mut restamped, pattern) = coo.to_csr_with_pattern();
        restamped.update_values(&pattern, &raw_a).unwrap();
        let raw_b = grid_laplacian_parts(n, leak_b).1;
        restamped.update_values(&pattern, &raw_b).unwrap();

        // …and compare against a fresh assembly at leak_b.
        let fresh = grid_laplacian(n, leak_b);
        for i in 0..fresh.rows() {
            for j in 0..fresh.cols() {
                prop_assert!(
                    restamped.get(i, j) == fresh.get(i, j),
                    "entry ({i}, {j}): {} vs {}",
                    restamped.get(i, j),
                    fresh.get(i, j)
                );
            }
        }

        let b: Vec<f64> = (0..fresh.rows()).map(|i| ((i % 5) as f64) - 2.0).collect();
        let (x_restamped, _) =
            conjugate_gradient(&restamped, &b, &CgSettings::default()).unwrap();
        let (x_fresh, _) = conjugate_gradient(&fresh, &b, &CgSettings::default()).unwrap();
        for (r, f) in x_restamped.iter().zip(&x_fresh) {
            prop_assert!((r - f).abs() < 1e-9);
        }
    }

    /// Jacobi-preconditioned CG agrees with unpreconditioned CG and
    /// dense LU to 1e-8 on random SPD grid systems.
    #[test]
    fn prop_preconditioned_cg_matches_plain_cg_and_lu(
        n in 3_usize..8,
        leak in 0.05_f64..2.0,
        phase in 0_usize..5,
    ) {
        let a = grid_laplacian(n, leak);
        let b: Vec<f64> = (0..a.rows())
            .map(|i| (((i + phase) % 6) as f64) - 2.5)
            .collect();

        let x_lu = LuFactor::new(&densify(&a)).unwrap().solve(&b).unwrap();
        let tight = CgSettings {
            tolerance: 1e-12,
            ..CgSettings::default()
        };
        let (x_jacobi, _) = conjugate_gradient(&a, &b, &tight).unwrap();
        let (x_plain, _) = conjugate_gradient(&a, &b, &CgSettings {
            preconditioner: Preconditioner::None,
            ..tight
        }).unwrap();

        for i in 0..b.len() {
            prop_assert!((x_jacobi[i] - x_plain[i]).abs() < 1e-8,
                "jacobi vs plain at {i}: {} vs {}", x_jacobi[i], x_plain[i]);
            prop_assert!((x_jacobi[i] - x_lu[i]).abs() < 1e-8,
                "jacobi vs LU at {i}: {} vs {}", x_jacobi[i], x_lu[i]);
        }
    }

    /// The resilient solver's dense-LU fallback rung returns the same
    /// solution as calling the direct solver outright.
    #[test]
    fn prop_fallback_matches_direct_solver(
        n in 3_usize..8,
        leak in 0.05_f64..2.0,
    ) {
        let a = grid_laplacian(n, leak);
        let b: Vec<f64> = (0..a.rows())
            .map(|i| ((i * 5 % 11) as f64) - 5.0)
            .collect();
        let x_direct = LuFactor::new(&densify(&a)).unwrap().solve(&b).unwrap();

        // A 1-iteration budget on both CG rungs forces the ladder all
        // the way down onto dense LU.
        let settings = ResilientSettings {
            cg: CgSettings {
                max_iterations: Some(1),
                ..CgSettings::default()
            },
            retry_iteration_factor: 1,
            ..ResilientSettings::default()
        };
        let (x, report) = resilient_solve(&a, &b, &settings).unwrap();
        prop_assert!(report.method == SolveMethod::DenseLu, "{:?}", report.method);
        prop_assert!(report.used_fallback());
        for i in 0..b.len() {
            prop_assert!((x[i] - x_direct[i]).abs() < 1e-12,
                "fallback vs direct at {i}: {} vs {}", x[i], x_direct[i]);
        }
    }

    /// Restamping a compiled power-grid plan with fault values (an
    /// opened regulator plus a degraded mesh region) matches building
    /// the faulted netlist from scratch — the fault-injection oracle.
    #[test]
    fn prop_faulted_restamp_matches_from_scratch(
        open_k in 0_usize..4,
        factor in 2.0_f64..50.0,
        x0 in 0_usize..4,
        y0 in 0_usize..4,
    ) {
        let n = 8;
        let sheet = Ohms::from_milliohms(1.0);
        let setpoint = Volts::new(1.0);
        let droop = Ohms::from_milliohms(0.5);
        let sites = [(0, 0), (n - 1, 0), (0, n - 1), (n - 1, n - 1)];
        let build = || -> PowerGrid {
            let mut g = PowerGrid::new(n, n, sheet).unwrap();
            g.attach_dense_load_profile(|x, y| Amps::new(0.2 + 0.1 * ((x + 2 * y) % 3) as f64))
                .unwrap();
            for &(x, y) in &sites {
                g.attach_regulator(x, y, setpoint, droop).unwrap();
            }
            g
        };

        // Path 1: compile on the nominal values, then restamp in the
        // faults and re-solve through the cached plan.
        let mut restamped = build();
        restamped.solve_cached().unwrap();
        restamped.set_regulator_droop(open_k, Ohms::new(1e9)).unwrap();
        restamped
            .scale_region_resistance(x0, y0, x0 + 3, y0 + 3, factor)
            .unwrap();
        let sol_restamped = restamped.solve_cached().unwrap();

        // Path 2: assemble the faulted grid from scratch, so its plan
        // compiles directly on the degraded values.
        let mut fresh = build();
        fresh.set_regulator_droop(open_k, Ohms::new(1e9)).unwrap();
        fresh
            .scale_region_resistance(x0, y0, x0 + 3, y0 + 3, factor)
            .unwrap();
        let sol_fresh = fresh.solve_cached().unwrap();

        let i_restamped = restamped.regulator_currents(&sol_restamped);
        let i_fresh = fresh.regulator_currents(&sol_fresh);
        for (k, (a, b)) in i_restamped.iter().zip(&i_fresh).enumerate() {
            prop_assert!((a.value() - b.value()).abs() < 1e-6,
                "regulator {k}: {a} vs {b}");
        }
        let d_restamped = restamped.worst_ir_drop(&sol_restamped, setpoint);
        let d_fresh = fresh.worst_ir_drop(&sol_fresh, setpoint);
        prop_assert!((d_restamped.value() - d_fresh.value()).abs() < 1e-8);
        // The opened module really is out of the picture.
        prop_assert!(i_restamped[open_k].value().abs() < 1e-6);
    }

    /// Complex arithmetic satisfies field laws on random values.
    #[test]
    fn prop_complex_field_laws(
        ar in -5.0_f64..5.0, ai in -5.0_f64..5.0,
        br in -5.0_f64..5.0, bi in -5.0_f64..5.0,
    ) {
        let a = Complex::new(ar, ai);
        let b = Complex::new(br, bi);
        // Commutativity.
        let ab = a * b;
        let ba = b * a;
        prop_assert!((ab - ba).abs() < 1e-12);
        // |ab| = |a||b|.
        prop_assert!((ab.abs() - a.abs() * b.abs()).abs() < 1e-9);
        // Conjugate distributes.
        let lhs = (a * b).conj();
        let rhs = a.conj() * b.conj();
        prop_assert!((lhs - rhs).abs() < 1e-12);
        // Division inverts multiplication (away from zero).
        if b.abs() > 1e-6 {
            let q = ab / b;
            prop_assert!((q - a).abs() < 1e-8);
        }
    }
}
