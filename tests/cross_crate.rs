//! Integration tests spanning crates: the circuit solver against the
//! packaging models, converter composition inside architecture
//! analysis, and consistency between the transient and DC engines.

use vertical_power_delivery::circuit::{
    transient, DcSolver, Netlist, PwmSchedule, SwitchState, TransientResult, TransientSettings,
};
use vertical_power_delivery::converters::MultiStageConverter;
use vertical_power_delivery::package::{LevelSpec, VerticalPath};
use vertical_power_delivery::prelude::*;

/// A vertical path built from Table I and solved as an actual circuit
/// must dissipate what the analytic allocation predicts.
#[test]
fn via_allocation_matches_circuit_solve() {
    let i = Amps::new(1000.0);
    let path =
        VerticalPath::resolve(&[LevelSpec::on_default_platform(InterconnectTech::CU_PAD, i)])
            .unwrap();
    let analytic = path.total_loss();

    // Same thing as a netlist: the effective level resistance carrying
    // 1 kA from a 1 V source.
    let r_eff = path.levels()[0].effective_resistance();
    let mut net = Netlist::new();
    let top = net.node("top");
    let die = net.node("die");
    net.voltage_source(top, net.ground(), Volts::new(1.0))
        .unwrap();
    let r_id = net.resistor(top, die, r_eff).unwrap();
    net.current_source(die, net.ground(), i).unwrap();
    let sol = DcSolver::new().solve(&net).unwrap();
    let circuit_loss = sol.dissipated_power(&net, r_id).unwrap();

    assert!(
        (circuit_loss.value() - analytic.value()).abs() < 1e-6 * analytic.value().max(1.0),
        "analytic {analytic} vs circuit {circuit_loss}"
    );
}

/// The A3 architecture's conversion loss is bracketed by stage-wise
/// bounds built from the same converter models: below by uniform
/// stage-2 sharing with a peak-efficiency stage 1, above by a generous
/// hotspot multiple of that bound.
#[test]
fn two_stage_architecture_consistent_with_multistage_converter() {
    let stage1 = Converter::dpmih_first_stage(Volts::new(12.0)).unwrap();
    let stage2 = Converter::dsch_second_stage(Volts::new(12.0)).unwrap();
    // MultiStageConverter composes the same curves (consistency check of
    // the converter layer itself). A single 20 A chain runs stage 1 at
    // only ~1.8 A — deep light load — so the composed efficiency is
    // merely sane here; the architecture recovers it by batching
    // stage-1 modules near their peak current.
    let chain = MultiStageConverter::new(vec![stage1.clone(), stage2.clone()]).unwrap();
    let chain_eta = chain.efficiency(Amps::new(20.0)).unwrap().fraction();
    assert!((0.5..0.95).contains(&chain_eta), "chain η {chain_eta:.2}");

    // Lower bound: 48 stage-2 modules sharing 1 kA uniformly, stage 1
    // batched at its peak-efficiency current.
    let per_module = Amps::new(1000.0 / 48.0);
    let loss2_uniform = stage2.loss(per_module).unwrap().value() * 48.0;
    let p1_out = 1000.0 + loss2_uniform;
    let eta1_best = stage1
        .efficiency(stage1.curve().peak_efficiency_current())
        .unwrap()
        .fraction();
    let loss1_min = p1_out * (1.0 / eta1_best - 1.0);
    let lower_bound = loss2_uniform + loss1_min;

    let (spec, calib, opts) = (
        SystemSpec::paper_default(),
        Calibration::paper_default(),
        AnalysisOptions::default(),
    );
    let report = analyze(
        Architecture::TwoStage {
            bus: Volts::new(12.0),
        },
        VrTopologyKind::Dsch,
        &spec,
        &calib,
        &opts,
    )
    .unwrap();
    let conv_loss = report.breakdown.conversion_loss().value();
    assert!(
        conv_loss >= lower_bound * 0.95,
        "hotspot sharing cannot beat the uniform bound: {conv_loss:.0} vs {lower_bound:.0}"
    );
    assert!(
        conv_loss <= lower_bound * 2.0,
        "hotspot penalty should stay bounded: {conv_loss:.0} vs {lower_bound:.0}"
    );
}

/// The switched transient engine and the efficiency-curve layer agree
/// on a buck stage: simulated conversion ratio equals the duty cycle.
#[test]
fn transient_buck_regulates_to_duty_ratio() {
    let duty = 1.0 / 12.0;
    let f = Hertz::from_megahertz(1.0);
    let mut net = Netlist::new();
    let vin = net.node("vin");
    let sw = net.node("sw");
    let out = net.node("out");
    net.voltage_source(vin, net.ground(), Volts::new(12.0))
        .unwrap();
    let pwm = PwmSchedule::new(f, duty, 0.0).unwrap();
    net.switch(
        vin,
        sw,
        Ohms::from_milliohms(1.0),
        Ohms::new(1e7),
        Some(pwm),
        SwitchState::Off,
    )
    .unwrap();
    net.switch(
        sw,
        net.ground(),
        Ohms::from_milliohms(1.0),
        Ohms::new(1e7),
        Some(pwm.complementary()),
        SwitchState::On,
    )
    .unwrap();
    net.inductor(sw, out, Henries::from_nanohenries(220.0), Amps::ZERO)
        .unwrap();
    net.capacitor(
        out,
        net.ground(),
        Farads::from_microfarads(47.0),
        Volts::ZERO,
    )
    .unwrap();
    net.resistor(out, net.ground(), Ohms::from_milliohms(100.0))
        .unwrap();
    let settings = TransientSettings::new(
        Seconds::from_microseconds(60.0),
        Seconds::from_nanoseconds(1.0),
    )
    .unwrap();
    let result = transient(&net, &settings).unwrap();
    let v_out = TransientResult::settled_mean(result.voltage(out), 0.2);
    assert!(
        (v_out - 1.0).abs() < 0.08,
        "buck output {v_out:.3} V vs ideal 1.0 V"
    );
}

/// The sharing mesh conserves charge for every power map.
#[test]
fn sharing_conserves_current_across_power_maps() {
    let spec = SystemSpec::paper_default();
    for map in [
        PowerMap::Uniform,
        PowerMap::paper_hotspot(),
        PowerMap::SplitHalves { left_share: 0.8 },
    ] {
        let mut calib = Calibration::paper_default();
        calib.power_map = map;
        for placement in [VrPlacement::Periphery, VrPlacement::BelowDie] {
            let rep =
                vertical_power_delivery::core::solve_sharing(&spec, &calib, placement, 48).unwrap();
            let total: f64 = rep.per_vr().iter().map(|a| a.value()).sum();
            assert!((total - 1000.0).abs() < 0.5, "{placement}: {total:.2} A");
        }
    }
}

/// Spec scaling: halving POL power halves every absolute loss of the
/// proposed architectures except the horizontal I²R terms, which fall
/// 4x — verified through the public API.
#[test]
fn loss_scaling_with_power_is_physical() {
    let calib = Calibration::paper_default();
    let opts = AnalysisOptions::default();
    let mk = |p: f64| {
        SystemSpec::new(
            Volts::new(48.0),
            Volts::new(1.0),
            Watts::new(p),
            CurrentDensity::from_amps_per_square_millimeter(2.0),
        )
        .unwrap()
    };
    let full = analyze(
        Architecture::Reference,
        VrTopologyKind::Dsch,
        &mk(1000.0),
        &calib,
        &opts,
    )
    .unwrap();
    let half = analyze(
        Architecture::Reference,
        VrTopologyKind::Dsch,
        &mk(500.0),
        &calib,
        &opts,
    )
    .unwrap();
    let ratio_h =
        full.breakdown.horizontal_loss().value() / half.breakdown.horizontal_loss().value();
    assert!((ratio_h - 4.0).abs() < 0.2, "I²R scaling, got {ratio_h:.2}");
    let ratio_conv =
        full.breakdown.conversion_loss().value() / half.breakdown.conversion_loss().value();
    assert!(
        (1.8..2.6).contains(&ratio_conv),
        "conversion ≈ linear, got {ratio_conv:.2}"
    );
}
