//! Cross-crate bitwise-determinism contracts for the frequency-domain
//! sweep engine: the compiled [`AcPlan`] path must reproduce the
//! reference [`AcAnalysis`] exactly, and the parallel engine must
//! reproduce the serial run exactly, on every architecture ladder.

use vertical_power_delivery::circuit::{AcAnalysis, AcPlan};
use vertical_power_delivery::core::{
    compare_architectures, ImpedanceSweep, ImpedanceSweepSettings, PdnModel,
};
use vertical_power_delivery::prelude::*;

const ARCHS: [Architecture; 3] = [
    Architecture::Reference,
    Architecture::InterposerPeriphery,
    Architecture::InterposerEmbedded,
];

fn settings() -> ImpedanceSweepSettings {
    ImpedanceSweepSettings {
        points: 72,
        ..ImpedanceSweepSettings::default()
    }
}

/// The compiled plan replays the reference analysis bitwise on every
/// ladder: same stamps, same factorization, same points.
#[test]
fn plan_is_bitwise_identical_to_analysis_on_every_ladder() {
    let freqs = settings().frequencies().unwrap();
    for arch in ARCHS {
        let model = PdnModel::for_architecture(arch);
        let (net, die) = model.netlist().unwrap();
        let reference = AcAnalysis::new(&net).impedance(die, &freqs).unwrap();

        let mut plan = AcPlan::compile(&net);
        let fast = plan.impedance(die, &freqs).unwrap();
        assert_eq!(fast, reference, "{} plan vs analysis", arch.name());

        // A second pass through the same warm buffers must not drift.
        assert_eq!(
            plan.impedance(die, &freqs).unwrap(),
            reference,
            "{} warm pass",
            arch.name()
        );
    }
}

/// The sweep engine returns the same bitwise points at every thread
/// count, and matches the raw plan.
#[test]
fn sweep_engine_is_thread_count_invariant() {
    let spec = SystemSpec::paper_default();
    let freqs = settings().frequencies().unwrap();
    for arch in ARCHS {
        let sweep = ImpedanceSweep::for_architecture(arch, &spec).unwrap();
        let serial = sweep.run_over(&freqs, 1).unwrap();
        for threads in [0, 2, 5] {
            let parallel = sweep.run_over(&freqs, threads).unwrap();
            assert_eq!(parallel, serial, "{} x{threads}", arch.name());
        }
        let (net, die) = PdnModel::for_architecture(arch).netlist().unwrap();
        let reference = AcAnalysis::new(&net).impedance(die, &freqs).unwrap();
        assert_eq!(serial.points, reference, "{} vs analysis", arch.name());
    }
}

/// The comparison mode reproduces the per-architecture runs and the
/// paper's ordering: impedance falls as the regulator approaches the
/// die.
#[test]
fn comparison_mode_matches_individual_sweeps() {
    let spec = SystemSpec::paper_default();
    let settings = settings();
    let cmp = compare_architectures(&ARCHS, &spec, &settings).unwrap();
    assert_eq!(cmp.profiles.len(), ARCHS.len());
    let freqs = settings.frequencies().unwrap();
    for (arch, profile) in ARCHS.iter().zip(&cmp.profiles) {
        let solo = ImpedanceSweep::for_architecture(*arch, &spec)
            .unwrap()
            .run_over(&freqs, 1)
            .unwrap();
        assert_eq!(*profile, solo, "{}", arch.name());
    }
    assert!(cmp.profiles[0].peak.value() > cmp.profiles[1].peak.value());
    assert!(cmp.profiles[1].peak.value() > cmp.profiles[2].peak.value());
}
