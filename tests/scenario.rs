//! Scenario-document integration tests.
//!
//! Three contracts from the `.vpd` subsystem are pinned here:
//!
//! 1. **Golden bitwise identity** — each checked-in builtin document
//!    compiles to exactly the structs the hardcoded constructors
//!    build, so every engine result (loss breakdown, sharing,
//!    impedance, droop, fault sweeps) computed from a document equals
//!    the hardcoded-path result bit for bit.
//! 2. **Round-trip stability** — render → parse is the identity on
//!    documents and render is idempotent on text, over both the
//!    builtins and randomized valid documents.
//! 3. **Diagnostics** — every file in `scenarios/bad/` fails with the
//!    stable error code named by its filename, at the exact source
//!    line/column, with the dotted field path.

use std::fs;
use std::path::Path;

use proptest::prelude::*;
use vertical_power_delivery::converters::VrTopologyKind;
use vertical_power_delivery::core::{
    analyze, simulate_droop, solve_sharing, target_impedance, AnalysisOptions, Architecture,
    Calibration, FaultScenario, FaultSweep, LoadStep, PdnModel, SystemSpec, VrPlacement,
};
use vertical_power_delivery::scenario::{builtin_doc, builtin_docs, ScenarioDoc, BUILTIN_NAMES};
use vertical_power_delivery::units::{Seconds, Volts};

fn scenarios_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("scenarios")
}

/// The hardcoded architecture each builtin name stands for.
fn hardcoded(name: &str) -> Architecture {
    match name {
        "a0" => Architecture::Reference,
        "a1" => Architecture::InterposerPeriphery,
        "a2" => Architecture::InterposerEmbedded,
        "a3-12" => Architecture::TwoStage {
            bus: Volts::new(12.0),
        },
        "a3-6" => Architecture::TwoStage {
            bus: Volts::new(6.0),
        },
        other => panic!("unknown builtin {other}"),
    }
}

// ---------------------------------------------------------------------
// 1. Golden bitwise identity for the five builtins.
// ---------------------------------------------------------------------

#[test]
fn builtin_documents_compile_to_the_hardcoded_structs_bitwise() {
    for (name, text) in builtin_docs() {
        let doc = ScenarioDoc::parse(text).unwrap_or_else(|e| panic!("{name}: {e}"));
        let sc = doc.compile().unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(sc.name, name);
        assert_eq!(sc.architecture, hardcoded(name), "{name}");
        assert_eq!(sc.topology, VrTopologyKind::Dsch, "{name}");
        // Bitwise: the compiled spec/calibration/options are EXACTLY
        // the paper defaults, not approximately.
        assert_eq!(sc.spec, SystemSpec::paper_default(), "{name} spec");
        assert_eq!(
            sc.calibration,
            Calibration::paper_default(),
            "{name} calibration"
        );
        assert_eq!(sc.options, AnalysisOptions::default(), "{name} options");
        assert!(sc.converter.is_none(), "{name} has no [converter]");
        assert!(sc.techs.is_empty(), "{name} has no [tech.*]");
        assert!(sc.faults.is_none(), "{name} has no [faults]");
    }
}

#[test]
fn builtin_analysis_results_match_the_hardcoded_path_bitwise() {
    let spec = SystemSpec::paper_default();
    let calib = Calibration::paper_default();
    let opts = AnalysisOptions::default();
    for (name, text) in builtin_docs() {
        let sc = ScenarioDoc::parse(text).unwrap().compile().unwrap();
        let from_doc = analyze(
            sc.architecture,
            sc.topology,
            &sc.spec,
            &sc.calibration,
            &sc.options,
        )
        .unwrap();
        let from_code =
            analyze(hardcoded(name), VrTopologyKind::Dsch, &spec, &calib, &opts).unwrap();
        assert_eq!(from_doc.breakdown, from_code.breakdown, "{name} breakdown");
        assert_eq!(from_doc.sharing, from_code.sharing, "{name} sharing");
        assert_eq!(from_doc.overloaded, from_code.overloaded, "{name}");
        assert_eq!(from_doc.utilization, from_code.utilization, "{name}");
    }
}

#[test]
fn builtin_sharing_and_impedance_match_the_hardcoded_path_bitwise() {
    let spec = SystemSpec::paper_default();
    let calib = Calibration::paper_default();
    for (name, text) in builtin_docs() {
        let sc = ScenarioDoc::parse(text).unwrap().compile().unwrap();
        let arch = hardcoded(name);
        // Current sharing through the document's placement and the
        // paper module count.
        let n = 48;
        let from_doc = solve_sharing(&sc.spec, &sc.calibration, sc.placement, n).unwrap();
        let placement = match arch {
            Architecture::InterposerEmbedded => VrPlacement::BelowDie,
            _ => VrPlacement::Periphery,
        };
        let from_code = solve_sharing(&spec, &calib, placement, n).unwrap();
        assert_eq!(from_doc, from_code, "{name} sharing");
        // PDN impedance: same architecture value → same ladder → same
        // peak, and the target-impedance budget from the compiled spec
        // equals the hardcoded one.
        let z_doc = PdnModel::for_architecture(sc.architecture)
            .peak_impedance()
            .unwrap();
        let z_code = PdnModel::for_architecture(arch).peak_impedance().unwrap();
        assert_eq!(z_doc, z_code, "{name} peak impedance");
        assert_eq!(
            target_impedance(&sc.spec, 0.05, 0.5),
            target_impedance(&spec, 0.05, 0.5),
            "{name} target impedance"
        );
    }
}

#[test]
fn builtin_droop_transient_matches_the_hardcoded_path_bitwise() {
    let spec = SystemSpec::paper_default();
    let sc = ScenarioDoc::parse(builtin_doc("a2").unwrap())
        .unwrap()
        .compile()
        .unwrap();
    let sim = Seconds::from_microseconds(8.0);
    let dt = Seconds::from_nanoseconds(20.0);
    let from_doc = simulate_droop(
        &PdnModel::for_architecture(sc.architecture),
        &LoadStep::paper_default(&sc.spec),
        sim,
        dt,
    )
    .unwrap();
    let from_code = simulate_droop(
        &PdnModel::for_architecture(Architecture::InterposerEmbedded),
        &LoadStep::paper_default(&spec),
        sim,
        dt,
    )
    .unwrap();
    assert_eq!(from_doc, from_code);
}

#[test]
fn builtin_fault_sweep_matches_the_hardcoded_path_bitwise() {
    let spec = SystemSpec::paper_default();
    let calib = Calibration::paper_default();
    let sc = ScenarioDoc::parse(builtin_doc("a2").unwrap())
        .unwrap()
        .compile()
        .unwrap();
    let from_doc =
        FaultSweep::new(sc.architecture, sc.topology, &sc.spec, &sc.calibration).unwrap();
    let from_code = FaultSweep::new(
        Architecture::InterposerEmbedded,
        VrTopologyKind::Dsch,
        &spec,
        &calib,
    )
    .unwrap();
    assert_eq!(from_doc.vr_count(), from_code.vr_count());
    // A truncated N−1 ladder keeps the debug-build runtime sane while
    // still exercising faulted grid solves end to end.
    let scenarios: Vec<FaultScenario> = FaultScenario::n_minus_1(from_doc.vr_count())
        .into_iter()
        .take(6)
        .collect();
    let rep_doc = from_doc.run(&scenarios, 0).unwrap();
    let rep_code = from_code.run(&scenarios, 0).unwrap();
    assert_eq!(rep_doc, rep_code);
}

// ---------------------------------------------------------------------
// 2. Round-trip stability.
// ---------------------------------------------------------------------

#[test]
fn builtins_roundtrip_bitwise_and_hash_distinctly() {
    let mut hashes = Vec::new();
    for (name, text) in builtin_docs() {
        let doc = ScenarioDoc::parse(text).unwrap();
        let rendered = doc.render();
        let reparsed = ScenarioDoc::parse(&rendered)
            .unwrap_or_else(|e| panic!("{name}: rendered text must reparse: {e}"));
        assert_eq!(reparsed, doc, "{name}: render → parse is the identity");
        assert_eq!(reparsed.render(), rendered, "{name}: render is idempotent");
        hashes.push(doc.content_hash());
    }
    hashes.sort_unstable();
    hashes.dedup();
    assert_eq!(hashes.len(), BUILTIN_NAMES.len(), "hashes are distinct");
}

#[test]
fn checked_in_files_match_the_embedded_builtins() {
    for name in BUILTIN_NAMES {
        let on_disk = fs::read_to_string(scenarios_dir().join(format!("{name}.vpd"))).unwrap();
        assert_eq!(on_disk, builtin_doc(name).unwrap(), "{name}.vpd");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Randomized valid documents round-trip: parse → render → parse
    /// is the identity, the canonical render is idempotent, and the
    /// content hash is spelling-invariant under re-rendering.
    #[test]
    fn prop_random_documents_roundtrip_bitwise(
        arch_pick in 0_usize..5,
        topo_pick in 0_usize..3,
        power in 100.0_f64..3000.0,
        density in 0.2_f64..5.0,
        sheet_mohm in 0.05_f64..2.0,
        nodes in 5_usize..40,
        sigma in 0.02_f64..0.5,
        floor in 0.0_f64..1.0,
        extras in 0_usize..4,
    ) {
        let arch = ["a0", "a1", "a2", "a3-12", "a3-6"][arch_pick];
        let topo = ["dsch", "dpmih", "3lhd"][topo_pick];
        let mut text = format!(
            "[scenario]\narchitecture = \"{arch}\"\ntopology = \"{topo}\"\n\
             \n[spec]\npower_w = {power}\ndensity_a_mm2 = {density}\n\
             \n[calibration]\ngrid_sheet_mohm = {sheet_mohm}\n\
             grid_nodes_per_side = {nodes}\n\
             \n[load]\nmap = \"gaussian\"\nsigma = {sigma}\nfloor = {floor}\n"
        );
        if extras & 1 != 0 {
            // The converters crate's own feasible anchor fixture.
            text.push_str(
                "\n[converter]\nv_out = 1\ni_peak = 30\neta_peak = 0.9\n\
                 i_max = 100\neta_max = 0.86\n",
            );
        }
        if extras & 2 != 0 {
            text.push_str("\n[faults]\nmode = \"random-k\"\nk = 2\ncount = 7\nseed = 11\n");
        }
        let doc = ScenarioDoc::parse(&text).unwrap();
        let rendered = doc.render();
        let reparsed = ScenarioDoc::parse(&rendered).unwrap();
        prop_assert_eq!(&reparsed, &doc);
        prop_assert_eq!(reparsed.render(), rendered.clone());
        prop_assert_eq!(reparsed.content_hash(), doc.content_hash());
        // Compilation succeeds on every valid document.
        let sc = doc.compile().unwrap();
        prop_assert_eq!(sc.architecture, hardcoded(arch));
    }
}

// ---------------------------------------------------------------------
// 3. The negative corpus: stable codes, exact positions, field paths.
// ---------------------------------------------------------------------

/// Expected diagnostic per corpus file: (stem == code, line, column,
/// dotted field path).
const BAD_CORPUS: [(&str, usize, usize, &str); 9] = [
    ("bad-enum", 3, 12, "scenario.topology"),
    ("bad-value", 5, 11, "spec.power_w"),
    ("duplicate-key", 4, 1, "scenario.topology"),
    ("inconsistent", 3, 1, "scenario.bus_v"),
    ("missing-key", 1, 1, "scenario.architecture"),
    ("out-of-range", 5, 19, "calibration.grid_sheet_mohm"),
    ("syntax", 3, 1, "document"),
    ("unknown-key", 5, 1, "calibration.grid_sheet_mohms"),
    ("unknown-section", 4, 1, "thermals"),
];

#[test]
fn bad_corpus_fails_with_named_codes_at_exact_positions() {
    for (stem, line, column, field) in BAD_CORPUS {
        let path = scenarios_dir().join("bad").join(format!("{stem}.vpd"));
        let text = fs::read_to_string(&path).unwrap();
        let err = ScenarioDoc::parse(&text).expect_err(&format!("{stem}.vpd must be rejected"));
        assert_eq!(err.code.as_str(), stem, "{stem}.vpd code");
        assert_eq!(
            (err.line, err.column),
            (line, column),
            "{stem}.vpd position"
        );
        assert_eq!(err.field, field, "{stem}.vpd field path");
        // The Display form is the stable CLI/serve diagnostic shape.
        let shown = err.to_string();
        assert!(
            shown.starts_with(&format!("error[{stem}] at {line}:{column}: {field}: ")),
            "{stem}.vpd display: {shown}"
        );
    }
}

#[test]
fn bad_corpus_is_exhaustive_over_the_error_codes() {
    // One corpus file per ScenarioErrorCode variant, no strays.
    let mut stems: Vec<String> = fs::read_dir(scenarios_dir().join("bad"))
        .unwrap()
        .map(|e| {
            let p = e.unwrap().path();
            assert_eq!(p.extension().and_then(|s| s.to_str()), Some("vpd"), "{p:?}");
            p.file_stem().unwrap().to_str().unwrap().to_string()
        })
        .collect();
    stems.sort();
    let mut expected: Vec<String> = BAD_CORPUS.iter().map(|c| c.0.to_string()).collect();
    expected.sort();
    assert_eq!(stems, expected);
}
