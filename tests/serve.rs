//! End-to-end tests for the `vpd-serve` service: the stdio transport,
//! the TCP transport with the `call` client, and the determinism
//! contract — a served `result` document is bitwise-identical to the
//! one-shot `vpd --format json <command>` invocation, cold or cached.

use std::io::Cursor;
use std::process::Command;

use vertical_power_delivery::report::Json;
use vertical_power_delivery::serve::{serve_lines, Ended, ServeConfig, Server};

/// Runs one stdio serve session over a scripted input with a single
/// worker (so request order is deterministic) and returns the response
/// lines plus how the session ended.
fn serve_script(lines: &[&str], cache_capacity: usize) -> (Vec<String>, Ended) {
    let cfg = ServeConfig {
        workers: 1,
        queue_depth: 64,
        cache_capacity,
    };
    let input = lines.join("\n");
    let (out, ended) =
        serve_lines(Cursor::new(input), Vec::<u8>::new(), &cfg).expect("serve session");
    let text = String::from_utf8(out).expect("utf8 output");
    (text.lines().map(str::to_owned).collect(), ended)
}

/// Extracts the `result` document of a success response, re-serialized.
fn result_of(response_line: &str) -> String {
    let doc = Json::parse(response_line).expect("response is valid JSON");
    assert_eq!(
        doc.get("ok").and_then(Json::as_bool),
        Some(true),
        "expected a success response: {response_line}"
    );
    doc.get("result")
        .expect("success carries a result")
        .to_string()
}

/// Runs the real `vpd` binary and returns its single-line JSON stdout.
fn one_shot_cli(args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_vpd"))
        .arg("--format")
        .arg("json")
        .args(args)
        .output()
        .expect("vpd binary runs");
    assert!(
        out.status.success(),
        "vpd {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout)
        .expect("utf8 stdout")
        .trim_end()
        .to_owned()
}

#[test]
fn served_results_match_the_one_shot_cli_bitwise() {
    // Each pair: a request line and the equivalent one-shot invocation.
    // Small sample/point counts keep the debug-build runtime sane; the
    // comparison is still bit-exact.
    let cases: &[(&str, &[&str])] = &[
        (
            r#"{"id":1,"kind":"analyze","params":{"arch":"a1","topology":"dpmih"}}"#,
            &["analyze", "--arch", "a1", "--topology", "dpmih"],
        ),
        (
            r#"{"id":2,"kind":"sharing","params":{"placement":"below","modules":12}}"#,
            &["sharing", "--placement", "below", "--modules", "12"],
        ),
        (
            r#"{"id":3,"kind":"mc","params":{"arch":"a0","samples":8,"seed":9}}"#,
            &["mc", "--arch", "a0", "--samples", "8", "--seed", "9"],
        ),
        (
            r#"{"id":4,"kind":"impedance","params":{"arch":"a1","points":24}}"#,
            &["impedance", "--arch", "a1", "--points", "24"],
        ),
        (
            r#"{"id":5,"kind":"faults","params":{"arch":"a2","random_k":2,"count":6,"seed":7}}"#,
            &[
                "faults",
                "--arch",
                "a2",
                "--random-k",
                "2",
                "--count",
                "6",
                "--seed",
                "7",
            ],
        ),
    ];
    let request_lines: Vec<&str> = cases.iter().map(|(req, _)| *req).collect();
    let (out, ended) = serve_script(&request_lines, 16);
    assert_eq!(ended, Ended::Eof);
    assert_eq!(out.len(), cases.len(), "{out:?}");
    for (i, (_, cli_args)) in cases.iter().enumerate() {
        let id = format!("\"id\":{}", i + 1);
        let line = out
            .iter()
            .find(|l| l.contains(&id))
            .unwrap_or_else(|| panic!("no response for id {}: {out:?}", i + 1));
        assert_eq!(
            result_of(line),
            one_shot_cli(cli_args),
            "served result differs from one-shot CLI for {cli_args:?}"
        );
    }
}

#[test]
fn warm_hit_is_bitwise_identical_and_marked_cached() {
    // One worker: the second identical request dequeues after the first
    // has checked its compiled session back in, so it must hit.
    let (out, _) = serve_script(
        &[
            r#"{"id":1,"kind":"analyze","params":{"arch":"a2"}}"#,
            r#"{"id":2,"kind":"analyze","params":{"arch":"a2"}}"#,
        ],
        16,
    );
    assert_eq!(out.len(), 2);
    let cold = out.iter().find(|l| l.contains("\"id\":1")).unwrap();
    let warm = out.iter().find(|l| l.contains("\"id\":2")).unwrap();
    assert!(cold.contains(r#""cached":false"#), "{cold}");
    assert!(warm.contains(r#""cached":true"#), "{warm}");
    assert_eq!(result_of(cold), result_of(warm), "cache hit changed bits");
}

#[test]
fn zero_capacity_cache_still_serves_identical_bits() {
    let (out, _) = serve_script(
        &[
            r#"{"id":1,"kind":"analyze","params":{"arch":"a1"}}"#,
            r#"{"id":2,"kind":"analyze","params":{"arch":"a1"}}"#,
        ],
        0,
    );
    let a = out.iter().find(|l| l.contains("\"id\":1")).unwrap();
    let b = out.iter().find(|l| l.contains("\"id\":2")).unwrap();
    assert!(a.contains(r#""cached":false"#) && b.contains(r#""cached":false"#));
    assert_eq!(result_of(a), result_of(b));
}

#[test]
fn tcp_round_trip_serves_and_drains_on_shutdown() {
    let server = Server::bind("127.0.0.1:0", ServeConfig::default()).expect("bind");
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = std::thread::spawn(move || server.run());

    let lines = vec![
        r#"{"id":1,"kind":"ping"}"#.to_owned(),
        r#"{"id":2,"kind":"analyze","params":{"arch":"a1"}}"#.to_owned(),
        r#"{"id":3,"kind":"stats"}"#.to_owned(),
    ];
    // Payload first, shutdown as a second call: a shutdown pipelined on
    // the same connection would race ahead and drain still-queued jobs.
    let responses =
        vertical_power_delivery::serve::call(&addr, &lines, false).expect("call round trip");
    assert_eq!(responses.len(), 3, "{responses:?}");
    for id in 1..=3 {
        let needle = format!("\"id\":{id}");
        let line = responses
            .iter()
            .find(|l| l.contains(&needle))
            .unwrap_or_else(|| panic!("no response for id {id}: {responses:?}"));
        assert!(line.contains(r#""ok":true"#), "{line}");
    }
    let drain = vertical_power_delivery::serve::call(&addr, &[], true).expect("drain call");
    assert_eq!(drain.len(), 1, "{drain:?}");
    assert!(
        drain[0].contains("\"id\":-1") && drain[0].contains(r#""kind":"shutdown""#),
        "{}",
        drain[0]
    );

    // The shutdown request must also stop the accept loop.
    handle.join().expect("server thread").expect("server run");
}

#[test]
fn typed_errors_flow_end_to_end() {
    let (out, _) = serve_script(
        &[
            r#"{"id":1,"kind":"impedance","params":{"arch":"all"}}"#,
            r#"{"id":2,"kind":"impedance","params":{"arch":"a1","points":1}}"#,
            r#"{"id":3,"kind":"mc","params":{"arch":"a1","samples":0}}"#,
        ],
        16,
    );
    assert_eq!(out.len(), 3, "{out:?}");
    let unsupported = out.iter().find(|l| l.contains("\"id\":1")).unwrap();
    assert!(
        unsupported.contains(r#""code":"unsupported""#),
        "{unsupported}"
    );
    let engine = out.iter().find(|l| l.contains("\"id\":2")).unwrap();
    assert!(engine.contains(r#""code":"engine""#), "{engine}");
    let bad = out.iter().find(|l| l.contains("\"id\":3")).unwrap();
    assert!(bad.contains(r#""code":"bad_request""#), "{bad}");
}
