//! End-to-end tests for the `vpd-serve` service: the stdio transport,
//! the TCP transport with the `call` client, and the determinism
//! contract — a served `result` document is bitwise-identical to the
//! one-shot `vpd --format json <command>` invocation, cold or cached.

use std::io::Cursor;
use std::process::Command;

use vertical_power_delivery::report::Json;
use vertical_power_delivery::serve::{serve_lines, Ended, ServeConfig, Server};

/// Runs one stdio serve session over a scripted input with a single
/// worker (so request order is deterministic) and returns the response
/// lines plus how the session ended.
fn serve_script(lines: &[&str], cache_capacity: usize) -> (Vec<String>, Ended) {
    let cfg = ServeConfig {
        workers: 1,
        queue_depth: 64,
        cache_capacity,
    };
    let input = lines.join("\n");
    let (out, ended) =
        serve_lines(Cursor::new(input), Vec::<u8>::new(), &cfg).expect("serve session");
    let text = String::from_utf8(out).expect("utf8 output");
    (text.lines().map(str::to_owned).collect(), ended)
}

/// Extracts the `result` document of a success response, re-serialized.
fn result_of(response_line: &str) -> String {
    let doc = Json::parse(response_line).expect("response is valid JSON");
    assert_eq!(
        doc.get("ok").and_then(Json::as_bool),
        Some(true),
        "expected a success response: {response_line}"
    );
    doc.get("result")
        .expect("success carries a result")
        .to_string()
}

/// Runs the real `vpd` binary and returns its single-line JSON stdout.
fn one_shot_cli(args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_vpd"))
        .arg("--format")
        .arg("json")
        .args(args)
        .output()
        .expect("vpd binary runs");
    assert!(
        out.status.success(),
        "vpd {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout)
        .expect("utf8 stdout")
        .trim_end()
        .to_owned()
}

#[test]
fn served_results_match_the_one_shot_cli_bitwise() {
    // Each pair: a request line and the equivalent one-shot invocation.
    // Small sample/point counts keep the debug-build runtime sane; the
    // comparison is still bit-exact.
    let cases: &[(&str, &[&str])] = &[
        (
            r#"{"id":1,"kind":"analyze","params":{"arch":"a1","topology":"dpmih"}}"#,
            &["analyze", "--arch", "a1", "--topology", "dpmih"],
        ),
        (
            r#"{"id":2,"kind":"sharing","params":{"placement":"below","modules":12}}"#,
            &["sharing", "--placement", "below", "--modules", "12"],
        ),
        (
            r#"{"id":3,"kind":"mc","params":{"arch":"a0","samples":8,"seed":9}}"#,
            &["mc", "--arch", "a0", "--samples", "8", "--seed", "9"],
        ),
        (
            r#"{"id":4,"kind":"impedance","params":{"arch":"a1","points":24}}"#,
            &["impedance", "--arch", "a1", "--points", "24"],
        ),
        (
            r#"{"id":5,"kind":"faults","params":{"arch":"a2","random_k":2,"count":6,"seed":7}}"#,
            &[
                "faults",
                "--arch",
                "a2",
                "--random-k",
                "2",
                "--count",
                "6",
                "--seed",
                "7",
            ],
        ),
    ];
    let request_lines: Vec<&str> = cases.iter().map(|(req, _)| *req).collect();
    let (out, ended) = serve_script(&request_lines, 16);
    assert_eq!(ended, Ended::Eof);
    assert_eq!(out.len(), cases.len(), "{out:?}");
    for (i, (_, cli_args)) in cases.iter().enumerate() {
        let id = format!("\"id\":{}", i + 1);
        let line = out
            .iter()
            .find(|l| l.contains(&id))
            .unwrap_or_else(|| panic!("no response for id {}: {out:?}", i + 1));
        assert_eq!(
            result_of(line),
            one_shot_cli(cli_args),
            "served result differs from one-shot CLI for {cli_args:?}"
        );
    }
}

#[test]
fn warm_hit_is_bitwise_identical_and_marked_cached() {
    // One worker: the second identical request dequeues after the first
    // has checked its compiled session back in, so it must hit.
    let (out, _) = serve_script(
        &[
            r#"{"id":1,"kind":"analyze","params":{"arch":"a2"}}"#,
            r#"{"id":2,"kind":"analyze","params":{"arch":"a2"}}"#,
        ],
        16,
    );
    assert_eq!(out.len(), 2);
    let cold = out.iter().find(|l| l.contains("\"id\":1")).unwrap();
    let warm = out.iter().find(|l| l.contains("\"id\":2")).unwrap();
    assert!(cold.contains(r#""cached":false"#), "{cold}");
    assert!(warm.contains(r#""cached":true"#), "{warm}");
    assert_eq!(result_of(cold), result_of(warm), "cache hit changed bits");
}

#[test]
fn zero_capacity_cache_still_serves_identical_bits() {
    let (out, _) = serve_script(
        &[
            r#"{"id":1,"kind":"analyze","params":{"arch":"a1"}}"#,
            r#"{"id":2,"kind":"analyze","params":{"arch":"a1"}}"#,
        ],
        0,
    );
    let a = out.iter().find(|l| l.contains("\"id\":1")).unwrap();
    let b = out.iter().find(|l| l.contains("\"id\":2")).unwrap();
    assert!(a.contains(r#""cached":false"#) && b.contains(r#""cached":false"#));
    assert_eq!(result_of(a), result_of(b));
}

#[test]
fn tcp_round_trip_serves_and_drains_on_shutdown() {
    let server = Server::bind("127.0.0.1:0", ServeConfig::default()).expect("bind");
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = std::thread::spawn(move || server.run());

    let lines = vec![
        r#"{"id":1,"kind":"ping"}"#.to_owned(),
        r#"{"id":2,"kind":"analyze","params":{"arch":"a1"}}"#.to_owned(),
        r#"{"id":3,"kind":"stats"}"#.to_owned(),
    ];
    // Payload first, shutdown as a second call: a shutdown pipelined on
    // the same connection would race ahead and drain still-queued jobs.
    let responses =
        vertical_power_delivery::serve::call(&addr, &lines, false).expect("call round trip");
    assert_eq!(responses.len(), 3, "{responses:?}");
    for id in 1..=3 {
        let needle = format!("\"id\":{id}");
        let line = responses
            .iter()
            .find(|l| l.contains(&needle))
            .unwrap_or_else(|| panic!("no response for id {id}: {responses:?}"));
        assert!(line.contains(r#""ok":true"#), "{line}");
    }
    let drain = vertical_power_delivery::serve::call(&addr, &[], true).expect("drain call");
    assert_eq!(drain.len(), 1, "{drain:?}");
    assert!(
        drain[0].contains("\"id\":-1") && drain[0].contains(r#""kind":"shutdown""#),
        "{}",
        drain[0]
    );

    // The shutdown request must also stop the accept loop.
    handle.join().expect("server thread").expect("server run");
}

#[test]
fn transient_stream_chunks_are_ordered_and_summary_matches_one_shot_droop() {
    let (out, ended) = serve_script(
        &[
            r#"{"id":1,"kind":"droop","params":{"arch":"a2"}}"#,
            r#"{"id":2,"kind":"transient_stream","params":{"arch":"a2","chunk":1500}}"#,
        ],
        16,
    );
    assert_eq!(ended, Ended::Eof);
    // One droop response, then 6001 samples in chunks of ≤1500: five
    // chunk records and the summary.
    assert_eq!(out.len(), 7, "{out:?}");
    let droop = out.iter().find(|l| l.contains("\"id\":1")).unwrap();
    let stream: Vec<&String> = out.iter().filter(|l| l.contains("\"id\":2")).collect();
    assert_eq!(stream.len(), 6);
    let mut sample_total = 0i64;
    for (seq, line) in stream[..5].iter().enumerate() {
        let doc = Json::parse(line).expect("chunk record is valid JSON");
        assert_eq!(
            doc.get("seq").and_then(Json::as_i64),
            Some(seq as i64),
            "{line}"
        );
        assert_eq!(doc.get("done").and_then(Json::as_bool), Some(false));
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
        sample_total += doc
            .get("result")
            .and_then(|r| r.get("samples"))
            .and_then(Json::as_i64)
            .expect("chunk carries its sample count");
    }
    assert_eq!(sample_total, 6001, "chunks cover every sample exactly once");
    let summary = Json::parse(stream[5]).expect("summary record is valid JSON");
    assert_eq!(summary.get("done").and_then(Json::as_bool), Some(true));
    assert_eq!(summary.get("seq").and_then(Json::as_i64), Some(5));
    let report = summary
        .get("result")
        .and_then(|r| r.get("report"))
        .expect("summary carries the droop report")
        .to_string();
    let droop_report = Json::parse(droop)
        .unwrap()
        .get("result")
        .and_then(|r| r.get("report"))
        .expect("droop carries a report")
        .to_string();
    assert_eq!(
        report, droop_report,
        "stream summary differs from the one-shot droop report"
    );
}

#[test]
fn expired_stream_deadline_ends_with_a_typed_error_record() {
    // The first stream warms the scenario cache; the second carries a
    // zero budget, which has always expired by the stream's first
    // deadline check — one typed error record, no chunks.
    let (out, _) = serve_script(
        &[
            r#"{"id":1,"kind":"transient_stream","params":{"arch":"a0","chunk":4000}}"#,
            r#"{"id":2,"kind":"transient_stream","params":{"arch":"a0","chunk":4000},"deadline_ms":0}"#,
        ],
        16,
    );
    let expired: Vec<&String> = out.iter().filter(|l| l.contains("\"id\":2")).collect();
    assert_eq!(expired.len(), 1, "{expired:?}");
    assert!(
        expired[0].contains(r#""code":"deadline_exceeded""#)
            && expired[0].contains("chunk records"),
        "{}",
        expired[0]
    );
    // The aborted stream checked its compiled scenario back in: a third
    // stream on the same dispatcher would hit the cache — covered at
    // the engine layer; here we pin that the error is terminal (no
    // further id:2 records followed it).
}

#[test]
fn shutdown_drains_an_in_flight_stream_to_its_summary() {
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    let server = Server::bind("127.0.0.1:0", ServeConfig::default()).expect("bind");
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = std::thread::spawn(move || server.run());

    // Client A starts a finely-chunked stream and reads its first
    // record, guaranteeing the job is in flight (not merely queued).
    let stream = TcpStream::connect(&addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    writeln!(
        writer,
        r#"{{"id":1,"kind":"transient_stream","params":{{"arch":"a2","chunk":100}}}}"#
    )
    .expect("send request");
    writer.flush().expect("flush");
    let mut first = String::new();
    reader.read_line(&mut first).expect("first chunk");
    assert!(first.contains(r#""seq":0"#), "{first}");

    // Client B requests shutdown while A's stream is in flight.
    let drain = vertical_power_delivery::serve::call(&addr, &[], true).expect("shutdown call");
    assert!(drain[0].contains(r#""kind":"shutdown""#), "{}", drain[0]);

    // The drain must let A's stream run to completion: every remaining
    // chunk arrives, then the done:true summary.
    let mut saw_summary = false;
    let mut line = String::new();
    loop {
        line.clear();
        let n = reader.read_line(&mut line).expect("read stream record");
        if n == 0 {
            break;
        }
        if line.contains(r#""done":true"#) {
            assert!(
                line.contains(r#""samples":6001"#) && line.contains(r#""chunks":61"#),
                "{line}"
            );
            saw_summary = true;
            break;
        }
    }
    assert!(saw_summary, "shutdown cut the in-flight stream short");
    handle.join().expect("server thread").expect("server run");
}

#[test]
fn call_client_collects_stream_records_behind_one_expected_response() {
    let server = Server::bind("127.0.0.1:0", ServeConfig::default()).expect("bind");
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = std::thread::spawn(move || server.run());

    let lines = vec![
        r#"{"id":1,"kind":"transient_stream","params":{"arch":"a1","chunk":3000}}"#.to_owned(),
        r#"{"id":2,"kind":"ping"}"#.to_owned(),
    ];
    let responses = vertical_power_delivery::serve::call(&addr, &lines, false).expect("call");
    // 6001 samples in chunks of 3000 → three chunk records plus the
    // summary, and the ping: five lines, two of them terminal.
    assert_eq!(responses.len(), 5, "{responses:?}");
    let terminal = responses
        .iter()
        .filter(|l| !l.contains(r#""done":false"#))
        .count();
    assert_eq!(terminal, 2, "{responses:?}");

    let _ = vertical_power_delivery::serve::call(&addr, &[], true).expect("drain");
    handle.join().expect("server thread").expect("server run");
}

#[test]
fn typed_errors_flow_end_to_end() {
    let (out, _) = serve_script(
        &[
            r#"{"id":1,"kind":"impedance","params":{"arch":"all"}}"#,
            r#"{"id":2,"kind":"impedance","params":{"arch":"a1","points":1}}"#,
            r#"{"id":3,"kind":"mc","params":{"arch":"a1","samples":0}}"#,
        ],
        16,
    );
    assert_eq!(out.len(), 3, "{out:?}");
    let unsupported = out.iter().find(|l| l.contains("\"id\":1")).unwrap();
    assert!(
        unsupported.contains(r#""code":"unsupported""#),
        "{unsupported}"
    );
    let engine = out.iter().find(|l| l.contains("\"id\":2")).unwrap();
    assert!(engine.contains(r#""code":"engine""#), "{engine}");
    let bad = out.iter().find(|l| l.contains("\"id\":3")).unwrap();
    assert!(bad.contains(r#""code":"bad_request""#), "{bad}");
}
