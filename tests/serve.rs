//! End-to-end tests for the `vpd-serve` service: the stdio transport,
//! the multiplexed TCP transport with the `call` client, overload
//! behavior (typed rejects, never hangs or bare disconnects), batching
//! equivalence, and the determinism contract — a served `result`
//! document is bitwise-identical to the one-shot
//! `vpd --format json <command>` invocation, cold or cached.

use std::io::Cursor;
use std::process::Command;

use vertical_power_delivery::report::Json;
use vertical_power_delivery::serve::{serve_lines, Ended, ServeConfig, Server};

/// Runs one stdio serve session over a scripted input with a single
/// worker (so request order is deterministic) and returns the response
/// lines plus how the session ended.
fn serve_script(lines: &[&str], cache_capacity: usize) -> (Vec<String>, Ended) {
    let cfg = ServeConfig {
        workers: 1,
        queue_depth: 64,
        cache_capacity,
        max_batch: 16,
        ..ServeConfig::default()
    };
    let input = lines.join("\n");
    let (out, ended) =
        serve_lines(Cursor::new(input), Vec::<u8>::new(), &cfg).expect("serve session");
    let text = String::from_utf8(out).expect("utf8 output");
    (text.lines().map(str::to_owned).collect(), ended)
}

/// Extracts the `result` document of a success response, re-serialized.
fn result_of(response_line: &str) -> String {
    let doc = Json::parse(response_line).expect("response is valid JSON");
    assert_eq!(
        doc.get("ok").and_then(Json::as_bool),
        Some(true),
        "expected a success response: {response_line}"
    );
    doc.get("result")
        .expect("success carries a result")
        .to_string()
}

/// Runs the real `vpd` binary and returns its single-line JSON stdout.
fn one_shot_cli(args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_vpd"))
        .arg("--format")
        .arg("json")
        .args(args)
        .output()
        .expect("vpd binary runs");
    assert!(
        out.status.success(),
        "vpd {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout)
        .expect("utf8 stdout")
        .trim_end()
        .to_owned()
}

#[test]
fn served_results_match_the_one_shot_cli_bitwise() {
    // Each pair: a request line and the equivalent one-shot invocation.
    // Small sample/point counts keep the debug-build runtime sane; the
    // comparison is still bit-exact.
    let cases: &[(&str, &[&str])] = &[
        (
            r#"{"id":1,"kind":"analyze","params":{"arch":"a1","topology":"dpmih"}}"#,
            &["analyze", "--arch", "a1", "--topology", "dpmih"],
        ),
        (
            r#"{"id":2,"kind":"sharing","params":{"placement":"below","modules":12}}"#,
            &["sharing", "--placement", "below", "--modules", "12"],
        ),
        (
            r#"{"id":3,"kind":"mc","params":{"arch":"a0","samples":8,"seed":9}}"#,
            &["mc", "--arch", "a0", "--samples", "8", "--seed", "9"],
        ),
        (
            r#"{"id":4,"kind":"impedance","params":{"arch":"a1","points":24}}"#,
            &["impedance", "--arch", "a1", "--points", "24"],
        ),
        (
            r#"{"id":5,"kind":"faults","params":{"arch":"a2","random_k":2,"count":6,"seed":7}}"#,
            &[
                "faults",
                "--arch",
                "a2",
                "--random-k",
                "2",
                "--count",
                "6",
                "--seed",
                "7",
            ],
        ),
    ];
    let request_lines: Vec<&str> = cases.iter().map(|(req, _)| *req).collect();
    let (out, ended) = serve_script(&request_lines, 16);
    assert_eq!(ended, Ended::Eof);
    assert_eq!(out.len(), cases.len(), "{out:?}");
    for (i, (_, cli_args)) in cases.iter().enumerate() {
        let id = format!("\"id\":{}", i + 1);
        let line = out
            .iter()
            .find(|l| l.contains(&id))
            .unwrap_or_else(|| panic!("no response for id {}: {out:?}", i + 1));
        assert_eq!(
            result_of(line),
            one_shot_cli(cli_args),
            "served result differs from one-shot CLI for {cli_args:?}"
        );
    }
}

#[test]
fn dynamic_fault_kinds_match_the_one_shot_cli_reports_bitwise() {
    // `vpd faults --dynamic` and the three wire kinds share one wire
    // default table and one set of transient-window constants, so the
    // report documents must agree byte for byte: the CLI's
    // `impedance`/`transient`/`survival` fields are the served kinds'
    // `report` fields.
    let (out, ended) = serve_script(
        &[
            r#"{"id":1,"kind":"fault_impedance","params":{"arch":"a2"}}"#,
            r#"{"id":2,"kind":"fault_transient","params":{"arch":"a2"}}"#,
            r#"{"id":3,"kind":"survival","params":{"arch":"a2"}}"#,
        ],
        16,
    );
    assert_eq!(ended, Ended::Eof);
    let cli = Json::parse(&one_shot_cli(&["faults", "--arch", "a2", "--dynamic"]))
        .expect("CLI emits valid JSON");
    for (id, field) in [(1, "impedance"), (2, "transient"), (3, "survival")] {
        let needle = format!("\"id\":{id}");
        let line = out
            .iter()
            .find(|l| l.contains(&needle))
            .unwrap_or_else(|| panic!("no response for id {id}: {out:?}"));
        let served = Json::parse(&result_of(line))
            .expect("result is valid JSON")
            .get("report")
            .expect("dynamic kinds carry a report")
            .to_string();
        let from_cli = cli
            .get(field)
            .unwrap_or_else(|| panic!("CLI document lacks {field}"))
            .to_string();
        assert_eq!(served, from_cli, "served {field} report differs from CLI");
    }
}

#[test]
fn warm_hit_is_bitwise_identical_and_marked_cached() {
    // One worker: the second identical request dequeues after the first
    // has checked its compiled session back in, so it must hit.
    let (out, _) = serve_script(
        &[
            r#"{"id":1,"kind":"analyze","params":{"arch":"a2"}}"#,
            r#"{"id":2,"kind":"analyze","params":{"arch":"a2"}}"#,
        ],
        16,
    );
    assert_eq!(out.len(), 2);
    let cold = out.iter().find(|l| l.contains("\"id\":1")).unwrap();
    let warm = out.iter().find(|l| l.contains("\"id\":2")).unwrap();
    assert!(cold.contains(r#""cached":false"#), "{cold}");
    assert!(warm.contains(r#""cached":true"#), "{warm}");
    assert_eq!(result_of(cold), result_of(warm), "cache hit changed bits");
}

#[test]
fn zero_capacity_cache_still_serves_identical_bits() {
    let (out, _) = serve_script(
        &[
            r#"{"id":1,"kind":"analyze","params":{"arch":"a1"}}"#,
            r#"{"id":2,"kind":"analyze","params":{"arch":"a1"}}"#,
        ],
        0,
    );
    let a = out.iter().find(|l| l.contains("\"id\":1")).unwrap();
    let b = out.iter().find(|l| l.contains("\"id\":2")).unwrap();
    assert!(a.contains(r#""cached":false"#) && b.contains(r#""cached":false"#));
    assert_eq!(result_of(a), result_of(b));
}

#[test]
fn tcp_round_trip_serves_and_drains_on_shutdown() {
    let server = Server::bind("127.0.0.1:0", ServeConfig::default()).expect("bind");
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = std::thread::spawn(move || server.run());

    let lines = vec![
        r#"{"id":1,"kind":"ping"}"#.to_owned(),
        r#"{"id":2,"kind":"analyze","params":{"arch":"a1"}}"#.to_owned(),
        r#"{"id":3,"kind":"stats"}"#.to_owned(),
    ];
    // Payload first, shutdown as a second call: a shutdown pipelined on
    // the same connection would race ahead and drain still-queued jobs.
    let responses =
        vertical_power_delivery::serve::call(&addr, &lines, false).expect("call round trip");
    assert_eq!(responses.len(), 3, "{responses:?}");
    for id in 1..=3 {
        let needle = format!("\"id\":{id}");
        let line = responses
            .iter()
            .find(|l| l.contains(&needle))
            .unwrap_or_else(|| panic!("no response for id {id}: {responses:?}"));
        assert!(line.contains(r#""ok":true"#), "{line}");
    }
    let drain = vertical_power_delivery::serve::call(&addr, &[], true).expect("drain call");
    assert_eq!(drain.len(), 1, "{drain:?}");
    assert!(
        drain[0].contains("\"id\":-1") && drain[0].contains(r#""kind":"shutdown""#),
        "{}",
        drain[0]
    );

    // The shutdown request must also stop the accept loop.
    handle.join().expect("server thread").expect("server run");
}

#[test]
fn transient_stream_chunks_are_ordered_and_summary_matches_one_shot_droop() {
    let (out, ended) = serve_script(
        &[
            r#"{"id":1,"kind":"droop","params":{"arch":"a2"}}"#,
            r#"{"id":2,"kind":"transient_stream","params":{"arch":"a2","chunk":1500}}"#,
        ],
        16,
    );
    assert_eq!(ended, Ended::Eof);
    // One droop response, then 6001 samples in chunks of ≤1500: five
    // chunk records and the summary.
    assert_eq!(out.len(), 7, "{out:?}");
    let droop = out.iter().find(|l| l.contains("\"id\":1")).unwrap();
    let stream: Vec<&String> = out.iter().filter(|l| l.contains("\"id\":2")).collect();
    assert_eq!(stream.len(), 6);
    let mut sample_total = 0i64;
    for (seq, line) in stream[..5].iter().enumerate() {
        let doc = Json::parse(line).expect("chunk record is valid JSON");
        assert_eq!(
            doc.get("seq").and_then(Json::as_i64),
            Some(seq as i64),
            "{line}"
        );
        assert_eq!(doc.get("done").and_then(Json::as_bool), Some(false));
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
        sample_total += doc
            .get("result")
            .and_then(|r| r.get("samples"))
            .and_then(Json::as_i64)
            .expect("chunk carries its sample count");
    }
    assert_eq!(sample_total, 6001, "chunks cover every sample exactly once");
    let summary = Json::parse(stream[5]).expect("summary record is valid JSON");
    assert_eq!(summary.get("done").and_then(Json::as_bool), Some(true));
    assert_eq!(summary.get("seq").and_then(Json::as_i64), Some(5));
    let report = summary
        .get("result")
        .and_then(|r| r.get("report"))
        .expect("summary carries the droop report")
        .to_string();
    let droop_report = Json::parse(droop)
        .unwrap()
        .get("result")
        .and_then(|r| r.get("report"))
        .expect("droop carries a report")
        .to_string();
    assert_eq!(
        report, droop_report,
        "stream summary differs from the one-shot droop report"
    );
}

#[test]
fn expired_stream_deadline_ends_with_a_typed_error_record() {
    // The first stream warms the scenario cache; the second carries a
    // zero budget, which has always expired by the stream's first
    // deadline check — one typed error record, no chunks.
    let (out, _) = serve_script(
        &[
            r#"{"id":1,"kind":"transient_stream","params":{"arch":"a0","chunk":4000}}"#,
            r#"{"id":2,"kind":"transient_stream","params":{"arch":"a0","chunk":4000},"deadline_ms":0}"#,
        ],
        16,
    );
    let expired: Vec<&String> = out.iter().filter(|l| l.contains("\"id\":2")).collect();
    assert_eq!(expired.len(), 1, "{expired:?}");
    assert!(
        expired[0].contains(r#""code":"deadline_exceeded""#)
            && expired[0].contains("chunk records"),
        "{}",
        expired[0]
    );
    // The aborted stream checked its compiled scenario back in: a third
    // stream on the same dispatcher would hit the cache — covered at
    // the engine layer; here we pin that the error is terminal (no
    // further id:2 records followed it).
}

#[test]
fn shutdown_drains_an_in_flight_stream_to_its_summary() {
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    let server = Server::bind("127.0.0.1:0", ServeConfig::default()).expect("bind");
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = std::thread::spawn(move || server.run());

    // Client A starts a finely-chunked stream and reads its first
    // record, guaranteeing the job is in flight (not merely queued).
    let stream = TcpStream::connect(&addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    writeln!(
        writer,
        r#"{{"id":1,"kind":"transient_stream","params":{{"arch":"a2","chunk":100}}}}"#
    )
    .expect("send request");
    writer.flush().expect("flush");
    let mut first = String::new();
    reader.read_line(&mut first).expect("first chunk");
    assert!(first.contains(r#""seq":0"#), "{first}");

    // Client B requests shutdown while A's stream is in flight.
    let drain = vertical_power_delivery::serve::call(&addr, &[], true).expect("shutdown call");
    assert!(drain[0].contains(r#""kind":"shutdown""#), "{}", drain[0]);

    // The drain must let A's stream run to completion: every remaining
    // chunk arrives, then the done:true summary.
    let mut saw_summary = false;
    let mut line = String::new();
    loop {
        line.clear();
        let n = reader.read_line(&mut line).expect("read stream record");
        if n == 0 {
            break;
        }
        if line.contains(r#""done":true"#) {
            assert!(
                line.contains(r#""samples":6001"#) && line.contains(r#""chunks":61"#),
                "{line}"
            );
            saw_summary = true;
            break;
        }
    }
    assert!(saw_summary, "shutdown cut the in-flight stream short");
    handle.join().expect("server thread").expect("server run");
}

#[test]
fn call_client_collects_stream_records_behind_one_expected_response() {
    let server = Server::bind("127.0.0.1:0", ServeConfig::default()).expect("bind");
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = std::thread::spawn(move || server.run());

    let lines = vec![
        r#"{"id":1,"kind":"transient_stream","params":{"arch":"a1","chunk":3000}}"#.to_owned(),
        r#"{"id":2,"kind":"ping"}"#.to_owned(),
    ];
    let responses = vertical_power_delivery::serve::call(&addr, &lines, false).expect("call");
    // 6001 samples in chunks of 3000 → three chunk records plus the
    // summary, and the ping: five lines, two of them terminal.
    assert_eq!(responses.len(), 5, "{responses:?}");
    let terminal = responses
        .iter()
        .filter(|l| !l.contains(r#""done":false"#))
        .count();
    assert_eq!(terminal, 2, "{responses:?}");

    let _ = vertical_power_delivery::serve::call(&addr, &[], true).expect("drain");
    handle.join().expect("server thread").expect("server run");
}

#[test]
fn batched_sweeps_serve_the_same_bits_as_an_unbatched_server() {
    // Two servers, one worker each: one may coalesce queued
    // `sharing_sweep` requests into block solves, the other has
    // batching disabled. Whatever subset actually batches (that part is
    // timing-dependent), every response must be bitwise-identical
    // across the two servers — batching is a latency optimization, not
    // an observable behavior.
    let bind = |max_batch: usize| {
        let cfg = ServeConfig {
            workers: 1,
            queue_depth: 64,
            cache_capacity: 16,
            max_batch,
            ..ServeConfig::default()
        };
        let server = Server::bind("127.0.0.1:0", cfg).expect("bind");
        let addr = server.local_addr().expect("local addr").to_string();
        let handle = std::thread::spawn(move || server.run());
        (addr, handle)
    };
    let lines: Vec<String> = (0..8)
        .map(|i| {
            let v = 1.0 + 0.005 * f64::from(i % 3);
            format!(
                r#"{{"id":{i},"kind":"sharing_sweep","params":{{"placement":"below","modules":12,"setpoints":[{v},0.99]}}}}"#
            )
        })
        .collect();
    let mut results: Vec<Vec<(i64, String)>> = Vec::new();
    for max_batch in [16, 1] {
        let (addr, handle) = bind(max_batch);
        let responses =
            vertical_power_delivery::serve::call(&addr, &lines, false).expect("call round trip");
        assert_eq!(responses.len(), lines.len(), "one response per request");
        let mut tagged: Vec<(i64, String)> = responses
            .iter()
            .map(|l| {
                let doc = Json::parse(l).expect("valid response JSON");
                assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true), "{l}");
                (
                    doc.get("id").and_then(Json::as_i64).expect("response id"),
                    doc.get("result").expect("result document").to_string(),
                )
            })
            .collect();
        tagged.sort_by_key(|(id, _)| *id);
        results.push(tagged);
        let _ = vertical_power_delivery::serve::call(&addr, &[], true).expect("drain");
        handle.join().expect("server thread").expect("server run");
    }
    assert_eq!(
        results[0], results[1],
        "batched server produced different bits than the unbatched one"
    );
}

#[test]
fn overload_answers_every_request_with_a_typed_response() {
    // A tiny queue behind one worker, flooded well past capacity: the
    // contract is one well-formed NDJSON response per request — success
    // or a typed reject (`queue_full`, `shed`, `deadline_exceeded`) —
    // never a hang and never a bare disconnect. `call` itself enforces
    // the count (it blocks until every request is answered).
    let cfg = ServeConfig {
        workers: 1,
        queue_depth: 2,
        cache_capacity: 16,
        max_batch: 1,
        ..ServeConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", cfg).expect("bind");
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = std::thread::spawn(move || server.run());

    // Warm the admission controller's service-time estimate so
    // deadline-aware shedding can engage.
    let warm = vec![r#"{"id":100,"kind":"sharing","params":{"modules":12}}"#.to_owned()];
    let _ = vertical_power_delivery::serve::call(&addr, &warm, false).expect("warmup");

    let lines: Vec<String> = (0..24)
        .map(|i| {
            format!(r#"{{"id":{i},"kind":"sharing","params":{{"modules":12}},"deadline_ms":1}}"#)
        })
        .collect();
    let responses = vertical_power_delivery::serve::call(&addr, &lines, false).expect("flood");
    assert_eq!(responses.len(), lines.len(), "every request got an answer");
    let mut rejected = 0;
    for line in &responses {
        let doc = Json::parse(line).expect("well-formed NDJSON under overload");
        assert_eq!(doc.get("version").and_then(Json::as_i64), Some(2), "{line}");
        match doc.get("ok").and_then(Json::as_bool) {
            Some(true) => {}
            Some(false) => {
                let code = doc
                    .get("error")
                    .and_then(|e| e.get("code"))
                    .map(|c| c.to_string())
                    .unwrap_or_default();
                assert!(
                    ["\"queue_full\"", "\"shed\"", "\"deadline_exceeded\""]
                        .contains(&code.as_str()),
                    "unexpected reject code {code} in {line}"
                );
                rejected += 1;
            }
            None => panic!("response without ok flag: {line}"),
        }
    }
    assert!(
        rejected > 0,
        "a depth-2 queue flooded with 24 one-millisecond deadlines must reject some"
    );

    let _ = vertical_power_delivery::serve::call(&addr, &[], true).expect("drain");
    handle.join().expect("server thread").expect("server run");
}

#[test]
fn shutdown_answers_pipelined_sweeps_instead_of_dropping_them() {
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    // Client A pipelines several batchable sweeps; after A's first
    // response arrives (so at least one job went in flight), client B
    // requests shutdown. Every one of A's requests must still get
    // exactly one terminal response — completed work answers `ok`,
    // pulled-back queued work answers the typed `draining` reject.
    let cfg = ServeConfig {
        workers: 1,
        queue_depth: 64,
        cache_capacity: 16,
        max_batch: 4,
        ..ServeConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", cfg).expect("bind");
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = std::thread::spawn(move || server.run());

    let stream = TcpStream::connect(&addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);
    let total = 6;
    for i in 0..total {
        writeln!(
            writer,
            r#"{{"id":{i},"kind":"sharing_sweep","params":{{"placement":"below","modules":12,"setpoints":[1.0,1.005]}}}}"#
        )
        .expect("send request");
    }
    writer.flush().expect("flush");
    let mut first = String::new();
    reader.read_line(&mut first).expect("first response");
    assert!(first.contains(r#""id":0"#), "{first}");

    let drain = vertical_power_delivery::serve::call(&addr, &[], true).expect("shutdown call");
    assert!(drain[0].contains(r#""kind":"shutdown""#), "{}", drain[0]);

    let mut seen = vec![first];
    let mut line = String::new();
    loop {
        line.clear();
        let n = reader.read_line(&mut line).expect("read response");
        if n == 0 {
            break;
        }
        seen.push(line.clone());
    }
    assert_eq!(
        seen.len(),
        total,
        "every pipelined request answered: {seen:?}"
    );
    for i in 0..total {
        let needle = format!("\"id\":{i}");
        let response = seen
            .iter()
            .find(|l| l.contains(&needle))
            .unwrap_or_else(|| panic!("no response for id {i}: {seen:?}"));
        assert!(
            response.contains(r#""ok":true"#) || response.contains(r#""code":"draining""#),
            "{response}"
        );
    }
    handle.join().expect("server thread").expect("server run");
}

/// Current thread count of this test process, from `/proc/self/status`.
fn process_threads() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").expect("procfs");
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .expect("Threads: line")
}

#[test]
fn idle_connections_cost_buffers_not_threads() {
    let cfg = ServeConfig {
        workers: 2,
        queue_depth: 64,
        cache_capacity: 4,
        max_batch: 16,
        ..ServeConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", cfg).expect("bind");
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = std::thread::spawn(move || server.run());

    // Park 100 idle connections on the multiplexer.
    let idle: Vec<std::net::TcpStream> = (0..100)
        .map(|_| std::net::TcpStream::connect(&addr).expect("idle connect"))
        .collect();
    // The server stays responsive with all of them open.
    let ping = vec![r#"{"id":1,"kind":"ping"}"#.to_owned()];
    let responses = vertical_power_delivery::serve::call(&addr, &ping, false).expect("ping");
    assert!(responses[0].contains(r#""ok":true"#), "{}", responses[0]);
    // One event-loop thread plus two workers serve all 101 connections;
    // a thread-per-connection design would sit above 100 here.
    let threads = process_threads();
    assert!(
        threads < 20,
        "expected a multiplexed server, found {threads} threads with 100 idle connections"
    );
    drop(idle);

    let _ = vertical_power_delivery::serve::call(&addr, &[], true).expect("drain");
    handle.join().expect("server thread").expect("server run");
}

#[test]
fn post_idle_requests_are_not_shed_on_a_stale_estimate() {
    // Regression: the admission controller's service-time EMA used to
    // survive idle periods indefinitely, so the first short-deadline
    // request after a lull was shed against a stale estimate from a
    // workload that no longer exists. With a short trust window, a
    // post-idle probe must never see `shed` — the estimate is treated
    // as unknown until a fresh completion re-seeds it.
    let cfg = ServeConfig {
        workers: 1,
        queue_depth: 64,
        cache_capacity: 16,
        max_batch: 1,
        shed_staleness: std::time::Duration::from_millis(50),
    };
    let server = Server::bind("127.0.0.1:0", cfg).expect("bind");
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = std::thread::spawn(move || server.run());

    // Seed the EMA with a genuinely slow request.
    let seed = vec![r#"{"id":100,"kind":"mc","params":{"arch":"a1","samples":200}}"#.to_owned()];
    let seeded = vertical_power_delivery::serve::call(&addr, &seed, false).expect("seed call");
    assert!(seeded[0].contains(r#""ok":true"#), "{}", seeded[0]);

    // Idle past the trust window, then pipeline two slow leads (so the
    // probe is admitted with work queued — the only state where
    // shedding can fire) and a one-millisecond-deadline probe.
    std::thread::sleep(std::time::Duration::from_millis(120));
    let lines = vec![
        r#"{"id":1,"kind":"mc","params":{"arch":"a1","samples":200}}"#.to_owned(),
        r#"{"id":2,"kind":"mc","params":{"arch":"a1","samples":200,"seed":5}}"#.to_owned(),
        r#"{"id":3,"kind":"sharing","params":{"modules":12},"deadline_ms":1}"#.to_owned(),
    ];
    let responses = vertical_power_delivery::serve::call(&addr, &lines, false).expect("probe");
    assert_eq!(responses.len(), lines.len(), "{responses:?}");
    let probe = responses
        .iter()
        .find(|l| l.contains(r#""id":3"#))
        .expect("probe answered");
    // Expiring in the queue (`deadline_exceeded`) or completing are both
    // legitimate; being shed against the pre-idle estimate is the bug.
    assert!(
        !probe.contains(r#""code":"shed""#),
        "post-idle probe was shed on a stale estimate: {probe}"
    );

    let _ = vertical_power_delivery::serve::call(&addr, &[], true).expect("drain");
    handle.join().expect("server thread").expect("server run");
}

#[test]
fn typed_errors_flow_end_to_end() {
    let (out, _) = serve_script(
        &[
            r#"{"id":1,"kind":"impedance","params":{"arch":"all"}}"#,
            r#"{"id":2,"kind":"impedance","params":{"arch":"a1","points":1}}"#,
            r#"{"id":3,"kind":"mc","params":{"arch":"a1","samples":0}}"#,
        ],
        16,
    );
    assert_eq!(out.len(), 3, "{out:?}");
    let unsupported = out.iter().find(|l| l.contains("\"id\":1")).unwrap();
    assert!(
        unsupported.contains(r#""code":"unsupported""#),
        "{unsupported}"
    );
    let engine = out.iter().find(|l| l.contains("\"id\":2")).unwrap();
    assert!(engine.contains(r#""code":"engine""#), "{engine}");
    let bad = out.iter().find(|l| l.contains("\"id\":3")).unwrap();
    assert!(bad.contains(r#""code":"bad_request""#), "{bad}");
}
