//! Integration tests for the extension subsystems: AC impedance,
//! SC output-impedance theory, electro-thermal coupling, and placement
//! optimization — all exercised through the public facade.

use vertical_power_delivery::circuit::log_sweep;
use vertical_power_delivery::converters::ScConverterModel;
use vertical_power_delivery::core::{
    electro_thermal, optimize_placement, target_impedance, thermal_comparison, AnnealSettings,
    ElectroThermalSettings, PdnModel, PlacementObjective,
};
use vertical_power_delivery::prelude::*;
use vertical_power_delivery::thermal::{DeratingModel, DeviceTechnology, ThermalMesh};

#[test]
fn e1_impedance_ordering_and_target() {
    let spec = SystemSpec::paper_default();
    let zt = target_impedance(&spec, 0.05, 0.25);
    let peak = |arch| {
        PdnModel::for_architecture(arch)
            .peak_impedance()
            .unwrap()
            .value()
    };
    let a0 = peak(Architecture::Reference);
    let a1 = peak(Architecture::InterposerPeriphery);
    let a2 = peak(Architecture::InterposerEmbedded);
    assert!(
        a2 < a1 && a1 < a0,
        "impedance falls as the VR approaches the die"
    );
    assert!(
        a0 > 100.0 * zt.value(),
        "board conversion misses Z_t by orders of magnitude"
    );
    assert!(a2 < zt.value(), "under-die IVR meets Z_t");
}

#[test]
fn e1_impedance_profile_is_consistent_with_dc() {
    // At very low frequency, |Z| approaches the DC series resistance —
    // checked through the same netlist machinery the DC solver uses.
    let model = PdnModel::for_architecture(Architecture::InterposerEmbedded);
    let z = model.impedance_profile(&[Hertz::new(1.0)]).unwrap()[0].magnitude();
    let dc = model.vr_resistance.value()
        + model.distribution_resistance.value()
        + model.vertical_resistance.value();
    assert!((z - dc).abs() < 0.5 * dc, "low-f |Z| {z} vs dc {dc}");
}

#[test]
fn sc_theory_supports_section_iii_claims() {
    let c = Farads::from_microfarads(1.0);
    let r = Ohms::from_milliohms(5.0);
    let hard = ScConverterModel::series_parallel(4, c, r).unwrap();
    let soft = ScConverterModel::series_parallel(4, c, r)
        .unwrap()
        .soft_charged();
    let f_low = Hertz::from_kilohertz(200.0);
    // Soft charging kills the SSL asymptote...
    assert!(soft.r_out(f_low).value() < hard.r_out(f_low).value() / 3.0);
    // ...and the corner frequency marks where more switching stops
    // helping the hard-switched design.
    let fc = hard.corner_frequency();
    let above = hard.r_out(Hertz::new(fc.value() * 10.0)).value();
    let fsl = hard.r_fsl().value();
    assert!((above - fsl).abs() < 0.05 * fsl);
}

#[test]
fn e2_thermal_coupling_through_facade() {
    let spec = SystemSpec::paper_default();
    let calib = Calibration::paper_default();
    let (a1, a2) = thermal_comparison(VrTopologyKind::Dsch, &spec, &calib).unwrap();
    assert!(a1.converged && a2.converged);
    assert!(a2.peak_temperature.value() > a1.peak_temperature.value());
    // The derated loss must feed back consistently: penalty > 0 and
    // bounded (no runaway).
    for r in [&a1, &a2] {
        let penalty = r.thermal_penalty().value();
        assert!(penalty > 0.0);
        assert!(penalty < 0.5 * r.nominal_conversion_loss.value());
    }
}

#[test]
fn e2_si_modules_can_exceed_rating_where_gan_does_not() {
    // Crank the coolant temperature: silicon's 125 °C rating is the
    // first to go.
    let spec = SystemSpec::paper_default();
    let calib = Calibration::paper_default();
    let run = |tech| {
        electro_thermal(
            Architecture::InterposerEmbedded,
            VrTopologyKind::Dsch,
            &spec,
            &calib,
            &AnalysisOptions::default(),
            &ElectroThermalSettings {
                technology: tech,
                ..ElectroThermalSettings::default()
            },
        )
        .unwrap()
    };
    let si = run(DeviceTechnology::Si);
    let gan = run(DeviceTechnology::GaN);
    // GaN headroom (150 °C rating, gentler derating) is never worse.
    assert!(gan.thermal_penalty().value() <= si.thermal_penalty().value());
    assert!(gan.worst_module_temperature.value() <= si.worst_module_temperature.value() + 1.0);
}

#[test]
fn e3_optimizer_improves_the_paper_placement() {
    let spec = SystemSpec::paper_default();
    let calib = Calibration::paper_default();
    let opt = optimize_placement(
        &spec,
        &calib,
        48,
        PlacementObjective::WorstModuleCurrent,
        &AnnealSettings {
            iterations: 150,
            ..AnnealSettings::default()
        },
    )
    .unwrap();
    assert!(opt.improvement() > 0.1, "≥10% better than the uniform grid");
    // The optimized placement still supplies the full kiloampere.
    let total: f64 = opt.report.per_vr().iter().map(|a| a.value()).sum();
    assert!((total - 1000.0).abs() < 0.5);
}

#[test]
fn thermal_mesh_responds_to_cooling_quality() {
    // The same 1 kW map on a weaker cold plate runs hotter — sanity
    // across the thermal substrate's public API.
    let strong = ThermalMesh::silicon_die_default(15, 15).unwrap();
    let weak = ThermalMesh::new(
        15,
        15,
        0.075,
        2.0e4 * (500e-6 / 225.0),
        vertical_power_delivery::units::Celsius::new(25.0),
    )
    .unwrap();
    let p = vec![vec![Watts::new(1000.0 / 225.0); 15]; 15];
    let t_strong = strong.solve(&p).unwrap().max();
    let t_weak = weak.solve(&p).unwrap().max();
    assert!(t_weak.value() > t_strong.value() + 20.0);
}

#[test]
fn derating_models_are_ordered() {
    let si = DeratingModel::for_technology(DeviceTechnology::Si);
    let gan = DeratingModel::for_technology(DeviceTechnology::GaN);
    for t in [50.0, 85.0, 110.0] {
        let t = vertical_power_delivery::units::Celsius::new(t);
        assert!(si.loss_factor(t) >= gan.loss_factor(t));
    }
    assert!(gan.t_max().value() > si.t_max().value());
}

#[test]
fn ac_sweep_helper_is_logarithmic() {
    let grid = log_sweep(Hertz::new(10.0), Hertz::new(1e6), 6);
    let ratios: Vec<f64> = grid
        .windows(2)
        .map(|w| w[1].value() / w[0].value())
        .collect();
    for pair in ratios.windows(2) {
        assert!((pair[0] - pair[1]).abs() < 1e-9, "constant log spacing");
    }
}
