//! The frequency-domain sweep engine: compiled-plan, parallel PDN
//! impedance profiles.
//!
//! This is the AC counterpart of the Monte-Carlo and fault engines: a
//! [`PdnModel`] ladder is compiled **once** into an
//! [`vpd_circuit::AcPlan`], frequency points fan out through
//! [`crate::par_map_with`] with one cloned plan per worker, and the
//! result is an [`ImpedanceProfile`] report (peak, antiresonant peaks,
//! target-impedance margin, first violating frequency) implementing
//! [`vpd_report::Render`]. Every point depends only on the compiled
//! plan and its frequency, so the serial and parallel sweeps are
//! **bitwise identical** — the same contract the DC engines make.

use crate::par::par_map_with;
use crate::{target_impedance, Architecture, CoreError, PdnModel, SystemSpec};
use vpd_circuit::{log_sweep_checked, AcPlan, AcPoint, NodeId};
use vpd_units::{Hertz, Ohms};

/// Sweep grid and execution settings for [`ImpedanceSweep`].
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct ImpedanceSweepSettings {
    /// Sweep start frequency.
    pub fmin: Hertz,
    /// Sweep stop frequency.
    pub fmax: Hertz,
    /// Number of logarithmically spaced points.
    pub points: usize,
    /// Worker threads (0 = auto). The result is identical for every
    /// thread count.
    pub threads: usize,
}

impl Default for ImpedanceSweepSettings {
    /// The grid of [`PdnModel::default_peak_sweep`]: 200 points,
    /// 1 kHz – 1 GHz, auto threads.
    fn default() -> Self {
        Self {
            fmin: crate::impedance::DEFAULT_SWEEP_FMIN,
            fmax: crate::impedance::DEFAULT_SWEEP_FMAX,
            points: crate::impedance::DEFAULT_SWEEP_POINTS,
            threads: 0,
        }
    }
}

impl ImpedanceSweepSettings {
    /// The validated frequency grid for these settings.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Circuit`] for bad bounds or point counts —
    /// no input panics, so CLI flags can flow here directly.
    pub fn frequencies(&self) -> Result<Vec<Hertz>, CoreError> {
        log_sweep_checked(self.fmin, self.fmax, self.points).map_err(CoreError::Circuit)
    }
}

/// A reusable impedance-sweep engine over one compiled PDN ladder.
///
/// ```
/// use vpd_core::{Architecture, ImpedanceSweep, ImpedanceSweepSettings, SystemSpec};
///
/// # fn main() -> Result<(), vpd_core::CoreError> {
/// let spec = SystemSpec::paper_default();
/// let sweep = ImpedanceSweep::for_architecture(Architecture::InterposerEmbedded, &spec)?;
/// let profile = sweep.run(&ImpedanceSweepSettings {
///     points: 40,
///     ..ImpedanceSweepSettings::default()
/// })?;
/// assert!(profile.meets_target(), "A2 flattens the profile");
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct ImpedanceSweep {
    label: String,
    plan: AcPlan,
    die: NodeId,
    target: Ohms,
}

impl ImpedanceSweep {
    /// Compiles `model` into a sweep engine labelled `label`, judged
    /// against `target`.
    ///
    /// # Errors
    ///
    /// Propagates netlist-construction failures from the model.
    pub fn new(
        model: &PdnModel,
        label: impl Into<String>,
        target: Ohms,
    ) -> Result<Self, CoreError> {
        let (net, die) = model.netlist()?;
        Ok(Self {
            label: label.into(),
            plan: AcPlan::compile(&net),
            die,
            target,
        })
    }

    /// The engine for an architecture's representative [`PdnModel`],
    /// judged against the paper's target impedance (5% ripple budget,
    /// 25% load step).
    ///
    /// # Errors
    ///
    /// Propagates netlist-construction failures from the model.
    pub fn for_architecture(arch: Architecture, spec: &SystemSpec) -> Result<Self, CoreError> {
        Self::new(
            &PdnModel::for_architecture(arch),
            arch.name(),
            target_impedance(spec, 0.05, 0.25),
        )
    }

    /// The target impedance this engine judges profiles against.
    #[must_use]
    pub fn target(&self) -> Ohms {
        self.target
    }

    /// Runs the sweep over the settings' validated grid.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Circuit`] for invalid grid settings or a
    /// failed AC solve.
    pub fn run(&self, settings: &ImpedanceSweepSettings) -> Result<ImpedanceProfile, CoreError> {
        self.run_over(&settings.frequencies()?, settings.threads)
    }

    /// Runs the sweep over an explicit frequency grid on `threads`
    /// workers (0 = auto). Serial and parallel runs are bitwise
    /// identical.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Circuit`] when an AC solve fails.
    pub fn run_over(&self, freqs: &[Hertz], threads: usize) -> Result<ImpedanceProfile, CoreError> {
        vpd_obs::incr("zsweep.runs");
        vpd_obs::add("zsweep.points", freqs.len() as u64);
        let die = self.die;
        let results = par_map_with(threads, freqs, &self.plan, |plan, &f| {
            plan.impedance_at(die, f)
        });
        let points = results
            .into_iter()
            .collect::<Result<Vec<AcPoint>, _>>()
            .map_err(CoreError::Circuit)?;
        Ok(ImpedanceProfile::from_points(
            self.label.clone(),
            points,
            self.target,
        ))
    }
}

/// A full impedance-profile report: the swept points plus the derived
/// target-impedance verdict. Renders as text or JSON via
/// [`vpd_report::Render`].
#[derive(Clone, PartialEq, Debug)]
pub struct ImpedanceProfile {
    /// What was swept (architecture name or a caller label).
    pub label: String,
    /// The swept points, in frequency order.
    pub points: Vec<AcPoint>,
    /// The target impedance the profile is judged against.
    pub target: Ohms,
    /// The peak impedance magnitude.
    pub peak: Ohms,
    /// The frequency of the peak.
    pub peak_frequency: Hertz,
    /// Interior local maxima — the antiresonant peaks between decap
    /// stages.
    pub antiresonances: Vec<AcPoint>,
    /// The lowest swept frequency whose magnitude exceeds the target,
    /// if any.
    pub first_violation: Option<Hertz>,
}

impl ImpedanceProfile {
    /// Derives the report quantities from swept points.
    #[must_use]
    pub fn from_points(label: String, points: Vec<AcPoint>, target: Ohms) -> Self {
        let (peak, peak_frequency) = points.iter().map(|p| (p.magnitude(), p.frequency)).fold(
            (0.0, Hertz::new(0.0)),
            |(bm, bf), (m, f)| {
                if m > bm {
                    (m, f)
                } else {
                    (bm, bf)
                }
            },
        );
        let antiresonances = points
            .windows(3)
            .filter(|w| w[1].magnitude() > w[0].magnitude() && w[1].magnitude() > w[2].magnitude())
            .map(|w| w[1])
            .collect();
        let first_violation = points
            .iter()
            .find(|p| p.magnitude() > target.value())
            .map(|p| p.frequency);
        Self {
            label,
            points,
            target,
            peak: Ohms::new(peak),
            peak_frequency,
            antiresonances,
            first_violation,
        }
    }

    /// Whether the whole profile stays at or below the target.
    #[must_use]
    pub fn meets_target(&self) -> bool {
        self.first_violation.is_none()
    }

    /// Target-impedance margin as a fraction of the target: positive
    /// means the peak sits below `Z_t` by that fraction, negative means
    /// it overshoots.
    ///
    /// Returns `None` when no margin is defined: an empty sweep (there
    /// is no peak to judge) or a zero/near-zero or non-finite target
    /// (the ratio would divide to `±inf`/`NaN` instead of meaning
    /// anything).
    #[must_use]
    pub fn margin(&self) -> Option<f64> {
        if self.points.is_empty() || !self.target.value().is_normal() || self.target.value() < 0.0 {
            return None;
        }
        let ratio = self.peak.value() / self.target.value();
        ratio.is_finite().then_some(1.0 - ratio)
    }
}

/// Per-architecture profiles over one common grid — the all-architecture
/// comparison mode of `vpd impedance`.
#[derive(Clone, PartialEq, Debug)]
pub struct ImpedanceComparison {
    /// One profile per compared architecture, in input order.
    pub profiles: Vec<ImpedanceProfile>,
}

/// Sweeps every architecture in `archs` over the same grid and collects
/// the profiles for side-by-side rendering.
///
/// # Errors
///
/// Returns the first model or solver failure.
pub fn compare_architectures(
    archs: &[Architecture],
    spec: &SystemSpec,
    settings: &ImpedanceSweepSettings,
) -> Result<ImpedanceComparison, CoreError> {
    let freqs = settings.frequencies()?;
    let profiles = archs
        .iter()
        .map(|&arch| {
            ImpedanceSweep::for_architecture(arch, spec)?.run_over(&freqs, settings.threads)
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(ImpedanceComparison { profiles })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpd_circuit::AcAnalysis;

    fn small() -> ImpedanceSweepSettings {
        ImpedanceSweepSettings {
            points: 48,
            ..ImpedanceSweepSettings::default()
        }
    }

    #[test]
    fn serial_and_parallel_sweeps_are_bitwise_identical() {
        let spec = SystemSpec::paper_default();
        let sweep = ImpedanceSweep::for_architecture(Architecture::Reference, &spec).unwrap();
        let freqs = small().frequencies().unwrap();
        let serial = sweep.run_over(&freqs, 1).unwrap();
        for threads in [2, 3, 8] {
            assert_eq!(sweep.run_over(&freqs, threads).unwrap(), serial);
        }
        assert_eq!(sweep.run_over(&freqs, 0).unwrap(), serial);
    }

    #[test]
    fn engine_matches_the_reference_analysis_path_bitwise() {
        let spec = SystemSpec::paper_default();
        for arch in [
            Architecture::Reference,
            Architecture::InterposerPeriphery,
            Architecture::InterposerEmbedded,
        ] {
            let model = PdnModel::for_architecture(arch);
            let freqs = small().frequencies().unwrap();
            let (net, die) = model.netlist().unwrap();
            let reference = AcAnalysis::new(&net).impedance(die, &freqs).unwrap();
            let profile = ImpedanceSweep::for_architecture(arch, &spec)
                .unwrap()
                .run_over(&freqs, 1)
                .unwrap();
            assert_eq!(profile.points, reference, "{}", arch.name());
        }
    }

    #[test]
    fn profile_derives_peak_violation_and_antiresonances() {
        let spec = SystemSpec::paper_default();
        let freqs = small().frequencies().unwrap();
        let a0 = ImpedanceSweep::for_architecture(Architecture::Reference, &spec)
            .unwrap()
            .run_over(&freqs, 1)
            .unwrap();
        // A0's board-level loop violates the target with antiresonant
        // structure; the peak must be one of the swept magnitudes.
        assert!(!a0.meets_target());
        assert!(a0.first_violation.is_some());
        assert!(a0.margin().unwrap() < 0.0);
        assert!(!a0.antiresonances.is_empty());
        let max = a0.points.iter().map(AcPoint::magnitude).fold(0.0, f64::max);
        assert_eq!(a0.peak.value(), max);
        assert!(a0
            .points
            .iter()
            .any(|p| p.frequency == a0.peak_frequency && p.magnitude() == max));

        let a2 = ImpedanceSweep::for_architecture(Architecture::InterposerEmbedded, &spec)
            .unwrap()
            .run_over(&freqs, 1)
            .unwrap();
        assert!(a2.meets_target());
        assert_eq!(a2.first_violation, None);
        assert!(a2.margin().unwrap() > 0.0);
    }

    #[test]
    fn margin_is_none_for_empty_sweeps_and_degenerate_targets() {
        // Empty point set: no peak exists, so no margin — not the
        // misleading `1.0` the raw formula would produce.
        let empty = ImpedanceProfile::from_points("empty".into(), Vec::new(), Ohms::new(0.01));
        assert_eq!(empty.margin(), None);
        assert!(empty.meets_target(), "no point can violate");

        let point = |f: f64, re: f64| AcPoint {
            frequency: Hertz::new(f),
            response: vpd_numeric::Complex::from_real(re),
        };
        let points = vec![point(1e3, 0.5), point(1e4, 2.0), point(1e5, 1.0)];
        // A zero target divides to ±inf; near-zero (subnormal) and
        // non-finite targets are equally meaningless.
        for bad in [0.0, f64::MIN_POSITIVE * 0.5, f64::NAN, f64::INFINITY] {
            let p = ImpedanceProfile::from_points("bad".into(), points.clone(), Ohms::new(bad));
            assert_eq!(p.margin(), None, "target {bad}");
        }
        // A healthy target still reports the exact ratio margin.
        let good = ImpedanceProfile::from_points("good".into(), points, Ohms::new(4.0));
        assert_eq!(good.margin(), Some(0.5));
    }

    #[test]
    fn peak_agrees_with_pdn_model_over_the_same_grid() {
        let spec = SystemSpec::paper_default();
        let model = PdnModel::for_architecture(Architecture::InterposerPeriphery);
        let freqs = small().frequencies().unwrap();
        let profile = ImpedanceSweep::for_architecture(Architecture::InterposerPeriphery, &spec)
            .unwrap()
            .run_over(&freqs, 1)
            .unwrap();
        let peak = model.peak_impedance_over(&freqs).unwrap();
        assert_eq!(profile.peak.value(), peak.value());
    }

    #[test]
    fn default_settings_match_the_default_peak_sweep() {
        let freqs = ImpedanceSweepSettings::default().frequencies().unwrap();
        assert_eq!(freqs, PdnModel::default_peak_sweep());
    }

    #[test]
    fn comparison_keeps_input_order_and_rejects_bad_grids() {
        let spec = SystemSpec::paper_default();
        let archs = [Architecture::Reference, Architecture::InterposerEmbedded];
        let cmp = compare_architectures(&archs, &spec, &small()).unwrap();
        assert_eq!(cmp.profiles.len(), 2);
        assert_eq!(cmp.profiles[0].label, "A0");
        assert!(cmp.profiles[0].peak.value() > cmp.profiles[1].peak.value());

        let bad = ImpedanceSweepSettings {
            points: 1,
            ..small()
        };
        assert!(matches!(
            compare_architectures(&archs, &spec, &bad),
            Err(CoreError::Circuit(_))
        ));
    }
}
