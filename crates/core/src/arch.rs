//! The paper's power-delivery architectures and their PCB-to-POL
//! analysis (§II and §IV).

use crate::gridshare::{
    placement_droop, placement_sites, solve_sharing, SharingReport, SharingSolver,
};
use crate::loss::{LossBreakdown, LossKind, LossSegment};
use crate::placement::{modules_required, VrPlacement};
use crate::{Calibration, CoreError, SystemSpec};
use vpd_circuit::DcPlanMode;
use vpd_converters::{Converter, TopologyCharacteristics, VrTopologyKind};
use vpd_package::{required_platform_area, InterconnectTech, ViaAllocation};
use vpd_units::{Amps, SquareMeters, Volts, Watts};

/// A power-delivery architecture from the paper's §II.
#[derive(Clone, Copy, PartialEq, Debug, serde::Serialize, serde::Deserialize)]
#[non_exhaustive]
pub enum Architecture {
    /// A0 — 48 V→1 V conversion at the PCB (transformer + multiphase
    /// buck), POL current through the whole PPDN.
    Reference,
    /// A1 — single-stage conversion with on-interposer power transistors
    /// along the die periphery, passives embedded beneath them.
    InterposerPeriphery,
    /// A2 — single-stage conversion with transistors and passives
    /// embedded in the interposer under the die.
    InterposerEmbedded,
    /// A3 — two stages: 48 V→bus on the interposer periphery, bus→1 V
    /// under the die (e.g. in a dedicated power die). The paper
    /// evaluates 12 V and 6 V buses.
    TwoStage {
        /// Intermediate bus voltage.
        bus: Volts,
    },
}

impl Architecture {
    /// The five configurations evaluated in the paper's Figure 7.
    #[must_use]
    pub fn paper_set() -> Vec<Self> {
        vec![
            Self::Reference,
            Self::InterposerPeriphery,
            Self::InterposerEmbedded,
            Self::TwoStage {
                bus: Volts::new(12.0),
            },
            Self::TwoStage {
                bus: Volts::new(6.0),
            },
        ]
    }

    /// Short name (`"A0"`, `"A1"`, `"A2"`, `"A3@12V"`, `"A3@6V"`).
    #[must_use]
    pub fn name(&self) -> String {
        match self {
            Self::Reference => "A0".to_owned(),
            Self::InterposerPeriphery => "A1".to_owned(),
            Self::InterposerEmbedded => "A2".to_owned(),
            Self::TwoStage { bus } => format!("A3@{:.0}V", bus.value()),
        }
    }

    /// One-line description.
    #[must_use]
    pub fn description(&self) -> String {
        match self {
            Self::Reference => "48V-to-1V conversion at the PCB".to_owned(),
            Self::InterposerPeriphery => {
                "single-stage VRs on interposer along the die periphery".to_owned()
            }
            Self::InterposerEmbedded => {
                "single-stage VRs embedded in interposer below the die".to_owned()
            }
            Self::TwoStage { bus } => format!(
                "two-stage: 48V-to-{0:.0}V at the periphery, {0:.0}V-to-1V below the die",
                bus.value()
            ),
        }
    }
}

impl std::fmt::Display for Architecture {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

/// The number of distributed VR positions the paper's Figure 7
/// evaluation implies: with 1 kA shared across the A1 ring at 16–27 A
/// per module (mean ≈ 21 A), all topologies are spread over ~48
/// positions. Table II's smaller DPMIH counts (8 along the periphery, 7
/// below) count only the modules fitting one ring row / one footprint
/// layer; §IV's "additional rows of VRs are utilized farther away from
/// the perimeter" fills the rest.
pub const PAPER_VR_POSITIONS: usize = 48;

/// Analysis options.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct AnalysisOptions {
    /// Permit regulator modules beyond their published maximum load,
    /// extrapolating the loss curve (the paper does this implicitly for
    /// A2, whose central modules reach 93 A against a 30 A DSCH rating).
    pub allow_overload: bool,
    /// Override the POL-stage module count (default:
    /// [`PAPER_VR_POSITIONS`]). Lets the explorer e.g. run 3LHD with the
    /// 84 modules its 12 A rating needs at 1 kA.
    pub module_count: Option<usize>,
    /// Sparse-solver mode for the die-grid mesh (default
    /// [`DcPlanMode::WarmCg`]). [`DcPlanMode::DirectCholesky`] answers
    /// each operating point with an exact factorization — fastest when
    /// consecutive solves reuse the factor (setpoint/load sweeps), and
    /// iteration-count-free everywhere, at the price of a refactor
    /// whenever the matrix values move.
    pub solve_mode: DcPlanMode,
}

impl Default for AnalysisOptions {
    fn default() -> Self {
        Self {
            allow_overload: true,
            module_count: None,
            solve_mode: DcPlanMode::WarmCg,
        }
    }
}

/// The result of analyzing one architecture × topology configuration.
#[derive(Clone, Debug)]
pub struct ArchitectureReport {
    /// Analyzed architecture.
    pub architecture: Architecture,
    /// POL-stage topology (None for the reference architecture).
    pub topology: Option<VrTopologyKind>,
    /// The loss decomposition (Figure 7 bar).
    pub breakdown: LossBreakdown,
    /// Die-grid current sharing of the POL-side regulators/entry
    /// clusters.
    pub sharing: SharingReport,
    /// First-stage module count (A3 only).
    pub stage1_modules: Option<usize>,
    /// POL-stage module count.
    pub stage2_modules: usize,
    /// Per-level interconnect utilization `(tech name, fraction of
    /// sites)`.
    pub utilization: Vec<(String, f64)>,
    /// Whether any module exceeded its published rating (extrapolated
    /// loss curve).
    pub overloaded: bool,
}

impl ArchitectureReport {
    /// Total loss as percent of the nominal POL power.
    #[must_use]
    pub fn loss_percent(&self) -> f64 {
        self.breakdown.percent_of_pol_power(self.breakdown.total())
    }
}

/// Picks the single-stage 48 V→1 V converter for a topology.
#[must_use]
pub fn single_stage_converter(kind: VrTopologyKind) -> Converter {
    match kind {
        VrTopologyKind::Dpmih => Converter::dpmih_48v_to_1v(),
        VrTopologyKind::Dsch => Converter::dsch_48v_to_1v(),
        VrTopologyKind::ThreeLevelHybridDickson => {
            Converter::three_level_hybrid_dickson_48v_to_1v()
        }
    }
}

/// Analyzes one architecture under a spec and calibration.
///
/// For [`Architecture::Reference`] the `topology` parameter is ignored
/// (the PCB converter is fixed); for [`Architecture::TwoStage`] the
/// first stage is always DPMIH (per §III) and `topology` selects the
/// POL stage.
///
/// ```
/// use vpd_core::{analyze, AnalysisOptions, Architecture, Calibration, SystemSpec};
/// use vpd_converters::VrTopologyKind;
///
/// # fn main() -> Result<(), vpd_core::CoreError> {
/// let report = analyze(
///     Architecture::Reference,
///     VrTopologyKind::Dsch,
///     &SystemSpec::paper_default(),
///     &Calibration::paper_default(),
///     &AnalysisOptions::default(),
/// )?;
/// assert!(report.loss_percent() > 40.0); // the paper's "over 40%"
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// * [`CoreError::VrOverload`] when a module exceeds its rating and
///   `allow_overload` is off.
/// * [`CoreError::Package`] when an interconnect level cannot carry its
///   current.
/// * [`CoreError::Circuit`] / [`CoreError::Converter`] from the
///   substrate solvers.
pub fn analyze(
    architecture: Architecture,
    topology: VrTopologyKind,
    spec: &SystemSpec,
    calib: &Calibration,
    opts: &AnalysisOptions,
) -> Result<ArchitectureReport, CoreError> {
    match architecture {
        Architecture::Reference => analyze_reference(spec, calib),
        Architecture::InterposerPeriphery => analyze_single_stage(
            architecture,
            topology,
            VrPlacement::Periphery,
            spec,
            calib,
            opts,
        ),
        Architecture::InterposerEmbedded => analyze_single_stage(
            architecture,
            topology,
            VrPlacement::BelowDie,
            spec,
            calib,
            opts,
        ),
        Architecture::TwoStage { bus } => {
            analyze_two_stage(architecture, topology, bus, spec, calib, opts)
        }
    }
}

/// Analyzes every architecture × topology pair of the paper's Figure 7.
///
/// Returns the reports in `(architecture, topology)` order:
/// A0 once, then A1/A2/A3@12V/A3@6V for each requested topology.
///
/// # Errors
///
/// Propagates the first analysis failure.
pub fn analyze_paper_matrix(
    topologies: &[VrTopologyKind],
    spec: &SystemSpec,
    calib: &Calibration,
    opts: &AnalysisOptions,
) -> Result<Vec<ArchitectureReport>, CoreError> {
    let mut out = vec![analyze(
        Architecture::Reference,
        VrTopologyKind::Dsch,
        spec,
        calib,
        opts,
    )?];
    for arch in Architecture::paper_set().into_iter().skip(1) {
        for &topo in topologies {
            out.push(analyze(arch, topo, spec, calib, opts)?);
        }
    }
    Ok(out)
}

fn platform_bga(spec: &SystemSpec) -> SquareMeters {
    // Paper ratios: 1800 mm² of PCB/PKG platform for a 500 mm² die.
    spec.die_area() * 3.6
}

fn platform_c4(spec: &SystemSpec) -> SquareMeters {
    spec.die_area() * 2.4
}

fn platform_tsv(spec: &SystemSpec) -> SquareMeters {
    spec.die_area() * 2.4
}

fn push_vertical(
    breakdown: &mut LossBreakdown,
    utilization: &mut Vec<(String, f64)>,
    tech: InterconnectTech,
    current: Amps,
    platform: SquareMeters,
) -> Result<(), CoreError> {
    let alloc = ViaAllocation::for_current(tech, current, platform)?;
    breakdown.push(LossSegment {
        name: tech.name.to_owned(),
        kind: LossKind::Vertical,
        power: alloc.loss(),
    });
    utilization.push((tech.name.to_owned(), alloc.utilization()));
    Ok(())
}

/// Sum of per-module conversion losses over a measured current
/// distribution; flags (or rejects) extrapolation beyond rating.
fn bank_loss(
    conv: &Converter,
    currents: &[Amps],
    allow_overload: bool,
) -> Result<(Watts, bool), CoreError> {
    let mut total = Watts::ZERO;
    let mut overloaded = false;
    for &i in currents {
        if i.value() > conv.max_load().value() {
            if !allow_overload {
                return Err(CoreError::VrOverload {
                    worst: i.value(),
                    rating: conv.max_load().value(),
                });
            }
            overloaded = true;
            total += conv.curve().loss_unchecked(i);
        } else if i.value() > 0.0 {
            total += conv.loss(i)?;
        }
        // Modules that happen to carry ~0 A contribute no loss.
    }
    Ok((total, overloaded))
}

fn analyze_reference(
    spec: &SystemSpec,
    calib: &Calibration,
) -> Result<ArchitectureReport, CoreError> {
    // POL current enters the die through distributed via clusters; the
    // on-die spreading is the same mesh physics as the proposed
    // architectures, with under-die entry points.
    let entry_clusters = PAPER_VR_POSITIONS;
    let sharing = solve_sharing(spec, calib, VrPlacement::BelowDie, entry_clusters)?;
    finish_reference(spec, calib, entry_clusters, sharing)
}

/// Everything in the reference analysis downstream of the die-grid
/// solve ([`AnalysisSession`] supplies the sharing from its reusable
/// solver; [`analyze`] from a one-shot solve).
fn finish_reference(
    spec: &SystemSpec,
    calib: &Calibration,
    entry_clusters: usize,
    sharing: SharingReport,
) -> Result<ArchitectureReport, CoreError> {
    let i_pol = spec.pol_current();
    let mut breakdown = LossBreakdown::new(spec.pol_power());
    let mut utilization = Vec::new();

    breakdown.push(LossSegment {
        name: "die-grid spreading".to_owned(),
        kind: LossKind::GridSpreading,
        power: sharing.grid_loss() + sharing.droop_loss(),
    });

    // Lateral PCB + package routing at POL voltage.
    let horizontal = i_pol.dissipation_in(calib.horizontal_pol_resistance);
    breakdown.push(LossSegment {
        name: "horizontal PCB/PKG (1 V)".to_owned(),
        kind: LossKind::Horizontal,
        power: horizontal,
    });

    // Vertical levels at full POL current. The reference die must grow
    // until its C4 field can sink the current (the paper's 1,200 mm²).
    let c4_platform = required_platform_area(InterconnectTech::C4, i_pol)?;
    let bga_platform = {
        let needed = required_platform_area(InterconnectTech::BGA, i_pol)?;
        needed.max(platform_bga(spec))
    };
    push_vertical(
        &mut breakdown,
        &mut utilization,
        InterconnectTech::BGA,
        i_pol,
        bga_platform,
    )?;
    push_vertical(
        &mut breakdown,
        &mut utilization,
        InterconnectTech::C4,
        i_pol,
        c4_platform,
    )?;

    // The PCB converter supplies the POL power plus everything the PPDN
    // dissipates downstream of it.
    let converter = Converter::reference_pcb_48v_to_1v();
    let p_out = spec.pol_power() + horizontal + breakdown.vertical_loss();
    let i_out = p_out / spec.pol_voltage();
    let vr_loss = converter.loss(i_out)?;
    breakdown.push(LossSegment {
        name: "VR at PCB (48V→1V)".to_owned(),
        kind: LossKind::Conversion { stage: 1 },
        power: vr_loss,
    });

    Ok(ArchitectureReport {
        architecture: Architecture::Reference,
        topology: None,
        breakdown,
        sharing,
        stage1_modules: None,
        stage2_modules: entry_clusters,
        utilization,
        overloaded: false,
    })
}

/// Rejects a module bank whose combined rating cannot meet the demand.
fn check_capacity(max_load: Amps, modules: usize, demand: Amps) -> Result<(), CoreError> {
    let capacity = max_load.value() * modules as f64;
    if capacity < demand.value() {
        return Err(CoreError::InsufficientVrCapacity {
            modules,
            capacity,
            demand: demand.value(),
        });
    }
    Ok(())
}

fn analyze_single_stage(
    architecture: Architecture,
    topology: VrTopologyKind,
    placement: VrPlacement,
    spec: &SystemSpec,
    calib: &Calibration,
    opts: &AnalysisOptions,
) -> Result<ArchitectureReport, CoreError> {
    let ch = TopologyCharacteristics::table_ii(topology);
    let n_vrs = opts.module_count.unwrap_or(PAPER_VR_POSITIONS);
    check_capacity(ch.max_load, n_vrs, spec.pol_current())?;
    let sharing = solve_sharing(spec, calib, placement, n_vrs)?;
    finish_single_stage(architecture, topology, spec, calib, opts, n_vrs, sharing)
}

/// The single-stage analysis downstream of the die-grid solve.
fn finish_single_stage(
    architecture: Architecture,
    topology: VrTopologyKind,
    spec: &SystemSpec,
    calib: &Calibration,
    opts: &AnalysisOptions,
    n_vrs: usize,
    sharing: SharingReport,
) -> Result<ArchitectureReport, CoreError> {
    let i_pol = spec.pol_current();
    let ch = TopologyCharacteristics::table_ii(topology);
    let conv = single_stage_converter(topology);
    let (vr_loss, overloaded) = bank_loss(&conv, sharing.per_vr(), opts.allow_overload)?;

    let mut breakdown = LossBreakdown::new(spec.pol_power());
    let mut utilization = Vec::new();

    breakdown.push(LossSegment {
        name: format!("VR {} (48V→1V)", ch.kind),
        kind: LossKind::Conversion { stage: 1 },
        power: vr_loss + sharing.droop_loss(),
    });
    breakdown.push(LossSegment {
        name: "die-grid spreading".to_owned(),
        kind: LossKind::GridSpreading,
        power: sharing.grid_loss(),
    });

    // 48 V side: lateral PCB feed plus BGA/C4 at the reduced current.
    let p_in = spec.pol_power() + vr_loss;
    let i_hv = p_in / spec.pcb_voltage();
    breakdown.push(LossSegment {
        name: "horizontal PCB (48 V)".to_owned(),
        kind: LossKind::Horizontal,
        power: i_hv.dissipation_in(calib.horizontal_hv_resistance),
    });
    push_vertical(
        &mut breakdown,
        &mut utilization,
        InterconnectTech::BGA,
        i_hv,
        platform_bga(spec),
    )?;
    push_vertical(
        &mut breakdown,
        &mut utilization,
        InterconnectTech::C4,
        i_hv,
        platform_c4(spec),
    )?;
    // 1 V side: TSVs and Cu pads at full POL current.
    push_vertical(
        &mut breakdown,
        &mut utilization,
        InterconnectTech::TSV,
        i_pol,
        platform_tsv(spec),
    )?;
    push_vertical(
        &mut breakdown,
        &mut utilization,
        InterconnectTech::CU_PAD,
        i_pol,
        spec.die_area(),
    )?;

    Ok(ArchitectureReport {
        architecture,
        topology: Some(topology),
        breakdown,
        sharing,
        stage1_modules: None,
        stage2_modules: n_vrs,
        utilization,
        overloaded,
    })
}

/// Stage 2 of A3: the selected topology below the die at bus→1 V. The
/// paper prefers DSCH for the second stage (§III); DSCH calibration data
/// is what we carry, so non-DSCH selections fall back to the DSCH curve
/// characteristics with that topology's placement counts.
/// The paper's two buses use the fixed calibration anchors; any other
/// bus (the ablation sweep) falls back to the log-ratio interpolation.
pub(crate) fn second_stage_converter(bus: Volts) -> Result<Converter, CoreError> {
    Ok(Converter::dsch_second_stage(bus)
        .or_else(|_| Converter::dsch_second_stage_for_ratio(bus))?)
}

fn analyze_two_stage(
    architecture: Architecture,
    topology: VrTopologyKind,
    bus: Volts,
    spec: &SystemSpec,
    calib: &Calibration,
    opts: &AnalysisOptions,
) -> Result<ArchitectureReport, CoreError> {
    let conv2 = second_stage_converter(bus)?;
    let n2 = opts.module_count.unwrap_or(PAPER_VR_POSITIONS);
    check_capacity(conv2.max_load(), n2, spec.pol_current())?;
    let sharing = solve_sharing(spec, calib, VrPlacement::BelowDie, n2)?;
    finish_two_stage(architecture, topology, bus, spec, calib, opts, n2, sharing)
}

/// The two-stage analysis downstream of the die-grid solve.
#[allow(clippy::too_many_arguments)]
fn finish_two_stage(
    architecture: Architecture,
    topology: VrTopologyKind,
    bus: Volts,
    spec: &SystemSpec,
    calib: &Calibration,
    opts: &AnalysisOptions,
    n2: usize,
    sharing: SharingReport,
) -> Result<ArchitectureReport, CoreError> {
    let i_pol = spec.pol_current();
    let conv2 = second_stage_converter(bus)?;
    let (vr2_loss, overloaded) = bank_loss(&conv2, sharing.per_vr(), opts.allow_overload)?;

    let mut breakdown = LossBreakdown::new(spec.pol_power());
    let mut utilization = Vec::new();

    breakdown.push(LossSegment {
        name: format!("VR stage 2 ({}V→1V)", bus.value()),
        kind: LossKind::Conversion { stage: 2 },
        power: vr2_loss + sharing.droop_loss(),
    });
    breakdown.push(LossSegment {
        name: "die-grid spreading".to_owned(),
        kind: LossKind::GridSpreading,
        power: sharing.grid_loss(),
    });

    // Interposer lateral bus from the periphery first stage to the
    // under-die second stage.
    let p2_in = spec.pol_power() + vr2_loss;
    let i_bus = p2_in / bus;
    let bus_loss = i_bus.dissipation_in(calib.interposer_bus_resistance);
    breakdown.push(LossSegment {
        name: format!("interposer bus ({} V)", bus.value()),
        kind: LossKind::Horizontal,
        power: bus_loss,
    });

    // Stage 1: DPMIH 48 V→bus on the periphery, module count chosen to
    // run modules near their peak-efficiency current.
    let conv1 = Converter::dpmih_first_stage(bus)
        .or_else(|_| Converter::dpmih_first_stage_for_ratio(bus))?;
    let p1_out = p2_in + bus_loss;
    let i1_total = p1_out / bus;
    let n1 = (i1_total.value() / conv1.curve().peak_efficiency_current().value())
        .round()
        .max(1.0) as usize;
    let n1 = n1.max(modules_required(i1_total, conv1.max_load(), 1.0));
    let per_module = i1_total / n1 as f64;
    let vr1_loss = conv1.loss(per_module)? * n1 as f64;
    breakdown.push(LossSegment {
        name: format!("VR stage 1 (48V→{}V)", bus.value()),
        kind: LossKind::Conversion { stage: 1 },
        power: vr1_loss,
    });

    // 48 V side feed.
    let p1_in = p1_out + vr1_loss;
    let i_hv = p1_in / spec.pcb_voltage();
    breakdown.push(LossSegment {
        name: "horizontal PCB (48 V)".to_owned(),
        kind: LossKind::Horizontal,
        power: i_hv.dissipation_in(calib.horizontal_hv_resistance),
    });
    push_vertical(
        &mut breakdown,
        &mut utilization,
        InterconnectTech::BGA,
        i_hv,
        platform_bga(spec),
    )?;
    push_vertical(
        &mut breakdown,
        &mut utilization,
        InterconnectTech::C4,
        i_hv,
        platform_c4(spec),
    )?;
    // The bus crosses the interposer TSVs; the POL current crosses the
    // pads into the die.
    push_vertical(
        &mut breakdown,
        &mut utilization,
        InterconnectTech::TSV,
        i_bus,
        platform_tsv(spec),
    )?;
    push_vertical(
        &mut breakdown,
        &mut utilization,
        InterconnectTech::CU_PAD,
        i_pol,
        spec.die_area(),
    )?;

    Ok(ArchitectureReport {
        architecture,
        topology: Some(topology),
        breakdown,
        sharing,
        stage1_modules: Some(n1),
        stage2_modules: n2,
        utilization,
        overloaded,
    })
}

/// The placement pattern and module count an architecture analyzes
/// with (the reference's 48 via-entry clusters ignore `module_count`).
pub(crate) fn session_placement(
    architecture: Architecture,
    opts: &AnalysisOptions,
) -> (VrPlacement, usize) {
    match architecture {
        Architecture::Reference => (VrPlacement::BelowDie, PAPER_VR_POSITIONS),
        Architecture::InterposerPeriphery => (
            VrPlacement::Periphery,
            opts.module_count.unwrap_or(PAPER_VR_POSITIONS),
        ),
        Architecture::InterposerEmbedded | Architecture::TwoStage { .. } => (
            VrPlacement::BelowDie,
            opts.module_count.unwrap_or(PAPER_VR_POSITIONS),
        ),
    }
}

/// A reusable analysis pipeline for sweep hot loops.
///
/// [`analyze`] rebuilds the die-grid netlist and re-factorizes/compiles
/// its solve plan on every call; a session builds the
/// [`SharingSolver`](crate::SharingSolver) once per architecture and
/// merely restamps element values for each subsequent evaluation, so
/// Monte-Carlo samples, topology columns, and bus/spec sweep points all
/// reuse the same symbolic work — and can warm-start from an anchored
/// nominal solution.
///
/// The mesh resolution is pinned at construction
/// (`calib.grid_nodes_per_side`); later calibrations passed to
/// [`AnalysisSession::analyze`] may vary any element value but not the
/// mesh size.
///
/// ```
/// use vpd_core::{
///     analyze, AnalysisOptions, AnalysisSession, Architecture, Calibration, SystemSpec,
/// };
/// use vpd_converters::VrTopologyKind;
///
/// # fn main() -> Result<(), vpd_core::CoreError> {
/// let (spec, calib) = (SystemSpec::paper_default(), Calibration::paper_default());
/// let opts = AnalysisOptions::default();
/// let mut session = AnalysisSession::new(
///     Architecture::InterposerEmbedded, &spec, &calib, &opts,
/// )?;
/// // Two topologies off one compiled grid.
/// let dsch = session.analyze(VrTopologyKind::Dsch, &calib)?;
/// let dpmih = session.analyze(VrTopologyKind::Dpmih, &calib)?;
/// let one_shot = analyze(
///     Architecture::InterposerEmbedded, VrTopologyKind::Dsch, &spec, &calib, &opts,
/// )?;
/// assert!((dsch.loss_percent() - one_shot.loss_percent()).abs() < 1e-6);
/// assert!(dpmih.loss_percent() != dsch.loss_percent());
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct AnalysisSession {
    architecture: Architecture,
    spec: SystemSpec,
    opts: AnalysisOptions,
    placement: VrPlacement,
    n_vrs: usize,
    solver: SharingSolver,
}

impl AnalysisSession {
    /// Builds the session's grid and compiles its solve plan.
    ///
    /// # Errors
    ///
    /// * [`CoreError::InvalidSpec`] for a zero module count.
    /// * [`CoreError::Circuit`] if the grid cannot be built.
    pub fn new(
        architecture: Architecture,
        spec: &SystemSpec,
        calib: &Calibration,
        opts: &AnalysisOptions,
    ) -> Result<Self, CoreError> {
        let (placement, n_vrs) = session_placement(architecture, opts);
        let (sites, droop) = placement_sites(placement, calib, n_vrs);
        let mut solver = SharingSolver::new(spec, calib, &sites, droop)?;
        solver.set_solve_mode(opts.solve_mode)?;
        Ok(Self {
            architecture,
            spec: *spec,
            opts: *opts,
            placement,
            n_vrs,
            solver,
        })
    }

    /// Analyzes the session's architecture for one (topology,
    /// calibration) point, reusing the compiled grid. Matches
    /// [`analyze`] to solver tolerance.
    ///
    /// # Errors
    ///
    /// As for [`analyze`].
    pub fn analyze(
        &mut self,
        topology: VrTopologyKind,
        calib: &Calibration,
    ) -> Result<ArchitectureReport, CoreError> {
        // Capacity validation first, preserving `analyze`'s error order
        // (a hopeless module count fails before any solve).
        match self.architecture {
            Architecture::Reference => {}
            Architecture::InterposerPeriphery | Architecture::InterposerEmbedded => {
                let ch = TopologyCharacteristics::table_ii(topology);
                check_capacity(ch.max_load, self.n_vrs, self.spec.pol_current())?;
            }
            Architecture::TwoStage { bus } => {
                let conv2 = second_stage_converter(bus)?;
                check_capacity(conv2.max_load(), self.n_vrs, self.spec.pol_current())?;
            }
        }

        self.solver
            .restamp(&self.spec, calib, placement_droop(self.placement, calib))?;
        let sharing = self.solver.solve()?;
        match self.architecture {
            Architecture::Reference => finish_reference(&self.spec, calib, self.n_vrs, sharing),
            Architecture::InterposerPeriphery | Architecture::InterposerEmbedded => {
                finish_single_stage(
                    self.architecture,
                    topology,
                    &self.spec,
                    calib,
                    &self.opts,
                    self.n_vrs,
                    sharing,
                )
            }
            Architecture::TwoStage { bus } => finish_two_stage(
                self.architecture,
                topology,
                bus,
                &self.spec,
                calib,
                &self.opts,
                self.n_vrs,
                sharing,
            ),
        }
    }

    /// Switches the analyzed architecture without rebuilding the grid —
    /// legal only when the new architecture shares this session's
    /// placement pattern and module count (e.g. an A3 bus sweep).
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidSpec`] when the switch would change the
    /// regulator sites.
    pub fn set_architecture(&mut self, architecture: Architecture) -> Result<(), CoreError> {
        let (placement, n_vrs) = session_placement(architecture, &self.opts);
        if placement != self.placement || n_vrs != self.n_vrs {
            return Err(CoreError::InvalidSpec {
                what: "architecture switch changes regulator placement",
                value: n_vrs as f64,
            });
        }
        self.architecture = architecture;
        Ok(())
    }

    /// Replaces the system spec (power/density sweeps); loads are
    /// restamped on the next [`AnalysisSession::analyze`].
    pub fn set_spec(&mut self, spec: &SystemSpec) {
        self.spec = *spec;
    }

    /// Pins the warm-start anchor to the most recent solution so all
    /// later solves start from it — the parallel-sweep determinism
    /// contract (see [`crate::par_map_with`]).
    pub fn anchor(&mut self) {
        self.solver.anchor_last();
    }

    /// CG iterations of the most recent grid solve (reuse diagnostic).
    #[must_use]
    pub fn last_iterations(&self) -> Option<usize> {
        self.solver.last_iterations()
    }

    /// Sparse-solver mode the session's grid solves run under.
    #[must_use]
    pub fn solve_mode(&self) -> DcPlanMode {
        self.solver.solve_mode()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(arch: Architecture, topo: VrTopologyKind) -> ArchitectureReport {
        analyze(
            arch,
            topo,
            &SystemSpec::paper_default(),
            &Calibration::paper_default(),
            &AnalysisOptions::default(),
        )
        .unwrap()
    }

    #[test]
    fn reference_exceeds_40_percent_loss() {
        let report = run(Architecture::Reference, VrTopologyKind::Dsch);
        let pct = report.loss_percent();
        assert!((40.0..48.0).contains(&pct), "A0 loss {pct:.1}%");
    }

    #[test]
    fn proposed_architectures_reach_about_80_percent_efficiency() {
        for arch in Architecture::paper_set().into_iter().skip(1) {
            for topo in [VrTopologyKind::Dpmih, VrTopologyKind::Dsch] {
                let report = run(arch, topo);
                let pct = report.loss_percent();
                assert!(
                    (10.0..30.0).contains(&pct),
                    "{} {topo}: {pct:.1}%",
                    arch.name()
                );
            }
        }
    }

    #[test]
    fn proposed_ppdn_below_10_percent_and_conversion_above_10_percent() {
        // The paper's concluding claim (§V).
        for arch in Architecture::paper_set().into_iter().skip(1) {
            for topo in [VrTopologyKind::Dpmih, VrTopologyKind::Dsch] {
                let report = run(arch, topo);
                let b = &report.breakdown;
                let ppdn_pct = b.percent_of_pol_power(b.ppdn_loss());
                let conv_pct = b.percent_of_pol_power(b.conversion_loss());
                assert!(
                    ppdn_pct < 10.0,
                    "{} {topo} PPDN {ppdn_pct:.1}%",
                    arch.name()
                );
                assert!(
                    conv_pct > 10.0,
                    "{} {topo} conversion {conv_pct:.1}%",
                    arch.name()
                );
            }
        }
    }

    #[test]
    fn vertical_losses_are_negligible_everywhere() {
        for arch in Architecture::paper_set() {
            let report = run(arch, VrTopologyKind::Dsch);
            assert!(
                report.breakdown.vertical_loss().value() < 5.0,
                "{}: vertical {}",
                arch.name(),
                report.breakdown.vertical_loss()
            );
        }
    }

    #[test]
    fn dual_stage_loses_to_single_stage_dsch() {
        // §IV: "the dual-stage power conversion yields a lower power
        // efficiency when compared to the single-stage conversion
        // approach in architectures A1 and A2 with DSCH".
        let a1 = run(Architecture::InterposerPeriphery, VrTopologyKind::Dsch);
        let a2 = run(Architecture::InterposerEmbedded, VrTopologyKind::Dsch);
        for bus in [12.0, 6.0] {
            let a3 = run(
                Architecture::TwoStage {
                    bus: Volts::new(bus),
                },
                VrTopologyKind::Dsch,
            );
            assert!(
                a3.loss_percent() > a1.loss_percent(),
                "A3@{bus}V {:.1}% vs A1 {:.1}%",
                a3.loss_percent(),
                a1.loss_percent()
            );
            assert!(
                a3.loss_percent() > a2.loss_percent(),
                "A3@{bus}V {:.1}% vs A2 {:.1}%",
                a3.loss_percent(),
                a2.loss_percent()
            );
        }
    }

    #[test]
    fn horizontal_reduction_factors_match_paper() {
        // §IV: horizontal loss reduced by up to ~19x (A3@12V) and ~7x
        // (A3@6V) relative to the reference.
        let a0 = run(Architecture::Reference, VrTopologyKind::Dsch);
        let h0 = a0.breakdown.horizontal_loss().value();
        let r = |bus: f64| {
            let a3 = run(
                Architecture::TwoStage {
                    bus: Volts::new(bus),
                },
                VrTopologyKind::Dsch,
            );
            h0 / a3.breakdown.horizontal_loss().value()
        };
        let r12 = r(12.0);
        let r6 = r(6.0);
        assert!((14.0..26.0).contains(&r12), "A3@12V reduction {r12:.1}x");
        assert!((5.0..10.0).contains(&r6), "A3@6V reduction {r6:.1}x");
        assert!(r12 > r6);
    }

    #[test]
    fn a2_overloads_dsch_modules_as_the_paper_reports() {
        let a2 = run(Architecture::InterposerEmbedded, VrTopologyKind::Dsch);
        assert!(a2.overloaded, "central modules exceed the 30 A rating");
        assert!(a2.sharing.max().value() > 30.0);
        // And with overload forbidden, analysis refuses.
        let err = analyze(
            Architecture::InterposerEmbedded,
            VrTopologyKind::Dsch,
            &SystemSpec::paper_default(),
            &Calibration::paper_default(),
            &AnalysisOptions {
                allow_overload: false,
                ..AnalysisOptions::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::VrOverload { .. }));
    }

    #[test]
    fn paper_matrix_covers_all_bars() {
        let reports = analyze_paper_matrix(
            &[VrTopologyKind::Dpmih, VrTopologyKind::Dsch],
            &SystemSpec::paper_default(),
            &Calibration::paper_default(),
            &AnalysisOptions::default(),
        )
        .unwrap();
        // A0 + 4 architectures × 2 topologies.
        assert_eq!(reports.len(), 9);
        // A0 is the worst of the set.
        let worst = reports
            .iter()
            .map(ArchitectureReport::loss_percent)
            .fold(0.0, f64::max);
        assert!((reports[0].loss_percent() - worst).abs() < 1e-9);
    }

    #[test]
    fn utilization_entries_present_for_proposed() {
        let a1 = run(Architecture::InterposerPeriphery, VrTopologyKind::Dsch);
        let names: Vec<&str> = a1.utilization.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["BGA", "C4", "TSV", "Cu pad"]);
        for (name, u) in &a1.utilization {
            assert!(*u > 0.0 && *u < 0.25, "{name} utilization {u}");
        }
    }

    #[test]
    fn session_matches_one_shot_for_every_architecture() {
        let spec = SystemSpec::paper_default();
        let calib = Calibration::paper_default();
        let opts = AnalysisOptions::default();
        for arch in Architecture::paper_set() {
            let mut session = AnalysisSession::new(arch, &spec, &calib, &opts).unwrap();
            for topo in [VrTopologyKind::Dsch, VrTopologyKind::Dpmih] {
                let fresh = analyze(arch, topo, &spec, &calib, &opts).unwrap();
                let reused = session.analyze(topo, &calib).unwrap();
                assert!(
                    (reused.loss_percent() - fresh.loss_percent()).abs() < 1e-6,
                    "{} {topo}: session {:.6}% vs one-shot {:.6}%",
                    arch.name(),
                    reused.loss_percent(),
                    fresh.loss_percent()
                );
                assert_eq!(reused.stage2_modules, fresh.stage2_modules);
                assert_eq!(reused.overloaded, fresh.overloaded);
            }
        }
    }

    #[test]
    fn session_tracks_calibration_changes() {
        let spec = SystemSpec::paper_default();
        let mut calib = Calibration::paper_default();
        let opts = AnalysisOptions::default();
        let mut session =
            AnalysisSession::new(Architecture::InterposerPeriphery, &spec, &calib, &opts).unwrap();
        session.analyze(VrTopologyKind::Dsch, &calib).unwrap();
        session.anchor();

        calib.grid_sheet_resistance = calib.grid_sheet_resistance * 1.1;
        calib.vr_droop_periphery = calib.vr_droop_periphery * 0.95;
        let reused = session.analyze(VrTopologyKind::Dsch, &calib).unwrap();
        let fresh = analyze(
            Architecture::InterposerPeriphery,
            VrTopologyKind::Dsch,
            &spec,
            &calib,
            &opts,
        )
        .unwrap();
        assert!((reused.loss_percent() - fresh.loss_percent()).abs() < 1e-6);
    }

    #[test]
    fn session_switches_architecture_only_within_placement() {
        let spec = SystemSpec::paper_default();
        let calib = Calibration::paper_default();
        let opts = AnalysisOptions::default();
        let mut session = AnalysisSession::new(
            Architecture::TwoStage {
                bus: Volts::new(12.0),
            },
            &spec,
            &calib,
            &opts,
        )
        .unwrap();
        // Bus sweep: same under-die sites, allowed.
        session
            .set_architecture(Architecture::TwoStage {
                bus: Volts::new(6.0),
            })
            .unwrap();
        let reused = session.analyze(VrTopologyKind::Dsch, &calib).unwrap();
        let fresh = analyze(
            Architecture::TwoStage {
                bus: Volts::new(6.0),
            },
            VrTopologyKind::Dsch,
            &spec,
            &calib,
            &opts,
        )
        .unwrap();
        assert!((reused.loss_percent() - fresh.loss_percent()).abs() < 1e-6);
        // Periphery placement differs: refused.
        assert!(matches!(
            session.set_architecture(Architecture::InterposerPeriphery),
            Err(CoreError::InvalidSpec { .. })
        ));
    }

    #[test]
    fn names_and_descriptions() {
        assert_eq!(Architecture::Reference.name(), "A0");
        assert_eq!(
            Architecture::TwoStage {
                bus: Volts::new(12.0)
            }
            .name(),
            "A3@12V"
        );
        assert!(Architecture::InterposerEmbedded
            .description()
            .contains("below the die"));
    }
}
