//! PDN output-impedance profiles — the AC side of vertical power
//! delivery.
//!
//! The paper's DC analysis shows *where* conversion should happen; this
//! module adds the classical AC argument for the same conclusion: an
//! integrated regulator close to the POL shrinks the supply loop
//! inductance by orders of magnitude, flattening the impedance profile
//! and meeting the target impedance `Z_t = V·ripple / ΔI` that a
//! board-level converter cannot reach at high frequency. This is the
//! "accurate system-level models" direction the paper's §I calls for.

use crate::{Architecture, CoreError, SystemSpec};
use vpd_circuit::{log_sweep, AcAnalysis, AcPoint, ElementId, Netlist, NodeId};
use vpd_units::{Amps, Farads, Henries, Hertz, Ohms, Volts};

/// Element handles into the ladder built by
/// [`PdnModel::netlist_tagged`] — the stamps a fault scenario edits
/// value-only on a compiled plan. Only the fault-touched elements are
/// tagged; the remaining passives never change under the fault
/// taxonomy.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PdnElements {
    /// Regulator output resistance (parallel VR bank recombination).
    pub vr_resistance: ElementId,
    /// Regulator output inductance (parallel VR bank recombination).
    pub vr_inductance: ElementId,
    /// Bulk decap at the regulator output.
    pub bulk_capacitance: ElementId,
    /// Distribution resistance (sheet/region degradation).
    pub distribution_resistance: ElementId,
    /// Vertical resistance into the die (sheet/region degradation).
    pub vertical_resistance: ElementId,
}

/// A three-stage PDN ladder: regulator → (board/interposer) → package →
/// die, with a decoupling capacitor at each stage.
#[derive(Clone, Copy, PartialEq, Debug, serde::Serialize, serde::Deserialize)]
pub struct PdnModel {
    /// Regulator output inductance (loop from the converter output to
    /// the first distribution node).
    pub vr_inductance: Henries,
    /// Regulator output resistance.
    pub vr_resistance: Ohms,
    /// Bulk capacitance at the regulator output.
    pub bulk_capacitance: Farads,
    /// Bulk capacitor ESR.
    pub bulk_esr: Ohms,
    /// Distribution inductance to the package/interposer node.
    pub distribution_inductance: Henries,
    /// Distribution resistance.
    pub distribution_resistance: Ohms,
    /// Package/interposer-level capacitance.
    pub package_capacitance: Farads,
    /// Package capacitor ESR.
    pub package_esr: Ohms,
    /// Vertical inductance from package/interposer into the die.
    pub vertical_inductance: Henries,
    /// Vertical resistance into the die.
    pub vertical_resistance: Ohms,
    /// On-die capacitance.
    pub die_capacitance: Farads,
    /// On-die capacitor ESR.
    pub die_esr: Ohms,
}

impl PdnModel {
    /// A representative model for each architecture. The decisive
    /// difference is structural: A0's regulator sits across the board
    /// (~15 nH of loop), while the vertical architectures regulate on
    /// or in the interposer (tens of pH).
    #[must_use]
    pub fn for_architecture(arch: Architecture) -> Self {
        match arch {
            Architecture::Reference => Self {
                vr_inductance: Henries::from_nanohenries(5.0),
                vr_resistance: Ohms::from_microohms(100.0),
                bulk_capacitance: Farads::new(5e-3),
                bulk_esr: Ohms::from_microohms(200.0),
                distribution_inductance: Henries::from_nanohenries(15.0),
                distribution_resistance: Ohms::from_microohms(280.0),
                package_capacitance: Farads::from_microfarads(200.0),
                package_esr: Ohms::from_microohms(150.0),
                vertical_inductance: Henries::from_nanohenries(0.05),
                vertical_resistance: Ohms::from_microohms(10.0),
                die_capacitance: Farads::from_microfarads(2.0),
                die_esr: Ohms::from_microohms(30.0),
            },
            // Periphery IVR: 48 modules in parallel, short interposer
            // routing; values are the per-module network divided by the
            // module count (module output capacitance 6.6 µF × 48 plus
            // embedded interposer capacitance).
            Architecture::InterposerPeriphery | Architecture::TwoStage { .. } => Self {
                vr_inductance: Henries::from_nanohenries(0.010),
                vr_resistance: Ohms::from_microohms(25.0),
                bulk_capacitance: Farads::from_microfarads(500.0),
                bulk_esr: Ohms::from_microohms(150.0),
                distribution_inductance: Henries::from_nanohenries(0.015),
                distribution_resistance: Ohms::from_microohms(25.0),
                package_capacitance: Farads::from_microfarads(100.0),
                package_esr: Ohms::from_microohms(80.0),
                vertical_inductance: Henries::from_nanohenries(0.002),
                vertical_resistance: Ohms::from_microohms(3.0),
                die_capacitance: Farads::from_microfarads(350.0),
                die_esr: Ohms::from_microohms(20.0),
            },
            // Under-die IVR: the loop is almost purely vertical — the
            // per-module attach is Cu pads (µΩ, sub-pH), 48-way parallel.
            Architecture::InterposerEmbedded => Self {
                vr_inductance: Henries::from_nanohenries(0.0015),
                vr_resistance: Ohms::from_microohms(5.0),
                bulk_capacitance: Farads::from_microfarads(800.0),
                bulk_esr: Ohms::from_microohms(120.0),
                distribution_inductance: Henries::from_nanohenries(0.0015),
                distribution_resistance: Ohms::from_microohms(8.0),
                package_capacitance: Farads::from_microfarads(100.0),
                package_esr: Ohms::from_microohms(80.0),
                vertical_inductance: Henries::from_nanohenries(0.0004),
                vertical_resistance: Ohms::from_microohms(1.0),
                die_capacitance: Farads::from_microfarads(400.0),
                die_esr: Ohms::from_microohms(15.0),
            },
        }
    }

    /// Builds the ladder netlist and returns `(netlist, die node)`.
    ///
    /// # Errors
    ///
    /// Propagates netlist validation errors (all model values must be
    /// positive).
    pub fn netlist(&self) -> Result<(Netlist, NodeId), CoreError> {
        let (net, die, _) = self.netlist_tagged()?;
        Ok((net, die))
    }

    /// Builds the ladder netlist and additionally returns the
    /// fault-touched element handles, so callers can restamp faulted
    /// values into a compiled plan. The netlist is constructed exactly
    /// as [`PdnModel::netlist`] (same node and element order), so plans
    /// compiled from either are interchangeable bit-for-bit.
    ///
    /// # Errors
    ///
    /// Propagates netlist validation errors (all model values must be
    /// positive).
    pub fn netlist_tagged(&self) -> Result<(Netlist, NodeId, PdnElements), CoreError> {
        let mut net = Netlist::new();
        let vr = net.node("vr");
        let board = net.node("board");
        let pkg = net.node("pkg");
        let die = net.node("die");
        let g = net.ground();
        // Regulator: AC-shorted ideal source behind its output RL.
        net.voltage_source(vr, g, Volts::new(1.0))
            .map_err(CoreError::Circuit)?;
        let elements = self.stamp_ladder(&mut net, vr, board, pkg, die)?;
        Ok((net, die, elements))
    }

    /// Stamps the passive ladder from the regulator output node `vr`
    /// down to `die` into `net` (everything except the source), in the
    /// canonical element order. Shared by the AC netlist above and the
    /// VR-failure transient netlist, which puts a series switch between
    /// the source and `vr`.
    pub(crate) fn stamp_ladder(
        &self,
        net: &mut Netlist,
        vr: NodeId,
        board: NodeId,
        pkg: NodeId,
        die: NodeId,
    ) -> Result<PdnElements, CoreError> {
        let g = net.ground();
        let mid1 = net.node("vr_l");
        let vr_resistance = net
            .resistor(vr, mid1, self.vr_resistance)
            .map_err(CoreError::Circuit)?;
        let vr_inductance = net
            .inductor(mid1, board, self.vr_inductance, Amps::ZERO)
            .map_err(CoreError::Circuit)?;
        // Bulk decap at the first node.
        let bulk = net.node("bulk");
        let bulk_capacitance = net
            .capacitor(board, bulk, self.bulk_capacitance, Volts::ZERO)
            .map_err(CoreError::Circuit)?;
        net.resistor(bulk, g, self.bulk_esr)
            .map_err(CoreError::Circuit)?;
        // Distribution to package.
        let mid2 = net.node("dist_l");
        let distribution_resistance = net
            .resistor(board, mid2, self.distribution_resistance)
            .map_err(CoreError::Circuit)?;
        net.inductor(mid2, pkg, self.distribution_inductance, Amps::ZERO)
            .map_err(CoreError::Circuit)?;
        let pkg_c = net.node("pkg_c");
        net.capacitor(pkg, pkg_c, self.package_capacitance, Volts::ZERO)
            .map_err(CoreError::Circuit)?;
        net.resistor(pkg_c, g, self.package_esr)
            .map_err(CoreError::Circuit)?;
        // Vertical into the die.
        let mid3 = net.node("vert_l");
        let vertical_resistance = net
            .resistor(pkg, mid3, self.vertical_resistance)
            .map_err(CoreError::Circuit)?;
        net.inductor(mid3, die, self.vertical_inductance, Amps::ZERO)
            .map_err(CoreError::Circuit)?;
        let die_c = net.node("die_c");
        net.capacitor(die, die_c, self.die_capacitance, Volts::ZERO)
            .map_err(CoreError::Circuit)?;
        net.resistor(die_c, g, self.die_esr)
            .map_err(CoreError::Circuit)?;
        Ok(PdnElements {
            vr_resistance,
            vr_inductance,
            bulk_capacitance,
            distribution_resistance,
            vertical_resistance,
        })
    }

    /// Driving-point impedance at the die across a frequency sweep.
    ///
    /// # Errors
    ///
    /// Propagates AC-solver failures.
    pub fn impedance_profile(&self, freqs: &[Hertz]) -> Result<Vec<AcPoint>, CoreError> {
        let (net, die) = self.netlist()?;
        AcAnalysis::new(&net)
            .impedance(die, freqs)
            .map_err(CoreError::Circuit)
    }

    /// The default peak-impedance frequency grid: a 200-point decade
    /// sweep from 1 kHz to 1 GHz. [`PdnModel::peak_impedance`] and the
    /// CLI's `vpd impedance` defaults both derive from this one grid,
    /// so the two can never disagree about what "peak" means.
    #[must_use]
    pub fn default_peak_sweep() -> Vec<Hertz> {
        log_sweep(DEFAULT_SWEEP_FMIN, DEFAULT_SWEEP_FMAX, DEFAULT_SWEEP_POINTS)
    }

    /// The peak impedance magnitude across a caller-chosen frequency
    /// sweep.
    ///
    /// # Errors
    ///
    /// Propagates AC-solver failures.
    pub fn peak_impedance_over(&self, freqs: &[Hertz]) -> Result<Ohms, CoreError> {
        let profile = self.impedance_profile(freqs)?;
        Ok(Ohms::new(
            profile.iter().map(AcPoint::magnitude).fold(0.0, f64::max),
        ))
    }

    /// The peak impedance magnitude across
    /// [`PdnModel::default_peak_sweep`] (200 points, 1 kHz – 1 GHz).
    ///
    /// # Errors
    ///
    /// Propagates AC-solver failures.
    pub fn peak_impedance(&self) -> Result<Ohms, CoreError> {
        self.peak_impedance_over(&Self::default_peak_sweep())
    }
}

/// Default sweep lower bound shared by [`PdnModel::default_peak_sweep`]
/// and [`crate::ImpedanceSweepSettings`].
pub(crate) const DEFAULT_SWEEP_FMIN: Hertz = Hertz::from_kilohertz(1.0);
/// Default sweep upper bound.
pub(crate) const DEFAULT_SWEEP_FMAX: Hertz = Hertz::new(1e9);
/// Default sweep point count.
pub(crate) const DEFAULT_SWEEP_POINTS: usize = 200;

/// The classical target impedance `Z_t = V · ripple / ΔI`.
#[must_use]
pub fn target_impedance(spec: &SystemSpec, ripple_fraction: f64, step_fraction: f64) -> Ohms {
    let dv = spec.pol_voltage().value() * ripple_fraction;
    let di = spec.pol_current().value() * step_fraction;
    Ohms::new(dv / di)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep() -> Vec<Hertz> {
        log_sweep(Hertz::from_kilohertz(1.0), Hertz::new(1e9), 120)
    }

    #[test]
    fn vertical_architectures_flatten_the_profile() {
        let a0 = PdnModel::for_architecture(Architecture::Reference)
            .peak_impedance()
            .unwrap();
        let a1 = PdnModel::for_architecture(Architecture::InterposerPeriphery)
            .peak_impedance()
            .unwrap();
        let a2 = PdnModel::for_architecture(Architecture::InterposerEmbedded)
            .peak_impedance()
            .unwrap();
        assert!(
            a0.value() > 50.0 * a2.value(),
            "A0 peak {a0} vs A2 peak {a2}"
        );
        assert!(
            a2.value() < a1.value() && a1.value() < a0.value(),
            "monotone with regulator proximity: {a2} < {a1} < {a0}"
        );
    }

    #[test]
    fn reference_misses_target_vertical_meets_it() {
        // 5% ripple budget against a 25% load step of 1 kA → 200 µΩ.
        let spec = SystemSpec::paper_default();
        let zt = target_impedance(&spec, 0.05, 0.25);
        let a0 = PdnModel::for_architecture(Architecture::Reference)
            .peak_impedance()
            .unwrap();
        let a2 = PdnModel::for_architecture(Architecture::InterposerEmbedded)
            .peak_impedance()
            .unwrap();
        assert!(a0.value() > zt.value(), "A0 must violate Z_t {zt}");
        assert!(a2.value() < zt.value(), "A2 peak {a2} must meet Z_t {zt}");
    }

    #[test]
    fn low_frequency_impedance_is_resistive() {
        let model = PdnModel::for_architecture(Architecture::Reference);
        let z = model.impedance_profile(&[Hertz::new(10.0)]).unwrap()[0];
        // At 10 Hz the inductors are shorts and the caps are open: the
        // dc path resistance dominates.
        let dc_r = model.vr_resistance.value()
            + model.distribution_resistance.value()
            + model.vertical_resistance.value();
        assert!(
            (z.magnitude() - dc_r).abs() < 0.3 * dc_r,
            "{}",
            z.magnitude()
        );
    }

    #[test]
    fn profile_has_antiresonant_peaks_for_a0() {
        let profile = PdnModel::for_architecture(Architecture::Reference)
            .impedance_profile(&sweep())
            .unwrap();
        let mags: Vec<f64> = profile.iter().map(AcPoint::magnitude).collect();
        // Non-monotone: at least one interior local maximum
        // (antiresonance between decap stages).
        let interior_peak = mags
            .windows(3)
            .any(|w| w[1] > w[0] * 1.05 && w[1] > w[2] * 1.05);
        assert!(interior_peak, "expected an antiresonant peak");
    }

    #[test]
    fn target_impedance_formula() {
        let spec = SystemSpec::paper_default();
        let zt = target_impedance(&spec, 0.05, 0.30);
        // 50 mV / 300 A ≈ 167 µΩ.
        assert!((zt.value() - 50e-3 / 300.0).abs() < 1e-9);
    }
}
