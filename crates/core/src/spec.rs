//! The system specification: the operating point an architecture must
//! serve.

use crate::CoreError;
use vpd_units::{Amps, CurrentDensity, SquareMeters, Volts, Watts};

/// A power-delivery specification.
///
/// The paper's headline system is the default: 48 V at the PCB, 1 V at
/// the points of load, 1 kW, 2 A/mm² — which fixes a 500 mm² die and
/// 1 kA of POL current.
///
/// ```
/// use vpd_core::SystemSpec;
///
/// let spec = SystemSpec::paper_default();
/// assert!((spec.die_area().as_square_millimeters() - 500.0).abs() < 1e-9);
/// assert!((spec.pol_current().value() - 1000.0).abs() < 1e-9);
/// ```
#[derive(Clone, Copy, PartialEq, Debug, serde::Serialize, serde::Deserialize)]
pub struct SystemSpec {
    pcb_voltage: Volts,
    pol_voltage: Volts,
    pol_power: Watts,
    current_density: CurrentDensity,
}

impl SystemSpec {
    /// The paper's 1 kW / 2 A/mm² / 48 V→1 V system.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            pcb_voltage: Volts::new(48.0),
            pol_voltage: Volts::new(1.0),
            pol_power: Watts::from_kilowatts(1.0),
            current_density: CurrentDensity::from_amps_per_square_millimeter(2.0),
        }
    }

    /// Creates a validated specification.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidSpec`] when any value is non-positive
    /// or non-finite, or when `pol_voltage ≥ pcb_voltage`.
    pub fn new(
        pcb_voltage: Volts,
        pol_voltage: Volts,
        pol_power: Watts,
        current_density: CurrentDensity,
    ) -> Result<Self, CoreError> {
        for (what, v) in [
            ("pcb voltage", pcb_voltage.value()),
            ("pol voltage", pol_voltage.value()),
            ("pol power", pol_power.value()),
            ("current density", current_density.value()),
        ] {
            if !(v.is_finite() && v > 0.0) {
                return Err(CoreError::InvalidSpec { what, value: v });
            }
        }
        if pol_voltage.value() >= pcb_voltage.value() {
            return Err(CoreError::InvalidSpec {
                what: "pol voltage (must be below pcb voltage)",
                value: pol_voltage.value(),
            });
        }
        Ok(Self {
            pcb_voltage,
            pol_voltage,
            pol_power,
            current_density,
        })
    }

    /// Input bus voltage at the PCB.
    #[must_use]
    pub fn pcb_voltage(&self) -> Volts {
        self.pcb_voltage
    }

    /// Point-of-load voltage.
    #[must_use]
    pub fn pol_voltage(&self) -> Volts {
        self.pol_voltage
    }

    /// Power delivered to the points of load.
    #[must_use]
    pub fn pol_power(&self) -> Watts {
        self.pol_power
    }

    /// Die current density.
    #[must_use]
    pub fn current_density(&self) -> CurrentDensity {
        self.current_density
    }

    /// POL current: `P / V_pol`.
    #[must_use]
    pub fn pol_current(&self) -> Amps {
        self.pol_power / self.pol_voltage
    }

    /// Die area implied by the current density: `I / J`.
    #[must_use]
    pub fn die_area(&self) -> SquareMeters {
        self.pol_current() / self.current_density
    }

    /// Overall conversion ratio `V_pcb : V_pol`.
    #[must_use]
    pub fn conversion_ratio(&self) -> f64 {
        self.pcb_voltage / self.pol_voltage
    }
}

impl Default for SystemSpec {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_derivations() {
        let s = SystemSpec::paper_default();
        assert_eq!(s.conversion_ratio(), 48.0);
        assert!((s.pol_current().value() - 1000.0).abs() < 1e-9);
        assert!((s.die_area().as_square_millimeters() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn validation_rejects_nonsense() {
        let ok = SystemSpec::paper_default();
        assert!(SystemSpec::new(
            Volts::new(1.0),
            Volts::new(48.0),
            ok.pol_power(),
            ok.current_density()
        )
        .is_err());
        assert!(SystemSpec::new(
            ok.pcb_voltage(),
            ok.pol_voltage(),
            Watts::ZERO,
            ok.current_density()
        )
        .is_err());
        assert!(SystemSpec::new(
            Volts::new(f64::NAN),
            ok.pol_voltage(),
            ok.pol_power(),
            ok.current_density()
        )
        .is_err());
    }

    #[test]
    fn scaled_spec_scales_die() {
        let half = SystemSpec::new(
            Volts::new(48.0),
            Volts::new(1.0),
            Watts::new(500.0),
            CurrentDensity::from_amps_per_square_millimeter(2.0),
        )
        .unwrap();
        assert!((half.die_area().as_square_millimeters() - 250.0).abs() < 1e-9);
    }
}
