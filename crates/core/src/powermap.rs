//! Die power maps: how the POL current is distributed over the die.
//!
//! The paper's per-VR load spreads (16–27 A at the periphery in A1,
//! 10–93 A under the die in A2) imply a strongly non-uniform die power
//! map — as real accelerators have: compute clusters run hot while SRAM
//! and I/O regions draw far less. The default map is a centered Gaussian
//! hotspot calibrated to reproduce both published spreads at once.

use vpd_units::Amps;

use crate::CoreError;

/// A spatial current-draw profile over the die.
#[derive(Clone, Copy, PartialEq, Debug, serde::Serialize, serde::Deserialize)]
#[non_exhaustive]
pub enum PowerMap {
    /// Every node draws the same current.
    Uniform,
    /// A Gaussian hotspot centered at (`cx`, `cy`) in normalized die
    /// coordinates, with standard deviation `sigma` (fraction of the die
    /// side) on top of a uniform floor. `floor` is the fraction of the
    /// total current drawn uniformly; the remaining `1 − floor`
    /// concentrates in the hotspot.
    GaussianHotspot {
        /// Hotspot center x in `[0, 1]`.
        cx: f64,
        /// Hotspot center y in `[0, 1]`.
        cy: f64,
        /// Gaussian sigma as a fraction of the die side.
        sigma: f64,
        /// Uniform-floor fraction of the total current in `[0, 1]`.
        floor: f64,
    },
    /// Two half-die domains with an asymmetric split: `left_share` of
    /// the current in the left half (a chiplet-style map).
    SplitHalves {
        /// Fraction of total current drawn by the left half in `[0, 1]`.
        left_share: f64,
    },
}

impl PowerMap {
    /// The calibrated map reproducing the paper's A1 and A2 per-VR
    /// spreads: a centered hotspot holding ~68% of the power within
    /// σ = 0.09 of the die side (a compute cluster running hot over a
    /// cooler SRAM/IO floor).
    #[must_use]
    pub fn paper_hotspot() -> Self {
        Self::GaussianHotspot {
            cx: 0.5,
            cy: 0.5,
            sigma: 0.09,
            floor: 0.32,
        }
    }

    /// Validates the map's shape parameters, naming the offending field
    /// in a typed [`CoreError::InvalidSpec`]. Hotspot centers and
    /// fractional shares must lie in `[0, 1]` and `sigma` must be
    /// positive and finite — out-of-range values would previously feed
    /// NaN or all-zero weights into the renormalization.
    pub fn validate(&self) -> Result<(), CoreError> {
        let unit = |what: &'static str, value: f64| {
            if value.is_finite() && (0.0..=1.0).contains(&value) {
                Ok(())
            } else {
                Err(CoreError::InvalidSpec { what, value })
            }
        };
        match *self {
            Self::Uniform => Ok(()),
            Self::GaussianHotspot {
                cx,
                cy,
                sigma,
                floor,
            } => {
                unit("hotspot center x", cx)?;
                unit("hotspot center y", cy)?;
                unit("hotspot floor fraction", floor)?;
                if sigma.is_finite() && sigma > 0.0 {
                    Ok(())
                } else {
                    Err(CoreError::InvalidSpec {
                        what: "hotspot sigma",
                        value: sigma,
                    })
                }
            }
            Self::SplitHalves { left_share } => unit("left-half share", left_share),
        }
    }

    /// Per-node currents for an `nx × ny` grid summing exactly to
    /// `total`.
    ///
    /// The profile is evaluated at node centers and renormalized, so the
    /// sum is exact regardless of discretization.
    #[must_use]
    pub fn node_currents(&self, nx: usize, ny: usize, total: Amps) -> Vec<Vec<Amps>> {
        let mut weights = vec![vec![0.0_f64; nx]; ny];
        let mut sum = 0.0;
        for (y, row) in weights.iter_mut().enumerate() {
            for (x, w) in row.iter_mut().enumerate() {
                let u = (x as f64 + 0.5) / nx as f64;
                let v = (y as f64 + 0.5) / ny as f64;
                *w = self.weight(u, v);
                sum += *w;
            }
        }
        weights
            .into_iter()
            .map(|row| {
                row.into_iter()
                    .map(|w| total * (w / sum))
                    .collect::<Vec<Amps>>()
            })
            .collect()
    }

    /// Unnormalized profile weight at normalized coordinates
    /// `(u, v) ∈ [0, 1]²`.
    #[must_use]
    pub fn weight(&self, u: f64, v: f64) -> f64 {
        match *self {
            Self::Uniform => 1.0,
            Self::GaussianHotspot {
                cx,
                cy,
                sigma,
                floor,
            } => {
                let d2 = (u - cx) * (u - cx) + (v - cy) * (v - cy);
                let gauss = (-d2 / (2.0 * sigma * sigma)).exp();
                // Normalize the Gaussian's integral over the unit square
                // approximately so `floor` keeps its meaning.
                let gauss_mass = 2.0 * std::f64::consts::PI * sigma * sigma;
                floor + (1.0 - floor) * gauss / gauss_mass
            }
            Self::SplitHalves { left_share } => {
                if u < 0.5 {
                    2.0 * left_share
                } else {
                    2.0 * (1.0 - left_share)
                }
            }
        }
    }

    /// The time-averaged variant of this map for thermal analysis: the
    /// electrical calibration captures the instantaneous worst-case
    /// concentration (which sets per-module currents), while heat
    /// integrates over milliseconds of workload migration — a hotspot's
    /// thermal footprint is roughly twice as wide.
    #[must_use]
    pub fn thermally_averaged(&self) -> Self {
        match *self {
            Self::GaussianHotspot {
                cx,
                cy,
                sigma,
                floor,
            } => Self::GaussianHotspot {
                cx,
                cy,
                sigma: sigma * 2.0,
                floor,
            },
            other => other,
        }
    }

    /// Peak-to-mean ratio of the discretized map (1 for uniform).
    #[must_use]
    pub fn peak_to_mean(&self, nx: usize, ny: usize) -> f64 {
        let cells = self.node_currents(nx, ny, Amps::new(1.0));
        let peak = cells
            .iter()
            .flatten()
            .map(|a| a.value())
            .fold(0.0, f64::max);
        peak * (nx * ny) as f64
    }
}

impl Default for PowerMap {
    fn default() -> Self {
        Self::paper_hotspot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn uniform_splits_evenly() {
        let cells = PowerMap::Uniform.node_currents(4, 4, Amps::new(16.0));
        for row in &cells {
            for c in row {
                assert!((c.value() - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn hotspot_concentrates_in_center() {
        let map = PowerMap::paper_hotspot();
        let cells = map.node_currents(9, 9, Amps::new(81.0));
        let center = cells[4][4].value();
        let corner = cells[0][0].value();
        assert!(
            center > 3.0 * corner,
            "center {center:.2} vs corner {corner:.2}"
        );
    }

    #[test]
    fn paper_hotspot_peak_to_mean_band() {
        // The A2 spread (max 93 A over a 20.8 A mean) needs a strong
        // local peak: the grid and VR-cell averaging smooth a ~13x node
        // peak down to the ~4.5x module peak the paper reports.
        let ratio = PowerMap::paper_hotspot().peak_to_mean(25, 25);
        assert!((8.0..20.0).contains(&ratio), "peak/mean = {ratio:.2}");
    }

    #[test]
    fn split_halves_ratio() {
        let cells = PowerMap::SplitHalves { left_share: 0.75 }.node_currents(4, 2, Amps::new(8.0));
        let left: f64 = cells.iter().map(|r| r[0].value() + r[1].value()).sum();
        assert!((left - 6.0).abs() < 1e-9);
    }

    proptest! {
        /// Discretized maps always conserve the total current.
        #[test]
        fn prop_total_conserved(
            nx in 2_usize..20,
            ny in 2_usize..20,
            total in 1.0_f64..2000.0,
            sigma in 0.05_f64..0.5,
            floor in 0.0_f64..1.0,
        ) {
            let maps = [
                PowerMap::Uniform,
                PowerMap::GaussianHotspot { cx: 0.5, cy: 0.5, sigma, floor },
                PowerMap::SplitHalves { left_share: floor },
            ];
            for map in maps {
                let cells = map.node_currents(nx, ny, Amps::new(total));
                let sum: f64 = cells.iter().flatten().map(|a| a.value()).sum();
                prop_assert!((sum - total).abs() < 1e-6 * total.max(1.0));
                // And no negative draws.
                prop_assert!(cells.iter().flatten().all(|a| a.value() >= 0.0));
            }
        }
    }
}
