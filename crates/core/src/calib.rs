//! The model's free parameters and their calibration.
//!
//! The paper reports loss *percentages*, not the absolute resistances of
//! its lateral interconnect, so a handful of scale parameters must be
//! set once. DESIGN.md §6 documents each; the values below anchor:
//!
//! * the reference architecture A0 at ≈42% total loss ("over 40%",
//!   Fig. 7);
//! * the horizontal-loss reductions of ≈19× (A3@12V) and ≈7× (A3@6V);
//! * the A1 per-VR spread of 16–27 A and the A2 spread of 10–93 A.
//!
//! Every number here is asserted by integration tests, so a calibration
//! drift fails the build rather than silently changing the results.

use crate::{CoreError, PowerMap};
use vpd_units::Ohms;

/// Free parameters of the PCB-to-POL loss model.
#[derive(Clone, Copy, PartialEq, Debug, serde::Serialize, serde::Deserialize)]
pub struct Calibration {
    /// Lateral PCB + package routing resistance at POL voltage for the
    /// reference architecture (converter output to package entry).
    pub horizontal_pol_resistance: Ohms,
    /// Lateral PCB routing at 48 V feeding the package/interposer edge —
    /// common to every proposed architecture.
    pub horizontal_hv_resistance: Ohms,
    /// Interposer lateral bus resistance at the intermediate voltage
    /// (stage-1 outputs to the under-die stage-2 region) in the
    /// multi-stage architectures.
    pub interposer_bus_resistance: Ohms,
    /// Sheet resistance of the die + interposer 1 V distribution grid
    /// (per square) used by the current-sharing mesh.
    pub grid_sheet_resistance: Ohms,
    /// Droop (output impedance proxy) of a periphery module: converter
    /// output impedance plus the lateral escape routing from the ring
    /// into the die shadow.
    pub vr_droop_periphery: Ohms,
    /// Droop of an under-die module: converter output impedance plus the
    /// short vertical attach (Cu pads), an order of magnitude lower —
    /// which is exactly why A2's modules localize onto the hotspot.
    pub vr_droop_below_die: Ohms,
    /// Mesh resolution per side for the current-sharing solve.
    pub grid_nodes_per_side: usize,
    /// Die power map used for current sharing.
    pub power_map: PowerMap,
}

impl Calibration {
    /// Validates every free parameter, returning the first violation as
    /// a typed [`CoreError::InvalidSpec`] naming the field. Resistances
    /// must be positive and finite (a negative sheet resistance would
    /// previously flow silently into the mesh stamp and produce an
    /// indefinite system), the mesh needs at least 2 nodes per side,
    /// and the power map's shape parameters must lie in range.
    pub fn validate(&self) -> Result<(), CoreError> {
        let positive = |what: &'static str, r: Ohms| {
            if r.value().is_finite() && r.value() > 0.0 {
                Ok(())
            } else {
                Err(CoreError::InvalidSpec {
                    what,
                    value: r.value(),
                })
            }
        };
        positive("horizontal POL resistance", self.horizontal_pol_resistance)?;
        positive("horizontal HV resistance", self.horizontal_hv_resistance)?;
        positive("interposer bus resistance", self.interposer_bus_resistance)?;
        positive("grid sheet resistance", self.grid_sheet_resistance)?;
        positive("periphery VR droop", self.vr_droop_periphery)?;
        positive("below-die VR droop", self.vr_droop_below_die)?;
        if self.grid_nodes_per_side < 2 {
            return Err(CoreError::InvalidSpec {
                what: "grid nodes per side",
                value: self.grid_nodes_per_side as f64,
            });
        }
        self.power_map.validate()
    }

    /// The documented paper calibration.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            // Tuned so A0 lands at ≈42% of 1 kW (over 40%, Fig. 7).
            horizontal_pol_resistance: Ohms::from_microohms(280.0),
            // A 48 V lateral feed dissipating ~6 W at ~25 A.
            horizontal_hv_resistance: Ohms::from_milliohms(10.0),
            // Sized so the 12 V bus loses ~9 W at ~90 A and the 6 V bus
            // ~35 W at ~180 A, reproducing the 19x / 7x reductions.
            interposer_bus_resistance: Ohms::from_milliohms(1.15),
            // Thick-metal RDL + on-die grid in parallel.
            grid_sheet_resistance: Ohms::from_milliohms(0.30),
            // Periphery modules feed through ring escape routing...
            vr_droop_periphery: Ohms::from_milliohms(1.2),
            // ...while under-die modules attach vertically through pads.
            vr_droop_below_die: Ohms::from_microohms(60.0),
            grid_nodes_per_side: 25,
            power_map: PowerMap::paper_hotspot(),
        }
    }
}

impl Default for Calibration {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_paper_default() {
        assert_eq!(Calibration::default(), Calibration::paper_default());
    }

    #[test]
    fn a0_horizontal_anchor() {
        // 1 kA² × 280 µΩ = 280 W — the dominant A0 loss component.
        let c = Calibration::paper_default();
        let loss = vpd_units::Amps::from_kiloamps(1.0).dissipation_in(c.horizontal_pol_resistance);
        assert!((loss.value() - 280.0).abs() < 1e-9);
    }

    #[test]
    fn bus_resistance_reproduces_19x_and_7x_scale() {
        let c = Calibration::paper_default();
        // 12 V bus at ~90 A and 6 V bus at ~180 A over the same lateral
        // path, plus the common 48 V feed at ~26 A.
        let hv = vpd_units::Amps::new(26.0).dissipation_in(c.horizontal_hv_resistance);
        let l12 = vpd_units::Amps::new(90.0).dissipation_in(c.interposer_bus_resistance);
        let l6 = vpd_units::Amps::new(180.0).dissipation_in(c.interposer_bus_resistance);
        let a0 = 280.0;
        let r12 = a0 / (hv.value() + l12.value());
        let r6 = a0 / (hv.value() + l6.value());
        assert!((15.0..24.0).contains(&r12), "12 V reduction {r12:.1}x");
        assert!((5.5..9.0).contains(&r6), "6 V reduction {r6:.1}x");
    }
}
