//! Fault injection and solver-resilience sweeps.
//!
//! The paper's architectures differ not only in nominal efficiency but
//! in how gracefully they degrade: A1's periphery ring shares a lost
//! module's current across many neighbours at similar distance, while
//! A2's under-die modules localize onto the hotspot — losing the
//! central module dumps its ~93 A onto a handful of survivors. This
//! module quantifies that contrast. Faults are *value-only* edits
//! applied through [`SharingSolver`]'s restamp hooks (an open module is
//! a ≈GΩ droop, a failed via patch is a resistance-scaled mesh
//! rectangle), so the compiled sparse plan survives every scenario and
//! the sweep runs at restamp-plus-warm-solve cost.
//!
//! Determinism contract: each scenario's outcome is a pure function of
//! (nominal-anchored solver, scenario) — every evaluation restamps back
//! to nominal before injecting its faults and warm-starts from the one
//! shared anchor, so [`FaultSweep::run`] returns bitwise-identical
//! results for every thread count (see [`crate::par_map_with`]).

use crate::arch::{second_stage_converter, session_placement};
use crate::gridshare::placement_sites;
use crate::mc::sample_rng;
use crate::{
    par_map_with, AnalysisOptions, Architecture, Calibration, CoreError, SharingReport,
    SharingSolver, SystemSpec,
};
use rand::Rng;
use vpd_circuit::DcPlanMode;
use vpd_converters::{TopologyCharacteristics, VrTopologyKind};
use vpd_numeric::SolveReport;
use vpd_units::{Amps, Ohms, Volts};

/// Droop resistance that models an electrically open module: large
/// enough that the module's current is numerically zero, small enough
/// that its conductance stamp (≈1 nS against ≈kS mesh diagonals) keeps
/// the system comfortably positive definite.
pub const OPEN_RESISTANCE: Ohms = Ohms::new(1e9);

/// One injectable defect. Indices are regulator site indices; mesh
/// coordinates are grid node coordinates.
#[derive(Clone, PartialEq, Debug, serde::Serialize, serde::Deserialize)]
#[non_exhaustive]
pub enum Fault {
    /// Module `index` fails open (carries no current).
    VrOpen {
        /// Regulator site index.
        index: usize,
    },
    /// Module `index`'s droop resistance grows by `factor` (degraded
    /// output stage / partial attach failure).
    VrDerated {
        /// Regulator site index.
        index: usize,
        /// Droop multiplier (> 1 degrades).
        factor: f64,
    },
    /// Module `index`'s setpoint drifts by `delta` from nominal
    /// (trim/feedback error). Worst-drop stays referenced to nominal.
    SetpointDrift {
        /// Regulator site index.
        index: usize,
        /// Signed setpoint offset.
        delta: Volts,
    },
    /// Every mesh edge inside `[x0, x1] × [y0, y1]` gains resistance by
    /// `factor` — an open or high-resistance C4/TSV/µ-bump patch.
    RegionOpen {
        /// Left edge (node x).
        x0: usize,
        /// Bottom edge (node y).
        y0: usize,
        /// Right edge (inclusive).
        x1: usize,
        /// Top edge (inclusive).
        y1: usize,
        /// Resistance multiplier (> 1 degrades).
        factor: f64,
    },
    /// Whole-grid sheet-resistance degradation (electromigration,
    /// thermal derating) by `factor`.
    SheetDegradation {
        /// Resistance multiplier (> 1 degrades).
        factor: f64,
    },
}

/// A named set of simultaneous faults evaluated as one operating point.
#[derive(Clone, PartialEq, Debug, serde::Serialize, serde::Deserialize)]
pub struct FaultScenario {
    /// Display name (`"n-1/vr07"`, `"random-3/012"`, …).
    pub name: String,
    /// Faults applied together, in order.
    pub faults: Vec<Fault>,
}

impl FaultScenario {
    /// The classic N-1 contingency set: one scenario per module, each
    /// opening exactly that module.
    #[must_use]
    pub fn n_minus_1(n_vrs: usize) -> Vec<Self> {
        (0..n_vrs)
            .map(|index| Self {
                name: format!("n-1/vr{index:02}"),
                faults: vec![Fault::VrOpen { index }],
            })
            .collect()
    }

    /// `count` random scenarios of `k` simultaneous faults each, drawn
    /// over all fault kinds. Scenario `i`'s draws come from an RNG
    /// seeded by `(seed, i)` alone, so the set is reproducible and
    /// independent of evaluation order.
    #[must_use]
    pub fn random_k(
        k: usize,
        count: usize,
        seed: u64,
        n_vrs: usize,
        grid_side: usize,
    ) -> Vec<Self> {
        (0..count)
            .map(|i| {
                let mut rng = sample_rng(seed, i);
                let faults = (0..k)
                    .map(|_| random_fault(&mut rng, n_vrs, grid_side))
                    .collect();
                Self {
                    name: format!("random-{k}/{i:03}"),
                    faults,
                }
            })
            .collect()
    }

    /// Regulator indices this scenario opens (used to separate the
    /// surviving-module statistics from the dead modules).
    pub(crate) fn opened(&self, n_vrs: usize) -> Vec<bool> {
        let mut opened = vec![false; n_vrs];
        for fault in &self.faults {
            if let Fault::VrOpen { index } = *fault {
                if let Some(slot) = opened.get_mut(index) {
                    *slot = true;
                }
            }
        }
        opened
    }
}

fn random_fault(rng: &mut impl Rng, n_vrs: usize, grid_side: usize) -> Fault {
    let index = rng.gen_range(0..n_vrs);
    match rng.gen_range(0_u32..10) {
        0..=4 => Fault::VrOpen { index },
        5 | 6 => Fault::VrDerated {
            index,
            factor: rng.gen_range(2.0..10.0),
        },
        7 | 8 => Fault::SetpointDrift {
            index,
            delta: Volts::from_millivolts(-rng.gen_range(0.5..3.0)),
        },
        _ => {
            let patch = (grid_side / 5).max(2);
            let x0 = rng.gen_range(0..grid_side - patch);
            let y0 = rng.gen_range(0..grid_side - patch);
            Fault::RegionOpen {
                x0,
                y0,
                x1: x0 + patch,
                y1: y0 + patch,
                factor: rng.gen_range(5.0..50.0),
            }
        }
    }
}

/// The solved electrical state under one fault scenario.
#[derive(Clone, PartialEq, Debug, serde::Serialize, serde::Deserialize)]
pub struct ScenarioOutcome {
    /// Scenario name.
    pub name: String,
    /// Worst IR drop below the *nominal* setpoint.
    pub worst_drop: Volts,
    /// Smallest surviving-module current.
    pub surviving_min: Amps,
    /// Largest surviving-module current.
    pub surviving_max: Amps,
    /// Mean surviving-module current.
    pub surviving_mean: Amps,
    /// Load imbalance among survivors: `max / mean` (≥ 1). Ratio to
    /// the mean rather than the minimum because a faulted module can
    /// legitimately back-feed (≤ 0 A), which would make `max / min`
    /// unbounded; the survivor mean is always positive (the survivors
    /// carry the whole load).
    pub spread: f64,
    /// Surviving modules driven beyond the topology's rating.
    pub overloaded_modules: usize,
    /// Whether the solver left the plain warm-CG rung (cold restart or
    /// dense-LU fallback) to produce this solution.
    pub used_fallback: bool,
    /// Whether CG stagnated along the way.
    pub stagnated: bool,
    /// Iterations spent across all solver rungs.
    pub iterations: usize,
}

/// Aggregate of a [`FaultSweep::run`] over a scenario set.
#[derive(Clone, PartialEq, Debug, serde::Serialize, serde::Deserialize)]
pub struct FaultSweepReport {
    /// Swept architecture.
    pub architecture: Architecture,
    /// Per-module rating used for overload counting (None for the
    /// reference architecture's passive entry clusters).
    pub rating: Option<Amps>,
    /// Per-scenario outcomes, in scenario order.
    pub outcomes: Vec<ScenarioOutcome>,
    /// Largest worst-case drop over all scenarios.
    pub worst_drop: Volts,
    /// Name of the scenario producing it.
    pub worst_scenario: String,
    /// Largest surviving-module spread over all scenarios.
    pub max_spread: f64,
    /// Largest single surviving-module current over all scenarios.
    pub worst_surviving_current: Amps,
    /// Scenarios whose solution needed a restart or dense fallback.
    pub fallback_count: usize,
    /// Scenarios in which CG stagnated.
    pub stagnation_count: usize,
    /// Scenarios with at least one overloaded surviving module.
    pub overloaded_scenarios: usize,
}

impl FaultSweepReport {
    fn summarize(
        architecture: Architecture,
        rating: Option<Amps>,
        outcomes: Vec<ScenarioOutcome>,
    ) -> Self {
        let mut worst_drop = Volts::new(0.0);
        let mut worst_scenario = String::new();
        let mut max_spread = 0.0_f64;
        let mut worst_current = Amps::ZERO;
        let mut fallback_count = 0;
        let mut stagnation_count = 0;
        let mut overloaded_scenarios = 0;
        for o in &outcomes {
            if o.worst_drop.value() > worst_drop.value() {
                worst_drop = o.worst_drop;
                worst_scenario = o.name.clone();
            }
            max_spread = max_spread.max(o.spread);
            worst_current = worst_current.max(o.surviving_max);
            fallback_count += usize::from(o.used_fallback);
            stagnation_count += usize::from(o.stagnated);
            overloaded_scenarios += usize::from(o.overloaded_modules > 0);
        }
        Self {
            architecture,
            rating,
            outcomes,
            worst_drop,
            worst_scenario,
            max_spread,
            worst_surviving_current: worst_current,
            fallback_count,
            stagnation_count,
            overloaded_scenarios,
        }
    }

    /// Worst-case current margin against the module rating:
    /// `1 − worst_surviving / rating`. Negative means some scenario
    /// drives a module past its rating; `None` when the architecture
    /// has no rated modules, when the sweep evaluated no scenarios
    /// (there is no worst current to compare), or when the rating is
    /// degenerate (zero, negative, or non-finite) — the ratio would be
    /// ±inf/NaN rather than a margin.
    #[must_use]
    pub fn margin(&self) -> Option<f64> {
        if self.outcomes.is_empty() {
            return None;
        }
        let r = self.rating?.value();
        if !(r > 0.0 && r.is_finite()) {
            return None;
        }
        let m = 1.0 - self.worst_surviving_current.value() / r;
        m.is_finite().then_some(m)
    }
}

/// A reusable fault-sweep engine for one architecture × topology
/// configuration: the grid is built and its solve plan compiled once,
/// the nominal operating point is solved and pinned as the warm-start
/// anchor, and every scenario is then a value-only restamp plus a warm
/// solve — embarrassingly parallel over scenarios.
///
/// ```
/// use vpd_core::{Calibration, FaultScenario, FaultSweep, Architecture, SystemSpec};
/// use vpd_converters::VrTopologyKind;
///
/// # fn main() -> Result<(), vpd_core::CoreError> {
/// let sweep = FaultSweep::new(
///     Architecture::InterposerEmbedded,
///     VrTopologyKind::Dsch,
///     &SystemSpec::paper_default(),
///     &Calibration::paper_default(),
/// )?;
/// let scenarios = FaultScenario::n_minus_1(sweep.vr_count());
/// let report = sweep.run(&scenarios, 0)?;
/// assert_eq!(report.outcomes.len(), sweep.vr_count());
/// // Losing a module always hurts the worst-case droop.
/// assert!(report.worst_drop.value() > sweep.nominal().worst_drop().value());
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct FaultSweep {
    architecture: Architecture,
    spec: SystemSpec,
    calib: Calibration,
    droop: Ohms,
    rating: Option<Amps>,
    solver: SharingSolver,
    nominal: SharingReport,
}

impl FaultSweep {
    /// Builds the grid for `architecture` (paper placement and module
    /// count), compiles its plan, and anchors the nominal solution.
    ///
    /// # Errors
    ///
    /// [`CoreError::Circuit`] if the grid cannot be built or the
    /// nominal point cannot be solved; [`CoreError::Converter`] for an
    /// uncalibrated two-stage bus.
    pub fn new(
        architecture: Architecture,
        topology: VrTopologyKind,
        spec: &SystemSpec,
        calib: &Calibration,
    ) -> Result<Self, CoreError> {
        let (placement, n_vrs) = session_placement(architecture, &AnalysisOptions::default());
        let (sites, droop) = placement_sites(placement, calib, n_vrs);
        let rating = match architecture {
            Architecture::Reference => None,
            Architecture::InterposerPeriphery | Architecture::InterposerEmbedded => {
                Some(TopologyCharacteristics::table_ii(topology).max_load)
            }
            Architecture::TwoStage { bus } => Some(second_stage_converter(bus)?.max_load()),
        };
        let mut solver = SharingSolver::new(spec, calib, &sites, droop)?;
        let nominal = solver.solve()?;
        solver.anchor_last();
        Ok(Self {
            architecture,
            spec: *spec,
            calib: *calib,
            droop,
            rating,
            solver,
            nominal,
        })
    }

    /// Swept architecture.
    #[must_use]
    pub fn architecture(&self) -> Architecture {
        self.architecture
    }

    /// Number of regulator sites (the N of N-1).
    #[must_use]
    pub fn vr_count(&self) -> usize {
        self.solver.vr_count()
    }

    /// Mesh nodes per side, for sizing region faults.
    #[must_use]
    pub fn grid_side(&self) -> usize {
        self.solver.grid_side()
    }

    /// The fault-free operating point.
    #[must_use]
    pub fn nominal(&self) -> &SharingReport {
        &self.nominal
    }

    /// Sparse-solver mode scenarios are evaluated under (warm CG by
    /// default, which keeps the historical sweep results bit-for-bit).
    #[must_use]
    pub fn solve_mode(&self) -> DcPlanMode {
        self.solver.solve_mode()
    }

    /// Switches the sparse-solver mode for every subsequent scenario
    /// evaluation and re-solves + re-anchors the nominal point under the
    /// new mode. [`DcPlanMode::DirectCholesky`] answers each restamped
    /// scenario with an exact factorization: value-only scenarios whose
    /// matrix matches nominal (setpoint drift) reuse the cached factor
    /// outright, and the serial==parallel bitwise contract of
    /// [`FaultSweep::run`] holds per mode because workers clone the
    /// solver — mode, factor and anchor included.
    ///
    /// # Errors
    ///
    /// [`CoreError::Circuit`] if the nominal point cannot be re-solved
    /// under the new mode.
    pub fn set_solve_mode(&mut self, mode: DcPlanMode) -> Result<(), CoreError> {
        self.solver.set_solve_mode(mode)?;
        self.nominal = self.solver.solve()?;
        self.solver.anchor_last();
        Ok(())
    }

    /// Evaluates every scenario on `threads` workers (0 = auto). The
    /// result is bitwise-independent of `threads`.
    ///
    /// # Errors
    ///
    /// The first scenario evaluation failure, in scenario order.
    pub fn run(
        &self,
        scenarios: &[FaultScenario],
        threads: usize,
    ) -> Result<FaultSweepReport, CoreError> {
        let _span = vpd_obs::span("faults.run_ns");
        let timer = vpd_obs::is_enabled().then(std::time::Instant::now);
        let results = par_map_with(threads, scenarios, &self.solver, |solver, scenario| {
            self.evaluate(solver, scenario)
        });
        let mut outcomes = Vec::with_capacity(results.len());
        for r in results {
            outcomes.push(r?);
        }
        let report = FaultSweepReport::summarize(self.architecture, self.rating, outcomes);
        // Accounting only, after every scenario is solved: enabling
        // metrics cannot change a bit of the report.
        vpd_obs::incr("faults.runs");
        vpd_obs::add("faults.scenarios", report.outcomes.len() as u64);
        vpd_obs::add("faults.fallbacks", report.fallback_count as u64);
        vpd_obs::add("faults.stagnations", report.stagnation_count as u64);
        if let Some(start) = timer {
            let secs = start.elapsed().as_secs_f64();
            if secs > 0.0 {
                vpd_obs::gauge_set(
                    "faults.scenarios_per_sec",
                    report.outcomes.len() as f64 / secs,
                );
            }
        }
        Ok(report)
    }

    /// One scenario: restamp to nominal, inject, warm-solve, summarize.
    fn evaluate(
        &self,
        solver: &mut SharingSolver,
        scenario: &FaultScenario,
    ) -> Result<ScenarioOutcome, CoreError> {
        solver.restamp(&self.spec, &self.calib, self.droop)?;
        for fault in &scenario.faults {
            apply_fault(solver, fault)?;
        }
        let report = solver.solve()?;
        let solve = solver.last_solve_report();

        let opened = scenario.opened(solver.vr_count());
        let mut min = f64::INFINITY;
        let mut max = 0.0_f64;
        let mut sum = 0.0_f64;
        let mut survivors = 0usize;
        let mut overloaded = 0usize;
        for (k, amps) in report.per_vr().iter().enumerate() {
            if opened[k] {
                continue;
            }
            let i = amps.value();
            min = min.min(i);
            max = max.max(i);
            sum += i;
            survivors += 1;
            if self.rating.is_some_and(|r| i > r.value()) {
                overloaded += 1;
            }
        }
        let (min, mean) = if survivors == 0 {
            (0.0, 0.0)
        } else {
            (min, sum / survivors as f64)
        };
        Ok(ScenarioOutcome {
            name: scenario.name.clone(),
            worst_drop: report.worst_drop(),
            surviving_min: Amps::new(min),
            surviving_max: Amps::new(max),
            surviving_mean: Amps::new(mean),
            spread: if mean > 0.0 { max / mean } else { 0.0 },
            overloaded_modules: overloaded,
            used_fallback: solve.as_ref().is_some_and(SolveReport::used_fallback),
            stagnated: solve.as_ref().is_some_and(|s| s.stagnated),
            iterations: solve.as_ref().map_or(0, |s| s.iterations),
        })
    }
}

pub(crate) fn apply_fault(solver: &mut SharingSolver, fault: &Fault) -> Result<(), CoreError> {
    match *fault {
        Fault::VrOpen { index } => solver.set_vr_droop(index, OPEN_RESISTANCE),
        Fault::VrDerated { index, factor } => {
            if !factor.is_finite() || factor <= 0.0 {
                return Err(CoreError::InvalidSpec {
                    what: "droop derating factor",
                    value: factor,
                });
            }
            let base = solver.vr_droop(index).ok_or(CoreError::InvalidSpec {
                what: "regulator index",
                value: index as f64,
            })?;
            solver.set_vr_droop(index, base * factor)
        }
        Fault::SetpointDrift { index, delta } => {
            let nominal = solver.setpoint();
            solver.set_vr_setpoint(index, Volts::new(nominal.value() + delta.value()))
        }
        Fault::RegionOpen {
            x0,
            y0,
            x1,
            y1,
            factor,
        } => solver.scale_region_resistance(x0, y0, x1, y1, factor),
        Fault::SheetDegradation { factor } => {
            let n = solver.grid_side();
            solver.scale_region_resistance(0, 0, n - 1, n - 1, factor)
        }
    }
}

/// Runs N-1 contingency sweeps for the paper's proposed architectures
/// (A1, A2, A3@12V, A3@6V) under one topology and returns the reports
/// in that order — the per-architecture resilience comparison behind
/// the periphery-vs-under-die trade-off.
///
/// # Errors
///
/// The first sweep failure.
pub fn n_minus_1_comparison(
    topology: VrTopologyKind,
    spec: &SystemSpec,
    calib: &Calibration,
    threads: usize,
) -> Result<Vec<FaultSweepReport>, CoreError> {
    Architecture::paper_set()
        .into_iter()
        .skip(1)
        .map(|arch| {
            let sweep = FaultSweep::new(arch, topology, spec, calib)?;
            sweep.run(&FaultScenario::n_minus_1(sweep.vr_count()), threads)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper() -> (SystemSpec, Calibration) {
        (SystemSpec::paper_default(), Calibration::paper_default())
    }

    fn a2_sweep() -> FaultSweep {
        let (spec, calib) = paper();
        FaultSweep::new(
            Architecture::InterposerEmbedded,
            VrTopologyKind::Dsch,
            &spec,
            &calib,
        )
        .unwrap()
    }

    #[test]
    fn a2_n_minus_1_completes_without_solver_errors() {
        let sweep = a2_sweep();
        let scenarios = FaultScenario::n_minus_1(sweep.vr_count());
        let report = sweep.run(&scenarios, 0).unwrap();
        assert_eq!(report.outcomes.len(), 48);
        for o in &report.outcomes {
            assert!(o.worst_drop.value().is_finite() && o.worst_drop.value() > 0.0);
            assert!(o.surviving_min.value() > 0.0);
            assert!(o.spread.is_finite());
            assert!(!o.stagnated, "{}: CG stagnated", o.name);
        }
        // A2's central modules already exceed the 30 A DSCH rating at
        // nominal; every contingency keeps them overloaded.
        assert_eq!(report.overloaded_scenarios, 48);
        assert!(report.margin().unwrap() < 0.0);
    }

    #[test]
    fn serial_and_parallel_sweeps_are_bitwise_identical() {
        let sweep = a2_sweep();
        let mut scenarios = FaultScenario::n_minus_1(sweep.vr_count());
        scenarios.extend(FaultScenario::random_k(
            3,
            16,
            0xFA17,
            sweep.vr_count(),
            sweep.grid_side(),
        ));
        let serial = sweep.run(&scenarios, 1).unwrap();
        for threads in [2, 5, 8] {
            let parallel = sweep.run(&scenarios, threads).unwrap();
            assert_eq!(serial, parallel, "threads = {threads}");
        }
    }

    #[test]
    fn random_k_is_reproducible_and_seed_sensitive() {
        let a = FaultScenario::random_k(2, 12, 42, 48, 25);
        let b = FaultScenario::random_k(2, 12, 42, 48, 25);
        let c = FaultScenario::random_k(2, 12, 43, 48, 25);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.iter().all(|s| s.faults.len() == 2));
        // Every fault kind appears somewhere in a modest draw.
        let many = FaultScenario::random_k(4, 40, 7, 48, 25);
        let has = |pred: fn(&Fault) -> bool| many.iter().flat_map(|s| &s.faults).any(pred);
        assert!(has(|f| matches!(f, Fault::VrOpen { .. })));
        assert!(has(|f| matches!(f, Fault::VrDerated { .. })));
        assert!(has(|f| matches!(f, Fault::SetpointDrift { .. })));
        assert!(has(|f| matches!(f, Fault::RegionOpen { .. })));
    }

    #[test]
    fn periphery_ring_is_more_resilient_than_under_die() {
        // Losing a module costs A1 far less load-spread than A2: the
        // ring's survivors sit at comparable electrical distance, while
        // A2's hotspot modules are irreplaceable.
        let (spec, calib) = paper();
        let reports = n_minus_1_comparison(VrTopologyKind::Dsch, &spec, &calib, 0).unwrap();
        assert_eq!(reports.len(), 4);
        let a1 = &reports[0];
        let a2 = &reports[1];
        assert_eq!(a1.architecture, Architecture::InterposerPeriphery);
        assert!(a1.max_spread < a2.max_spread);
        assert!(a1.margin().unwrap() > a2.margin().unwrap());
        // Both A3 buses share A2's under-die placement and inherit its
        // wide contingency spread.
        for a3 in &reports[2..] {
            assert!(a3.max_spread > a1.max_spread);
        }
    }

    #[test]
    fn a1_n_minus_1_golden() {
        // Pinned A1 N-1 summary (VR failure contingency): guards both
        // the fault model and the solver path against silent drift.
        let (spec, calib) = paper();
        let sweep = FaultSweep::new(
            Architecture::InterposerPeriphery,
            VrTopologyKind::Dsch,
            &spec,
            &calib,
        )
        .unwrap();
        let report = sweep
            .run(&FaultScenario::n_minus_1(sweep.vr_count()), 0)
            .unwrap();
        let golden_drop = GOLDEN_A1_WORST_DROP;
        let golden_spread = GOLDEN_A1_MAX_SPREAD;
        assert!(
            (report.worst_drop.value() - golden_drop).abs() < 1e-6 * golden_drop,
            "worst drop {:.9} V vs golden {golden_drop:.9} V",
            report.worst_drop.value()
        );
        assert!(
            (report.max_spread - golden_spread).abs() < 1e-6 * golden_spread,
            "max spread {:.9} vs golden {golden_spread:.9}",
            report.max_spread
        );
        assert_eq!(report.fallback_count, 0);
        assert_eq!(report.stagnation_count, 0);
    }

    /// Pinned from the paper-default A1 N-1 sweep; see
    /// `a1_n_minus_1_golden`.
    const GOLDEN_A1_WORST_DROP: f64 = 0.090586354;
    const GOLDEN_A1_MAX_SPREAD: f64 = 1.297382967;

    #[test]
    fn direct_mode_sweep_matches_warm_cg_and_stays_deterministic() {
        let mut sweep = a2_sweep();
        let mut scenarios = FaultScenario::n_minus_1(8);
        scenarios.extend(FaultScenario::random_k(
            2,
            6,
            0xD1CE,
            sweep.vr_count(),
            sweep.grid_side(),
        ));
        let cg = sweep.run(&scenarios, 1).unwrap();

        sweep.set_solve_mode(DcPlanMode::DirectCholesky).unwrap();
        assert_eq!(sweep.solve_mode(), DcPlanMode::DirectCholesky);
        let serial = sweep.run(&scenarios, 1).unwrap();
        // Exact solves: the ladder never leaves its first rung.
        assert_eq!(serial.fallback_count, 0);
        assert_eq!(serial.stagnation_count, 0);
        for (a, b) in cg.outcomes.iter().zip(&serial.outcomes) {
            assert!(
                (a.worst_drop.value() - b.worst_drop.value()).abs() < 1e-8,
                "{}: {} vs {}",
                a.name,
                a.worst_drop,
                b.worst_drop
            );
            assert!((a.spread - b.spread).abs() < 1e-6);
        }
        // The bitwise serial==parallel contract holds in direct mode.
        for threads in [2, 5] {
            let parallel = sweep.run(&scenarios, threads).unwrap();
            assert_eq!(serial, parallel, "threads = {threads}");
        }
    }

    #[test]
    fn compound_scenarios_degrade_monotonically() {
        let sweep = a2_sweep();
        let single = FaultScenario {
            name: "vr0".into(),
            faults: vec![Fault::VrOpen { index: 0 }],
        };
        let compound = FaultScenario {
            name: "vr0+sheet".into(),
            faults: vec![
                Fault::VrOpen { index: 0 },
                Fault::SheetDegradation { factor: 1.5 },
            ],
        };
        let report = sweep.run(&[single, compound], 1).unwrap();
        assert!(report.outcomes[1].worst_drop.value() > report.outcomes[0].worst_drop.value());
        assert_eq!(report.worst_scenario, "vr0+sheet");
    }

    #[test]
    fn invalid_faults_are_rejected() {
        let sweep = a2_sweep();
        let bad_index = FaultScenario {
            name: "bad".into(),
            faults: vec![Fault::VrOpen { index: 999 }],
        };
        assert!(sweep.run(&[bad_index], 1).is_err());
        let bad_factor = FaultScenario {
            name: "bad".into(),
            faults: vec![Fault::VrDerated {
                index: 0,
                factor: -2.0,
            }],
        };
        assert!(matches!(
            sweep.run(&[bad_factor], 1),
            Err(CoreError::InvalidSpec { .. })
        ));
    }

    #[test]
    fn margin_is_none_for_empty_sweeps_and_degenerate_ratings() {
        let outcome = ScenarioOutcome {
            name: "one".into(),
            worst_drop: Volts::from_millivolts(50.0),
            surviving_min: Amps::new(10.0),
            surviving_max: Amps::new(20.0),
            surviving_mean: Amps::new(15.0),
            spread: 20.0 / 15.0,
            overloaded_modules: 0,
            used_fallback: false,
            stagnated: false,
            iterations: 3,
        };
        let summarize = |rating: Option<Amps>, outcomes: Vec<ScenarioOutcome>| {
            FaultSweepReport::summarize(Architecture::InterposerEmbedded, rating, outcomes)
        };
        // No scenarios evaluated: worst_surviving_current is a fold over
        // nothing, so the "margin" would be the meaningless 1 - 0/r.
        assert!(summarize(Some(Amps::new(30.0)), vec![]).margin().is_none());
        // Degenerate ratings would divide by ~0 or propagate non-finites.
        for bad in [0.0, -5.0, 1e-320, f64::NAN, f64::INFINITY] {
            assert!(
                summarize(Some(Amps::new(bad)), vec![outcome.clone()])
                    .margin()
                    .is_none(),
                "rating {bad} should have no margin"
            );
        }
        // A healthy rating still reports the exact ratio.
        let good = summarize(Some(Amps::new(40.0)), vec![outcome]);
        assert_eq!(good.margin(), Some(1.0 - 20.0 / 40.0));
    }

    #[test]
    fn reference_architecture_has_no_rating() {
        let (spec, calib) = paper();
        let sweep =
            FaultSweep::new(Architecture::Reference, VrTopologyKind::Dsch, &spec, &calib).unwrap();
        let report = sweep.run(&FaultScenario::n_minus_1(4), 1).unwrap();
        assert!(report.rating.is_none());
        assert!(report.margin().is_none());
        assert_eq!(report.overloaded_scenarios, 0);
    }
}
