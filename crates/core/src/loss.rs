//! PCB-to-POL loss breakdowns — the data behind Figure 7.

use vpd_units::{Efficiency, Watts};

/// What a loss segment physically is.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, serde::Serialize, serde::Deserialize)]
pub enum LossKind {
    /// Power-conversion loss (switching, conduction, passives, droop) of
    /// one stage (1-indexed; single-stage architectures use stage 1).
    Conversion {
        /// Which conversion stage.
        stage: u8,
    },
    /// Laterally routed interconnect (PCB traces, interposer bus).
    Horizontal,
    /// The 1 V distribution-mesh spreading loss on the die/interposer.
    GridSpreading,
    /// A vertical interconnect level (BGA, C4, TSV, µ-bump/pad).
    Vertical,
}

/// One named loss contribution.
#[derive(Clone, PartialEq, Debug, serde::Serialize, serde::Deserialize)]
pub struct LossSegment {
    /// Display name (e.g. `"C4"`, `"VR stage 2"`).
    pub name: String,
    /// Physical category.
    pub kind: LossKind,
    /// Dissipated power.
    pub power: Watts,
}

/// A complete PCB-to-POL loss decomposition for one architecture.
///
/// ```
/// use vpd_core::{LossBreakdown, LossKind, LossSegment};
/// use vpd_units::Watts;
///
/// let mut b = LossBreakdown::new(Watts::from_kilowatts(1.0));
/// b.push(LossSegment {
///     name: "horizontal PCB".into(),
///     kind: LossKind::Horizontal,
///     power: Watts::new(280.0),
/// });
/// assert!((b.total().value() - 280.0).abs() < 1e-12);
/// assert!((b.percent_of_pol_power(b.total()) - 28.0).abs() < 1e-12);
/// ```
#[derive(Clone, PartialEq, Debug, serde::Serialize, serde::Deserialize)]
pub struct LossBreakdown {
    pol_power: Watts,
    segments: Vec<LossSegment>,
}

impl LossBreakdown {
    /// Creates an empty breakdown for a system delivering `pol_power`.
    #[must_use]
    pub fn new(pol_power: Watts) -> Self {
        Self {
            pol_power,
            segments: Vec::new(),
        }
    }

    /// Appends a segment (zero-power segments are kept: the harness
    /// prints them to show a level is present but negligible).
    pub fn push(&mut self, segment: LossSegment) {
        self.segments.push(segment);
    }

    /// The segments in insertion order.
    #[must_use]
    pub fn segments(&self) -> &[LossSegment] {
        &self.segments
    }

    /// Nominal POL power of the system.
    #[must_use]
    pub fn pol_power(&self) -> Watts {
        self.pol_power
    }

    /// Sum of all losses.
    #[must_use]
    pub fn total(&self) -> Watts {
        self.segments.iter().map(|s| s.power).sum()
    }

    /// Sum of losses of one kind category (ignoring the stage index for
    /// conversion).
    #[must_use]
    pub fn by_kind(&self, kind: LossKind) -> Watts {
        self.segments
            .iter()
            .filter(|s| std::mem::discriminant(&s.kind) == std::mem::discriminant(&kind))
            .map(|s| s.power)
            .sum()
    }

    /// Total conversion loss (all stages, including droop).
    #[must_use]
    pub fn conversion_loss(&self) -> Watts {
        self.by_kind(LossKind::Conversion { stage: 1 })
    }

    /// Total lateral routing loss (PCB + interposer bus), excluding the
    /// die-grid spreading term.
    #[must_use]
    pub fn horizontal_loss(&self) -> Watts {
        self.by_kind(LossKind::Horizontal)
    }

    /// Total vertical interconnect loss.
    #[must_use]
    pub fn vertical_loss(&self) -> Watts {
        self.by_kind(LossKind::Vertical)
    }

    /// Die/interposer mesh spreading loss.
    #[must_use]
    pub fn grid_loss(&self) -> Watts {
        self.by_kind(LossKind::GridSpreading)
    }

    /// Total PPDN (non-conversion) loss: horizontal + vertical + grid.
    #[must_use]
    pub fn ppdn_loss(&self) -> Watts {
        self.horizontal_loss() + self.vertical_loss() + self.grid_loss()
    }

    /// A power expressed as percent of the nominal POL power — the
    /// paper's Figure 7 y-axis ("per cent of the total power available
    /// at the PCB", with the 1 kW nominal).
    #[must_use]
    pub fn percent_of_pol_power(&self, p: Watts) -> f64 {
        p.percent_of(self.pol_power)
    }

    /// End-to-end delivery efficiency: `P_pol / (P_pol + losses)`.
    ///
    /// # Panics
    ///
    /// Never in practice: the ratio is in `(0, 1]` for non-negative
    /// losses and positive POL power.
    #[must_use]
    pub fn end_to_end_efficiency(&self) -> Efficiency {
        let pol = self.pol_power.value();
        Efficiency::new(pol / (pol + self.total().value()))
            .expect("non-negative losses keep efficiency in (0, 1]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LossBreakdown {
        let mut b = LossBreakdown::new(Watts::from_kilowatts(1.0));
        for (name, kind, p) in [
            ("VR stage 1", LossKind::Conversion { stage: 1 }, 44.0),
            ("VR stage 2", LossKind::Conversion { stage: 2 }, 95.0),
            ("PCB 48V", LossKind::Horizontal, 6.0),
            ("bus 12V", LossKind::Horizontal, 8.7),
            ("spreading", LossKind::GridSpreading, 8.0),
            ("BGA", LossKind::Vertical, 0.1),
            ("C4", LossKind::Vertical, 0.05),
        ] {
            b.push(LossSegment {
                name: name.into(),
                kind,
                power: Watts::new(p),
            });
        }
        b
    }

    #[test]
    fn totals_decompose_exactly() {
        let b = sample();
        let sum = b.conversion_loss() + b.horizontal_loss() + b.vertical_loss() + b.grid_loss();
        assert!(b.total().approx_eq(sum, 1e-12));
        assert!((b.total().value() - 161.85).abs() < 1e-9);
    }

    #[test]
    fn conversion_aggregates_both_stages() {
        let b = sample();
        assert!((b.conversion_loss().value() - 139.0).abs() < 1e-12);
    }

    #[test]
    fn ppdn_excludes_conversion() {
        let b = sample();
        assert!((b.ppdn_loss().value() - 22.85).abs() < 1e-9);
    }

    #[test]
    fn efficiency_from_losses() {
        let b = sample();
        let eta = b.end_to_end_efficiency();
        assert!((eta.fraction() - 1000.0 / 1161.85).abs() < 1e-9);
    }

    #[test]
    fn percent_axis() {
        let b = sample();
        assert!((b.percent_of_pol_power(Watts::new(420.0)) - 42.0).abs() < 1e-12);
    }

    #[test]
    fn empty_breakdown_is_lossless() {
        let b = LossBreakdown::new(Watts::from_kilowatts(1.0));
        assert!(b.total().is_zero());
        assert!((b.end_to_end_efficiency().fraction() - 1.0).abs() < 1e-12);
    }
}
