//! Dynamic fault power-integrity: what a fault *does* to the rail, not
//! just to the DC operating point.
//!
//! The static fault engine ([`crate::FaultSweep`]) answers "where does
//! the current go when a module dies". This module adds the three
//! dynamic questions the paper's resilience story needs:
//!
//! 1. **Fault × frequency** — [`FaultImpedanceSweep`] applies each
//!    scenario of the typed [`Fault`] taxonomy *value-only* to a
//!    compiled [`vpd_circuit::AcPlan`] of the architecture's
//!    [`PdnModel`] ladder and reports whether the degraded profile
//!    pushes |Z| over the target impedance, and by how much.
//! 2. **Fault transients** — [`FaultTransientSweep`] kills the
//!    regulator bank *mid-run* through a series switch whose drive is
//!    restamped per scenario ([`vpd_circuit::TransientPlan`]'s
//!    switch-config LU cache absorbs the topology flip) and reports the
//!    droop excursion versus failure time.
//! 3. **Cascade ladders** — [`CascadeLadder`] couples the faulted DC
//!    solution through the electro-thermal path: the dead module's
//!    neighbours pick up its current, heat up, derate, and shed load,
//!    iterated to a fixed point with an explicit
//!    [`FixedPointTermination`] verdict, rolled up per architecture
//!    into a [`SurvivalEnvelope`].
//!
//! All three engines inherit the repo-wide determinism contract: each
//! scenario is a pure function of (compiled nominal plan, scenario), so
//! serial and parallel runs through [`crate::par_map_with`] are bitwise
//! identical, and restamping a fault into the nominal plan produces the
//! same bits as compiling the faulted netlist from scratch.

use crate::arch::{second_stage_converter, session_placement};
use crate::electro_thermal::FixedPointTermination;
use crate::faults::{apply_fault, Fault, FaultScenario, OPEN_RESISTANCE};
use crate::gridshare::placement_sites;
use crate::placement::VrPlacement;
use crate::{
    par_map_with, target_impedance, AnalysisOptions, Architecture, Calibration, CoreError,
    ImpedanceProfile, LoadStep, PdnModel, SharingSolver, SystemSpec,
};
use vpd_circuit::{AcPlan, ElementId, NodeId, SwitchState, TransientPlan, TransientSettings};
use vpd_converters::{Converter, TopologyCharacteristics, VrTopologyKind};
use vpd_thermal::{DeratingModel, DeviceTechnology, ThermalMesh};
use vpd_units::{Amps, Celsius, Henries, Hertz, Ohms, Seconds, Volts, Watts};

/// Projects a fault scenario onto the lumped [`PdnModel`] ladder.
///
/// The ladder's regulator stage is the parallel combination of `n_vrs`
/// identical module branches (each `n·R`, `n·L`), so module faults
/// recombine by conductance sum: an open branch drops out, a derated
/// branch contributes `1/(n·R·factor)`. Module output capacitors stay
/// on the rail even when the module's output stage dies, so opens do
/// not shrink the bulk decap. Sheet and region degradation scale the
/// distribution and vertical resistances — a region patch by its area
/// fraction, so a whole-grid region fault coincides with
/// [`Fault::SheetDegradation`]. Setpoint drift is a DC trim offset with
/// no small-signal effect.
///
/// # Errors
///
/// [`CoreError::InvalidSpec`] for out-of-range module indices, region
/// rectangles outside the grid, or non-positive/non-finite factors.
pub fn faulted_pdn_model(
    model: &PdnModel,
    n_vrs: usize,
    grid_side: usize,
    scenario: &FaultScenario,
) -> Result<PdnModel, CoreError> {
    let check_factor = |factor: f64| {
        if factor.is_finite() && factor > 0.0 {
            Ok(())
        } else {
            Err(CoreError::InvalidSpec {
                what: "fault degradation factor",
                value: factor,
            })
        }
    };
    let mut open = vec![false; n_vrs];
    let mut derate = vec![1.0_f64; n_vrs];
    let mut sheet = 1.0_f64;
    for fault in &scenario.faults {
        match *fault {
            Fault::VrOpen { index } => {
                *open.get_mut(index).ok_or(CoreError::InvalidSpec {
                    what: "regulator index",
                    value: index as f64,
                })? = true;
            }
            Fault::VrDerated { index, factor } => {
                check_factor(factor)?;
                let slot = derate.get_mut(index).ok_or(CoreError::InvalidSpec {
                    what: "regulator index",
                    value: index as f64,
                })?;
                *slot *= factor;
            }
            Fault::SetpointDrift { .. } => {}
            Fault::RegionOpen {
                x0,
                y0,
                x1,
                y1,
                factor,
            } => {
                check_factor(factor)?;
                if x0 > x1 || y0 > y1 || x1 >= grid_side || y1 >= grid_side {
                    return Err(CoreError::InvalidSpec {
                        what: "region fault rectangle",
                        value: x1.max(y1) as f64,
                    });
                }
                let cells = ((x1 - x0 + 1) * (y1 - y0 + 1)) as f64;
                let fraction = cells / (grid_side * grid_side) as f64;
                sheet *= 1.0 + fraction * (factor - 1.0);
            }
            Fault::SheetDegradation { factor } => {
                check_factor(factor)?;
                sheet *= factor;
            }
        }
    }
    let mut faulted = *model;
    // Recombine the parallel bank only when a module fault touched it:
    // the untouched bank must keep its nominal values bit-for-bit, not
    // a floating-point round trip through the conductance sum.
    if open.iter().any(|&o| o) || derate.iter().any(|&d| d != 1.0) {
        let n = n_vrs as f64;
        let mut g_r = 0.0_f64;
        let mut g_l = 0.0_f64;
        let mut survivors = 0usize;
        for k in 0..n_vrs {
            if open[k] {
                continue;
            }
            survivors += 1;
            // Derating degrades the output stage (resistive); the
            // branch inductance is geometric and survives untouched.
            g_r += 1.0 / (n * model.vr_resistance.value() * derate[k]);
            g_l += 1.0 / (n * model.vr_inductance.value());
        }
        if survivors == 0 {
            // The whole bank is dead: the regulator branch is an open.
            // The inductance is irrelevant behind a GΩ, stays nominal.
            faulted.vr_resistance = OPEN_RESISTANCE;
        } else {
            faulted.vr_resistance = Ohms::new(1.0 / g_r);
            faulted.vr_inductance = Henries::new(1.0 / g_l);
        }
    }
    faulted.distribution_resistance = Ohms::new(model.distribution_resistance.value() * sheet);
    faulted.vertical_resistance = Ohms::new(model.vertical_resistance.value() * sheet);
    Ok(faulted)
}

/// One scenario's degraded impedance profile, summarized.
#[derive(Clone, PartialEq, Debug, serde::Serialize, serde::Deserialize)]
pub struct FaultImpedanceOutcome {
    /// Scenario name.
    pub name: String,
    /// Peak |Z| of the degraded profile.
    pub peak: Ohms,
    /// Frequency of the peak.
    pub peak_frequency: Hertz,
    /// Lowest swept frequency pushed over the target, if any.
    pub first_violation: Option<Hertz>,
    /// Whether the scenario pushes |Z| over the target anywhere.
    pub over_target: bool,
    /// Fractional overshoot `peak / target − 1`: positive means over
    /// target by that fraction, negative means surviving headroom.
    pub excess: f64,
}

/// Aggregate of a [`FaultImpedanceSweep::run`]: per-scenario degraded
/// profiles judged against the target impedance.
#[derive(Clone, PartialEq, Debug, serde::Serialize, serde::Deserialize)]
pub struct FaultImpedanceReport {
    /// Swept architecture.
    pub architecture: Architecture,
    /// Target impedance the profiles are judged against.
    pub target: Ohms,
    /// Fault-free peak over the same frequency grid.
    pub nominal_peak: Ohms,
    /// Per-scenario outcomes, in scenario order.
    pub outcomes: Vec<FaultImpedanceOutcome>,
    /// Largest degraded peak over all scenarios.
    pub worst_peak: Ohms,
    /// Name of the scenario producing it.
    pub worst_scenario: String,
    /// Scenarios that push |Z| over the target.
    pub violating_scenarios: usize,
}

impl FaultImpedanceReport {
    fn summarize(
        architecture: Architecture,
        target: Ohms,
        nominal_peak: Ohms,
        outcomes: Vec<FaultImpedanceOutcome>,
    ) -> Self {
        let mut worst_peak = Ohms::new(0.0);
        let mut worst_scenario = String::new();
        let mut violating = 0usize;
        for o in &outcomes {
            if o.peak.value() > worst_peak.value() {
                worst_peak = o.peak;
                worst_scenario = o.name.clone();
            }
            violating += usize::from(o.over_target);
        }
        Self {
            architecture,
            target,
            nominal_peak,
            outcomes,
            worst_peak,
            worst_scenario,
            violating_scenarios: violating,
        }
    }

    /// Worst fractional overshoot over all scenarios (`worst_peak /
    /// target − 1`).
    #[must_use]
    pub fn worst_excess(&self) -> f64 {
        self.worst_peak.value() / self.target.value() - 1.0
    }
}

/// Fault × frequency: the typed fault taxonomy applied value-only to a
/// compiled AC plan of the architecture's PDN ladder.
///
/// The ladder is compiled **once**; every scenario projects its faults
/// onto the lumped model ([`faulted_pdn_model`]), restamps the five
/// fault-touched stamps, and sweeps the frequency grid. Restamped
/// values are baked exactly as compilation would bake them, so the
/// degraded profile is bitwise identical to compiling the faulted
/// netlist from scratch — and serial == parallel bitwise, because each
/// scenario restamps every touched element from absolute values.
///
/// ```
/// use vpd_core::{Architecture, Calibration, FaultImpedanceSweep, FaultScenario, SystemSpec};
/// use vpd_circuit::log_sweep;
/// use vpd_units::Hertz;
///
/// # fn main() -> Result<(), vpd_core::CoreError> {
/// let sweep = FaultImpedanceSweep::new(
///     Architecture::InterposerEmbedded,
///     &SystemSpec::paper_default(),
///     &Calibration::paper_default(),
/// )?;
/// let freqs = log_sweep(Hertz::from_kilohertz(1.0), Hertz::new(1e9), 40);
/// let scenarios = FaultScenario::n_minus_1(sweep.vr_count());
/// let report = sweep.run(&scenarios, &freqs, 0)?;
/// // One module out of 48: the profile degrades but holds the target.
/// assert_eq!(report.violating_scenarios, 0);
/// assert!(report.worst_peak.value() > report.nominal_peak.value());
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct FaultImpedanceSweep {
    architecture: Architecture,
    model: PdnModel,
    n_vrs: usize,
    grid_side: usize,
    target: Ohms,
    plan: AcPlan,
    die: NodeId,
    elements: crate::impedance::PdnElements,
}

impl FaultImpedanceSweep {
    /// Compiles the architecture's ladder once, judged against the
    /// paper's target impedance (5% ripple, 25% load step).
    ///
    /// # Errors
    ///
    /// Propagates netlist-construction failures from the model.
    pub fn new(
        architecture: Architecture,
        spec: &SystemSpec,
        calib: &Calibration,
    ) -> Result<Self, CoreError> {
        let (_, n_vrs) = session_placement(architecture, &AnalysisOptions::default());
        let model = PdnModel::for_architecture(architecture);
        let (net, die, elements) = model.netlist_tagged()?;
        Ok(Self {
            architecture,
            model,
            n_vrs,
            grid_side: calib.grid_nodes_per_side.max(4),
            target: target_impedance(spec, 0.05, 0.25),
            plan: AcPlan::compile(&net),
            die,
            elements,
        })
    }

    /// Number of regulator sites (the N of N-1).
    #[must_use]
    pub fn vr_count(&self) -> usize {
        self.n_vrs
    }

    /// Mesh nodes per side, for sizing region faults.
    #[must_use]
    pub fn grid_side(&self) -> usize {
        self.grid_side
    }

    /// The target impedance scenarios are judged against.
    #[must_use]
    pub fn target(&self) -> Ohms {
        self.target
    }

    /// The fault-free lumped model the sweep perturbs.
    #[must_use]
    pub fn nominal_model(&self) -> &PdnModel {
        &self.model
    }

    /// The lumped model under one scenario (see [`faulted_pdn_model`]).
    ///
    /// # Errors
    ///
    /// Propagates fault-validation failures.
    pub fn faulted_model(&self, scenario: &FaultScenario) -> Result<PdnModel, CoreError> {
        faulted_pdn_model(&self.model, self.n_vrs, self.grid_side, scenario)
    }

    fn restamp(&self, plan: &mut AcPlan, m: &PdnModel) -> Result<(), CoreError> {
        let e = &self.elements;
        plan.set_resistance(e.vr_resistance, m.vr_resistance)
            .map_err(CoreError::Circuit)?;
        plan.set_inductance(e.vr_inductance, m.vr_inductance)
            .map_err(CoreError::Circuit)?;
        plan.set_capacitance(e.bulk_capacitance, m.bulk_capacitance)
            .map_err(CoreError::Circuit)?;
        plan.set_resistance(e.distribution_resistance, m.distribution_resistance)
            .map_err(CoreError::Circuit)?;
        plan.set_resistance(e.vertical_resistance, m.vertical_resistance)
            .map_err(CoreError::Circuit)?;
        Ok(())
    }

    fn profile_over(
        &self,
        plan: &mut AcPlan,
        label: String,
        freqs: &[Hertz],
    ) -> Result<ImpedanceProfile, CoreError> {
        let mut points = Vec::with_capacity(freqs.len());
        for &f in freqs {
            points.push(plan.impedance_at(self.die, f).map_err(CoreError::Circuit)?);
        }
        Ok(ImpedanceProfile::from_points(label, points, self.target))
    }

    /// The full degraded profile of one scenario — what the summary
    /// outcomes are derived from, exposed for plotting and for the
    /// restamp-equals-scratch property tests.
    ///
    /// # Errors
    ///
    /// Propagates fault-validation and AC-solve failures.
    pub fn profile(
        &self,
        scenario: &FaultScenario,
        freqs: &[Hertz],
    ) -> Result<ImpedanceProfile, CoreError> {
        let faulted = self.faulted_model(scenario)?;
        let mut plan = self.plan.clone();
        self.restamp(&mut plan, &faulted)?;
        self.profile_over(&mut plan, scenario.name.clone(), freqs)
    }

    /// Evaluates every scenario over `freqs` on `threads` workers
    /// (0 = auto). The result is bitwise-independent of `threads`.
    ///
    /// # Errors
    ///
    /// The first scenario evaluation failure, in scenario order.
    pub fn run(
        &self,
        scenarios: &[FaultScenario],
        freqs: &[Hertz],
        threads: usize,
    ) -> Result<FaultImpedanceReport, CoreError> {
        let _span = vpd_obs::span("faultdyn.impedance_ns");
        let nominal_peak = {
            let mut plan = self.plan.clone();
            self.profile_over(&mut plan, "nominal".into(), freqs)?.peak
        };
        let results = par_map_with(threads, scenarios, &self.plan, |plan, scenario| {
            let faulted = self.faulted_model(scenario)?;
            self.restamp(plan, &faulted)?;
            let profile = self.profile_over(plan, scenario.name.clone(), freqs)?;
            Ok::<_, CoreError>(FaultImpedanceOutcome {
                name: profile.label.clone(),
                peak: profile.peak,
                peak_frequency: profile.peak_frequency,
                first_violation: profile.first_violation,
                over_target: !profile.meets_target(),
                excess: profile.peak.value() / self.target.value() - 1.0,
            })
        });
        let mut outcomes = Vec::with_capacity(results.len());
        for r in results {
            outcomes.push(r?);
        }
        vpd_obs::incr("faultdyn.impedance_runs");
        vpd_obs::add("faultdyn.impedance_scenarios", outcomes.len() as u64);
        Ok(FaultImpedanceReport::summarize(
            self.architecture,
            self.target,
            nominal_peak,
            outcomes,
        ))
    }
}

/// One mid-run VR-failure stimulus: the bank dies at `fail_at`
/// (`None` = never — the healthy baseline).
#[derive(Clone, PartialEq, Debug, serde::Serialize, serde::Deserialize)]
pub struct VrFailureScenario {
    /// Display name (`"nominal"`, `"fail@8.0us"`, …).
    pub name: String,
    /// When the regulator bank fails open, if ever.
    pub fail_at: Option<Seconds>,
}

impl VrFailureScenario {
    /// The healthy baseline plus `count` failure times evenly spaced
    /// across `(0, window]`.
    #[must_use]
    pub fn grid(count: usize, window: Seconds) -> Vec<Self> {
        let mut scenarios = vec![Self {
            name: "nominal".into(),
            fail_at: None,
        }];
        for i in 1..=count {
            let at = window.value() * i as f64 / count as f64;
            scenarios.push(Self {
                name: format!("fail@{:.2}us", at * 1e6),
                fail_at: Some(Seconds::new(at)),
            });
        }
        scenarios
    }
}

/// The rail's response to one VR-failure scenario.
#[derive(Clone, PartialEq, Debug, serde::Serialize, serde::Deserialize)]
pub struct FaultTransientOutcome {
    /// Scenario name.
    pub name: String,
    /// When the bank failed, if it did.
    pub fail_at: Option<Seconds>,
    /// Rail voltage just before the first event (failure or load step).
    pub v_before: Volts,
    /// Minimum rail voltage from that point on.
    pub v_min: Volts,
    /// Worst excursion `v_before − v_min`.
    pub droop: Volts,
    /// Rail voltage at the end of the window.
    pub v_end: Volts,
    /// Whether the rail fell below half the setpoint — the supply is
    /// lost, not merely droopy.
    pub collapsed: bool,
}

/// Aggregate of a [`FaultTransientSweep::run`].
#[derive(Clone, PartialEq, Debug, serde::Serialize, serde::Deserialize)]
pub struct FaultTransientReport {
    /// Swept architecture.
    pub architecture: Architecture,
    /// The load step every scenario carries.
    pub step: LoadStep,
    /// Per-scenario outcomes, in scenario order.
    pub outcomes: Vec<FaultTransientOutcome>,
    /// Largest droop excursion over all scenarios.
    pub worst_droop: Volts,
    /// Name of the scenario producing it.
    pub worst_scenario: String,
    /// Scenarios whose rail collapsed below half the setpoint.
    pub collapsed_scenarios: usize,
}

impl FaultTransientReport {
    fn summarize(
        architecture: Architecture,
        step: LoadStep,
        outcomes: Vec<FaultTransientOutcome>,
    ) -> Self {
        let mut worst_droop = Volts::new(0.0);
        let mut worst_scenario = String::new();
        let mut collapsed = 0usize;
        for o in &outcomes {
            if o.droop.value() > worst_droop.value() {
                worst_droop = o.droop;
                worst_scenario = o.name.clone();
            }
            collapsed += usize::from(o.collapsed);
        }
        Self {
            architecture,
            step,
            outcomes,
            worst_droop,
            worst_scenario,
            collapsed_scenarios: collapsed,
        }
    }
}

/// Mid-run VR-failure transients: the architecture's ladder behind a
/// series switch, compiled once into a [`TransientPlan`] and re-driven
/// per scenario.
///
/// Each scenario restamps only the switch drive (a
/// [`vpd_circuit::PwmSchedule`] failure event at its `fail_at`), so the
/// plan's switch-config LU cache carries exactly two factorizations —
/// healthy and failed — across every scenario. Scenarios also carry the
/// paper's load step, so the sweep shows how a failure *before*,
/// *during*, and *after* a load step differ.
#[derive(Clone, Debug)]
pub struct FaultTransientSweep {
    architecture: Architecture,
    plan: TransientPlan,
    die: NodeId,
    switch_el: ElementId,
    step: LoadStep,
    setpoint: Volts,
}

impl FaultTransientSweep {
    /// On-resistance of the series VR switch: negligible against the
    /// ladder's own output resistance.
    pub const SWITCH_ON_RESISTANCE: Ohms = Ohms::new(1e-7);

    /// Compiles the ladder + switch + load step into a reusable plan
    /// and prefactors the healthy switch configuration.
    ///
    /// # Errors
    ///
    /// Propagates netlist-construction, settings, and solver failures.
    pub fn new(
        architecture: Architecture,
        model: &PdnModel,
        step: &LoadStep,
        sim_time: Seconds,
        dt: Seconds,
    ) -> Result<Self, CoreError> {
        let mut net = vpd_circuit::Netlist::new();
        let src = net.node("vr_src");
        let vr = net.node("vr");
        let board = net.node("board");
        let pkg = net.node("pkg");
        let die = net.node("die");
        let g = net.ground();
        net.voltage_source(src, g, Volts::new(1.0))
            .map_err(CoreError::Circuit)?;
        let switch_el = net
            .switch(
                src,
                vr,
                Self::SWITCH_ON_RESISTANCE,
                OPEN_RESISTANCE,
                None,
                SwitchState::On,
            )
            .map_err(CoreError::Circuit)?;
        model.stamp_ladder(&mut net, vr, board, pkg, die)?;
        net.step_current_source(die, g, step.base, step.after, step.at)
            .map_err(CoreError::Circuit)?;
        let settings = TransientSettings::new(sim_time, dt).map_err(CoreError::Circuit)?;
        let mut plan = TransientPlan::compile(&net, &settings).map_err(CoreError::Circuit)?;
        plan.prefactor().map_err(CoreError::Circuit)?;
        Ok(Self {
            architecture,
            plan,
            die,
            switch_el,
            step: *step,
            setpoint: Volts::new(1.0),
        })
    }

    /// The load step every scenario carries.
    #[must_use]
    pub fn step(&self) -> LoadStep {
        self.step
    }

    /// Evaluates every scenario on `threads` workers (0 = auto). The
    /// result is bitwise-independent of `threads`.
    ///
    /// # Errors
    ///
    /// The first scenario evaluation failure, in scenario order.
    pub fn run(
        &self,
        scenarios: &[VrFailureScenario],
        threads: usize,
    ) -> Result<FaultTransientReport, CoreError> {
        let _span = vpd_obs::span("faultdyn.transient_ns");
        let results = par_map_with(threads, scenarios, &self.plan, |plan, scenario| {
            match scenario.fail_at {
                Some(at) => plan
                    .fail_switch_at(self.switch_el, at)
                    .map_err(CoreError::Circuit)?,
                None => plan
                    .set_switch_drive(self.switch_el, None, SwitchState::On)
                    .map_err(CoreError::Circuit)?,
            }
            plan.run().map_err(CoreError::Circuit)?;
            Ok::<_, CoreError>(self.derive(scenario, plan))
        });
        let mut outcomes = Vec::with_capacity(results.len());
        for r in results {
            outcomes.push(r?);
        }
        vpd_obs::incr("faultdyn.transient_runs");
        vpd_obs::add("faultdyn.transient_scenarios", outcomes.len() as u64);
        Ok(FaultTransientReport::summarize(
            self.architecture,
            self.step,
            outcomes,
        ))
    }

    fn derive(&self, scenario: &VrFailureScenario, plan: &TransientPlan) -> FaultTransientOutcome {
        let result = plan.result();
        let times = result.times();
        let v = result.voltage(self.die);
        // Reference point: just before the earliest event — the failure
        // or the load step, whichever fires first.
        let event = scenario.fail_at.map_or(self.step.at.value(), |f| {
            f.value().min(self.step.at.value())
        });
        let idx = times
            .iter()
            .position(|&t| t >= event)
            .unwrap_or(0)
            .saturating_sub(1);
        let v_before = v[idx];
        let v_min = v[idx..].iter().copied().fold(f64::INFINITY, f64::min);
        FaultTransientOutcome {
            name: scenario.name.clone(),
            fail_at: scenario.fail_at,
            v_before: Volts::new(v_before),
            v_min: Volts::new(v_min),
            droop: Volts::new(v_before - v_min),
            v_end: Volts::new(*v.last().unwrap_or(&f64::NAN)),
            collapsed: v_min < 0.5 * self.setpoint.value(),
        }
    }
}

/// Settings for the electro-thermal cascade fixed point.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct CascadeSettings {
    /// Iteration cap.
    pub max_iterations: usize,
    /// Convergence threshold on the peak-temperature change (kelvin).
    pub tolerance_k: f64,
    /// Device technology of the regulator switches.
    pub technology: DeviceTechnology,
    /// Fraction of a periphery module's heat that couples into the die
    /// mesh.
    pub periphery_coupling: f64,
    /// Peak temperature past which the loop is declared
    /// [`FixedPointTermination::Diverged`] — thermal runaway, not a
    /// fixed point.
    pub runaway_temperature_c: f64,
}

impl Default for CascadeSettings {
    fn default() -> Self {
        Self {
            max_iterations: 16,
            tolerance_k: 0.05,
            technology: DeviceTechnology::GaN,
            periphery_coupling: 0.3,
            runaway_temperature_c: 400.0,
        }
    }
}

/// One scenario's electro-thermal cascade result.
#[derive(Clone, PartialEq, Debug, serde::Serialize, serde::Deserialize)]
pub struct CascadeOutcome {
    /// Scenario name.
    pub name: String,
    /// How the fixed-point loop ended.
    pub termination: FixedPointTermination,
    /// Iterations performed.
    pub iterations: usize,
    /// Worst IR drop below nominal at the final iterate.
    pub worst_drop: Volts,
    /// Peak die temperature at the final iterate.
    pub peak_temperature: Celsius,
    /// Hottest regulator junction.
    pub worst_module_temperature: Celsius,
    /// Modules whose loss derated above nominal (heated past the knee).
    pub derated_modules: usize,
    /// Surviving modules driven past the topology rating.
    pub overloaded_modules: usize,
    /// Whether every module junction stays within its rating.
    pub within_rating: bool,
}

/// Per-architecture rollup of the cascade outcomes: does the
/// architecture survive its contingency set?
#[derive(Clone, PartialEq, Debug, serde::Serialize, serde::Deserialize)]
pub struct SurvivalEnvelope {
    /// Judged architecture.
    pub architecture: Architecture,
    /// Droop budget the final iterates are judged against (5% of the
    /// POL setpoint).
    pub droop_budget: Volts,
    /// Per-scenario outcomes, in scenario order.
    pub outcomes: Vec<CascadeOutcome>,
    /// Scenarios whose cascade converged.
    pub converged: usize,
    /// Scenarios stopped at the iteration cap.
    pub capped: usize,
    /// Scenarios that diverged (thermal runaway).
    pub diverged: usize,
    /// Largest final-iterate drop over all scenarios.
    pub worst_drop: Volts,
    /// Name of the scenario producing it.
    pub worst_drop_scenario: String,
    /// Largest peak temperature over all scenarios.
    pub peak_temperature: Celsius,
    /// Name of the scenario producing it.
    pub peak_temperature_scenario: String,
    /// Scenarios with at least one overloaded surviving module.
    pub overloaded_scenarios: usize,
    /// The verdict: every cascade converged, every junction within
    /// rating, and every final drop within the droop budget.
    pub survives: bool,
}

impl SurvivalEnvelope {
    fn summarize(
        architecture: Architecture,
        droop_budget: Volts,
        outcomes: Vec<CascadeOutcome>,
    ) -> Self {
        let mut converged = 0usize;
        let mut capped = 0usize;
        let mut diverged = 0usize;
        let mut worst_drop = Volts::new(0.0);
        let mut worst_drop_scenario = String::new();
        let mut peak_temperature = Celsius::new(f64::NEG_INFINITY);
        let mut peak_temperature_scenario = String::new();
        let mut overloaded = 0usize;
        let mut survives = true;
        for o in &outcomes {
            match o.termination {
                FixedPointTermination::Converged { .. } => converged += 1,
                FixedPointTermination::IterationCap { .. } => capped += 1,
                FixedPointTermination::Diverged { .. } => diverged += 1,
            }
            if o.worst_drop.value() > worst_drop.value() {
                worst_drop = o.worst_drop;
                worst_drop_scenario = o.name.clone();
            }
            if o.peak_temperature.value() > peak_temperature.value() {
                peak_temperature = o.peak_temperature;
                peak_temperature_scenario = o.name.clone();
            }
            overloaded += usize::from(o.overloaded_modules > 0);
            survives &= o.termination.converged()
                && o.within_rating
                && o.worst_drop.value() <= droop_budget.value();
        }
        survives &= !outcomes.is_empty();
        Self {
            architecture,
            droop_budget,
            outcomes,
            converged,
            capped,
            diverged,
            worst_drop,
            worst_drop_scenario,
            peak_temperature,
            peak_temperature_scenario,
            overloaded_scenarios: overloaded,
            survives,
        }
    }
}

/// The electro-thermal cascade engine: faulted DC solutions coupled
/// through the thermal mesh to a fixed point, per scenario.
///
/// The ladder: a fault kills a module → its neighbours pick up the
/// current → their conversion loss (deposited at their placement
/// sites) heats the die → the derating model raises their loss *and*
/// their droop resistance, shedding load onto the next ring — iterated
/// until the peak temperature settles, the iteration cap cuts it off,
/// or the loop runs away. The per-scenario verdict is the same typed
/// [`FixedPointTermination`] the electro-thermal analysis reports.
///
/// Grid, plan, thermal mesh, and logic heat map are built **once**;
/// every scenario is value-only restamps plus warm solves, bitwise
/// identical for every thread count.
#[derive(Clone, Debug)]
pub struct CascadeLadder {
    architecture: Architecture,
    spec: SystemSpec,
    calib: Calibration,
    droop: Ohms,
    rating: Option<Amps>,
    converter: Converter,
    solver: SharingSolver,
    sites: Vec<(usize, usize)>,
    mesh: ThermalMesh,
    derating: DeratingModel,
    logic: Vec<Vec<Watts>>,
    coupling: f64,
    settings: CascadeSettings,
}

impl CascadeLadder {
    /// Builds the engine for a vertical architecture (A1, A2, or
    /// A3@bus; the reference architecture has no regulator bank on the
    /// die mesh).
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidSpec`] for the reference architecture;
    /// otherwise any grid, thermal-mesh, or nominal-solve failure.
    pub fn new(
        architecture: Architecture,
        topology: VrTopologyKind,
        spec: &SystemSpec,
        calib: &Calibration,
        settings: &CascadeSettings,
    ) -> Result<Self, CoreError> {
        let (placement, n_vrs) = session_placement(architecture, &AnalysisOptions::default());
        let (converter, rating) = match architecture {
            Architecture::Reference => {
                return Err(CoreError::InvalidSpec {
                    what: "cascade analysis requires a vertical architecture",
                    value: 0.0,
                })
            }
            Architecture::InterposerPeriphery | Architecture::InterposerEmbedded => (
                crate::single_stage_converter(topology),
                TopologyCharacteristics::table_ii(topology).max_load,
            ),
            Architecture::TwoStage { bus } => {
                let conv = second_stage_converter(bus)?;
                let rating = conv.max_load();
                (conv, rating)
            }
        };
        let (sites, droop) = placement_sites(placement, calib, n_vrs);
        let mut solver = SharingSolver::new(spec, calib, &sites, droop)?;
        solver.solve()?;
        solver.anchor_last();

        let n = calib.grid_nodes_per_side.max(4);
        let mesh = ThermalMesh::silicon_die_default(n, n).map_err(CoreError::Thermal)?;
        let derating = DeratingModel::for_technology(settings.technology);
        let logic = calib
            .power_map
            .thermally_averaged()
            .node_currents(n, n, spec.pol_current())
            .into_iter()
            .map(|row| {
                row.into_iter()
                    .map(|i| i * spec.pol_voltage())
                    .collect::<Vec<Watts>>()
            })
            .collect::<Vec<_>>();
        let coupling = match placement {
            VrPlacement::Periphery => settings.periphery_coupling.clamp(0.0, 1.0),
            VrPlacement::BelowDie => 1.0,
        };
        Ok(Self {
            architecture,
            spec: *spec,
            calib: *calib,
            droop,
            rating: Some(rating),
            converter,
            solver,
            sites,
            mesh,
            derating,
            logic,
            coupling,
            settings: *settings,
        })
    }

    /// Number of regulator sites (the N of N-1).
    #[must_use]
    pub fn vr_count(&self) -> usize {
        self.solver.vr_count()
    }

    /// Mesh nodes per side, for sizing region faults.
    #[must_use]
    pub fn grid_side(&self) -> usize {
        self.solver.grid_side()
    }

    /// Evaluates every scenario's cascade on `threads` workers
    /// (0 = auto); rolls the outcomes into the architecture's survival
    /// envelope. The result is bitwise-independent of `threads`.
    ///
    /// # Errors
    ///
    /// The first scenario evaluation failure, in scenario order.
    pub fn run(
        &self,
        scenarios: &[FaultScenario],
        threads: usize,
    ) -> Result<SurvivalEnvelope, CoreError> {
        let _span = vpd_obs::span("faultdyn.cascade_ns");
        let results = par_map_with(threads, scenarios, &self.solver, |solver, scenario| {
            self.evaluate(solver, scenario)
        });
        let mut outcomes = Vec::with_capacity(results.len());
        for r in results {
            outcomes.push(r?);
        }
        vpd_obs::incr("faultdyn.cascade_runs");
        vpd_obs::add("faultdyn.cascade_scenarios", outcomes.len() as u64);
        let budget = Volts::new(self.spec.pol_voltage().value() * 0.05);
        Ok(SurvivalEnvelope::summarize(
            self.architecture,
            budget,
            outcomes,
        ))
    }

    /// One scenario's cascade: restamp to nominal, inject the faults,
    /// then iterate DC ⇄ thermal to a fixed point.
    fn evaluate(
        &self,
        solver: &mut SharingSolver,
        scenario: &FaultScenario,
    ) -> Result<CascadeOutcome, CoreError> {
        let n_vrs = solver.vr_count();
        let n = self.calib.grid_nodes_per_side.max(4);
        solver.restamp(&self.spec, &self.calib, self.droop)?;
        for fault in &scenario.faults {
            apply_fault(solver, fault)?;
        }
        let opened = scenario.opened(n_vrs);
        // The faulted droops are the baseline the thermal shed scales:
        // droop_k(T) = droop_k(fault) · loss_factor(T_k).
        let base_droop: Vec<Ohms> = (0..n_vrs)
            .map(|k| {
                solver.vr_droop(k).ok_or(CoreError::InvalidSpec {
                    what: "regulator index",
                    value: k as f64,
                })
            })
            .collect::<Result<_, _>>()?;
        let mut report = solver.solve()?;
        let mut factors = vec![1.0_f64; n_vrs];
        let mut last_peak = f64::NEG_INFINITY;
        let mut residual_k = f64::INFINITY;
        let mut iterations = 0usize;
        let mut termination = None;
        let mut peak = Celsius::new(0.0);
        let mut worst_module = Celsius::new(0.0);
        while iterations < self.settings.max_iterations {
            iterations += 1;
            // Heat map: logic + surviving modules' derated conversion
            // loss over their 3×3 footprint patches. A dead module's
            // output stage dissipates nothing.
            let mut heat = self.logic.clone();
            for (k, &(x, y)) in self.sites.iter().enumerate() {
                if opened[k] {
                    continue;
                }
                let loss = self.converter.curve().loss_unchecked(report.per_vr()[k]);
                let total = loss * factors[k] * self.coupling;
                let mut patch = Vec::new();
                for dy in -1i64..=1 {
                    for dx in -1i64..=1 {
                        let px = x as i64 + dx;
                        let py = y as i64 + dy;
                        if (0..n as i64).contains(&px) && (0..n as i64).contains(&py) {
                            patch.push((px as usize, py as usize));
                        }
                    }
                }
                let share = total / patch.len() as f64;
                for (px, py) in patch {
                    heat[py][px] += share;
                }
            }
            let map = self.mesh.solve(&heat).map_err(CoreError::Thermal)?;
            peak = map.max();
            worst_module = self
                .sites
                .iter()
                .map(|&(x, y)| map.at(x, y))
                .fold(Celsius::new(f64::NEG_INFINITY), Celsius::max);
            for (factor, &(x, y)) in factors.iter_mut().zip(&self.sites) {
                *factor = self.derating.loss_factor(map.at(x, y));
            }
            if !peak.value().is_finite() || peak.value() > self.settings.runaway_temperature_c {
                termination = Some(FixedPointTermination::Diverged { residual_k });
                break;
            }
            residual_k = (peak.value() - last_peak).abs();
            if residual_k < self.settings.tolerance_k {
                termination = Some(FixedPointTermination::Converged { residual_k });
                break;
            }
            last_peak = peak.value();
            // Electrical feedback: a heated module's output stage
            // derates, raising its droop resistance — it sheds load to
            // cooler neighbours, moving the heat with it.
            for k in 0..n_vrs {
                if opened[k] {
                    continue;
                }
                solver.set_vr_droop(k, base_droop[k] * factors[k])?;
            }
            report = solver.solve()?;
        }
        let termination = termination.unwrap_or(FixedPointTermination::IterationCap { residual_k });

        let mut overloaded = 0usize;
        for (k, amps) in report.per_vr().iter().enumerate() {
            if opened[k] {
                continue;
            }
            if self.rating.is_some_and(|r| amps.value() > r.value()) {
                overloaded += 1;
            }
        }
        Ok(CascadeOutcome {
            name: scenario.name.clone(),
            termination,
            iterations,
            worst_drop: report.worst_drop(),
            peak_temperature: peak,
            worst_module_temperature: worst_module,
            derated_modules: factors.iter().filter(|f| **f > 1.0 + 1e-9).count(),
            overloaded_modules: overloaded,
            within_rating: self.derating.within_rating(worst_module),
        })
    }
}

/// Convenience: the architecture's survival envelope over its full N-1
/// contingency set.
///
/// # Errors
///
/// Propagates engine-construction and evaluation failures.
pub fn survival_envelope(
    architecture: Architecture,
    topology: VrTopologyKind,
    spec: &SystemSpec,
    calib: &Calibration,
    settings: &CascadeSettings,
    threads: usize,
) -> Result<SurvivalEnvelope, CoreError> {
    let ladder = CascadeLadder::new(architecture, topology, spec, calib, settings)?;
    ladder.run(&FaultScenario::n_minus_1(ladder.vr_count()), threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpd_circuit::log_sweep;

    fn env() -> (SystemSpec, Calibration) {
        (SystemSpec::paper_default(), Calibration::paper_default())
    }

    fn freqs() -> Vec<Hertz> {
        log_sweep(Hertz::from_kilohertz(1.0), Hertz::new(1e9), 40)
    }

    #[test]
    fn faulted_model_mapping_is_physical() {
        let (_, calib) = env();
        let model = PdnModel::for_architecture(Architecture::InterposerEmbedded);
        let n = 48;
        let g = calib.grid_nodes_per_side;
        let one_open = faulted_pdn_model(
            &model,
            n,
            g,
            &FaultScenario {
                name: "n-1".into(),
                faults: vec![Fault::VrOpen { index: 0 }],
            },
        )
        .unwrap();
        // 47 survivors of 48: R and L grow by 48/47 exactly.
        let scale = 48.0 / 47.0;
        assert!(
            (one_open.vr_resistance.value() / model.vr_resistance.value() - scale).abs() < 1e-12
        );
        assert!(
            (one_open.vr_inductance.value() / model.vr_inductance.value() - scale).abs() < 1e-12
        );
        // Output caps stay on the rail.
        assert_eq!(one_open.bulk_capacitance, model.bulk_capacitance);

        // Whole-grid region fault ≡ sheet degradation.
        let region = faulted_pdn_model(
            &model,
            n,
            g,
            &FaultScenario {
                name: "region".into(),
                faults: vec![Fault::RegionOpen {
                    x0: 0,
                    y0: 0,
                    x1: g - 1,
                    y1: g - 1,
                    factor: 3.0,
                }],
            },
        )
        .unwrap();
        let sheet = faulted_pdn_model(
            &model,
            n,
            g,
            &FaultScenario {
                name: "sheet".into(),
                faults: vec![Fault::SheetDegradation { factor: 3.0 }],
            },
        )
        .unwrap();
        assert_eq!(region, sheet);
        assert_eq!(
            sheet.distribution_resistance.value(),
            3.0 * model.distribution_resistance.value()
        );

        // Setpoint drift is a DC trim offset: no small-signal change.
        let drift = faulted_pdn_model(
            &model,
            n,
            g,
            &FaultScenario {
                name: "drift".into(),
                faults: vec![Fault::SetpointDrift {
                    index: 3,
                    delta: Volts::from_millivolts(-2.0),
                }],
            },
        )
        .unwrap();
        assert_eq!(drift, model);

        // All modules open: the regulator branch is an open.
        let all = FaultScenario {
            name: "all".into(),
            faults: (0..n).map(|index| Fault::VrOpen { index }).collect(),
        };
        let dead = faulted_pdn_model(&model, n, g, &all).unwrap();
        assert_eq!(dead.vr_resistance, OPEN_RESISTANCE);

        // Invalid inputs are typed errors, not panics.
        for bad in [
            FaultScenario {
                name: "idx".into(),
                faults: vec![Fault::VrOpen { index: n }],
            },
            FaultScenario {
                name: "factor".into(),
                faults: vec![Fault::VrDerated {
                    index: 0,
                    factor: -1.0,
                }],
            },
            FaultScenario {
                name: "rect".into(),
                faults: vec![Fault::RegionOpen {
                    x0: 0,
                    y0: 0,
                    x1: g,
                    y1: g,
                    factor: 2.0,
                }],
            },
        ] {
            assert!(
                matches!(
                    faulted_pdn_model(&model, n, g, &bad),
                    Err(CoreError::InvalidSpec { .. })
                ),
                "{}",
                bad.name
            );
        }
    }

    #[test]
    fn restamped_profile_matches_faulted_netlist_from_scratch_bitwise() {
        let (spec, calib) = env();
        let sweep =
            FaultImpedanceSweep::new(Architecture::InterposerPeriphery, &spec, &calib).unwrap();
        let mut scenarios = FaultScenario::n_minus_1(4);
        scenarios.push(FaultScenario {
            name: "compound".into(),
            faults: vec![
                Fault::VrOpen { index: 7 },
                Fault::VrDerated {
                    index: 9,
                    factor: 4.0,
                },
                Fault::SheetDegradation { factor: 1.7 },
            ],
        });
        for scenario in &scenarios {
            let restamped = sweep.profile(scenario, &freqs()).unwrap();
            let faulted = sweep.faulted_model(scenario).unwrap();
            let scratch = faulted.impedance_profile(&freqs()).unwrap();
            assert_eq!(restamped.points, scratch, "{}", scenario.name);
        }
    }

    #[test]
    fn impedance_sweep_serial_equals_parallel_and_degrades_monotonically() {
        let (spec, calib) = env();
        let sweep =
            FaultImpedanceSweep::new(Architecture::InterposerEmbedded, &spec, &calib).unwrap();
        let mut scenarios = FaultScenario::n_minus_1(6);
        scenarios.extend(FaultScenario::random_k(
            2,
            6,
            0xFD,
            sweep.vr_count(),
            sweep.grid_side(),
        ));
        let serial = sweep.run(&scenarios, &freqs(), 1).unwrap();
        for threads in [2, 5] {
            let parallel = sweep.run(&scenarios, &freqs(), threads).unwrap();
            assert_eq!(serial, parallel, "threads = {threads}");
        }
        // Losing a module raises both the bank's R and L: every N-1
        // peak degrades. (Random scenarios are exempt — added series
        // resistance can *damp* an antiresonant peak.)
        for o in &serial.outcomes[..6] {
            assert!(
                o.peak.value() >= serial.nominal_peak.value() * (1.0 - 1e-12),
                "{}: {} vs nominal {}",
                o.name,
                o.peak,
                serial.nominal_peak
            );
        }
        for o in &serial.outcomes {
            assert_eq!(o.over_target, o.first_violation.is_some());
            assert!((o.excess - (o.peak.value() / serial.target.value() - 1.0)).abs() < 1e-15);
        }
        // A2 holds the target through any single contingency.
        assert_eq!(serial.violating_scenarios, 0);
        assert!(serial.worst_excess() < 0.0);
    }

    #[test]
    fn losing_the_whole_bank_pushes_any_architecture_over_target() {
        let (spec, calib) = env();
        let sweep =
            FaultImpedanceSweep::new(Architecture::InterposerEmbedded, &spec, &calib).unwrap();
        let n = sweep.vr_count();
        let all = FaultScenario {
            name: "bank-dead".into(),
            faults: (0..n).map(|index| Fault::VrOpen { index }).collect(),
        };
        let report = sweep.run(&[all], &freqs(), 1).unwrap();
        assert_eq!(report.violating_scenarios, 1);
        assert!(report.outcomes[0].over_target);
        assert!(report.worst_excess() > 0.0);
    }

    #[test]
    fn transient_sweep_serial_equals_parallel_and_collapse_tracks_fail_time() {
        let (spec, _) = env();
        let model = PdnModel::for_architecture(Architecture::InterposerEmbedded);
        let step = LoadStep::paper_default(&spec);
        let sweep = FaultTransientSweep::new(
            Architecture::InterposerEmbedded,
            &model,
            &step,
            Seconds::from_microseconds(20.0),
            Seconds::from_nanoseconds(40.0),
        )
        .unwrap();
        let scenarios = VrFailureScenario::grid(4, Seconds::from_microseconds(16.0));
        let serial = sweep.run(&scenarios, 1).unwrap();
        for threads in [2, 3] {
            assert_eq!(serial, sweep.run(&scenarios, threads).unwrap());
        }
        // The healthy baseline holds the rail; every failure collapses
        // it before the window ends.
        let nominal = &serial.outcomes[0];
        assert_eq!(nominal.fail_at, None);
        assert!(!nominal.collapsed, "nominal v_min {}", nominal.v_min);
        for o in &serial.outcomes[1..] {
            assert!(o.collapsed, "{}: v_min {}", o.name, o.v_min);
            assert!(o.droop.value() > nominal.droop.value());
        }
        assert_eq!(serial.collapsed_scenarios, serial.outcomes.len() - 1);
        // A later failure leaves less discharge time: the rail ends
        // higher (weakly) as fail_at grows.
        let ends: Vec<f64> = serial.outcomes[1..]
            .iter()
            .map(|o| o.v_end.value())
            .collect();
        assert!(ends.windows(2).all(|w| w[1] >= w[0] - 1e-12), "{ends:?}");
    }

    #[test]
    fn cascade_converges_for_n_minus_1_and_reports_typed_verdicts() {
        let (spec, calib) = env();
        let ladder = CascadeLadder::new(
            Architecture::InterposerPeriphery,
            VrTopologyKind::Dsch,
            &spec,
            &calib,
            &CascadeSettings::default(),
        )
        .unwrap();
        let scenarios: Vec<_> = FaultScenario::n_minus_1(ladder.vr_count())
            .into_iter()
            .take(6)
            .collect();
        let serial = ladder.run(&scenarios, 1).unwrap();
        for threads in [2, 4] {
            assert_eq!(serial, ladder.run(&scenarios, threads).unwrap());
        }
        assert_eq!(serial.outcomes.len(), 6);
        assert_eq!(serial.converged, 6);
        assert_eq!(serial.capped + serial.diverged, 0);
        for o in &serial.outcomes {
            assert!(o.termination.converged());
            assert!(o.iterations >= 2);
            assert!(o.worst_drop.value() > 0.0);
            assert!(o.peak_temperature.value() > 25.0);
            assert!(o.worst_module_temperature.value() <= o.peak_temperature.value() + 1e-9);
            assert!(o.derated_modules > 0, "heating must derate someone");
        }
        assert!(!serial.worst_drop_scenario.is_empty());
        assert!(serial.peak_temperature.value() >= 25.0);
    }

    #[test]
    fn cascade_iteration_cap_is_a_typed_verdict_not_a_hang() {
        let (spec, calib) = env();
        let ladder = CascadeLadder::new(
            Architecture::InterposerEmbedded,
            VrTopologyKind::Dsch,
            &spec,
            &calib,
            &CascadeSettings {
                max_iterations: 2,
                tolerance_k: 0.0,
                ..CascadeSettings::default()
            },
        )
        .unwrap();
        let envelope = ladder
            .run(&FaultScenario::n_minus_1(ladder.vr_count())[..2], 1)
            .unwrap();
        assert_eq!(envelope.capped, 2);
        assert!(!envelope.survives);
        for o in &envelope.outcomes {
            assert_eq!(o.iterations, 2);
            assert!(matches!(
                o.termination,
                FixedPointTermination::IterationCap { .. }
            ));
            assert!(o.termination.residual_k().is_finite());
        }
    }

    #[test]
    fn cascade_runaway_threshold_is_a_divergence_verdict() {
        let (spec, calib) = env();
        let ladder = CascadeLadder::new(
            Architecture::InterposerEmbedded,
            VrTopologyKind::Dsch,
            &spec,
            &calib,
            &CascadeSettings {
                // Any real solve exceeds room temperature: declare
                // everything runaway to pin the verdict plumbing.
                runaway_temperature_c: 25.0,
                ..CascadeSettings::default()
            },
        )
        .unwrap();
        let envelope = ladder
            .run(&FaultScenario::n_minus_1(ladder.vr_count())[..1], 1)
            .unwrap();
        assert_eq!(envelope.diverged, 1);
        assert!(!envelope.survives);
        assert!(matches!(
            envelope.outcomes[0].termination,
            FixedPointTermination::Diverged { .. }
        ));
    }

    #[test]
    fn cascade_rejects_the_reference_architecture() {
        let (spec, calib) = env();
        assert!(matches!(
            CascadeLadder::new(
                Architecture::Reference,
                VrTopologyKind::Dsch,
                &spec,
                &calib,
                &CascadeSettings::default(),
            ),
            Err(CoreError::InvalidSpec { .. })
        ));
    }

    #[test]
    fn empty_scenario_set_never_survives() {
        let env = SurvivalEnvelope::summarize(
            Architecture::InterposerPeriphery,
            Volts::new(0.05),
            Vec::new(),
        );
        assert!(!env.survives);
        assert_eq!(env.converged + env.capped + env.diverged, 0);
    }
}
