//! Electro-thermal co-analysis of the vertical architectures.
//!
//! The DC picture favors putting regulators as close to the load as
//! possible (A2); the thermal picture pushes back: an under-die module
//! dumps its conversion loss directly beneath the compute hotspot,
//! raising its own junction temperature, which raises its conduction
//! loss, which raises the temperature — a feedback loop this module
//! iterates to a fixed point. This is the co-design trade the paper's
//! heterogeneous-integration discussion (\[13\]) points at.

use crate::placement::{below_die_sites, periphery_sites, VrPlacement};
use crate::{analyze, AnalysisOptions, Architecture, Calibration, CoreError, SystemSpec};
use vpd_converters::VrTopologyKind;
use vpd_thermal::{DeratingModel, DeviceTechnology, ThermalMesh};
use vpd_units::{Celsius, Watts};

/// Settings for the electro-thermal fixed-point iteration.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct ElectroThermalSettings {
    /// Iteration cap.
    pub max_iterations: usize,
    /// Convergence threshold on the peak-temperature change (kelvin).
    pub tolerance_k: f64,
    /// Device technology of the regulator switches.
    pub technology: DeviceTechnology,
    /// Fraction of a periphery module's heat that couples into the die
    /// mesh (periphery modules sit beside, not under, the die).
    pub periphery_coupling: f64,
}

impl Default for ElectroThermalSettings {
    fn default() -> Self {
        Self {
            max_iterations: 20,
            tolerance_k: 0.01,
            technology: DeviceTechnology::GaN,
            periphery_coupling: 0.3,
        }
    }
}

/// Result of the coupled analysis.
#[derive(Clone, Debug)]
pub struct ElectroThermalReport {
    /// Iterations performed.
    pub iterations: usize,
    /// Whether the fixed point converged within tolerance.
    pub converged: bool,
    /// Peak die temperature.
    pub peak_temperature: Celsius,
    /// Mean die temperature.
    pub mean_temperature: Celsius,
    /// Hottest regulator junction (site temperature).
    pub worst_module_temperature: Celsius,
    /// Conversion loss before derating.
    pub nominal_conversion_loss: Watts,
    /// Conversion loss at the thermal fixed point.
    pub derated_conversion_loss: Watts,
    /// Whether every module stays within its junction rating.
    pub modules_within_rating: bool,
}

impl ElectroThermalReport {
    /// The thermal penalty: extra conversion loss caused by heating.
    #[must_use]
    pub fn thermal_penalty(&self) -> Watts {
        self.derated_conversion_loss - self.nominal_conversion_loss
    }
}

/// Runs the coupled electro-thermal analysis for a single-stage
/// vertical architecture (A1 or A2).
///
/// The die dissipates the full POL power with the calibrated power map;
/// regulator losses enter the mesh at their placement sites (fully for
/// under-die modules, partially for periphery modules). Each iteration
/// re-derates every module's conduction loss at its local temperature.
///
/// # Errors
///
/// * [`CoreError::InvalidSpec`] when called with the reference or
///   two-stage architecture (no single regulator bank on the die mesh).
/// * Any error from the underlying DC analysis or thermal solve.
pub fn electro_thermal(
    architecture: Architecture,
    topology: VrTopologyKind,
    spec: &SystemSpec,
    calib: &Calibration,
    opts: &AnalysisOptions,
    settings: &ElectroThermalSettings,
) -> Result<ElectroThermalReport, CoreError> {
    let placement = match architecture {
        Architecture::InterposerPeriphery => VrPlacement::Periphery,
        Architecture::InterposerEmbedded => VrPlacement::BelowDie,
        _ => {
            return Err(CoreError::InvalidSpec {
                what: "electro-thermal analysis requires A1 or A2",
                value: 0.0,
            })
        }
    };
    let base = analyze(architecture, topology, spec, calib, opts)?;
    let conv = crate::single_stage_converter(topology);
    let per_vr = base.sharing.per_vr().to_vec();

    let n = calib.grid_nodes_per_side.max(4);
    let mesh = ThermalMesh::silicon_die_default(n, n)?;
    let derating = DeratingModel::for_technology(settings.technology);

    // Die logic heat: the full POL power, distributed by the
    // *time-averaged* power map (heat integrates over workload
    // migration; the sharper electrical map sets module currents).
    let logic = calib
        .power_map
        .thermally_averaged()
        .node_currents(n, n, spec.pol_current())
        .into_iter()
        .map(|row| {
            row.into_iter()
                .map(|i| i * spec.pol_voltage())
                .collect::<Vec<Watts>>()
        })
        .collect::<Vec<_>>();

    let sites = match placement {
        VrPlacement::Periphery => periphery_sites(per_vr.len(), n, n),
        VrPlacement::BelowDie => below_die_sites(per_vr.len(), n, n),
    };
    let coupling = match placement {
        VrPlacement::Periphery => settings.periphery_coupling.clamp(0.0, 1.0),
        VrPlacement::BelowDie => 1.0,
    };

    let nominal_losses: Vec<Watts> = per_vr
        .iter()
        .map(|&i| conv.curve().loss_unchecked(i))
        .collect();
    let nominal_total: Watts = nominal_losses.iter().copied().sum();

    let mut factors = vec![1.0; per_vr.len()];
    let mut last_peak = f64::NEG_INFINITY;
    let mut iterations = 0;
    let mut converged = false;
    let mut peak = Celsius::new(0.0);
    let mut mean = Celsius::new(0.0);
    let mut worst_module = Celsius::new(0.0);

    while iterations < settings.max_iterations {
        iterations += 1;
        // Assemble the heat map: logic + (derated) module losses. A
        // module's footprint (~7 mm² for DSCH) spans a 3×3 cell patch of
        // the 25×25 mesh, so its heat deposits over that patch rather
        // than one cell.
        let mut heat = logic.clone();
        for ((&(x, y), loss), factor) in sites.iter().zip(&nominal_losses).zip(&factors) {
            let total = *loss * *factor * coupling;
            let mut patch = Vec::new();
            for dy in -1i64..=1 {
                for dx in -1i64..=1 {
                    let px = x as i64 + dx;
                    let py = y as i64 + dy;
                    if (0..n as i64).contains(&px) && (0..n as i64).contains(&py) {
                        patch.push((px as usize, py as usize));
                    }
                }
            }
            let share = total / patch.len() as f64;
            for (px, py) in patch {
                heat[py][px] += share;
            }
        }
        let map = mesh.solve(&heat)?;
        peak = map.max();
        mean = map.mean();
        worst_module = sites
            .iter()
            .map(|&(x, y)| map.at(x, y))
            .fold(Celsius::new(f64::NEG_INFINITY), Celsius::max);
        // Update derating factors from the site temperatures.
        for (factor, &(x, y)) in factors.iter_mut().zip(&sites) {
            *factor = derating.loss_factor(map.at(x, y));
        }
        if (peak.value() - last_peak).abs() < settings.tolerance_k {
            converged = true;
            break;
        }
        last_peak = peak.value();
    }

    let derated_total: Watts = nominal_losses
        .iter()
        .zip(&factors)
        .map(|(l, f)| *l * *f)
        .sum();

    Ok(ElectroThermalReport {
        iterations,
        converged,
        peak_temperature: peak,
        mean_temperature: mean,
        worst_module_temperature: worst_module,
        nominal_conversion_loss: nominal_total,
        derated_conversion_loss: derated_total,
        modules_within_rating: derating.within_rating(worst_module),
    })
}

/// Convenience: the A1-versus-A2 thermal comparison at the paper's
/// operating point.
///
/// # Errors
///
/// Propagates any analysis failure.
pub fn thermal_comparison(
    topology: VrTopologyKind,
    spec: &SystemSpec,
    calib: &Calibration,
) -> Result<(ElectroThermalReport, ElectroThermalReport), CoreError> {
    let opts = AnalysisOptions::default();
    let settings = ElectroThermalSettings::default();
    let a1 = electro_thermal(
        Architecture::InterposerPeriphery,
        topology,
        spec,
        calib,
        &opts,
        &settings,
    )?;
    let a2 = electro_thermal(
        Architecture::InterposerEmbedded,
        topology,
        spec,
        calib,
        &opts,
        &settings,
    )?;
    Ok((a1, a2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpd_units::Volts;

    fn env() -> (SystemSpec, Calibration) {
        (SystemSpec::paper_default(), Calibration::paper_default())
    }

    #[test]
    fn iteration_converges() {
        let (spec, calib) = env();
        let report = electro_thermal(
            Architecture::InterposerEmbedded,
            VrTopologyKind::Dsch,
            &spec,
            &calib,
            &AnalysisOptions::default(),
            &ElectroThermalSettings::default(),
        )
        .unwrap();
        assert!(report.converged, "fixed point within 20 iterations");
        assert!(report.iterations >= 2);
        assert!(report.peak_temperature.value() > 25.0);
        assert!(report.thermal_penalty().value() > 0.0);
    }

    #[test]
    fn under_die_modules_run_hotter_than_periphery() {
        // The co-design trade: A2's modules sit under the hotspot.
        let (spec, calib) = env();
        let (a1, a2) = thermal_comparison(VrTopologyKind::Dsch, &spec, &calib).unwrap();
        assert!(
            a2.worst_module_temperature.value() > a1.worst_module_temperature.value(),
            "A2 module {} vs A1 module {}",
            a2.worst_module_temperature,
            a1.worst_module_temperature
        );
        // And its thermal penalty is correspondingly larger.
        assert!(a2.thermal_penalty().value() > a1.thermal_penalty().value());
    }

    #[test]
    fn gan_pays_smaller_penalty_than_si() {
        let (spec, calib) = env();
        let run = |tech| {
            electro_thermal(
                Architecture::InterposerEmbedded,
                VrTopologyKind::Dsch,
                &spec,
                &calib,
                &AnalysisOptions::default(),
                &ElectroThermalSettings {
                    technology: tech,
                    ..ElectroThermalSettings::default()
                },
            )
            .unwrap()
        };
        let si = run(DeviceTechnology::Si);
        let gan = run(DeviceTechnology::GaN);
        assert!(si.thermal_penalty().value() > gan.thermal_penalty().value());
    }

    #[test]
    fn rejects_reference_architecture() {
        let (spec, calib) = env();
        let err = electro_thermal(
            Architecture::Reference,
            VrTopologyKind::Dsch,
            &spec,
            &calib,
            &AnalysisOptions::default(),
            &ElectroThermalSettings::default(),
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::InvalidSpec { .. }));
        let err2 = electro_thermal(
            Architecture::TwoStage {
                bus: Volts::new(12.0),
            },
            VrTopologyKind::Dsch,
            &spec,
            &calib,
            &AnalysisOptions::default(),
            &ElectroThermalSettings::default(),
        )
        .unwrap_err();
        assert!(matches!(err2, CoreError::InvalidSpec { .. }));
    }

    #[test]
    fn temperatures_in_plausible_band() {
        let (spec, calib) = env();
        let (a1, a2) = thermal_comparison(VrTopologyKind::Dsch, &spec, &calib).unwrap();
        for (name, r) in [("A1", &a1), ("A2", &a2)] {
            let peak = r.peak_temperature.value();
            assert!(
                (45.0..150.0).contains(&peak),
                "{name} peak {peak:.0} °C implausible"
            );
            assert!(r.mean_temperature.value() < peak);
        }
    }
}
