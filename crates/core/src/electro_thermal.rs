//! Electro-thermal co-analysis of the vertical architectures.
//!
//! The DC picture favors putting regulators as close to the load as
//! possible (A2); the thermal picture pushes back: an under-die module
//! dumps its conversion loss directly beneath the compute hotspot,
//! raising its own junction temperature, which raises its conduction
//! loss, which raises the temperature — a feedback loop this module
//! iterates to a fixed point. This is the co-design trade the paper's
//! heterogeneous-integration discussion (\[13\]) points at.

use crate::placement::{below_die_sites, periphery_sites, VrPlacement};
use crate::{analyze, AnalysisOptions, Architecture, Calibration, CoreError, SystemSpec};
use vpd_converters::VrTopologyKind;
use vpd_thermal::{DeratingModel, DeviceTechnology, ThermalMesh};
use vpd_units::{Celsius, Watts};

/// Settings for the electro-thermal fixed-point iteration.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct ElectroThermalSettings {
    /// Iteration cap.
    pub max_iterations: usize,
    /// Convergence threshold on the peak-temperature change (kelvin).
    pub tolerance_k: f64,
    /// Device technology of the regulator switches.
    pub technology: DeviceTechnology,
    /// Fraction of a periphery module's heat that couples into the die
    /// mesh (periphery modules sit beside, not under, the die).
    pub periphery_coupling: f64,
}

impl Default for ElectroThermalSettings {
    fn default() -> Self {
        Self {
            max_iterations: 20,
            tolerance_k: 0.01,
            technology: DeviceTechnology::GaN,
            periphery_coupling: 0.3,
        }
    }
}

/// How a fixed-point iteration ended. `Converged` is the only verdict
/// under which the reported state is an actual fixed point; the other
/// two return the last iterate together with how far it still moved,
/// so callers can distinguish "almost there" from "meaningless".
#[derive(Clone, Copy, PartialEq, Debug, serde::Serialize, serde::Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum FixedPointTermination {
    /// The iterate's change fell below tolerance.
    Converged {
        /// Final iterate change (kelvin for thermal loops).
        residual_k: f64,
    },
    /// The iteration cap was reached with the residual still above
    /// tolerance — the loop was cut off, not settled.
    IterationCap {
        /// Residual when the cap was reached.
        residual_k: f64,
    },
    /// The iterate went non-finite — feedback ran away and the state
    /// is not usable.
    Diverged {
        /// Last residual observed before the blow-up.
        residual_k: f64,
    },
}

impl FixedPointTermination {
    /// True only for [`FixedPointTermination::Converged`].
    #[must_use]
    pub fn converged(&self) -> bool {
        matches!(self, Self::Converged { .. })
    }

    /// The final residual, whatever the verdict.
    #[must_use]
    pub fn residual_k(&self) -> f64 {
        match *self {
            Self::Converged { residual_k }
            | Self::IterationCap { residual_k }
            | Self::Diverged { residual_k } => residual_k,
        }
    }
}

impl std::fmt::Display for FixedPointTermination {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Converged { residual_k } => {
                write!(f, "converged (residual {residual_k:.3e} K)")
            }
            Self::IterationCap { residual_k } => {
                write!(f, "iteration cap hit (residual {residual_k:.3e} K)")
            }
            Self::Diverged { residual_k } => {
                write!(f, "DIVERGED (last residual {residual_k:.3e} K)")
            }
        }
    }
}

/// Result of the coupled analysis.
#[derive(Clone, Debug)]
pub struct ElectroThermalReport {
    /// Iterations performed.
    pub iterations: usize,
    /// Whether the fixed point converged within tolerance.
    pub converged: bool,
    /// Typed verdict: how the fixed-point loop ended and the final
    /// residual. `converged` mirrors `termination.converged()`.
    pub termination: FixedPointTermination,
    /// Peak die temperature.
    pub peak_temperature: Celsius,
    /// Mean die temperature.
    pub mean_temperature: Celsius,
    /// Hottest regulator junction (site temperature).
    pub worst_module_temperature: Celsius,
    /// Conversion loss before derating.
    pub nominal_conversion_loss: Watts,
    /// Conversion loss at the thermal fixed point.
    pub derated_conversion_loss: Watts,
    /// Whether every module stays within its junction rating.
    pub modules_within_rating: bool,
}

impl ElectroThermalReport {
    /// The thermal penalty: extra conversion loss caused by heating.
    #[must_use]
    pub fn thermal_penalty(&self) -> Watts {
        self.derated_conversion_loss - self.nominal_conversion_loss
    }
}

/// Runs the coupled electro-thermal analysis for a single-stage
/// vertical architecture (A1 or A2).
///
/// The die dissipates the full POL power with the calibrated power map;
/// regulator losses enter the mesh at their placement sites (fully for
/// under-die modules, partially for periphery modules). Each iteration
/// re-derates every module's conduction loss at its local temperature.
///
/// # Errors
///
/// * [`CoreError::InvalidSpec`] when called with the reference or
///   two-stage architecture (no single regulator bank on the die mesh).
/// * Any error from the underlying DC analysis or thermal solve.
pub fn electro_thermal(
    architecture: Architecture,
    topology: VrTopologyKind,
    spec: &SystemSpec,
    calib: &Calibration,
    opts: &AnalysisOptions,
    settings: &ElectroThermalSettings,
) -> Result<ElectroThermalReport, CoreError> {
    let placement = match architecture {
        Architecture::InterposerPeriphery => VrPlacement::Periphery,
        Architecture::InterposerEmbedded => VrPlacement::BelowDie,
        _ => {
            return Err(CoreError::InvalidSpec {
                what: "electro-thermal analysis requires A1 or A2",
                value: 0.0,
            })
        }
    };
    let base = analyze(architecture, topology, spec, calib, opts)?;
    let conv = crate::single_stage_converter(topology);
    let per_vr = base.sharing.per_vr().to_vec();

    let n = calib.grid_nodes_per_side.max(4);
    let mesh = ThermalMesh::silicon_die_default(n, n)?;
    let derating = DeratingModel::for_technology(settings.technology);

    // Die logic heat: the full POL power, distributed by the
    // *time-averaged* power map (heat integrates over workload
    // migration; the sharper electrical map sets module currents).
    let logic = calib
        .power_map
        .thermally_averaged()
        .node_currents(n, n, spec.pol_current())
        .into_iter()
        .map(|row| {
            row.into_iter()
                .map(|i| i * spec.pol_voltage())
                .collect::<Vec<Watts>>()
        })
        .collect::<Vec<_>>();

    let sites = match placement {
        VrPlacement::Periphery => periphery_sites(per_vr.len(), n, n),
        VrPlacement::BelowDie => below_die_sites(per_vr.len(), n, n),
    };
    let coupling = match placement {
        VrPlacement::Periphery => settings.periphery_coupling.clamp(0.0, 1.0),
        VrPlacement::BelowDie => 1.0,
    };

    let nominal_losses: Vec<Watts> = per_vr
        .iter()
        .map(|&i| conv.curve().loss_unchecked(i))
        .collect();
    let nominal_total: Watts = nominal_losses.iter().copied().sum();

    let mut factors = vec![1.0; per_vr.len()];
    let mut last_peak = f64::NEG_INFINITY;
    let mut iterations = 0;
    let mut residual_k = f64::INFINITY;
    let mut termination = None;
    let mut peak = Celsius::new(0.0);
    let mut mean = Celsius::new(0.0);
    let mut worst_module = Celsius::new(0.0);

    while iterations < settings.max_iterations {
        iterations += 1;
        // Assemble the heat map: logic + (derated) module losses. A
        // module's footprint (~7 mm² for DSCH) spans a 3×3 cell patch of
        // the 25×25 mesh, so its heat deposits over that patch rather
        // than one cell.
        let mut heat = logic.clone();
        for ((&(x, y), loss), factor) in sites.iter().zip(&nominal_losses).zip(&factors) {
            let total = *loss * *factor * coupling;
            let mut patch = Vec::new();
            for dy in -1i64..=1 {
                for dx in -1i64..=1 {
                    let px = x as i64 + dx;
                    let py = y as i64 + dy;
                    if (0..n as i64).contains(&px) && (0..n as i64).contains(&py) {
                        patch.push((px as usize, py as usize));
                    }
                }
            }
            let share = total / patch.len() as f64;
            for (px, py) in patch {
                heat[py][px] += share;
            }
        }
        let map = mesh.solve(&heat)?;
        peak = map.max();
        mean = map.mean();
        worst_module = sites
            .iter()
            .map(|&(x, y)| map.at(x, y))
            .fold(Celsius::new(f64::NEG_INFINITY), Celsius::max);
        // Update derating factors from the site temperatures.
        for (factor, &(x, y)) in factors.iter_mut().zip(&sites) {
            *factor = derating.loss_factor(map.at(x, y));
        }
        if !peak.value().is_finite() {
            termination = Some(FixedPointTermination::Diverged { residual_k });
            break;
        }
        residual_k = (peak.value() - last_peak).abs();
        if residual_k < settings.tolerance_k {
            termination = Some(FixedPointTermination::Converged { residual_k });
            break;
        }
        last_peak = peak.value();
    }
    // Falling off the loop means the cap cut the iteration short: the
    // report carries the last iterate, flagged as such rather than
    // silently presented as a fixed point.
    let termination = termination.unwrap_or(FixedPointTermination::IterationCap { residual_k });

    let derated_total: Watts = nominal_losses
        .iter()
        .zip(&factors)
        .map(|(l, f)| *l * *f)
        .sum();

    Ok(ElectroThermalReport {
        iterations,
        converged: termination.converged(),
        termination,
        peak_temperature: peak,
        mean_temperature: mean,
        worst_module_temperature: worst_module,
        nominal_conversion_loss: nominal_total,
        derated_conversion_loss: derated_total,
        modules_within_rating: derating.within_rating(worst_module),
    })
}

/// Convenience: the A1-versus-A2 thermal comparison at the paper's
/// operating point.
///
/// # Errors
///
/// Propagates any analysis failure.
pub fn thermal_comparison(
    topology: VrTopologyKind,
    spec: &SystemSpec,
    calib: &Calibration,
) -> Result<(ElectroThermalReport, ElectroThermalReport), CoreError> {
    let opts = AnalysisOptions::default();
    let settings = ElectroThermalSettings::default();
    let a1 = electro_thermal(
        Architecture::InterposerPeriphery,
        topology,
        spec,
        calib,
        &opts,
        &settings,
    )?;
    let a2 = electro_thermal(
        Architecture::InterposerEmbedded,
        topology,
        spec,
        calib,
        &opts,
        &settings,
    )?;
    Ok((a1, a2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpd_units::Volts;

    fn env() -> (SystemSpec, Calibration) {
        (SystemSpec::paper_default(), Calibration::paper_default())
    }

    #[test]
    fn iteration_converges() {
        let (spec, calib) = env();
        let report = electro_thermal(
            Architecture::InterposerEmbedded,
            VrTopologyKind::Dsch,
            &spec,
            &calib,
            &AnalysisOptions::default(),
            &ElectroThermalSettings::default(),
        )
        .unwrap();
        assert!(report.converged, "fixed point within 20 iterations");
        assert!(report.iterations >= 2);
        assert!(report.peak_temperature.value() > 25.0);
        assert!(report.thermal_penalty().value() > 0.0);
    }

    #[test]
    fn iteration_cap_is_surfaced_as_a_typed_non_convergence() {
        // An unreachable tolerance forces the loop to its cap: the
        // report must say so explicitly instead of spinning forever or
        // quietly claiming convergence.
        let (spec, calib) = env();
        let report = electro_thermal(
            Architecture::InterposerEmbedded,
            VrTopologyKind::Dsch,
            &spec,
            &calib,
            &AnalysisOptions::default(),
            &ElectroThermalSettings {
                max_iterations: 2,
                tolerance_k: 0.0,
                ..ElectroThermalSettings::default()
            },
        )
        .unwrap();
        assert_eq!(report.iterations, 2, "loop stops at the cap");
        assert!(!report.converged);
        assert!(
            matches!(
                report.termination,
                FixedPointTermination::IterationCap { .. }
            ),
            "got {:?}",
            report.termination
        );
        let residual = report.termination.residual_k();
        assert!(residual.is_finite() && residual >= 0.0);
        assert!(!report.termination.converged());
        assert!(report.termination.to_string().contains("iteration cap"));
        // The state is still the last iterate — physically plausible.
        assert!(report.peak_temperature.value() > 25.0);

        // And the healthy path reports Converged with the same residual
        // semantics.
        let ok = electro_thermal(
            Architecture::InterposerEmbedded,
            VrTopologyKind::Dsch,
            &spec,
            &calib,
            &AnalysisOptions::default(),
            &ElectroThermalSettings::default(),
        )
        .unwrap();
        assert!(ok.converged);
        assert!(matches!(
            ok.termination,
            FixedPointTermination::Converged { .. }
        ));
        assert!(ok.termination.residual_k() < ElectroThermalSettings::default().tolerance_k);
    }

    #[test]
    fn under_die_modules_run_hotter_than_periphery() {
        // The co-design trade: A2's modules sit under the hotspot.
        let (spec, calib) = env();
        let (a1, a2) = thermal_comparison(VrTopologyKind::Dsch, &spec, &calib).unwrap();
        assert!(
            a2.worst_module_temperature.value() > a1.worst_module_temperature.value(),
            "A2 module {} vs A1 module {}",
            a2.worst_module_temperature,
            a1.worst_module_temperature
        );
        // And its thermal penalty is correspondingly larger.
        assert!(a2.thermal_penalty().value() > a1.thermal_penalty().value());
    }

    #[test]
    fn gan_pays_smaller_penalty_than_si() {
        let (spec, calib) = env();
        let run = |tech| {
            electro_thermal(
                Architecture::InterposerEmbedded,
                VrTopologyKind::Dsch,
                &spec,
                &calib,
                &AnalysisOptions::default(),
                &ElectroThermalSettings {
                    technology: tech,
                    ..ElectroThermalSettings::default()
                },
            )
            .unwrap()
        };
        let si = run(DeviceTechnology::Si);
        let gan = run(DeviceTechnology::GaN);
        assert!(si.thermal_penalty().value() > gan.thermal_penalty().value());
    }

    #[test]
    fn rejects_reference_architecture() {
        let (spec, calib) = env();
        let err = electro_thermal(
            Architecture::Reference,
            VrTopologyKind::Dsch,
            &spec,
            &calib,
            &AnalysisOptions::default(),
            &ElectroThermalSettings::default(),
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::InvalidSpec { .. }));
        let err2 = electro_thermal(
            Architecture::TwoStage {
                bus: Volts::new(12.0),
            },
            VrTopologyKind::Dsch,
            &spec,
            &calib,
            &AnalysisOptions::default(),
            &ElectroThermalSettings::default(),
        )
        .unwrap_err();
        assert!(matches!(err2, CoreError::InvalidSpec { .. }));
    }

    #[test]
    fn temperatures_in_plausible_band() {
        let (spec, calib) = env();
        let (a1, a2) = thermal_comparison(VrTopologyKind::Dsch, &spec, &calib).unwrap();
        for (name, r) in [("A1", &a1), ("A2", &a2)] {
            let peak = r.peak_temperature.value();
            assert!(
                (45.0..150.0).contains(&peak),
                "{name} peak {peak:.0} °C implausible"
            );
            assert!(r.mean_temperature.value() < peak);
        }
    }
}
