//! Load-step droop analysis: the time-domain complement of the
//! impedance profile.
//!
//! A compute kernel launching on the die is a current step; the supply
//! dips by roughly `ΔI · |Z|` at whatever frequency the step excites.
//! This module drives the per-architecture [`PdnModel`] with an actual
//! step through the backward-Euler transient engine and measures the
//! worst excursion — validating the frequency-domain target-impedance
//! story in the time domain.

use crate::{CoreError, PdnModel, SystemSpec};
use vpd_circuit::{ElementId, NodeId, TransientPlan, TransientResult, TransientSettings};
use vpd_units::{Amps, Ohms, Seconds, Volts};

/// A load-step stimulus.
#[derive(Clone, Copy, PartialEq, Debug, serde::Serialize, serde::Deserialize)]
pub struct LoadStep {
    /// Quiescent load before the step.
    pub base: Amps,
    /// Load after the step.
    pub after: Amps,
    /// When the step fires.
    pub at: Seconds,
}

impl LoadStep {
    /// The paper-scale stimulus: 25% → 100% of the 1 kA POL current.
    #[must_use]
    pub fn paper_default(spec: &SystemSpec) -> Self {
        let i = spec.pol_current();
        Self {
            base: i * 0.25,
            after: i,
            at: Seconds::from_microseconds(5.0),
        }
    }

    /// The step magnitude `ΔI`.
    #[must_use]
    pub fn delta(&self) -> Amps {
        self.after - self.base
    }
}

/// Result of a droop simulation.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct DroopReport {
    /// Supply voltage just before the step.
    pub v_before: Volts,
    /// Minimum supply voltage after the step.
    pub v_min: Volts,
    /// Worst excursion `v_before − v_min`.
    pub droop: Volts,
    /// The naive frequency-domain bound `ΔI · |Z|_peak`.
    pub impedance_bound: Volts,
}

/// A compiled, reusable droop scenario: one architecture's PDN ladder
/// plus a step current source, lowered once into a [`TransientPlan`].
///
/// The scenario owns the plan, so repeated runs — swept step
/// parameters via [`DroopScenario::set_step`], or re-runs of the same
/// stimulus — re-factor zero times; [`simulate_droop`] is now a thin
/// compile-and-run wrapper over it. The incremental API
/// ([`DroopScenario::start`] / [`DroopScenario::advance`]) exposes the
/// same run chunk-by-chunk for streaming consumers, with the exact
/// waveform bits of a one-shot run.
#[derive(Clone, Debug)]
pub struct DroopScenario {
    plan: TransientPlan,
    die: NodeId,
    step_el: ElementId,
    step: LoadStep,
    peak_z: Ohms,
}

impl DroopScenario {
    /// Compiles `model` plus the `step` stimulus into a reusable plan.
    ///
    /// # Errors
    ///
    /// Propagates netlist-construction, settings, and impedance-model
    /// failures.
    pub fn new(
        model: &PdnModel,
        step: &LoadStep,
        sim_time: Seconds,
        dt: Seconds,
    ) -> Result<Self, CoreError> {
        let (mut net, die) = model.netlist()?;
        let step_el = net
            .step_current_source(die, net.ground(), step.base, step.after, step.at)
            .map_err(CoreError::Circuit)?;
        let settings = TransientSettings::new(sim_time, dt).map_err(CoreError::Circuit)?;
        let plan = TransientPlan::compile(&net, &settings).map_err(CoreError::Circuit)?;
        let peak_z = model.peak_impedance()?;
        Ok(Self {
            plan,
            die,
            step_el,
            step: *step,
            peak_z,
        })
    }

    /// Repoints the step stimulus (RHS-only, the factorization
    /// survives). Takes effect on the next run.
    ///
    /// # Errors
    ///
    /// Propagates [`TransientPlan::set_load_step`] validation failures.
    pub fn set_step(&mut self, step: &LoadStep) -> Result<(), CoreError> {
        self.plan
            .set_load_step(self.step_el, step.base, step.after, step.at)
            .map_err(CoreError::Circuit)?;
        self.step = *step;
        Ok(())
    }

    /// The die (load) node whose voltage the report measures.
    #[must_use]
    pub fn die(&self) -> NodeId {
        self.die
    }

    /// The current step stimulus.
    #[must_use]
    pub fn step(&self) -> LoadStep {
        self.step
    }

    /// Samples one full run records (`steps + 1`, including `t = 0`).
    #[must_use]
    pub fn total_samples(&self) -> usize {
        self.plan.steps() + 1
    }

    /// Samples recorded so far in the current run.
    #[must_use]
    pub fn samples_done(&self) -> usize {
        self.plan.samples_done()
    }

    /// Whether the current run has recorded its final sample.
    #[must_use]
    pub fn finished(&self) -> bool {
        self.plan.finished()
    }

    /// Resets state and waveforms for a fresh (incremental) run.
    pub fn start(&mut self) {
        self.plan.start();
    }

    /// Executes up to `max_steps` steps of the current run; returns how
    /// many ran (`0` once finished). Partial waveforms are visible via
    /// [`DroopScenario::result`].
    ///
    /// # Errors
    ///
    /// Propagates transient-solver failures.
    pub fn advance(&mut self, max_steps: usize) -> Result<usize, CoreError> {
        self.plan.advance(max_steps).map_err(CoreError::Circuit)
    }

    /// The (possibly partial) waveforms of the current run.
    #[must_use]
    pub fn result(&self) -> &TransientResult {
        self.plan.result()
    }

    /// Runs the scenario start-to-finish and derives the droop report.
    ///
    /// # Errors
    ///
    /// Propagates transient-solver failures.
    pub fn run(&mut self) -> Result<DroopReport, CoreError> {
        self.plan.run().map_err(CoreError::Circuit)?;
        Ok(self.report())
    }

    /// Derives the droop report from the recorded waveforms — the exact
    /// arithmetic the pre-plan `simulate_droop` applied.
    #[must_use]
    pub fn report(&self) -> DroopReport {
        let result = self.plan.result();
        let times = result.times();
        let v = result.voltage(self.die);
        let step_idx = times
            .iter()
            .position(|&t| t >= self.step.at.value())
            .unwrap_or(0)
            .saturating_sub(1);
        let v_before = v[step_idx];
        let v_min = v[step_idx..].iter().copied().fold(f64::INFINITY, f64::min);
        DroopReport {
            v_before: Volts::new(v_before),
            v_min: Volts::new(v_min),
            droop: Volts::new(v_before - v_min),
            impedance_bound: self.step.delta() * self.peak_z,
        }
    }
}

/// Simulates a load step against an architecture's PDN model.
///
/// Compiles a [`DroopScenario`] and runs it once; callers sweeping many
/// stimuli should hold the scenario and restamp instead.
///
/// # Errors
///
/// Propagates netlist and transient-solver failures.
pub fn simulate_droop(
    model: &PdnModel,
    step: &LoadStep,
    sim_time: Seconds,
    dt: Seconds,
) -> Result<DroopReport, CoreError> {
    DroopScenario::new(model, step, sim_time, dt)?.run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Architecture;

    fn run(arch: Architecture) -> DroopReport {
        let spec = SystemSpec::paper_default();
        let model = PdnModel::for_architecture(arch);
        simulate_droop(
            &model,
            &LoadStep::paper_default(&spec),
            Seconds::from_microseconds(60.0),
            Seconds::from_nanoseconds(10.0),
        )
        .unwrap()
    }

    #[test]
    fn vertical_architectures_droop_less() {
        let a0 = run(Architecture::Reference);
        let a2 = run(Architecture::InterposerEmbedded);
        assert!(
            a0.droop.value() > 5.0 * a2.droop.value(),
            "A0 droop {} vs A2 droop {}",
            a0.droop,
            a2.droop
        );
    }

    #[test]
    fn a2_stays_within_ripple_budget_a0_does_not() {
        // 5% of 1 V budget against the 750 A step.
        let budget = 0.05;
        let a0 = run(Architecture::Reference);
        let a2 = run(Architecture::InterposerEmbedded);
        assert!(a0.droop.value() > budget, "A0 droop {}", a0.droop);
        assert!(a2.droop.value() < budget, "A2 droop {}", a2.droop);
    }

    #[test]
    fn droop_is_bounded_by_impedance_peak_times_delta() {
        // The time-domain excursion cannot exceed the ΔI·|Z|_peak bound
        // by more than discretization error.
        for arch in [Architecture::Reference, Architecture::InterposerEmbedded] {
            let r = run(arch);
            assert!(
                r.droop.value() <= r.impedance_bound.value() * 1.15 + 1e-4,
                "{}: droop {} vs bound {}",
                arch.name(),
                r.droop,
                r.impedance_bound
            );
        }
    }

    #[test]
    fn report_fields_consistent() {
        let r = run(Architecture::InterposerPeriphery);
        assert!(r.v_min.value() <= r.v_before.value());
        assert!((r.droop.value() - (r.v_before - r.v_min).value()).abs() < 1e-15);
        assert!(r.droop.value() >= 0.0);
    }

    #[test]
    fn scenario_restamp_matches_fresh_simulation_bitwise() {
        let spec = SystemSpec::paper_default();
        let model = PdnModel::for_architecture(Architecture::InterposerEmbedded);
        let sim = Seconds::from_microseconds(30.0);
        let dt = Seconds::from_nanoseconds(20.0);
        let first = LoadStep::paper_default(&spec);
        let second = LoadStep {
            base: first.base,
            after: first.after * 0.6,
            at: Seconds::from_microseconds(8.0),
        };
        let mut scenario = DroopScenario::new(&model, &first, sim, dt).unwrap();
        let a = scenario.run().unwrap();
        assert_eq!(a, simulate_droop(&model, &first, sim, dt).unwrap());
        scenario.set_step(&second).unwrap();
        let b = scenario.run().unwrap();
        assert_eq!(b, simulate_droop(&model, &second, sim, dt).unwrap());
        // Rerunning the restamped scenario reproduces the same report.
        assert_eq!(scenario.run().unwrap(), b);
    }

    #[test]
    fn scenario_incremental_run_matches_one_shot() {
        let spec = SystemSpec::paper_default();
        let model = PdnModel::for_architecture(Architecture::Reference);
        let step = LoadStep::paper_default(&spec);
        let sim = Seconds::from_microseconds(20.0);
        let dt = Seconds::from_nanoseconds(20.0);
        let mut scenario = DroopScenario::new(&model, &step, sim, dt).unwrap();
        let one_shot = scenario.run().unwrap();
        scenario.start();
        while scenario.advance(123).unwrap() > 0 {
            assert!(scenario.samples_done() <= scenario.total_samples());
        }
        assert!(scenario.finished());
        assert_eq!(scenario.samples_done(), scenario.total_samples());
        assert_eq!(scenario.report(), one_shot);
    }

    #[test]
    fn load_step_at_t_stop_is_well_defined() {
        // The step fires exactly at the final sample: the derivation
        // must not panic, `v_before` is the last pre-step sample, and
        // the droop window is the final two samples.
        let spec = SystemSpec::paper_default();
        let model = PdnModel::for_architecture(Architecture::InterposerEmbedded);
        let sim = Seconds::from_microseconds(10.0);
        let dt = Seconds::from_nanoseconds(10.0);
        let step = LoadStep {
            at: sim,
            ..LoadStep::paper_default(&spec)
        };
        let r = simulate_droop(&model, &step, sim, dt).unwrap();
        assert!(r.v_before.value().is_finite());
        assert!(r.v_min.value() <= r.v_before.value());
        assert!(r.droop.value() >= 0.0);
        // The load never actually steps inside the window, so the
        // excursion is the settled ripple, far below the stepped droop.
        let stepped = simulate_droop(&model, &LoadStep::paper_default(&spec), sim, dt).unwrap();
        assert!(r.droop.value() < stepped.droop.value());
    }
}
