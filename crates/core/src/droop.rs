//! Load-step droop analysis: the time-domain complement of the
//! impedance profile.
//!
//! A compute kernel launching on the die is a current step; the supply
//! dips by roughly `ΔI · |Z|` at whatever frequency the step excites.
//! This module drives the per-architecture [`PdnModel`] with an actual
//! step through the backward-Euler transient engine and measures the
//! worst excursion — validating the frequency-domain target-impedance
//! story in the time domain.

use crate::{CoreError, PdnModel, SystemSpec};
use vpd_circuit::{transient, TransientSettings};
use vpd_units::{Amps, Seconds, Volts};

/// A load-step stimulus.
#[derive(Clone, Copy, PartialEq, Debug, serde::Serialize, serde::Deserialize)]
pub struct LoadStep {
    /// Quiescent load before the step.
    pub base: Amps,
    /// Load after the step.
    pub after: Amps,
    /// When the step fires.
    pub at: Seconds,
}

impl LoadStep {
    /// The paper-scale stimulus: 25% → 100% of the 1 kA POL current.
    #[must_use]
    pub fn paper_default(spec: &SystemSpec) -> Self {
        let i = spec.pol_current();
        Self {
            base: i * 0.25,
            after: i,
            at: Seconds::from_microseconds(5.0),
        }
    }

    /// The step magnitude `ΔI`.
    #[must_use]
    pub fn delta(&self) -> Amps {
        self.after - self.base
    }
}

/// Result of a droop simulation.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct DroopReport {
    /// Supply voltage just before the step.
    pub v_before: Volts,
    /// Minimum supply voltage after the step.
    pub v_min: Volts,
    /// Worst excursion `v_before − v_min`.
    pub droop: Volts,
    /// The naive frequency-domain bound `ΔI · |Z|_peak`.
    pub impedance_bound: Volts,
}

/// Simulates a load step against an architecture's PDN model.
///
/// # Errors
///
/// Propagates netlist and transient-solver failures.
pub fn simulate_droop(
    model: &PdnModel,
    step: &LoadStep,
    sim_time: Seconds,
    dt: Seconds,
) -> Result<DroopReport, CoreError> {
    let (mut net, die) = model.netlist()?;
    net.step_current_source(die, net.ground(), step.base, step.after, step.at)
        .map_err(CoreError::Circuit)?;
    let settings = TransientSettings::new(sim_time, dt).map_err(CoreError::Circuit)?;
    let result = transient(&net, &settings).map_err(CoreError::Circuit)?;

    let times = result.times();
    let v = result.voltage(die);
    let step_idx = times
        .iter()
        .position(|&t| t >= step.at.value())
        .unwrap_or(0)
        .saturating_sub(1);
    let v_before = v[step_idx];
    let v_min = v[step_idx..].iter().copied().fold(f64::INFINITY, f64::min);

    let peak_z = model.peak_impedance()?;
    Ok(DroopReport {
        v_before: Volts::new(v_before),
        v_min: Volts::new(v_min),
        droop: Volts::new(v_before - v_min),
        impedance_bound: step.delta() * peak_z,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Architecture;

    fn run(arch: Architecture) -> DroopReport {
        let spec = SystemSpec::paper_default();
        let model = PdnModel::for_architecture(arch);
        simulate_droop(
            &model,
            &LoadStep::paper_default(&spec),
            Seconds::from_microseconds(60.0),
            Seconds::from_nanoseconds(10.0),
        )
        .unwrap()
    }

    #[test]
    fn vertical_architectures_droop_less() {
        let a0 = run(Architecture::Reference);
        let a2 = run(Architecture::InterposerEmbedded);
        assert!(
            a0.droop.value() > 5.0 * a2.droop.value(),
            "A0 droop {} vs A2 droop {}",
            a0.droop,
            a2.droop
        );
    }

    #[test]
    fn a2_stays_within_ripple_budget_a0_does_not() {
        // 5% of 1 V budget against the 750 A step.
        let budget = 0.05;
        let a0 = run(Architecture::Reference);
        let a2 = run(Architecture::InterposerEmbedded);
        assert!(a0.droop.value() > budget, "A0 droop {}", a0.droop);
        assert!(a2.droop.value() < budget, "A2 droop {}", a2.droop);
    }

    #[test]
    fn droop_is_bounded_by_impedance_peak_times_delta() {
        // The time-domain excursion cannot exceed the ΔI·|Z|_peak bound
        // by more than discretization error.
        for arch in [Architecture::Reference, Architecture::InterposerEmbedded] {
            let r = run(arch);
            assert!(
                r.droop.value() <= r.impedance_bound.value() * 1.15 + 1e-4,
                "{}: droop {} vs bound {}",
                arch.name(),
                r.droop,
                r.impedance_bound
            );
        }
    }

    #[test]
    fn report_fields_consistent() {
        let r = run(Architecture::InterposerPeriphery);
        assert!(r.v_min.value() <= r.v_before.value());
        assert!((r.droop.value() - (r.v_before - r.v_min).value()).abs() < 1e-15);
        assert!(r.droop.value() >= 0.0);
    }
}
