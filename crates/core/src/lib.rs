//! Vertical power-delivery architectures and exploration — the primary
//! contribution of *"Vertical Power Delivery for Emerging Packaging and
//! Integration Platforms — Power Conversion and Distribution"*
//! (SOCC 2023).
//!
//! The crate models the paper's five PCB-to-POL delivery configurations
//! (the PCB-conversion reference `A0` and the vertical architectures
//! `A1`, `A2`, `A3@12V`, `A3@6V`), places their regulators, solves the
//! die-grid current sharing, and decomposes the end-to-end loss into
//! conversion, horizontal, vertical, and grid-spreading segments — the
//! data behind the paper's Figure 7 and §IV claims.
//!
//! ```
//! use vpd_core::{analyze, AnalysisOptions, Architecture, Calibration, SystemSpec};
//! use vpd_converters::VrTopologyKind;
//!
//! # fn main() -> Result<(), vpd_core::CoreError> {
//! let spec = SystemSpec::paper_default(); // 48 V → 1 V, 1 kW, 2 A/mm²
//! let calib = Calibration::paper_default();
//! let a1 = analyze(
//!     Architecture::InterposerPeriphery,
//!     VrTopologyKind::Dsch,
//!     &spec,
//!     &calib,
//!     &AnalysisOptions::default(),
//! )?;
//! // The paper's headline: vertical delivery reaches ~80% efficiency
//! // where PCB-level conversion loses over 40%.
//! assert!(a1.loss_percent() < 25.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arch;
mod calib;
mod designer;
mod droop;
mod droopsweep;
mod electro_thermal;
mod error;
mod explore;
mod faultdyn;
mod faults;
mod gridshare;
mod impedance;
mod loss;
mod mc;
mod optimize;
mod par;
pub mod placement;
mod powermap;
mod render;
mod spec;
pub mod survey;
pub mod wire;
mod zsweep;

pub use arch::{
    analyze, analyze_paper_matrix, single_stage_converter, AnalysisOptions, AnalysisSession,
    Architecture, ArchitectureReport, PAPER_VR_POSITIONS,
};
pub use calib::Calibration;
pub use designer::{recommend, Candidate, Recommendation};
pub use droop::{simulate_droop, DroopReport, DroopScenario, LoadStep};
pub use droopsweep::{
    compare_droop_architectures, DroopSweep, DroopSweepComparison, DroopSweepPoint,
    DroopSweepReport, DroopSweepSettings,
};
pub use electro_thermal::{
    electro_thermal, thermal_comparison, ElectroThermalReport, ElectroThermalSettings,
    FixedPointTermination,
};
pub use error::CoreError;
pub use explore::{
    best_bus_voltage, explore_matrix, reference_crossover_power, sweep_bus_voltage,
    sweep_current_density, sweep_pol_power, MatrixEntry,
};
pub use faultdyn::{
    faulted_pdn_model, survival_envelope, CascadeLadder, CascadeOutcome, CascadeSettings,
    FaultImpedanceOutcome, FaultImpedanceReport, FaultImpedanceSweep, FaultTransientOutcome,
    FaultTransientReport, FaultTransientSweep, SurvivalEnvelope, VrFailureScenario,
};
pub use faults::{
    n_minus_1_comparison, Fault, FaultScenario, FaultSweep, FaultSweepReport, ScenarioOutcome,
    OPEN_RESISTANCE,
};
pub use gridshare::{
    solve_sharing, solve_sharing_at, SharingReport, SharingSolver, SharingSolverBuilder,
};
pub use impedance::{target_impedance, PdnElements, PdnModel};
pub use loss::{LossBreakdown, LossKind, LossSegment};
pub use mc::{run_tolerance, run_tolerance_with, McSettings, McSummary};
pub use optimize::{optimize_placement, AnnealSettings, OptimizedPlacement, PlacementObjective};
pub use par::par_map_with;
pub use placement::VrPlacement;
pub use powermap::PowerMap;
pub use spec::SystemSpec;
pub use vpd_circuit::DcPlanMode;
pub use zsweep::{
    compare_architectures, ImpedanceComparison, ImpedanceProfile, ImpedanceSweep,
    ImpedanceSweepSettings,
};
