//! Canonical wire/CLI spellings of the architecture, topology, and
//! placement enums, shared by the CLI, `vpd-serve`, and the
//! `vpd-scenario` compiler so the three surfaces cannot drift.
//!
//! The spellings are part of the serve protocol (see
//! `vpd_serve::proto`) and of the `.vpd` scenario grammar, so they are
//! stable: adding a new variant means adding a new spelling here, never
//! changing an existing one.

use vpd_converters::VrTopologyKind;
use vpd_units::Volts;

use crate::arch::Architecture;
use crate::placement::VrPlacement;

/// Parses the CLI/wire spelling of an architecture
/// (`a0|a1|a2|a3-12|a3-6`).
#[must_use]
pub fn parse_architecture(s: &str) -> Option<Architecture> {
    match s {
        "a0" => Some(Architecture::Reference),
        "a1" => Some(Architecture::InterposerPeriphery),
        "a2" => Some(Architecture::InterposerEmbedded),
        "a3-12" => Some(Architecture::TwoStage {
            bus: Volts::new(12.0),
        }),
        "a3-6" => Some(Architecture::TwoStage {
            bus: Volts::new(6.0),
        }),
        _ => None,
    }
}

/// The wire spelling of an architecture (inverse of
/// [`parse_architecture`] for the five paper configurations; a
/// `TwoStage` bus other than 12 V or 6 V has no wire spelling).
#[must_use]
pub fn architecture_wire_name(a: Architecture) -> Option<&'static str> {
    match a {
        Architecture::Reference => Some("a0"),
        Architecture::InterposerPeriphery => Some("a1"),
        Architecture::InterposerEmbedded => Some("a2"),
        Architecture::TwoStage { bus } if bus.value() == 12.0 => Some("a3-12"),
        Architecture::TwoStage { bus } if bus.value() == 6.0 => Some("a3-6"),
        Architecture::TwoStage { .. } => None,
    }
}

/// Parses the CLI/wire spelling of a topology (`dpmih|dsch|3lhd`).
#[must_use]
pub fn parse_topology(s: &str) -> Option<VrTopologyKind> {
    match s {
        "dpmih" => Some(VrTopologyKind::Dpmih),
        "dsch" => Some(VrTopologyKind::Dsch),
        "3lhd" => Some(VrTopologyKind::ThreeLevelHybridDickson),
        _ => None,
    }
}

/// Parses the CLI/wire spelling of a placement (`periphery|below`).
#[must_use]
pub fn parse_placement(s: &str) -> Option<VrPlacement> {
    match s {
        "periphery" => Some(VrPlacement::Periphery),
        "below" => Some(VrPlacement::BelowDie),
        _ => None,
    }
}

/// The wire spelling of a topology (inverse of [`parse_topology`]).
#[must_use]
pub fn topology_wire_name(t: VrTopologyKind) -> &'static str {
    match t {
        VrTopologyKind::Dpmih => "dpmih",
        VrTopologyKind::Dsch => "dsch",
        VrTopologyKind::ThreeLevelHybridDickson => "3lhd",
    }
}

/// The wire spelling of a placement (inverse of [`parse_placement`]).
#[must_use]
pub fn placement_wire_name(p: VrPlacement) -> &'static str {
    match p {
        VrPlacement::Periphery => "periphery",
        VrPlacement::BelowDie => "below",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn architecture_spellings_round_trip() {
        for name in ["a0", "a1", "a2", "a3-12", "a3-6"] {
            let arch = parse_architecture(name).expect("known spelling");
            assert_eq!(architecture_wire_name(arch), Some(name));
        }
        assert_eq!(parse_architecture("a4"), None);
        assert_eq!(
            architecture_wire_name(Architecture::TwoStage {
                bus: Volts::new(9.0)
            }),
            None
        );
    }

    #[test]
    fn topology_and_placement_spellings_round_trip() {
        for name in ["dpmih", "dsch", "3lhd"] {
            let t = parse_topology(name).expect("known spelling");
            assert_eq!(topology_wire_name(t), name);
        }
        for name in ["periphery", "below"] {
            let p = parse_placement(name).expect("known spelling");
            assert_eq!(placement_wire_name(p), name);
        }
        assert_eq!(parse_topology("buck"), None);
        assert_eq!(parse_placement("edge"), None);
    }
}
