//! Literature survey datasets behind the paper's Figures 1 and 2.
//!
//! Figure 1 plots power and current-density demand for state-of-the-art
//! HPC chips and server systems (refs \[1\]–\[3\]); Figure 2 plots the
//! current-demand trend (Intel power-density data × a 200 mm² die)
//! against the packaging-feature trend (\[12\]). Both are literature
//! data; the values embedded here are the cited public numbers, and the
//! derived series (current demand, PPDN-resistance trend) are recomputed
//! by this module.

use vpd_units::{Amps, CurrentDensity, SquareMeters, Watts};

/// Chip or system-level data point for Figure 1.
#[derive(Clone, Copy, PartialEq, Debug, serde::Serialize, serde::Deserialize)]
pub struct HpcDataPoint {
    /// Product name.
    pub name: &'static str,
    /// Introduction year.
    pub year: u32,
    /// Whether this is an individual chip or a server system.
    pub kind: HpcKind,
    /// Rated power.
    pub power: Watts,
    /// Die area (chips) or aggregate silicon area (systems).
    pub silicon_area: SquareMeters,
    /// Published or estimated delivery efficiency (fraction), shown as
    /// the point size in Figure 1.
    pub delivery_efficiency: f64,
}

/// Category of a Figure 1 data point.
#[derive(Clone, Copy, PartialEq, Eq, Debug, serde::Serialize, serde::Deserialize)]
pub enum HpcKind {
    /// Individual accelerator chip.
    Chip,
    /// Server / pod / tile system.
    Server,
}

impl HpcDataPoint {
    /// Die-level current density at ~1 V POL: `P / (V · A)`.
    #[must_use]
    pub fn current_density(&self) -> CurrentDensity {
        let i = Amps::new(self.power.value() / 1.0);
        i / self.silicon_area
    }
}

/// The Figure 1 dataset: accelerators approaching 1 kW per chip and
/// ~20 kW per system (refs \[1\]–\[3\] and vendor datasheets).
#[must_use]
pub fn figure1_dataset() -> Vec<HpcDataPoint> {
    use HpcKind::{Chip, Server};
    let mm2 = SquareMeters::from_square_millimeters;
    vec![
        HpcDataPoint {
            name: "NVIDIA V100",
            year: 2017,
            kind: Chip,
            power: Watts::new(300.0),
            silicon_area: mm2(815.0),
            delivery_efficiency: 0.82,
        },
        HpcDataPoint {
            name: "TPU v3",
            year: 2018,
            kind: Chip,
            power: Watts::new(450.0),
            silicon_area: mm2(700.0),
            delivery_efficiency: 0.80,
        },
        HpcDataPoint {
            name: "NVIDIA A100",
            year: 2020,
            kind: Chip,
            power: Watts::new(400.0),
            silicon_area: mm2(826.0),
            delivery_efficiency: 0.80,
        },
        HpcDataPoint {
            name: "Tesla Dojo D1",
            year: 2021,
            kind: Chip,
            power: Watts::new(400.0),
            silicon_area: mm2(645.0),
            delivery_efficiency: 0.70,
        },
        HpcDataPoint {
            name: "AMD MI250X",
            year: 2021,
            kind: Chip,
            power: Watts::new(560.0),
            silicon_area: mm2(1460.0),
            delivery_efficiency: 0.78,
        },
        HpcDataPoint {
            name: "NVIDIA H100",
            year: 2022,
            kind: Chip,
            power: Watts::new(700.0),
            silicon_area: mm2(814.0),
            delivery_efficiency: 0.76,
        },
        HpcDataPoint {
            name: "Intel Ponte Vecchio",
            year: 2022,
            kind: Chip,
            power: Watts::new(600.0),
            silicon_area: mm2(1280.0),
            delivery_efficiency: 0.78,
        },
        HpcDataPoint {
            name: "DGX A100",
            year: 2020,
            kind: Server,
            power: Watts::from_kilowatts(6.5),
            silicon_area: mm2(8.0 * 826.0),
            delivery_efficiency: 0.78,
        },
        HpcDataPoint {
            name: "Tesla Dojo tile",
            year: 2021,
            kind: Server,
            power: Watts::from_kilowatts(15.0),
            silicon_area: mm2(25.0 * 645.0),
            delivery_efficiency: 0.70,
        },
        HpcDataPoint {
            name: "Cerebras CS-2",
            year: 2021,
            kind: Server,
            power: Watts::from_kilowatts(23.0),
            silicon_area: mm2(46_225.0),
            delivery_efficiency: 0.75,
        },
        HpcDataPoint {
            name: "DGX H100",
            year: 2022,
            kind: Server,
            power: Watts::from_kilowatts(10.2),
            silicon_area: mm2(8.0 * 814.0),
            delivery_efficiency: 0.76,
        },
    ]
}

/// One year of the Figure 2 trend.
#[derive(Clone, Copy, PartialEq, Debug, serde::Serialize, serde::Deserialize)]
pub struct TrendPoint {
    /// Year.
    pub year: u32,
    /// Die power density (W/cm², Intel trend).
    pub power_density_w_per_cm2: f64,
    /// Representative solder-interconnect pitch (µm, from \[12\]).
    pub packaging_pitch_um: f64,
}

impl TrendPoint {
    /// Current demand of a typical 200 mm² die at ~1 V:
    /// `J_P · 2 cm² / 1 V`.
    #[must_use]
    pub fn current_demand(&self) -> Amps {
        Amps::new(self.power_density_w_per_cm2 * 2.0)
    }

    /// Relative PPDN resistance: vias per area scale with `1/pitch²`
    /// and the per-via resistance is pitch-independent to first order,
    /// so `R ∝ pitch²` (normalized to the 1970 value).
    #[must_use]
    pub fn relative_ppdn_resistance(&self, baseline: &TrendPoint) -> f64 {
        (self.packaging_pitch_um / baseline.packaging_pitch_um).powi(2)
    }
}

/// The Figure 2 trend dataset (five decades).
#[must_use]
pub fn figure2_trend() -> Vec<TrendPoint> {
    vec![
        TrendPoint {
            year: 1970,
            power_density_w_per_cm2: 0.2,
            packaging_pitch_um: 800.0,
        },
        TrendPoint {
            year: 1980,
            power_density_w_per_cm2: 1.0,
            packaging_pitch_um: 650.0,
        },
        TrendPoint {
            year: 1990,
            power_density_w_per_cm2: 5.0,
            packaging_pitch_um: 500.0,
        },
        TrendPoint {
            year: 2000,
            power_density_w_per_cm2: 25.0,
            packaging_pitch_um: 350.0,
        },
        TrendPoint {
            year: 2010,
            power_density_w_per_cm2: 60.0,
            packaging_pitch_um: 250.0,
        },
        TrendPoint {
            year: 2020,
            power_density_w_per_cm2: 100.0,
            packaging_pitch_um: 200.0,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chips_approach_a_kilowatt_and_servers_20_kw() {
        let data = figure1_dataset();
        let max_chip = data
            .iter()
            .filter(|p| p.kind == HpcKind::Chip)
            .map(|p| p.power.value())
            .fold(0.0, f64::max);
        let max_server = data
            .iter()
            .filter(|p| p.kind == HpcKind::Server)
            .map(|p| p.power.value())
            .fold(0.0, f64::max);
        assert!((500.0..1000.0).contains(&max_chip));
        assert!((15_000.0..25_000.0).contains(&max_server));
    }

    #[test]
    fn current_density_approaches_one_amp_per_mm2() {
        // Figure 1's observation: modern accelerators approach 1 A/mm².
        let data = figure1_dataset();
        let max_density = data
            .iter()
            .filter(|p| p.kind == HpcKind::Chip)
            .map(|p| p.current_density().as_amps_per_square_millimeter())
            .fold(0.0, f64::max);
        assert!((0.6..1.2).contains(&max_density), "{max_density:.2}");
    }

    #[test]
    fn efficiency_degrades_with_density() {
        // Dojo (highest-density chip in the set) has the worst delivery
        // efficiency — the >30% loss the paper cites.
        let data = figure1_dataset();
        let dojo = data.iter().find(|p| p.name == "Tesla Dojo D1").unwrap();
        assert!(dojo.delivery_efficiency <= 0.70 + 1e-9);
    }

    #[test]
    fn trend_current_grows_orders_of_magnitude_feature_only_4x() {
        // The paper's Figure 2 argument.
        let trend = figure2_trend();
        let first = trend.first().unwrap();
        let last = trend.last().unwrap();
        let current_growth = last.current_demand() / first.current_demand();
        let feature_shrink = first.packaging_pitch_um / last.packaging_pitch_um;
        assert!(current_growth > 100.0, "current grew {current_growth:.0}x");
        assert!(
            (3.0..6.0).contains(&feature_shrink),
            "feature shrank {feature_shrink:.1}x"
        );
    }

    #[test]
    fn ppdn_loss_trend_explodes() {
        // I² grows far faster than R shrinks: the I²R trend across the
        // dataset grows by >10,000x.
        let trend = figure2_trend();
        let first = &trend[0];
        let last = trend.last().unwrap();
        let i_ratio = last.current_demand() / first.current_demand();
        let r_ratio = last.relative_ppdn_resistance(first);
        let loss_growth = i_ratio * i_ratio * r_ratio;
        assert!(loss_growth > 1e4, "loss grew {loss_growth:.0}x");
    }

    #[test]
    fn years_are_sorted() {
        let trend = figure2_trend();
        assert!(trend.windows(2).all(|w| w[0].year < w[1].year));
    }
}
