//! Design-space exploration: the full architecture × topology matrix
//! and the parameter sweeps behind the ablation studies.

use crate::arch::{analyze, AnalysisOptions, AnalysisSession, Architecture, ArchitectureReport};
use crate::{Calibration, CoreError, SystemSpec};
use vpd_converters::VrTopologyKind;
use vpd_units::{CurrentDensity, Volts};

/// One cell of the exploration matrix: a configuration and its outcome
/// (analyses that fail — e.g. 3LHD's insufficient per-module current at
/// 48 positions — are carried as errors, exactly like the paper's
/// "not shown in Figure 7" note).
#[derive(Clone, Debug)]
pub struct MatrixEntry {
    /// Architecture of this cell.
    pub architecture: Architecture,
    /// POL-stage topology of this cell.
    pub topology: VrTopologyKind,
    /// Analysis result.
    pub outcome: Result<ArchitectureReport, CoreError>,
}

/// Analyzes every (architecture, topology) combination, never failing
/// as a whole.
///
/// One [`AnalysisSession`] per architecture serves all of its topology
/// columns — the die grid does not depend on the topology, so each
/// extra column costs a restamp, not a rebuild.
#[must_use]
pub fn explore_matrix(
    topologies: &[VrTopologyKind],
    spec: &SystemSpec,
    calib: &Calibration,
    opts: &AnalysisOptions,
) -> Vec<MatrixEntry> {
    vpd_obs::incr("explore.matrix_runs");
    let mut out = Vec::new();
    for arch in Architecture::paper_set() {
        let columns: &[VrTopologyKind] = if matches!(arch, Architecture::Reference) {
            &[VrTopologyKind::Dsch]
        } else {
            topologies
        };
        let mut session = AnalysisSession::new(arch, spec, calib, opts);
        for &topology in columns {
            out.push(MatrixEntry {
                architecture: arch,
                topology,
                outcome: match session.as_mut() {
                    Ok(session) => session.analyze(topology, calib),
                    // Grid construction failed: carry the per-cell error
                    // the one-shot path would have produced.
                    Err(_) => analyze(arch, topology, spec, calib, opts),
                },
            });
        }
    }
    vpd_obs::add("explore.entries", out.len() as u64);
    out
}

/// Sweeps the intermediate bus voltage of the two-stage architecture
/// (ablation B2): which bus minimizes total loss?
#[must_use]
pub fn sweep_bus_voltage(
    buses: &[Volts],
    spec: &SystemSpec,
    calib: &Calibration,
    opts: &AnalysisOptions,
) -> Vec<(Volts, Result<ArchitectureReport, CoreError>)> {
    // All bus points share the under-die placement, so one session's
    // grid serves the whole sweep via `set_architecture`.
    let mut session = buses.first().and_then(|&bus| {
        AnalysisSession::new(Architecture::TwoStage { bus }, spec, calib, opts).ok()
    });
    buses
        .iter()
        .map(|&bus| {
            let arch = Architecture::TwoStage { bus };
            let reused = session.as_mut().and_then(|s| {
                s.set_architecture(arch).ok()?;
                Some(s.analyze(VrTopologyKind::Dsch, calib))
            });
            let outcome =
                reused.unwrap_or_else(|| analyze(arch, VrTopologyKind::Dsch, spec, calib, opts));
            (bus, outcome)
        })
        .collect()
}

/// The bus voltage with the lowest total loss among the swept points.
#[must_use]
pub fn best_bus_voltage(
    buses: &[Volts],
    spec: &SystemSpec,
    calib: &Calibration,
    opts: &AnalysisOptions,
) -> Option<(Volts, f64)> {
    sweep_bus_voltage(buses, spec, calib, opts)
        .into_iter()
        .filter_map(|(bus, r)| r.ok().map(|rep| (bus, rep.loss_percent())))
        .min_by(|a, b| a.1.total_cmp(&b.1))
}

/// Sweeps the die current density at fixed power (the Figure 1 / §I
/// scaling axis), analyzing one configuration per point.
#[must_use]
pub fn sweep_current_density(
    densities_a_per_mm2: &[f64],
    architecture: Architecture,
    topology: VrTopologyKind,
    base: &SystemSpec,
    calib: &Calibration,
    opts: &AnalysisOptions,
) -> Vec<(f64, Result<ArchitectureReport, CoreError>)> {
    let mut session = AnalysisSession::new(architecture, base, calib, opts).ok();
    densities_a_per_mm2
        .iter()
        .map(|&d| {
            let spec = SystemSpec::new(
                base.pcb_voltage(),
                base.pol_voltage(),
                base.pol_power(),
                CurrentDensity::from_amps_per_square_millimeter(d),
            );
            let outcome = match (spec, session.as_mut()) {
                (Ok(s), Some(sess)) => {
                    sess.set_spec(&s);
                    sess.analyze(topology, calib)
                }
                (Ok(s), None) => analyze(architecture, topology, &s, calib, opts),
                (Err(e), _) => Err(e),
            };
            (d, outcome)
        })
        .collect()
}

/// Sweeps the POL power at fixed density and voltages: horizontal loss
/// grows with `I²` while delivered power grows with `I`, so the
/// reference architecture degrades quadratically — exposing the power
/// level where vertical delivery starts to pay.
#[must_use]
pub fn sweep_pol_power(
    powers_w: &[f64],
    architecture: Architecture,
    topology: VrTopologyKind,
    base: &SystemSpec,
    calib: &Calibration,
    opts: &AnalysisOptions,
) -> Vec<(f64, Result<ArchitectureReport, CoreError>)> {
    let mut session = AnalysisSession::new(architecture, base, calib, opts).ok();
    powers_w
        .iter()
        .map(|&p| {
            let spec = SystemSpec::new(
                base.pcb_voltage(),
                base.pol_voltage(),
                vpd_units::Watts::new(p),
                base.current_density(),
            );
            let outcome = match (spec, session.as_mut()) {
                (Ok(s), Some(sess)) => {
                    sess.set_spec(&s);
                    sess.analyze(topology, calib)
                }
                (Ok(s), None) => analyze(architecture, topology, &s, calib, opts),
                (Err(e), _) => Err(e),
            };
            (p, outcome)
        })
        .collect()
}

/// The POL power at which the reference architecture's total loss first
/// exceeds the given vertical architecture's, scanning the provided
/// grid. Returns `None` when no crossover lies inside the grid.
#[must_use]
pub fn reference_crossover_power(
    powers_w: &[f64],
    vertical: Architecture,
    topology: VrTopologyKind,
    base: &SystemSpec,
    calib: &Calibration,
    opts: &AnalysisOptions,
) -> Option<f64> {
    let a0 = sweep_pol_power(
        powers_w,
        Architecture::Reference,
        topology,
        base,
        calib,
        opts,
    );
    let av = sweep_pol_power(powers_w, vertical, topology, base, calib, opts);
    for ((p, r0), (_, rv)) in a0.into_iter().zip(av) {
        if let (Ok(r0), Ok(rv)) = (r0, rv) {
            if r0.loss_percent() > rv.loss_percent() {
                return Some(p);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env() -> (SystemSpec, Calibration, AnalysisOptions) {
        (
            SystemSpec::paper_default(),
            Calibration::paper_default(),
            AnalysisOptions::default(),
        )
    }

    #[test]
    fn matrix_includes_failed_cells_for_3lhd() {
        let (spec, calib, opts) = env();
        let entries = explore_matrix(&VrTopologyKind::ALL, &spec, &calib, &opts);
        // A0 + 4 architectures × 3 topologies.
        assert_eq!(entries.len(), 13);
        // Single-stage 3LHD cells fail capacity (48 × 12 A < 1 kA) — the
        // paper's exclusion.
        let failed_3lhd = entries
            .iter()
            .filter(|e| e.topology == VrTopologyKind::ThreeLevelHybridDickson && e.outcome.is_err())
            .count();
        assert!(failed_3lhd >= 2, "expected A1/A2 3LHD exclusions");
        // Everything with DPMIH and DSCH succeeds.
        for e in &entries {
            if e.topology != VrTopologyKind::ThreeLevelHybridDickson {
                assert!(e.outcome.is_ok(), "{} {}", e.architecture, e.topology);
            }
        }
    }

    #[test]
    fn three_lhd_succeeds_with_enough_modules() {
        // The module-count override lets the explorer run the 84-module
        // variant the paper couldn't quote numbers for.
        let (spec, calib, _) = env();
        let opts = AnalysisOptions {
            module_count: Some(84),
            ..AnalysisOptions::default()
        };
        let report = analyze(
            Architecture::InterposerPeriphery,
            VrTopologyKind::ThreeLevelHybridDickson,
            &spec,
            &calib,
            &opts,
        )
        .unwrap();
        assert!(report.loss_percent() < 35.0);
    }

    #[test]
    fn bus_sweep_has_an_interior_optimum() {
        // Too low a bus → huge lateral current; too high → second stage
        // back at a punishing ratio. The optimum is interior.
        let (spec, calib, opts) = env();
        let buses: Vec<Volts> = [3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0, 32.0]
            .iter()
            .map(|&v| Volts::new(v))
            .collect();
        let (best, best_pct) = best_bus_voltage(&buses, &spec, &calib, &opts).unwrap();
        assert!(
            best.value() > 3.0 && best.value() < 32.0,
            "optimum at edge: {best}"
        );
        assert!(best_pct < 30.0);
    }

    #[test]
    fn density_sweep_worsens_reference_faster_than_vertical() {
        let (spec, calib, opts) = env();
        let densities = [0.5, 1.0, 2.0];
        let a0 = sweep_current_density(
            &densities,
            Architecture::Reference,
            VrTopologyKind::Dsch,
            &spec,
            &calib,
            &opts,
        );
        // Reference-architecture loss percent is density-independent in
        // this model (the PPDN resistance is calibrated at the system
        // level), but the *die area the C4 field demands* stays at
        // ~1200 mm² while the die shrinks with density — verify the
        // utilization pressure instead.
        for (_, outcome) in &a0 {
            assert!(outcome.is_ok());
        }
        let a1 = sweep_current_density(
            &densities,
            Architecture::InterposerPeriphery,
            VrTopologyKind::Dsch,
            &spec,
            &calib,
            &opts,
        );
        for (d, outcome) in &a1 {
            let rep = outcome.as_ref().unwrap();
            assert!(
                rep.loss_percent() < 30.0,
                "A1 at {d} A/mm²: {:.1}%",
                rep.loss_percent()
            );
        }
    }

    #[test]
    fn reference_degrades_quadratically_with_power() {
        let (spec, calib, opts) = env();
        let powers = [125.0, 250.0, 500.0, 1000.0];
        let swept = sweep_pol_power(
            &powers,
            Architecture::Reference,
            VrTopologyKind::Dsch,
            &spec,
            &calib,
            &opts,
        );
        let loss_pcts: Vec<f64> = swept
            .iter()
            .map(|(_, r)| r.as_ref().unwrap().loss_percent())
            .collect();
        // Strictly worsening with power (I²R vs linear P).
        assert!(loss_pcts.windows(2).all(|w| w[0] < w[1]), "{loss_pcts:?}");
    }

    #[test]
    fn crossover_power_exists_within_hpc_range() {
        // At low power PCB conversion is fine; by the paper's kilowatt
        // scale, vertical delivery wins decisively.
        let (spec, calib, opts) = env();
        let powers: Vec<f64> = (1..=20).map(|k| 50.0 * k as f64).collect();
        let crossover = reference_crossover_power(
            &powers,
            Architecture::InterposerPeriphery,
            VrTopologyKind::Dsch,
            &spec,
            &calib,
            &opts,
        );
        let p = crossover.expect("crossover inside 50-1000 W range");
        assert!((50.0..=1000.0).contains(&p), "crossover at {p} W");
    }

    #[test]
    fn invalid_density_is_carried_not_panicked() {
        let (spec, calib, opts) = env();
        let swept = sweep_current_density(
            &[-1.0],
            Architecture::InterposerPeriphery,
            VrTopologyKind::Dsch,
            &spec,
            &calib,
            &opts,
        );
        assert!(swept[0].1.is_err());
    }
}
