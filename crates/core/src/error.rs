//! Core error type aggregating the substrate errors.

use std::fmt;

/// Errors from architecture analysis and exploration.
#[derive(Clone, PartialEq, Debug)]
#[non_exhaustive]
pub enum CoreError {
    /// A specification value was invalid.
    InvalidSpec {
        /// Which field.
        what: &'static str,
        /// The rejected value (SI units).
        value: f64,
    },
    /// The requested VR count cannot supply the load even at maximum
    /// module current.
    InsufficientVrCapacity {
        /// Modules placed.
        modules: usize,
        /// Their combined maximum output (A).
        capacity: f64,
        /// Load current (A).
        demand: f64,
    },
    /// A regulator was driven beyond its rating and extrapolation was
    /// not permitted.
    VrOverload {
        /// Worst per-module current (A).
        worst: f64,
        /// Module rating (A).
        rating: f64,
    },
    /// Circuit-level failure during the grid solve.
    Circuit(vpd_circuit::CircuitError),
    /// Packaging-level failure during via allocation.
    Package(vpd_package::PackageError),
    /// Converter-model failure.
    Converter(vpd_converters::ConverterError),
    /// Thermal-model failure.
    Thermal(vpd_thermal::ThermalError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidSpec { what, value } => {
                write!(f, "invalid {what}: {value}")
            }
            Self::InsufficientVrCapacity {
                modules,
                capacity,
                demand,
            } => write!(
                f,
                "{modules} regulator modules supply at most {capacity:.0} A but the load needs {demand:.0} A"
            ),
            Self::VrOverload { worst, rating } => write!(
                f,
                "regulator overloaded: {worst:.1} A against a {rating:.1} A rating"
            ),
            Self::Circuit(e) => write!(f, "grid solve: {e}"),
            Self::Package(e) => write!(f, "packaging: {e}"),
            Self::Converter(e) => write!(f, "converter: {e}"),
            Self::Thermal(e) => write!(f, "thermal: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Circuit(e) => Some(e),
            Self::Package(e) => Some(e),
            Self::Converter(e) => Some(e),
            Self::Thermal(e) => Some(e),
            _ => None,
        }
    }
}

impl From<vpd_circuit::CircuitError> for CoreError {
    fn from(e: vpd_circuit::CircuitError) -> Self {
        Self::Circuit(e)
    }
}

impl From<vpd_package::PackageError> for CoreError {
    fn from(e: vpd_package::PackageError) -> Self {
        Self::Package(e)
    }
}

impl From<vpd_converters::ConverterError> for CoreError {
    fn from(e: vpd_converters::ConverterError) -> Self {
        Self::Converter(e)
    }
}

impl From<vpd_thermal::ThermalError> for CoreError {
    fn from(e: vpd_thermal::ThermalError) -> Self {
        Self::Thermal(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_and_sources() {
        use std::error::Error;
        let e = CoreError::from(vpd_package::PackageError::InvalidCurrent { value: -1.0 });
        assert!(e.source().is_some());
        let o = CoreError::VrOverload {
            worst: 93.0,
            rating: 30.0,
        };
        assert!(o.to_string().contains("93.0"));
        assert!(o.source().is_none());
    }
}
