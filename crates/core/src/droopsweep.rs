//! The time-domain sweep engine: compiled-plan, parallel load-transient
//! droop grids.
//!
//! This is the transient counterpart of [`crate::ImpedanceSweep`]: a
//! [`PdnModel`] ladder plus a ramping load source is compiled **once**
//! into a [`vpd_circuit::TransientPlan`] (pre-factored so workers
//! re-factor zero times), an amplitude × slew grid fans out through
//! [`crate::par_map_with`] with one cloned plan per worker, and the
//! result is a [`DroopSweepReport`] (worst droop, worst settling,
//! first budget violation) implementing [`vpd_report::Render`]. Every
//! grid point depends only on the compiled plan and its own stimulus,
//! so the serial and parallel sweeps are **bitwise identical** — the
//! same contract every other engine in this crate makes.

use crate::par::par_map_with;
use crate::{Architecture, CoreError, PdnModel, SystemSpec};
use vpd_circuit::{ElementId, NodeId, TransientPlan, TransientResult, TransientSettings};
use vpd_units::{Amps, Ohms, Seconds, Volts};

/// Default amplitude-grid floor as a fraction of the POL current.
const DEFAULT_AMPLITUDE_FLOOR: f64 = 0.5;
/// Default slowest slew window of the rise grid.
const DEFAULT_MAX_RISE: Seconds = Seconds::from_microseconds(2.0);

/// Sweep grid and execution settings for [`DroopSweep`].
#[derive(Clone, PartialEq, Debug)]
pub struct DroopSweepSettings {
    /// Post-transient load levels to sweep (the "after" currents).
    pub amplitudes: Vec<Amps>,
    /// Slew windows to sweep; `0` is an ideal step.
    pub rises: Vec<Seconds>,
    /// Worker threads (0 = auto). The result is identical for every
    /// thread count.
    pub threads: usize,
}

impl DroopSweepSettings {
    /// The paper-scale grid: `amps` load levels linearly spanning 50%
    /// to 100% of the POL current, and `slews` rise times linearly
    /// spanning an ideal step to 2 µs.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidSpec`] when either count is zero.
    pub fn paper_default(spec: &SystemSpec, amps: usize, slews: usize) -> Result<Self, CoreError> {
        if amps == 0 {
            return Err(CoreError::InvalidSpec {
                what: "droop sweep amplitude count",
                value: 0.0,
            });
        }
        if slews == 0 {
            return Err(CoreError::InvalidSpec {
                what: "droop sweep slew count",
                value: 0.0,
            });
        }
        let full = spec.pol_current();
        let amplitudes = (0..amps)
            .map(|k| {
                let frac = if amps == 1 {
                    1.0
                } else {
                    DEFAULT_AMPLITUDE_FLOOR
                        + (1.0 - DEFAULT_AMPLITUDE_FLOOR) * (k as f64 / (amps - 1) as f64)
                };
                full * frac
            })
            .collect();
        let rises = (0..slews)
            .map(|k| {
                if slews == 1 {
                    Seconds::ZERO
                } else {
                    Seconds::new(DEFAULT_MAX_RISE.value() * (k as f64 / (slews - 1) as f64))
                }
            })
            .collect();
        Ok(Self {
            amplitudes,
            rises,
            threads: 0,
        })
    }

    /// The row-major amplitude × rise grid these settings describe.
    #[must_use]
    pub fn grid(&self) -> Vec<(Amps, Seconds)> {
        let mut grid = Vec::with_capacity(self.amplitudes.len() * self.rises.len());
        for &after in &self.amplitudes {
            for &rise in &self.rises {
                grid.push((after, rise));
            }
        }
        grid
    }
}

/// One swept stimulus and its measured response.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct DroopSweepPoint {
    /// Post-transient load level.
    pub after: Amps,
    /// Slew window (`0` = ideal step).
    pub rise: Seconds,
    /// Supply voltage just before the transient.
    pub v_before: Volts,
    /// Minimum supply voltage from the transient onward.
    pub v_min: Volts,
    /// Worst excursion `v_before − v_min`.
    pub droop: Volts,
    /// Time from transient start until the waveform last re-enters the
    /// 1%-of-droop band around its final value.
    pub settle: Seconds,
    /// Whether the droop exceeds the report's budget.
    pub violates: bool,
}

/// A reusable droop-sweep engine over one compiled PDN transient.
///
/// ```
/// use vpd_core::{Architecture, DroopSweep, DroopSweepSettings, SystemSpec};
/// use vpd_units::Seconds;
///
/// # fn main() -> Result<(), vpd_core::CoreError> {
/// let spec = SystemSpec::paper_default();
/// let sweep = DroopSweep::for_architecture(
///     Architecture::InterposerEmbedded,
///     &spec,
///     Seconds::from_microseconds(20.0),
///     Seconds::from_nanoseconds(50.0),
/// )?;
/// let settings = DroopSweepSettings::paper_default(&spec, 2, 2)?;
/// let report = sweep.run(&settings)?;
/// assert_eq!(report.points.len(), 4);
/// assert!(report.first_violation().is_none(), "A2 holds the budget");
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct DroopSweep {
    label: String,
    base: Amps,
    at: Seconds,
    budget: Volts,
    plan: TransientPlan,
    die: NodeId,
    ramp: ElementId,
    peak_z: Ohms,
}

impl DroopSweep {
    /// Compiles `model` into a sweep engine labelled `label`: quiescent
    /// load `base`, transient firing at `at`, droops judged against
    /// `budget`. The `t = 0` configuration is pre-factored so parallel
    /// workers (which clone the plan, cache included) re-factor zero
    /// times at any thread count.
    ///
    /// # Errors
    ///
    /// Propagates netlist-construction, settings, and impedance-model
    /// failures.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        model: &PdnModel,
        label: impl Into<String>,
        base: Amps,
        at: Seconds,
        budget: Volts,
        sim_time: Seconds,
        dt: Seconds,
    ) -> Result<Self, CoreError> {
        let (mut net, die) = model.netlist()?;
        let ramp = net
            .ramp_current_source(die, net.ground(), base, base, at, Seconds::ZERO)
            .map_err(CoreError::Circuit)?;
        let settings = TransientSettings::new(sim_time, dt).map_err(CoreError::Circuit)?;
        let mut plan = TransientPlan::compile(&net, &settings).map_err(CoreError::Circuit)?;
        plan.prefactor().map_err(CoreError::Circuit)?;
        let peak_z = model.peak_impedance()?;
        Ok(Self {
            label: label.into(),
            base,
            at,
            budget,
            plan,
            die,
            ramp,
            peak_z,
        })
    }

    /// The engine for an architecture's representative [`PdnModel`]
    /// under the paper's stimulus: 25% POL quiescent load, transient at
    /// 5 µs, droop budget 5% of the POL voltage.
    ///
    /// # Errors
    ///
    /// As for [`DroopSweep::new`].
    pub fn for_architecture(
        arch: Architecture,
        spec: &SystemSpec,
        sim_time: Seconds,
        dt: Seconds,
    ) -> Result<Self, CoreError> {
        Self::new(
            &PdnModel::for_architecture(arch),
            arch.name(),
            spec.pol_current() * 0.25,
            Seconds::from_microseconds(5.0),
            spec.pol_voltage() * 0.05,
            sim_time,
            dt,
        )
    }

    /// The droop budget points are judged against.
    #[must_use]
    pub fn budget(&self) -> Volts {
        self.budget
    }

    /// Runs the sweep over the settings' grid on `settings.threads`
    /// workers (0 = auto). Serial and parallel runs are bitwise
    /// identical: each point restamps a cloned plan's ramp source
    /// (RHS-only) and replays the same compiled op list.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Circuit`] when a restamp or transient solve
    /// fails.
    pub fn run(&self, settings: &DroopSweepSettings) -> Result<DroopSweepReport, CoreError> {
        let grid = settings.grid();
        vpd_obs::incr("droop.sweeps");
        vpd_obs::add("droop.points", grid.len() as u64);
        let results = par_map_with(
            settings.threads,
            &grid,
            &self.plan,
            |plan, &(after, rise)| -> Result<DroopSweepPoint, CoreError> {
                plan.set_load_ramp(self.ramp, self.base, after, self.at, rise)
                    .map_err(CoreError::Circuit)?;
                plan.run().map_err(CoreError::Circuit)?;
                Ok(self.derive_point(plan.result(), after, rise))
            },
        );
        let points = results.into_iter().collect::<Result<Vec<_>, _>>()?;
        Ok(DroopSweepReport {
            label: self.label.clone(),
            base: self.base,
            at: self.at,
            budget: self.budget,
            impedance_peak: self.peak_z,
            points,
        })
    }

    /// Measures one recorded run: droop exactly as
    /// [`crate::DroopScenario::report`], plus the settling time (last
    /// excursion outside the 1%-of-droop band around the final value).
    fn derive_point(
        &self,
        result: &TransientResult,
        after: Amps,
        rise: Seconds,
    ) -> DroopSweepPoint {
        let times = result.times();
        let v = result.voltage(self.die);
        let step_idx = times
            .iter()
            .position(|&t| t >= self.at.value())
            .unwrap_or(0)
            .saturating_sub(1);
        let v_before = v[step_idx];
        let v_min = v[step_idx..].iter().copied().fold(f64::INFINITY, f64::min);
        let droop = v_before - v_min;

        let v_final = v[v.len() - 1];
        let tol = 0.01 * droop.abs();
        let settle = v
            .iter()
            .rposition(|&s| (s - v_final).abs() > tol)
            .map_or(0.0, |k| {
                let t_in = times[(k + 1).min(times.len() - 1)];
                (t_in - self.at.value()).max(0.0)
            });

        DroopSweepPoint {
            after,
            rise,
            v_before: Volts::new(v_before),
            v_min: Volts::new(v_min),
            droop: Volts::new(droop),
            settle: Seconds::new(settle),
            violates: droop > self.budget.value(),
        }
    }
}

/// A full droop-sweep report: the swept grid plus derived worst cases.
/// Renders as text or JSON via [`vpd_report::Render`].
#[derive(Clone, PartialEq, Debug)]
pub struct DroopSweepReport {
    /// What was swept (architecture name or a caller label).
    pub label: String,
    /// Quiescent load before every transient.
    pub base: Amps,
    /// When every transient fires.
    pub at: Seconds,
    /// The droop budget points are judged against.
    pub budget: Volts,
    /// The model's peak impedance (the frequency-domain bound scale).
    pub impedance_peak: Ohms,
    /// The swept points, row-major over amplitude × rise.
    pub points: Vec<DroopSweepPoint>,
}

impl DroopSweepReport {
    /// The point with the largest droop (first in row-major order on
    /// ties).
    #[must_use]
    pub fn worst_droop(&self) -> Option<&DroopSweepPoint> {
        self.points.iter().fold(None, |best, p| match best {
            Some(b) if p.droop.value() > b.droop.value() => Some(p),
            None => Some(p),
            keep => keep,
        })
    }

    /// The point with the longest settling time (first on ties).
    #[must_use]
    pub fn worst_settle(&self) -> Option<&DroopSweepPoint> {
        self.points.iter().fold(None, |best, p| match best {
            Some(b) if p.settle.value() > b.settle.value() => Some(p),
            None => Some(p),
            keep => keep,
        })
    }

    /// The first point in row-major sweep order whose droop exceeds
    /// the budget, if any.
    #[must_use]
    pub fn first_violation(&self) -> Option<&DroopSweepPoint> {
        self.points.iter().find(|p| p.violates)
    }

    /// Whether every point stays within the budget.
    #[must_use]
    pub fn meets_budget(&self) -> bool {
        self.first_violation().is_none()
    }
}

/// Per-architecture sweep reports over one common grid — the
/// all-architecture comparison mode of `vpd droop --sweep`.
#[derive(Clone, PartialEq, Debug)]
pub struct DroopSweepComparison {
    /// One report per compared architecture, in input order.
    pub reports: Vec<DroopSweepReport>,
}

/// Sweeps every architecture in `archs` over the same grid and collects
/// the reports for side-by-side rendering.
///
/// # Errors
///
/// Returns the first model or solver failure.
pub fn compare_droop_architectures(
    archs: &[Architecture],
    spec: &SystemSpec,
    sim_time: Seconds,
    dt: Seconds,
    settings: &DroopSweepSettings,
) -> Result<DroopSweepComparison, CoreError> {
    let reports = archs
        .iter()
        .map(|&arch| DroopSweep::for_architecture(arch, spec, sim_time, dt)?.run(settings))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(DroopSweepComparison { reports })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate_droop, LoadStep};

    fn small(spec: &SystemSpec) -> DroopSweepSettings {
        DroopSweepSettings::paper_default(spec, 2, 3).unwrap()
    }

    fn fast_sweep(arch: Architecture) -> (DroopSweep, SystemSpec) {
        let spec = SystemSpec::paper_default();
        let sweep = DroopSweep::for_architecture(
            arch,
            &spec,
            Seconds::from_microseconds(20.0),
            Seconds::from_nanoseconds(50.0),
        )
        .unwrap();
        (sweep, spec)
    }

    #[test]
    fn grid_is_row_major_and_paper_default_brackets_the_load() {
        let spec = SystemSpec::paper_default();
        let s = DroopSweepSettings::paper_default(&spec, 3, 2).unwrap();
        assert_eq!(s.amplitudes.len(), 3);
        assert_eq!(s.rises.len(), 2);
        let grid = s.grid();
        assert_eq!(grid.len(), 6);
        // Row-major: rises vary fastest.
        assert_eq!(grid[0].0, grid[1].0);
        assert_ne!(grid[1].0, grid[2].0);
        let full = spec.pol_current().value();
        assert!((s.amplitudes[0].value() - 0.5 * full).abs() < 1e-9);
        assert!((s.amplitudes[2].value() - full).abs() < 1e-9);
        assert_eq!(s.rises[0], Seconds::ZERO);
        assert!(DroopSweepSettings::paper_default(&spec, 0, 1).is_err());
        assert!(DroopSweepSettings::paper_default(&spec, 1, 0).is_err());
    }

    #[test]
    fn ideal_step_point_matches_simulate_droop_bitwise() {
        // The sweep's rise = 0 point is the classic step stimulus; its
        // droop must carry the exact bits of the one-shot path.
        let (sweep, spec) = fast_sweep(Architecture::InterposerEmbedded);
        let settings = DroopSweepSettings {
            amplitudes: vec![spec.pol_current()],
            rises: vec![Seconds::ZERO],
            threads: 1,
        };
        let report = sweep.run(&settings).unwrap();
        let oracle = simulate_droop(
            &PdnModel::for_architecture(Architecture::InterposerEmbedded),
            &LoadStep::paper_default(&spec),
            Seconds::from_microseconds(20.0),
            Seconds::from_nanoseconds(50.0),
        )
        .unwrap();
        let p = &report.points[0];
        assert_eq!(
            p.v_before.value().to_bits(),
            oracle.v_before.value().to_bits()
        );
        assert_eq!(p.v_min.value().to_bits(), oracle.v_min.value().to_bits());
        assert_eq!(p.droop.value().to_bits(), oracle.droop.value().to_bits());
    }

    #[test]
    fn slower_slews_droop_less() {
        // A finite-slew transient excites less of the peak impedance
        // than an ideal step at the same amplitude.
        let (sweep, spec) = fast_sweep(Architecture::Reference);
        let settings = DroopSweepSettings {
            amplitudes: vec![spec.pol_current()],
            rises: vec![Seconds::ZERO, Seconds::from_microseconds(2.0)],
            threads: 1,
        };
        let report = sweep.run(&settings).unwrap();
        assert!(report.points[0].droop.value() > report.points[1].droop.value());
    }

    #[test]
    fn report_derives_worst_cases_and_violations() {
        let (sweep, spec) = fast_sweep(Architecture::Reference);
        let report = sweep.run(&small(&spec)).unwrap();
        assert_eq!(report.points.len(), 6);
        let worst = report.worst_droop().unwrap();
        let max = report
            .points
            .iter()
            .map(|p| p.droop.value())
            .fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(worst.droop.value(), max);
        // A0's full-amplitude step blows the 5% budget.
        assert!(!report.meets_budget());
        let first = report.first_violation().unwrap();
        assert!(first.violates && first.droop.value() > report.budget.value());
        assert!(report.worst_settle().unwrap().settle.value() >= 0.0);

        let (a2, _) = fast_sweep(Architecture::InterposerEmbedded);
        let a2_report = a2.run(&small(&spec)).unwrap();
        assert!(a2_report.meets_budget());
        assert!(a2_report.first_violation().is_none());
    }

    #[test]
    fn comparison_keeps_input_order() {
        let spec = SystemSpec::paper_default();
        let archs = [Architecture::Reference, Architecture::InterposerEmbedded];
        let cmp = compare_droop_architectures(
            &archs,
            &spec,
            Seconds::from_microseconds(20.0),
            Seconds::from_nanoseconds(100.0),
            &DroopSweepSettings::paper_default(&spec, 2, 2).unwrap(),
        )
        .unwrap();
        assert_eq!(cmp.reports.len(), 2);
        assert_eq!(cmp.reports[0].label, "A0");
        assert!(
            cmp.reports[0].worst_droop().unwrap().droop.value()
                > cmp.reports[1].worst_droop().unwrap().droop.value()
        );
    }
}
