//! Voltage-regulator placement: how many modules, and where.
//!
//! The paper's §II places regulators either **along the die periphery**
//! (architectures A1 and the first stage of A3) or **below the die**
//! (A2 and the second stage of A3), maximally vertically aligned with
//! the load. This module generates both site patterns on the sharing
//! mesh and derives module counts from geometry and current capability.

use vpd_converters::TopologyCharacteristics;
use vpd_units::{Amps, SquareMeters};

/// Where a regulator bank sits relative to the die.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, serde::Serialize, serde::Deserialize)]
pub enum VrPlacement {
    /// On the interposer, ringing the die periphery.
    Periphery,
    /// Embedded under the die shadow (in-interposer or in a power die).
    BelowDie,
}

impl std::fmt::Display for VrPlacement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Periphery => write!(f, "periphery"),
            Self::BelowDie => write!(f, "below-die"),
        }
    }
}

/// Modules needed purely by current capability, with a safety margin.
#[must_use]
pub fn modules_required(load: Amps, max_per_module: Amps, margin: f64) -> usize {
    ((load.value() * margin.max(1.0)) / max_per_module.value()).ceil() as usize
}

/// Geometric periphery capacity: modules of `module_area` fitting
/// shoulder-to-shoulder around a square die of `die_area` (one module
/// depth, square aspect).
#[must_use]
pub fn periphery_slots(die_area: SquareMeters, module_area: SquareMeters) -> usize {
    let side = die_area.square_side().value();
    let module_width = module_area.value().sqrt();
    ((4.0 * side) / module_width).floor() as usize
}

/// Geometric below-die capacity: modules fitting in `fill_fraction` of
/// the die shadow (the paper devotes ~50% of the die area in the
/// interposer to conversion).
#[must_use]
pub fn below_die_slots(
    die_area: SquareMeters,
    module_area: SquareMeters,
    fill_fraction: f64,
) -> usize {
    ((die_area.value() * fill_fraction.clamp(0.0, 1.0)) / module_area.value()).floor() as usize
}

/// The module count an analysis uses: at least the current-capability
/// requirement, and at least the paper's Table II placement count so the
/// published figure reproduces.
#[must_use]
pub fn analysis_count(ch: &TopologyCharacteristics, placement: VrPlacement, load: Amps) -> usize {
    let paper = match placement {
        VrPlacement::Periphery => ch.vrs_along_periphery,
        VrPlacement::BelowDie => ch.vrs_below_die,
    };
    paper.max(modules_required(load, ch.max_load, 1.0))
}

/// Evenly spaced sites along the boundary ring of an `nx × ny` mesh.
///
/// Walks the ring clockwise from the top-left corner and picks `n`
/// equally spaced nodes — the discrete version of "distributed uniformly
/// along the periphery of the die" (§II).
///
/// # Panics
///
/// Panics if the mesh is smaller than 2×2 or `n == 0`.
#[must_use]
pub fn periphery_sites(n: usize, nx: usize, ny: usize) -> Vec<(usize, usize)> {
    assert!(nx >= 2 && ny >= 2, "mesh too small for a periphery ring");
    assert!(n > 0, "need at least one site");
    // Build the ring walk.
    let mut ring = Vec::new();
    for x in 0..nx {
        ring.push((x, 0));
    }
    for y in 1..ny {
        ring.push((nx - 1, y));
    }
    for x in (0..nx - 1).rev() {
        ring.push((x, ny - 1));
    }
    for y in (1..ny - 1).rev() {
        ring.push((0, y));
    }
    let len = ring.len();
    (0..n).map(|k| ring[(k * len) / n]).collect()
}

/// A near-square `r × c` pattern of `n` sites across the die shadow —
/// the "uniformly distributed below the die" placement of §II.
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn below_die_sites(n: usize, nx: usize, ny: usize) -> Vec<(usize, usize)> {
    assert!(n > 0, "need at least one site");
    let rows = (n as f64).sqrt().floor().max(1.0) as usize;
    let cols = n.div_ceil(rows);
    let mut sites = Vec::with_capacity(n);
    'outer: for j in 0..rows {
        for i in 0..cols {
            if sites.len() == n {
                break 'outer;
            }
            let x = ((i as f64 + 0.5) * nx as f64 / cols as f64) as usize;
            let y = ((j as f64 + 0.5) * ny as f64 / rows as f64) as usize;
            sites.push((x.min(nx - 1), y.min(ny - 1)));
        }
    }
    sites
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpd_converters::VrTopologyKind;

    fn die() -> SquareMeters {
        SquareMeters::from_square_millimeters(500.0)
    }

    #[test]
    fn modules_required_rounds_up() {
        assert_eq!(
            modules_required(Amps::new(1000.0), Amps::new(100.0), 1.0),
            10
        );
        assert_eq!(
            modules_required(Amps::new(1000.0), Amps::new(30.0), 1.0),
            34
        );
        assert_eq!(
            modules_required(Amps::new(1000.0), Amps::new(100.0), 1.25),
            13
        );
    }

    #[test]
    fn geometric_slots_scale_with_module_size() {
        let dpmih = TopologyCharacteristics::table_ii(VrTopologyKind::Dpmih);
        let dsch = TopologyCharacteristics::table_ii(VrTopologyKind::Dsch);
        // Smaller modules → more slots, both on the ring and below.
        assert!(
            periphery_slots(die(), dsch.module_area())
                > periphery_slots(die(), dpmih.module_area())
        );
        assert!(
            below_die_slots(die(), dsch.module_area(), 0.5)
                > below_die_slots(die(), dpmih.module_area(), 0.5)
        );
        // Sanity magnitudes for the 500 mm² die.
        assert_eq!(periphery_slots(die(), dpmih.module_area()), 12);
        assert_eq!(below_die_slots(die(), dpmih.module_area(), 0.5), 4);
        assert_eq!(below_die_slots(die(), dsch.module_area(), 0.5), 34);
    }

    #[test]
    fn analysis_count_takes_max_of_paper_and_required() {
        let dpmih = TopologyCharacteristics::table_ii(VrTopologyKind::Dpmih);
        // Paper says 8 along the periphery, but 1 kA needs 10 modules.
        assert_eq!(
            analysis_count(&dpmih, VrPlacement::Periphery, Amps::new(1000.0)),
            10
        );
        // At a light load the paper count dominates.
        assert_eq!(
            analysis_count(&dpmih, VrPlacement::Periphery, Amps::new(100.0)),
            8
        );
        let dsch = TopologyCharacteristics::table_ii(VrTopologyKind::Dsch);
        assert_eq!(
            analysis_count(&dsch, VrPlacement::BelowDie, Amps::new(1000.0)),
            48
        );
    }

    #[test]
    fn periphery_sites_lie_on_boundary_and_are_distinct() {
        let sites = periphery_sites(48, 25, 25);
        assert_eq!(sites.len(), 48);
        for &(x, y) in &sites {
            assert!(
                x == 0 || y == 0 || x == 24 || y == 24,
                "({x},{y}) not on ring"
            );
        }
        let unique: std::collections::HashSet<_> = sites.iter().collect();
        assert_eq!(unique.len(), 48);
    }

    #[test]
    fn below_die_sites_cover_interior() {
        let sites = below_die_sites(48, 25, 25);
        assert_eq!(sites.len(), 48);
        // Spread across all four quadrants.
        let quadrants: std::collections::HashSet<(bool, bool)> =
            sites.iter().map(|&(x, y)| (x < 12, y < 12)).collect();
        assert_eq!(quadrants.len(), 4);
    }

    #[test]
    fn single_site_patterns() {
        assert_eq!(periphery_sites(1, 5, 5).len(), 1);
        let below = below_die_sites(1, 5, 5);
        assert_eq!(below, vec![(2, 2)]);
    }

    #[test]
    fn placement_display() {
        assert_eq!(VrPlacement::Periphery.to_string(), "periphery");
        assert_eq!(VrPlacement::BelowDie.to_string(), "below-die");
    }
}
