//! Monte-Carlo tolerance analysis: how robust are the Figure 7
//! conclusions to uncertainty in the calibrated resistances and the
//! converter curves?

use crate::arch::{analyze, AnalysisOptions, Architecture};
use crate::{Calibration, CoreError, SystemSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vpd_converters::VrTopologyKind;
use vpd_units::Ohms;

/// Monte-Carlo settings.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct McSettings {
    /// Number of samples.
    pub samples: usize,
    /// Relative tolerance on every calibrated resistance (uniform
    /// `±tol`).
    pub resistance_tolerance: f64,
    /// Relative tolerance on the conversion-loss magnitude.
    pub conversion_tolerance: f64,
    /// RNG seed (runs are reproducible).
    pub seed: u64,
}

impl Default for McSettings {
    fn default() -> Self {
        Self {
            samples: 200,
            resistance_tolerance: 0.20,
            conversion_tolerance: 0.10,
            seed: 0x5eed,
        }
    }
}

/// Distribution summary of total-loss percent over the samples.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct McSummary {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Minimum observed.
    pub min: f64,
    /// Maximum observed.
    pub max: f64,
    /// 5th percentile.
    pub p5: f64,
    /// 95th percentile.
    pub p95: f64,
}

impl McSummary {
    fn from_samples(mut xs: Vec<f64>) -> Self {
        xs.sort_by(f64::total_cmp);
        let n = xs.len();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        let pick = |q: f64| xs[((q * (n - 1) as f64).round() as usize).min(n - 1)];
        Self {
            mean,
            std_dev: var.sqrt(),
            min: xs[0],
            max: xs[n - 1],
            p5: pick(0.05),
            p95: pick(0.95),
        }
    }
}

fn perturb(r: Ohms, rng: &mut StdRng, tol: f64) -> Ohms {
    r * (1.0 + rng.gen_range(-tol..=tol))
}

/// Runs the tolerance analysis for one configuration, returning the
/// loss-percent distribution summary.
///
/// # Errors
///
/// Propagates the first analysis failure (a nominal-feasible
/// configuration stays feasible under resistance perturbation, so
/// failures indicate a genuinely infeasible configuration).
pub fn run_tolerance(
    architecture: Architecture,
    topology: VrTopologyKind,
    spec: &SystemSpec,
    base: &Calibration,
    settings: &McSettings,
) -> Result<McSummary, CoreError> {
    let mut rng = StdRng::seed_from_u64(settings.seed);
    let opts = AnalysisOptions::default();
    let mut samples = Vec::with_capacity(settings.samples);
    for _ in 0..settings.samples {
        let rt = settings.resistance_tolerance;
        let calib = Calibration {
            horizontal_pol_resistance: perturb(base.horizontal_pol_resistance, &mut rng, rt),
            horizontal_hv_resistance: perturb(base.horizontal_hv_resistance, &mut rng, rt),
            interposer_bus_resistance: perturb(base.interposer_bus_resistance, &mut rng, rt),
            grid_sheet_resistance: perturb(base.grid_sheet_resistance, &mut rng, rt),
            vr_droop_periphery: perturb(base.vr_droop_periphery, &mut rng, rt),
            vr_droop_below_die: perturb(base.vr_droop_below_die, &mut rng, rt),
            ..*base
        };
        let report = analyze(architecture, topology, spec, &calib, &opts)?;
        // Conversion-curve uncertainty applied as a multiplicative factor
        // on the conversion share of the total.
        let conv_factor = 1.0 + rng.gen_range(-settings.conversion_tolerance..=settings.conversion_tolerance);
        let b = &report.breakdown;
        let loss = b.total().value()
            + b.conversion_loss().value() * (conv_factor - 1.0);
        samples.push(100.0 * loss / b.pol_power().value());
    }
    Ok(McSummary::from_samples(samples))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(arch: Architecture) -> McSummary {
        run_tolerance(
            arch,
            VrTopologyKind::Dsch,
            &SystemSpec::paper_default(),
            &Calibration::paper_default(),
            &McSettings {
                samples: 60,
                ..McSettings::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn distributions_bracket_the_nominal() {
        let a0 = summary(Architecture::Reference);
        assert!(a0.min < 43.3 && 43.3 < a0.max, "{a0:?}");
        assert!(a0.p5 <= a0.mean && a0.mean <= a0.p95);
        assert!(a0.std_dev > 0.2, "resistance tolerance must show up");
    }

    #[test]
    fn conclusion_is_robust_a0_always_worst() {
        // Even at the 5th/95th percentiles, A0 loses to A1 — the paper's
        // headline conclusion survives the tolerances.
        let a0 = summary(Architecture::Reference);
        let a1 = summary(Architecture::InterposerPeriphery);
        assert!(a0.p5 > a1.p95, "A0 p5 {:.1} vs A1 p95 {:.1}", a0.p5, a1.p95);
    }

    #[test]
    fn seeded_runs_reproduce() {
        let a = summary(Architecture::InterposerEmbedded);
        let b = summary(Architecture::InterposerEmbedded);
        assert_eq!(a, b);
    }
}
