//! Monte-Carlo tolerance analysis: how robust are the Figure 7
//! conclusions to uncertainty in the calibrated resistances and the
//! converter curves?
//!
//! The sweep is built for throughput and reproducibility at once:
//!
//! * One [`AnalysisSession`] per run compiles the die-grid solve plan
//!   once; every sample merely restamps element values.
//! * The nominal solution is solved first and **anchored** — every
//!   sample's conjugate gradient warm-starts from that same point, so a
//!   sample's result depends only on its own perturbed calibration,
//!   never on which sample ran before it.
//! * Every sample draws from its own RNG stream derived from
//!   `(seed, sample index)`.
//!
//! Together those make the parallel run ([`McSettings::threads`])
//! bitwise-identical to the serial one for the same seed.

use crate::arch::{AnalysisOptions, AnalysisSession, Architecture};
use crate::par::par_map_with;
use crate::{Calibration, CoreError, SystemSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vpd_converters::VrTopologyKind;
use vpd_units::Ohms;

/// Monte-Carlo settings.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct McSettings {
    /// Number of samples.
    pub samples: usize,
    /// Relative tolerance on every calibrated resistance (uniform
    /// `±tol`).
    pub resistance_tolerance: f64,
    /// Relative tolerance on the conversion-loss magnitude.
    pub conversion_tolerance: f64,
    /// RNG seed (runs are reproducible).
    pub seed: u64,
    /// Worker threads (0 = auto). Any value yields bitwise-identical
    /// summaries for the same seed.
    pub threads: usize,
}

impl Default for McSettings {
    fn default() -> Self {
        Self {
            samples: 200,
            resistance_tolerance: 0.20,
            conversion_tolerance: 0.10,
            seed: 0x5eed,
            threads: 0,
        }
    }
}

/// Distribution summary of total-loss percent over the samples.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct McSummary {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Minimum observed.
    pub min: f64,
    /// Maximum observed.
    pub max: f64,
    /// 5th percentile (linearly interpolated).
    pub p5: f64,
    /// 95th percentile (linearly interpolated).
    pub p95: f64,
}

impl McSummary {
    fn from_samples(mut xs: Vec<f64>) -> Self {
        xs.sort_by(f64::total_cmp);
        let n = xs.len();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        // Linear interpolation between closest ranks (the "C = 1"
        // definition, numpy's default), not nearest-rank: a percentile
        // of a small sample set should move continuously with q.
        let pick = |q: f64| {
            let pos = q * (n - 1) as f64;
            let lo = pos.floor() as usize;
            let hi = pos.ceil() as usize;
            xs[lo] + (xs[hi] - xs[lo]) * (pos - lo as f64)
        };
        Self {
            mean,
            std_dev: var.sqrt(),
            min: xs[0],
            max: xs[n - 1],
            p5: pick(0.05),
            p95: pick(0.95),
        }
    }
}

fn perturb(r: Ohms, rng: &mut StdRng, tol: f64) -> Ohms {
    r * (1.0 + rng.gen_range(-tol..=tol))
}

/// The RNG stream for one sample: a SplitMix64-style avalanche over
/// `(seed, index)`, so consecutive indices give decorrelated streams and
/// a sample's draws never depend on how work was divided among threads.
pub(crate) fn sample_rng(seed: u64, index: usize) -> StdRng {
    let mut z = seed.wrapping_add(
        (index as u64)
            .wrapping_add(1)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15),
    );
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    StdRng::seed_from_u64(z ^ (z >> 31))
}

/// Runs the tolerance analysis for one configuration, returning the
/// loss-percent distribution summary.
///
/// The summary is a pure function of the configuration and
/// `settings.seed`: neither `settings.threads` nor the host's core count
/// changes a single bit of it.
///
/// # Errors
///
/// Propagates the first analysis failure (a nominal-feasible
/// configuration stays feasible under resistance perturbation, so
/// failures indicate a genuinely infeasible configuration).
pub fn run_tolerance(
    architecture: Architecture,
    topology: VrTopologyKind,
    spec: &SystemSpec,
    base: &Calibration,
    settings: &McSettings,
) -> Result<McSummary, CoreError> {
    let opts = AnalysisOptions::default();
    let mut session = AnalysisSession::new(architecture, spec, base, &opts)?;
    run_tolerance_with(&mut session, topology, base, settings)
}

/// [`run_tolerance`] over a caller-provided session, letting a compiled
/// grid plan be amortized across runs (the serve-layer scenario cache).
///
/// The summary is bitwise-identical to [`run_tolerance`] for the same
/// configuration whether the session is freshly built or reused: the
/// nominal point is re-solved and re-anchored here, and a warm re-solve
/// of an identical system converges at iteration zero to the anchored
/// solution, so every sample starts from the same point either way.
///
/// # Errors
///
/// As for [`run_tolerance`].
pub fn run_tolerance_with(
    session: &mut AnalysisSession,
    topology: VrTopologyKind,
    base: &Calibration,
    settings: &McSettings,
) -> Result<McSummary, CoreError> {
    let _span = vpd_obs::span("mc.run_ns");
    let timer = vpd_obs::is_enabled().then(std::time::Instant::now);
    // Solve the nominal point once and anchor it: every sample then
    // warm-starts from the same solution, so per-sample results are
    // independent of sample order and worker assignment.
    session.analyze(topology, base)?;
    session.anchor();

    let indices: Vec<usize> = (0..settings.samples).collect();
    let rt = settings.resistance_tolerance;
    let ct = settings.conversion_tolerance;
    let sample = |sess: &mut AnalysisSession, &i: &usize| -> Result<f64, CoreError> {
        let mut rng = sample_rng(settings.seed, i);
        let calib = Calibration {
            horizontal_pol_resistance: perturb(base.horizontal_pol_resistance, &mut rng, rt),
            horizontal_hv_resistance: perturb(base.horizontal_hv_resistance, &mut rng, rt),
            interposer_bus_resistance: perturb(base.interposer_bus_resistance, &mut rng, rt),
            grid_sheet_resistance: perturb(base.grid_sheet_resistance, &mut rng, rt),
            vr_droop_periphery: perturb(base.vr_droop_periphery, &mut rng, rt),
            vr_droop_below_die: perturb(base.vr_droop_below_die, &mut rng, rt),
            ..*base
        };
        let report = sess.analyze(topology, &calib)?;
        // Conversion-curve uncertainty applied as a multiplicative factor
        // on the conversion share of the total.
        let conv_factor = 1.0 + rng.gen_range(-ct..=ct);
        let b = &report.breakdown;
        let loss = b.total().value() + b.conversion_loss().value() * (conv_factor - 1.0);
        Ok(100.0 * loss / b.pol_power().value())
    };
    let results = par_map_with(settings.threads, &indices, &*session, sample);
    let mut samples = Vec::with_capacity(results.len());
    for r in results {
        samples.push(r?);
    }
    // Accounting only: recorded after all samples are computed, so the
    // summary bits cannot depend on whether metrics are enabled.
    vpd_obs::incr("mc.runs");
    vpd_obs::add("mc.samples", samples.len() as u64);
    if let Some(start) = timer {
        let secs = start.elapsed().as_secs_f64();
        if secs > 0.0 {
            vpd_obs::gauge_set("mc.samples_per_sec", samples.len() as f64 / secs);
        }
    }
    Ok(McSummary::from_samples(samples))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(arch: Architecture) -> McSummary {
        run_tolerance(
            arch,
            VrTopologyKind::Dsch,
            &SystemSpec::paper_default(),
            &Calibration::paper_default(),
            &McSettings {
                samples: 60,
                ..McSettings::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn distributions_bracket_the_nominal() {
        let a0 = summary(Architecture::Reference);
        assert!(a0.min < 43.3 && 43.3 < a0.max, "{a0:?}");
        assert!(a0.p5 <= a0.mean && a0.mean <= a0.p95);
        assert!(a0.std_dev > 0.2, "resistance tolerance must show up");
    }

    #[test]
    fn conclusion_is_robust_a0_always_worst() {
        // Even at the 5th/95th percentiles, A0 loses to A1 — the paper's
        // headline conclusion survives the tolerances.
        let a0 = summary(Architecture::Reference);
        let a1 = summary(Architecture::InterposerPeriphery);
        assert!(a0.p5 > a1.p95, "A0 p5 {:.1} vs A1 p95 {:.1}", a0.p5, a1.p95);
    }

    #[test]
    fn seeded_runs_reproduce() {
        let a = summary(Architecture::InterposerEmbedded);
        let b = summary(Architecture::InterposerEmbedded);
        assert_eq!(a, b);
    }

    #[test]
    fn percentiles_interpolate_linearly() {
        // 11 equally spaced values 0..=10: the interpolated p5 sits at
        // rank 0.5 and p95 at rank 9.5 — nearest-rank would snap both to
        // the adjacent integers.
        let s = McSummary::from_samples((0..11).map(f64::from).collect());
        assert!((s.p5 - 0.5).abs() < 1e-12, "p5 {}", s.p5);
        assert!((s.p95 - 9.5).abs() < 1e-12, "p95 {}", s.p95);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert_eq!((s.min, s.max), (0.0, 10.0));
    }

    #[test]
    fn direct_mode_sessions_match_warm_cg_and_stay_deterministic() {
        use vpd_circuit::DcPlanMode;
        let spec = SystemSpec::paper_default();
        let calib = Calibration::paper_default();
        let settings = McSettings {
            samples: 24,
            threads: 1,
            ..McSettings::default()
        };
        let cg = run_tolerance(
            Architecture::InterposerEmbedded,
            VrTopologyKind::Dsch,
            &spec,
            &calib,
            &settings,
        )
        .unwrap();

        let opts = AnalysisOptions {
            solve_mode: DcPlanMode::DirectCholesky,
            ..AnalysisOptions::default()
        };
        let mut session =
            AnalysisSession::new(Architecture::InterposerEmbedded, &spec, &calib, &opts).unwrap();
        assert_eq!(session.solve_mode(), DcPlanMode::DirectCholesky);
        let direct =
            run_tolerance_with(&mut session, VrTopologyKind::Dsch, &calib, &settings).unwrap();
        // Exact per-sample solves land within solver tolerance of CG.
        assert!((direct.mean - cg.mean).abs() < 1e-6, "{direct:?} vs {cg:?}");
        assert!((direct.p95 - cg.p95).abs() < 1e-6);

        // And the thread-count independence contract holds per mode.
        for threads in [3, 8] {
            let par = run_tolerance_with(
                &mut session,
                VrTopologyKind::Dsch,
                &calib,
                &McSettings {
                    threads,
                    ..settings
                },
            )
            .unwrap();
            assert_eq!(direct, par, "threads = {threads}");
        }
    }

    #[test]
    fn parallel_runs_are_bitwise_identical_to_serial() {
        let spec = SystemSpec::paper_default();
        let calib = Calibration::paper_default();
        let base = McSettings {
            samples: 24,
            threads: 1,
            ..McSettings::default()
        };
        let serial = run_tolerance(
            Architecture::InterposerEmbedded,
            VrTopologyKind::Dsch,
            &spec,
            &calib,
            &base,
        )
        .unwrap();
        for threads in [2, 3, 8] {
            let par = run_tolerance(
                Architecture::InterposerEmbedded,
                VrTopologyKind::Dsch,
                &spec,
                &calib,
                &McSettings { threads, ..base },
            )
            .unwrap();
            // Bitwise: every field, exact f64 equality.
            assert_eq!(serial, par, "threads = {threads}");
        }
    }
}
