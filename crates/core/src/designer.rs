//! Architecture recommendation — the "design methodology" the paper's
//! §I calls for.

use crate::arch::{AnalysisOptions, Architecture, ArchitectureReport};
use crate::explore::explore_matrix;
use crate::{Calibration, CoreError, SystemSpec};
use vpd_converters::VrTopologyKind;

/// One ranked design candidate.
#[derive(Clone, Debug)]
pub struct Candidate {
    /// Architecture.
    pub architecture: Architecture,
    /// POL-stage topology.
    pub topology: VrTopologyKind,
    /// Full analysis report.
    pub report: ArchitectureReport,
    /// Why this candidate ranks where it does.
    pub rationale: String,
}

/// The designer's output: feasible candidates ranked by total loss,
/// plus the configurations that were rejected and why.
#[derive(Clone, Debug)]
pub struct Recommendation {
    /// Feasible candidates, best (lowest loss) first.
    pub ranked: Vec<Candidate>,
    /// Rejected configurations with the error that excluded them.
    pub rejected: Vec<(Architecture, VrTopologyKind, CoreError)>,
}

impl Recommendation {
    /// The winning candidate, if any configuration was feasible.
    #[must_use]
    pub fn best(&self) -> Option<&Candidate> {
        self.ranked.first()
    }
}

/// Ranks every architecture × topology combination for a specification.
///
/// Overload extrapolation is disabled here: a real design should not
/// count on running modules beyond their published rating, so
/// configurations that need it (e.g. A2 with DSCH under the hotspot
/// map) are surfaced in `rejected` with a [`CoreError::VrOverload`].
#[must_use]
pub fn recommend(spec: &SystemSpec, calib: &Calibration) -> Recommendation {
    let opts = AnalysisOptions {
        allow_overload: false,
        ..AnalysisOptions::default()
    };
    let mut ranked = Vec::new();
    let mut rejected = Vec::new();
    for entry in explore_matrix(&VrTopologyKind::ALL, spec, calib, &opts) {
        match entry.outcome {
            Ok(report) => {
                let rationale = rationale_for(&report);
                ranked.push(Candidate {
                    architecture: entry.architecture,
                    topology: entry.topology,
                    report,
                    rationale,
                });
            }
            Err(e) => rejected.push((entry.architecture, entry.topology, e)),
        }
    }
    ranked.sort_by(|a, b| a.report.loss_percent().total_cmp(&b.report.loss_percent()));
    Recommendation { ranked, rejected }
}

fn rationale_for(report: &ArchitectureReport) -> String {
    let b = &report.breakdown;
    let conv = b.percent_of_pol_power(b.conversion_loss());
    let ppdn = b.percent_of_pol_power(b.ppdn_loss());
    format!(
        "{}: {:.1}% total loss ({:.1}% conversion, {:.1}% PPDN), {} POL-stage modules, worst module {:.1} A",
        report.architecture.description(),
        report.loss_percent(),
        conv,
        ppdn,
        report.stage2_modules,
        report.sharing.max().value(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recommends_a_vertical_architecture_over_reference() {
        let rec = recommend(&SystemSpec::paper_default(), &Calibration::paper_default());
        let best = rec.best().expect("at least one feasible design");
        assert!(!matches!(best.architecture, Architecture::Reference));
        assert!(best.report.loss_percent() < 25.0);
        // Ranking is sorted.
        let losses: Vec<f64> = rec.ranked.iter().map(|c| c.report.loss_percent()).collect();
        assert!(losses.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn overloading_configurations_are_rejected_with_reason() {
        let rec = recommend(&SystemSpec::paper_default(), &Calibration::paper_default());
        // A2/DSCH needs >30 A on the hotspot modules → rejected without
        // extrapolation; 3LHD lacks capacity outright.
        assert!(!rec.rejected.is_empty());
        let kinds: Vec<String> = rec
            .rejected
            .iter()
            .map(|(a, t, e)| format!("{a}/{t}: {e}"))
            .collect();
        assert!(
            kinds
                .iter()
                .any(|k| k.contains("overload") || k.contains("supply at most")),
            "{kinds:?}"
        );
    }

    #[test]
    fn rationale_mentions_loss_and_modules() {
        let rec = recommend(&SystemSpec::paper_default(), &Calibration::paper_default());
        let best = rec.best().unwrap();
        assert!(best.rationale.contains("total loss"));
        assert!(best.rationale.contains("modules"));
    }
}
