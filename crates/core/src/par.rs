//! Minimal scoped-thread parallel map for sweep and Monte-Carlo fans.
//!
//! The repo deliberately avoids external runtime dependencies, so this
//! is a contiguous-chunk fork/join on [`std::thread::scope`]: the input
//! is split into one contiguous chunk per worker, each worker gets its
//! own clone of a caller-supplied state value (a solver session, a
//! compiled plan, …), and results come back concatenated in input
//! order.
//!
//! Determinism is the caller's contract: as long as `f(state, item)` is
//! a pure function of `(state-as-cloned, item)` — i.e. the per-item work
//! does not depend on which items ran before it on the same worker —
//! the output is identical for every thread count, including 1. The
//! Monte-Carlo engine gets this by seeding every sample's RNG from the
//! sample index and warm-starting every solve from one shared nominal
//! solution rather than from the previous sample.

/// Number of workers to use for `threads = 0` (auto): the machine's
/// available parallelism, capped to keep clone overhead sane.
fn auto_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(16)
}

/// Maps `f` over `items` on `threads` workers (0 = auto), giving each
/// worker a clone of `state`, and returns the results in input order.
///
/// `f` must be deterministic in `(state, item)` alone for the result to
/// be independent of the thread count — see the module docs.
///
/// ```
/// use vpd_core::par_map_with;
///
/// let squares = par_map_with(4, &[1_u64, 2, 3, 4, 5], &(), |(), &x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16, 25]);
/// ```
pub fn par_map_with<S, T, R, F>(threads: usize, items: &[T], state: &S, f: F) -> Vec<R>
where
    S: Clone + Send,
    T: Sync,
    R: Send,
    F: Fn(&mut S, &T) -> R + Sync,
{
    let workers = if threads == 0 {
        auto_threads()
    } else {
        threads
    }
    .max(1)
    .min(items.len().max(1));
    vpd_obs::incr("par.jobs");
    vpd_obs::add("par.tasks", items.len() as u64);
    vpd_obs::add("par.workers", workers as u64);
    if workers == 1 || items.len() <= 1 {
        let _span = vpd_obs::span("par.worker_ns");
        let mut local = state.clone();
        return items.iter().map(|item| f(&mut local, item)).collect();
    }

    // Contiguous chunks, sized so the first `rem` chunks take one extra
    // item — every worker gets work, order is preserved by chunk index.
    let base = items.len() / workers;
    let rem = items.len() % workers;
    let mut chunks: Vec<&[T]> = Vec::with_capacity(workers);
    let mut start = 0;
    for w in 0..workers {
        let len = base + usize::from(w < rem);
        chunks.push(&items[start..start + len]);
        start += len;
    }

    let mut out: Vec<Vec<R>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| {
                let mut local = state.clone();
                let f = &f;
                scope.spawn(move || {
                    let _span = vpd_obs::span("par.worker_ns");
                    chunk
                        .iter()
                        .map(|item| f(&mut local, item))
                        .collect::<Vec<R>>()
                })
            })
            .collect();
        for h in handles {
            out.push(h.join().expect("par_map_with worker panicked"));
        }
    });
    out.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..103).collect();
        let got = par_map_with(5, &items, &(), |(), &i| i * 2);
        let want: Vec<usize> = items.iter().map(|i| i * 2).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let items: Vec<u64> = (0..57).collect();
        let f = |acc: &mut u64, &i: &u64| {
            // Stateful per worker, but the result only depends on `i`.
            *acc += 1;
            i.wrapping_mul(0x9E37_79B9).rotate_left(7)
        };
        let serial = par_map_with(1, &items, &0_u64, f);
        for threads in [2, 3, 8, 64] {
            assert_eq!(par_map_with(threads, &items, &0_u64, f), serial);
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let empty: Vec<u8> = Vec::new();
        assert!(par_map_with(8, &empty, &(), |(), &x| x).is_empty());
        assert_eq!(par_map_with(0, &[9_u8], &(), |(), &x| x), vec![9]);
    }

    #[test]
    fn each_worker_gets_its_own_state() {
        // With per-worker cloned state, a mutation made for one item must
        // never leak into another worker's chunk; with 1 item per worker
        // every result sees the pristine clone.
        let items: Vec<usize> = (0..8).collect();
        let got = par_map_with(8, &items, &0_usize, |seen, &i| {
            *seen += 1;
            (*seen, i)
        });
        assert!(got.iter().all(|&(seen, _)| seen == 1));
    }
}
