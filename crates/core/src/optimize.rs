//! Regulator-placement optimization.
//!
//! §II places modules on a uniform grid below the die; this module asks
//! the follow-on question the paper leaves open: *given the die's power
//! map, where should the modules actually go?* A seeded simulated
//! annealer moves modules across the mesh, re-solving the current
//! sharing each step, and minimizes a selectable objective.

use crate::gridshare::{SharingReport, SharingSolver};
use crate::placement::below_die_sites;
use crate::{Calibration, CoreError, SystemSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// What the optimizer minimizes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum PlacementObjective {
    /// Mesh spreading loss (watts) — overall efficiency.
    GridLoss,
    /// Worst per-module current (amperes) — keep modules inside their
    /// rating.
    WorstModuleCurrent,
    /// Worst-case IR drop (volts) — POL voltage integrity.
    WorstDrop,
}

impl PlacementObjective {
    fn evaluate(self, report: &SharingReport) -> f64 {
        match self {
            Self::GridLoss => report.grid_loss().value(),
            Self::WorstModuleCurrent => report.max().value(),
            Self::WorstDrop => report.worst_drop().value(),
        }
    }
}

/// Annealer settings (seeded and deterministic).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct AnnealSettings {
    /// Total move attempts.
    pub iterations: usize,
    /// Initial acceptance temperature as a fraction of the starting
    /// objective value.
    pub initial_temperature: f64,
    /// Multiplicative cooling per iteration.
    pub cooling: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AnnealSettings {
    fn default() -> Self {
        Self {
            iterations: 250,
            initial_temperature: 0.05,
            cooling: 0.985,
            seed: 7,
        }
    }
}

/// Result of a placement optimization.
#[derive(Clone, Debug)]
pub struct OptimizedPlacement {
    /// Final module sites.
    pub sites: Vec<(usize, usize)>,
    /// Objective value at the uniform-grid starting point.
    pub initial_objective: f64,
    /// Objective value after annealing.
    pub final_objective: f64,
    /// Sharing report at the final placement.
    pub report: SharingReport,
    /// Accepted moves.
    pub accepted_moves: usize,
}

impl OptimizedPlacement {
    /// Relative improvement over the uniform placement.
    #[must_use]
    pub fn improvement(&self) -> f64 {
        1.0 - self.final_objective / self.initial_objective
    }
}

/// Optimizes under-die module placement with simulated annealing,
/// starting from the §II uniform grid.
///
/// # Errors
///
/// * [`CoreError::InvalidSpec`] for zero modules or more modules than
///   mesh cells.
/// * Any sharing-solve failure.
pub fn optimize_placement(
    spec: &SystemSpec,
    calib: &Calibration,
    n_vrs: usize,
    objective: PlacementObjective,
    settings: &AnnealSettings,
) -> Result<OptimizedPlacement, CoreError> {
    let n = calib.grid_nodes_per_side.max(4);
    if n_vrs == 0 || n_vrs > n * n {
        return Err(CoreError::InvalidSpec {
            what: "regulator count for placement optimization",
            value: n_vrs as f64,
        });
    }
    let droop = calib.vr_droop_below_die;
    let mut sites = below_die_sites(n_vrs, n, n);
    let mut occupied: HashSet<(usize, usize)> = sites.iter().copied().collect();

    // One reusable solver for the whole anneal: candidate moves rewire a
    // single regulator in place instead of rebuilding the netlist, and
    // every candidate solve warm-starts from the last accepted solution
    // (each move only redistributes a few amperes locally).
    let mut solver = SharingSolver::new(spec, calib, &sites, droop)?;
    let initial_report = solver.solve()?;
    let initial_objective = objective.evaluate(&initial_report);
    solver.anchor_last();
    let mut best_sites = sites.clone();
    let mut best_objective = initial_objective;
    let mut current_objective = initial_objective;

    let mut rng = StdRng::seed_from_u64(settings.seed);
    let mut temperature = settings.initial_temperature * initial_objective.max(1e-12);
    let mut accepted_moves = 0;

    for _ in 0..settings.iterations {
        // Propose: move one module to a random unoccupied cell.
        let k = rng.gen_range(0..sites.len());
        let old = sites[k];
        let candidate = (rng.gen_range(0..n), rng.gen_range(0..n));
        temperature *= settings.cooling;
        if occupied.contains(&candidate) {
            continue;
        }
        solver.move_site(k, candidate.0, candidate.1)?;
        let report = solver.solve()?;
        let value = objective.evaluate(&report);
        let accept = value < current_objective || {
            let delta = value - current_objective;
            rng.gen::<f64>() < (-delta / temperature.max(1e-18)).exp()
        };
        if accept {
            sites[k] = candidate;
            occupied.remove(&old);
            occupied.insert(candidate);
            current_objective = value;
            accepted_moves += 1;
            // Re-anchor at the accepted state so later candidates start
            // from the nearest known solution.
            solver.anchor_last();
        } else {
            solver.move_site(k, old.0, old.1)?;
        }
        if accept && value < best_objective {
            best_objective = value;
            best_sites = sites.clone();
        }
    }

    // Final report at the best placement, reusing the same netlist.
    for (k, &(x, y)) in best_sites.iter().enumerate() {
        solver.move_site(k, x, y)?;
    }
    let report = solver.solve()?;
    Ok(OptimizedPlacement {
        sites: best_sites,
        initial_objective,
        final_objective: best_objective,
        report,
        accepted_moves,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env() -> (SystemSpec, Calibration) {
        (SystemSpec::paper_default(), Calibration::paper_default())
    }

    fn fast_settings() -> AnnealSettings {
        AnnealSettings {
            iterations: 120,
            ..AnnealSettings::default()
        }
    }

    #[test]
    fn optimizer_beats_uniform_grid_on_worst_current() {
        // With a hotspot map, moving modules toward the hotspot must
        // reduce the worst per-module current versus the uniform grid.
        let (spec, calib) = env();
        let opt = optimize_placement(
            &spec,
            &calib,
            48,
            PlacementObjective::WorstModuleCurrent,
            &fast_settings(),
        )
        .unwrap();
        assert!(
            opt.final_objective < opt.initial_objective,
            "worst current {:.1} → {:.1}",
            opt.initial_objective,
            opt.final_objective
        );
        assert!(opt.improvement() > 0.05, "at least 5% improvement");
        assert!(opt.accepted_moves > 0);
    }

    #[test]
    fn optimizer_reduces_grid_loss() {
        let (spec, calib) = env();
        let opt = optimize_placement(
            &spec,
            &calib,
            24,
            PlacementObjective::GridLoss,
            &fast_settings(),
        )
        .unwrap();
        assert!(opt.final_objective <= opt.initial_objective);
        // Conservation still holds at the optimized placement.
        let total: f64 = opt.report.per_vr().iter().map(|a| a.value()).sum();
        assert!((total - 1000.0).abs() < 0.5);
    }

    #[test]
    fn deterministic_for_a_seed() {
        let (spec, calib) = env();
        let run = || {
            optimize_placement(
                &spec,
                &calib,
                16,
                PlacementObjective::WorstDrop,
                &fast_settings(),
            )
            .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.sites, b.sites);
        assert_eq!(a.final_objective, b.final_objective);
    }

    #[test]
    fn sites_stay_unique_and_in_bounds() {
        let (spec, calib) = env();
        let opt = optimize_placement(
            &spec,
            &calib,
            32,
            PlacementObjective::GridLoss,
            &fast_settings(),
        )
        .unwrap();
        let unique: HashSet<_> = opt.sites.iter().collect();
        assert_eq!(unique.len(), 32);
        let n = calib.grid_nodes_per_side;
        assert!(opt.sites.iter().all(|&(x, y)| x < n && y < n));
    }

    #[test]
    fn validation() {
        let (spec, calib) = env();
        assert!(optimize_placement(
            &spec,
            &calib,
            0,
            PlacementObjective::GridLoss,
            &fast_settings()
        )
        .is_err());
        assert!(optimize_placement(
            &spec,
            &calib,
            10_000,
            PlacementObjective::GridLoss,
            &fast_settings()
        )
        .is_err());
    }
}
