//! Die-grid current sharing: which regulator supplies how much.
//!
//! The die's 1 V distribution grid is discretized as a 2-D resistive
//! mesh; the power map drives per-node current sinks; every regulator
//! is an ideal setpoint source behind its droop resistance. Solving the
//! mesh (sparse MNA, conjugate gradient) yields the per-module output
//! currents — the quantity behind the paper's observation that A1's
//! periphery modules see 16–27 A while A2's under-die modules see
//! 10–93 A.

use crate::placement::{below_die_sites, periphery_sites, VrPlacement};
use crate::{Calibration, CoreError, SystemSpec};
use vpd_circuit::{DcPlanMode, DcSolution, PowerGrid};
use vpd_numeric::SolveReport;
use vpd_units::{Amps, Ohms, Volts, Watts};

/// Result of a current-sharing solve.
#[derive(Clone, PartialEq, Debug)]
pub struct SharingReport {
    per_vr: Vec<Amps>,
    grid_loss: Watts,
    droop_loss: Watts,
    worst_drop: Volts,
}

impl SharingReport {
    /// Per-module output currents, in site order.
    #[must_use]
    pub fn per_vr(&self) -> &[Amps] {
        &self.per_vr
    }

    /// Smallest module current.
    #[must_use]
    pub fn min(&self) -> Amps {
        self.per_vr
            .iter()
            .copied()
            .fold(Amps::new(f64::INFINITY), Amps::min)
    }

    /// Largest module current.
    #[must_use]
    pub fn max(&self) -> Amps {
        self.per_vr.iter().copied().fold(Amps::ZERO, Amps::max)
    }

    /// Mean module current.
    #[must_use]
    pub fn mean(&self) -> Amps {
        self.per_vr.iter().copied().sum::<Amps>() / self.per_vr.len() as f64
    }

    /// Power dissipated in the distribution mesh (the on-die/
    /// on-interposer 1 V spreading loss).
    #[must_use]
    pub fn grid_loss(&self) -> Watts {
        self.grid_loss
    }

    /// Power dissipated in the module droop resistances (counted as
    /// conversion-path loss by the architecture analysis).
    #[must_use]
    pub fn droop_loss(&self) -> Watts {
        self.droop_loss
    }

    /// Worst-case IR drop below the regulator setpoint.
    #[must_use]
    pub fn worst_drop(&self) -> Volts {
        self.worst_drop
    }
}

/// Solves current sharing for `n_vrs` modules in the given placement.
///
/// Thin convenience over [`SharingSolver::builder`] — prefer the
/// builder when you need a non-default setpoint, explicit sites, or the
/// solver itself for repeated solves.
///
/// ```
/// use vpd_core::{solve_sharing, Calibration, SystemSpec, VrPlacement};
///
/// # fn main() -> Result<(), vpd_core::CoreError> {
/// let spec = SystemSpec::paper_default();
/// let calib = Calibration::paper_default();
/// let report = solve_sharing(&spec, &calib, VrPlacement::Periphery, 48)?;
/// // 48 modules carry 1 kA between them.
/// let total: f64 = report.per_vr().iter().map(|a| a.value()).sum();
/// assert!((total - 1000.0).abs() < 1.0);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// * [`CoreError::InvalidSpec`] for `n_vrs == 0`.
/// * [`CoreError::Circuit`] if the mesh solve fails.
pub fn solve_sharing(
    spec: &SystemSpec,
    calib: &Calibration,
    placement: VrPlacement,
    n_vrs: usize,
) -> Result<SharingReport, CoreError> {
    SharingSolver::builder(spec, calib)
        .placement(placement)
        .modules(n_vrs)
        .solve()
}

/// The canonical sites and droop resistance for a placement pattern.
#[must_use]
pub(crate) fn placement_sites(
    placement: VrPlacement,
    calib: &Calibration,
    n_vrs: usize,
) -> (Vec<(usize, usize)>, Ohms) {
    let n = calib.grid_nodes_per_side.max(4);
    let sites = match placement {
        VrPlacement::Periphery => periphery_sites(n_vrs, n, n),
        VrPlacement::BelowDie => below_die_sites(n_vrs, n, n),
    };
    (sites, placement_droop(placement, calib))
}

/// The calibrated droop resistance for a placement pattern.
#[must_use]
pub(crate) fn placement_droop(placement: VrPlacement, calib: &Calibration) -> Ohms {
    match placement {
        VrPlacement::Periphery => calib.vr_droop_periphery,
        VrPlacement::BelowDie => calib.vr_droop_below_die,
    }
}

/// Solves current sharing for an explicit set of module sites (used by
/// the placement optimizer; [`solve_sharing`] wraps this with the §II
/// canonical patterns).
///
/// Thin convenience over [`SharingSolver::builder`] with
/// [`SharingSolverBuilder::sites`] — prefer the builder for anything
/// beyond a one-shot solve.
///
/// # Errors
///
/// As for [`solve_sharing`].
pub fn solve_sharing_at(
    spec: &SystemSpec,
    calib: &Calibration,
    sites: &[(usize, usize)],
    droop: Ohms,
) -> Result<SharingReport, CoreError> {
    SharingSolver::builder(spec, calib)
        .sites(sites.to_vec())
        .droop(droop)
        .solve()
}

/// Step-by-step configuration for a [`SharingSolver`]: placement and
/// module count (or explicit sites), droop resistance, and setpoint all
/// default to the paper's §II values and can be overridden
/// independently.
///
/// ```
/// use vpd_core::{Calibration, SharingSolver, SystemSpec, VrPlacement};
///
/// # fn main() -> Result<(), vpd_core::CoreError> {
/// let spec = SystemSpec::paper_default();
/// let calib = Calibration::paper_default();
/// // Defaults: 48 modules on the periphery, calibrated droop.
/// let nominal = SharingSolver::builder(&spec, &calib).solve()?;
/// // Under-die placement with half the modules.
/// let below = SharingSolver::builder(&spec, &calib)
///     .placement(VrPlacement::BelowDie)
///     .modules(24)
///     .solve()?;
/// assert!(below.max().value() > nominal.max().value());
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct SharingSolverBuilder<'a> {
    spec: &'a SystemSpec,
    calib: &'a Calibration,
    placement: VrPlacement,
    modules: usize,
    sites: Option<Vec<(usize, usize)>>,
    droop: Option<Ohms>,
    setpoint: Option<Volts>,
}

impl<'a> SharingSolverBuilder<'a> {
    /// Placement pattern for the generated sites (default
    /// [`VrPlacement::Periphery`]). Ignored when explicit
    /// [`SharingSolverBuilder::sites`] are given.
    #[must_use]
    pub fn placement(mut self, placement: VrPlacement) -> Self {
        self.placement = placement;
        self
    }

    /// Number of modules to place (default [`crate::PAPER_VR_POSITIONS`]).
    /// Ignored when explicit [`SharingSolverBuilder::sites`] are given.
    #[must_use]
    pub fn modules(mut self, n_vrs: usize) -> Self {
        self.modules = n_vrs;
        self
    }

    /// Explicit module sites, overriding placement + modules (the
    /// placement-optimizer path).
    #[must_use]
    pub fn sites(mut self, sites: Vec<(usize, usize)>) -> Self {
        self.sites = Some(sites);
        self
    }

    /// Per-module droop resistance (default: the calibrated value for
    /// the placement).
    #[must_use]
    pub fn droop(mut self, droop: Ohms) -> Self {
        self.droop = Some(droop);
        self
    }

    /// Regulator setpoint (default: the spec's POL voltage). Also the
    /// worst-drop reference.
    #[must_use]
    pub fn setpoint(mut self, setpoint: Volts) -> Self {
        self.setpoint = Some(setpoint);
        self
    }

    /// Builds the solver: resolves sites and droop, constructs the mesh,
    /// and applies any setpoint override.
    ///
    /// # Errors
    ///
    /// * [`CoreError::InvalidSpec`] for zero modules / empty sites.
    /// * [`CoreError::Circuit`] for sites outside the mesh or invalid
    ///   element values.
    pub fn build(self) -> Result<SharingSolver, CoreError> {
        let droop = self
            .droop
            .unwrap_or_else(|| placement_droop(self.placement, self.calib));
        let sites = match self.sites {
            Some(sites) => sites,
            None => {
                if self.modules == 0 {
                    return Err(CoreError::InvalidSpec {
                        what: "regulator count",
                        value: 0.0,
                    });
                }
                placement_sites(self.placement, self.calib, self.modules).0
            }
        };
        let mut solver = SharingSolver::new(self.spec, self.calib, &sites, droop)?;
        if let Some(setpoint) = self.setpoint {
            for k in 0..solver.vr_count() {
                solver.set_vr_setpoint(k, setpoint)?;
            }
            // The worst-drop reference follows the override.
            solver.setpoint = setpoint;
        }
        Ok(solver)
    }

    /// Builds the solver and solves once.
    ///
    /// # Errors
    ///
    /// As [`SharingSolverBuilder::build`], plus [`CoreError::Circuit`]
    /// on solve failure.
    pub fn solve(self) -> Result<SharingReport, CoreError> {
        self.build()?.solve()
    }
}

/// A reusable current-sharing solver: the mesh, loads, and regulators
/// are built (and the sparse solve plan compiled) once; subsequent
/// solves restamp values in place and warm-start the iteration.
///
/// This is the hot object behind Monte-Carlo tolerance sweeps and
/// placement annealing, where [`solve_sharing_at`] (which rebuilds the
/// whole netlist per call) would spend most of its time on symbolic
/// work that never changes.
///
/// ```
/// use vpd_core::{SharingSolver, Calibration, SystemSpec};
/// use vpd_core::placement::below_die_sites;
///
/// # fn main() -> Result<(), vpd_core::CoreError> {
/// let spec = SystemSpec::paper_default();
/// let mut calib = Calibration::paper_default();
/// let n = calib.grid_nodes_per_side;
/// let sites = below_die_sites(48, n, n);
/// let mut solver = SharingSolver::new(&spec, &calib, &sites, calib.vr_droop_below_die)?;
/// let nominal = solver.solve()?;
/// // Re-solve a perturbed calibration without rebuilding anything.
/// calib.grid_sheet_resistance = calib.grid_sheet_resistance * 1.1;
/// solver.restamp(&spec, &calib, calib.vr_droop_below_die)?;
/// let perturbed = solver.solve()?;
/// assert!(perturbed.grid_loss() > nominal.grid_loss());
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct SharingSolver {
    grid: PowerGrid,
    n: usize,
    /// Per-module droop resistances, in site order. Uniform after
    /// construction and [`SharingSolver::restamp`]; fault injection
    /// perturbs individual entries through
    /// [`SharingSolver::set_vr_droop`].
    droops: Vec<Ohms>,
    setpoint: Volts,
    /// Warm-start anchor: when set, every solve starts the iteration
    /// from this solution instead of the previous solve's result, which
    /// makes results independent of solve order (the parallel-sweep
    /// determinism contract).
    anchor: Option<DcSolution>,
    last: Option<DcSolution>,
}

impl SharingSolver {
    /// Starts a [`SharingSolverBuilder`] with the paper defaults:
    /// periphery placement, [`crate::PAPER_VR_POSITIONS`] modules, the
    /// calibrated droop for the placement, and the spec's POL voltage as
    /// setpoint.
    #[must_use]
    pub fn builder<'a>(spec: &'a SystemSpec, calib: &'a Calibration) -> SharingSolverBuilder<'a> {
        SharingSolverBuilder {
            spec,
            calib,
            placement: VrPlacement::Periphery,
            modules: crate::PAPER_VR_POSITIONS,
            sites: None,
            droop: None,
            setpoint: None,
        }
    }

    /// Builds the mesh with dense per-node loads and one regulator per
    /// site, ready for repeated solving. Prefer
    /// [`SharingSolver::builder`], which resolves placement patterns and
    /// calibrated droop for you; this is the explicit-everything
    /// primitive underneath it.
    ///
    /// # Errors
    ///
    /// * [`CoreError::InvalidSpec`] for an empty site list.
    /// * [`CoreError::Circuit`] for sites outside the mesh or invalid
    ///   element values.
    pub fn new(
        spec: &SystemSpec,
        calib: &Calibration,
        sites: &[(usize, usize)],
        droop: Ohms,
    ) -> Result<Self, CoreError> {
        if sites.is_empty() {
            return Err(CoreError::InvalidSpec {
                what: "regulator count",
                value: 0.0,
            });
        }
        // Reject out-of-range calibrations (negative sheet resistance,
        // bad power-map shapes) before stamping, with the field named —
        // a negative conductance would otherwise silently produce an
        // indefinite mesh that CG cannot solve.
        calib.validate()?;
        let n = calib.grid_nodes_per_side.max(4);
        let mut grid = PowerGrid::new(n, n, calib.grid_sheet_resistance)?;
        let loads = calib.power_map.node_currents(n, n, spec.pol_current());
        // Dense attachment (zero-current nodes included) keeps the
        // topology independent of the profile, so restamps never
        // recompile.
        grid.attach_dense_load_profile(|x, y| loads[y][x])?;
        for &(x, y) in sites {
            grid.attach_regulator(x, y, spec.pol_voltage(), droop)?;
        }
        Ok(Self {
            grid,
            n,
            droops: vec![droop; sites.len()],
            setpoint: spec.pol_voltage(),
            anchor: None,
            last: None,
        })
    }

    /// Rewrites every value the spec and calibration control — sheet
    /// resistance, load profile, regulator droop and setpoint — in
    /// place. The compiled solve plan survives.
    ///
    /// # Errors
    ///
    /// [`CoreError::Circuit`] for invalid values.
    pub fn restamp(
        &mut self,
        spec: &SystemSpec,
        calib: &Calibration,
        droop: Ohms,
    ) -> Result<(), CoreError> {
        self.grid
            .set_sheet_resistance(calib.grid_sheet_resistance)?;
        let loads = calib
            .power_map
            .node_currents(self.n, self.n, spec.pol_current());
        self.grid.set_load_profile(|x, y| loads[y][x])?;
        for k in 0..self.grid.regulators().len() {
            self.grid.set_regulator_droop(k, droop)?;
            self.grid.set_regulator_setpoint(k, spec.pol_voltage())?;
        }
        self.droops.fill(droop);
        self.setpoint = spec.pol_voltage();
        Ok(())
    }

    /// Number of regulator modules.
    #[must_use]
    pub fn vr_count(&self) -> usize {
        self.droops.len()
    }

    /// Droop resistance of module `k` (None out of range).
    #[must_use]
    pub fn vr_droop(&self, k: usize) -> Option<Ohms> {
        self.droops.get(k).copied()
    }

    /// Nominal regulator setpoint (the IR-drop reference).
    #[must_use]
    pub fn setpoint(&self) -> Volts {
        self.setpoint
    }

    /// Overrides the droop resistance of module `k` alone — the fault
    /// hook for an open (≈GΩ) or derated module. Value-only: the
    /// compiled plan survives.
    ///
    /// # Errors
    ///
    /// [`CoreError::Circuit`] for an index out of range or a
    /// non-positive resistance.
    pub fn set_vr_droop(&mut self, k: usize, droop: Ohms) -> Result<(), CoreError> {
        self.grid.set_regulator_droop(k, droop)?;
        self.droops[k] = droop;
        Ok(())
    }

    /// Overrides the setpoint of module `k` alone (setpoint-drift
    /// fault). The worst-drop reference stays at the nominal setpoint.
    ///
    /// # Errors
    ///
    /// [`CoreError::Circuit`] for an index out of range or a
    /// non-finite voltage.
    pub fn set_vr_setpoint(&mut self, k: usize, setpoint: Volts) -> Result<(), CoreError> {
        self.grid.set_regulator_setpoint(k, setpoint)?;
        Ok(())
    }

    /// Multiplies every mesh-edge resistance inside the node rectangle
    /// `[x0, x1] × [y0, y1]` by `factor` — the fault hook for an open or
    /// high-resistance via patch (large factor over a small rectangle)
    /// or degraded sheet metal (moderate factor over a larger one).
    /// Compounding: relative to the current values, so restamp first to
    /// apply against nominal.
    ///
    /// # Errors
    ///
    /// [`CoreError::Circuit`] for a rectangle outside the mesh or a
    /// non-positive factor.
    pub fn scale_region_resistance(
        &mut self,
        x0: usize,
        y0: usize,
        x1: usize,
        y1: usize,
        factor: f64,
    ) -> Result<(), CoreError> {
        self.grid.scale_region_resistance(x0, y0, x1, y1, factor)?;
        Ok(())
    }

    /// Mesh nodes per side.
    #[must_use]
    pub fn grid_side(&self) -> usize {
        self.n
    }

    /// Moves regulator `k` to mesh position `(x, y)` — the annealer's
    /// placement move. Invalidates the compiled plan (the node set is
    /// unchanged, so only the sparsity pattern is recompiled on the next
    /// solve; the netlist itself is reused).
    ///
    /// # Errors
    ///
    /// [`CoreError::Circuit`] for an index or position out of range.
    pub fn move_site(&mut self, k: usize, x: usize, y: usize) -> Result<(), CoreError> {
        self.grid.move_regulator(k, x, y)?;
        Ok(())
    }

    /// Pins the warm-start anchor to the most recent solution (typically
    /// the nominal operating point). Subsequent solves all start from
    /// it, independent of order.
    pub fn anchor_last(&mut self) {
        self.anchor = self.last.clone();
    }

    /// Sparse-solver mode the mesh solves run under (warm CG by
    /// default).
    #[must_use]
    pub fn solve_mode(&self) -> DcPlanMode {
        self.grid.solve_mode()
    }

    /// Selects the sparse-solver mode for every subsequent solve:
    /// [`DcPlanMode::DirectCholesky`] factors the mesh once per value
    /// change and answers each operating point exactly (and unlocks the
    /// coalesced [`SharingSolver::solve_setpoints`] block path);
    /// [`DcPlanMode::WarmCg`] is the iterative default.
    ///
    /// # Errors
    ///
    /// [`CoreError::Circuit`] if the symbolic analysis of the mesh
    /// pattern fails.
    pub fn set_solve_mode(&mut self, mode: DcPlanMode) -> Result<(), CoreError> {
        self.grid.set_solve_mode(mode)?;
        Ok(())
    }

    /// Solves one operating point per setpoint, driving **every**
    /// regulator to the same swept value, and summarizes each — the
    /// rail-voltage sweep primitive. In direct mode the sweep is
    /// setpoint-only (the conductance matrix never moves), so all
    /// columns coalesce into a single factorization plus one multi-RHS
    /// block substitution; results are bitwise-identical to solving the
    /// setpoints one at a time in the same mode.
    ///
    /// Each report's worst drop stays referenced to the *nominal*
    /// setpoint, matching [`SharingSolver::set_vr_setpoint`] semantics.
    /// The grid is left configured at the last setpoint in the slice.
    ///
    /// # Errors
    ///
    /// [`CoreError::Circuit`] for a non-finite setpoint or on solve
    /// failure.
    pub fn solve_setpoints(
        &mut self,
        setpoints: &[Volts],
    ) -> Result<Vec<SharingReport>, CoreError> {
        if let Some(anchor) = &self.anchor {
            let _ = self.grid.seed_solution(anchor);
        }
        vpd_obs::incr("share.setpoint_sweeps");
        vpd_obs::observe("share.setpoint_columns", setpoints.len() as u64);
        let sols = self.grid.solve_setpoint_block(setpoints)?;
        let mut reports = Vec::with_capacity(sols.len());
        for sol in &sols {
            let per_vr = self.grid.regulator_currents(sol);
            let droop_loss = per_vr
                .iter()
                .zip(&self.droops)
                .map(|(i, r)| i.dissipation_in(*r))
                .sum();
            reports.push(SharingReport {
                grid_loss: self.grid.grid_loss(sol),
                droop_loss,
                worst_drop: self.grid.worst_ir_drop(sol, self.setpoint),
                per_vr,
            });
        }
        if let Some(last) = sols.into_iter().last() {
            self.last = Some(last);
        }
        Ok(reports)
    }

    /// Solves the current state of the grid and summarizes the sharing.
    ///
    /// # Errors
    ///
    /// [`CoreError::Circuit`] on solve failure.
    pub fn solve(&mut self) -> Result<SharingReport, CoreError> {
        if let Some(anchor) = &self.anchor {
            // Ignore a stale anchor (e.g. after a recompile changed
            // nothing structural) rather than failing the solve.
            let _ = self.grid.seed_solution(anchor);
        }
        let sol = self.grid.solve_cached()?;
        let per_vr = self.grid.regulator_currents(&sol);
        let droop_loss = per_vr
            .iter()
            .zip(&self.droops)
            .map(|(i, r)| i.dissipation_in(*r))
            .sum();
        let report = SharingReport {
            grid_loss: self.grid.grid_loss(&sol),
            droop_loss,
            worst_drop: self.grid.worst_ir_drop(&sol, self.setpoint),
            per_vr,
        };
        self.last = Some(sol);
        Ok(report)
    }

    /// CG iterations of the most recent solve (warm-start diagnostic).
    #[must_use]
    pub fn last_iterations(&self) -> Option<usize> {
        self.grid.last_cg_iterations()
    }

    /// Full solver diagnostics of the most recent solve — which rung of
    /// the resilience ladder produced the solution, iterations, final
    /// residual, and whether CG stagnated along the way.
    #[must_use]
    pub fn last_solve_report(&self) -> Option<SolveReport> {
        self.grid.last_solve_report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper() -> (SystemSpec, Calibration) {
        (SystemSpec::paper_default(), Calibration::paper_default())
    }

    #[test]
    fn currents_sum_to_load_either_placement() {
        let (spec, calib) = paper();
        for placement in [VrPlacement::Periphery, VrPlacement::BelowDie] {
            let rep = solve_sharing(&spec, &calib, placement, 48).unwrap();
            let total: f64 = rep.per_vr().iter().map(|a| a.value()).sum();
            assert!((total - 1000.0).abs() < 0.5, "{placement}: {total}");
        }
    }

    #[test]
    fn below_die_spread_is_much_wider_than_periphery() {
        // The paper's §IV contrast: A2's under-die modules span a much
        // broader current range than A1's periphery ring.
        let (spec, calib) = paper();
        let peri = solve_sharing(&spec, &calib, VrPlacement::Periphery, 48).unwrap();
        let below = solve_sharing(&spec, &calib, VrPlacement::BelowDie, 48).unwrap();
        let spread = |r: &SharingReport| r.max().value() / r.min().value();
        assert!(
            spread(&below) > 2.0 * spread(&peri),
            "below {:.1}x vs periphery {:.1}x",
            spread(&below),
            spread(&peri)
        );
    }

    #[test]
    fn paper_a1_band_reproduces() {
        // 16–27 A for 48 periphery modules.
        let (spec, calib) = paper();
        let rep = solve_sharing(&spec, &calib, VrPlacement::Periphery, 48).unwrap();
        let (min, max) = (rep.min().value(), rep.max().value());
        assert!(
            (12.0..=20.0).contains(&min) && (23.0..=32.0).contains(&max),
            "A1 band [{min:.1}, {max:.1}] vs paper [16, 27]"
        );
    }

    #[test]
    fn paper_a2_band_reproduces() {
        // 10–93 A for 48 under-die modules.
        let (spec, calib) = paper();
        let rep = solve_sharing(&spec, &calib, VrPlacement::BelowDie, 48).unwrap();
        let (min, max) = (rep.min().value(), rep.max().value());
        assert!(
            (6.0..=14.0).contains(&min) && (75.0..=110.0).contains(&max),
            "A2 band [{min:.1}, {max:.1}] vs paper [10, 93]"
        );
    }

    #[test]
    fn zero_modules_rejected() {
        let (spec, calib) = paper();
        assert!(matches!(
            solve_sharing(&spec, &calib, VrPlacement::Periphery, 0),
            Err(CoreError::InvalidSpec { .. })
        ));
        assert!(matches!(
            SharingSolver::builder(&spec, &calib).modules(0).solve(),
            Err(CoreError::InvalidSpec { .. })
        ));
    }

    #[test]
    fn builder_defaults_match_the_free_function() {
        let (spec, calib) = paper();
        let built = SharingSolver::builder(&spec, &calib).solve().unwrap();
        let free = solve_sharing(&spec, &calib, VrPlacement::Periphery, 48).unwrap();
        assert_eq!(built, free);
        assert_eq!(built.per_vr().len(), crate::PAPER_VR_POSITIONS);
    }

    #[test]
    fn builder_explicit_sites_match_solve_sharing_at() {
        let (spec, calib) = paper();
        let (sites, droop) = placement_sites(VrPlacement::BelowDie, &calib, 24);
        let built = SharingSolver::builder(&spec, &calib)
            .sites(sites.clone())
            .droop(droop)
            .solve()
            .unwrap();
        let free = solve_sharing_at(&spec, &calib, &sites, droop).unwrap();
        assert_eq!(built, free);
        // Explicit sites without a droop override fall back to the
        // placement's calibrated droop (periphery by default).
        let defaulted = SharingSolver::builder(&spec, &calib)
            .sites(sites)
            .build()
            .unwrap();
        assert_eq!(defaulted.vr_droop(0), Some(calib.vr_droop_periphery));
    }

    #[test]
    fn builder_setpoint_override_shifts_the_rail() {
        let (spec, calib) = paper();
        let lowered = Volts::new(spec.pol_voltage().value() - 0.05);
        let mut solver = SharingSolver::builder(&spec, &calib)
            .setpoint(lowered)
            .build()
            .unwrap();
        assert_eq!(solver.setpoint(), lowered);
        let rep = solver.solve().unwrap();
        let nominal = solve_sharing(&spec, &calib, VrPlacement::Periphery, 48).unwrap();
        // Same load, same droop: identical sharing, and the worst drop
        // is referenced to the overridden setpoint.
        for (a, b) in rep.per_vr().iter().zip(nominal.per_vr()) {
            assert!((a.value() - b.value()).abs() < 1e-6, "{a} vs {b}");
        }
        assert!((rep.worst_drop().value() - nominal.worst_drop().value()).abs() < 1e-6);
    }

    #[test]
    fn grid_loss_positive_and_bounded() {
        let (spec, calib) = paper();
        let rep = solve_sharing(&spec, &calib, VrPlacement::Periphery, 48).unwrap();
        assert!(rep.grid_loss().value() > 1.0);
        assert!(rep.grid_loss().value() < 100.0, "{}", rep.grid_loss());
        assert!(rep.worst_drop().value() > 0.0);
        assert!(rep.droop_loss().value() > 0.0);
    }

    #[test]
    fn reusable_solver_matches_one_shot_path() {
        let (spec, calib) = paper();
        let (sites, droop) = placement_sites(VrPlacement::BelowDie, &calib, 48);
        let mut solver = SharingSolver::new(&spec, &calib, &sites, droop).unwrap();
        let reused = solver.solve().unwrap();
        let fresh = solve_sharing_at(&spec, &calib, &sites, droop).unwrap();
        assert_eq!(reused, fresh);
    }

    #[test]
    fn restamped_solver_matches_fresh_solver() {
        let (spec, mut calib) = paper();
        let (sites, droop) = placement_sites(VrPlacement::BelowDie, &calib, 24);
        let mut solver = SharingSolver::new(&spec, &calib, &sites, droop).unwrap();
        solver.solve().unwrap();

        calib.grid_sheet_resistance = calib.grid_sheet_resistance * 1.17;
        let droop2 = droop * 0.9;
        solver.restamp(&spec, &calib, droop2).unwrap();
        let restamped = solver.solve().unwrap();
        let fresh = solve_sharing_at(&spec, &calib, &sites, droop2).unwrap();

        // Warm and cold CG converge from different starting points, so
        // compare to solver tolerance, not bitwise.
        for (a, b) in restamped.per_vr().iter().zip(fresh.per_vr()) {
            assert!((a.value() - b.value()).abs() < 1e-5, "{a} vs {b}");
        }
        assert!((restamped.grid_loss().value() - fresh.grid_loss().value()).abs() < 1e-4);
        assert!((restamped.droop_loss().value() - fresh.droop_loss().value()).abs() < 1e-4);
    }

    #[test]
    fn anchored_warm_start_cuts_iterations() {
        let (spec, mut calib) = paper();
        let (sites, droop) = placement_sites(VrPlacement::BelowDie, &calib, 48);
        let mut solver = SharingSolver::new(&spec, &calib, &sites, droop).unwrap();
        solver.solve().unwrap();
        let cold = solver.last_iterations().unwrap();
        solver.anchor_last();

        // A ±2% perturbation, the Monte-Carlo regime.
        calib.grid_sheet_resistance = calib.grid_sheet_resistance * 1.02;
        solver.restamp(&spec, &calib, droop).unwrap();
        solver.solve().unwrap();
        let warm = solver.last_iterations().unwrap();
        assert!(
            warm < cold,
            "warm start took {warm} iterations vs {cold} cold"
        );
    }

    #[test]
    fn moved_site_matches_fresh_solver_at_new_sites() {
        let (spec, calib) = paper();
        let (mut sites, droop) = placement_sites(VrPlacement::BelowDie, &calib, 12);
        let mut solver = SharingSolver::new(&spec, &calib, &sites, droop).unwrap();
        solver.solve().unwrap();

        sites[3] = (0, 0);
        solver.move_site(3, 0, 0).unwrap();
        let moved = solver.solve().unwrap();
        let fresh = solve_sharing_at(&spec, &calib, &sites, droop).unwrap();
        for (a, b) in moved.per_vr().iter().zip(fresh.per_vr()) {
            assert!((a.value() - b.value()).abs() < 1e-8, "{a} vs {b}");
        }
    }

    #[test]
    fn opened_module_sheds_its_current_to_the_survivors() {
        let (spec, calib) = paper();
        let (sites, droop) = placement_sites(VrPlacement::BelowDie, &calib, 48);
        let mut solver = SharingSolver::new(&spec, &calib, &sites, droop).unwrap();
        let nominal = solver.solve().unwrap();
        solver.anchor_last();

        solver.set_vr_droop(7, Ohms::new(1e9)).unwrap();
        let faulted = solver.solve().unwrap();
        // The opened module carries (numerically) nothing; the load is
        // conserved across the survivors; the grid sags further.
        assert!(faulted.per_vr()[7].value() < 1e-6);
        let total: f64 = faulted.per_vr().iter().map(|a| a.value()).sum();
        assert!((total - 1000.0).abs() < 0.5, "{total}");
        assert!(faulted.worst_drop().value() > nominal.worst_drop().value());
        assert_eq!(solver.vr_count(), 48);
        assert_eq!(solver.vr_droop(7), Some(Ohms::new(1e9)));

        // Restamp restores the uniform nominal droop.
        solver.restamp(&spec, &calib, droop).unwrap();
        assert_eq!(solver.vr_droop(7), Some(droop));
        let restored = solver.solve().unwrap();
        let total: f64 = restored.per_vr().iter().map(|a| a.value()).sum();
        assert!((total - 1000.0).abs() < 0.5);
        assert!(restored.per_vr()[7].value() > 1.0);
    }

    #[test]
    fn setpoint_drift_and_region_faults_reach_the_mesh() {
        let (spec, calib) = paper();
        let (sites, droop) = placement_sites(VrPlacement::BelowDie, &calib, 12);
        let mut solver = SharingSolver::new(&spec, &calib, &sites, droop).unwrap();
        let nominal = solver.solve().unwrap();

        // A drooped setpoint on one module reduces its share.
        solver
            .set_vr_setpoint(0, Volts::new(solver.setpoint().value() - 0.02))
            .unwrap();
        let drifted = solver.solve().unwrap();
        assert!(drifted.per_vr()[0].value() < nominal.per_vr()[0].value());

        // Degrading a corner patch raises the spreading loss.
        solver.restamp(&spec, &calib, droop).unwrap();
        solver.scale_region_resistance(0, 0, 5, 5, 40.0).unwrap();
        let degraded = solver.solve().unwrap();
        assert!(degraded.grid_loss().value() > nominal.grid_loss().value());
        assert!(solver.last_solve_report().is_some());
    }

    #[test]
    fn direct_mode_matches_warm_cg_sharing() {
        let (spec, calib) = paper();
        let (sites, droop) = placement_sites(VrPlacement::BelowDie, &calib, 24);
        let mut cg = SharingSolver::new(&spec, &calib, &sites, droop).unwrap();
        let mut direct = SharingSolver::new(&spec, &calib, &sites, droop).unwrap();
        assert_eq!(direct.solve_mode(), DcPlanMode::WarmCg);
        direct.set_solve_mode(DcPlanMode::DirectCholesky).unwrap();
        assert_eq!(direct.solve_mode(), DcPlanMode::DirectCholesky);
        let a = cg.solve().unwrap();
        let b = direct.solve().unwrap();
        for (x, y) in a.per_vr().iter().zip(b.per_vr()) {
            assert!((x.value() - y.value()).abs() < 1e-6, "{x} vs {y}");
        }
        assert!((a.worst_drop().value() - b.worst_drop().value()).abs() < 1e-8);
    }

    #[test]
    fn setpoint_block_matches_sequential_solves_bitwise() {
        let (spec, calib) = paper();
        let (sites, droop) = placement_sites(VrPlacement::BelowDie, &calib, 12);
        let sweep: Vec<Volts> = (0..4)
            .map(|i| Volts::new(spec.pol_voltage().value() + 0.01 * i as f64))
            .collect();

        let mut block = SharingSolver::new(&spec, &calib, &sites, droop).unwrap();
        block.set_solve_mode(DcPlanMode::DirectCholesky).unwrap();
        let coalesced = block.solve_setpoints(&sweep).unwrap();

        let mut seq = SharingSolver::new(&spec, &calib, &sites, droop).unwrap();
        seq.set_solve_mode(DcPlanMode::DirectCholesky).unwrap();
        let mut one_at_a_time = Vec::new();
        for &sp in &sweep {
            for k in 0..seq.vr_count() {
                seq.set_vr_setpoint(k, sp).unwrap();
            }
            one_at_a_time.push(seq.solve().unwrap());
        }

        assert_eq!(coalesced, one_at_a_time);
        // A higher rail pushes every node up: referenced to the nominal
        // setpoint, the worst drop shrinks as the sweep rises.
        assert!(coalesced[3].worst_drop().value() < coalesced[0].worst_drop().value());
    }

    #[test]
    fn more_modules_reduce_spreading_loss() {
        let (spec, calib) = paper();
        let few = solve_sharing(&spec, &calib, VrPlacement::BelowDie, 8).unwrap();
        let many = solve_sharing(&spec, &calib, VrPlacement::BelowDie, 48).unwrap();
        assert!(many.grid_loss().value() < few.grid_loss().value());
    }
}
