//! Die-grid current sharing: which regulator supplies how much.
//!
//! The die's 1 V distribution grid is discretized as a 2-D resistive
//! mesh; the power map drives per-node current sinks; every regulator
//! is an ideal setpoint source behind its droop resistance. Solving the
//! mesh (sparse MNA, conjugate gradient) yields the per-module output
//! currents — the quantity behind the paper's observation that A1's
//! periphery modules see 16–27 A while A2's under-die modules see
//! 10–93 A.

use crate::placement::{below_die_sites, periphery_sites, VrPlacement};
use crate::{Calibration, CoreError, SystemSpec};
use vpd_circuit::PowerGrid;
use vpd_units::{Amps, Volts, Watts};

/// Result of a current-sharing solve.
#[derive(Clone, PartialEq, Debug)]
pub struct SharingReport {
    per_vr: Vec<Amps>,
    grid_loss: Watts,
    droop_loss: Watts,
    worst_drop: Volts,
}

impl SharingReport {
    /// Per-module output currents, in site order.
    #[must_use]
    pub fn per_vr(&self) -> &[Amps] {
        &self.per_vr
    }

    /// Smallest module current.
    #[must_use]
    pub fn min(&self) -> Amps {
        self.per_vr.iter().copied().fold(Amps::new(f64::INFINITY), Amps::min)
    }

    /// Largest module current.
    #[must_use]
    pub fn max(&self) -> Amps {
        self.per_vr.iter().copied().fold(Amps::ZERO, Amps::max)
    }

    /// Mean module current.
    #[must_use]
    pub fn mean(&self) -> Amps {
        self.per_vr.iter().copied().sum::<Amps>() / self.per_vr.len() as f64
    }

    /// Power dissipated in the distribution mesh (the on-die/
    /// on-interposer 1 V spreading loss).
    #[must_use]
    pub fn grid_loss(&self) -> Watts {
        self.grid_loss
    }

    /// Power dissipated in the module droop resistances (counted as
    /// conversion-path loss by the architecture analysis).
    #[must_use]
    pub fn droop_loss(&self) -> Watts {
        self.droop_loss
    }

    /// Worst-case IR drop below the regulator setpoint.
    #[must_use]
    pub fn worst_drop(&self) -> Volts {
        self.worst_drop
    }
}

/// Solves current sharing for `n_vrs` modules in the given placement.
///
/// ```
/// use vpd_core::{solve_sharing, Calibration, SystemSpec, VrPlacement};
///
/// # fn main() -> Result<(), vpd_core::CoreError> {
/// let spec = SystemSpec::paper_default();
/// let calib = Calibration::paper_default();
/// let report = solve_sharing(&spec, &calib, VrPlacement::Periphery, 48)?;
/// // 48 modules carry 1 kA between them.
/// let total: f64 = report.per_vr().iter().map(|a| a.value()).sum();
/// assert!((total - 1000.0).abs() < 1.0);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// * [`CoreError::InvalidSpec`] for `n_vrs == 0`.
/// * [`CoreError::Circuit`] if the mesh solve fails.
pub fn solve_sharing(
    spec: &SystemSpec,
    calib: &Calibration,
    placement: VrPlacement,
    n_vrs: usize,
) -> Result<SharingReport, CoreError> {
    if n_vrs == 0 {
        return Err(CoreError::InvalidSpec {
            what: "regulator count",
            value: 0.0,
        });
    }
    let n = calib.grid_nodes_per_side.max(4);
    let mut grid = PowerGrid::new(n, n, calib.grid_sheet_resistance)?;

    let loads = calib
        .power_map
        .node_currents(n, n, spec.pol_current());
    grid.attach_load_profile(|x, y| loads[y][x])?;

    let (sites, droop) = match placement {
        VrPlacement::Periphery => (periphery_sites(n_vrs, n, n), calib.vr_droop_periphery),
        VrPlacement::BelowDie => (below_die_sites(n_vrs, n, n), calib.vr_droop_below_die),
    };
    solve_sharing_at(spec, calib, &sites, droop)
}

/// Solves current sharing for an explicit set of module sites (used by
/// the placement optimizer; [`solve_sharing`] wraps this with the §II
/// canonical patterns).
///
/// # Errors
///
/// As for [`solve_sharing`].
pub fn solve_sharing_at(
    spec: &SystemSpec,
    calib: &Calibration,
    sites: &[(usize, usize)],
    droop: vpd_units::Ohms,
) -> Result<SharingReport, CoreError> {
    if sites.is_empty() {
        return Err(CoreError::InvalidSpec {
            what: "regulator count",
            value: 0.0,
        });
    }
    let n = calib.grid_nodes_per_side.max(4);
    let mut grid = PowerGrid::new(n, n, calib.grid_sheet_resistance)?;
    let loads = calib.power_map.node_currents(n, n, spec.pol_current());
    grid.attach_load_profile(|x, y| loads[y][x])?;
    for &(x, y) in sites {
        grid.attach_regulator(x, y, spec.pol_voltage(), droop)?;
    }
    let sol = grid.solve()?;
    let per_vr = grid.regulator_currents(&sol);
    let droop_loss = per_vr.iter().map(|i| i.dissipation_in(droop)).sum();
    Ok(SharingReport {
        grid_loss: grid.grid_loss(&sol),
        droop_loss,
        worst_drop: grid.worst_ir_drop(&sol, spec.pol_voltage()),
        per_vr,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper() -> (SystemSpec, Calibration) {
        (SystemSpec::paper_default(), Calibration::paper_default())
    }

    #[test]
    fn currents_sum_to_load_either_placement() {
        let (spec, calib) = paper();
        for placement in [VrPlacement::Periphery, VrPlacement::BelowDie] {
            let rep = solve_sharing(&spec, &calib, placement, 48).unwrap();
            let total: f64 = rep.per_vr().iter().map(|a| a.value()).sum();
            assert!((total - 1000.0).abs() < 0.5, "{placement}: {total}");
        }
    }

    #[test]
    fn below_die_spread_is_much_wider_than_periphery() {
        // The paper's §IV contrast: A2's under-die modules span a much
        // broader current range than A1's periphery ring.
        let (spec, calib) = paper();
        let peri = solve_sharing(&spec, &calib, VrPlacement::Periphery, 48).unwrap();
        let below = solve_sharing(&spec, &calib, VrPlacement::BelowDie, 48).unwrap();
        let spread = |r: &SharingReport| r.max().value() / r.min().value();
        assert!(
            spread(&below) > 2.0 * spread(&peri),
            "below {:.1}x vs periphery {:.1}x",
            spread(&below),
            spread(&peri)
        );
    }

    #[test]
    fn paper_a1_band_reproduces() {
        // 16–27 A for 48 periphery modules.
        let (spec, calib) = paper();
        let rep = solve_sharing(&spec, &calib, VrPlacement::Periphery, 48).unwrap();
        let (min, max) = (rep.min().value(), rep.max().value());
        assert!(
            (12.0..=20.0).contains(&min) && (23.0..=32.0).contains(&max),
            "A1 band [{min:.1}, {max:.1}] vs paper [16, 27]"
        );
    }

    #[test]
    fn paper_a2_band_reproduces() {
        // 10–93 A for 48 under-die modules.
        let (spec, calib) = paper();
        let rep = solve_sharing(&spec, &calib, VrPlacement::BelowDie, 48).unwrap();
        let (min, max) = (rep.min().value(), rep.max().value());
        assert!(
            (6.0..=14.0).contains(&min) && (75.0..=110.0).contains(&max),
            "A2 band [{min:.1}, {max:.1}] vs paper [10, 93]"
        );
    }

    #[test]
    fn zero_modules_rejected() {
        let (spec, calib) = paper();
        assert!(matches!(
            solve_sharing(&spec, &calib, VrPlacement::Periphery, 0),
            Err(CoreError::InvalidSpec { .. })
        ));
    }

    #[test]
    fn grid_loss_positive_and_bounded() {
        let (spec, calib) = paper();
        let rep = solve_sharing(&spec, &calib, VrPlacement::Periphery, 48).unwrap();
        assert!(rep.grid_loss().value() > 1.0);
        assert!(rep.grid_loss().value() < 100.0, "{}", rep.grid_loss());
        assert!(rep.worst_drop().value() > 0.0);
        assert!(rep.droop_loss().value() > 0.0);
    }

    #[test]
    fn more_modules_reduce_spreading_loss() {
        let (spec, calib) = paper();
        let few = solve_sharing(&spec, &calib, VrPlacement::BelowDie, 8).unwrap();
        let many = solve_sharing(&spec, &calib, VrPlacement::BelowDie, 48).unwrap();
        assert!(many.grid_loss().value() < few.grid_loss().value());
    }
}
