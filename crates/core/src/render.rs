//! [`Render`] implementations for the crate's report types: one text
//! and one JSON rendering per report, shared by every front end (the
//! `vpd` CLI wraps these with invocation context instead of formatting
//! reports inline).

use crate::droop::DroopReport;
use crate::droopsweep::{DroopSweepComparison, DroopSweepPoint, DroopSweepReport};
use crate::faultdyn::{FaultImpedanceReport, FaultTransientReport, SurvivalEnvelope};
use crate::faults::FaultSweepReport;
use crate::gridshare::SharingReport;
use crate::loss::LossBreakdown;
use crate::mc::McSummary;
use crate::zsweep::{ImpedanceComparison, ImpedanceProfile};
use vpd_report::{Json, Render};

impl Render for SharingReport {
    fn render_text(&self) -> String {
        format!(
            "{:.1} – {:.1} A (mean {:.1} A), grid loss {}, droop loss {}, worst drop {}\n",
            self.min().value(),
            self.max().value(),
            self.mean().value(),
            self.grid_loss(),
            self.droop_loss(),
            self.worst_drop(),
        )
    }

    fn render_json(&self) -> Json {
        Json::obj([
            ("modules", Json::from(self.per_vr().len())),
            ("min_a", Json::from(self.min().value())),
            ("max_a", Json::from(self.max().value())),
            ("mean_a", Json::from(self.mean().value())),
            ("grid_loss_w", Json::from(self.grid_loss().value())),
            ("droop_loss_w", Json::from(self.droop_loss().value())),
            ("worst_drop_v", Json::from(self.worst_drop().value())),
            (
                "per_vr_a",
                Json::array(self.per_vr().iter().map(|a| Json::from(a.value()))),
            ),
        ])
    }
}

impl Render for DroopReport {
    fn render_text(&self) -> String {
        format!(
            "rail drops by {} from {} to {} (bound ΔI·|Z|max = {})\n",
            self.droop, self.v_before, self.v_min, self.impedance_bound,
        )
    }

    fn render_json(&self) -> Json {
        Json::obj([
            ("v_before_v", Json::from(self.v_before.value())),
            ("v_min_v", Json::from(self.v_min.value())),
            ("droop_v", Json::from(self.droop.value())),
            (
                "impedance_bound_v",
                Json::from(self.impedance_bound.value()),
            ),
        ])
    }
}

fn sweep_point_json(p: &DroopSweepPoint) -> Json {
    Json::obj([
        ("after_a", Json::from(p.after.value())),
        ("rise_s", Json::from(p.rise.value())),
        ("v_before_v", Json::from(p.v_before.value())),
        ("v_min_v", Json::from(p.v_min.value())),
        ("droop_v", Json::from(p.droop.value())),
        ("settle_s", Json::from(p.settle.value())),
        ("violates", Json::from(p.violates)),
    ])
}

impl Render for DroopSweepReport {
    fn render_text(&self) -> String {
        let mut out = format!(
            "{}: {} points (base {:.0} A, transient at {}, budget {})\n",
            self.label,
            self.points.len(),
            self.base.value(),
            self.at,
            self.budget,
        );
        if let Some(w) = self.worst_droop() {
            out.push_str(&format!(
                "  worst droop:  {} at {:.0} A / rise {}\n",
                w.droop,
                w.after.value(),
                w.rise,
            ));
        }
        if let Some(w) = self.worst_settle() {
            out.push_str(&format!(
                "  worst settle: {} at {:.0} A / rise {}\n",
                w.settle,
                w.after.value(),
                w.rise,
            ));
        }
        match self.first_violation() {
            None => out.push_str("  verdict:      meets budget at every point\n"),
            Some(v) => out.push_str(&format!(
                "  verdict:      VIOLATES budget from {:.0} A / rise {} (droop {})\n",
                v.after.value(),
                v.rise,
                v.droop,
            )),
        }
        out.push_str(&format!(
            "  {:>10}  {:>12}  {:>12}  {:>12}  {}\n",
            "after (A)", "rise", "droop (V)", "settle", "budget"
        ));
        for p in &self.points {
            out.push_str(&format!(
                "  {:>10.0}  {:>12}  {:>12.6}  {:>12}  {}\n",
                p.after.value(),
                p.rise.to_string(),
                p.droop.value(),
                p.settle.to_string(),
                if p.violates { "violates" } else { "meets" },
            ));
        }
        out
    }

    fn render_json(&self) -> Json {
        Json::obj([
            ("label", Json::from(self.label.as_str())),
            ("points", Json::from(self.points.len())),
            ("base_a", Json::from(self.base.value())),
            ("at_s", Json::from(self.at.value())),
            ("budget_v", Json::from(self.budget.value())),
            (
                "impedance_peak_ohm",
                Json::from(self.impedance_peak.value()),
            ),
            ("meets_budget", Json::from(self.meets_budget())),
            (
                "worst_droop",
                self.worst_droop().map_or(Json::Null, sweep_point_json),
            ),
            (
                "worst_settle",
                self.worst_settle().map_or(Json::Null, sweep_point_json),
            ),
            (
                "first_violation",
                self.first_violation().map_or(Json::Null, sweep_point_json),
            ),
            (
                "grid",
                Json::array(self.points.iter().map(sweep_point_json)),
            ),
        ])
    }
}

impl Render for DroopSweepComparison {
    fn render_text(&self) -> String {
        let mut out = format!(
            "  {:<6} {:>12} {:>14} {:>10} {}\n",
            "arch", "worst droop", "worst settle", "budget", "verdict"
        );
        for r in &self.reports {
            out.push_str(&format!(
                "  {:<6} {:>12} {:>14} {:>10} {}\n",
                r.label,
                r.worst_droop()
                    .map_or_else(|| "n/a".into(), |p| p.droop.to_string()),
                r.worst_settle()
                    .map_or_else(|| "n/a".into(), |p| p.settle.to_string()),
                r.budget.to_string(),
                if r.meets_budget() {
                    "meets"
                } else {
                    "violates"
                },
            ));
        }
        out
    }

    fn render_json(&self) -> Json {
        Json::obj([(
            "architectures",
            Json::array(self.reports.iter().map(Render::render_json)),
        )])
    }
}

impl Render for LossBreakdown {
    fn render_text(&self) -> String {
        let mut out = String::new();
        for s in self.segments() {
            out.push_str(&format!(
                "  {:<28} {:>9.2} W ({:>5.2}%)\n",
                s.name,
                s.power.value(),
                self.percent_of_pol_power(s.power)
            ));
        }
        out.push_str(&format!(
            "  total {:.1}% of POL power — efficiency {}\n",
            self.percent_of_pol_power(self.total()),
            self.end_to_end_efficiency()
        ));
        out
    }

    fn render_json(&self) -> Json {
        Json::obj([
            ("pol_power_w", Json::from(self.pol_power().value())),
            ("total_loss_w", Json::from(self.total().value())),
            (
                "total_loss_percent",
                Json::from(self.percent_of_pol_power(self.total())),
            ),
            (
                "efficiency",
                Json::from(self.end_to_end_efficiency().fraction()),
            ),
            (
                "segments",
                Json::array(self.segments().iter().map(|s| {
                    Json::obj([
                        ("name", Json::from(s.name.as_str())),
                        ("power_w", Json::from(s.power.value())),
                        ("percent", Json::from(self.percent_of_pol_power(s.power))),
                    ])
                })),
            ),
        ])
    }
}

impl Render for McSummary {
    fn render_text(&self) -> String {
        format!(
            "loss {:.2}% ± {:.2}% (min {:.2}%, p5 {:.2}%, p95 {:.2}%, max {:.2}%)\n",
            self.mean, self.std_dev, self.min, self.p5, self.p95, self.max,
        )
    }

    fn render_json(&self) -> Json {
        Json::obj([
            ("mean_percent", Json::from(self.mean)),
            ("std_dev_percent", Json::from(self.std_dev)),
            ("min_percent", Json::from(self.min)),
            ("p5_percent", Json::from(self.p5)),
            ("p95_percent", Json::from(self.p95)),
            ("max_percent", Json::from(self.max)),
        ])
    }
}

impl Render for FaultSweepReport {
    fn render_text(&self) -> String {
        let mut out = format!(
            "  faulted:  worst drop {} ({}), max spread {:.2}x, worst surviving module {:.1} A\n",
            self.worst_drop,
            self.worst_scenario,
            self.max_spread,
            self.worst_surviving_current.value(),
        );
        match (self.rating, self.margin()) {
            (Some(rating), Some(margin)) => out.push_str(&format!(
                "  rating:   {:.0} A per module → margin {:+.1}% ({} / {} scenarios overloaded)\n",
                rating.value(),
                100.0 * margin,
                self.overloaded_scenarios,
                self.outcomes.len(),
            )),
            _ => out.push_str("  rating:   n/a (passive entry clusters)\n"),
        }
        out.push_str(&format!(
            "  solver:   {} / {} scenarios needed a fallback, {} stagnated\n",
            self.fallback_count,
            self.outcomes.len(),
            self.stagnation_count,
        ));
        out
    }

    fn render_json(&self) -> Json {
        Json::obj([
            ("architecture", Json::from(self.architecture.name())),
            ("scenarios", Json::from(self.outcomes.len())),
            ("worst_drop_v", Json::from(self.worst_drop.value())),
            ("worst_scenario", Json::from(self.worst_scenario.as_str())),
            ("max_spread", Json::from(self.max_spread)),
            (
                "worst_surviving_a",
                Json::from(self.worst_surviving_current.value()),
            ),
            (
                "rating_a",
                self.rating.map_or(Json::Null, |r| Json::from(r.value())),
            ),
            ("margin", self.margin().map_or(Json::Null, Json::from)),
            ("fallback_count", Json::from(self.fallback_count)),
            ("stagnation_count", Json::from(self.stagnation_count)),
            (
                "overloaded_scenarios",
                Json::from(self.overloaded_scenarios),
            ),
        ])
    }
}

impl Render for ImpedanceProfile {
    fn render_text(&self) -> String {
        let mut out = format!(
            "{}: {} points, peak {} at {}, target {} → ",
            self.label,
            self.points.len(),
            self.peak,
            self.peak_frequency,
            self.target,
        );
        let margin = self
            .margin()
            .map_or_else(|| "n/a".to_owned(), |m| format!("{:+.1}%", 100.0 * m));
        match self.first_violation {
            None => out.push_str(&format!("meets target (margin {margin})\n")),
            Some(f) => out.push_str(&format!("VIOLATES target from {f} (margin {margin})\n")),
        }
        if !self.antiresonances.is_empty() {
            out.push_str("  antiresonant peaks:\n");
            for p in &self.antiresonances {
                out.push_str(&format!(
                    "    {:>14}  |Z| {:>12.6e} Ω\n",
                    p.frequency.to_string(),
                    p.magnitude()
                ));
            }
        }
        out.push_str(&format!(
            "  {:>14}  {:>12}  {:>8}\n",
            "frequency", "|Z| (Ω)", "∠Z (°)"
        ));
        for p in &self.points {
            out.push_str(&format!(
                "  {:>14}  {:>12.6e}  {:>8.2}\n",
                p.frequency.to_string(),
                p.magnitude(),
                p.phase_degrees()
            ));
        }
        out
    }

    fn render_json(&self) -> Json {
        Json::obj([
            ("label", Json::from(self.label.as_str())),
            ("points", Json::from(self.points.len())),
            ("target_ohm", Json::from(self.target.value())),
            ("peak_ohm", Json::from(self.peak.value())),
            ("peak_frequency_hz", Json::from(self.peak_frequency.value())),
            ("margin", self.margin().map_or(Json::Null, Json::from)),
            ("meets_target", Json::from(self.meets_target())),
            (
                "first_violation_hz",
                self.first_violation
                    .map_or(Json::Null, |f| Json::from(f.value())),
            ),
            (
                "antiresonances",
                Json::array(self.antiresonances.iter().map(|p| {
                    Json::obj([
                        ("frequency_hz", Json::from(p.frequency.value())),
                        ("magnitude_ohm", Json::from(p.magnitude())),
                    ])
                })),
            ),
            (
                "profile",
                Json::array(self.points.iter().map(|p| {
                    Json::obj([
                        ("frequency_hz", Json::from(p.frequency.value())),
                        ("magnitude_ohm", Json::from(p.magnitude())),
                        ("phase_deg", Json::from(p.phase_degrees())),
                    ])
                })),
            ),
        ])
    }
}

impl Render for ImpedanceComparison {
    fn render_text(&self) -> String {
        let mut out = format!(
            "  {:<6} {:>14} {:>16} {:>12} {:>9} {}\n",
            "arch", "peak |Z| (Ω)", "at", "target (Ω)", "margin", "verdict"
        );
        for p in &self.profiles {
            out.push_str(&format!(
                "  {:<6} {:>14.6e} {:>16} {:>12.6e} {:>8}% {}\n",
                p.label,
                p.peak.value(),
                p.peak_frequency.to_string(),
                p.target.value(),
                p.margin()
                    .map_or_else(|| "n/a".to_owned(), |m| format!("{:.1}", 100.0 * m)),
                if p.meets_target() {
                    "meets"
                } else {
                    "violates"
                },
            ));
        }
        out
    }

    fn render_json(&self) -> Json {
        Json::obj([(
            "architectures",
            Json::array(self.profiles.iter().map(|p| {
                Json::obj([
                    ("label", Json::from(p.label.as_str())),
                    ("peak_ohm", Json::from(p.peak.value())),
                    ("peak_frequency_hz", Json::from(p.peak_frequency.value())),
                    ("target_ohm", Json::from(p.target.value())),
                    ("margin", p.margin().map_or(Json::Null, Json::from)),
                    ("meets_target", Json::from(p.meets_target())),
                    (
                        "first_violation_hz",
                        p.first_violation
                            .map_or(Json::Null, |f| Json::from(f.value())),
                    ),
                ])
            })),
        )])
    }
}

impl Render for FaultImpedanceReport {
    fn render_text(&self) -> String {
        let mut out = format!(
            "{}: target {}, nominal peak {}, worst faulted peak {} ({}) → {} / {} scenarios over target\n",
            self.architecture.name(),
            self.target,
            self.nominal_peak,
            self.worst_peak,
            self.worst_scenario,
            self.violating_scenarios,
            self.outcomes.len(),
        );
        out.push_str(&format!(
            "  {:<14} {:>14} {:>16} {:>9} {}\n",
            "scenario", "peak |Z| (Ω)", "at", "excess", "verdict"
        ));
        for o in &self.outcomes {
            out.push_str(&format!(
                "  {:<14} {:>14.6e} {:>16} {:>+8.1}% {}\n",
                o.name,
                o.peak.value(),
                o.peak_frequency.to_string(),
                100.0 * o.excess,
                if o.over_target { "VIOLATES" } else { "meets" },
            ));
        }
        out
    }

    fn render_json(&self) -> Json {
        Json::obj([
            ("architecture", Json::from(self.architecture.name())),
            ("target_ohm", Json::from(self.target.value())),
            ("nominal_peak_ohm", Json::from(self.nominal_peak.value())),
            ("worst_peak_ohm", Json::from(self.worst_peak.value())),
            ("worst_scenario", Json::from(self.worst_scenario.as_str())),
            ("worst_excess", Json::from(self.worst_excess())),
            ("violating_scenarios", Json::from(self.violating_scenarios)),
            (
                "outcomes",
                Json::array(self.outcomes.iter().map(|o| {
                    Json::obj([
                        ("name", Json::from(o.name.as_str())),
                        ("peak_ohm", Json::from(o.peak.value())),
                        ("peak_frequency_hz", Json::from(o.peak_frequency.value())),
                        (
                            "first_violation_hz",
                            o.first_violation
                                .map_or(Json::Null, |f| Json::from(f.value())),
                        ),
                        ("over_target", Json::from(o.over_target)),
                        ("excess", Json::from(o.excess)),
                    ])
                })),
            ),
        ])
    }
}

impl Render for FaultTransientReport {
    fn render_text(&self) -> String {
        let mut out = format!(
            "{}: worst droop {} ({}), {} / {} scenarios collapsed the rail\n",
            self.architecture.name(),
            self.worst_droop,
            self.worst_scenario,
            self.collapsed_scenarios,
            self.outcomes.len(),
        );
        out.push_str(&format!(
            "  {:<14} {:>12} {:>10} {:>10} {:>10} {:>10} {}\n",
            "scenario", "fail at", "v_before", "v_min", "droop", "v_end", "verdict"
        ));
        for o in &self.outcomes {
            out.push_str(&format!(
                "  {:<14} {:>12} {:>9.4}V {:>9.4}V {:>9.4}V {:>9.4}V {}\n",
                o.name,
                o.fail_at
                    .map_or_else(|| "never".to_owned(), |f| f.to_string()),
                o.v_before.value(),
                o.v_min.value(),
                o.droop.value(),
                o.v_end.value(),
                if o.collapsed { "COLLAPSED" } else { "held" },
            ));
        }
        out
    }

    fn render_json(&self) -> Json {
        Json::obj([
            ("architecture", Json::from(self.architecture.name())),
            ("worst_droop_v", Json::from(self.worst_droop.value())),
            ("worst_scenario", Json::from(self.worst_scenario.as_str())),
            ("collapsed_scenarios", Json::from(self.collapsed_scenarios)),
            (
                "outcomes",
                Json::array(self.outcomes.iter().map(|o| {
                    Json::obj([
                        ("name", Json::from(o.name.as_str())),
                        (
                            "fail_at_s",
                            o.fail_at.map_or(Json::Null, |f| Json::from(f.value())),
                        ),
                        ("v_before_v", Json::from(o.v_before.value())),
                        ("v_min_v", Json::from(o.v_min.value())),
                        ("droop_v", Json::from(o.droop.value())),
                        ("v_end_v", Json::from(o.v_end.value())),
                        ("collapsed", Json::from(o.collapsed)),
                    ])
                })),
            ),
        ])
    }
}

impl Render for SurvivalEnvelope {
    fn render_text(&self) -> String {
        let mut out = format!(
            "{}: {} — {} converged / {} capped / {} diverged over {} scenarios\n",
            self.architecture.name(),
            if self.survives {
                "SURVIVES its contingency set"
            } else {
                "does NOT survive its contingency set"
            },
            self.converged,
            self.capped,
            self.diverged,
            self.outcomes.len(),
        );
        out.push_str(&format!(
            "  worst drop {} ({}) against budget {}, peak {} ({})\n",
            self.worst_drop,
            self.worst_drop_scenario,
            self.droop_budget,
            self.peak_temperature,
            self.peak_temperature_scenario,
        ));
        out.push_str(&format!(
            "  {:<14} {:>5} {:>10} {:>9} {:>9} {:>8} {:>7} {}\n",
            "scenario", "iters", "drop", "peak", "module", "derated", "rating", "verdict"
        ));
        for o in &self.outcomes {
            out.push_str(&format!(
                "  {:<14} {:>5} {:>9.4}V {:>8.1}°C {:>8.1}°C {:>8} {:>7} {}\n",
                o.name,
                o.iterations,
                o.worst_drop.value(),
                o.peak_temperature.value(),
                o.worst_module_temperature.value(),
                o.derated_modules,
                if o.within_rating { "ok" } else { "OVER" },
                o.termination,
            ));
        }
        out
    }

    fn render_json(&self) -> Json {
        Json::obj([
            ("architecture", Json::from(self.architecture.name())),
            ("survives", Json::from(self.survives)),
            ("droop_budget_v", Json::from(self.droop_budget.value())),
            ("scenarios", Json::from(self.outcomes.len())),
            ("converged", Json::from(self.converged)),
            ("capped", Json::from(self.capped)),
            ("diverged", Json::from(self.diverged)),
            ("worst_drop_v", Json::from(self.worst_drop.value())),
            (
                "worst_drop_scenario",
                Json::from(self.worst_drop_scenario.as_str()),
            ),
            (
                "peak_temperature_c",
                Json::from(self.peak_temperature.value()),
            ),
            (
                "peak_temperature_scenario",
                Json::from(self.peak_temperature_scenario.as_str()),
            ),
            (
                "overloaded_scenarios",
                Json::from(self.overloaded_scenarios),
            ),
            (
                "outcomes",
                Json::array(self.outcomes.iter().map(|o| {
                    Json::obj([
                        ("name", Json::from(o.name.as_str())),
                        ("termination", Json::from(o.termination.to_string())),
                        ("converged", Json::from(o.termination.converged())),
                        ("residual_k", Json::from(o.termination.residual_k())),
                        ("iterations", Json::from(o.iterations)),
                        ("worst_drop_v", Json::from(o.worst_drop.value())),
                        ("peak_temperature_c", Json::from(o.peak_temperature.value())),
                        (
                            "worst_module_temperature_c",
                            Json::from(o.worst_module_temperature.value()),
                        ),
                        ("derated_modules", Json::from(o.derated_modules)),
                        ("overloaded_modules", Json::from(o.overloaded_modules)),
                        ("within_rating", Json::from(o.within_rating)),
                    ])
                })),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{solve_sharing, Calibration, SystemSpec, VrPlacement};
    use vpd_report::RenderFormat;

    #[test]
    fn sharing_report_renders_both_formats() {
        let rep = solve_sharing(
            &SystemSpec::paper_default(),
            &Calibration::paper_default(),
            VrPlacement::Periphery,
            48,
        )
        .unwrap();
        let text = rep.render(RenderFormat::Text);
        assert!(text.contains("mean"), "{text}");
        let json = rep.render(RenderFormat::Json);
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"per_vr_a\":["), "{json}");
        match rep.render_json() {
            Json::Object(pairs) => {
                assert_eq!(pairs[0].0, "modules");
                assert!(matches!(pairs[0].1, Json::Int(48)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn mc_summary_json_lists_every_statistic() {
        let s = McSummary {
            mean: 20.0,
            std_dev: 1.0,
            min: 18.0,
            max: 22.0,
            p5: 18.5,
            p95: 21.5,
        };
        let json = s.render_json().to_string();
        for key in [
            "mean_percent",
            "std_dev_percent",
            "min_percent",
            "p5_percent",
            "p95_percent",
            "max_percent",
        ] {
            assert!(json.contains(key), "{json} missing {key}");
        }
        assert!(s.render_text().contains("20.00%"));
    }

    #[test]
    fn droop_sweep_report_renders_worst_cases_and_grid() {
        use crate::{compare_droop_architectures, Architecture, DroopSweepSettings};
        use vpd_units::Seconds;
        let spec = SystemSpec::paper_default();
        let cmp = compare_droop_architectures(
            &[Architecture::Reference, Architecture::InterposerEmbedded],
            &spec,
            Seconds::from_microseconds(20.0),
            Seconds::from_nanoseconds(100.0),
            &DroopSweepSettings::paper_default(&spec, 2, 2).unwrap(),
        )
        .unwrap();
        let a0 = &cmp.reports[0];
        let text = a0.render(RenderFormat::Text);
        assert!(text.contains("worst droop"), "{text}");
        assert!(text.contains("VIOLATES budget"), "{text}");
        assert_eq!(
            text.lines().count(),
            // header + worst droop + worst settle + verdict + column
            // header + one row per point
            5 + a0.points.len(),
            "{text}"
        );
        let json = a0.render(RenderFormat::Json);
        assert!(json.contains("\"meets_budget\":false"), "{json}");
        assert!(json.contains("\"grid\":["), "{json}");
        assert!(json.contains("\"worst_droop\":{"), "{json}");

        let a2 = &cmp.reports[1];
        assert!(a2.render_text().contains("meets budget"));
        assert!(a2
            .render_json()
            .to_string()
            .contains("\"first_violation\":null"));

        let cmp_text = cmp.render(RenderFormat::Text);
        assert!(
            cmp_text.contains("A0") && cmp_text.contains("A2"),
            "{cmp_text}"
        );
        let cmp_json = cmp.render(RenderFormat::Json);
        assert!(cmp_json.contains("\"architectures\":["), "{cmp_json}");
    }

    #[test]
    fn fault_dynamic_reports_render_both_formats() {
        use crate::faultdyn::{
            CascadeOutcome, FaultImpedanceOutcome, FaultImpedanceReport, FaultTransientOutcome,
            FaultTransientReport, SurvivalEnvelope,
        };
        use crate::{Architecture, FixedPointTermination, LoadStep};
        use vpd_units::{Celsius, Hertz, Ohms, Seconds, Volts};

        let imp = FaultImpedanceReport {
            architecture: Architecture::InterposerEmbedded,
            target: Ohms::new(200e-6),
            nominal_peak: Ohms::new(150e-6),
            outcomes: vec![
                FaultImpedanceOutcome {
                    name: "nominal".into(),
                    peak: Ohms::new(150e-6),
                    peak_frequency: Hertz::from_megahertz(1.0),
                    first_violation: None,
                    over_target: false,
                    excess: -0.25,
                },
                FaultImpedanceOutcome {
                    name: "n-1/000".into(),
                    peak: Ohms::new(230e-6),
                    peak_frequency: Hertz::from_megahertz(0.8),
                    first_violation: Some(Hertz::from_kilohertz(600.0)),
                    over_target: true,
                    excess: 0.15,
                },
            ],
            worst_peak: Ohms::new(230e-6),
            worst_scenario: "n-1/000".into(),
            violating_scenarios: 1,
        };
        let text = imp.render(RenderFormat::Text);
        assert!(text.contains("1 / 2 scenarios over target"), "{text}");
        assert!(
            text.contains("VIOLATES") && text.contains("meets"),
            "{text}"
        );
        let json = imp.render(RenderFormat::Json);
        assert!(json.contains("\"violating_scenarios\":1"), "{json}");
        assert!(json.contains("\"first_violation_hz\":null"), "{json}");
        assert!(json.contains("\"worst_scenario\":\"n-1/000\""), "{json}");

        let tr = FaultTransientReport {
            architecture: Architecture::InterposerEmbedded,
            step: LoadStep::paper_default(&SystemSpec::paper_default()),
            outcomes: vec![
                FaultTransientOutcome {
                    name: "nominal".into(),
                    fail_at: None,
                    v_before: Volts::new(0.999),
                    v_min: Volts::new(0.96),
                    droop: Volts::new(0.039),
                    v_end: Volts::new(0.998),
                    collapsed: false,
                },
                FaultTransientOutcome {
                    name: "fail@4.00us".into(),
                    fail_at: Some(Seconds::from_microseconds(4.0)),
                    v_before: Volts::new(0.999),
                    v_min: Volts::new(0.1),
                    droop: Volts::new(0.899),
                    v_end: Volts::new(0.1),
                    collapsed: true,
                },
            ],
            worst_droop: Volts::new(0.899),
            worst_scenario: "fail@4.00us".into(),
            collapsed_scenarios: 1,
        };
        let text = tr.render(RenderFormat::Text);
        assert!(text.contains("1 / 2 scenarios collapsed"), "{text}");
        assert!(
            text.contains("COLLAPSED") && text.contains("held"),
            "{text}"
        );
        assert!(text.contains("never"), "{text}");
        let json = tr.render(RenderFormat::Json);
        assert!(json.contains("\"fail_at_s\":null"), "{json}");
        assert!(json.contains("\"collapsed_scenarios\":1"), "{json}");

        let env = SurvivalEnvelope {
            architecture: Architecture::InterposerPeriphery,
            droop_budget: Volts::new(0.05),
            outcomes: vec![
                CascadeOutcome {
                    name: "n-1/000".into(),
                    termination: FixedPointTermination::Converged { residual_k: 0.01 },
                    iterations: 3,
                    worst_drop: Volts::new(0.02),
                    peak_temperature: Celsius::new(96.0),
                    worst_module_temperature: Celsius::new(88.0),
                    derated_modules: 5,
                    overloaded_modules: 0,
                    within_rating: true,
                },
                CascadeOutcome {
                    name: "n-1/001".into(),
                    termination: FixedPointTermination::IterationCap { residual_k: 2.0 },
                    iterations: 16,
                    worst_drop: Volts::new(0.06),
                    peak_temperature: Celsius::new(140.0),
                    worst_module_temperature: Celsius::new(131.0),
                    derated_modules: 12,
                    overloaded_modules: 2,
                    within_rating: false,
                },
            ],
            converged: 1,
            capped: 1,
            diverged: 0,
            worst_drop: Volts::new(0.06),
            worst_drop_scenario: "n-1/001".into(),
            peak_temperature: Celsius::new(140.0),
            peak_temperature_scenario: "n-1/001".into(),
            overloaded_scenarios: 1,
            survives: false,
        };
        let text = env.render(RenderFormat::Text);
        assert!(text.contains("does NOT survive"), "{text}");
        assert!(
            text.contains("1 converged / 1 capped / 0 diverged"),
            "{text}"
        );
        assert!(text.contains("iteration cap"), "{text}");
        let json = env.render(RenderFormat::Json);
        assert!(json.contains("\"survives\":false"), "{json}");
        assert!(json.contains("\"converged\":1"), "{json}");
        assert!(json.contains("\"overloaded_scenarios\":1"), "{json}");

        let survives = SurvivalEnvelope {
            outcomes: vec![env.outcomes[0].clone()],
            converged: 1,
            capped: 0,
            worst_drop: Volts::new(0.02),
            worst_drop_scenario: "n-1/000".into(),
            peak_temperature: Celsius::new(96.0),
            peak_temperature_scenario: "n-1/000".into(),
            overloaded_scenarios: 0,
            survives: true,
            ..env
        };
        assert!(survives
            .render_text()
            .contains("SURVIVES its contingency set"));
    }

    #[test]
    fn impedance_profile_renders_points_and_verdict() {
        use crate::{compare_architectures, Architecture, ImpedanceSweepSettings};
        let spec = SystemSpec::paper_default();
        let settings = ImpedanceSweepSettings {
            points: 24,
            ..ImpedanceSweepSettings::default()
        };
        let cmp = compare_architectures(
            &[Architecture::Reference, Architecture::InterposerEmbedded],
            &spec,
            &settings,
        )
        .unwrap();
        let a0 = &cmp.profiles[0];
        let text = a0.render(RenderFormat::Text);
        assert!(text.contains("VIOLATES target"), "{text}");
        assert!(text.contains("frequency"), "{text}");
        assert_eq!(
            text.lines().count(),
            // header + antiresonance block + column header + one row per point
            2 + a0.antiresonances.len() + 1 + a0.points.len(),
            "{text}"
        );
        let json = a0.render(RenderFormat::Json);
        assert!(json.contains("\"meets_target\":false"), "{json}");
        assert!(json.contains("\"profile\":["), "{json}");

        let a2 = &cmp.profiles[1];
        assert!(a2.render_text().contains("meets target"));
        assert!(a2
            .render_json()
            .to_string()
            .contains("\"first_violation_hz\":null"));

        let cmp_text = cmp.render(RenderFormat::Text);
        assert!(
            cmp_text.contains("A0") && cmp_text.contains("A2"),
            "{cmp_text}"
        );
        assert!(cmp_text.contains("violates") && cmp_text.contains("meets"));
        let cmp_json = cmp.render(RenderFormat::Json);
        assert!(cmp_json.contains("\"architectures\":["), "{cmp_json}");
    }
}
