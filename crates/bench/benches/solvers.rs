//! Criterion benchmarks for the numeric and circuit substrates: dense
//! LU vs. Cholesky, sparse CG scaling, and full power-grid MNA solves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vpd_circuit::PowerGrid;
use vpd_numeric::{
    conjugate_gradient, CgSettings, CholeskyFactor, CooMatrix, DenseMatrix, LuFactor,
};
use vpd_units::{Amps, Ohms, Volts};

/// A well-conditioned SPD test matrix (grounded chain Laplacian).
fn spd_dense(n: usize) -> DenseMatrix {
    DenseMatrix::from_fn(n, n, |i, j| {
        if i == j {
            2.2
        } else if i.abs_diff(j) == 1 {
            -1.0
        } else {
            0.0
        }
    })
}

fn spd_sparse(n: usize) -> vpd_numeric::CsrMatrix {
    let mut coo = CooMatrix::new(n, n);
    for i in 0..n {
        coo.push(i, i, 2.2);
        if i + 1 < n {
            coo.push(i, i + 1, -1.0);
            coo.push(i + 1, i, -1.0);
        }
    }
    coo.to_csr()
}

fn bench_dense_factorizations(c: &mut Criterion) {
    let mut group = c.benchmark_group("dense_factor_and_solve");
    for n in [16usize, 64, 128] {
        let a = spd_dense(n);
        let b = vec![1.0; n];
        group.bench_with_input(BenchmarkId::new("lu", n), &n, |bench, _| {
            bench.iter(|| {
                let lu = LuFactor::new(&a).unwrap();
                lu.solve(&b).unwrap()
            });
        });
        group.bench_with_input(BenchmarkId::new("cholesky", n), &n, |bench, _| {
            bench.iter(|| {
                let ch = CholeskyFactor::new(&a).unwrap();
                ch.solve(&b).unwrap()
            });
        });
    }
    group.finish();
}

fn bench_sparse_cg(c: &mut Criterion) {
    let mut group = c.benchmark_group("sparse_cg_chain");
    for n in [400usize, 1600, 6400] {
        let a = spd_sparse(n);
        let b = vec![1.0; n];
        let settings = CgSettings::default();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| conjugate_gradient(&a, &b, &settings).unwrap());
        });
    }
    group.finish();
}

fn bench_power_grid_solve(c: &mut Criterion) {
    let mut group = c.benchmark_group("power_grid_mna_solve");
    for side in [15usize, 25, 35] {
        group.bench_with_input(BenchmarkId::from_parameter(side), &side, |bench, &side| {
            bench.iter(|| {
                let mut grid = PowerGrid::new(side, side, Ohms::from_milliohms(0.3)).unwrap();
                grid.attach_uniform_load(Amps::from_kiloamps(1.0)).unwrap();
                for k in 0..8 {
                    let x = (k % 4) * (side - 1) / 3;
                    let y = (k / 4) * (side - 1);
                    grid.attach_regulator(x, y, Volts::new(1.0), Ohms::from_milliohms(1.0))
                        .unwrap();
                }
                grid.solve().unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_dense_factorizations,
    bench_sparse_cg,
    bench_power_grid_solve
);
criterion_main!(benches);
