//! Criterion benchmarks for the paper-level pipelines: efficiency-curve
//! evaluation, current-sharing solves, full architecture analyses (one
//! Figure 7 bar and the whole figure), Monte-Carlo sampling, and a
//! switched-converter transient.

use criterion::{criterion_group, criterion_main, Criterion};
use vpd_circuit::{transient, Netlist, PwmSchedule, SwitchState, TransientSettings};
use vpd_converters::{Converter, VrTopologyKind};
use vpd_core::{
    analyze, explore_matrix, run_tolerance, solve_sharing, AnalysisOptions, Architecture,
    Calibration, McSettings, SystemSpec, VrPlacement,
};
use vpd_units::{Amps, Farads, Henries, Hertz, Ohms, Seconds, Volts};

fn env() -> (SystemSpec, Calibration, AnalysisOptions) {
    (
        SystemSpec::paper_default(),
        Calibration::paper_default(),
        AnalysisOptions::default(),
    )
}

fn bench_efficiency_curve(c: &mut Criterion) {
    let conv = Converter::dpmih_48v_to_1v();
    c.bench_function("efficiency_curve_eval_100_points", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for k in 1..=100 {
                acc += conv.efficiency(Amps::new(k as f64)).unwrap().fraction();
            }
            acc
        });
    });
}

fn bench_sharing(c: &mut Criterion) {
    let (spec, calib, _) = env();
    c.bench_function("current_sharing_periphery_48", |b| {
        b.iter(|| solve_sharing(&spec, &calib, VrPlacement::Periphery, 48).unwrap());
    });
    c.bench_function("current_sharing_below_die_48", |b| {
        b.iter(|| solve_sharing(&spec, &calib, VrPlacement::BelowDie, 48).unwrap());
    });
}

fn bench_analysis(c: &mut Criterion) {
    let (spec, calib, opts) = env();
    c.bench_function("analyze_a1_dsch_one_bar", |b| {
        b.iter(|| {
            analyze(
                Architecture::InterposerPeriphery,
                VrTopologyKind::Dsch,
                &spec,
                &calib,
                &opts,
            )
            .unwrap()
        });
    });
    c.bench_function("figure7_full_matrix", |b| {
        b.iter(|| {
            explore_matrix(
                &[VrTopologyKind::Dpmih, VrTopologyKind::Dsch],
                &spec,
                &calib,
                &opts,
            )
        });
    });
}

fn bench_monte_carlo(c: &mut Criterion) {
    let (spec, calib, _) = env();
    let settings = McSettings {
        samples: 10,
        ..McSettings::default()
    };
    c.bench_function("monte_carlo_10_samples_a1", |b| {
        b.iter(|| {
            run_tolerance(
                Architecture::InterposerPeriphery,
                VrTopologyKind::Dsch,
                &spec,
                &calib,
                &settings,
            )
            .unwrap()
        });
    });
}

fn bench_transient_buck(c: &mut Criterion) {
    // A synchronous buck phase: 2000 backward-Euler steps with a cached
    // LU per switch configuration.
    let mut net = Netlist::new();
    let vin = net.node("vin");
    let sw = net.node("sw");
    let out = net.node("out");
    net.voltage_source(vin, net.ground(), Volts::new(12.0))
        .unwrap();
    let f = Hertz::from_megahertz(1.0);
    let pwm = PwmSchedule::new(f, 1.0 / 12.0, 0.0).unwrap();
    net.switch(
        vin,
        sw,
        Ohms::from_milliohms(5.0),
        Ohms::new(1e6),
        Some(pwm),
        SwitchState::Off,
    )
    .unwrap();
    net.switch(
        sw,
        net.ground(),
        Ohms::from_milliohms(5.0),
        Ohms::new(1e6),
        Some(pwm.complementary()),
        SwitchState::On,
    )
    .unwrap();
    net.inductor(sw, out, Henries::from_nanohenries(220.0), Amps::ZERO)
        .unwrap();
    net.capacitor(
        out,
        net.ground(),
        Farads::from_microfarads(10.0),
        Volts::ZERO,
    )
    .unwrap();
    net.resistor(out, net.ground(), Ohms::from_milliohms(100.0))
        .unwrap();
    let settings = TransientSettings::new(
        Seconds::from_microseconds(2.0),
        Seconds::from_nanoseconds(1.0),
    )
    .unwrap();
    c.bench_function("transient_buck_2000_steps", |b| {
        b.iter(|| transient(&net, &settings).unwrap());
    });
}

criterion_group!(
    benches,
    bench_efficiency_curve,
    bench_sharing,
    bench_analysis,
    bench_monte_carlo,
    bench_transient_buck
);
criterion_main!(benches);
