//! Criterion benchmarks for the solver-reuse and parallel-sweep engine:
//! cold (rebuild-per-call) vs reuse (restamp + warm start) sharing
//! solves, and serial vs parallel Monte-Carlo sampling.

use criterion::{criterion_group, criterion_main, Criterion};
use vpd_converters::VrTopologyKind;
use vpd_core::{
    placement::below_die_sites, run_tolerance, solve_sharing_at, Architecture, Calibration,
    McSettings, SharingSolver, SystemSpec,
};

fn env() -> (SystemSpec, Calibration) {
    (SystemSpec::paper_default(), Calibration::paper_default())
}

fn bench_sharing_cold_vs_reuse(c: &mut Criterion) {
    let (spec, calib) = env();
    let n = calib.grid_nodes_per_side;
    let sites = below_die_sites(48, n, n);
    let droop = calib.vr_droop_below_die;

    c.bench_function("sharing_cold_rebuild_per_solve", |b| {
        b.iter(|| solve_sharing_at(&spec, &calib, &sites, droop).unwrap());
    });

    let mut solver = SharingSolver::new(&spec, &calib, &sites, droop).unwrap();
    solver.solve().unwrap();
    solver.anchor_last();
    c.bench_function("sharing_reuse_restamp_per_solve", |b| {
        b.iter(|| {
            solver.restamp(&spec, &calib, droop).unwrap();
            solver.solve().unwrap()
        });
    });
}

fn bench_monte_carlo_serial_vs_parallel(c: &mut Criterion) {
    let (spec, calib) = env();
    let base = McSettings {
        samples: 50,
        threads: 1,
        ..McSettings::default()
    };
    c.bench_function("monte_carlo_50_samples_serial", |b| {
        b.iter(|| {
            run_tolerance(
                Architecture::InterposerPeriphery,
                VrTopologyKind::Dsch,
                &spec,
                &calib,
                &base,
            )
            .unwrap()
        });
    });
    c.bench_function("monte_carlo_50_samples_parallel_auto", |b| {
        b.iter(|| {
            run_tolerance(
                Architecture::InterposerPeriphery,
                VrTopologyKind::Dsch,
                &spec,
                &calib,
                &McSettings { threads: 0, ..base },
            )
            .unwrap()
        });
    });
}

criterion_group!(
    benches,
    bench_sharing_cold_vs_reuse,
    bench_monte_carlo_serial_vs_parallel
);
criterion_main!(benches);
