//! Measures the solver-reuse and parallel-sweep engine and emits
//! `BENCH_sweeps.json`.
//!
//! Two layers are timed:
//!
//! * **Sharing solves** — the one-shot path ([`solve_sharing_at`]
//!   rebuilds the netlist and recompiles the solve plan per call)
//!   against the reuse path (one [`SharingSolver`], restamp + warm
//!   start per call).
//! * **Monte-Carlo** — the rebuild-per-sample baseline against
//!   [`run_tolerance`] serially (`threads = 1`) and with the auto
//!   thread count, 200 samples each. The engine guarantees the three
//!   summaries are bitwise identical; this binary asserts it.
//!
//! ```sh
//! cargo run --release -p vpd-bench --bin sweeps
//! ```

use std::time::Instant;
use vpd_converters::VrTopologyKind;
use vpd_core::{
    analyze, run_tolerance, solve_sharing_at, Architecture, Calibration, McSettings, SharingSolver,
    VrPlacement,
};
use vpd_units::Ohms;

/// Times `f` over `iters` calls and returns calls per second.
fn rate(iters: usize, mut f: impl FnMut(usize)) -> f64 {
    let start = Instant::now();
    for i in 0..iters {
        f(i);
    }
    iters as f64 / start.elapsed().as_secs_f64()
}

/// One ±2%-style perturbed sheet resistance per iteration, so neither
/// path can cache the numeric answer.
fn perturbed_sheet(base: Ohms, i: usize) -> Ohms {
    base * (1.0 + 0.02 * ((i % 5) as f64 - 2.0) / 2.0)
}

fn main() {
    let (spec, calib, _) = vpd_bench::paper_env();
    vpd_bench::banner("Sweep-engine benchmark (BENCH_sweeps.json)");

    // --- Layer 1: sharing solves, cold vs reuse -------------------------
    let n_vrs = 48;
    let (sites, droop) = {
        let n = calib.grid_nodes_per_side;
        (
            vpd_core::placement::below_die_sites(n_vrs, n, n),
            calib.vr_droop_below_die,
        )
    };
    let solve_iters = 40;

    let cold_solves_per_sec = rate(solve_iters, |i| {
        let c = Calibration {
            grid_sheet_resistance: perturbed_sheet(calib.grid_sheet_resistance, i),
            ..calib
        };
        solve_sharing_at(&spec, &c, &sites, droop).unwrap();
    });

    let mut solver = SharingSolver::new(&spec, &calib, &sites, droop).unwrap();
    solver.solve().unwrap();
    solver.anchor_last();
    let reuse_solves_per_sec = rate(solve_iters, |i| {
        let c = Calibration {
            grid_sheet_resistance: perturbed_sheet(calib.grid_sheet_resistance, i),
            ..calib
        };
        solver.restamp(&spec, &c, droop).unwrap();
        solver.solve().unwrap();
    });
    let solve_speedup = reuse_solves_per_sec / cold_solves_per_sec;
    println!(
        "sharing solves ({n_vrs} VRs): cold {cold_solves_per_sec:.1}/s, \
         reuse {reuse_solves_per_sec:.1}/s ({solve_speedup:.1}x)"
    );

    // --- Layer 2: Monte-Carlo, baseline vs engine -----------------------
    let arch = Architecture::InterposerPeriphery;
    let topo = VrTopologyKind::Dsch;
    let samples = 200;
    let settings = McSettings {
        samples,
        threads: 1,
        ..McSettings::default()
    };

    // Baseline: what the pre-engine implementation did — a fresh
    // `analyze` (netlist rebuild + plan compile + cold solve) per sample.
    let baseline_start = Instant::now();
    let opts = vpd_core::AnalysisOptions::default();
    for i in 0..samples {
        let c = Calibration {
            grid_sheet_resistance: perturbed_sheet(calib.grid_sheet_resistance, i),
            ..calib
        };
        analyze(arch, topo, &spec, &c, &opts).unwrap();
    }
    let baseline_samples_per_sec = samples as f64 / baseline_start.elapsed().as_secs_f64();

    let serial_start = Instant::now();
    let serial = run_tolerance(arch, topo, &spec, &calib, &settings).unwrap();
    let serial_samples_per_sec = samples as f64 / serial_start.elapsed().as_secs_f64();

    let parallel_start = Instant::now();
    let parallel = run_tolerance(
        arch,
        topo,
        &spec,
        &calib,
        &McSettings {
            threads: 0,
            ..settings
        },
    )
    .unwrap();
    let parallel_samples_per_sec = samples as f64 / parallel_start.elapsed().as_secs_f64();

    assert_eq!(serial, parallel, "thread count must not change the summary");

    let serial_speedup = serial_samples_per_sec / baseline_samples_per_sec;
    let parallel_speedup = parallel_samples_per_sec / baseline_samples_per_sec;
    let threads = std::thread::available_parallelism().map_or(1, usize::from);
    println!(
        "monte-carlo ({samples} samples, A1/DSCH): baseline {baseline_samples_per_sec:.1}/s, \
         serial reuse {serial_samples_per_sec:.1}/s ({serial_speedup:.1}x), \
         parallel x{threads} {parallel_samples_per_sec:.1}/s ({parallel_speedup:.1}x)"
    );

    // Periphery vs below-die solve rates round out the report.
    let peri = vpd_core::solve_sharing(&spec, &calib, VrPlacement::Periphery, n_vrs).unwrap();

    let json = format!(
        "{{\n  \"sharing_solves\": {{\n    \"n_vrs\": {n_vrs},\n    \"cold_solves_per_sec\": {cold_solves_per_sec:.3},\n    \"reuse_solves_per_sec\": {reuse_solves_per_sec:.3},\n    \"reuse_speedup\": {solve_speedup:.3}\n  }},\n  \"monte_carlo\": {{\n    \"samples\": {samples},\n    \"baseline_samples_per_sec\": {baseline_samples_per_sec:.3},\n    \"serial_samples_per_sec\": {serial_samples_per_sec:.3},\n    \"parallel_samples_per_sec\": {parallel_samples_per_sec:.3},\n    \"serial_speedup\": {serial_speedup:.3},\n    \"parallel_speedup\": {parallel_speedup:.3},\n    \"threads\": {threads},\n    \"parallel_matches_serial_bitwise\": true\n  }},\n  \"sanity\": {{\n    \"a1_mean_loss_percent\": {:.3},\n    \"periphery_worst_drop_volts\": {:.6}\n  }}\n}}\n",
        serial.mean,
        peri.worst_drop().value(),
    );
    std::fs::write("BENCH_sweeps.json", &json).unwrap();
    println!("\nwrote BENCH_sweeps.json");
}
