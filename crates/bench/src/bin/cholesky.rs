//! Sparse direct-solver benchmark: the cached-factorization Cholesky
//! floor against warm-CG on the paper's 48-VR under-die grid, plus the
//! k = 8 multi-RHS block solve. Emits `BENCH_cholesky.json`.
//!
//! Three workloads:
//!
//! * **Setpoint sweep (RHS-only)** — every solve moves only the right-
//!   hand side, the regime the plan-level block API coalesces. The
//!   direct path skips refactorization entirely (bitwise value check)
//!   and answers with two triangular substitutions.
//! * **Sheet-resistance restamp (matrix moves)** — the Monte-Carlo
//!   regime: every solve re-stamps the conductance matrix, so the
//!   direct path pays a numeric refactor against CG's warm iterations.
//! * **k = 8 block solve** — one factorization plus one interleaved
//!   block substitution against eight sequential solves, at both the
//!   plan level (`SharingSolver::solve_setpoints`) and the numeric
//!   level (`SparseCholesky::solve_block_into`).
//!
//! ```sh
//! cargo run --release -p vpd-bench --bin cholesky             # full, writes JSON
//! cargo run --release -p vpd-bench --bin cholesky -- --smoke  # CI gate
//! ```
//!
//! Smoke mode re-verifies the correctness contracts on a reduced
//! workload (block == sequential bitwise, direct == warm-CG within
//! tolerance) and asserts every `*speedup*` field of the checked-in
//! `BENCH_cholesky.json` is at least 1.0.

use std::time::Instant;
use vpd_core::{Calibration, DcPlanMode, SharingSolver, SystemSpec, VrPlacement};
use vpd_numeric::{CooMatrix, CsrMatrix, SparseCholesky};
use vpd_report::Json;
use vpd_units::Volts;

const MODULES: usize = 48;
const BLOCK_K: usize = 8;

fn usage() -> ! {
    eprintln!("usage: cholesky [--smoke]");
    std::process::exit(2);
}

fn build_solver(spec: &SystemSpec, calib: &Calibration, mode: DcPlanMode) -> SharingSolver {
    let mut solver = SharingSolver::builder(spec, calib)
        .placement(VrPlacement::BelowDie)
        .modules(MODULES)
        .build()
        .unwrap();
    solver.set_solve_mode(mode).unwrap();
    // Prime: compile the plan (and factor, in direct mode) outside the
    // timed region, and anchor so CG warm-starts the way the engines do.
    solver.solve().unwrap();
    solver.anchor_last();
    solver
}

/// `n` solves that move only the right-hand side: all modules track a
/// small cyclic setpoint schedule. Returns elapsed seconds.
fn setpoint_workload(solver: &mut SharingSolver, n: usize) -> f64 {
    let start = Instant::now();
    for i in 0..n {
        let sp = Volts::new(1.0 + 1e-4 * (i % 16) as f64);
        for k in 0..solver.vr_count() {
            solver.set_vr_setpoint(k, sp).unwrap();
        }
        solver.solve().unwrap();
    }
    start.elapsed().as_secs_f64()
}

/// `n` solves that move the matrix: the grid sheet resistance wobbles
/// ±2% on a deterministic schedule and every solve restamps. Returns
/// elapsed seconds.
fn perturbed_workload(
    solver: &mut SharingSolver,
    spec: &SystemSpec,
    calib: &Calibration,
    n: usize,
) -> f64 {
    let droop = calib.vr_droop_below_die;
    let start = Instant::now();
    for i in 0..n {
        let wobble = 1.0 + 0.02 * ((i % 9) as f64 / 4.0 - 1.0);
        let perturbed = Calibration {
            grid_sheet_resistance: calib.grid_sheet_resistance * wobble,
            ..*calib
        };
        solver.restamp(spec, &perturbed, droop).unwrap();
        solver.solve().unwrap();
    }
    start.elapsed().as_secs_f64()
}

/// The 48-VR grid's numeric twin: the same 2-D mesh Laplacian the
/// sharing solver reduces to, with one grounded droop conductance per
/// module site.
fn grid_matrix(side: usize) -> CsrMatrix {
    let n = side * side;
    let id = |x: usize, y: usize| y * side + x;
    let g = 50.0;
    let mut coo = CooMatrix::new(n, n);
    for y in 0..side {
        for x in 0..side {
            if x + 1 < side {
                let (a, b) = (id(x, y), id(x + 1, y));
                coo.push(a, a, g);
                coo.push(b, b, g);
                coo.push(a, b, -g);
                coo.push(b, a, -g);
            }
            if y + 1 < side {
                let (a, b) = (id(x, y), id(x, y + 1));
                coo.push(a, a, g);
                coo.push(b, b, g);
                coo.push(a, b, -g);
                coo.push(b, a, -g);
            }
        }
    }
    for k in 0..MODULES {
        let i = (k * 13) % n;
        coo.push(i, i, 4.0);
    }
    coo.to_csr()
}

/// Numeric-level block contract + timing: factor once, then solve
/// `BLOCK_K` right-hand sides as one block and as `BLOCK_K` sequential
/// `solve_into` calls. Returns (sequential_secs, block_secs) over
/// `reps` repetitions and asserts the two answers are bitwise equal.
fn numeric_block(chol: &mut SparseCholesky, n: usize, reps: usize) -> (f64, f64) {
    let block0: Vec<f64> = (0..n * BLOCK_K)
        .map(|i| ((i % 97) as f64 - 48.0) / 17.0)
        .collect();

    let mut seq = block0.clone();
    let seq_start = Instant::now();
    for _ in 0..reps {
        seq.copy_from_slice(&block0);
        for c in 0..BLOCK_K {
            chol.solve_into(&mut seq[c * n..(c + 1) * n]).unwrap();
        }
    }
    let seq_secs = seq_start.elapsed().as_secs_f64();

    let mut blk = block0.clone();
    let blk_start = Instant::now();
    for _ in 0..reps {
        blk.copy_from_slice(&block0);
        chol.solve_block_into(&mut blk, BLOCK_K).unwrap();
    }
    let blk_secs = blk_start.elapsed().as_secs_f64();

    let same = seq
        .iter()
        .zip(&blk)
        .all(|(a, b)| a.to_bits() == b.to_bits());
    assert!(same, "block solve drifted from sequential solves");
    (seq_secs, blk_secs)
}

/// Plan-level block contract + timing: a `BLOCK_K`-setpoint sweep as
/// one coalesced `solve_setpoints` call vs one solve per setpoint.
/// Returns (sequential_secs, block_secs) and asserts bitwise equality.
fn plan_block(spec: &SystemSpec, calib: &Calibration, reps: usize) -> (f64, f64) {
    let sweep: Vec<Volts> = (0..BLOCK_K)
        .map(|i| Volts::new(1.0 + 1e-3 * i as f64))
        .collect();

    let mut seq_solver = build_solver(spec, calib, DcPlanMode::DirectCholesky);
    let mut seq_reports = Vec::new();
    let seq_start = Instant::now();
    for _ in 0..reps {
        seq_reports.clear();
        for &sp in &sweep {
            for k in 0..seq_solver.vr_count() {
                seq_solver.set_vr_setpoint(k, sp).unwrap();
            }
            seq_reports.push(seq_solver.solve().unwrap());
        }
    }
    let seq_secs = seq_start.elapsed().as_secs_f64();

    let mut blk_solver = build_solver(spec, calib, DcPlanMode::DirectCholesky);
    let mut blk_reports = Vec::new();
    let blk_start = Instant::now();
    for _ in 0..reps {
        blk_reports = blk_solver.solve_setpoints(&sweep).unwrap();
    }
    let blk_secs = blk_start.elapsed().as_secs_f64();

    assert_eq!(
        seq_reports, blk_reports,
        "coalesced sweep drifted from sequential solves"
    );
    (seq_secs, blk_secs)
}

/// Direct-mode results must track warm-CG within solver tolerance.
fn check_direct_matches_cg(spec: &SystemSpec, calib: &Calibration) {
    let mut cg = build_solver(spec, calib, DcPlanMode::WarmCg);
    let mut direct = build_solver(spec, calib, DcPlanMode::DirectCholesky);
    let a = cg.solve().unwrap();
    let b = direct.solve().unwrap();
    assert!(
        (a.worst_drop().value() - b.worst_drop().value()).abs() < 1e-8,
        "direct {} vs CG {}",
        b.worst_drop(),
        a.worst_drop()
    );
}

/// Walks the checked-in JSON and asserts every field whose key contains
/// `speedup` is at least 1.0.
fn audit_speedups(doc: &Json, path: &str, found: &mut usize) {
    if let Json::Object(pairs) = doc {
        for (key, value) in pairs {
            let here = format!("{path}/{key}");
            if key.contains("speedup") {
                let v = value.as_f64().unwrap_or(f64::NAN);
                assert!(v >= 1.0, "{here} = {v} regressed below 1.0");
                *found += 1;
                println!("  {here} = {v:.2} (>= 1.0)");
            }
            audit_speedups(value, &here, found);
        }
    }
}

fn main() {
    let mut smoke = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--smoke" => smoke = true,
            _ => usage(),
        }
    }

    let (spec, calib, _) = vpd_bench::paper_env();
    vpd_bench::banner(if smoke {
        "Sparse-Cholesky smoke"
    } else {
        "Sparse-Cholesky benchmark (BENCH_cholesky.json)"
    });

    // Correctness contracts run in both modes.
    check_direct_matches_cg(&spec, &calib);
    let a = grid_matrix(25);
    let mut chol = SparseCholesky::factor(&a).unwrap();
    let n = chol.dim();
    let sym_nnz = chol.symbolic().factor_nnz();
    let fill = chol.symbolic().fill_ratio();
    println!(
        "grid twin: {n} unknowns, factor nnz {sym_nnz} (fill {fill:.2}x), \
         {MODULES} module sites"
    );

    if smoke {
        let (seq_secs, blk_secs) = numeric_block(&mut chol, n, 20);
        let (pseq, pblk) = plan_block(&spec, &calib, 2);
        println!(
            "contracts OK: block == sequential bitwise \
             (numeric {seq_secs:.3}s vs {blk_secs:.3}s, plan {pseq:.3}s vs {pblk:.3}s), \
             direct == warm-CG within tolerance"
        );
        let doc = std::fs::read_to_string("BENCH_cholesky.json")
            .expect("BENCH_cholesky.json must be checked in");
        let doc = Json::parse(&doc).expect("BENCH_cholesky.json must parse");
        let mut found = 0;
        audit_speedups(&doc, "", &mut found);
        assert!(
            found >= 3,
            "expected at least 3 speedup fields, found {found}"
        );
        println!("\nsmoke OK ({found} speedup fields audited)");
        return;
    }

    // --- per-solve: setpoint sweep (RHS-only) ---------------------------
    let solves = 400;
    let mut cg = build_solver(&spec, &calib, DcPlanMode::WarmCg);
    let cg_secs = setpoint_workload(&mut cg, solves);
    let mut direct = build_solver(&spec, &calib, DcPlanMode::DirectCholesky);
    let direct_secs = setpoint_workload(&mut direct, solves);
    let per_solve_speedup = cg_secs / direct_secs;
    println!(
        "rhs-only ({solves} solves): warm-CG {:.0}/s, direct {:.0}/s, speedup {per_solve_speedup:.2}x",
        solves as f64 / cg_secs,
        solves as f64 / direct_secs,
    );

    // --- per-solve: matrix-perturbed restamps ---------------------------
    let psolves = 200;
    let mut cg = build_solver(&spec, &calib, DcPlanMode::WarmCg);
    let cg_psecs = perturbed_workload(&mut cg, &spec, &calib, psolves);
    let mut direct = build_solver(&spec, &calib, DcPlanMode::DirectCholesky);
    let direct_psecs = perturbed_workload(&mut direct, &spec, &calib, psolves);
    // Not gated >= 1.0: when every solve moves the matrix, the direct
    // path pays a full refactor against a handful of warm iterations —
    // the measured reason WarmCg stays the default plan mode.
    let perturbed_ratio = cg_psecs / direct_psecs;
    println!(
        "perturbed ({psolves} solves): warm-CG {:.0}/s, direct {:.0}/s, ratio {perturbed_ratio:.2}x",
        psolves as f64 / cg_psecs,
        psolves as f64 / direct_psecs,
    );

    // --- k = 8 block vs sequential --------------------------------------
    let nreps = 2000;
    let (nseq, nblk) = numeric_block(&mut chol, n, nreps);
    let numeric_block_speedup = nseq / nblk;
    let preps = 50;
    let (pseq, pblk) = plan_block(&spec, &calib, preps);
    let plan_block_speedup = pseq / pblk;
    println!(
        "block k={BLOCK_K}: numeric {numeric_block_speedup:.2}x \
         ({:.0} vs {:.0} RHS/s), plan {plan_block_speedup:.2}x \
         ({:.0} vs {:.0} RHS/s)",
        (nreps * BLOCK_K) as f64 / nseq,
        (nreps * BLOCK_K) as f64 / nblk,
        (preps * BLOCK_K) as f64 / pseq,
        (preps * BLOCK_K) as f64 / pblk,
    );

    let json = format!(
        "{{\n  \"grid\": {{\n    \"architecture\": \"A2\",\n    \"modules\": {MODULES},\n    \"unknowns\": {n},\n    \"factor_nnz\": {sym_nnz},\n    \"fill_ratio\": {fill:.3}\n  }},\n  \"rhs_only\": {{\n    \"workload\": \"setpoint sweep, matrix values unchanged\",\n    \"solves\": {solves},\n    \"warm_cg_solves_per_sec\": {:.1},\n    \"direct_solves_per_sec\": {:.1},\n    \"per_solve_speedup\": {per_solve_speedup:.3}\n  }},\n  \"perturbed\": {{\n    \"workload\": \"sheet-resistance restamp, matrix moves every solve\",\n    \"solves\": {psolves},\n    \"warm_cg_solves_per_sec\": {:.1},\n    \"direct_solves_per_sec\": {:.1},\n    \"direct_vs_cg_ratio\": {perturbed_ratio:.3}\n  }},\n  \"block\": {{\n    \"k\": {BLOCK_K},\n    \"numeric_sequential_rhs_per_sec\": {:.1},\n    \"numeric_block_rhs_per_sec\": {:.1},\n    \"numeric_block_speedup\": {numeric_block_speedup:.3},\n    \"plan_sequential_rhs_per_sec\": {:.1},\n    \"plan_block_rhs_per_sec\": {:.1},\n    \"plan_block_speedup\": {plan_block_speedup:.3},\n    \"block_matches_sequential_bitwise\": true\n  }}\n}}\n",
        solves as f64 / cg_secs,
        solves as f64 / direct_secs,
        psolves as f64 / cg_psecs,
        psolves as f64 / direct_psecs,
        (nreps * BLOCK_K) as f64 / nseq,
        (nreps * BLOCK_K) as f64 / nblk,
        (preps * BLOCK_K) as f64 / pseq,
        (preps * BLOCK_K) as f64 / pblk,
    );
    std::fs::write("BENCH_cholesky.json", &json).unwrap();
    println!("\nwrote BENCH_cholesky.json");
}
