//! Measures the observability layer's overhead and emits
//! `BENCH_obs.json`.
//!
//! Two workloads are timed with metrics disabled and enabled — the
//! Monte-Carlo tolerance sweep and the A2 N-1 fault sweep, both serial
//! so scheduler noise does not drown the effect — taking the best of
//! several trials per configuration. Three things are asserted:
//!
//! * **Bitwise identity** — enabling metrics must not change a single
//!   bit of either result (instrumentation is observational only).
//! * **Overhead bound** — instrumented throughput stays within a few
//!   percent of uninstrumented (the ISSUE acceptance margin is 3%; the
//!   assert allows a little slack for container timer noise).
//! * **Snapshot sanity** — the counters recorded during the measured
//!   runs are consistent with the work performed.
//!
//! ```sh
//! cargo run --release -p vpd-bench --bin obs              # full, writes JSON
//! cargo run --release -p vpd-bench --bin obs -- --samples 8   # CI smoke
//! ```

use std::time::Instant;
use vpd_converters::VrTopologyKind;
use vpd_core::{run_tolerance, Architecture, FaultScenario, FaultSweep, McSettings};
use vpd_report::Json;

fn usage() -> ! {
    eprintln!("usage: obs [--samples N]");
    std::process::exit(2);
}

/// Best-of-`trials` wall time for `f`, in seconds.
fn best_secs<R>(trials: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..trials {
        let start = Instant::now();
        let r = f();
        best = best.min(start.elapsed().as_secs_f64());
        last = Some(r);
    }
    (best, last.expect("at least one trial"))
}

fn main() {
    let mut samples: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--samples" => {
                let v = args.next().unwrap_or_else(|| usage());
                samples = Some(v.parse().unwrap_or_else(|_| usage()));
            }
            _ => usage(),
        }
    }
    let smoke = samples.is_some();

    let (spec, calib, _) = vpd_bench::paper_env();
    vpd_bench::banner(if smoke {
        "Observability-overhead smoke"
    } else {
        "Observability-overhead benchmark (BENCH_obs.json)"
    });

    let mc_samples = samples.unwrap_or(300);
    let trials = if smoke { 2 } else { 5 };
    let mc_settings = McSettings {
        samples: mc_samples,
        threads: 1,
        ..McSettings::default()
    };
    let mc = |spec, calib, settings: &McSettings| {
        run_tolerance(
            Architecture::InterposerPeriphery,
            VrTopologyKind::Dsch,
            spec,
            calib,
            settings,
        )
        .unwrap()
    };
    let sweep = FaultSweep::new(
        Architecture::InterposerEmbedded,
        VrTopologyKind::Dsch,
        &spec,
        &calib,
    )
    .unwrap();
    let mut scenarios = FaultScenario::n_minus_1(sweep.vr_count());
    if let Some(n) = samples {
        scenarios.truncate(n.max(1));
    }

    // --- Metrics disabled (the default state) ---------------------------
    vpd_obs::set_enabled(false);
    let (mc_off_secs, mc_off) = best_secs(trials, || mc(&spec, &calib, &mc_settings));
    let (faults_off_secs, faults_off) = best_secs(trials, || sweep.run(&scenarios, 1).unwrap());

    // --- Metrics enabled ------------------------------------------------
    vpd_obs::set_enabled(true);
    vpd_obs::reset();
    let (mc_on_secs, mc_on) = best_secs(trials, || mc(&spec, &calib, &mc_settings));
    let (faults_on_secs, faults_on) = best_secs(trials, || sweep.run(&scenarios, 1).unwrap());
    let snapshot = vpd_obs::snapshot();
    vpd_obs::set_enabled(false);

    // Instrumentation must be purely observational.
    assert_eq!(mc_off, mc_on, "metrics changed the Monte-Carlo summary");
    assert_eq!(faults_off, faults_on, "metrics changed the fault report");

    // Counters recorded during the measured runs must match the work:
    // `trials` MC runs of `mc_samples` each, `trials` fault sweeps.
    assert_eq!(snapshot.counter("mc.runs"), Some(trials as u64));
    assert_eq!(
        snapshot.counter("mc.samples"),
        Some((trials * mc_samples) as u64)
    );
    assert_eq!(snapshot.counter("faults.runs"), Some(trials as u64));
    assert_eq!(
        snapshot.counter("faults.scenarios"),
        Some((trials * scenarios.len()) as u64)
    );
    assert!(snapshot.counter("cg.solves").unwrap_or(0) > 0);

    let mc_overhead = mc_on_secs / mc_off_secs - 1.0;
    let faults_overhead = faults_on_secs / faults_off_secs - 1.0;
    println!(
        "monte-carlo ({mc_samples} samples, serial): {:.1}/s off, {:.1}/s on \
         ({:+.2}% overhead)",
        mc_samples as f64 / mc_off_secs,
        mc_samples as f64 / mc_on_secs,
        100.0 * mc_overhead,
    );
    println!(
        "fault sweep ({} scenarios, serial): {:.1}/s off, {:.1}/s on \
         ({:+.2}% overhead)",
        scenarios.len(),
        scenarios.len() as f64 / faults_off_secs,
        scenarios.len() as f64 / faults_on_secs,
        100.0 * faults_overhead,
    );
    println!(
        "recorded while on: {} cg solves, {} total cg iterations",
        snapshot.counter("cg.solves").unwrap_or(0),
        snapshot.counter("cg.iterations").unwrap_or(0),
    );

    if smoke {
        println!("\nsmoke OK (metrics on == metrics off, bitwise)");
        return;
    }

    // The ISSUE acceptance margin is 3%; a recording is a handful of
    // relaxed atomics per solve, so the true cost is far below that.
    const MARGIN: f64 = 0.03;
    assert!(
        mc_overhead <= MARGIN,
        "MC metrics overhead {:.2}% exceeds {:.0}%",
        100.0 * mc_overhead,
        100.0 * MARGIN
    );
    assert!(
        faults_overhead <= MARGIN,
        "fault-sweep metrics overhead {:.2}% exceeds {:.0}%",
        100.0 * faults_overhead,
        100.0 * MARGIN
    );

    let doc = Json::obj([
        (
            "monte_carlo",
            Json::obj([
                ("samples", Json::from(mc_samples)),
                ("trials", Json::from(trials)),
                (
                    "off_samples_per_sec",
                    Json::from(mc_samples as f64 / mc_off_secs),
                ),
                (
                    "on_samples_per_sec",
                    Json::from(mc_samples as f64 / mc_on_secs),
                ),
                ("overhead", Json::from(mc_overhead)),
            ]),
        ),
        (
            "fault_sweep",
            Json::obj([
                ("scenarios", Json::from(scenarios.len())),
                ("trials", Json::from(trials)),
                (
                    "off_scenarios_per_sec",
                    Json::from(scenarios.len() as f64 / faults_off_secs),
                ),
                (
                    "on_scenarios_per_sec",
                    Json::from(scenarios.len() as f64 / faults_on_secs),
                ),
                ("overhead", Json::from(faults_overhead)),
            ]),
        ),
        (
            "asserts",
            Json::obj([
                ("overhead_margin", Json::from(MARGIN)),
                ("results_bitwise_identical", Json::from(true)),
            ]),
        ),
        (
            "recorded",
            Json::obj([
                (
                    "cg_solves",
                    Json::from(snapshot.counter("cg.solves").unwrap_or(0) as f64),
                ),
                (
                    "cg_iterations",
                    Json::from(snapshot.counter("cg.iterations").unwrap_or(0) as f64),
                ),
                (
                    "plan_restamps",
                    Json::from(snapshot.counter("plan.restamps").unwrap_or(0) as f64),
                ),
            ]),
        ),
    ]);
    std::fs::write("BENCH_obs.json", format!("{doc}\n")).unwrap();
    println!("\nwrote BENCH_obs.json");
}
