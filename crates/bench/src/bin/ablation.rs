//! Ablation studies from the paper's discussion:
//!
//! * **B1** — GaN versus Si power devices across switching frequency
//!   (§III's case for GaN), using the bottom-up physics loss model.
//! * **B2** — intermediate-bus-voltage sweep for the two-stage
//!   architecture (the 12 V vs. 6 V question, §II/§IV).
//! * **B3** — hotspot sensitivity: how the A2 module spread depends on
//!   the die power map.

use vpd_converters::{PhysicsDesign, VrTopologyKind};
use vpd_core::{solve_sharing, sweep_bus_voltage, PowerMap, VrPlacement};
use vpd_devices::Semiconductor;
use vpd_report::{Align, Table};
use vpd_units::{Amps, Hertz, Volts};

fn main() {
    let (spec, calib, opts) = vpd_bench::paper_env();

    // --- B1: GaN vs Si over frequency --------------------------------------
    vpd_bench::banner("Ablation B1 — GaN vs. Si efficiency across switching frequency");
    let mut t = Table::new(vec![
        "Topology",
        "f_sw",
        "Si efficiency",
        "GaN efficiency",
        "GaN advantage",
    ]);
    for c in 2..5 {
        t.align(c, Align::Right);
    }
    let i = Amps::new(20.0);
    for kind in [VrTopologyKind::Dpmih, VrTopologyKind::Dsch] {
        for f_mhz in [0.25, 0.5, 1.0, 2.0, 4.0] {
            let f = Hertz::from_megahertz(f_mhz);
            let eta = |m: Semiconductor| -> Option<f64> {
                PhysicsDesign::new(
                    kind,
                    m,
                    f,
                    Volts::new(48.0),
                    Volts::new(1.0),
                    Amps::new(30.0),
                )
                .ok()
                .and_then(|d| d.efficiency(i).ok())
                .map(|e| e.percent())
            };
            let si = eta(Semiconductor::Si);
            let gan = eta(Semiconductor::GaN);
            t.row(vec![
                kind.to_string(),
                format!("{f_mhz} MHz"),
                si.map_or("infeasible (on-time)".into(), |v| format!("{v:.1}%")),
                gan.map_or("infeasible (on-time)".into(), |v| format!("{v:.1}%")),
                match (si, gan) {
                    (Some(s), Some(g)) => format!("{:+.1} pt", g - s),
                    _ => "-".into(),
                },
            ]);
        }
    }
    print!("{}", t.render());
    let f_max = |kind, m| {
        PhysicsDesign::max_feasible_frequency(kind, m, Volts::new(48.0), Volts::new(1.0)).value()
            / 1e6
    };
    println!(
        "on-time wall: DPMIH/Si {:.1} MHz, DPMIH/GaN {:.1} MHz, 3LHD/GaN {:.1} MHz\n\
         (the Dickson front's 10x internal step-down is what §III highlights)\n",
        f_max(VrTopologyKind::Dpmih, Semiconductor::Si),
        f_max(VrTopologyKind::Dpmih, Semiconductor::GaN),
        f_max(VrTopologyKind::ThreeLevelHybridDickson, Semiconductor::GaN),
    );

    // --- B2: bus-voltage sweep ---------------------------------------------
    vpd_bench::banner("Ablation B2 — two-stage intermediate bus voltage");
    let buses: Vec<Volts> = [3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0, 32.0]
        .iter()
        .map(|&v| Volts::new(v))
        .collect();
    let mut b2 = Table::new(vec![
        "Bus",
        "Total loss (%)",
        "Conversion (%)",
        "Horizontal (%)",
    ]);
    for c in 1..4 {
        b2.align(c, Align::Right);
    }
    for (bus, outcome) in sweep_bus_voltage(&buses, &spec, &calib, &opts) {
        match outcome {
            Ok(r) => {
                let b = &r.breakdown;
                b2.row(vec![
                    format!("{:.0} V", bus.value()),
                    format!("{:.1}", r.loss_percent()),
                    format!("{:.1}", b.percent_of_pol_power(b.conversion_loss())),
                    format!("{:.1}", b.percent_of_pol_power(b.horizontal_loss())),
                ]);
            }
            Err(e) => {
                b2.row(vec![
                    format!("{:.0} V", bus.value()),
                    "-".into(),
                    "-".into(),
                    format!("{e}"),
                ]);
            }
        }
    }
    print!("{}", b2.render());

    // --- B3: power-map sensitivity ------------------------------------------
    vpd_bench::banner("Ablation B3 — A2 module-current spread vs. die power map");
    let maps = [
        ("uniform", PowerMap::Uniform),
        ("paper hotspot", PowerMap::paper_hotspot()),
        (
            "off-center hotspot",
            PowerMap::GaussianHotspot {
                cx: 0.3,
                cy: 0.7,
                sigma: 0.09,
                floor: 0.32,
            },
        ),
        ("split 70/30", PowerMap::SplitHalves { left_share: 0.7 }),
    ];
    let mut b3 = Table::new(vec!["Power map", "Min (A)", "Max (A)", "Max/mean"]);
    for c in 1..4 {
        b3.align(c, Align::Right);
    }
    for (name, map) in maps {
        let mut c = calib;
        c.power_map = map;
        let rep = solve_sharing(&spec, &c, VrPlacement::BelowDie, 48).unwrap();
        b3.row(vec![
            name.to_owned(),
            format!("{:.1}", rep.min().value()),
            format!("{:.1}", rep.max().value()),
            format!("{:.1}x", rep.max().value() / rep.mean().value()),
        ]);
    }
    print!("{}", b3.render());
}
