//! Reproduces Table II: characteristics of the state-of-the-art compact
//! high-current 48 V-to-1 V converters, plus this repo's geometric
//! placement derivations alongside the paper's counts.

use vpd_converters::{TopologyCharacteristics, VrTopologyKind};
use vpd_core::placement;
use vpd_report::{Align, Table};
use vpd_units::SquareMeters;

fn main() {
    vpd_bench::banner("Table II — 48V-to-1V converter characteristics");

    let chs: Vec<TopologyCharacteristics> = VrTopologyKind::ALL
        .iter()
        .map(|&k| TopologyCharacteristics::table_ii(k))
        .collect();

    let mut t = Table::new(vec!["", "DPMIH", "DSCH", "3LHD"]);
    for c in 1..4 {
        t.align(c, Align::Right);
    }
    let row = |label: &str, f: &dyn Fn(&TopologyCharacteristics) -> String| {
        let mut cells = vec![label.to_owned()];
        cells.extend(chs.iter().map(f));
        cells
    };
    t.row(row("Conversion scheme", &|_| "48V-to-1V".to_owned()));
    t.row(row("Max load current", &|c| {
        format!("{:.0} A", c.max_load.value())
    }));
    t.row(row("Peak efficiency", &|c| {
        format!("{}", c.peak_efficiency)
    }));
    t.row(row("Current at peak efficiency", &|c| {
        format!("{:.0} A", c.current_at_peak.value())
    }));
    t.row(row("Number of switches", &|c| c.switches.to_string()));
    t.row(row("Switches per mm²", &|c| {
        format!("{:.2}", c.switches_per_mm2)
    }));
    t.row(row("Number of inductors", &|c| c.inductors.to_string()));
    t.row(row("Total inductance", &|c| {
        format!("{:.2} µH", c.total_inductance.value() * 1e6)
    }));
    t.row(row("Number of capacitors", &|c| c.capacitors.to_string()));
    t.row(row("Total capacitance", &|c| {
        format!("{:.1} µF", c.total_capacitance.value() * 1e6)
    }));
    t.row(row("VRs along die periphery (paper)", &|c| {
        c.vrs_along_periphery.to_string()
    }));
    t.row(row("VRs below the die (paper)", &|c| {
        c.vrs_below_die.to_string()
    }));
    print!("{}", t.render());

    vpd_bench::banner("Model derivations (500 mm² die)");
    let die = SquareMeters::from_square_millimeters(500.0);
    let mut d = Table::new(vec![
        "",
        "Module area (mm²)",
        "Periphery slots (geometric)",
        "Below-die slots (50% fill)",
        "On-time fraction",
    ]);
    for c in 1..5 {
        d.align(c, Align::Right);
    }
    for c in &chs {
        d.row(vec![
            c.kind.to_string(),
            format!("{:.1}", c.module_area().as_square_millimeters()),
            placement::periphery_slots(die, c.module_area()).to_string(),
            placement::below_die_slots(die, c.module_area(), 0.5).to_string(),
            format!("{:.1}%", c.on_time_fraction() * 100.0),
        ]);
    }
    print!("{}", d.render());
    println!(
        "note: the paper's DPMIH counts (8 periphery / 7 below) count one ring row /\n\
         one footprint layer; the Figure 7 evaluation distributes ~48 VR positions\n\
         for every topology (additional rows farther from the perimeter, §IV)."
    );
}
