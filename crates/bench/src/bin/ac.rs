//! Measures the frequency-domain sweep engine and emits
//! `BENCH_ac.json`.
//!
//! Four configurations run the same impedance sweep over the A1 PDN
//! ladder:
//!
//! * **rebuild-per-point** — the cold path: the netlist is rebuilt and
//!   a fresh [`AcAnalysis`] solves a single frequency, once per point
//!   (the AC analogue of the `sweeps` bench's cold sharing solves).
//! * **analysis reuse** — one netlist, [`AcAnalysis::impedance`] over
//!   the grid (the pre-plan sweep path: fresh matrix, factorization,
//!   and solution buffers per point).
//! * **plan, serial** — one compiled [`AcPlan`] via
//!   [`ImpedanceSweep::run_over`] with `threads = 1`: restamp values
//!   into reused buffers, factor and solve in place.
//! * **plan, parallel** — the same engine with the auto thread count.
//!
//! The engine guarantees all four produce bitwise-identical
//! [`AcPoint`]s; this binary asserts it before reporting throughput.
//!
//! ```sh
//! cargo run --release -p vpd-bench --bin ac               # full, writes JSON
//! cargo run --release -p vpd-bench --bin ac -- --points 16    # CI smoke
//! ```
//!
//! Exits non-zero if any reported quantity is non-finite.

use std::time::Instant;
use vpd_circuit::{AcAnalysis, AcPoint};
use vpd_core::{Architecture, ImpedanceSweep, ImpedanceSweepSettings, PdnModel};

fn usage() -> ! {
    eprintln!("usage: ac [--points N]");
    std::process::exit(2);
}

fn main() {
    let mut points: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--points" => {
                let v = args.next().unwrap_or_else(|| usage());
                points = Some(v.parse().unwrap_or_else(|_| usage()));
            }
            _ => usage(),
        }
    }
    let smoke = points.is_some();
    let points = points.unwrap_or(240).max(2);

    let (spec, _, _) = vpd_bench::paper_env();
    vpd_bench::banner(if smoke {
        "AC-sweep smoke"
    } else {
        "AC-sweep benchmark (BENCH_ac.json)"
    });

    let arch = Architecture::InterposerPeriphery;
    let model = PdnModel::for_architecture(arch);
    let settings = ImpedanceSweepSettings {
        points,
        ..ImpedanceSweepSettings::default()
    };
    let freqs = settings.frequencies().unwrap();
    let sweep = ImpedanceSweep::for_architecture(arch, &spec).unwrap();
    // Warm up every path once so allocator and page effects don't skew
    // the first timed configuration.
    let reference = model.impedance_profile(&freqs).unwrap();
    let passes = if smoke { 1 } else { 25 };

    // --- rebuild-per-point: netlist + analysis rebuilt every point ------
    let mut rebuilt = Vec::new();
    let start = Instant::now();
    for _ in 0..passes {
        rebuilt = freqs
            .iter()
            .map(|&f| {
                let (net, die) = model.netlist().unwrap();
                AcAnalysis::new(&net)
                    .impedance(die, std::slice::from_ref(&f))
                    .unwrap()[0]
            })
            .collect();
    }
    let rebuild_points_per_sec = (passes * points) as f64 / start.elapsed().as_secs_f64();

    // --- analysis reuse: one netlist, per-point matrix rebuild ----------
    let (net, die) = model.netlist().unwrap();
    let mut analysis = Vec::new();
    let start = Instant::now();
    for _ in 0..passes {
        analysis = AcAnalysis::new(&net).impedance(die, &freqs).unwrap();
    }
    let analysis_points_per_sec = (passes * points) as f64 / start.elapsed().as_secs_f64();

    // --- compiled plan, serial and parallel -----------------------------
    let mut serial = Vec::new();
    let start = Instant::now();
    for _ in 0..passes {
        serial = sweep.run_over(&freqs, 1).unwrap().points;
    }
    let serial_points_per_sec = (passes * points) as f64 / start.elapsed().as_secs_f64();

    let mut parallel = Vec::new();
    let start = Instant::now();
    for _ in 0..passes {
        parallel = sweep.run_over(&freqs, 0).unwrap().points;
    }
    let parallel_points_per_sec = (passes * points) as f64 / start.elapsed().as_secs_f64();

    assert_eq!(rebuilt, reference, "cold rebuild must match the sweep path");
    assert_eq!(analysis, reference, "analysis path must be deterministic");
    assert_eq!(serial, reference, "plan must match the analysis bitwise");
    assert_eq!(parallel, serial, "thread count must not change the points");

    let plan_speedup = serial_points_per_sec / analysis_points_per_sec;
    let engine_speedup = parallel_points_per_sec / rebuild_points_per_sec;
    let threads = std::thread::available_parallelism().map_or(1, usize::from);
    println!(
        "ac sweep ({points} points, A1 ladder): rebuild {rebuild_points_per_sec:.0}/s, \
         analysis {analysis_points_per_sec:.0}/s, plan serial {serial_points_per_sec:.0}/s \
         ({plan_speedup:.1}x vs analysis), parallel x{threads} {parallel_points_per_sec:.0}/s \
         ({engine_speedup:.1}x vs rebuild)"
    );

    for (label, v) in [
        ("rebuild", rebuild_points_per_sec),
        ("analysis", analysis_points_per_sec),
        ("serial", serial_points_per_sec),
        ("parallel", parallel_points_per_sec),
    ] {
        assert!(v.is_finite() && v > 0.0, "{label} rate not finite: {v}");
    }

    if smoke {
        println!("\nsmoke OK ({points} points, all four paths bitwise identical)");
        return;
    }

    let peak = serial
        .iter()
        .map(AcPoint::magnitude)
        .fold(0.0_f64, f64::max);
    let json = format!(
        "{{\n  \"ac_sweep\": {{\n    \"architecture\": \"A1\",\n    \"points\": {points},\n    \"passes\": {passes},\n    \"rebuild_points_per_sec\": {rebuild_points_per_sec:.3},\n    \"analysis_points_per_sec\": {analysis_points_per_sec:.3},\n    \"plan_serial_points_per_sec\": {serial_points_per_sec:.3},\n    \"plan_parallel_points_per_sec\": {parallel_points_per_sec:.3},\n    \"plan_vs_analysis_speedup\": {plan_speedup:.3},\n    \"engine_vs_rebuild_speedup\": {engine_speedup:.3},\n    \"threads\": {threads},\n    \"parallel_matches_serial_bitwise\": true\n  }},\n  \"sanity\": {{\n    \"a1_peak_impedance_ohm\": {peak:.9}\n  }}\n}}\n",
    );
    std::fs::write("BENCH_ac.json", &json).unwrap();
    println!("\nwrote BENCH_ac.json");
}
