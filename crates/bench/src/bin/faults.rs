//! Measures the fault-injection sweep engine and solver-resilience
//! path and emits `BENCH_faults.json`.
//!
//! Three things are measured:
//!
//! * **N-1 contingency throughput** — every A2 module opened in turn,
//!   serially (`threads = 1`) and with the auto thread count. The
//!   engine guarantees the two reports are bitwise identical; this
//!   binary asserts it.
//! * **Random-k fault batches** — mixed open/derate/drift/region
//!   scenarios, exercising the full fault taxonomy.
//! * **CG vs fallback rates** — how many scenarios the warm-CG rung
//!   solved alone vs how many needed a cold restart or the dense-LU
//!   fallback, and a Monte-Carlo reference rate so the sweep's cost can
//!   be compared against the PR 1 engine.
//!
//! ```sh
//! cargo run --release -p vpd-bench --bin faults              # full, writes JSON
//! cargo run --release -p vpd-bench --bin faults -- --samples 8   # CI smoke
//! ```
//!
//! Exits non-zero if any reported quantity is non-finite.

use std::time::Instant;
use vpd_converters::VrTopologyKind;
use vpd_core::{
    run_tolerance, Architecture, FaultScenario, FaultSweep, FaultSweepReport, McSettings,
};

fn usage() -> ! {
    eprintln!("usage: faults [--samples N]");
    std::process::exit(2);
}

/// Validates every number the sweep reports; non-finite output is a
/// solver bug, so die loudly rather than writing a poisoned JSON.
fn check_finite(label: &str, report: &FaultSweepReport) {
    let mut bad = Vec::new();
    for o in &report.outcomes {
        let fields = [
            ("worst_drop", o.worst_drop.value()),
            ("surviving_min", o.surviving_min.value()),
            ("surviving_max", o.surviving_max.value()),
            ("surviving_mean", o.surviving_mean.value()),
            ("spread", o.spread),
        ];
        for (name, v) in fields {
            if !v.is_finite() {
                bad.push(format!("{label}/{}: {name} = {v}", o.name));
            }
        }
    }
    if !report.worst_drop.value().is_finite() || !report.max_spread.is_finite() {
        bad.push(format!("{label}: summary non-finite"));
    }
    if !bad.is_empty() {
        for b in &bad {
            eprintln!("non-finite output: {b}");
        }
        std::process::exit(1);
    }
}

fn main() {
    let mut samples: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--samples" => {
                let v = args.next().unwrap_or_else(|| usage());
                samples = Some(v.parse().unwrap_or_else(|_| usage()));
            }
            _ => usage(),
        }
    }
    let smoke = samples.is_some();

    let (spec, calib, _) = vpd_bench::paper_env();
    vpd_bench::banner(if smoke {
        "Fault-sweep smoke"
    } else {
        "Fault-sweep benchmark (BENCH_faults.json)"
    });

    let sweep = FaultSweep::new(
        Architecture::InterposerEmbedded,
        VrTopologyKind::Dsch,
        &spec,
        &calib,
    )
    .unwrap();

    // --- N-1 contingency, serial vs parallel ----------------------------
    let mut n_minus_1 = FaultScenario::n_minus_1(sweep.vr_count());
    if let Some(n) = samples {
        n_minus_1.truncate(n.max(1));
    }
    let n1_count = n_minus_1.len();

    let serial_start = Instant::now();
    let serial = sweep.run(&n_minus_1, 1).unwrap();
    let serial_per_sec = n1_count as f64 / serial_start.elapsed().as_secs_f64();

    let parallel_start = Instant::now();
    let parallel = sweep.run(&n_minus_1, 0).unwrap();
    let parallel_per_sec = n1_count as f64 / parallel_start.elapsed().as_secs_f64();

    assert_eq!(serial, parallel, "thread count must not change the report");
    check_finite("n-1", &serial);
    println!(
        "A2 N-1 ({n1_count} scenarios): serial {serial_per_sec:.1}/s, \
         parallel {parallel_per_sec:.1}/s, worst drop {:.4} V ({}), \
         fallbacks {}",
        serial.worst_drop.value(),
        serial.worst_scenario,
        serial.fallback_count,
    );

    // --- Random-k batch over the full fault taxonomy --------------------
    let k = 3;
    let batch = samples.unwrap_or(128);
    let random = FaultScenario::random_k(k, batch, 0xFA17, sweep.vr_count(), sweep.grid_side());
    let random_start = Instant::now();
    let random_report = sweep.run(&random, 0).unwrap();
    let random_per_sec = batch as f64 / random_start.elapsed().as_secs_f64();
    check_finite("random-k", &random_report);

    let evaluated = n1_count + batch;
    let cg_only = evaluated - serial.fallback_count - random_report.fallback_count;
    let fallback_rate = 1.0 - cg_only as f64 / evaluated as f64;
    println!(
        "random-{k} ({batch} scenarios): {random_per_sec:.1}/s, worst drop {:.4} V, \
         max spread {:.1}x, overloaded scenarios {}",
        random_report.worst_drop.value(),
        random_report.max_spread,
        random_report.overloaded_scenarios,
    );
    println!(
        "solver path: {cg_only}/{evaluated} scenarios on warm CG alone \
         (fallback rate {:.1}%), stagnations {}",
        100.0 * fallback_rate,
        serial.stagnation_count + random_report.stagnation_count,
    );

    if smoke {
        println!("\nsmoke OK ({evaluated} scenarios, all outputs finite)");
        return;
    }

    // --- Monte-Carlo reference rate -------------------------------------
    // The acceptance bar: a fault scenario costs about the same as a
    // Monte-Carlo sample (restamp + warm solve), so the sweep should
    // hold at least half the MC engine's serial rate.
    let mc_samples = 200;
    let mc_start = Instant::now();
    run_tolerance(
        Architecture::InterposerPeriphery,
        VrTopologyKind::Dsch,
        &spec,
        &calib,
        &McSettings {
            samples: mc_samples,
            threads: 1,
            ..McSettings::default()
        },
    )
    .unwrap();
    let mc_per_sec = mc_samples as f64 / mc_start.elapsed().as_secs_f64();
    let vs_mc = serial_per_sec / mc_per_sec;
    println!(
        "reference: monte-carlo serial {mc_per_sec:.1}/s, \
         fault sweep at {:.2}x of it",
        vs_mc
    );
    assert!(
        vs_mc >= 0.5,
        "fault-sweep throughput {serial_per_sec:.1}/s fell below half the MC rate {mc_per_sec:.1}/s"
    );

    let threads = std::thread::available_parallelism().map_or(1, usize::from);
    let json = format!(
        "{{\n  \"n_minus_1\": {{\n    \"architecture\": \"A2\",\n    \"scenarios\": {n1_count},\n    \"serial_scenarios_per_sec\": {serial_per_sec:.3},\n    \"parallel_scenarios_per_sec\": {parallel_per_sec:.3},\n    \"threads\": {threads},\n    \"worst_drop_volts\": {:.6},\n    \"worst_scenario\": \"{}\",\n    \"max_spread\": {:.3},\n    \"parallel_matches_serial_bitwise\": true\n  }},\n  \"random_k\": {{\n    \"k\": {k},\n    \"scenarios\": {batch},\n    \"scenarios_per_sec\": {random_per_sec:.3},\n    \"worst_drop_volts\": {:.6},\n    \"max_spread\": {:.3},\n    \"overloaded_scenarios\": {}\n  }},\n  \"solver\": {{\n    \"scenarios_evaluated\": {evaluated},\n    \"warm_cg_only\": {cg_only},\n    \"fallback_rate\": {fallback_rate:.4},\n    \"stagnations\": {}\n  }},\n  \"reference\": {{\n    \"monte_carlo_serial_samples_per_sec\": {mc_per_sec:.3},\n    \"sweep_vs_monte_carlo\": {vs_mc:.3}\n  }}\n}}\n",
        serial.worst_drop.value(),
        serial.worst_scenario,
        serial.max_spread,
        random_report.worst_drop.value(),
        random_report.max_spread,
        random_report.overloaded_scenarios,
        serial.stagnation_count + random_report.stagnation_count,
    );
    std::fs::write("BENCH_faults.json", &json).unwrap();
    println!("\nwrote BENCH_faults.json");
}
