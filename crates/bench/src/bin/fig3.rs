//! Quantifies Figure 3: the power saved by moving the 48 V→1 V
//! conversion point from the PCB toward the interposer.
//!
//! The figure in the paper is an illustration; here the same lateral
//! path is swept — a fraction `f` of it is crossed *after* conversion
//! (at 1 V / 1 kA), the rest before (at 48 V / ~21 A). `f = 1` is the
//! traditional PCB conversion; `f = 0` is regulation on the interposer.

use vpd_report::{Align, Table};
use vpd_units::{Amps, Volts};

fn main() {
    let (spec, calib, _) = vpd_bench::paper_env();
    vpd_bench::banner("Figure 3 — savings vs. conversion point (quantified)");

    let r_total = calib.horizontal_pol_resistance;
    let i_pol = spec.pol_current();
    let i_hv = Amps::new(spec.pol_power().value() / spec.pcb_voltage().value());

    let mut t = Table::new(vec![
        "Conversion point (fraction of lateral path at 1 V)",
        "Horizontal loss (W)",
        "Total w/ 90% converter (W)",
        "Loss (% of 1 kW)",
    ]);
    for c in 1..4 {
        t.align(c, Align::Right);
    }
    for f in [1.0, 0.75, 0.5, 0.25, 0.1, 0.0] {
        let r_lv = r_total * f;
        let r_hv = r_total * (1.0 - f);
        let horizontal = i_pol.dissipation_in(r_lv) + i_hv.dissipation_in(r_hv);
        // The converter (flat 90%) must source the POL power plus the
        // 1 V-side lateral loss.
        let conv_out = spec.pol_power() + i_pol.dissipation_in(r_lv);
        let conv_loss = conv_out * (1.0 / 0.9 - 1.0);
        let total = horizontal + conv_loss;
        t.row(vec![
            match f {
                f if (f - 1.0).abs() < 1e-9 => "1.00 (PCB conversion, A0)".to_owned(),
                f if f.abs() < 1e-9 => "0.00 (on-interposer regulation)".to_owned(),
                f => format!("{f:.2}"),
            },
            format!("{:.1}", horizontal.value()),
            format!("{:.1}", total.value()),
            format!("{:.1}%", total.percent_of(spec.pol_power())),
        ]);
    }
    print!("{}", t.render());

    let _ = Volts::new(48.0);
    println!(
        "observation (paper Fig. 3): every millimeter of lateral routing crossed at\n\
         1 V instead of 48 V costs (48)² ≈ 2300x more power; regulating on the\n\
         interposer removes nearly the entire horizontal loss."
    );
}
