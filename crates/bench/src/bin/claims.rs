//! Reproduces the §IV text claims:
//!
//! * **C1** — interconnect utilization: the reference architecture
//!   needs a ~1,200 mm² die (0.8 A/mm²) under the 60%/85% BGA/C4 caps,
//!   while vertical delivery uses 1% of BGAs, 2% of C4s, 10% of TSVs,
//!   and <20% of Cu pads on a 500 mm² die.
//! * **C2** — per-VR current spread: 16–27 A (A1) and 10–93 A (A2).
//! * **C3** — horizontal loss reduced up to 19× (A3@12V) and 7×
//!   (A3@6V).

use vpd_converters::VrTopologyKind;
use vpd_core::{analyze, solve_sharing, Architecture, VrPlacement};
use vpd_package::{required_platform_area, InterconnectTech, ViaAllocation};
use vpd_report::{Align, Table};
use vpd_units::{Amps, Volts};

fn main() {
    let (spec, calib, opts) = vpd_bench::paper_env();

    // --- C1: utilization -------------------------------------------------
    vpd_bench::banner("Claim C1 — vertical-interconnect utilization (paper / measured)");
    let i_hv = Amps::new(spec.pol_power().value() / spec.pcb_voltage().value());
    let i_pol = spec.pol_current();

    let mut t = Table::new(vec!["Level", "Current", "Paper", "Measured"]);
    t.align(3, Align::Right);
    let cases = [
        (InterconnectTech::BGA, i_hv, "1%"),
        (InterconnectTech::C4, i_hv, "2%"),
        (InterconnectTech::TSV, i_pol, "10%"),
        (InterconnectTech::CU_PAD, i_pol, "<20%"),
    ];
    for (tech, current, paper) in cases {
        let alloc = ViaAllocation::for_current(tech, current, tech.default_platform_area).unwrap();
        t.row(vec![
            tech.name.to_owned(),
            format!("{:.1} A", current.value()),
            paper.to_owned(),
            format!("{:.1}%", alloc.utilization() * 100.0),
        ]);
    }
    print!("{}", t.render());

    let a0_die = required_platform_area(InterconnectTech::C4, i_pol).unwrap();
    let a0_density = i_pol.value() / a0_die.as_square_millimeters();
    println!(
        "reference die size:       paper 1,200 mm² / measured {:.0} mm²\n\
         reference power density:  paper 0.8 A/mm² / measured {a0_density:.2} A/mm²\n",
        a0_die.as_square_millimeters()
    );

    // --- C2: per-VR current spread ---------------------------------------
    vpd_bench::banner("Claim C2 — per-VR current load (paper / measured)");
    let peri = solve_sharing(&spec, &calib, VrPlacement::Periphery, 48).unwrap();
    let below = solve_sharing(&spec, &calib, VrPlacement::BelowDie, 48).unwrap();
    let mut c2 = Table::new(vec![
        "Architecture",
        "Paper range",
        "Measured range",
        "Mean",
    ]);
    c2.row(vec![
        "A1 (periphery)".into(),
        "16 – 27 A".into(),
        format!("{:.1} – {:.1} A", peri.min().value(), peri.max().value()),
        format!("{:.1} A", peri.mean().value()),
    ]);
    c2.row(vec![
        "A2 (below die)".into(),
        "10 – 93 A".into(),
        format!("{:.1} – {:.1} A", below.min().value(), below.max().value()),
        format!("{:.1} A", below.mean().value()),
    ]);
    print!("{}", c2.render());

    // --- C3: horizontal-loss reduction ------------------------------------
    vpd_bench::banner("Claim C3 — horizontal loss reduction vs. A0 (paper / measured)");
    let a0 = analyze(
        Architecture::Reference,
        VrTopologyKind::Dsch,
        &spec,
        &calib,
        &opts,
    )
    .unwrap();
    let h0 = a0.breakdown.horizontal_loss();
    let mut c3 = Table::new(vec!["Architecture", "Horizontal loss", "Paper", "Measured"]);
    c3.align(1, Align::Right);
    c3.row(vec![
        "A0".into(),
        format!("{:.0} W", h0.value()),
        "baseline".into(),
        "baseline".into(),
    ]);
    for (bus, paper) in [(12.0, "19x"), (6.0, "7x")] {
        let a3 = analyze(
            Architecture::TwoStage {
                bus: Volts::new(bus),
            },
            VrTopologyKind::Dsch,
            &spec,
            &calib,
            &opts,
        )
        .unwrap();
        let h3 = a3.breakdown.horizontal_loss();
        c3.row(vec![
            format!("A3@{bus:.0}V"),
            format!("{:.1} W", h3.value()),
            paper.to_owned(),
            format!("{:.1}x", h0.value() / h3.value()),
        ]);
    }
    print!("{}", c3.render());

    // --- C4: headline aggregates ------------------------------------------
    vpd_bench::banner("Claim C4 — headline aggregates (paper / measured)");
    println!(
        "A0 total loss:   paper 'over 40%' / measured {:.1}%",
        a0.loss_percent()
    );
    let a1 = analyze(
        Architecture::InterposerPeriphery,
        VrTopologyKind::Dsch,
        &spec,
        &calib,
        &opts,
    )
    .unwrap();
    println!(
        "A1/DSCH:         paper '~80% efficiency' / measured {}",
        a1.breakdown.end_to_end_efficiency()
    );
    let b = &a1.breakdown;
    println!(
        "A1/DSCH split:   paper '<10% PPDN, >10% converters' / measured {:.1}% PPDN, {:.1}% converters",
        b.percent_of_pol_power(b.ppdn_loss()),
        b.percent_of_pol_power(b.conversion_loss())
    );
}
