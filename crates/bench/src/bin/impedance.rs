//! Extension experiment E1: PDN output-impedance profiles per
//! architecture — the AC argument for vertical power delivery.

use vpd_circuit::log_sweep;
use vpd_core::{simulate_droop, target_impedance, Architecture, LoadStep, PdnModel, SystemSpec};
use vpd_report::{Align, Table};
use vpd_units::{Hertz, Seconds};

fn main() {
    let spec = SystemSpec::paper_default();
    vpd_bench::banner("Extension E1 — PDN impedance at the die (1 kHz – 1 GHz)");

    // 5% ripple budget against a 25% load step of 1 kA.
    let zt = target_impedance(&spec, 0.05, 0.25);
    println!("target impedance Z_t = 50 mV / 250 A = {zt}\n");

    let freqs = log_sweep(Hertz::from_kilohertz(1.0), Hertz::new(1e9), 13);
    let archs = [
        Architecture::Reference,
        Architecture::InterposerPeriphery,
        Architecture::InterposerEmbedded,
    ];

    let mut t = Table::new(vec!["f", "A0 |Z| (µΩ)", "A1 |Z| (µΩ)", "A2 |Z| (µΩ)"]);
    for c in 1..4 {
        t.align(c, Align::Right);
    }
    let profiles: Vec<Vec<f64>> = archs
        .iter()
        .map(|&a| {
            PdnModel::for_architecture(a)
                .impedance_profile(&freqs)
                .unwrap()
                .iter()
                .map(|p| p.magnitude() * 1e6)
                .collect()
        })
        .collect();
    for (k, f) in freqs.iter().enumerate() {
        t.row(vec![
            format!("{f:.0}"),
            format!("{:.0}", profiles[0][k]),
            format!("{:.0}", profiles[1][k]),
            format!("{:.0}", profiles[2][k]),
        ]);
    }
    print!("{}", t.render());

    let mut s = Table::new(vec!["Architecture", "Peak |Z|", "vs. Z_t", "Verdict"]);
    s.align(1, Align::Right);
    for &a in &archs {
        let peak = PdnModel::for_architecture(a).peak_impedance().unwrap();
        let ratio = peak.value() / zt.value();
        s.row(vec![
            a.name(),
            format!("{peak}"),
            format!("{ratio:.1}x"),
            if ratio <= 1.0 {
                "meets target".into()
            } else {
                "violates target".into()
            },
        ]);
    }
    print!("{}", s.render());

    vpd_bench::banner("Time domain — 250 A → 1 kA load step (transient solve)");
    let mut d = Table::new(vec![
        "Architecture",
        "Droop",
        "ΔI·|Z|max bound",
        "5% budget",
    ]);
    d.align(1, Align::Right);
    d.align(2, Align::Right);
    let step = LoadStep::paper_default(&spec);
    for &a in &archs {
        let r = simulate_droop(
            &PdnModel::for_architecture(a),
            &step,
            Seconds::from_microseconds(60.0),
            Seconds::from_nanoseconds(10.0),
        )
        .unwrap();
        d.row(vec![
            a.name(),
            format!("{}", r.droop),
            format!("{}", r.impedance_bound),
            if r.droop.value() <= 0.05 {
                "ok".into()
            } else {
                "VIOLATED".into()
            },
        ]);
    }
    print!("{}", d.render());

    println!(
        "\nthe vertical architectures shrink the regulator-to-die loop from ~15 nH of\n\
         board routing to tens of pH of vertical attach, flattening the profile by\n\
         two orders of magnitude — the AC counterpart of the paper's DC argument."
    );
}
