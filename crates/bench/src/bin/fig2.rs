//! Reproduces Figure 2: current demand and PPDN-resistance trend —
//! current demand has grown by orders of magnitude while the packaging
//! feature improved only ~4×.

use vpd_core::survey::figure2_trend;
use vpd_report::{Align, Table};

fn main() {
    vpd_bench::banner("Figure 2 — current demand vs. packaging-feature trend");

    let trend = figure2_trend();
    let baseline = trend[0];
    let mut t = Table::new(vec![
        "Year",
        "Power density (W/cm²)",
        "Current demand, 200 mm² die (A)",
        "Packaging pitch (µm)",
        "Relative R_PPDN",
        "Relative I²R loss",
    ]);
    for c in 1..6 {
        t.align(c, Align::Right);
    }
    for p in &trend {
        let i_rel = p.current_demand() / baseline.current_demand();
        let r_rel = p.relative_ppdn_resistance(&baseline);
        t.row(vec![
            p.year.to_string(),
            format!("{:.1}", p.power_density_w_per_cm2),
            format!("{:.1}", p.current_demand().value()),
            format!("{:.0}", p.packaging_pitch_um),
            format!("{:.2}x", r_rel),
            format!("{:.0}x", i_rel * i_rel * r_rel),
        ]);
    }
    print!("{}", t.render());

    let last = trend.last().unwrap();
    println!(
        "observation (paper §I): current demand grew {:.0}x while the packaging\n\
         feature shrank only {:.1}x — denser vertical interconnect cannot offset the\n\
         I² growth; the PPDN loss trend grows by >10^4.",
        last.current_demand() / baseline.current_demand(),
        baseline.packaging_pitch_um / last.packaging_pitch_um,
    );
}
