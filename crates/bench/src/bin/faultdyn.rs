//! Measures the dynamic fault power-integrity engines and emits
//! `BENCH_faultdyn.json`.
//!
//! The tentpole claim is **plan reuse**: every engine compiles its
//! solver state once and restamps per scenario, so a contingency set
//! costs restamp + warm solves rather than a rebuild per scenario.
//! Three paths are measured, each reuse-vs-rebuild:
//!
//! * **Faulted impedance** — one compiled AC plan value-restamped per
//!   fault scenario, against rebuilding the faulted netlist and
//!   sweeping it from scratch.
//! * **VR-failure transients** — one compiled transient plan whose
//!   switch-config LU cache absorbs the mid-run topology flip, against
//!   compiling a fresh plan per failure time.
//! * **Faulted DC solves** — the warm `SharingSolver` restamp path the
//!   cascade couples through its thermal loop, against a cold grid
//!   build (ordering + symbolic + nominal solve) per scenario. This is
//!   the headline `plan_reuse_speedup`: one warm solve per scenario
//!   against one rebuild per scenario, nothing else in the timer.
//! * **Electro-thermal cascade** — the full coupled ladder, where the
//!   fixed-point iterations dominate both paths, so the speedup is
//!   structurally smaller than the bare DC path's.
//!
//! Every engine's serial report is asserted bitwise-equal to its
//! parallel report before any rate is trusted.
//!
//! ```sh
//! cargo run --release -p vpd-bench --bin faultdyn              # full, writes JSON
//! cargo run --release -p vpd-bench --bin faultdyn -- --samples 4   # CI smoke
//! ```
//!
//! Exits non-zero if any reported quantity is non-finite.

use std::time::Instant;
use vpd_converters::VrTopologyKind;
use vpd_core::{
    CascadeLadder, CascadeSettings, FaultImpedanceSweep, FaultScenario, FaultSweep,
    FaultTransientSweep, ImpedanceSweepSettings, LoadStep, PdnModel, VrFailureScenario,
};
use vpd_units::{Hertz, Seconds};

const ARCH: vpd_core::Architecture = vpd_core::Architecture::InterposerEmbedded;

fn usage() -> ! {
    eprintln!("usage: faultdyn [--samples N]");
    std::process::exit(2);
}

/// Dies loudly on any non-finite reported quantity instead of writing
/// a poisoned JSON.
fn check_finite(label: &str, values: &[(&str, f64)]) {
    let bad: Vec<String> = values
        .iter()
        .filter(|(_, v)| !v.is_finite())
        .map(|(name, v)| format!("{label}: {name} = {v}"))
        .collect();
    if !bad.is_empty() {
        for b in &bad {
            eprintln!("non-finite output: {b}");
        }
        std::process::exit(1);
    }
}

fn main() {
    let mut samples: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--samples" => {
                let v = args.next().unwrap_or_else(|| usage());
                samples = Some(v.parse().unwrap_or_else(|_| usage()));
            }
            _ => usage(),
        }
    }
    let smoke = samples.is_some();

    let (spec, calib, _) = vpd_bench::paper_env();
    vpd_bench::banner(if smoke {
        "Dynamic-fault smoke"
    } else {
        "Dynamic-fault benchmark (BENCH_faultdyn.json)"
    });

    // --- Faulted impedance: restamp vs rebuild-per-scenario -------------
    let zsweep = FaultImpedanceSweep::new(ARCH, &spec, &calib).unwrap();
    let mut scenarios = FaultScenario::n_minus_1(zsweep.vr_count());
    if let Some(n) = samples {
        scenarios.truncate(n.max(1));
    }
    let points = if smoke { 16 } else { 48 };
    let freqs: Vec<Hertz> = ImpedanceSweepSettings {
        points,
        threads: 1,
        ..ImpedanceSweepSettings::default()
    }
    .frequencies()
    .unwrap();

    let t = Instant::now();
    let z_serial = zsweep.run(&scenarios, &freqs, 1).unwrap();
    let z_reuse_per_sec = scenarios.len() as f64 / t.elapsed().as_secs_f64();
    let t = Instant::now();
    let z_parallel = zsweep.run(&scenarios, &freqs, 0).unwrap();
    let z_parallel_per_sec = scenarios.len() as f64 / t.elapsed().as_secs_f64();
    assert_eq!(z_serial, z_parallel, "impedance: serial != parallel");

    let t = Instant::now();
    for s in &scenarios {
        // Rebuild path: fresh engine, faulted netlist from scratch, no
        // compiled plan carried between scenarios.
        let fresh = FaultImpedanceSweep::new(ARCH, &spec, &calib).unwrap();
        fresh
            .faulted_model(s)
            .unwrap()
            .impedance_profile(&freqs)
            .unwrap();
    }
    let z_rebuild_per_sec = scenarios.len() as f64 / t.elapsed().as_secs_f64();
    let z_speedup = z_reuse_per_sec / z_rebuild_per_sec;
    check_finite(
        "impedance",
        &[
            ("reuse_per_sec", z_reuse_per_sec),
            ("rebuild_per_sec", z_rebuild_per_sec),
            ("speedup", z_speedup),
            ("worst_peak", z_serial.worst_peak.value()),
        ],
    );
    println!(
        "impedance ({} scenarios x {points} points): reuse {z_reuse_per_sec:.1}/s, \
         rebuild {z_rebuild_per_sec:.1}/s ({z_speedup:.2}x), worst peak {:.3e} Ω ({})",
        scenarios.len(),
        z_serial.worst_peak.value(),
        z_serial.worst_scenario,
    );

    // --- VR-failure transients: shared plan vs compile-per-scenario -----
    let model = PdnModel::for_architecture(ARCH);
    let step = LoadStep::paper_default(&spec);
    let sim = Seconds::from_microseconds(20.0);
    let dt = Seconds::from_nanoseconds(40.0);
    let fail_count = samples.unwrap_or(12);
    let fails = VrFailureScenario::grid(fail_count, Seconds::from_microseconds(16.0));
    let tsweep = FaultTransientSweep::new(ARCH, &model, &step, sim, dt).unwrap();

    let t = Instant::now();
    let t_serial = tsweep.run(&fails, 1).unwrap();
    let t_reuse_per_sec = fails.len() as f64 / t.elapsed().as_secs_f64();
    let t = Instant::now();
    let t_parallel = tsweep.run(&fails, 0).unwrap();
    let t_parallel_per_sec = fails.len() as f64 / t.elapsed().as_secs_f64();
    assert_eq!(t_serial, t_parallel, "transient: serial != parallel");

    let t = Instant::now();
    for s in &fails {
        let fresh = FaultTransientSweep::new(ARCH, &model, &step, sim, dt).unwrap();
        fresh.run(std::slice::from_ref(s), 1).unwrap();
    }
    let t_rebuild_per_sec = fails.len() as f64 / t.elapsed().as_secs_f64();
    let t_speedup = t_reuse_per_sec / t_rebuild_per_sec;
    check_finite(
        "transient",
        &[
            ("reuse_per_sec", t_reuse_per_sec),
            ("rebuild_per_sec", t_rebuild_per_sec),
            ("speedup", t_speedup),
            ("worst_droop", t_serial.worst_droop.value()),
        ],
    );
    println!(
        "transient ({} scenarios, 20 µs @ 40 ns): reuse {t_reuse_per_sec:.1}/s, \
         rebuild {t_rebuild_per_sec:.1}/s ({t_speedup:.2}x), worst droop {:.4} V ({})",
        fails.len(),
        t_serial.worst_droop.value(),
        t_serial.worst_scenario,
    );

    // --- Faulted DC solves: warm restamp vs cold grid build -------------
    let dc_sweep = FaultSweep::new(ARCH, VrTopologyKind::Dsch, &spec, &calib).unwrap();
    let mut dc_scenarios = FaultScenario::n_minus_1(dc_sweep.vr_count());
    if let Some(n) = samples {
        dc_scenarios.truncate(n.max(1));
    }

    let t = Instant::now();
    let dc_serial = dc_sweep.run(&dc_scenarios, 1).unwrap();
    let dc_reuse_per_sec = dc_scenarios.len() as f64 / t.elapsed().as_secs_f64();
    let t = Instant::now();
    let dc_parallel = dc_sweep.run(&dc_scenarios, 0).unwrap();
    let dc_parallel_per_sec = dc_scenarios.len() as f64 / t.elapsed().as_secs_f64();
    assert_eq!(dc_serial, dc_parallel, "dc: serial != parallel");

    let t = Instant::now();
    for s in &dc_scenarios {
        let fresh = FaultSweep::new(ARCH, VrTopologyKind::Dsch, &spec, &calib).unwrap();
        fresh.run(std::slice::from_ref(s), 1).unwrap();
    }
    let dc_rebuild_per_sec = dc_scenarios.len() as f64 / t.elapsed().as_secs_f64();
    let plan_reuse_speedup = dc_reuse_per_sec / dc_rebuild_per_sec;
    check_finite(
        "dc",
        &[
            ("reuse_per_sec", dc_reuse_per_sec),
            ("rebuild_per_sec", dc_rebuild_per_sec),
            ("plan_reuse_speedup", plan_reuse_speedup),
            ("worst_drop", dc_serial.worst_drop.value()),
        ],
    );
    println!(
        "dc ({} scenarios): reuse {dc_reuse_per_sec:.1}/s, \
         rebuild {dc_rebuild_per_sec:.1}/s ({plan_reuse_speedup:.2}x), worst drop {:.4} V ({})",
        dc_scenarios.len(),
        dc_serial.worst_drop.value(),
        dc_serial.worst_scenario,
    );

    // --- Electro-thermal cascade: warm solver vs cold build -------------
    let settings = CascadeSettings::default();
    let ladder = CascadeLadder::new(ARCH, VrTopologyKind::Dsch, &spec, &calib, &settings).unwrap();
    let mut cascade_scenarios = FaultScenario::n_minus_1(ladder.vr_count());
    if let Some(n) = samples {
        cascade_scenarios.truncate(n.max(1));
    }

    let t = Instant::now();
    let c_serial = ladder.run(&cascade_scenarios, 1).unwrap();
    let c_reuse_per_sec = cascade_scenarios.len() as f64 / t.elapsed().as_secs_f64();
    let t = Instant::now();
    let c_parallel = ladder.run(&cascade_scenarios, 0).unwrap();
    let c_parallel_per_sec = cascade_scenarios.len() as f64 / t.elapsed().as_secs_f64();
    assert_eq!(c_serial, c_parallel, "cascade: serial != parallel");

    let t = Instant::now();
    for s in &cascade_scenarios {
        let fresh =
            CascadeLadder::new(ARCH, VrTopologyKind::Dsch, &spec, &calib, &settings).unwrap();
        fresh.run(std::slice::from_ref(s), 1).unwrap();
    }
    let c_rebuild_per_sec = cascade_scenarios.len() as f64 / t.elapsed().as_secs_f64();
    let c_speedup = c_reuse_per_sec / c_rebuild_per_sec;
    check_finite(
        "cascade",
        &[
            ("reuse_per_sec", c_reuse_per_sec),
            ("rebuild_per_sec", c_rebuild_per_sec),
            ("speedup", c_speedup),
            ("worst_drop", c_serial.worst_drop.value()),
        ],
    );
    println!(
        "cascade ({} scenarios): reuse {c_reuse_per_sec:.1}/s, \
         rebuild {c_rebuild_per_sec:.1}/s ({c_speedup:.2}x), \
         {} converged / {} capped / {} diverged, survives: {}",
        cascade_scenarios.len(),
        c_serial.converged,
        c_serial.capped,
        c_serial.diverged,
        c_serial.survives,
    );

    if smoke {
        println!(
            "\nsmoke OK ({} scenarios, all outputs finite, serial == parallel)",
            scenarios.len() + fails.len() + dc_scenarios.len() + cascade_scenarios.len()
        );
        return;
    }

    // The acceptance bar: amortizing one compiled grid across a
    // contingency set must beat rebuilding it per scenario by 3x.
    assert!(
        plan_reuse_speedup >= 3.0,
        "dc plan reuse {plan_reuse_speedup:.2}x fell below the 3x bar"
    );

    let threads = std::thread::available_parallelism().map_or(1, usize::from);
    let json = format!(
        "{{\n  \"impedance\": {{\n    \"architecture\": \"A2\",\n    \"scenarios\": {},\n    \"points\": {points},\n    \"reuse_scenarios_per_sec\": {z_reuse_per_sec:.3},\n    \"rebuild_scenarios_per_sec\": {z_rebuild_per_sec:.3},\n    \"parallel_scenarios_per_sec\": {z_parallel_per_sec:.3},\n    \"speedup\": {z_speedup:.3},\n    \"worst_peak_ohm\": {:.6e},\n    \"parallel_matches_serial_bitwise\": true\n  }},\n  \"transient\": {{\n    \"scenarios\": {},\n    \"sim_us\": 20.0,\n    \"dt_ns\": 40.0,\n    \"reuse_scenarios_per_sec\": {t_reuse_per_sec:.3},\n    \"rebuild_scenarios_per_sec\": {t_rebuild_per_sec:.3},\n    \"parallel_scenarios_per_sec\": {t_parallel_per_sec:.3},\n    \"speedup\": {t_speedup:.3},\n    \"worst_droop_volts\": {:.6},\n    \"parallel_matches_serial_bitwise\": true\n  }},\n  \"dc\": {{\n    \"scenarios\": {},\n    \"reuse_scenarios_per_sec\": {dc_reuse_per_sec:.3},\n    \"rebuild_scenarios_per_sec\": {dc_rebuild_per_sec:.3},\n    \"parallel_scenarios_per_sec\": {dc_parallel_per_sec:.3},\n    \"speedup\": {plan_reuse_speedup:.3},\n    \"worst_drop_volts\": {:.6},\n    \"parallel_matches_serial_bitwise\": true\n  }},\n  \"cascade\": {{\n    \"scenarios\": {},\n    \"reuse_scenarios_per_sec\": {c_reuse_per_sec:.3},\n    \"rebuild_scenarios_per_sec\": {c_rebuild_per_sec:.3},\n    \"parallel_scenarios_per_sec\": {c_parallel_per_sec:.3},\n    \"speedup\": {c_speedup:.3},\n    \"converged\": {},\n    \"survives\": {},\n    \"parallel_matches_serial_bitwise\": true\n  }},\n  \"threads\": {threads},\n  \"plan_reuse_speedup\": {plan_reuse_speedup:.3}\n}}\n",
        scenarios.len(),
        z_serial.worst_peak.value(),
        fails.len(),
        t_serial.worst_droop.value(),
        dc_scenarios.len(),
        dc_serial.worst_drop.value(),
        cascade_scenarios.len(),
        c_serial.converged,
        c_serial.survives,
    );
    std::fs::write("BENCH_faultdyn.json", &json).unwrap();
    println!("\nwrote BENCH_faultdyn.json");
}
