//! Reproduces Figure 7: PCB-to-POL power loss with the proposed power
//! delivery architectures, as per cent of the 1 kW available at the
//! PCB, decomposed into converter, horizontal, vertical, and
//! grid-spreading components.

use vpd_converters::VrTopologyKind;
use vpd_core::{explore_matrix, Architecture};
use vpd_report::{Align, Bar, BarChart, Table};

fn main() {
    let (spec, calib, opts) = vpd_bench::paper_env();
    vpd_bench::banner("Figure 7 — PCB-to-POL power loss breakdown (% of 1 kW)");

    let entries = explore_matrix(
        &[
            VrTopologyKind::Dpmih,
            VrTopologyKind::Dsch,
            VrTopologyKind::ThreeLevelHybridDickson,
        ],
        &spec,
        &calib,
        &opts,
    );

    let mut chart = BarChart::new("total loss (% of 1 kW), stacked by component", 50);
    let mut t = Table::new(vec![
        "Configuration",
        "VR (%)",
        "Horizontal (%)",
        "Grid spread (%)",
        "Vertical (%)",
        "Total (%)",
        "Efficiency",
        "Notes",
    ]);
    for c in 1..7 {
        t.align(c, Align::Right);
    }

    for e in &entries {
        let label = if matches!(e.architecture, Architecture::Reference) {
            "A0".to_owned()
        } else {
            format!("{} {}", e.architecture.name(), e.topology.name())
        };
        match &e.outcome {
            Ok(report) => {
                let b = &report.breakdown;
                let pct = |w: vpd_units::Watts| b.percent_of_pol_power(w);
                chart.bar(Bar::new(
                    label.clone(),
                    vec![
                        ("VR".to_owned(), pct(b.conversion_loss())),
                        ("horizontal".to_owned(), pct(b.horizontal_loss())),
                        ("grid".to_owned(), pct(b.grid_loss())),
                        ("vertical".to_owned(), pct(b.vertical_loss())),
                    ],
                ));
                t.row(vec![
                    label,
                    format!("{:.1}", pct(b.conversion_loss())),
                    format!("{:.1}", pct(b.horizontal_loss())),
                    format!("{:.1}", pct(b.grid_loss())),
                    format!("{:.2}", pct(b.vertical_loss())),
                    format!("{:.1}", report.loss_percent()),
                    format!("{}", b.end_to_end_efficiency()),
                    if report.overloaded {
                        "extrapolated beyond module rating".to_owned()
                    } else {
                        String::new()
                    },
                ]);
            }
            Err(err) => {
                t.row(vec![
                    label,
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    format!("excluded (as in paper): {err}"),
                ]);
            }
        }
    }

    print!("{}", chart.render());
    println!();
    print!("{}", t.render());

    println!(
        "\npaper targets: A0 over 40% loss; proposed architectures ≈80% efficiency;\n\
         every proposed architecture <10% PPDN loss and >10% converter loss; 3LHD\n\
         excluded because its efficiency at the required ~20 A per VR is unpublished."
    );

    // Detailed per-segment table for one representative configuration.
    vpd_bench::banner("Segment detail — A1 with DSCH");
    if let Some(report) = entries.iter().find_map(|e| {
        (matches!(e.architecture, Architecture::InterposerPeriphery)
            && e.topology == VrTopologyKind::Dsch)
            .then(|| e.outcome.as_ref().ok())
            .flatten()
    }) {
        let mut d = Table::new(vec!["Segment", "Power (W)", "% of 1 kW"]);
        d.align(1, Align::Right);
        d.align(2, Align::Right);
        for s in report.breakdown.segments() {
            d.row(vec![
                s.name.clone(),
                format!("{:.2}", s.power.value()),
                format!("{:.2}", report.breakdown.percent_of_pol_power(s.power)),
            ]);
        }
        print!("{}", d.render());
    }
}
