//! Measures the transient plan-reuse engine and emits
//! `BENCH_transient.json`.
//!
//! Four configurations sweep the same load-step amplitude grid over the
//! A2 PDN ladder with an individually-modeled MLCC decap bank at the
//! die — the cap-heavy netlist every real PDN transient runs on:
//!
//! * **rebuild-per-run** — the cold path: the netlist is rebuilt and
//!   the interpreted [`transient`] engine simulates it, once per
//!   amplitude (per-step `Vec` allocations, `HashMap` state, per-step
//!   element dispatch).
//! * **plan-compile-per-run** — a fresh [`TransientPlan`] is compiled
//!   and run once per amplitude: compiled ops and dense state, but the
//!   compile and factorization are paid every run.
//! * **plan reuse, serial** — one compiled plan; each amplitude is a
//!   source-only restamp ([`TransientPlan::set_load_step`]) plus a run.
//!   Repeated runs at the same `dt` re-factor zero times.
//! * **plan reuse, parallel** — the same restamp-and-run closure fanned
//!   over [`par_map_with`] with the auto thread count; the prefactored
//!   plan is cloned per worker, so no worker factors either.
//!
//! The engine guarantees all four produce bitwise-identical die
//! waveforms; this binary asserts it before reporting throughput.
//!
//! ```sh
//! cargo run --release -p vpd-bench --bin transient            # full, writes JSON
//! cargo run --release -p vpd-bench --bin transient -- --runs 4    # CI smoke
//! ```
//!
//! Exits non-zero if any reported quantity is non-finite.

use std::time::Instant;
use vpd_circuit::{transient, ElementId, Netlist, TransientPlan, TransientSettings};
use vpd_core::{par_map_with, Architecture, PdnModel};
use vpd_units::{Amps, Farads, Seconds, Volts};

/// Individually-modeled MLCC branches hung off the die node.
const DECAP_BRANCHES: usize = 48;
/// Load before the step (25% of the paper's 1 kA POL current).
const I_BASE: f64 = 250.0;
/// When the step fires.
const STEP_AT_US: f64 = 2.0;

fn usage() -> ! {
    eprintln!("usage: transient [--runs N]");
    std::process::exit(2);
}

/// The benchmark netlist: the A2 ladder, the decap bank, and a load
/// step to `after` amps. Rebuilt from scratch by the cold path.
fn build(after: f64) -> (Netlist, ElementId, TransientSettings) {
    let model = PdnModel::for_architecture(Architecture::InterposerEmbedded);
    let (mut net, die) = model.netlist().expect("PDN netlist");
    for k in 0..DECAP_BRANCHES {
        let c = 100.0e-9 * (1.0 + 0.1 * k as f64);
        net.capacitor(die, net.ground(), Farads::new(c), Volts::new(1.0))
            .expect("decap");
    }
    let el = net
        .step_current_source(
            die,
            net.ground(),
            Amps::new(I_BASE),
            Amps::new(after),
            Seconds::from_microseconds(STEP_AT_US),
        )
        .expect("load step");
    let settings = TransientSettings::new(
        Seconds::from_microseconds(20.0),
        Seconds::from_nanoseconds(10.0),
    )
    .expect("window");
    (net, el, settings)
}

fn main() {
    let mut runs: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--runs" => {
                let v = args.next().unwrap_or_else(|| usage());
                runs = Some(v.parse().unwrap_or_else(|_| usage()));
            }
            _ => usage(),
        }
    }
    let smoke = runs.is_some();
    let runs = runs.unwrap_or(40).max(2);

    vpd_bench::banner(if smoke {
        "transient-plan smoke"
    } else {
        "transient-plan benchmark (BENCH_transient.json)"
    });

    // The amplitude grid: 500 A … 980 A in `runs` points.
    let amps: Vec<f64> = (0..runs)
        .map(|k| 500.0 + 480.0 * k as f64 / (runs - 1) as f64)
        .collect();
    let (net, el, settings) = build(amps[0]);
    let steps = (settings.t_stop.value() / settings.dt.value()).round() as usize;
    let (_, die) = PdnModel::for_architecture(Architecture::InterposerEmbedded)
        .netlist()
        .expect("die node");

    // Warm up the allocator and page cache once before timing.
    let _ = transient(&net, &settings).expect("warmup");

    // --- rebuild-per-run: netlist + interpreted engine every run --------
    let start = Instant::now();
    let mut rebuilt: Vec<Vec<f64>> = Vec::with_capacity(runs);
    for &a in &amps {
        let (net, _, settings) = build(a);
        let r = transient(&net, &settings).expect("cold run");
        rebuilt.push(r.voltage(die).to_vec());
    }
    let rebuild_runs_per_sec = runs as f64 / start.elapsed().as_secs_f64();

    // --- plan-compile-per-run: compiled engine, cold plan every run -----
    let start = Instant::now();
    let mut compiled: Vec<Vec<f64>> = Vec::with_capacity(runs);
    for &a in &amps {
        let (net, _, settings) = build(a);
        let mut plan = TransientPlan::compile(&net, &settings).expect("compile");
        let r = plan.run().expect("compiled run");
        compiled.push(r.voltage(die).to_vec());
    }
    let compile_runs_per_sec = runs as f64 / start.elapsed().as_secs_f64();

    // --- plan reuse, serial: one plan, restamp + rerun ------------------
    let mut plan = TransientPlan::compile(&net, &settings).expect("compile");
    plan.run().expect("warmup run");
    let factors_before = plan.cached_factorizations();
    let start = Instant::now();
    let mut reused: Vec<Vec<f64>> = Vec::with_capacity(runs);
    for &a in &amps {
        plan.set_load_step(
            el,
            Amps::new(I_BASE),
            Amps::new(a),
            Seconds::from_microseconds(STEP_AT_US),
        )
        .expect("restamp");
        let r = plan.run().expect("reused run");
        reused.push(r.voltage(die).to_vec());
    }
    let reuse_runs_per_sec = runs as f64 / start.elapsed().as_secs_f64();
    let refactored = plan.cached_factorizations() - factors_before;

    // --- plan reuse, parallel: prefactored clones per worker ------------
    plan.prefactor().expect("prefactor");
    let start = Instant::now();
    let parallel: Vec<Vec<f64>> = par_map_with(0, &amps, &plan, |plan, &a| {
        plan.set_load_step(
            el,
            Amps::new(I_BASE),
            Amps::new(a),
            Seconds::from_microseconds(STEP_AT_US),
        )
        .expect("restamp");
        plan.run().expect("parallel run").voltage(die).to_vec()
    });
    let parallel_runs_per_sec = runs as f64 / start.elapsed().as_secs_f64();

    assert_eq!(
        compiled, rebuilt,
        "compiled plan must match the interpreter"
    );
    assert_eq!(reused, rebuilt, "restamped reruns must match cold rebuilds");
    assert_eq!(parallel, reused, "thread count must not change the bits");
    assert_eq!(refactored, 0, "plan reuse must re-factor zero times");

    let plan_speedup = reuse_runs_per_sec / rebuild_runs_per_sec;
    let engine_speedup = parallel_runs_per_sec / rebuild_runs_per_sec;
    let threads = std::thread::available_parallelism().map_or(1, usize::from);
    println!(
        "transient ({runs} runs x {steps} steps, A2 + {DECAP_BRANCHES} decaps): \
         rebuild {rebuild_runs_per_sec:.1}/s, compile-per-run {compile_runs_per_sec:.1}/s, \
         plan reuse {reuse_runs_per_sec:.1}/s ({plan_speedup:.1}x vs rebuild), \
         parallel x{threads} {parallel_runs_per_sec:.1}/s ({engine_speedup:.1}x vs rebuild)"
    );

    for (label, v) in [
        ("rebuild", rebuild_runs_per_sec),
        ("compile", compile_runs_per_sec),
        ("reuse", reuse_runs_per_sec),
        ("parallel", parallel_runs_per_sec),
    ] {
        assert!(v.is_finite() && v > 0.0, "{label} rate not finite: {v}");
    }

    if smoke {
        println!("\nsmoke OK ({runs} runs, all four paths bitwise identical)");
        return;
    }

    // Sanity: the stepped die waveform actually moves (peak-to-peak).
    let full = reused.last().expect("runs >= 2");
    let lo = full.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = full.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let swing = hi - lo;
    assert!(swing > 0.0, "die waveform is flat");
    let json = format!(
        "{{\n  \"transient_plan\": {{\n    \"architecture\": \"A2\",\n    \"decap_branches\": {DECAP_BRANCHES},\n    \"steps_per_run\": {steps},\n    \"runs\": {runs},\n    \"rebuild_runs_per_sec\": {rebuild_runs_per_sec:.3},\n    \"plan_compile_runs_per_sec\": {compile_runs_per_sec:.3},\n    \"plan_reuse_runs_per_sec\": {reuse_runs_per_sec:.3},\n    \"plan_parallel_runs_per_sec\": {parallel_runs_per_sec:.3},\n    \"plan_reuse_vs_rebuild_speedup\": {plan_speedup:.3},\n    \"engine_vs_rebuild_speedup\": {engine_speedup:.3},\n    \"threads\": {threads},\n    \"refactorizations_during_reuse\": {refactored},\n    \"parallel_matches_serial_bitwise\": true\n  }},\n  \"sanity\": {{\n    \"a2_full_step_swing_v\": {swing:.9}\n  }}\n}}\n",
    );
    std::fs::write("BENCH_transient.json", &json).unwrap();
    println!("\nwrote BENCH_transient.json");
}
