//! Measures the `vpd-serve` service and emits `BENCH_serve.json`.
//!
//! Phases, all over TCP servers on ephemeral loopback ports:
//!
//! * **cold vs warm** — a single closed-loop client runs the mixed
//!   scenario set once against an empty scenario cache (every request
//!   compiles its plan) and then repeatedly against the warmed cache.
//!   Scenario sizes are chosen so plan compilation dominates the solve,
//!   which is exactly the workload the cache exists for.
//! * **saturation curve** — N concurrent connections (for several N),
//!   each closed-loop with one request in flight, issue batchable
//!   `sharing_sweep` requests against the warm server; queued requests
//!   sharing the compiled plan coalesce into multi-RHS block solves.
//!   Per-request latencies aggregate into p50/p95/p99 per connection
//!   count; the peak entry is compared against the
//!   thread-per-connection baseline recorded before this redesign.
//! * **batching on vs off** — the same workload against a `max_batch=1`
//!   server isolates how much of the peak the coalescing contributes.
//! * **determinism audits** — every response seen by every client is
//!   compared against a cold oracle (a zero-capacity
//!   [`Dispatcher`](vpd_serve::Dispatcher) dispatching one request at a
//!   time): cached bits must equal cold bits, and batched bits must
//!   equal sequential bits, request by request.
//! * **shed validation** — a tiny-queue server is flooded with
//!   one-millisecond deadlines; every response must stay well-formed
//!   NDJSON with a typed code (`ok`, `queue_full`, `shed`,
//!   `deadline_exceeded`) — overload must never hang or disconnect.
//!
//! ```sh
//! cargo run --release -p vpd-bench --bin serve             # full, writes JSON
//! cargo run --release -p vpd-bench --bin serve -- --smoke  # CI smoke
//! ```
//!
//! Exits non-zero if any rate is non-finite or an audit fails.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Instant;

use vpd_report::Json;
use vpd_serve::proto::Request;
use vpd_serve::{Dispatcher, ServeConfig, Server};

/// Peak throughput of the previous thread-per-connection, unbatched
/// server (PR 5's `BENCH_serve.json`), the yardstick for this redesign.
const BASELINE_THROUGHPUT: f64 = 658.879;

/// p99 latency of that baseline, milliseconds; the redesign must not
/// trade its throughput for tail latency.
const BASELINE_P99_MS: f64 = 26.0686;

fn usage() -> ! {
    eprintln!("usage: serve [--smoke]");
    std::process::exit(2);
}

/// The mixed scenario set: every cacheable analysis kind, sized so the
/// compiled plan (grid factorization, AC plan, fault nominal) costs far
/// more than one warm solve.
fn scenarios() -> Vec<String> {
    let mut lines = Vec::new();
    for arch in ["a0", "a1", "a2", "a3-12"] {
        lines.push(format!(
            r#"{{"kind":"analyze","params":{{"arch":"{arch}"}}}}"#
        ));
    }
    for placement in ["periphery", "below"] {
        lines.push(format!(
            r#"{{"kind":"sharing","params":{{"placement":"{placement}","modules":48}}}}"#
        ));
    }
    lines.push(r#"{"kind":"mc","params":{"arch":"a1","samples":6,"seed":9}}"#.to_owned());
    lines.push(r#"{"kind":"impedance","params":{"arch":"a1","points":16}}"#.to_owned());
    lines.push(r#"{"kind":"impedance","params":{"arch":"a2","points":16}}"#.to_owned());
    lines.push(
        r#"{"kind":"faults","params":{"arch":"a2","random_k":2,"count":4,"seed":7}}"#.to_owned(),
    );
    lines
}

/// The saturation workload: per-client `sharing_sweep` requests that
/// share one compiled plan (same placement and module count) but carry
/// **distinct** setpoint columns, so coalescing is real batching, not
/// deduplication.
fn sweep_line(client: usize) -> String {
    let a = 1.0 + 0.0005 * client as f64;
    let b = 0.99 + 0.0002 * client as f64;
    format!(
        r#"{{"kind":"sharing_sweep","params":{{"placement":"below","modules":48,"setpoints":[{a},{b}]}}}}"#
    )
}

/// One closed-loop pass: send each line, wait for its response, record
/// the latency. Returns the response body per request line.
fn run_pass(addr: &str, lines: &[String], latencies: &mut Vec<f64>) -> Vec<String> {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    let mut responses = Vec::with_capacity(lines.len());
    let mut buf = String::new();
    for line in lines {
        let start = Instant::now();
        writeln!(writer, "{line}").expect("send request");
        writer.flush().expect("flush request");
        buf.clear();
        let n = reader.read_line(&mut buf).expect("read response");
        assert!(n > 0, "server closed mid-pass");
        latencies.push(start.elapsed().as_secs_f64());
        responses.push(buf.trim_end().to_owned());
    }
    responses
}

/// Extracts the serialized `result` document from a success response.
fn result_of(line: &str) -> String {
    let doc = Json::parse(line).expect("response parses");
    assert_eq!(
        doc.get("ok").and_then(Json::as_bool),
        Some(true),
        "request failed: {line}"
    );
    doc.get("result").expect("result present").to_string()
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty());
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// One saturation measurement: `conns` concurrent connections, each
/// closed-loop with one request in flight, all driven from one client
/// thread (the client multiplexes exactly like the server does — the
/// point of the measurement is many *connections*, and a
/// thread-per-connection client on a small host would measure its own
/// scheduler, not the server). Each cycle writes every connection's
/// request, then reads every response; per-request latency runs from
/// that request's write to its response read. Returns (throughput
/// req/s, p50 ms, p95 ms, p99 ms, last responses per connection).
fn saturate(addr: &str, conns: usize, passes: usize) -> (f64, f64, f64, f64, Vec<String>) {
    let mut writers = Vec::with_capacity(conns);
    let mut readers = Vec::with_capacity(conns);
    let mut lines = Vec::with_capacity(conns);
    for c in 0..conns {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        writers.push(stream.try_clone().expect("clone stream"));
        readers.push(BufReader::new(stream));
        let mut line = sweep_line(c);
        line.push('\n');
        lines.push(line);
    }
    let mut latencies = Vec::with_capacity(conns * passes);
    let mut responses = vec![String::new(); conns];
    let mut sent = vec![Instant::now(); conns];
    let mut buf = String::new();
    let start = Instant::now();
    for _ in 0..passes {
        for (c, writer) in writers.iter_mut().enumerate() {
            sent[c] = Instant::now();
            writer.write_all(lines[c].as_bytes()).expect("send request");
        }
        for (c, reader) in readers.iter_mut().enumerate() {
            buf.clear();
            let n = reader.read_line(&mut buf).expect("read response");
            assert!(n > 0, "server closed mid-pass");
            latencies.push(sent[c].elapsed().as_secs_f64());
            responses[c] = buf.trim_end().to_owned();
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    let throughput = (conns * passes) as f64 / elapsed;
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let (p50, p95, p99) = (
        percentile(&latencies, 0.50) * 1e3,
        percentile(&latencies, 0.95) * 1e3,
        percentile(&latencies, 0.99) * 1e3,
    );
    (throughput, p50, p95, p99, responses)
}

/// Floods a deliberately tiny server with doomed deadlines and checks
/// that every response is well-formed, typed NDJSON. Returns
/// (responses checked, rejects seen).
fn validate_shedding(smoke: bool) -> (usize, usize) {
    let cfg = ServeConfig {
        workers: 1,
        queue_depth: 2,
        cache_capacity: 8,
        max_batch: 1,
        ..ServeConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", cfg).expect("bind shed server");
    let addr = server.local_addr().expect("local addr").to_string();
    let thread = std::thread::spawn(move || server.run());
    // Warm the admission controller's service-time estimate.
    let warm = vec![r#"{"id":0,"kind":"sharing","params":{"modules":48}}"#.to_owned()];
    vpd_serve::call(&addr, &warm, false).expect("shed warmup");
    let flood: Vec<String> = (0..if smoke { 8 } else { 32 })
        .map(|i| {
            format!(r#"{{"id":{i},"kind":"sharing","params":{{"modules":48}},"deadline_ms":1}}"#)
        })
        .collect();
    let responses = vpd_serve::call(&addr, &flood, false).expect("shed flood");
    assert_eq!(responses.len(), flood.len(), "overload dropped responses");
    let mut rejects = 0usize;
    for line in &responses {
        let doc = Json::parse(line).expect("shed response must stay well-formed NDJSON");
        match doc.get("ok").and_then(Json::as_bool) {
            Some(true) => {}
            Some(false) => {
                let code = doc
                    .get("error")
                    .and_then(|e| e.get("code"))
                    .map(|c| c.to_string())
                    .unwrap_or_default();
                assert!(
                    ["\"queue_full\"", "\"shed\"", "\"deadline_exceeded\""]
                        .contains(&code.as_str()),
                    "untyped overload response: {line}"
                );
                rejects += 1;
            }
            None => panic!("overload response without ok flag: {line}"),
        }
    }
    vpd_serve::call(&addr, &[], true).expect("drain shed server");
    thread.join().expect("shed server thread").expect("run");
    (responses.len(), rejects)
}

fn main() {
    let mut smoke = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--smoke" => smoke = true,
            _ => usage(),
        }
    }
    vpd_bench::banner(if smoke {
        "serve smoke"
    } else {
        "serve benchmark (BENCH_serve.json)"
    });

    let workers = std::thread::available_parallelism()
        .map_or(2, usize::from)
        .min(8);
    let cfg = ServeConfig {
        workers,
        queue_depth: 256,
        cache_capacity: 64,
        max_batch: 16,
        ..ServeConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", cfg).expect("bind loopback");
    let addr = server.local_addr().expect("local addr").to_string();
    let server_thread = std::thread::spawn(move || server.run());

    let lines = scenarios();
    let (clients, warm_passes) = if smoke { (2, 2) } else { (8, 20) };

    // --- phase 1: cold vs warm, one closed-loop client ------------------
    let mut cold_latencies = Vec::new();
    let start = Instant::now();
    let cold_responses = run_pass(&addr, &lines, &mut cold_latencies);
    let cold_s = start.elapsed().as_secs_f64();

    let mut warm_latencies = Vec::new();
    let start = Instant::now();
    let mut warm_responses = Vec::new();
    for _ in 0..warm_passes {
        warm_responses = run_pass(&addr, &lines, &mut warm_latencies);
    }
    let warm_s = start.elapsed().as_secs_f64() / warm_passes as f64;
    let warm_speedup = cold_s / warm_s;

    // --- phase 2: mixed-workload concurrency (continuity metric) --------
    let start = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|_| {
            let addr = addr.clone();
            let lines = lines.clone();
            std::thread::spawn(move || {
                let mut latencies = Vec::new();
                let mut responses = Vec::new();
                for _ in 0..warm_passes {
                    responses = run_pass(&addr, &lines, &mut latencies);
                }
                (latencies, responses)
            })
        })
        .collect();
    let mut concurrent_responses = Vec::new();
    for h in handles {
        let (_lat, resp) = h.join().expect("client thread");
        concurrent_responses.push(resp);
    }
    let mixed_s = start.elapsed().as_secs_f64();
    let mixed_throughput = (clients * warm_passes * lines.len()) as f64 / mixed_s;

    // --- phase 3: saturation curve over the batchable workload ----------
    let curve_clients: &[usize] = if smoke { &[2, 4] } else { &[2, 8, 32] };
    let sweep_passes = if smoke { 10 } else { 150 };
    // Warm the sweep plan so the curve measures serving, not compiling.
    let mut warmup_lat = Vec::new();
    run_pass(&addr, &[sweep_line(0)], &mut warmup_lat);
    let mut curve = Vec::new();
    let mut sweep_responses: Vec<(usize, String)> = Vec::new();
    for &n in curve_clients {
        let (throughput, p50, p95, p99, responses) = saturate(&addr, n, sweep_passes);
        println!(
            "saturation {n:>3} clients: {throughput:>8.0} req/s, \
             p50 {p50:.2} ms p95 {p95:.2} ms p99 {p99:.2} ms"
        );
        for (c, r) in responses.into_iter().enumerate() {
            sweep_responses.push((c, r));
        }
        curve.push((n, throughput, p50, p95, p99));
    }
    let peak = curve
        .iter()
        .cloned()
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite throughput"))
        .expect("curve has entries");
    let (peak_clients, peak_throughput, peak_p50, peak_p95, peak_p99) = peak;
    let speedup_vs_baseline = peak_throughput / BASELINE_THROUGHPUT;

    // --- cache + batch stats, then drain the batched server --------------
    let stats_lines = vec![r#"{"id":90,"kind":"stats"}"#.to_owned()];
    let stats = vpd_serve::call(&addr, &stats_lines, false).expect("stats call");
    let stats_doc = Json::parse(&stats[0]).expect("stats parses");
    let result = stats_doc.get("result").expect("stats result");
    let cache = result.get("cache").expect("cache stats");
    let hits = cache.get("hits").and_then(Json::as_i64).unwrap_or(0);
    let misses = cache.get("misses").and_then(Json::as_i64).unwrap_or(0);
    let steals = cache.get("steals").and_then(Json::as_i64).unwrap_or(0);
    let hit_rate = hits as f64 / (hits + misses).max(1) as f64;
    let batch = result.get("batch").expect("batch stats");
    let batches = batch.get("batches").and_then(Json::as_i64).unwrap_or(0);
    let coalesced = batch.get("coalesced").and_then(Json::as_i64).unwrap_or(0);
    let batch_columns = batch.get("columns").and_then(Json::as_i64).unwrap_or(0);
    vpd_serve::call(&addr, &[], true).expect("drain call");
    server_thread
        .join()
        .expect("server thread")
        .expect("server run");

    // --- phase 4: the same peak workload with batching disabled ---------
    let unbatched_cfg = ServeConfig {
        max_batch: 1,
        ..cfg
    };
    let unbatched = Server::bind("127.0.0.1:0", unbatched_cfg).expect("bind unbatched");
    let unbatched_addr = unbatched.local_addr().expect("local addr").to_string();
    let unbatched_thread = std::thread::spawn(move || unbatched.run());
    run_pass(&unbatched_addr, &[sweep_line(0)], &mut Vec::new());
    let (unbatched_throughput, _, _, _, unbatched_responses) =
        saturate(&unbatched_addr, peak_clients, sweep_passes);
    let batch_speedup = peak_throughput / unbatched_throughput;
    vpd_serve::call(&unbatched_addr, &[], true).expect("drain unbatched");
    unbatched_thread
        .join()
        .expect("unbatched server thread")
        .expect("unbatched run");

    // --- determinism audits ----------------------------------------------
    // Mixed workload: every cached response equals the cold oracle.
    let oracle = Dispatcher::new(0);
    let mut expected: HashMap<String, String> = HashMap::new();
    for line in &lines {
        let request = Request::parse_line(line).expect("scenario parses");
        let (doc, cached) = oracle.dispatch(&request.work).expect("oracle dispatch");
        assert!(!cached, "zero-capacity oracle must always be cold");
        expected.insert(line.clone(), doc.to_string());
    }
    let mut audited = 0usize;
    for responses in std::iter::once(&cold_responses)
        .chain(std::iter::once(&warm_responses))
        .chain(concurrent_responses.iter())
    {
        for (line, response) in lines.iter().zip(responses) {
            assert_eq!(
                result_of(response),
                expected[line.as_str()],
                "served bits diverged from the cold oracle for {line}"
            );
            audited += 1;
        }
    }
    // Sweep workload: batched responses equal sequential oracle dispatch
    // AND the unbatched server's responses, per client line.
    let mut sweep_expected: HashMap<usize, String> = HashMap::new();
    for (client, response) in &sweep_responses {
        let entry = sweep_expected.entry(*client).or_insert_with(|| {
            let request = Request::parse_line(&sweep_line(*client)).expect("sweep parses");
            let (doc, _) = oracle.dispatch(&request.work).expect("oracle sweep");
            doc.to_string()
        });
        assert_eq!(
            &result_of(response),
            entry,
            "batched sweep bits diverged from sequential dispatch (client {client})"
        );
        audited += 1;
    }
    for (client, response) in unbatched_responses.iter().enumerate() {
        assert_eq!(
            result_of(response),
            sweep_expected[&client],
            "unbatched server diverged from the oracle (client {client})"
        );
        audited += 1;
    }

    // --- phase 5: overload sheds with typed, well-formed responses ------
    let (shed_checked, shed_rejects) = validate_shedding(smoke);

    println!(
        "serve ({} scenarios, {workers} workers): cold pass {:.1} ms, warm pass {:.1} ms \
         ({warm_speedup:.1}x), mixed {clients} clients: {mixed_throughput:.0} req/s; \
         sweep peak {peak_clients} clients: {peak_throughput:.0} req/s \
         ({speedup_vs_baseline:.1}x baseline {BASELINE_THROUGHPUT:.0}), \
         p50 {peak_p50:.2} ms p95 {peak_p95:.2} ms p99 {peak_p99:.2} ms, \
         batching {batch_speedup:.2}x ({batches} batches, {coalesced} coalesced, \
         {batch_columns} columns), cache hit rate {:.1}% ({steals} steals), \
         {audited} responses bitwise-audited, \
         {shed_rejects}/{shed_checked} overload responses typed-rejected",
        lines.len(),
        cold_s * 1e3,
        warm_s * 1e3,
        hit_rate * 100.0,
    );

    for (label, v) in [
        ("mixed_throughput", mixed_throughput),
        ("peak_throughput", peak_throughput),
        ("warm_speedup", warm_speedup),
        ("batch_speedup", batch_speedup),
        ("p50", peak_p50),
        ("p95", peak_p95),
        ("p99", peak_p99),
    ] {
        assert!(v.is_finite() && v > 0.0, "{label} not finite: {v}");
    }

    if smoke {
        println!("\nsmoke OK ({audited} responses audited)");
        return;
    }

    assert!(
        warm_speedup >= 2.0,
        "warm pass must be at least 2x faster than cold (got {warm_speedup:.2}x)"
    );
    assert!(
        speedup_vs_baseline >= 5.0,
        "saturation peak must beat the thread-per-connection baseline 5x \
         (got {speedup_vs_baseline:.2}x)"
    );
    assert!(
        peak_p99 <= BASELINE_P99_MS,
        "peak p99 {peak_p99:.3} ms regressed past the baseline {BASELINE_P99_MS} ms"
    );

    let curve_json: Vec<String> = curve
        .iter()
        .map(|(n, t, p50, p95, p99)| {
            format!(
                "      {{ \"clients\": {n}, \"throughput_req_per_sec\": {t:.3}, \
                 \"latency_p50_ms\": {p50:.4}, \"latency_p95_ms\": {p95:.4}, \
                 \"latency_p99_ms\": {p99:.4} }}"
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"serve\": {{\n    \"scenarios\": {},\n    \"workers\": {workers},\n    \"clients\": {clients},\n    \"warm_passes\": {warm_passes},\n    \"cold_pass_ms\": {:.3},\n    \"warm_pass_ms\": {:.3},\n    \"cold_vs_warm_speedup\": {warm_speedup:.3},\n    \"mixed_throughput_req_per_sec\": {mixed_throughput:.3},\n    \"throughput_req_per_sec\": {peak_throughput:.3},\n    \"latency_p50_ms\": {peak_p50:.4},\n    \"latency_p95_ms\": {peak_p95:.4},\n    \"latency_p99_ms\": {peak_p99:.4},\n    \"baseline_throughput_req_per_sec\": {BASELINE_THROUGHPUT},\n    \"baseline_p99_ms\": {BASELINE_P99_MS},\n    \"speedup_vs_baseline\": {speedup_vs_baseline:.3},\n    \"saturation\": [\n{}\n    ],\n    \"batch\": {{ \"max_batch\": 16, \"batches\": {batches}, \"coalesced\": {coalesced}, \"columns\": {batch_columns}, \"speedup_vs_unbatched\": {batch_speedup:.3} }},\n    \"cache_hit_rate\": {hit_rate:.4},\n    \"cache_hits\": {hits},\n    \"cache_misses\": {misses},\n    \"cache_steals\": {steals},\n    \"responses_audited\": {audited},\n    \"cached_matches_cold_bitwise\": true,\n    \"batched_matches_sequential_bitwise\": true,\n    \"shed_responses_checked\": {shed_checked},\n    \"shed_responses_typed\": {shed_rejects},\n    \"shed_responses_well_formed\": true\n  }}\n}}\n",
        lines.len(),
        cold_s * 1e3,
        warm_s * 1e3,
        curve_json.join(",\n"),
    );
    std::fs::write("BENCH_serve.json", &json).unwrap();
    println!("\nwrote BENCH_serve.json");
}
