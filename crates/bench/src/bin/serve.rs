//! Measures the `vpd-serve` service and emits `BENCH_serve.json`.
//!
//! Three phases over one TCP server on an ephemeral loopback port:
//!
//! * **cold vs warm** — a single closed-loop client runs the mixed
//!   scenario set once against an empty scenario cache (every request
//!   compiles its plan) and then repeatedly against the warmed cache
//!   (every request checks compiled state out and back in). Scenario
//!   sizes are chosen so plan compilation dominates the solve, which is
//!   exactly the workload the cache exists for.
//! * **concurrent throughput** — N closed-loop clients hammer the warm
//!   server; per-request latencies aggregate into p50/p95/p99.
//! * **determinism audit** — every response seen by every client is
//!   compared against a cold oracle (a zero-capacity
//!   [`Dispatcher`](vpd_serve::Dispatcher), which never caches):
//!   cache-hit bits must equal cold-compile bits, request by request.
//!
//! ```sh
//! cargo run --release -p vpd-bench --bin serve             # full, writes JSON
//! cargo run --release -p vpd-bench --bin serve -- --smoke  # CI smoke
//! ```
//!
//! Exits non-zero if any rate is non-finite or the determinism audit
//! fails.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Instant;

use vpd_report::Json;
use vpd_serve::proto::Request;
use vpd_serve::{Dispatcher, ServeConfig, Server};

fn usage() -> ! {
    eprintln!("usage: serve [--smoke]");
    std::process::exit(2);
}

/// The mixed scenario set: every cacheable analysis kind, sized so the
/// compiled plan (grid factorization, AC plan, fault nominal) costs far
/// more than one warm solve.
fn scenarios() -> Vec<String> {
    let mut lines = Vec::new();
    for arch in ["a0", "a1", "a2", "a3-12"] {
        lines.push(format!(
            r#"{{"kind":"analyze","params":{{"arch":"{arch}"}}}}"#
        ));
    }
    for placement in ["periphery", "below"] {
        lines.push(format!(
            r#"{{"kind":"sharing","params":{{"placement":"{placement}","modules":48}}}}"#
        ));
    }
    lines.push(r#"{"kind":"mc","params":{"arch":"a1","samples":6,"seed":9}}"#.to_owned());
    lines.push(r#"{"kind":"impedance","params":{"arch":"a1","points":16}}"#.to_owned());
    lines.push(r#"{"kind":"impedance","params":{"arch":"a2","points":16}}"#.to_owned());
    lines.push(
        r#"{"kind":"faults","params":{"arch":"a2","random_k":2,"count":4,"seed":7}}"#.to_owned(),
    );
    lines
}

/// One closed-loop pass: send each line, wait for its response, record
/// the latency. Returns the response body per request line.
fn run_pass(addr: &str, lines: &[String], latencies: &mut Vec<f64>) -> Vec<String> {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    let mut responses = Vec::with_capacity(lines.len());
    let mut buf = String::new();
    for line in lines {
        let start = Instant::now();
        writeln!(writer, "{line}").expect("send request");
        writer.flush().expect("flush request");
        buf.clear();
        let n = reader.read_line(&mut buf).expect("read response");
        assert!(n > 0, "server closed mid-pass");
        latencies.push(start.elapsed().as_secs_f64());
        responses.push(buf.trim_end().to_owned());
    }
    responses
}

/// Extracts the serialized `result` document from a success response.
fn result_of(line: &str) -> String {
    let doc = Json::parse(line).expect("response parses");
    assert_eq!(
        doc.get("ok").and_then(Json::as_bool),
        Some(true),
        "request failed: {line}"
    );
    doc.get("result").expect("result present").to_string()
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty());
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn main() {
    let mut smoke = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--smoke" => smoke = true,
            _ => usage(),
        }
    }
    vpd_bench::banner(if smoke {
        "serve smoke"
    } else {
        "serve benchmark (BENCH_serve.json)"
    });

    let workers = std::thread::available_parallelism()
        .map_or(2, usize::from)
        .min(8);
    let cfg = ServeConfig {
        workers,
        queue_depth: 256,
        cache_capacity: 64,
    };
    let server = Server::bind("127.0.0.1:0", cfg).expect("bind loopback");
    let addr = server.local_addr().expect("local addr").to_string();
    let server_thread = std::thread::spawn(move || server.run());

    let lines = scenarios();
    let (clients, warm_passes) = if smoke { (2, 2) } else { (8, 20) };

    // --- phase 1: cold vs warm, one closed-loop client ------------------
    let mut cold_latencies = Vec::new();
    let start = Instant::now();
    let cold_responses = run_pass(&addr, &lines, &mut cold_latencies);
    let cold_s = start.elapsed().as_secs_f64();

    let mut warm_latencies = Vec::new();
    let start = Instant::now();
    let mut warm_responses = Vec::new();
    for _ in 0..warm_passes {
        warm_responses = run_pass(&addr, &lines, &mut warm_latencies);
    }
    let warm_s = start.elapsed().as_secs_f64() / warm_passes as f64;
    let warm_speedup = cold_s / warm_s;

    // --- phase 2: concurrent closed-loop clients on the warm cache ------
    let start = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|_| {
            let addr = addr.clone();
            let lines = lines.clone();
            std::thread::spawn(move || {
                let mut latencies = Vec::new();
                let mut responses = Vec::new();
                for _ in 0..warm_passes {
                    responses = run_pass(&addr, &lines, &mut latencies);
                }
                (latencies, responses)
            })
        })
        .collect();
    let mut latencies = Vec::new();
    let mut concurrent_responses = Vec::new();
    for h in handles {
        let (lat, resp) = h.join().expect("client thread");
        latencies.extend(lat);
        concurrent_responses.push(resp);
    }
    let concurrent_s = start.elapsed().as_secs_f64();
    let total_requests = clients * warm_passes * lines.len();
    let throughput = total_requests as f64 / concurrent_s;
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let (p50, p95, p99) = (
        percentile(&latencies, 0.50) * 1e3,
        percentile(&latencies, 0.95) * 1e3,
        percentile(&latencies, 0.99) * 1e3,
    );

    // --- cache hit rate, then drain the server ---------------------------
    // Stats first, then a separate drain call: a shutdown pipelined on
    // the same connection would race ahead and drain the queued stats.
    let stats_lines = vec![r#"{"id":90,"kind":"stats"}"#.to_owned()];
    let stats = vpd_serve::call(&addr, &stats_lines, false).expect("stats call");
    let stats_doc = Json::parse(&stats[0]).expect("stats parses");
    let cache = stats_doc
        .get("result")
        .and_then(|r| r.get("cache"))
        .expect("cache stats");
    let hits = cache.get("hits").and_then(Json::as_i64).unwrap_or(0);
    let misses = cache.get("misses").and_then(Json::as_i64).unwrap_or(0);
    let hit_rate = hits as f64 / (hits + misses).max(1) as f64;
    vpd_serve::call(&addr, &[], true).expect("drain call");
    server_thread
        .join()
        .expect("server thread")
        .expect("server run");

    // --- determinism audit: every response equals the cold oracle --------
    let oracle = Dispatcher::new(0);
    let mut expected: HashMap<&str, String> = HashMap::new();
    for line in &lines {
        let request = Request::parse_line(line).expect("scenario parses");
        let (doc, cached) = oracle.dispatch(&request.work).expect("oracle dispatch");
        assert!(!cached, "zero-capacity oracle must always be cold");
        expected.insert(line.as_str(), doc.to_string());
    }
    let mut audited = 0usize;
    for responses in std::iter::once(&cold_responses)
        .chain(std::iter::once(&warm_responses))
        .chain(concurrent_responses.iter())
    {
        for (line, response) in lines.iter().zip(responses) {
            assert_eq!(
                result_of(response),
                expected[line.as_str()],
                "served bits diverged from the cold oracle for {line}"
            );
            audited += 1;
        }
    }

    println!(
        "serve ({} scenarios, {workers} workers): cold pass {:.1} ms, warm pass {:.1} ms \
         ({warm_speedup:.1}x), {clients} clients: {throughput:.0} req/s, \
         p50 {p50:.2} ms p95 {p95:.2} ms p99 {p99:.2} ms, cache hit rate {:.1}% \
         ({audited} responses bitwise-equal to the cold oracle)",
        lines.len(),
        cold_s * 1e3,
        warm_s * 1e3,
        hit_rate * 100.0,
    );

    for (label, v) in [
        ("throughput", throughput),
        ("warm_speedup", warm_speedup),
        ("p50", p50),
        ("p95", p95),
        ("p99", p99),
    ] {
        assert!(v.is_finite() && v > 0.0, "{label} not finite: {v}");
    }

    if smoke {
        println!("\nsmoke OK ({audited} responses audited)");
        return;
    }

    assert!(
        warm_speedup >= 2.0,
        "warm pass must be at least 2x faster than cold (got {warm_speedup:.2}x)"
    );

    let json = format!(
        "{{\n  \"serve\": {{\n    \"scenarios\": {},\n    \"workers\": {workers},\n    \"clients\": {clients},\n    \"warm_passes\": {warm_passes},\n    \"cold_pass_ms\": {:.3},\n    \"warm_pass_ms\": {:.3},\n    \"cold_vs_warm_speedup\": {warm_speedup:.3},\n    \"throughput_req_per_sec\": {throughput:.3},\n    \"latency_p50_ms\": {p50:.4},\n    \"latency_p95_ms\": {p95:.4},\n    \"latency_p99_ms\": {p99:.4},\n    \"cache_hit_rate\": {hit_rate:.4},\n    \"cache_hits\": {hits},\n    \"cache_misses\": {misses},\n    \"responses_audited\": {audited},\n    \"cached_matches_cold_bitwise\": true\n  }}\n}}\n",
        lines.len(),
        cold_s * 1e3,
        warm_s * 1e3,
    );
    std::fs::write("BENCH_serve.json", &json).unwrap();
    println!("\nwrote BENCH_serve.json");
}
