//! Extension experiment E2: electro-thermal co-analysis — the thermal
//! cost of embedding regulators under the die, and the placement
//! optimizer.

use vpd_converters::VrTopologyKind;
use vpd_core::{
    optimize_placement, thermal_comparison, AnnealSettings, Calibration, PlacementObjective,
    SystemSpec,
};
use vpd_report::{Align, Table};

fn main() {
    let spec = SystemSpec::paper_default();
    let calib = Calibration::paper_default();

    vpd_bench::banner("Extension E2 — electro-thermal co-analysis (A1 vs A2, DSCH, GaN)");
    let (a1, a2) = thermal_comparison(VrTopologyKind::Dsch, &spec, &calib).unwrap();
    let mut t = Table::new(vec![
        "",
        "Peak die T",
        "Worst module T",
        "Nominal VR loss",
        "Derated VR loss",
        "Thermal penalty",
        "Within rating",
    ]);
    for c in 1..6 {
        t.align(c, Align::Right);
    }
    for (name, r) in [("A1 (periphery)", &a1), ("A2 (under die)", &a2)] {
        t.row(vec![
            name.to_owned(),
            format!("{:.0} °C", r.peak_temperature.value()),
            format!("{:.0} °C", r.worst_module_temperature.value()),
            format!("{:.0} W", r.nominal_conversion_loss.value()),
            format!("{:.0} W", r.derated_conversion_loss.value()),
            format!("{:.1} W", r.thermal_penalty().value()),
            format!("{}", r.modules_within_rating),
        ]);
    }
    print!("{}", t.render());
    println!(
        "under-die modules sit beneath the compute hotspot: better electrically\n\
         (shortest path), worse thermally — the co-design trade the DC-only\n\
         analysis of Figure 7 cannot see.\n"
    );

    vpd_bench::banner("Extension E3 — annealed module placement vs. the uniform grid");
    let mut o = Table::new(vec!["Objective", "Uniform grid", "Annealed", "Improvement"]);
    for c in 1..4 {
        o.align(c, Align::Right);
    }
    for (objective, label, unit) in [
        (
            PlacementObjective::WorstModuleCurrent,
            "worst module current",
            "A",
        ),
        (PlacementObjective::GridLoss, "grid spreading loss", "W"),
        (PlacementObjective::WorstDrop, "worst IR drop", "mV"),
    ] {
        let opt =
            optimize_placement(&spec, &calib, 48, objective, &AnnealSettings::default()).unwrap();
        let scale = if unit == "mV" { 1e3 } else { 1.0 };
        o.row(vec![
            label.to_owned(),
            format!("{:.1} {unit}", opt.initial_objective * scale),
            format!("{:.1} {unit}", opt.final_objective * scale),
            format!("{:.0}%", opt.improvement() * 100.0),
        ]);
    }
    print!("{}", o.render());
    println!(
        "moving modules toward the hotspot flattens the per-module current spread —\n\
         the design-methodology direction the paper's §I calls for."
    );
}
