//! Measures the `.vpd` scenario subsystem and emits
//! `BENCH_scenario.json`.
//!
//! Phases:
//!
//! * **parse / compile / render throughput** — the five builtin
//!   documents cycled through [`ScenarioDoc::parse`],
//!   [`ScenarioDoc::compile`](vpd_scenario::ScenarioDoc::compile), and
//!   [`ScenarioDoc::render`], reported as docs/s and MiB/s.
//! * **served inline scenarios, cold vs cached** — a loopback
//!   `vpd-serve` server answers `kind = "scenario"` requests carrying
//!   inline user documents (custom spec, converter anchors, and a
//!   `[tech.tsv]` override — no `[faults]`, which deliberately runs
//!   cold per request). The first pass compiles each document's
//!   analysis session into the sharded scenario cache; warmed passes
//!   must run at least 3x faster and return bit-identical results.
//! * **spelling-invariance audit** — a respelled copy of one document
//!   (comments, reordered keys) must hit the cache entry its canonical
//!   twin populated, proving the content-hash key is spelling-blind.
//!
//! ```sh
//! cargo run --release -p vpd-bench --bin scenario             # full, writes JSON
//! cargo run --release -p vpd-bench --bin scenario -- --smoke  # CI smoke
//! ```
//!
//! Exits non-zero if any rate is non-finite or an audit fails.

use std::time::Instant;

use vpd_report::Json;
use vpd_scenario::{builtin_docs, ScenarioDoc};
use vpd_serve::{call, ServeConfig, Server};

fn usage() -> ! {
    eprintln!("usage: scenario [--smoke]");
    std::process::exit(2);
}

/// Escapes a document for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 16);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// A user scenario the paper does not ship: A2 with DPMIH modules, a
/// custom power budget, explicit converter anchors, and a tightened
/// TSV pitch. `grid_nodes_per_side = 31` makes the cached session (one
/// sparse factorization) clearly more expensive than a warm solve.
fn user_doc(power_w: f64) -> String {
    format!(
        "[scenario]\nname = \"user-{power_w}\"\narchitecture = \"a2\"\n\
         topology = \"dpmih\"\n\n[spec]\npower_w = {power_w}\n\n\
         [calibration]\ngrid_nodes_per_side = 31\n\n\
         [load]\nmap = \"gaussian\"\nsigma = 0.12\n\n\
         [converter]\nv_out = 1\ni_peak = 30\neta_peak = 0.9\n\
         i_max = 100\neta_max = 0.86\n\n[tech.tsv]\npitch_um = 50\n"
    )
}

/// The same scenario as `user_doc(power)`, spelled differently:
/// comments, blank lines, reordered keys. Same canonical form, same
/// content hash, same cache entry.
fn respelled_doc(power_w: f64) -> String {
    format!(
        "# the same user scenario, respelled\n\n[scenario]\n\
         topology = \"dpmih\"  # modules first\narchitecture = \"a2\"\n\
         name = \"user-{power_w}\"\n\n[spec]\npower_w = {power_w}\n\n\
         [calibration]\ngrid_nodes_per_side = 31\n\n\
         [load]\nsigma = 0.12\nmap = \"gaussian\"\n\n\
         [converter]\neta_max = 0.86\ni_max = 100\neta_peak = 0.9\n\
         i_peak = 30\nv_out = 1\n\n[tech.tsv]\npitch_um = 50\n"
    )
}

fn request_line(id: usize, doc: &str) -> String {
    format!(
        r#"{{"id":{id},"kind":"scenario","params":{{"doc":"{}"}}}}"#,
        json_escape(doc)
    )
}

/// Unpacks a response line into (id, cached flag, serialized result).
/// Workers complete out of order, so responses realign by echoed id.
fn unpack(line: &str) -> (i64, bool, String) {
    let doc = Json::parse(line).expect("response parses");
    assert_eq!(
        doc.get("ok").and_then(Json::as_bool),
        Some(true),
        "request failed: {line}"
    );
    let id = doc.get("id").and_then(Json::as_i64).expect("id echoed");
    let cached = doc
        .get("cached")
        .and_then(Json::as_bool)
        .expect("cached flag present");
    let result = doc.get("result").expect("result present").to_string();
    (id, cached, result)
}

/// Unpacks a whole pass and sorts it back into request order.
fn unpack_pass(responses: &[String]) -> Vec<(bool, String)> {
    let mut out: Vec<(i64, bool, String)> = responses.iter().map(|l| unpack(l)).collect();
    out.sort_by_key(|(id, _, _)| *id);
    out.into_iter().map(|(_, c, r)| (c, r)).collect()
}

fn main() {
    let mut smoke = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--smoke" => smoke = true,
            _ => usage(),
        }
    }
    vpd_bench::banner(if smoke {
        "scenario smoke"
    } else {
        "scenario benchmark (BENCH_scenario.json)"
    });

    // --- phase 1: parse / compile / render throughput -------------------
    let corpus: Vec<&str> = builtin_docs().iter().map(|(_, text)| *text).collect();
    let corpus_bytes: usize = corpus.iter().map(|t| t.len()).sum();
    let iters = if smoke { 20 } else { 2_000 };

    let start = Instant::now();
    let mut parsed = Vec::new();
    for _ in 0..iters {
        parsed = corpus
            .iter()
            .map(|t| ScenarioDoc::parse(t).expect("builtin parses"))
            .collect();
    }
    let parse_s = start.elapsed().as_secs_f64();
    let n_docs = (iters * corpus.len()) as f64;
    let parse_docs_per_sec = n_docs / parse_s;
    let parse_mib_per_sec = (iters * corpus_bytes) as f64 / parse_s / (1024.0 * 1024.0);

    let start = Instant::now();
    for _ in 0..iters {
        for doc in &parsed {
            std::hint::black_box(doc.compile().expect("builtin compiles"));
        }
    }
    let compile_docs_per_sec = n_docs / start.elapsed().as_secs_f64();

    let start = Instant::now();
    for _ in 0..iters {
        for doc in &parsed {
            std::hint::black_box(doc.render());
        }
    }
    let render_docs_per_sec = n_docs / start.elapsed().as_secs_f64();

    println!(
        "parse    {parse_docs_per_sec:>10.0} docs/s  ({parse_mib_per_sec:.1} MiB/s)\n\
         compile  {compile_docs_per_sec:>10.0} docs/s\n\
         render   {render_docs_per_sec:>10.0} docs/s"
    );

    // --- phase 2: served inline scenarios, cold vs cached ---------------
    let powers = [600.0, 800.0, 1000.0, 1200.0];
    let lines: Vec<String> = powers
        .iter()
        .enumerate()
        .map(|(i, &p)| request_line(i, &user_doc(p)))
        .collect();
    let cfg = ServeConfig {
        workers: 2,
        queue_depth: 64,
        cache_capacity: 64,
        max_batch: 1,
        ..ServeConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", cfg).expect("bind loopback");
    let addr = server.local_addr().expect("local addr").to_string();
    let server_thread = std::thread::spawn(move || server.run());

    let start = Instant::now();
    let cold_responses = call(&addr, &lines, false).expect("cold pass");
    let cold_s = start.elapsed().as_secs_f64();
    let cold = unpack_pass(&cold_responses);
    for (cached, _) in &cold {
        assert!(!cached, "first touch of a user scenario must be a miss");
    }

    let warm_passes = if smoke { 3 } else { 30 };
    let start = Instant::now();
    let mut warm: Vec<(bool, String)> = Vec::new();
    for _ in 0..warm_passes {
        let responses = call(&addr, &lines, false).expect("warm pass");
        warm = unpack_pass(&responses);
    }
    let warm_s = start.elapsed().as_secs_f64() / f64::from(warm_passes);
    let warm_speedup = cold_s / warm_s;

    let mut cached_matches_cold = true;
    for ((c_cached, c_result), (w_cached, w_result)) in cold.iter().zip(&warm) {
        assert!(!c_cached && *w_cached, "warm pass must hit the cache");
        cached_matches_cold &= c_result == w_result;
    }
    assert!(
        cached_matches_cold,
        "cached scenario results must be bit-identical to cold"
    );

    // Spelling invariance: a never-sent respelling of the first
    // document must land on the cache entry its canonical twin filled.
    let respelled = vec![request_line(99, &respelled_doc(powers[0]))];
    let responses = call(&addr, &respelled, false).expect("respelled pass");
    let (_, respelled_cached, respelled_result) = unpack(&responses[0]);
    let respelled_shares_cache = respelled_cached && respelled_result == cold[0].1;
    assert!(
        respelled_shares_cache,
        "a respelled document must share its canonical twin's cache entry"
    );
    call(&addr, &[], true).expect("shutdown");
    let _ = server_thread.join().expect("server thread");

    println!(
        "\nserved {} inline scenarios: cold {:.1} ms, cached {:.1} ms \
         ({warm_speedup:.2}x), bitwise equal, respelling shares cache",
        lines.len(),
        cold_s * 1e3,
        warm_s * 1e3,
    );

    for (label, v) in [
        ("parse_docs_per_sec", parse_docs_per_sec),
        ("compile_docs_per_sec", compile_docs_per_sec),
        ("render_docs_per_sec", render_docs_per_sec),
        ("warm_speedup", warm_speedup),
    ] {
        assert!(v.is_finite() && v > 0.0, "{label} not finite: {v}");
    }

    if smoke {
        println!("\nsmoke OK");
        return;
    }

    assert!(
        warm_speedup >= 3.0,
        "cached scenario pass must be at least 3x faster than cold \
         (got {warm_speedup:.2}x)"
    );

    let json = format!(
        "{{\n  \"scenario\": {{\n    \"corpus_docs\": {},\n    \"corpus_bytes\": {corpus_bytes},\n    \"parse_docs_per_sec\": {parse_docs_per_sec:.0},\n    \"parse_mib_per_sec\": {parse_mib_per_sec:.2},\n    \"compile_docs_per_sec\": {compile_docs_per_sec:.0},\n    \"render_docs_per_sec\": {render_docs_per_sec:.0},\n    \"served_docs\": {},\n    \"warm_passes\": {warm_passes},\n    \"cold_pass_ms\": {:.3},\n    \"cached_pass_ms\": {:.3},\n    \"cold_vs_cached_speedup\": {warm_speedup:.3},\n    \"cached_matches_cold_bitwise\": {cached_matches_cold},\n    \"respelled_doc_shares_cache\": {respelled_shares_cache}\n  }}\n}}\n",
        corpus.len(),
        lines.len(),
        cold_s * 1e3,
        warm_s * 1e3,
    );
    std::fs::write("BENCH_scenario.json", &json).unwrap();
    println!("\nwrote BENCH_scenario.json");
}
