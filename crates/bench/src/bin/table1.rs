//! Reproduces Table I: typical characteristics of vertical
//! interconnect, plus the derived per-via quantities the paper's
//! analysis rests on.

use vpd_package::InterconnectTech;
use vpd_report::{Align, Table};

fn main() {
    vpd_bench::banner("Table I — typical characteristics of vertical interconnect");

    let mut t = Table::new(vec![
        "Packaging level",
        "Type",
        "Material",
        "Diameter (µm)",
        "Cross-area (µm²)",
        "Height (µm)",
        "Pitch (µm)",
        "Platform (mm²)",
    ]);
    for c in 3..8 {
        t.align(c, Align::Right);
    }
    for tech in InterconnectTech::table_i() {
        t.row(vec![
            tech.packaging_level.to_owned(),
            tech.name.to_owned(),
            tech.material.to_string(),
            tech.diameter
                .map_or("-".to_owned(), |d| format!("{:.0}", d.as_micrometers())),
            format!("{:.0}", tech.cross_section.as_square_micrometers()),
            format!("{:.0}", tech.height.as_micrometers()),
            format!("{:.0}", tech.pitch.as_micrometers()),
            format!("{:.0}", tech.default_platform_area.as_square_millimeters()),
        ]);
    }
    print!("{}", t.render());

    vpd_bench::banner("Derived per-via quantities (model outputs)");
    let mut d = Table::new(vec![
        "Type",
        "R_via = ρ·h/A (mΩ)",
        "Array sites (platform/pitch²)",
        "EM-limited I_max per via (mA)",
        "Power-site cap",
    ]);
    for c in 1..5 {
        d.align(c, Align::Right);
    }
    for tech in InterconnectTech::table_i() {
        d.row(vec![
            tech.name.to_owned(),
            format!("{:.3}", tech.via_resistance().as_milliohms()),
            format!("{}", tech.default_sites()),
            format!("{:.2}", tech.max_current_per_via().value() * 1e3),
            format!("{:.0}%", tech.power_site_cap * 100.0),
        ]);
    }
    print!("{}", d.render());
}
