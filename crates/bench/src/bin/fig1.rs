//! Reproduces Figure 1: power and current-density demand in
//! state-of-the-art HPC systems, with delivery efficiency as the point
//! weight.

use vpd_core::survey::{figure1_dataset, HpcKind};
use vpd_report::{Align, Csv, Table};

fn main() {
    vpd_bench::banner("Figure 1 — HPC power & current-density demand survey");

    for (kind, label) in [
        (HpcKind::Chip, "Individual chips (left panel)"),
        (HpcKind::Server, "Server systems (right panel)"),
    ] {
        println!("{label}:");
        let mut t = Table::new(vec![
            "Product",
            "Year",
            "Power",
            "Silicon (mm²)",
            "J (A/mm²)",
            "Delivery eff.",
        ]);
        for c in 1..6 {
            t.align(c, Align::Right);
        }
        for p in figure1_dataset().iter().filter(|p| p.kind == kind) {
            t.row(vec![
                p.name.to_owned(),
                p.year.to_string(),
                format!("{:.1}", p.power),
                format!("{:.0}", p.silicon_area.as_square_millimeters()),
                format!("{:.2}", p.current_density().as_amps_per_square_millimeter()),
                format!("{:.0}%", p.delivery_efficiency * 100.0),
            ]);
        }
        print!("{}", t.render());
    }

    // CSV series for replotting.
    let mut csv = Csv::new(vec![
        "name",
        "year",
        "kind",
        "power_w",
        "silicon_mm2",
        "density_a_mm2",
        "efficiency",
    ]);
    for p in figure1_dataset() {
        csv.row(vec![
            p.name.to_owned(),
            p.year.to_string(),
            format!("{:?}", p.kind),
            format!("{:.0}", p.power.value()),
            format!("{:.0}", p.silicon_area.as_square_millimeters()),
            format!("{:.3}", p.current_density().as_amps_per_square_millimeter()),
            format!("{:.2}", p.delivery_efficiency),
        ]);
    }
    println!("CSV:\n{}", csv.render());

    let max_chip_w = figure1_dataset()
        .iter()
        .filter(|p| p.kind == HpcKind::Chip)
        .map(|p| p.power.value())
        .fold(0.0, f64::max);
    println!(
        "observation (paper §I): chips are rapidly approaching 1 kW (max here {max_chip_w:.0} W)\n\
         and server systems ~20 kW; chip current density approaches 1 A/mm²."
    );
}
