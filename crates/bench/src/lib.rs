//! Shared plumbing for the experiment harness binaries.
//!
//! Each paper table/figure has a binary in `src/bin/` that regenerates
//! it:
//!
//! | target | reproduces |
//! |---|---|
//! | `table1` | Table I — vertical-interconnect characteristics |
//! | `table2` | Table II — converter characteristics |
//! | `fig1` | Figure 1 — HPC power/current-density demand survey |
//! | `fig2` | Figure 2 — current demand vs. packaging-feature trend |
//! | `fig3` | Figure 3 — savings vs. conversion point |
//! | `fig7` | Figure 7 — PCB-to-POL loss breakdown |
//! | `claims` | §IV text claims C1–C3 (utilization, sharing, 19×/7×) |
//! | `ablation` | B1 GaN-vs-Si / frequency, B2 bus-voltage sweep |
//! | `impedance` | extension E1 — PDN impedance vs. target impedance |
//! | `thermal` | extensions E2/E3 — electro-thermal co-analysis, placement annealing |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use vpd_core::{AnalysisOptions, Calibration, SystemSpec};

/// The paper's evaluation environment: spec, calibration, and default
/// analysis options.
#[must_use]
pub fn paper_env() -> (SystemSpec, Calibration, AnalysisOptions) {
    (
        SystemSpec::paper_default(),
        Calibration::paper_default(),
        AnalysisOptions::default(),
    )
}

/// Prints a section banner.
pub fn banner(title: &str) {
    println!("\n=== {title} ===\n");
}

/// Formats a paper-vs-measured comparison cell.
#[must_use]
pub fn versus(paper: &str, measured: &str) -> String {
    format!("{paper} / {measured}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_is_paper_default() {
        let (spec, _, opts) = paper_env();
        assert_eq!(spec, SystemSpec::paper_default());
        assert!(opts.allow_overload);
    }

    #[test]
    fn versus_formats() {
        assert_eq!(versus("42%", "43.3%"), "42% / 43.3%");
    }
}
