//! Power-transistor models: silicon vs. gallium nitride.
//!
//! The paper's §III argues GaN devices are required to make high-ratio
//! near-POL conversion efficient. This module captures that with a
//! compact technology model: voltage-dependent specific on-resistance
//! (`R_on·A`), per-area gate and output charge, and the loss terms they
//! imply. The figure of merit `R_on·Q_g` comes out ~10–20× better for
//! GaN at the 48 V class, consistent with the devices cited in the
//! paper (\[8\]–\[10\]).

use crate::DeviceError;
use vpd_units::{Amps, Coulombs, Hertz, Joules, Ohms, SquareMeters, Volts, Watts};

/// Transistor semiconductor technology.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, serde::Serialize, serde::Deserialize)]
pub enum Semiconductor {
    /// Silicon power MOSFET.
    Si,
    /// Gallium-nitride HEMT.
    GaN,
}

impl Semiconductor {
    /// Specific on-resistance `R_on · A` at a drain-voltage rating,
    /// modeled as `r₀ · (V/12 V)^α` — the classical unipolar-limit
    /// scaling, with GaN's higher critical field flattening both the
    /// coefficient and the exponent.
    #[must_use]
    pub fn specific_on_resistance(self, v_rating: Volts) -> f64 {
        // Returns Ω·m² (SI). Anchors: Si 6 mΩ·mm², GaN 2 mΩ·mm² at 12 V.
        let (r0_mohm_mm2, alpha) = match self {
            Self::Si => (6.0, 2.3),
            Self::GaN => (2.0, 1.8),
        };
        let scale = (v_rating.value() / 12.0).max(0.1);
        r0_mohm_mm2 * 1e-3 * 1e-6 * scale.powf(alpha)
    }

    /// Gate charge per device area (C/m²).
    #[must_use]
    pub const fn gate_charge_density(self) -> f64 {
        match self {
            // 8 nC/mm² and 3 nC/mm².
            Self::Si => 8.0e-9 / 1e-6,
            Self::GaN => 3.0e-9 / 1e-6,
        }
    }

    /// Output (Coss) charge per device area (C/m²).
    #[must_use]
    pub const fn output_charge_density(self) -> f64 {
        match self {
            Self::Si => 12.0e-9 / 1e-6,
            Self::GaN => 4.0e-9 / 1e-6,
        }
    }

    /// Typical gate-drive voltage.
    #[must_use]
    pub const fn drive_voltage(self) -> Volts {
        match self {
            Self::Si => Volts::new(10.0),
            Self::GaN => Volts::new(5.0),
        }
    }

    /// Technology figure of merit `R_on·Q_g` at a voltage rating
    /// (Ω·C; lower is better). Area cancels, so this compares
    /// technologies directly.
    #[must_use]
    pub fn figure_of_merit(self, v_rating: Volts) -> f64 {
        self.specific_on_resistance(v_rating) * self.gate_charge_density()
    }
}

impl std::fmt::Display for Semiconductor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Si => write!(f, "Si"),
            Self::GaN => write!(f, "GaN"),
        }
    }
}

/// A sized power transistor.
///
/// ```
/// use vpd_devices::{PowerTransistor, Semiconductor};
/// use vpd_units::{SquareMeters, Volts};
///
/// # fn main() -> Result<(), vpd_devices::DeviceError> {
/// let fet = PowerTransistor::new(
///     Semiconductor::GaN,
///     Volts::new(48.0),
///     SquareMeters::from_square_millimeters(4.0),
/// )?;
/// assert!(fet.r_on().as_milliohms() < 10.0);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, PartialEq, Debug, serde::Serialize, serde::Deserialize)]
pub struct PowerTransistor {
    material: Semiconductor,
    v_rating: Volts,
    area: SquareMeters,
}

impl PowerTransistor {
    /// Creates a transistor of the given technology, voltage class, and
    /// die area.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] for a non-positive
    /// rating or area.
    pub fn new(
        material: Semiconductor,
        v_rating: Volts,
        area: SquareMeters,
    ) -> Result<Self, DeviceError> {
        if !(v_rating.value().is_finite() && v_rating.value() > 0.0) {
            return Err(DeviceError::InvalidParameter {
                what: "voltage rating",
                value: v_rating.value(),
            });
        }
        if !(area.value().is_finite() && area.value() > 0.0) {
            return Err(DeviceError::InvalidParameter {
                what: "device area",
                value: area.value(),
            });
        }
        Ok(Self {
            material,
            v_rating,
            area,
        })
    }

    /// Technology.
    #[must_use]
    pub fn material(&self) -> Semiconductor {
        self.material
    }

    /// Drain-voltage rating.
    #[must_use]
    pub fn v_rating(&self) -> Volts {
        self.v_rating
    }

    /// Die area.
    #[must_use]
    pub fn area(&self) -> SquareMeters {
        self.area
    }

    /// On-resistance `R_sp / A`.
    #[must_use]
    pub fn r_on(&self) -> Ohms {
        Ohms::new(self.material.specific_on_resistance(self.v_rating) / self.area.value())
    }

    /// Total gate charge.
    #[must_use]
    pub fn q_g(&self) -> Coulombs {
        Coulombs::new(self.material.gate_charge_density() * self.area.value())
    }

    /// Total output charge.
    #[must_use]
    pub fn q_oss(&self) -> Coulombs {
        Coulombs::new(self.material.output_charge_density() * self.area.value())
    }

    /// Conduction loss for an RMS current and conduction duty.
    #[must_use]
    pub fn conduction_loss(&self, i_rms: Amps, duty: f64) -> Watts {
        i_rms.dissipation_in(self.r_on()) * duty.clamp(0.0, 1.0)
    }

    /// Gate-drive loss at a switching frequency.
    #[must_use]
    pub fn gate_loss(&self, f_sw: Hertz) -> Watts {
        (self.q_g() * self.material.drive_voltage()) * f_sw
    }

    /// Hard-switching energy per cycle: output-charge loss plus a
    /// voltage–current overlap term (`t_sw` from slewing the gate charge
    /// at 1 A of drive).
    #[must_use]
    pub fn switching_energy(&self, v_sw: Volts, i_sw: Amps) -> Joules {
        let e_oss = Joules::new(0.5 * self.q_oss().value() * v_sw.value());
        let t_sw = self.q_g().value() / 1.0; // 1 A gate drive
        let e_overlap = Joules::new(0.5 * v_sw.value() * i_sw.value() * t_sw);
        e_oss + e_overlap
    }

    /// Hard-switching loss at frequency `f_sw`.
    #[must_use]
    pub fn switching_loss(&self, f_sw: Hertz, v_sw: Volts, i_sw: Amps) -> Watts {
        self.switching_energy(v_sw, i_sw) * f_sw
    }

    /// Total loss of this device in a switching cell: conduction +
    /// gate + (hard) switching. `soft_switching` drops the
    /// voltage–current terms, keeping only gate loss (the DPMIH
    /// soft-switching advantage in the paper's §III).
    #[must_use]
    pub fn total_loss(
        &self,
        i_rms: Amps,
        duty: f64,
        f_sw: Hertz,
        v_sw: Volts,
        soft_switching: bool,
    ) -> Watts {
        let base = self.conduction_loss(i_rms, duty) + self.gate_loss(f_sw);
        if soft_switching {
            base
        } else {
            base + self.switching_loss(f_sw, v_sw, i_rms)
        }
    }

    /// The die area minimizing conduction + frequency-dependent loss for
    /// the given operating point: `A* = I·√(duty·R_sp / (k_f·f))` where
    /// `k_f` collects the per-area charge terms.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] for a non-positive
    /// current or frequency.
    pub fn optimal_area(
        material: Semiconductor,
        v_rating: Volts,
        i_rms: Amps,
        duty: f64,
        f_sw: Hertz,
        v_sw: Volts,
    ) -> Result<SquareMeters, DeviceError> {
        if !(i_rms.value() > 0.0 && i_rms.value().is_finite()) {
            return Err(DeviceError::InvalidParameter {
                what: "rms current",
                value: i_rms.value(),
            });
        }
        if !(f_sw.value() > 0.0 && f_sw.value().is_finite()) {
            return Err(DeviceError::InvalidParameter {
                what: "switching frequency",
                value: f_sw.value(),
            });
        }
        let r_sp = material.specific_on_resistance(v_rating);
        let k_f = material.gate_charge_density() * material.drive_voltage().value()
            + 0.5 * material.output_charge_density() * v_sw.value();
        let a = i_rms.value() * (duty.clamp(0.0, 1.0) * r_sp / (k_f * f_sw.value())).sqrt();
        Ok(SquareMeters::new(a))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn gan_fom_is_order_of_magnitude_better_at_48v() {
        let v = Volts::new(48.0);
        let ratio = Semiconductor::Si.figure_of_merit(v) / Semiconductor::GaN.figure_of_merit(v);
        assert!(
            (8.0..30.0).contains(&ratio),
            "expected ~10-20x FOM advantage, got {ratio:.1}"
        );
    }

    #[test]
    fn r_on_scales_inverse_with_area() {
        let v = Volts::new(48.0);
        let small = PowerTransistor::new(
            Semiconductor::GaN,
            v,
            SquareMeters::from_square_millimeters(1.0),
        )
        .unwrap();
        let big = PowerTransistor::new(
            Semiconductor::GaN,
            v,
            SquareMeters::from_square_millimeters(4.0),
        )
        .unwrap();
        assert!((small.r_on().value() / big.r_on().value() - 4.0).abs() < 1e-9);
        // Charge scales with area instead.
        assert!((big.q_g().value() / small.q_g().value() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn soft_switching_removes_vi_terms() {
        let fet = PowerTransistor::new(
            Semiconductor::GaN,
            Volts::new(48.0),
            SquareMeters::from_square_millimeters(2.0),
        )
        .unwrap();
        let f = Hertz::from_megahertz(1.0);
        let hard = fet.total_loss(Amps::new(10.0), 0.5, f, Volts::new(48.0), false);
        let soft = fet.total_loss(Amps::new(10.0), 0.5, f, Volts::new(48.0), true);
        assert!(hard.value() > soft.value());
        let diff = hard - soft;
        let expected = fet.switching_loss(f, Volts::new(48.0), Amps::new(10.0));
        assert!((diff.value() - expected.value()).abs() < 1e-12);
    }

    #[test]
    fn rejects_invalid_parameters() {
        let a = SquareMeters::from_square_millimeters(1.0);
        assert!(PowerTransistor::new(Semiconductor::Si, Volts::new(-5.0), a).is_err());
        assert!(
            PowerTransistor::new(Semiconductor::Si, Volts::new(48.0), SquareMeters::ZERO).is_err()
        );
        assert!(PowerTransistor::optimal_area(
            Semiconductor::GaN,
            Volts::new(48.0),
            Amps::ZERO,
            0.5,
            Hertz::from_megahertz(1.0),
            Volts::new(48.0),
        )
        .is_err());
    }

    #[test]
    fn switching_loss_linear_in_frequency() {
        let fet = PowerTransistor::new(
            Semiconductor::Si,
            Volts::new(48.0),
            SquareMeters::from_square_millimeters(2.0),
        )
        .unwrap();
        let p1 = fet.switching_loss(Hertz::from_megahertz(1.0), Volts::new(48.0), Amps::new(5.0));
        let p2 = fet.switching_loss(Hertz::from_megahertz(2.0), Volts::new(48.0), Amps::new(5.0));
        assert!((p2.value() / p1.value() - 2.0).abs() < 1e-9);
    }

    proptest! {
        /// The closed-form optimal area beats nearby areas.
        #[test]
        fn prop_optimal_area_is_a_minimum(
            i in 1.0_f64..50.0,
            f_mhz in 0.2_f64..5.0,
            duty in 0.05_f64..0.95,
        ) {
            let v = Volts::new(48.0);
            let f = Hertz::from_megahertz(f_mhz);
            let a_star = PowerTransistor::optimal_area(
                Semiconductor::GaN, v, Amps::new(i), duty, f, v).unwrap();
            let loss_at = |a: SquareMeters| {
                let fet = PowerTransistor::new(Semiconductor::GaN, v, a).unwrap();
                // Loss model the optimum was derived for: conduction +
                // gate + e_oss (no overlap, which is area-independent).
                (fet.conduction_loss(Amps::new(i), duty)
                    + fet.gate_loss(f)
                    + Joules::new(0.5 * fet.q_oss().value() * v.value()) * f).value()
            };
            let at_star = loss_at(a_star);
            prop_assert!(at_star <= loss_at(a_star * 1.3) + 1e-12);
            prop_assert!(at_star <= loss_at(a_star * 0.7) + 1e-12);
        }

        /// GaN never loses to Si at the same operating point when both
        /// use their own optimal area.
        #[test]
        fn prop_gan_dominates_si_at_optimum(
            i in 1.0_f64..50.0,
            f_mhz in 0.5_f64..5.0,
        ) {
            let v = Volts::new(48.0);
            let f = Hertz::from_megahertz(f_mhz);
            let total = |m: Semiconductor| {
                let a = PowerTransistor::optimal_area(m, v, Amps::new(i), 0.5, f, v).unwrap();
                PowerTransistor::new(m, v, a).unwrap()
                    .total_loss(Amps::new(i), 0.5, f, v, false).value()
            };
            prop_assert!(total(Semiconductor::GaN) <= total(Semiconductor::Si));
        }
    }
}
