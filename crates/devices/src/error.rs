//! Device-model error type.

use std::fmt;

/// Errors from device-model construction.
#[derive(Clone, Copy, PartialEq, Debug)]
#[non_exhaustive]
pub enum DeviceError {
    /// A model parameter was non-positive or non-finite.
    InvalidParameter {
        /// Which parameter.
        what: &'static str,
        /// The rejected value (SI units).
        value: f64,
    },
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidParameter { what, value } => {
                write!(f, "invalid {what}: {value}; must be positive and finite")
            }
        }
    }
}

impl std::error::Error for DeviceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_names_parameter() {
        let e = DeviceError::InvalidParameter {
            what: "inductance",
            value: -1.0,
        };
        assert!(e.to_string().contains("inductance"));
    }
}
