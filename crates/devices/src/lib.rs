//! Power-stage component models for vertical power delivery.
//!
//! Provides the device layer under the converter topologies: Si/GaN
//! power transistors with voltage-dependent specific on-resistance and
//! charge densities, plus embedded/discrete inductors and capacitors
//! with their loss mechanisms and current-density limits.
//!
//! ```
//! use vpd_devices::Semiconductor;
//! use vpd_units::Volts;
//!
//! // The §III argument for GaN in one line: the R_on·Q_g figure of
//! // merit at the 48 V class is an order of magnitude better.
//! let v = Volts::new(48.0);
//! let ratio = Semiconductor::Si.figure_of_merit(v)
//!     / Semiconductor::GaN.figure_of_merit(v);
//! assert!(ratio > 8.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod passives;
mod transistor;

pub use error::DeviceError;
pub use passives::{Capacitor, Inductor, InductorKind};
pub use transistor::{PowerTransistor, Semiconductor};
