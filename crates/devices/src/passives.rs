//! Passive components: embedded/discrete inductors and capacitors.

use crate::DeviceError;
use vpd_units::{Amps, CurrentDensity, Farads, Henries, Hertz, Ohms, SquareMeters, Watts};

/// Where an inductor is realized. Embedded (in-interposer / in-package)
/// inductors are area-efficient but current-limited; the paper cites
/// state-of-the-art embedded inductors supporting only ~1 A/mm² (\[14\]).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, serde::Serialize, serde::Deserialize)]
pub enum InductorKind {
    /// Embedded in the interposer, RDL, or package substrate.
    Embedded,
    /// Discrete component placed on or in the interposer cavity.
    Discrete,
}

impl InductorKind {
    /// Maximum current density the magnetic structure supports.
    #[must_use]
    pub const fn current_density_limit(self) -> CurrentDensity {
        match self {
            Self::Embedded => CurrentDensity::from_amps_per_square_millimeter(1.0),
            Self::Discrete => CurrentDensity::from_amps_per_square_millimeter(5.0),
        }
    }
}

/// A power inductor with DC resistance and an AC (core + winding
/// proximity) loss coefficient.
#[derive(Clone, Copy, PartialEq, Debug, serde::Serialize, serde::Deserialize)]
pub struct Inductor {
    l: Henries,
    dcr: Ohms,
    kind: InductorKind,
    area: SquareMeters,
    /// Core-loss coefficient: `P_core = k · f · ΔI²` (W·s·A⁻²).
    k_core: f64,
}

impl Inductor {
    /// Creates an inductor.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] for non-positive
    /// inductance, DCR, or area.
    pub fn new(
        l: Henries,
        dcr: Ohms,
        kind: InductorKind,
        area: SquareMeters,
    ) -> Result<Self, DeviceError> {
        for (what, v) in [
            ("inductance", l.value()),
            ("dcr", dcr.value()),
            ("inductor area", area.value()),
        ] {
            if !(v.is_finite() && v > 0.0) {
                return Err(DeviceError::InvalidParameter { what, value: v });
            }
        }
        Ok(Self {
            l,
            dcr,
            kind,
            area,
            k_core: 2e-8,
        })
    }

    /// Inductance.
    #[must_use]
    pub fn inductance(&self) -> Henries {
        self.l
    }

    /// DC resistance.
    #[must_use]
    pub fn dcr(&self) -> Ohms {
        self.dcr
    }

    /// Footprint area.
    #[must_use]
    pub fn area(&self) -> SquareMeters {
        self.area
    }

    /// Realization kind.
    #[must_use]
    pub fn kind(&self) -> InductorKind {
        self.kind
    }

    /// Maximum DC current before exceeding the kind's current-density
    /// limit over this footprint.
    #[must_use]
    pub fn max_current(&self) -> Amps {
        self.kind.current_density_limit() * self.area
    }

    /// Winding (DCR) loss at an average current plus core loss at a
    /// ripple amplitude and frequency.
    #[must_use]
    pub fn loss(&self, i_avg: Amps, ripple_pp: Amps, f_sw: Hertz) -> Watts {
        // RMS of a triangular ripple on a DC level:
        // I_rms² = I_avg² + ΔI²/12.
        let i_rms_sq = i_avg.value() * i_avg.value() + ripple_pp.value() * ripple_pp.value() / 12.0;
        let winding = Watts::new(i_rms_sq * self.dcr.value());
        let core = Watts::new(self.k_core * f_sw.value() * ripple_pp.value() * ripple_pp.value());
        winding + core
    }

    /// Peak-to-peak current ripple of this inductor in a buck phase:
    /// `ΔI = V_out·(1 − D)/(L·f)`.
    #[must_use]
    pub fn buck_ripple(&self, v_out: vpd_units::Volts, duty: f64, f_sw: Hertz) -> Amps {
        Amps::new(v_out.value() * (1.0 - duty.clamp(0.0, 1.0)) / (self.l.value() * f_sw.value()))
    }
}

/// A (flying or output) capacitor with equivalent series resistance.
#[derive(Clone, Copy, PartialEq, Debug, serde::Serialize, serde::Deserialize)]
pub struct Capacitor {
    c: Farads,
    esr: Ohms,
    area: SquareMeters,
}

impl Capacitor {
    /// Creates a capacitor.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::InvalidParameter`] for non-positive
    /// capacitance, ESR, or area.
    pub fn new(c: Farads, esr: Ohms, area: SquareMeters) -> Result<Self, DeviceError> {
        for (what, v) in [
            ("capacitance", c.value()),
            ("esr", esr.value()),
            ("capacitor area", area.value()),
        ] {
            if !(v.is_finite() && v > 0.0) {
                return Err(DeviceError::InvalidParameter { what, value: v });
            }
        }
        Ok(Self { c, esr, area })
    }

    /// Capacitance.
    #[must_use]
    pub fn capacitance(&self) -> Farads {
        self.c
    }

    /// Equivalent series resistance.
    #[must_use]
    pub fn esr(&self) -> Ohms {
        self.esr
    }

    /// Footprint area.
    #[must_use]
    pub fn area(&self) -> SquareMeters {
        self.area
    }

    /// ESR loss at an RMS ripple current.
    #[must_use]
    pub fn loss(&self, i_rms: Amps) -> Watts {
        i_rms.dissipation_in(self.esr)
    }

    /// Charge-sharing ("hard-switching") loss when connected each cycle
    /// to a rail differing by `dv`: `P = ½·C·ΔV²·f` — the SC-converter
    /// loss the DPMIH topology avoids through soft charging (§III).
    #[must_use]
    pub fn charge_sharing_loss(&self, dv: vpd_units::Volts, f_sw: Hertz) -> Watts {
        vpd_units::capacitor_energy(self.c, dv) * f_sw
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpd_units::Volts;

    #[test]
    fn embedded_inductor_current_limit_matches_paper() {
        // Paper §IV: embedded inductors support up to 1 A/mm².
        let l = Inductor::new(
            Henries::from_microhenries(1.0),
            Ohms::from_milliohms(1.0),
            InductorKind::Embedded,
            SquareMeters::from_square_millimeters(30.0),
        )
        .unwrap();
        assert!((l.max_current().value() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn discrete_carries_more_per_area() {
        let mk = |kind| {
            Inductor::new(
                Henries::from_microhenries(1.0),
                Ohms::from_milliohms(1.0),
                kind,
                SquareMeters::from_square_millimeters(10.0),
            )
            .unwrap()
            .max_current()
        };
        assert!(mk(InductorKind::Discrete).value() > mk(InductorKind::Embedded).value());
    }

    #[test]
    fn inductor_loss_includes_ripple_rms() {
        let l = Inductor::new(
            Henries::from_microhenries(1.0),
            Ohms::from_milliohms(10.0),
            InductorKind::Discrete,
            SquareMeters::from_square_millimeters(10.0),
        )
        .unwrap();
        let no_ripple = l.loss(Amps::new(10.0), Amps::ZERO, Hertz::from_megahertz(1.0));
        let with_ripple = l.loss(Amps::new(10.0), Amps::new(6.0), Hertz::from_megahertz(1.0));
        assert!(with_ripple.value() > no_ripple.value());
        // Winding-only check: I_rms² = 100 + 36/12 = 103 → 1.03 W at 10 mΩ.
        assert!((no_ripple.value() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn buck_ripple_formula() {
        let l = Inductor::new(
            Henries::from_microhenries(1.0),
            Ohms::from_milliohms(1.0),
            InductorKind::Discrete,
            SquareMeters::from_square_millimeters(10.0),
        )
        .unwrap();
        // ΔI = 1 V · (1 − 0.5) / (1 µH · 1 MHz) = 0.5 A.
        let ripple = l.buck_ripple(Volts::new(1.0), 0.5, Hertz::from_megahertz(1.0));
        assert!((ripple.value() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn capacitor_losses() {
        let c = Capacitor::new(
            Farads::from_microfarads(1.0),
            Ohms::from_milliohms(2.0),
            SquareMeters::from_square_millimeters(1.0),
        )
        .unwrap();
        assert!((c.loss(Amps::new(5.0)).value() - 0.05).abs() < 1e-12);
        // ½·1µF·(2V)²·1MHz = 2 W of charge-sharing loss.
        let p = c.charge_sharing_loss(Volts::new(2.0), Hertz::from_megahertz(1.0));
        assert!((p.value() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn validation() {
        assert!(Inductor::new(
            Henries::ZERO,
            Ohms::new(1.0),
            InductorKind::Embedded,
            SquareMeters::from_square_millimeters(1.0)
        )
        .is_err());
        assert!(Capacitor::new(
            Farads::from_microfarads(1.0),
            Ohms::new(f64::NAN),
            SquareMeters::from_square_millimeters(1.0)
        )
        .is_err());
    }
}
