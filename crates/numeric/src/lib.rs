//! Dense and sparse linear algebra for resistive-network solving.
//!
//! The Rust EDA/numeric ecosystem is thin, so this crate implements from
//! scratch exactly the kernels the power-delivery models need:
//!
//! * [`DenseMatrix`] with [`LuFactor`] (partial pivoting) — general MNA
//!   systems (converter circuits, floating voltage sources);
//! * [`CholeskyFactor`] — symmetric positive-definite systems, used both as
//!   a correctness oracle and for medium grids;
//! * [`CooMatrix`] → [`CsrMatrix`] sparse storage — large power-grid
//!   Laplacians;
//! * [`conjugate_gradient`] with a Jacobi preconditioner — the production
//!   path for grid solves with thousands of nodes.
//!
//! ```
//! use vpd_numeric::{DenseMatrix, LuFactor};
//!
//! # fn main() -> Result<(), vpd_numeric::NumericError> {
//! let a = DenseMatrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]])?;
//! let lu = LuFactor::new(&a)?;
//! let x = lu.solve(&[1.0, 2.0])?;
//! assert!((a.matvec(&x)[0] - 1.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Kernel loops index several vectors in lockstep (y[r], x[j], pivots);
// the indexed form keeps them symmetric with the textbook algorithms.
#![allow(clippy::needless_range_loop)]

mod cg;
mod cholesky;
mod complex;
mod dense;
mod error;
mod lu;
mod solve;
mod sparse;
mod sparse_cholesky;
mod spectral;
pub mod vector;

pub use cg::{
    conjugate_gradient, conjugate_gradient_into, CgReport, CgSettings, CgWorkspace, Preconditioner,
};
pub use cholesky::CholeskyFactor;
pub use complex::{Complex, ComplexLu, ComplexMatrix};
pub use dense::DenseMatrix;
pub use error::NumericError;
pub use lu::LuFactor;
pub use solve::{
    resilient_solve, resilient_solve_direct_into, resilient_solve_into, ResilientSettings,
    SolveMethod, SolveReport,
};
pub use sparse::{CooMatrix, CsrMatrix, PatternCache};
pub use sparse_cholesky::{rcm_ordering, SparseCholesky, SymbolicCholesky};
pub use spectral::{condition_estimate_spd, dominant_eigenvalue, PowerIteration};
