//! Sparse Cholesky factorization with a fill-reducing ordering.
//!
//! The direct-solver floor for the plan layer: grid Laplacians are SPD
//! with a fixed sparsity pattern across restamps, so the expensive
//! symbolic work — ordering, elimination tree, the pattern of `L` — is
//! done **once** per pattern ([`SymbolicCholesky`], the factorization
//! analogue of [`PatternCache`](crate::PatternCache)) and every
//! value-only restamp pays only the numeric refactorization
//! ([`SparseCholesky::refactor`]). Solves are exact (no iteration-count
//! variance) and batched right-hand sides share one pass over `L`
//! ([`SparseCholesky::solve_block_into`]).
//!
//! The ordering is reverse Cuthill–McKee (RCM): on the near-planar mesh
//! patterns the power-grid models produce it keeps fill within a narrow
//! band at a fraction of the implementation weight of approximate
//! minimum degree, and it is deterministic — ties break on node index,
//! so the same pattern always yields the same permutation, which the
//! bitwise repeatability contracts require.
//!
//! ```
//! use vpd_numeric::{CooMatrix, SparseCholesky};
//!
//! # fn main() -> Result<(), vpd_numeric::NumericError> {
//! let mut coo = CooMatrix::new(3, 3);
//! for i in 0..3 {
//!     coo.push(i, i, 2.0);
//! }
//! coo.push(0, 1, -1.0);
//! coo.push(1, 0, -1.0);
//! let a = coo.to_csr();
//! let mut chol = SparseCholesky::factor(&a)?;
//! let x = chol.solve(&[1.0, 0.0, 2.0])?;
//! assert!((a.matvec(&x)[0] - 1.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

use crate::{CsrMatrix, NumericError};

/// Sentinel for "no parent" in the elimination tree and "unvisited" in
/// traversals.
const NONE: usize = usize::MAX;

fn require_square(a: &CsrMatrix) -> Result<usize, NumericError> {
    if a.rows() != a.cols() {
        return Err(NumericError::DimensionMismatch {
            expected: "square matrix".into(),
            found: format!("{}x{}", a.rows(), a.cols()),
        });
    }
    Ok(a.rows())
}

/// Computes a reverse Cuthill–McKee ordering of a symmetric sparsity
/// pattern, returning `perm` with `perm[new] = old`.
///
/// Only the row patterns of `a` are read; structural symmetry is the
/// caller's contract (as for [`CholeskyFactor`](crate::CholeskyFactor)).
/// Each connected component is traversed breadth-first from its
/// minimum-degree node, neighbours visited in (degree, index) order, and
/// the concatenated visit order is reversed — deterministic by
/// construction, so a fixed pattern always maps to the same permutation.
///
/// # Errors
///
/// Returns [`NumericError::DimensionMismatch`] if `a` is not square.
pub fn rcm_ordering(a: &CsrMatrix) -> Result<Vec<usize>, NumericError> {
    let n = require_square(a)?;
    let degree: Vec<usize> = (0..n)
        .map(|r| a.row_entries(r).filter(|&(c, _)| c != r).count())
        .collect();

    // Component seeds in (degree, index) order so the lowest-degree node
    // of each component starts its BFS.
    let mut seeds: Vec<usize> = (0..n).collect();
    seeds.sort_unstable_by_key(|&i| (degree[i], i));

    let mut order = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    let mut neighbours: Vec<usize> = Vec::new();
    for &seed in &seeds {
        if visited[seed] {
            continue;
        }
        visited[seed] = true;
        queue.push_back(seed);
        while let Some(u) = queue.pop_front() {
            order.push(u);
            neighbours.clear();
            neighbours.extend(a.row_entries(u).map(|(c, _)| c).filter(|&c| !visited[c]));
            neighbours.sort_unstable_by_key(|&c| (degree[c], c));
            for &c in &neighbours {
                // The sort can list a node once, but an earlier neighbour
                // in this same batch never re-marks it; only cross-batch
                // duplicates are possible and `visited` already gates them.
                visited[c] = true;
                queue.push_back(c);
            }
        }
    }
    order.reverse();
    Ok(order)
}

/// The symbolic half of a sparse Cholesky factorization: fill-reducing
/// permutation, elimination tree, and the exact sparsity pattern of the
/// factor `L` — everything that depends only on the matrix *pattern*.
///
/// Computed once per pattern and reused across every numeric
/// [`SparseCholesky::refactor`], exactly as
/// [`PatternCache`](crate::PatternCache) caches assembly: the plan layer
/// compiles it alongside the stamp program and pays only `O(flops(L))`
/// numeric work per restamp.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SymbolicCholesky {
    n: usize,
    /// Fill-reducing permutation, `perm[new] = old`.
    perm: Vec<usize>,
    /// Inverse permutation, `iperm[old] = new`.
    iperm: Vec<usize>,
    /// Elimination tree over permuted indices (`NONE` marks a root).
    parent: Vec<usize>,
    /// Column pointers of `L` (CSC, length `n + 1`).
    col_ptr: Vec<usize>,
    /// Row indices of `L` per column: the diagonal first, then strictly
    /// ascending rows.
    row_idx: Vec<usize>,
    /// `nnz` of the analyzed matrix, to cheaply reject refactoring with a
    /// structurally different one.
    a_nnz: usize,
}

impl SymbolicCholesky {
    /// Analyzes the pattern of a square matrix: RCM ordering, elimination
    /// tree, and the column-compressed pattern of `L`.
    ///
    /// Only the pattern of `a` is read; values are ignored.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] if `a` is not square.
    pub fn analyze(a: &CsrMatrix) -> Result<Self, NumericError> {
        let n = require_square(a)?;
        let perm = rcm_ordering(a)?;
        let mut iperm = vec![0usize; n];
        for (new, &old) in perm.iter().enumerate() {
            iperm[old] = new;
        }

        // Permuted strictly-lower row patterns: lower[k] holds the new
        // column indices j < k of row k of P·A·Pᵀ. Unsorted is fine —
        // both the tree construction and ereach dedupe via marks.
        let lower: Vec<Vec<usize>> = (0..n)
            .map(|k| {
                a.row_entries(perm[k])
                    .map(|(c, _)| iperm[c])
                    .filter(|&j| j < k)
                    .collect()
            })
            .collect();

        // Elimination tree (Liu): walk each A-row entry up through
        // path-compressed ancestors; the first unset ancestor gets k as
        // parent.
        let mut parent = vec![NONE; n];
        let mut ancestor = vec![NONE; n];
        for k in 0..n {
            for &j in &lower[k] {
                let mut i = j;
                while i != NONE && i != k {
                    let next = ancestor[i];
                    ancestor[i] = k;
                    if next == NONE {
                        parent[i] = k;
                    }
                    i = next;
                }
            }
        }

        // Pattern of L via ereach per row: pass 1 counts entries per
        // column, pass 2 fills them. Rows land in each column in
        // ascending k automatically.
        let mut count = vec![1usize; n]; // the diagonal of each column
        let mut flag = vec![NONE; n];
        for k in 0..n {
            flag[k] = k;
            for &j in &lower[k] {
                let mut i = j;
                while flag[i] != k {
                    flag[i] = k;
                    count[i] += 1;
                    i = match parent[i] {
                        NONE => break,
                        p => p,
                    };
                }
            }
        }
        let mut col_ptr = vec![0usize; n + 1];
        for j in 0..n {
            col_ptr[j + 1] = col_ptr[j] + count[j];
        }
        let mut row_idx = vec![0usize; col_ptr[n]];
        let mut cursor: Vec<usize> = (0..n).map(|j| col_ptr[j]).collect();
        for (j, cur) in cursor.iter_mut().enumerate() {
            row_idx[*cur] = j; // diagonal first
            *cur += 1;
        }
        flag.fill(NONE);
        for k in 0..n {
            flag[k] = k;
            for &j in &lower[k] {
                let mut i = j;
                while flag[i] != k {
                    flag[i] = k;
                    row_idx[cursor[i]] = k;
                    cursor[i] += 1;
                    i = match parent[i] {
                        NONE => break,
                        p => p,
                    };
                }
            }
        }

        Ok(Self {
            n,
            perm,
            iperm,
            parent,
            col_ptr,
            row_idx,
            a_nnz: a.nnz(),
        })
    }

    /// Dimension of the analyzed system.
    #[must_use]
    pub const fn dim(&self) -> usize {
        self.n
    }

    /// Number of stored entries in the factor `L` (including the
    /// diagonal).
    #[must_use]
    pub fn factor_nnz(&self) -> usize {
        self.row_idx.len()
    }

    /// Fill ratio `nnz(L) / nnz(tril(A))` — how much the factor grew
    /// beyond the lower triangle of the analyzed matrix. Near 1.0 means
    /// the ordering kept fill negligible.
    #[must_use]
    pub fn fill_ratio(&self) -> f64 {
        // A is structurally symmetric: tril(A) has (nnz + n) / 2 entries
        // when every diagonal is present (grid Laplacians qualify).
        let tril = (self.a_nnz + self.n).div_ceil(2);
        self.row_idx.len() as f64 / tril.max(1) as f64
    }

    /// The fill-reducing permutation (`perm[new] = old`).
    #[must_use]
    pub fn perm(&self) -> &[usize] {
        &self.perm
    }
}

/// A sparse Cholesky factorization `P·A·Pᵀ = L·Lᵀ` with cached symbolic
/// structure and re-usable numeric workspaces.
///
/// Built once per sparsity pattern; [`SparseCholesky::refactor`] restamps
/// the numeric factor for new values (skipping the work entirely when the
/// values are bitwise-unchanged), and the solve family reuses the factor
/// across any number of right-hand sides. [`SparseCholesky::solve_into`]
/// and [`SparseCholesky::solve_block_into`] run the same substitution
/// kernel, so a k-column block solve is bitwise-identical to k sequential
/// single solves against the same factor.
#[derive(Clone, Debug)]
pub struct SparseCholesky {
    sym: SymbolicCholesky,
    /// Values of `L`, aligned with `sym.row_idx`.
    lx: Vec<f64>,
    /// Whether `lx` currently holds a valid factor.
    factored: bool,
    /// Bitwise copy of the matrix values behind the current factor, so a
    /// restamp that reproduced the same values skips refactorization.
    last_values: Vec<f64>,
    /// Dense accumulator for the up-looking factorization; all-zero
    /// between rows.
    x: Vec<f64>,
    /// Visit marks for ereach (`flag[i] == k` means "seen for row k").
    flag: Vec<usize>,
    /// Shared ereach stack: paths grow from the front, the topological
    /// result grows from the back.
    stack: Vec<usize>,
    /// Next free slot per column while the factorization appends rows.
    cpos: Vec<usize>,
    /// Interleaved right-hand-side scratch for the substitution kernel.
    rhs: Vec<f64>,
}

impl SparseCholesky {
    /// Analyzes and numerically factors `a` in one call.
    ///
    /// # Errors
    ///
    /// * [`NumericError::DimensionMismatch`] if `a` is not square.
    /// * [`NumericError::NotPositiveDefinite`] if the (permuted) matrix
    ///   is not SPD; the reported pivot is the **original** row index.
    pub fn factor(a: &CsrMatrix) -> Result<Self, NumericError> {
        let sym = SymbolicCholesky::analyze(a)?;
        Self::factor_with(a, sym)
    }

    /// Numerically factors `a` against a previously computed symbolic
    /// analysis — the plan-layer path, where the analysis is cached at
    /// compile time and the first solve supplies the values.
    ///
    /// # Errors
    ///
    /// As for [`SparseCholesky::factor`], plus
    /// [`NumericError::DimensionMismatch`] if `a` does not match the
    /// analyzed pattern's shape or entry count.
    pub fn factor_with(a: &CsrMatrix, sym: SymbolicCholesky) -> Result<Self, NumericError> {
        let n = sym.n;
        let nnz_l = sym.row_idx.len();
        let mut chol = Self {
            sym,
            lx: vec![0.0; nnz_l],
            factored: false,
            last_values: Vec::new(),
            x: vec![0.0; n],
            flag: vec![NONE; n],
            stack: vec![0; n],
            cpos: vec![0; n],
            rhs: Vec::new(),
        };
        chol.refactor(a)?;
        Ok(chol)
    }

    /// Recomputes the numeric factor for a value-only restamp of the
    /// analyzed pattern.
    ///
    /// When the new values are **bitwise identical** to the ones behind
    /// the current factor the refactorization is skipped outright — the
    /// common case for sweeps that only move the right-hand side
    /// (setpoint changes, load profiles), where the per-solve cost drops
    /// to two triangular substitutions.
    ///
    /// Pattern identity (same builder, same push order) is the caller's
    /// contract, as for [`CsrMatrix::update_values`]; shape and entry
    /// count are checked.
    ///
    /// # Errors
    ///
    /// * [`NumericError::DimensionMismatch`] if `a` has a different
    ///   shape or entry count than the analyzed matrix.
    /// * [`NumericError::NotPositiveDefinite`] if factorization breaks
    ///   down; the factor is invalidated until a later refactor succeeds,
    ///   and the reported pivot is the **original** row index.
    pub fn refactor(&mut self, a: &CsrMatrix) -> Result<(), NumericError> {
        let n = self.sym.n;
        if a.rows() != n || a.cols() != n || a.nnz() != self.sym.a_nnz {
            return Err(NumericError::DimensionMismatch {
                expected: format!("{}x{} matrix with {} entries", n, n, self.sym.a_nnz),
                found: format!("{}x{} matrix with {} entries", a.rows(), a.cols(), a.nnz()),
            });
        }
        let values = a.values();
        if self.factored
            && self.last_values.len() == values.len()
            && self
                .last_values
                .iter()
                .zip(values)
                .all(|(old, new)| old.to_bits() == new.to_bits())
        {
            return Ok(());
        }
        self.factored = false;

        let sym = &self.sym;
        for j in 0..n {
            self.cpos[j] = sym.col_ptr[j] + 1;
        }
        self.flag.fill(NONE);
        // x is all-zero here: cleared entry-by-entry as each row consumes
        // its pattern (and wholesale on a failed previous attempt).
        for k in 0..n {
            self.flag[k] = k;
            // Scatter row k of P·A·Pᵀ (columns ≤ k) into the accumulator
            // and collect its ereach — the nonzero pattern of L's row k —
            // in topological order at the back of the shared stack.
            let mut top = n;
            let mut d = 0.0;
            for (c, v) in a.row_entries(sym.perm[k]) {
                let j = sym.iperm[c];
                if j > k {
                    continue;
                }
                if j == k {
                    d = v;
                    continue;
                }
                self.x[j] = v;
                let mut len = 0;
                let mut i = j;
                while self.flag[i] != k {
                    self.flag[i] = k;
                    self.stack[len] = i;
                    len += 1;
                    i = match sym.parent[i] {
                        NONE => break,
                        p => p,
                    };
                }
                while len > 0 {
                    len -= 1;
                    top -= 1;
                    self.stack[top] = self.stack[len];
                }
            }

            // Up-looking elimination of row k against the columns in its
            // reach, oldest first.
            for t in top..n {
                let j = self.stack[t];
                let jstart = sym.col_ptr[j];
                let lkj = self.x[j] / self.lx[jstart];
                self.x[j] = 0.0;
                for p in (jstart + 1)..self.cpos[j] {
                    self.x[sym.row_idx[p]] -= self.lx[p] * lkj;
                }
                d -= lkj * lkj;
                debug_assert_eq!(sym.row_idx[self.cpos[j]], k, "symbolic pattern drift");
                self.lx[self.cpos[j]] = lkj;
                self.cpos[j] += 1;
            }
            if d <= 0.0 || d.is_nan() {
                // Leave no stale accumulator entries behind for the next
                // attempt, and report the pivot in original coordinates.
                self.x.fill(0.0);
                self.last_values.clear();
                return Err(NumericError::NotPositiveDefinite {
                    pivot: sym.perm[k],
                    value: d,
                });
            }
            self.lx[sym.col_ptr[k]] = d.sqrt();
        }

        self.last_values.clear();
        self.last_values.extend_from_slice(values);
        self.factored = true;
        Ok(())
    }

    /// The cached symbolic analysis.
    #[must_use]
    pub fn symbolic(&self) -> &SymbolicCholesky {
        &self.sym
    }

    /// Dimension of the factored system.
    #[must_use]
    pub const fn dim(&self) -> usize {
        self.sym.n
    }

    /// Whether a valid numeric factor is currently held.
    #[must_use]
    pub const fn is_factored(&self) -> bool {
        self.factored
    }

    fn require_factored(&self) -> Result<(), NumericError> {
        if self.factored {
            Ok(())
        } else {
            // The last refactor failed (or never ran): the factor values
            // are unusable. Surface it as a singular-factor condition.
            Err(NumericError::Singular { pivot: 0 })
        }
    }

    /// Solves `A·x = b`, allocating the result.
    ///
    /// # Errors
    ///
    /// As for [`SparseCholesky::solve_into`].
    pub fn solve(&mut self, b: &[f64]) -> Result<Vec<f64>, NumericError> {
        let mut x = b.to_vec();
        self.solve_into(&mut x)?;
        Ok(x)
    }

    /// Solves `A·x = b` in place: `x` holds the right-hand side on entry
    /// and the solution on return ([C-CALLER-CONTROL]).
    ///
    /// Runs the block kernel with `k = 1`, so a sequence of single solves
    /// is bitwise-identical to the same columns solved through
    /// [`SparseCholesky::solve_block_into`].
    ///
    /// # Errors
    ///
    /// * [`NumericError::DimensionMismatch`] if `x` has the wrong length.
    /// * [`NumericError::Singular`] if no valid numeric factor is held
    ///   (the last [`SparseCholesky::refactor`] failed).
    pub fn solve_into(&mut self, x: &mut [f64]) -> Result<(), NumericError> {
        self.solve_block_into(x, 1)
    }

    /// Solves `A·X = B` for a block of `k` right-hand sides stored
    /// column-major in `block` (`block[c*n..(c+1)*n]` is column `c`),
    /// in place.
    ///
    /// The factor `L` is streamed **once** for all `k` columns: the block
    /// is transposed into an interleaved layout (the `k` values of one
    /// row adjacent), the two triangular substitutions run with a
    /// unit-stride inner loop over the columns, and the result is
    /// transposed back. Per-column arithmetic order is independent of
    /// `k`, so block results match single solves bitwise.
    ///
    /// # Errors
    ///
    /// * [`NumericError::DimensionMismatch`] if `block.len() != n·k` or
    ///   `k == 0` with a non-empty block.
    /// * [`NumericError::Singular`] if no valid numeric factor is held.
    pub fn solve_block_into(&mut self, block: &mut [f64], k: usize) -> Result<(), NumericError> {
        self.require_factored()?;
        let n = self.sym.n;
        if block.len() != n * k {
            return Err(NumericError::DimensionMismatch {
                expected: format!("block of {n}x{k} = {} values", n * k),
                found: format!("{} values", block.len()),
            });
        }
        if k == 0 {
            return Ok(());
        }
        // Permute and interleave: rhs[i*k + c] = block[c*n + perm[i]].
        self.rhs.resize(n * k, 0.0);
        for i in 0..n {
            let old = self.sym.perm[i];
            for c in 0..k {
                self.rhs[i * k + c] = block[c * n + old];
            }
        }

        let sym = &self.sym;
        // Forward substitution L·Y = B, column-oriented over the CSC
        // factor; the inner loops run contiguously over the k columns.
        for j in 0..n {
            let jstart = sym.col_ptr[j];
            let diag = self.lx[jstart];
            for c in 0..k {
                self.rhs[j * k + c] /= diag;
            }
            for p in (jstart + 1)..sym.col_ptr[j + 1] {
                let r = sym.row_idx[p];
                let l = self.lx[p];
                let (head, tail) = self.rhs.split_at_mut(r * k);
                let yj = &head[j * k..j * k + k];
                let yr = &mut tail[..k];
                for c in 0..k {
                    yr[c] -= l * yj[c];
                }
            }
        }
        // Back substitution Lᵀ·X = Y: gather along each column of L.
        for j in (0..n).rev() {
            let jstart = sym.col_ptr[j];
            for p in (jstart + 1)..sym.col_ptr[j + 1] {
                let r = sym.row_idx[p];
                let l = self.lx[p];
                let (head, tail) = self.rhs.split_at_mut(r * k);
                let yj = &mut head[j * k..j * k + k];
                let yr = &tail[..k];
                for c in 0..k {
                    yj[c] -= l * yr[c];
                }
            }
            let diag = self.lx[jstart];
            for c in 0..k {
                self.rhs[j * k + c] /= diag;
            }
        }
        // De-interleave and un-permute.
        for i in 0..n {
            let old = self.sym.perm[i];
            for c in 0..k {
                block[c * n + old] = self.rhs[i * k + c];
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CholeskyFactor, CooMatrix, DenseMatrix};

    /// 2-D grid Laplacian with a ground leak on every node — SPD, and the
    /// same shape as the power-grid systems the plan layer produces.
    fn grid_laplacian(side: usize, g: f64, leak: f64) -> CsrMatrix {
        let n = side * side;
        let mut coo = CooMatrix::new(n, n);
        let idx = |r: usize, c: usize| r * side + c;
        for r in 0..side {
            for c in 0..side {
                let i = idx(r, c);
                let mut diag = leak;
                let link = |coo: &mut CooMatrix, j: usize| {
                    coo.push(i, j, -g);
                };
                if r > 0 {
                    link(&mut coo, idx(r - 1, c));
                    diag += g;
                }
                if r + 1 < side {
                    link(&mut coo, idx(r + 1, c));
                    diag += g;
                }
                if c > 0 {
                    link(&mut coo, idx(r, c - 1));
                    diag += g;
                }
                if c + 1 < side {
                    link(&mut coo, idx(r, c + 1));
                    diag += g;
                }
                coo.push(i, i, diag);
            }
        }
        coo.to_csr()
    }

    fn dense_of(a: &CsrMatrix) -> DenseMatrix {
        DenseMatrix::from_fn(a.rows(), a.rows(), |i, j| a.get(i, j))
    }

    #[test]
    fn rcm_is_a_permutation_and_reduces_bandwidth() {
        let a = grid_laplacian(8, 1.0, 0.1);
        let perm = rcm_ordering(&a).unwrap();
        let mut seen = [false; 64];
        for &p in &perm {
            assert!(!seen[p]);
            seen[p] = true;
        }
        // Natural (row-major) bandwidth of an 8x8 mesh is 8; RCM must not
        // exceed it and typically matches it on a square mesh.
        let b = a.permuted(&perm).unwrap();
        let mut bw = 0usize;
        for r in 0..64 {
            for (c, _) in b.row_entries(r) {
                bw = bw.max(r.abs_diff(c));
            }
        }
        assert!(bw <= 8, "RCM bandwidth {bw} worse than natural ordering");
    }

    #[test]
    fn rcm_is_deterministic() {
        let a = grid_laplacian(6, 2.0, 0.05);
        assert_eq!(rcm_ordering(&a).unwrap(), rcm_ordering(&a).unwrap());
    }

    #[test]
    fn factor_solves_grid_system() {
        let a = grid_laplacian(7, 1.5, 0.2);
        let n = a.rows();
        let mut chol = SparseCholesky::factor(&a).unwrap();
        let b: Vec<f64> = (0..n).map(|i| ((i * 13) % 7) as f64 - 3.0).collect();
        let x = chol.solve(&b).unwrap();
        let ax = a.matvec(&x);
        for (axi, bi) in ax.iter().zip(&b) {
            assert!((axi - bi).abs() < 1e-10);
        }
    }

    #[test]
    fn matches_dense_cholesky_oracle() {
        let a = grid_laplacian(5, 1.0, 0.3);
        let n = a.rows();
        let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let mut sparse = SparseCholesky::factor(&a).unwrap();
        let xs = sparse.solve(&b).unwrap();
        let xd = CholeskyFactor::new(&dense_of(&a))
            .unwrap()
            .solve(&b)
            .unwrap();
        for (s, d) in xs.iter().zip(&xd) {
            assert!((s - d).abs() < 1e-10);
        }
    }

    #[test]
    fn refactor_tracks_new_values_and_skips_unchanged() {
        let a1 = grid_laplacian(6, 1.0, 0.1);
        let a2 = grid_laplacian(6, 3.0, 0.4); // same pattern, new values
        let n = a1.rows();
        let b = vec![1.0; n];
        let mut chol = SparseCholesky::factor(&a1).unwrap();
        let x1 = chol.solve(&b).unwrap();

        chol.refactor(&a2).unwrap();
        let x2 = chol.solve(&b).unwrap();
        let ax = a2.matvec(&x2);
        for (axi, bi) in ax.iter().zip(&b) {
            assert!((axi - bi).abs() < 1e-10);
        }

        // Back to the original values: results must be bitwise-identical
        // to the first factorization, whether recomputed or skipped.
        chol.refactor(&a1).unwrap();
        let x3 = chol.solve(&b).unwrap();
        for (a, b) in x1.iter().zip(&x3) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // And a refactor with identical values is a no-op (same factor
        // object, still bitwise-equal solves).
        chol.refactor(&a1).unwrap();
        let x4 = chol.solve(&b).unwrap();
        for (a, b) in x3.iter().zip(&x4) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn block_solve_matches_sequential_bitwise() {
        let a = grid_laplacian(7, 2.0, 0.15);
        let n = a.rows();
        let k = 5;
        let mut chol = SparseCholesky::factor(&a).unwrap();
        let mut block: Vec<f64> = (0..n * k).map(|i| ((i * 31) % 17) as f64 - 8.0).collect();
        let columns: Vec<Vec<f64>> = (0..k).map(|c| block[c * n..(c + 1) * n].to_vec()).collect();
        chol.solve_block_into(&mut block, k).unwrap();
        for (c, col) in columns.iter().enumerate() {
            let x = chol.solve(col).unwrap();
            for i in 0..n {
                assert_eq!(
                    x[i].to_bits(),
                    block[c * n + i].to_bits(),
                    "column {c}, row {i}"
                );
            }
        }
    }

    #[test]
    fn indefinite_matrix_reports_original_pivot_and_poisons_factor() {
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 0, 4.0);
        coo.push(1, 1, -1.0); // indefinite here
        coo.push(2, 2, 2.0);
        let bad = coo.to_csr();
        match SparseCholesky::factor(&bad) {
            Err(NumericError::NotPositiveDefinite { pivot, value }) => {
                assert_eq!(pivot, 1, "pivot must be reported in original coordinates");
                assert!(value <= 0.0);
            }
            other => panic!("expected NotPositiveDefinite, got {other:?}"),
        }

        // A factor poisoned by a failed refactor refuses to solve, then
        // recovers when valid values return.
        let mut good = CooMatrix::new(3, 3);
        good.push(0, 0, 4.0);
        good.push(1, 1, 1.0);
        good.push(2, 2, 2.0);
        let good = good.to_csr();
        let mut chol = SparseCholesky::factor(&good).unwrap();
        assert!(chol.refactor(&bad).is_err());
        assert!(!chol.is_factored());
        assert!(chol.solve(&[1.0, 1.0, 1.0]).is_err());
        chol.refactor(&good).unwrap();
        let x = chol.solve(&[4.0, 1.0, 2.0]).unwrap();
        for xi in &x {
            assert!((xi - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn rejects_shape_and_pattern_mismatches() {
        let a = grid_laplacian(4, 1.0, 0.1);
        let other = grid_laplacian(5, 1.0, 0.1);
        let mut chol = SparseCholesky::factor(&a).unwrap();
        assert!(chol.refactor(&other).is_err());
        assert!(chol.solve(&[0.0; 3]).is_err());
        let mut block = vec![0.0; 7];
        assert!(chol.solve_block_into(&mut block, 2).is_err());
    }

    #[test]
    fn disconnected_components_factor_fine() {
        // Two independent 2-node chains with leaks.
        let mut coo = CooMatrix::new(4, 4);
        for (i, j) in [(0usize, 1usize), (2, 3)] {
            coo.push(i, i, 1.5);
            coo.push(j, j, 1.5);
            coo.push(i, j, -1.0);
            coo.push(j, i, -1.0);
        }
        let a = coo.to_csr();
        let mut chol = SparseCholesky::factor(&a).unwrap();
        let b = [1.0, 2.0, 3.0, 4.0];
        let x = chol.solve(&b).unwrap();
        let ax = a.matvec(&x);
        for (axi, bi) in ax.iter().zip(&b) {
            assert!((axi - bi).abs() < 1e-12);
        }
    }

    #[test]
    fn symbolic_reports_fill() {
        let a = grid_laplacian(10, 1.0, 0.1);
        let sym = SymbolicCholesky::analyze(&a).unwrap();
        assert_eq!(sym.dim(), 100);
        assert!(sym.factor_nnz() >= (a.nnz() + 100) / 2);
        assert!(sym.fill_ratio() >= 1.0);
        // RCM keeps mesh fill within the band: nnz(L) ≤ n · (bandwidth+1).
        assert!(sym.factor_nnz() <= 100 * 12);
    }
}
