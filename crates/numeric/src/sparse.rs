//! Sparse matrix storage: COO builder and CSR compute format.

use crate::NumericError;

/// A coordinate-format (COO) sparse-matrix builder.
///
/// MNA stamping naturally produces duplicate `(row, col)` contributions;
/// duplicates are summed when compressing to CSR, so element stamps can be
/// pushed independently.
///
/// ```
/// use vpd_numeric::CooMatrix;
///
/// let mut coo = CooMatrix::new(2, 2);
/// coo.push(0, 0, 1.0);
/// coo.push(0, 0, 2.0); // duplicate: summed on compression
/// coo.push(1, 1, 4.0);
/// let csr = coo.to_csr();
/// assert_eq!(csr.matvec(&[1.0, 1.0]), vec![3.0, 4.0]);
/// ```
#[derive(Clone, PartialEq, Debug, Default)]
pub struct CooMatrix {
    rows: usize,
    cols: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl CooMatrix {
    /// Creates an empty builder of the given shape.
    #[must_use]
    pub fn new(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Adds a contribution at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the index lies outside the declared shape — stamping out
    /// of bounds is a programming error, not a recoverable condition.
    pub fn push(&mut self, row: usize, col: usize, value: f64) {
        assert!(
            row < self.rows && col < self.cols,
            "sparse stamp ({row}, {col}) outside {}x{}",
            self.rows,
            self.cols
        );
        if value != 0.0 {
            self.entries.push((row, col, value));
        }
    }

    /// Number of raw (pre-merge) entries.
    #[must_use]
    pub fn raw_len(&self) -> usize {
        self.entries.len()
    }

    /// Declared number of rows.
    #[must_use]
    pub const fn rows(&self) -> usize {
        self.rows
    }

    /// Declared number of columns.
    #[must_use]
    pub const fn cols(&self) -> usize {
        self.cols
    }

    /// Records a structural entry at `(row, col)` with a placeholder
    /// value of `1.0`.
    ///
    /// Unlike [`CooMatrix::push`], a structural entry is never dropped,
    /// which makes the raw-entry sequence independent of the numeric
    /// values — the invariant [`CooMatrix::to_csr_with_pattern`] needs so
    /// that a later [`CsrMatrix::update_values`] can restamp coefficients
    /// that happen to be zero.
    ///
    /// # Panics
    ///
    /// Panics if the index lies outside the declared shape.
    pub fn push_structural(&mut self, row: usize, col: usize) {
        assert!(
            row < self.rows && col < self.cols,
            "sparse stamp ({row}, {col}) outside {}x{}",
            self.rows,
            self.cols
        );
        self.entries.push((row, col, 1.0));
    }

    /// Compresses to CSR, summing duplicate coordinates and dropping
    /// entries that cancel to exactly zero.
    #[must_use]
    pub fn to_csr(&self) -> CsrMatrix {
        let mut sorted = self.entries.clone();
        sorted.sort_unstable_by_key(|&(r, c, _)| (r, c));

        let mut values = Vec::with_capacity(sorted.len());
        let mut col_indices = Vec::with_capacity(sorted.len());
        let mut row_ptr = vec![0usize; self.rows + 1];

        let mut i = 0;
        while i < sorted.len() {
            let (r, c, mut v) = sorted[i];
            i += 1;
            while i < sorted.len() && sorted[i].0 == r && sorted[i].1 == c {
                v += sorted[i].2;
                i += 1;
            }
            if v != 0.0 {
                values.push(v);
                col_indices.push(c);
                row_ptr[r + 1] += 1;
            }
        }
        for r in 0..self.rows {
            row_ptr[r + 1] += row_ptr[r];
        }

        CsrMatrix {
            rows: self.rows,
            cols: self.cols,
            row_ptr,
            col_indices,
            values,
        }
    }

    /// Compresses to CSR while recording the symbolic pattern, so later
    /// solves with the same sparsity can restamp values in place via
    /// [`CsrMatrix::update_values`] instead of re-sorting and merging.
    ///
    /// Unlike [`CooMatrix::to_csr`], entries whose duplicates sum to
    /// exactly zero are **kept** (stored as explicit zeros): the pattern
    /// must not depend on the numeric values, or a restamp with different
    /// coefficients would change the sparsity. Build the pattern with
    /// [`CooMatrix::push_structural`] so value-dependent dropping in
    /// [`CooMatrix::push`] cannot skew the raw-entry sequence either.
    ///
    /// The returned [`PatternCache`] maps each raw entry (in push order)
    /// to its merged CSR slot; values are accumulated in raw order both
    /// here and in `update_values`, so a restamp with the original values
    /// reproduces the original matrix bitwise.
    #[must_use]
    pub fn to_csr_with_pattern(&self) -> (CsrMatrix, PatternCache) {
        // Deterministic total order: (row, col, raw index) has no ties.
        let mut order: Vec<usize> = (0..self.entries.len()).collect();
        order.sort_unstable_by_key(|&k| (self.entries[k].0, self.entries[k].1, k));

        let mut slot_of_raw = vec![0usize; self.entries.len()];
        let mut col_indices = Vec::with_capacity(self.entries.len());
        let mut row_ptr = vec![0usize; self.rows + 1];

        let mut i = 0;
        while i < order.len() {
            let (r, c, _) = self.entries[order[i]];
            let slot = col_indices.len();
            col_indices.push(c);
            row_ptr[r + 1] += 1;
            while i < order.len() && self.entries[order[i]].0 == r && self.entries[order[i]].1 == c
            {
                slot_of_raw[order[i]] = slot;
                i += 1;
            }
        }
        for r in 0..self.rows {
            row_ptr[r + 1] += row_ptr[r];
        }

        let mut csr = CsrMatrix {
            rows: self.rows,
            cols: self.cols,
            row_ptr,
            values: vec![0.0; col_indices.len()],
            col_indices,
        };
        let pattern = PatternCache {
            rows: self.rows,
            cols: self.cols,
            slot_of_raw,
            nnz: csr.values.len(),
        };
        // Accumulate in raw order — the same order update_values uses —
        // so compile-time and restamped values agree bitwise.
        for (k, &(_, _, v)) in self.entries.iter().enumerate() {
            csr.values[pattern.slot_of_raw[k]] += v;
        }
        (csr, pattern)
    }
}

/// The cached symbolic side of a [`CooMatrix`] → [`CsrMatrix`]
/// compression: a map from each raw COO entry to its merged CSR value
/// slot.
///
/// Splitting assembly into a symbolic compile (sort + merge, done once)
/// and a numeric restamp (scatter-add, done per solve) is what lets
/// repeated solves on a fixed topology — Monte-Carlo sampling, design
/// sweeps, placement annealing — skip the dominant assembly cost.
///
/// ```
/// use vpd_numeric::CooMatrix;
///
/// let mut coo = CooMatrix::new(2, 2);
/// coo.push_structural(0, 0);
/// coo.push_structural(0, 0); // duplicate: same CSR slot
/// coo.push_structural(1, 1);
/// let (mut csr, pattern) = coo.to_csr_with_pattern();
/// csr.update_values(&pattern, &[1.0, 2.0, 4.0]).unwrap();
/// assert_eq!(csr.matvec(&[1.0, 1.0]), vec![3.0, 4.0]);
/// csr.update_values(&pattern, &[0.5, 0.5, 9.0]).unwrap();
/// assert_eq!(csr.matvec(&[1.0, 1.0]), vec![1.0, 9.0]);
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PatternCache {
    rows: usize,
    cols: usize,
    slot_of_raw: Vec<usize>,
    nnz: usize,
}

impl PatternCache {
    /// Number of raw COO entries the pattern was compiled from — the
    /// length [`CsrMatrix::update_values`] expects.
    #[must_use]
    pub fn raw_len(&self) -> usize {
        self.slot_of_raw.len()
    }

    /// Number of merged CSR slots.
    #[must_use]
    pub const fn nnz(&self) -> usize {
        self.nnz
    }
}

/// A compressed-sparse-row (CSR) matrix.
///
/// Produced from a [`CooMatrix`]; immutable once built. Supports the
/// operations iterative solvers need: `matvec`, diagonal extraction, and
/// row iteration.
#[derive(Clone, PartialEq, Debug)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_indices: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Number of rows.
    #[must_use]
    pub const fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub const fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    #[must_use]
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.rows];
        self.matvec_into(x, &mut y);
        y
    }

    /// Matrix–vector product into a caller-provided buffer
    /// ([C-CALLER-CONTROL]); the hot path of conjugate gradient.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()` or `y.len() != self.rows()`.
    pub fn matvec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "matvec input dimension mismatch");
        assert_eq!(y.len(), self.rows, "matvec output dimension mismatch");
        for r in 0..self.rows {
            let start = self.row_ptr[r];
            let end = self.row_ptr[r + 1];
            let mut sum = 0.0;
            for k in start..end {
                sum += self.values[k] * x[self.col_indices[k]];
            }
            y[r] = sum;
        }
    }

    /// Replaces the stored values by scatter-adding `raw_values` through
    /// a [`PatternCache`], without touching the symbolic structure.
    ///
    /// `raw_values[k]` is the value of the `k`-th raw COO entry (in the
    /// push order of the builder the pattern was compiled from);
    /// duplicates accumulate into their shared slot in that same order,
    /// so restamping the original values reproduces the original matrix
    /// bitwise. This is the numeric half of assembly: O(nnz) with no
    /// sort, no merge, and no allocation.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] if the pattern was
    /// compiled for a different shape or entry count than this matrix.
    pub fn update_values(
        &mut self,
        pattern: &PatternCache,
        raw_values: &[f64],
    ) -> Result<(), NumericError> {
        if pattern.rows != self.rows
            || pattern.cols != self.cols
            || pattern.nnz != self.values.len()
        {
            return Err(NumericError::DimensionMismatch {
                expected: format!(
                    "pattern for {}x{} with {} slots",
                    self.rows,
                    self.cols,
                    self.values.len()
                ),
                found: format!(
                    "pattern for {}x{} with {} slots",
                    pattern.rows, pattern.cols, pattern.nnz
                ),
            });
        }
        if raw_values.len() != pattern.slot_of_raw.len() {
            return Err(NumericError::DimensionMismatch {
                expected: format!("{} raw values", pattern.slot_of_raw.len()),
                found: format!("{} raw values", raw_values.len()),
            });
        }
        self.values.fill(0.0);
        for (slot, v) in pattern.slot_of_raw.iter().zip(raw_values) {
            self.values[*slot] += v;
        }
        Ok(())
    }

    /// The main diagonal (zero where no entry is stored); the Jacobi
    /// preconditioner.
    #[must_use]
    pub fn diagonal(&self) -> Vec<f64> {
        let mut d = vec![0.0; self.rows.min(self.cols)];
        self.diagonal_into(&mut d);
        d
    }

    /// Writes the main diagonal into a caller-provided buffer
    /// ([C-CALLER-CONTROL]) — the allocation-free path reused solvers
    /// take each restamp.
    ///
    /// # Panics
    ///
    /// Panics if `d.len() != min(rows, cols)`.
    pub fn diagonal_into(&self, d: &mut [f64]) {
        assert_eq!(
            d.len(),
            self.rows.min(self.cols),
            "diagonal buffer dimension mismatch"
        );
        d.fill(0.0);
        for r in 0..self.rows.min(self.cols) {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                if self.col_indices[k] == r {
                    d[r] = self.values[k];
                }
            }
        }
    }

    /// The stored non-zero values in CSR order.
    ///
    /// Exposed so plan layers can fingerprint the numeric state of a
    /// matrix (e.g. to skip a refactorization when a restamp reproduced
    /// the previous values bitwise).
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The symmetric permutation `P·A·Pᵀ`: returns `B` with
    /// `B[i][j] = A[perm[i]][perm[j]]`.
    ///
    /// `perm` maps new indices to old (`perm[new] = old`) — the
    /// convention fill-reducing orderings produce. Column indices of the
    /// result are sorted within each row, so the output is a valid CSR
    /// matrix regardless of how `perm` scrambles them.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] if the matrix is not
    /// square or `perm` is not a permutation of `0..rows`.
    pub fn permuted(&self, perm: &[usize]) -> Result<CsrMatrix, NumericError> {
        let n = self.rows;
        if self.cols != n {
            return Err(NumericError::DimensionMismatch {
                expected: "square matrix".into(),
                found: format!("{}x{}", self.rows, self.cols),
            });
        }
        if perm.len() != n {
            return Err(NumericError::DimensionMismatch {
                expected: format!("permutation of length {n}"),
                found: format!("length {}", perm.len()),
            });
        }
        // Invert while checking that every old index appears exactly once.
        let mut iperm = vec![usize::MAX; n];
        for (new, &old) in perm.iter().enumerate() {
            if old >= n || iperm[old] != usize::MAX {
                return Err(NumericError::DimensionMismatch {
                    expected: format!("a permutation of 0..{n}"),
                    found: format!("duplicate or out-of-range index {old}"),
                });
            }
            iperm[old] = new;
        }

        let mut row_ptr = vec![0usize; n + 1];
        for new_row in 0..n {
            let old = perm[new_row];
            row_ptr[new_row + 1] = row_ptr[new_row] + (self.row_ptr[old + 1] - self.row_ptr[old]);
        }
        let nnz = row_ptr[n];
        let mut col_indices = vec![0usize; nnz];
        let mut values = vec![0.0; nnz];
        let mut scratch: Vec<(usize, f64)> = Vec::new();
        for new_row in 0..n {
            scratch.clear();
            scratch.extend(self.row_entries(perm[new_row]).map(|(c, v)| (iperm[c], v)));
            // Distinct old columns map to distinct new columns, so sorting
            // by the new column alone is a deterministic total order.
            scratch.sort_unstable_by_key(|&(c, _)| c);
            let base = row_ptr[new_row];
            for (k, &(c, v)) in scratch.iter().enumerate() {
                col_indices[base + k] = c;
                values[base + k] = v;
            }
        }
        Ok(CsrMatrix {
            rows: n,
            cols: n,
            row_ptr,
            col_indices,
            values,
        })
    }

    /// Entry lookup (O(row nnz)).
    #[must_use]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        if row >= self.rows {
            return 0.0;
        }
        for k in self.row_ptr[row]..self.row_ptr[row + 1] {
            if self.col_indices[k] == col {
                return self.values[k];
            }
        }
        0.0
    }

    /// Iterates the stored entries of one row as `(col, value)` pairs.
    pub fn row_entries(&self, row: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let start = self.row_ptr[row];
        let end = self.row_ptr[row + 1];
        (start..end).map(move |k| (self.col_indices[k], self.values[k]))
    }

    /// Maximum absolute asymmetry over stored entries (0 for symmetric).
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] if the matrix is not
    /// square.
    pub fn asymmetry(&self) -> Result<f64, NumericError> {
        if self.rows != self.cols {
            return Err(NumericError::DimensionMismatch {
                expected: "square matrix".into(),
                found: format!("{}x{}", self.rows, self.cols),
            });
        }
        let mut worst: f64 = 0.0;
        for r in 0..self.rows {
            for (c, v) in self.row_entries(r) {
                worst = worst.max((v - self.get(c, r)).abs());
            }
        }
        Ok(worst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicates_are_summed() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(1, 0, 1.5);
        coo.push(1, 0, 2.5);
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 1);
        assert_eq!(csr.get(1, 0), 4.0);
    }

    #[test]
    fn cancelling_entries_are_dropped() {
        let mut coo = CooMatrix::new(1, 1);
        coo.push(0, 0, 3.0);
        coo.push(0, 0, -3.0);
        assert_eq!(coo.to_csr().nnz(), 0);
    }

    #[test]
    fn zero_pushes_are_ignored() {
        let mut coo = CooMatrix::new(1, 1);
        coo.push(0, 0, 0.0);
        assert_eq!(coo.raw_len(), 0);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_bounds_stamp_panics() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(2, 0, 1.0);
    }

    #[test]
    fn matvec_matches_dense() {
        let mut coo = CooMatrix::new(3, 3);
        // Tridiagonal Laplacian-ish
        for i in 0..3 {
            coo.push(i, i, 2.0);
        }
        coo.push(0, 1, -1.0);
        coo.push(1, 0, -1.0);
        coo.push(1, 2, -1.0);
        coo.push(2, 1, -1.0);
        let csr = coo.to_csr();
        assert_eq!(csr.matvec(&[1.0, 2.0, 3.0]), vec![0.0, 0.0, 4.0]);
        assert_eq!(csr.asymmetry().unwrap(), 0.0);
    }

    #[test]
    fn diagonal_extraction() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 5.0);
        coo.push(1, 0, 7.0); // off-diagonal only on row 1
        let d = coo.to_csr().diagonal();
        assert_eq!(d, vec![5.0, 0.0]);
    }

    #[test]
    fn get_missing_entry_is_zero() {
        let coo = CooMatrix::new(2, 2);
        let csr = coo.to_csr();
        assert_eq!(csr.get(0, 1), 0.0);
        assert_eq!(csr.get(9, 9), 0.0);
    }

    #[test]
    fn asymmetry_detects() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 1, 1.0);
        let a = coo.to_csr().asymmetry().unwrap();
        assert_eq!(a, 1.0);
    }

    #[test]
    fn pattern_restamp_matches_fresh_assembly() {
        // Build the same tridiagonal matrix twice: once merged fresh,
        // once by restamping a structural pattern.
        let coords = [(0, 0), (0, 1), (1, 0), (1, 1), (1, 1), (2, 2)];
        let vals = [2.0, -1.0, -1.0, 1.5, 0.5, 3.0];

        let mut fresh = CooMatrix::new(3, 3);
        for (&(r, c), &v) in coords.iter().zip(&vals) {
            fresh.push(r, c, v);
        }
        let want = fresh.to_csr();

        let mut structural = CooMatrix::new(3, 3);
        for &(r, c) in &coords {
            structural.push_structural(r, c);
        }
        let (mut csr, pattern) = structural.to_csr_with_pattern();
        assert_eq!(pattern.raw_len(), coords.len());
        csr.update_values(&pattern, &vals).unwrap();

        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(csr.get(r, c), want.get(r, c), "({r},{c})");
            }
        }
    }

    #[test]
    fn pattern_keeps_zero_valued_slots() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push_structural(0, 0);
        coo.push_structural(1, 1);
        let (mut csr, pattern) = coo.to_csr_with_pattern();
        csr.update_values(&pattern, &[0.0, 4.0]).unwrap();
        // The zero is stored explicitly: the pattern never shrinks.
        assert_eq!(csr.nnz(), 2);
        assert_eq!(csr.get(0, 0), 0.0);
        assert_eq!(csr.get(1, 1), 4.0);
        // And a later restamp can revive it.
        csr.update_values(&pattern, &[7.0, 4.0]).unwrap();
        assert_eq!(csr.get(0, 0), 7.0);
    }

    #[test]
    fn restamp_is_bitwise_repeatable() {
        let mut coo = CooMatrix::new(2, 2);
        for _ in 0..3 {
            coo.push_structural(0, 0); // three duplicates, one slot
        }
        let (mut csr, pattern) = coo.to_csr_with_pattern();
        let vals = [0.1, 0.2, 0.3];
        csr.update_values(&pattern, &vals).unwrap();
        let first = csr.get(0, 0);
        csr.update_values(&pattern, &vals).unwrap();
        assert_eq!(csr.get(0, 0).to_bits(), first.to_bits());
    }

    #[test]
    fn update_values_rejects_wrong_lengths() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push_structural(0, 0);
        let (mut csr, pattern) = coo.to_csr_with_pattern();
        assert!(csr.update_values(&pattern, &[1.0, 2.0]).is_err());

        let mut other = CooMatrix::new(2, 2);
        other.push_structural(0, 0);
        other.push_structural(1, 1);
        let (_, wrong_pattern) = other.to_csr_with_pattern();
        assert!(csr.update_values(&wrong_pattern, &[1.0, 2.0]).is_err());
    }

    #[test]
    fn diagonal_into_matches_diagonal() {
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 0, 5.0);
        coo.push(2, 2, -1.0);
        coo.push(1, 0, 7.0);
        let csr = coo.to_csr();
        let mut d = vec![9.0; 3];
        csr.diagonal_into(&mut d);
        assert_eq!(d, csr.diagonal());
    }

    #[test]
    fn permuted_reverses_a_chain() {
        // 3-node chain, reversed: entry (0,1) must land at (2,1).
        let mut coo = CooMatrix::new(3, 3);
        for i in 0..3 {
            coo.push(i, i, 2.0 + i as f64);
        }
        coo.push(0, 1, -1.0);
        coo.push(1, 0, -1.0);
        coo.push(1, 2, -0.5);
        coo.push(2, 1, -0.5);
        let a = coo.to_csr();
        let p = [2usize, 1, 0];
        let b = a.permuted(&p).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(b.get(i, j), a.get(p[i], p[j]), "({i},{j})");
            }
        }
        assert_eq!(b.nnz(), a.nnz());
        assert_eq!(b.asymmetry().unwrap(), 0.0);
    }

    #[test]
    fn permuted_rejects_bad_permutations() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(1, 1, 1.0);
        let a = coo.to_csr();
        assert!(a.permuted(&[0]).is_err(), "wrong length");
        assert!(a.permuted(&[0, 2]).is_err(), "out of range");
        assert!(a.permuted(&[1, 1]).is_err(), "duplicate");
        let mut rect = CooMatrix::new(2, 3);
        rect.push(0, 0, 1.0);
        assert!(rect.to_csr().permuted(&[0, 1]).is_err(), "not square");
    }

    #[test]
    fn empty_rows_have_empty_ranges() {
        let mut coo = CooMatrix::new(3, 3);
        coo.push(2, 2, 1.0);
        let csr = coo.to_csr();
        assert_eq!(csr.row_entries(0).count(), 0);
        assert_eq!(csr.row_entries(1).count(), 0);
        assert_eq!(csr.row_entries(2).count(), 1);
    }
}
