//! Sparse matrix storage: COO builder and CSR compute format.

use crate::NumericError;

/// A coordinate-format (COO) sparse-matrix builder.
///
/// MNA stamping naturally produces duplicate `(row, col)` contributions;
/// duplicates are summed when compressing to CSR, so element stamps can be
/// pushed independently.
///
/// ```
/// use vpd_numeric::CooMatrix;
///
/// let mut coo = CooMatrix::new(2, 2);
/// coo.push(0, 0, 1.0);
/// coo.push(0, 0, 2.0); // duplicate: summed on compression
/// coo.push(1, 1, 4.0);
/// let csr = coo.to_csr();
/// assert_eq!(csr.matvec(&[1.0, 1.0]), vec![3.0, 4.0]);
/// ```
#[derive(Clone, PartialEq, Debug, Default)]
pub struct CooMatrix {
    rows: usize,
    cols: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl CooMatrix {
    /// Creates an empty builder of the given shape.
    #[must_use]
    pub fn new(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Adds a contribution at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the index lies outside the declared shape — stamping out
    /// of bounds is a programming error, not a recoverable condition.
    pub fn push(&mut self, row: usize, col: usize, value: f64) {
        assert!(
            row < self.rows && col < self.cols,
            "sparse stamp ({row}, {col}) outside {}x{}",
            self.rows,
            self.cols
        );
        if value != 0.0 {
            self.entries.push((row, col, value));
        }
    }

    /// Number of raw (pre-merge) entries.
    #[must_use]
    pub fn raw_len(&self) -> usize {
        self.entries.len()
    }

    /// Declared number of rows.
    #[must_use]
    pub const fn rows(&self) -> usize {
        self.rows
    }

    /// Declared number of columns.
    #[must_use]
    pub const fn cols(&self) -> usize {
        self.cols
    }

    /// Compresses to CSR, summing duplicate coordinates and dropping
    /// entries that cancel to exactly zero.
    #[must_use]
    pub fn to_csr(&self) -> CsrMatrix {
        let mut sorted = self.entries.clone();
        sorted.sort_unstable_by_key(|&(r, c, _)| (r, c));

        let mut values = Vec::with_capacity(sorted.len());
        let mut col_indices = Vec::with_capacity(sorted.len());
        let mut row_ptr = vec![0usize; self.rows + 1];

        let mut i = 0;
        while i < sorted.len() {
            let (r, c, mut v) = sorted[i];
            i += 1;
            while i < sorted.len() && sorted[i].0 == r && sorted[i].1 == c {
                v += sorted[i].2;
                i += 1;
            }
            if v != 0.0 {
                values.push(v);
                col_indices.push(c);
                row_ptr[r + 1] += 1;
            }
        }
        for r in 0..self.rows {
            row_ptr[r + 1] += row_ptr[r];
        }

        CsrMatrix {
            rows: self.rows,
            cols: self.cols,
            row_ptr,
            col_indices,
            values,
        }
    }
}

/// A compressed-sparse-row (CSR) matrix.
///
/// Produced from a [`CooMatrix`]; immutable once built. Supports the
/// operations iterative solvers need: `matvec`, diagonal extraction, and
/// row iteration.
#[derive(Clone, PartialEq, Debug)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_indices: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Number of rows.
    #[must_use]
    pub const fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub const fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored non-zeros.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    #[must_use]
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.rows];
        self.matvec_into(x, &mut y);
        y
    }

    /// Matrix–vector product into a caller-provided buffer
    /// ([C-CALLER-CONTROL]); the hot path of conjugate gradient.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()` or `y.len() != self.rows()`.
    pub fn matvec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "matvec input dimension mismatch");
        assert_eq!(y.len(), self.rows, "matvec output dimension mismatch");
        for r in 0..self.rows {
            let start = self.row_ptr[r];
            let end = self.row_ptr[r + 1];
            let mut sum = 0.0;
            for k in start..end {
                sum += self.values[k] * x[self.col_indices[k]];
            }
            y[r] = sum;
        }
    }

    /// The main diagonal (zero where no entry is stored); the Jacobi
    /// preconditioner.
    #[must_use]
    pub fn diagonal(&self) -> Vec<f64> {
        let mut d = vec![0.0; self.rows.min(self.cols)];
        for r in 0..self.rows {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                if self.col_indices[k] == r {
                    d[r] = self.values[k];
                }
            }
        }
        d
    }

    /// Entry lookup (O(row nnz)).
    #[must_use]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        if row >= self.rows {
            return 0.0;
        }
        for k in self.row_ptr[row]..self.row_ptr[row + 1] {
            if self.col_indices[k] == col {
                return self.values[k];
            }
        }
        0.0
    }

    /// Iterates the stored entries of one row as `(col, value)` pairs.
    pub fn row_entries(&self, row: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let start = self.row_ptr[row];
        let end = self.row_ptr[row + 1];
        (start..end).map(move |k| (self.col_indices[k], self.values[k]))
    }

    /// Maximum absolute asymmetry over stored entries (0 for symmetric).
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] if the matrix is not
    /// square.
    pub fn asymmetry(&self) -> Result<f64, NumericError> {
        if self.rows != self.cols {
            return Err(NumericError::DimensionMismatch {
                expected: "square matrix".into(),
                found: format!("{}x{}", self.rows, self.cols),
            });
        }
        let mut worst: f64 = 0.0;
        for r in 0..self.rows {
            for (c, v) in self.row_entries(r) {
                worst = worst.max((v - self.get(c, r)).abs());
            }
        }
        Ok(worst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicates_are_summed() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(1, 0, 1.5);
        coo.push(1, 0, 2.5);
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 1);
        assert_eq!(csr.get(1, 0), 4.0);
    }

    #[test]
    fn cancelling_entries_are_dropped() {
        let mut coo = CooMatrix::new(1, 1);
        coo.push(0, 0, 3.0);
        coo.push(0, 0, -3.0);
        assert_eq!(coo.to_csr().nnz(), 0);
    }

    #[test]
    fn zero_pushes_are_ignored() {
        let mut coo = CooMatrix::new(1, 1);
        coo.push(0, 0, 0.0);
        assert_eq!(coo.raw_len(), 0);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_bounds_stamp_panics() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(2, 0, 1.0);
    }

    #[test]
    fn matvec_matches_dense() {
        let mut coo = CooMatrix::new(3, 3);
        // Tridiagonal Laplacian-ish
        for i in 0..3 {
            coo.push(i, i, 2.0);
        }
        coo.push(0, 1, -1.0);
        coo.push(1, 0, -1.0);
        coo.push(1, 2, -1.0);
        coo.push(2, 1, -1.0);
        let csr = coo.to_csr();
        assert_eq!(csr.matvec(&[1.0, 2.0, 3.0]), vec![0.0, 0.0, 4.0]);
        assert_eq!(csr.asymmetry().unwrap(), 0.0);
    }

    #[test]
    fn diagonal_extraction() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 5.0);
        coo.push(1, 0, 7.0); // off-diagonal only on row 1
        let d = coo.to_csr().diagonal();
        assert_eq!(d, vec![5.0, 0.0]);
    }

    #[test]
    fn get_missing_entry_is_zero() {
        let coo = CooMatrix::new(2, 2);
        let csr = coo.to_csr();
        assert_eq!(csr.get(0, 1), 0.0);
        assert_eq!(csr.get(9, 9), 0.0);
    }

    #[test]
    fn asymmetry_detects() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 1, 1.0);
        let a = coo.to_csr().asymmetry().unwrap();
        assert_eq!(a, 1.0);
    }

    #[test]
    fn empty_rows_have_empty_ranges() {
        let mut coo = CooMatrix::new(3, 3);
        coo.push(2, 2, 1.0);
        let csr = coo.to_csr();
        assert_eq!(csr.row_entries(0).count(), 0);
        assert_eq!(csr.row_entries(1).count(), 0);
        assert_eq!(csr.row_entries(2).count(), 1);
    }
}
