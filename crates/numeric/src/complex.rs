//! Complex scalars and dense complex linear algebra for AC (phasor)
//! analysis.

use crate::NumericError;

/// A complex number (double precision), written from scratch because
//  the workspace carries no external numerics dependency.
#[derive(Clone, Copy, PartialEq, Debug, Default, serde::Serialize, serde::Deserialize)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// 0 + 0j.
    pub const ZERO: Self = Self { re: 0.0, im: 0.0 };
    /// 1 + 0j.
    pub const ONE: Self = Self { re: 1.0, im: 0.0 };
    /// 0 + 1j.
    pub const J: Self = Self { re: 0.0, im: 1.0 };

    /// Creates `re + j·im`.
    #[must_use]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// A purely real value.
    #[must_use]
    pub const fn from_real(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// From polar form `r·e^{jθ}`.
    #[must_use]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Self::new(r * theta.cos(), r * theta.sin())
    }

    /// Magnitude `|z|`.
    #[must_use]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude `|z|²`.
    #[must_use]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase) in radians.
    #[must_use]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    #[must_use]
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// Division by exact zero yields infinities, matching `f64`
    /// semantics.
    #[must_use]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        Self::new(self.re / d, -self.im / d)
    }

    /// `true` when both parts are finite.
    #[must_use]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl std::ops::Add for Complex {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl std::ops::Sub for Complex {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Self::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl std::ops::Neg for Complex {
    type Output = Self;
    fn neg(self) -> Self {
        Self::new(-self.re, -self.im)
    }
}

impl std::ops::Mul for Complex {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        Self::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl std::ops::Div for Complex {
    type Output = Self;
    // Complex division multiplies by the reciprocal (conjugate trick).
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Self) -> Self {
        self * rhs.recip()
    }
}

impl std::ops::Mul<f64> for Complex {
    type Output = Self;
    fn mul(self, rhs: f64) -> Self {
        Self::new(self.re * rhs, self.im * rhs)
    }
}

impl std::ops::AddAssign for Complex {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl std::ops::SubAssign for Complex {
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Self::from_real(re)
    }
}

impl std::fmt::Display for Complex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.6}+j{:.6}", self.re, self.im)
        } else {
            write!(f, "{:.6}-j{:.6}", self.re, -self.im)
        }
    }
}

/// A row-major dense complex matrix.
#[derive(Clone, PartialEq, Debug)]
pub struct ComplexMatrix {
    rows: usize,
    cols: usize,
    data: Vec<Complex>,
}

impl ComplexMatrix {
    /// Creates a `rows × cols` zero matrix.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![Complex::ZERO; rows * cols],
        }
    }

    /// Number of rows.
    #[must_use]
    pub const fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub const fn cols(&self) -> usize {
        self.cols
    }

    /// Entry read (panics out of bounds, like slice indexing).
    #[must_use]
    pub fn at(&self, row: usize, col: usize) -> Complex {
        self.data[row * self.cols + col]
    }

    /// Entry write.
    pub fn set(&mut self, row: usize, col: usize, value: Complex) {
        self.data[row * self.cols + col] = value;
    }

    /// Adds `value` to an entry (MNA stamping).
    pub fn add_at(&mut self, row: usize, col: usize, value: Complex) {
        self.data[row * self.cols + col] += value;
    }

    /// Overwrites every entry with `value` (typically [`Complex::ZERO`]
    /// before restamping), keeping the allocation.
    pub fn fill(&mut self, value: Complex) {
        self.data.fill(value);
    }

    /// Makes `self` an entry-for-entry copy of `src`, reusing the
    /// existing allocation when the sizes match (and growing it at most
    /// once otherwise).
    pub fn copy_from(&mut self, src: &Self) {
        self.rows = src.rows;
        self.cols = src.cols;
        self.data.clear();
        self.data.extend_from_slice(&src.data);
    }

    /// Matrix–vector product.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    #[must_use]
    pub fn matvec(&self, x: &[Complex]) -> Vec<Complex> {
        assert_eq!(x.len(), self.cols, "complex matvec dimension mismatch");
        (0..self.rows)
            .map(|i| {
                let mut acc = Complex::ZERO;
                for j in 0..self.cols {
                    acc += self.at(i, j) * x[j];
                }
                acc
            })
            .collect()
    }
}

/// LU factorization with partial pivoting over ℂ.
#[derive(Clone, Debug)]
pub struct ComplexLu {
    lu: ComplexMatrix,
    perm: Vec<usize>,
}

impl ComplexLu {
    /// Factors a square complex matrix.
    ///
    /// # Errors
    ///
    /// * [`NumericError::DimensionMismatch`] for a non-square input.
    /// * [`NumericError::Singular`] when a pivot magnitude underflows.
    pub fn new(a: &ComplexMatrix) -> Result<Self, NumericError> {
        let mut f = Self {
            lu: ComplexMatrix::zeros(0, 0),
            perm: Vec::new(),
        };
        f.factor_into(a)?;
        Ok(f)
    }

    /// Refactors `a` in place, reusing this factorization's matrix and
    /// permutation buffers: after the first call (or a [`ComplexLu::new`]
    /// of the same dimension) repeated factorizations allocate nothing.
    ///
    /// Pivoting compares squared magnitudes (`|z|²`), which selects the
    /// same pivot as comparing `|z|` — the square is monotone — without
    /// a square root per candidate; the singularity threshold is the
    /// squared form of `|pivot| ≤ 1e-13·max|aᵢⱼ|`.
    ///
    /// # Errors
    ///
    /// * [`NumericError::DimensionMismatch`] for a non-square input.
    /// * [`NumericError::Singular`] when a pivot magnitude underflows;
    ///   the buffered factorization is unspecified afterwards and must
    ///   be refactored before solving.
    pub fn factor_into(&mut self, a: &ComplexMatrix) -> Result<(), NumericError> {
        if a.rows() != a.cols() {
            return Err(NumericError::DimensionMismatch {
                expected: "square matrix".into(),
                found: format!("{}x{}", a.rows(), a.cols()),
            });
        }
        let n = a.rows();
        let lu = &mut self.lu;
        lu.copy_from(a);
        self.perm.clear();
        self.perm.extend(0..n);
        let scale_sqr = (0..n)
            .flat_map(|i| (0..n).map(move |j| (i, j)))
            .fold(0.0_f64, |m, (i, j)| m.max(lu.at(i, j).norm_sqr()))
            .max(1.0);
        for k in 0..n {
            let mut pivot_row = k;
            let mut pivot_sqr = lu.at(k, k).norm_sqr();
            for i in (k + 1)..n {
                let sqr = lu.at(i, k).norm_sqr();
                if sqr > pivot_sqr {
                    pivot_sqr = sqr;
                    pivot_row = i;
                }
            }
            if pivot_sqr <= 1e-26 * scale_sqr {
                return Err(NumericError::Singular { pivot: k });
            }
            if pivot_row != k {
                for j in 0..n {
                    let tmp = lu.at(k, j);
                    lu.set(k, j, lu.at(pivot_row, j));
                    lu.set(pivot_row, j, tmp);
                }
                self.perm.swap(k, pivot_row);
            }
            let pivot = lu.at(k, k);
            for i in (k + 1)..n {
                let factor = lu.at(i, k) / pivot;
                lu.set(i, k, factor);
                for j in (k + 1)..n {
                    let updated = lu.at(i, j) - factor * lu.at(k, j);
                    lu.set(i, j, updated);
                }
            }
        }
        Ok(())
    }

    /// Solves `A·x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] for a wrong-length
    /// right-hand side.
    pub fn solve(&self, b: &[Complex]) -> Result<Vec<Complex>, NumericError> {
        let mut x = Vec::new();
        self.solve_into(b, &mut x)?;
        Ok(x)
    }

    /// Solves `A·x = b` into a caller-owned buffer, so a sweep that
    /// keeps `x` alive allocates nothing per solve. `x` is resized to
    /// the system dimension and fully overwritten.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] for a wrong-length
    /// right-hand side.
    pub fn solve_into(&self, b: &[Complex], x: &mut Vec<Complex>) -> Result<(), NumericError> {
        let n = self.lu.rows();
        if b.len() != n {
            return Err(NumericError::DimensionMismatch {
                expected: format!("rhs of length {n}"),
                found: format!("length {}", b.len()),
            });
        }
        x.clear();
        x.extend(self.perm.iter().map(|&p| b[p]));
        for i in 1..n {
            let mut sum = x[i];
            for j in 0..i {
                sum -= self.lu.at(i, j) * x[j];
            }
            x[i] = sum;
        }
        for i in (0..n).rev() {
            let mut sum = x[i];
            for j in (i + 1)..n {
                sum -= self.lu.at(i, j) * x[j];
            }
            x[i] = sum / self.lu.at(i, i);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn arithmetic_identities() {
        let z = Complex::new(3.0, -4.0);
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.conj(), Complex::new(3.0, 4.0));
        let w = z * z.recip();
        assert!((w.re - 1.0).abs() < 1e-12 && w.im.abs() < 1e-12);
        assert_eq!(Complex::J * Complex::J, Complex::from_real(-1.0));
    }

    #[test]
    fn polar_round_trip() {
        let z = Complex::from_polar(2.0, std::f64::consts::FRAC_PI_3);
        assert!((z.abs() - 2.0).abs() < 1e-12);
        assert!((z.arg() - std::f64::consts::FRAC_PI_3).abs() < 1e-12);
    }

    #[test]
    fn display_forms() {
        assert_eq!(format!("{}", Complex::new(1.0, -2.0)), "1.000000-j2.000000");
    }

    #[test]
    fn solves_complex_system() {
        // (1+j)x = 2 → x = 1−j.
        let mut a = ComplexMatrix::zeros(1, 1);
        a.set(0, 0, Complex::new(1.0, 1.0));
        let lu = ComplexLu::new(&a).unwrap();
        let x = lu.solve(&[Complex::from_real(2.0)]).unwrap();
        assert!((x[0].re - 1.0).abs() < 1e-12 && (x[0].im + 1.0).abs() < 1e-12);
    }

    #[test]
    fn rc_divider_phasor() {
        // V across C in a series RC at ω where R = 1/(ωC): |H| = 1/√2,
        // phase −45°.
        let r = 1000.0;
        let c = 1e-6;
        let omega = 1.0 / (r * c);
        let zc = Complex::new(0.0, -1.0 / (omega * c));
        let h = zc / (Complex::from_real(r) + zc);
        assert!((h.abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12);
        assert!((h.arg() + std::f64::consts::FRAC_PI_4).abs() < 1e-12);
    }

    #[test]
    fn singular_detected() {
        let a = ComplexMatrix::zeros(2, 2);
        assert!(matches!(
            ComplexLu::new(&a),
            Err(NumericError::Singular { .. })
        ));
    }

    #[test]
    fn non_square_and_bad_rhs_rejected() {
        let a = ComplexMatrix::zeros(2, 3);
        assert!(ComplexLu::new(&a).is_err());
        let mut sq = ComplexMatrix::zeros(1, 1);
        sq.set(0, 0, Complex::ONE);
        let lu = ComplexLu::new(&sq).unwrap();
        assert!(lu.solve(&[Complex::ONE, Complex::ONE]).is_err());
    }

    #[test]
    fn factor_into_reuses_buffers_and_matches_fresh_factorization() {
        let mut a = ComplexMatrix::zeros(2, 2);
        a.set(0, 0, Complex::new(2.0, 1.0));
        a.set(0, 1, Complex::new(-1.0, 0.5));
        a.set(1, 0, Complex::new(0.25, -0.75));
        a.set(1, 1, Complex::new(3.0, -2.0));
        let mut b = a.clone();
        b.set(0, 0, Complex::new(5.0, -1.0));

        let mut reused = ComplexLu::new(&a).unwrap();
        let rhs = [Complex::new(1.0, 2.0), Complex::new(-3.0, 0.5)];
        let mut x = Vec::new();
        // Refactor `b` into the same buffers, then come back to `a`:
        // both must agree bitwise with fresh factorizations.
        reused.factor_into(&b).unwrap();
        reused.solve_into(&rhs, &mut x).unwrap();
        assert_eq!(x, ComplexLu::new(&b).unwrap().solve(&rhs).unwrap());
        reused.factor_into(&a).unwrap();
        reused.solve_into(&rhs, &mut x).unwrap();
        assert_eq!(x, ComplexLu::new(&a).unwrap().solve(&rhs).unwrap());
    }

    #[test]
    fn solve_into_matches_solve_and_checks_rhs_length() {
        let mut a = ComplexMatrix::zeros(1, 1);
        a.set(0, 0, Complex::new(0.0, 2.0));
        let lu = ComplexLu::new(&a).unwrap();
        let mut x = vec![Complex::ONE; 7]; // stale contents must not leak
        lu.solve_into(&[Complex::from_real(4.0)], &mut x).unwrap();
        assert_eq!(x, lu.solve(&[Complex::from_real(4.0)]).unwrap());
        assert!(lu.solve_into(&[], &mut x).is_err());
    }

    #[test]
    fn factor_into_rejects_non_square_and_detects_singular() {
        let mut lu = ComplexLu::new(&{
            let mut a = ComplexMatrix::zeros(1, 1);
            a.set(0, 0, Complex::ONE);
            a
        })
        .unwrap();
        assert!(lu.factor_into(&ComplexMatrix::zeros(2, 3)).is_err());
        assert!(matches!(
            lu.factor_into(&ComplexMatrix::zeros(2, 2)),
            Err(NumericError::Singular { .. })
        ));
    }

    #[test]
    fn matrix_fill_and_copy_from_reuse_storage() {
        let mut a = ComplexMatrix::zeros(2, 2);
        a.set(1, 0, Complex::J);
        let mut b = ComplexMatrix::zeros(2, 2);
        b.copy_from(&a);
        assert_eq!(a, b);
        b.fill(Complex::ZERO);
        assert_eq!(b, ComplexMatrix::zeros(2, 2));
        // Shape changes follow the source.
        let wide = ComplexMatrix::zeros(1, 3);
        b.copy_from(&wide);
        assert_eq!(b.rows(), 1);
        assert_eq!(b.cols(), 3);
    }

    proptest! {
        /// On real-only systems the complex LU must agree with the
        /// real-valued [`crate::LuFactor`] oracle: same partial-pivoting
        /// algorithm, so the solutions coincide to rounding error.
        #[test]
        fn prop_real_only_systems_match_real_lu_oracle(
            entries in proptest::array::uniform9(-1.0_f64..1.0),
            rhs in proptest::array::uniform3(-5.0_f64..5.0),
        ) {
            let n = 3;
            let mut c = ComplexMatrix::zeros(n, n);
            let mut rows = [[0.0_f64; 3]; 3];
            for i in 0..n {
                for j in 0..n {
                    let v = entries[i * n + j]
                        + if i == j { 3.0 } else { 0.0 };
                    c.set(i, j, Complex::from_real(v));
                    rows[i][j] = v;
                }
            }
            let real = crate::LuFactor::new(
                &crate::DenseMatrix::from_rows(&[&rows[0], &rows[1], &rows[2]]).unwrap(),
            ).unwrap();
            let want = real.solve(&rhs).unwrap();

            let mut lu = ComplexLu::new(&c).unwrap();
            let got = lu.solve(&rhs.map(Complex::from_real)).unwrap();
            // `factor_into` over the same matrix must agree bitwise with
            // the fresh factorization it just produced.
            let mut again = Vec::new();
            lu.factor_into(&c).unwrap();
            lu.solve_into(&rhs.map(Complex::from_real), &mut again).unwrap();
            prop_assert_eq!(&again, &got);

            for (g, w) in got.iter().zip(&want) {
                prop_assert!((g.re - w).abs() < 1e-9, "{} vs {}", g.re, w);
                prop_assert!(g.im.abs() < 1e-12);
            }
        }

        /// Random diagonally-dominant complex systems solve to a small
        /// residual through the in-place path as well.
        #[test]
        fn prop_factor_into_residual(
            res in proptest::array::uniform9(-1.0_f64..1.0),
            ims in proptest::array::uniform9(-1.0_f64..1.0),
            rhs_re in proptest::array::uniform3(-5.0_f64..5.0),
        ) {
            let n = 3;
            let mut a = ComplexMatrix::zeros(n, n);
            for i in 0..n {
                for j in 0..n {
                    a.set(i, j, Complex::new(res[i * n + j], ims[i * n + j]));
                }
            }
            for i in 0..n {
                let off: f64 = (0..n).filter(|&j| j != i)
                    .map(|j| a.at(i, j).abs()).sum();
                a.set(i, i, Complex::new(off + 1.0, 0.5));
            }
            let b: Vec<Complex> = rhs_re.iter().map(|&r| Complex::new(r, -r)).collect();
            let mut lu = ComplexLu::new(&ComplexMatrix::zeros(0, 0)).unwrap();
            lu.factor_into(&a).unwrap();
            let mut x = Vec::new();
            lu.solve_into(&b, &mut x).unwrap();
            let ax = a.matvec(&x);
            for (axi, bi) in ax.iter().zip(&b) {
                prop_assert!((*axi - *bi).abs() < 1e-9);
            }
        }

        /// Random diagonally-dominant complex systems solve to a small
        /// residual.
        #[test]
        fn prop_complex_solve_residual(
            res in proptest::array::uniform9(-1.0_f64..1.0),
            ims in proptest::array::uniform9(-1.0_f64..1.0),
            rhs_re in proptest::array::uniform3(-5.0_f64..5.0),
        ) {
            let n = 3;
            let mut a = ComplexMatrix::zeros(n, n);
            for i in 0..n {
                for j in 0..n {
                    a.set(i, j, Complex::new(res[i * n + j], ims[i * n + j]));
                }
            }
            for i in 0..n {
                let off: f64 = (0..n).filter(|&j| j != i)
                    .map(|j| a.at(i, j).abs()).sum();
                a.set(i, i, Complex::new(off + 1.0, 0.5));
            }
            let b: Vec<Complex> = rhs_re.iter().map(|&r| Complex::new(r, -r)).collect();
            let lu = ComplexLu::new(&a).unwrap();
            let x = lu.solve(&b).unwrap();
            let ax = a.matvec(&x);
            for (axi, bi) in ax.iter().zip(&b) {
                prop_assert!((*axi - *bi).abs() < 1e-9);
            }
        }
    }
}
