//! Complex scalars and dense complex linear algebra for AC (phasor)
//! analysis.

use crate::NumericError;

/// A complex number (double precision), written from scratch because
//  the workspace carries no external numerics dependency.
#[derive(Clone, Copy, PartialEq, Debug, Default, serde::Serialize, serde::Deserialize)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// 0 + 0j.
    pub const ZERO: Self = Self { re: 0.0, im: 0.0 };
    /// 1 + 0j.
    pub const ONE: Self = Self { re: 1.0, im: 0.0 };
    /// 0 + 1j.
    pub const J: Self = Self { re: 0.0, im: 1.0 };

    /// Creates `re + j·im`.
    #[must_use]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// A purely real value.
    #[must_use]
    pub const fn from_real(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// From polar form `r·e^{jθ}`.
    #[must_use]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Self::new(r * theta.cos(), r * theta.sin())
    }

    /// Magnitude `|z|`.
    #[must_use]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude `|z|²`.
    #[must_use]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Argument (phase) in radians.
    #[must_use]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    #[must_use]
    pub fn conj(self) -> Self {
        Self::new(self.re, -self.im)
    }

    /// Multiplicative inverse `1/z`.
    ///
    /// Division by exact zero yields infinities, matching `f64`
    /// semantics.
    #[must_use]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        Self::new(self.re / d, -self.im / d)
    }

    /// `true` when both parts are finite.
    #[must_use]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl std::ops::Add for Complex {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl std::ops::Sub for Complex {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Self::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl std::ops::Neg for Complex {
    type Output = Self;
    fn neg(self) -> Self {
        Self::new(-self.re, -self.im)
    }
}

impl std::ops::Mul for Complex {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        Self::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl std::ops::Div for Complex {
    type Output = Self;
    // Complex division multiplies by the reciprocal (conjugate trick).
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Self) -> Self {
        self * rhs.recip()
    }
}

impl std::ops::Mul<f64> for Complex {
    type Output = Self;
    fn mul(self, rhs: f64) -> Self {
        Self::new(self.re * rhs, self.im * rhs)
    }
}

impl std::ops::AddAssign for Complex {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl std::ops::SubAssign for Complex {
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Self::from_real(re)
    }
}

impl std::fmt::Display for Complex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.6}+j{:.6}", self.re, self.im)
        } else {
            write!(f, "{:.6}-j{:.6}", self.re, -self.im)
        }
    }
}

/// A row-major dense complex matrix.
#[derive(Clone, PartialEq, Debug)]
pub struct ComplexMatrix {
    rows: usize,
    cols: usize,
    data: Vec<Complex>,
}

impl ComplexMatrix {
    /// Creates a `rows × cols` zero matrix.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![Complex::ZERO; rows * cols],
        }
    }

    /// Number of rows.
    #[must_use]
    pub const fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub const fn cols(&self) -> usize {
        self.cols
    }

    /// Entry read (panics out of bounds, like slice indexing).
    #[must_use]
    pub fn at(&self, row: usize, col: usize) -> Complex {
        self.data[row * self.cols + col]
    }

    /// Entry write.
    pub fn set(&mut self, row: usize, col: usize, value: Complex) {
        self.data[row * self.cols + col] = value;
    }

    /// Adds `value` to an entry (MNA stamping).
    pub fn add_at(&mut self, row: usize, col: usize, value: Complex) {
        self.data[row * self.cols + col] += value;
    }

    /// Matrix–vector product.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    #[must_use]
    pub fn matvec(&self, x: &[Complex]) -> Vec<Complex> {
        assert_eq!(x.len(), self.cols, "complex matvec dimension mismatch");
        (0..self.rows)
            .map(|i| {
                let mut acc = Complex::ZERO;
                for j in 0..self.cols {
                    acc += self.at(i, j) * x[j];
                }
                acc
            })
            .collect()
    }
}

/// LU factorization with partial pivoting over ℂ.
#[derive(Clone, Debug)]
pub struct ComplexLu {
    lu: ComplexMatrix,
    perm: Vec<usize>,
}

impl ComplexLu {
    /// Factors a square complex matrix.
    ///
    /// # Errors
    ///
    /// * [`NumericError::DimensionMismatch`] for a non-square input.
    /// * [`NumericError::Singular`] when a pivot magnitude underflows.
    pub fn new(a: &ComplexMatrix) -> Result<Self, NumericError> {
        if a.rows() != a.cols() {
            return Err(NumericError::DimensionMismatch {
                expected: "square matrix".into(),
                found: format!("{}x{}", a.rows(), a.cols()),
            });
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let scale = (0..n)
            .flat_map(|i| (0..n).map(move |j| (i, j)))
            .fold(0.0_f64, |m, (i, j)| m.max(lu.at(i, j).abs()))
            .max(1.0);
        for k in 0..n {
            let mut pivot_row = k;
            let mut pivot_mag = lu.at(k, k).abs();
            for i in (k + 1)..n {
                let mag = lu.at(i, k).abs();
                if mag > pivot_mag {
                    pivot_mag = mag;
                    pivot_row = i;
                }
            }
            if pivot_mag <= 1e-13 * scale {
                return Err(NumericError::Singular { pivot: k });
            }
            if pivot_row != k {
                for j in 0..n {
                    let tmp = lu.at(k, j);
                    lu.set(k, j, lu.at(pivot_row, j));
                    lu.set(pivot_row, j, tmp);
                }
                perm.swap(k, pivot_row);
            }
            let pivot = lu.at(k, k);
            for i in (k + 1)..n {
                let factor = lu.at(i, k) / pivot;
                lu.set(i, k, factor);
                for j in (k + 1)..n {
                    let updated = lu.at(i, j) - factor * lu.at(k, j);
                    lu.set(i, j, updated);
                }
            }
        }
        Ok(Self { lu, perm })
    }

    /// Solves `A·x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] for a wrong-length
    /// right-hand side.
    pub fn solve(&self, b: &[Complex]) -> Result<Vec<Complex>, NumericError> {
        let n = self.lu.rows();
        if b.len() != n {
            return Err(NumericError::DimensionMismatch {
                expected: format!("rhs of length {n}"),
                found: format!("length {}", b.len()),
            });
        }
        let mut x: Vec<Complex> = self.perm.iter().map(|&p| b[p]).collect();
        for i in 1..n {
            let mut sum = x[i];
            for j in 0..i {
                sum -= self.lu.at(i, j) * x[j];
            }
            x[i] = sum;
        }
        for i in (0..n).rev() {
            let mut sum = x[i];
            for j in (i + 1)..n {
                sum -= self.lu.at(i, j) * x[j];
            }
            x[i] = sum / self.lu.at(i, i);
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn arithmetic_identities() {
        let z = Complex::new(3.0, -4.0);
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.conj(), Complex::new(3.0, 4.0));
        let w = z * z.recip();
        assert!((w.re - 1.0).abs() < 1e-12 && w.im.abs() < 1e-12);
        assert_eq!(Complex::J * Complex::J, Complex::from_real(-1.0));
    }

    #[test]
    fn polar_round_trip() {
        let z = Complex::from_polar(2.0, std::f64::consts::FRAC_PI_3);
        assert!((z.abs() - 2.0).abs() < 1e-12);
        assert!((z.arg() - std::f64::consts::FRAC_PI_3).abs() < 1e-12);
    }

    #[test]
    fn display_forms() {
        assert_eq!(format!("{}", Complex::new(1.0, -2.0)), "1.000000-j2.000000");
    }

    #[test]
    fn solves_complex_system() {
        // (1+j)x = 2 → x = 1−j.
        let mut a = ComplexMatrix::zeros(1, 1);
        a.set(0, 0, Complex::new(1.0, 1.0));
        let lu = ComplexLu::new(&a).unwrap();
        let x = lu.solve(&[Complex::from_real(2.0)]).unwrap();
        assert!((x[0].re - 1.0).abs() < 1e-12 && (x[0].im + 1.0).abs() < 1e-12);
    }

    #[test]
    fn rc_divider_phasor() {
        // V across C in a series RC at ω where R = 1/(ωC): |H| = 1/√2,
        // phase −45°.
        let r = 1000.0;
        let c = 1e-6;
        let omega = 1.0 / (r * c);
        let zc = Complex::new(0.0, -1.0 / (omega * c));
        let h = zc / (Complex::from_real(r) + zc);
        assert!((h.abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12);
        assert!((h.arg() + std::f64::consts::FRAC_PI_4).abs() < 1e-12);
    }

    #[test]
    fn singular_detected() {
        let a = ComplexMatrix::zeros(2, 2);
        assert!(matches!(
            ComplexLu::new(&a),
            Err(NumericError::Singular { .. })
        ));
    }

    #[test]
    fn non_square_and_bad_rhs_rejected() {
        let a = ComplexMatrix::zeros(2, 3);
        assert!(ComplexLu::new(&a).is_err());
        let mut sq = ComplexMatrix::zeros(1, 1);
        sq.set(0, 0, Complex::ONE);
        let lu = ComplexLu::new(&sq).unwrap();
        assert!(lu.solve(&[Complex::ONE, Complex::ONE]).is_err());
    }

    proptest! {
        /// Random diagonally-dominant complex systems solve to a small
        /// residual.
        #[test]
        fn prop_complex_solve_residual(
            res in proptest::array::uniform9(-1.0_f64..1.0),
            ims in proptest::array::uniform9(-1.0_f64..1.0),
            rhs_re in proptest::array::uniform3(-5.0_f64..5.0),
        ) {
            let n = 3;
            let mut a = ComplexMatrix::zeros(n, n);
            for i in 0..n {
                for j in 0..n {
                    a.set(i, j, Complex::new(res[i * n + j], ims[i * n + j]));
                }
            }
            for i in 0..n {
                let off: f64 = (0..n).filter(|&j| j != i)
                    .map(|j| a.at(i, j).abs()).sum();
                a.set(i, i, Complex::new(off + 1.0, 0.5));
            }
            let b: Vec<Complex> = rhs_re.iter().map(|&r| Complex::new(r, -r)).collect();
            let lu = ComplexLu::new(&a).unwrap();
            let x = lu.solve(&b).unwrap();
            let ax = a.matvec(&x);
            for (axi, bi) in ax.iter().zip(&b) {
                prop_assert!((*axi - *bi).abs() < 1e-9);
            }
        }
    }
}
