//! Spectral diagnostics: power iteration for the dominant eigenvalue
//! and a condition-number estimate for SPD systems.
//!
//! Used to sanity-check the grid Laplacians the PDN solves produce —
//! CG's convergence rate is governed by `√κ`, so a runaway condition
//! number explains (and predicts) slow solves.

use crate::vector::{dot, norm2};
use crate::{CsrMatrix, NumericError};

/// Result of a power-iteration run.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct PowerIteration {
    /// Estimated dominant eigenvalue.
    pub eigenvalue: f64,
    /// Iterations performed.
    pub iterations: usize,
    /// Final relative change of the estimate.
    pub residual: f64,
}

/// Estimates the dominant eigenvalue of a symmetric matrix by power
/// iteration with a deterministic start vector.
///
/// # Errors
///
/// * [`NumericError::DimensionMismatch`] for a non-square matrix.
/// * [`NumericError::NoConvergence`] if the estimate is still moving
///   after `max_iterations`.
pub fn dominant_eigenvalue(
    a: &CsrMatrix,
    tolerance: f64,
    max_iterations: usize,
) -> Result<PowerIteration, NumericError> {
    let n = a.rows();
    if a.cols() != n {
        return Err(NumericError::DimensionMismatch {
            expected: "square matrix".into(),
            found: format!("{}x{}", a.rows(), a.cols()),
        });
    }
    // Deterministic, non-degenerate start: varying entries avoid being
    // orthogonal to the dominant eigenvector for our structured inputs.
    let mut x: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64 * 0.7).sin()).collect();
    let nrm = norm2(&x);
    for v in &mut x {
        *v /= nrm;
    }
    let mut lambda = 0.0;
    let mut y = vec![0.0; n];
    for k in 1..=max_iterations {
        a.matvec_into(&x, &mut y);
        let new_lambda = dot(&x, &y);
        let ny = norm2(&y);
        if ny == 0.0 {
            // x was in the null space: the dominant eigenvalue of the
            // restriction is 0.
            return Ok(PowerIteration {
                eigenvalue: 0.0,
                iterations: k,
                residual: 0.0,
            });
        }
        for (xi, yi) in x.iter_mut().zip(&y) {
            *xi = yi / ny;
        }
        let rel = if new_lambda != 0.0 {
            ((new_lambda - lambda) / new_lambda).abs()
        } else {
            (new_lambda - lambda).abs()
        };
        lambda = new_lambda;
        if rel < tolerance {
            return Ok(PowerIteration {
                eigenvalue: lambda,
                iterations: k,
                residual: rel,
            });
        }
    }
    Err(NumericError::NoConvergence {
        iterations: max_iterations,
        residual: f64::NAN,
        stagnated: false,
    })
}

/// Estimates the SPD condition number `κ = λ_max / λ_min` using power
/// iteration on `A` and on a shifted complement `λ_max·I − A` (whose
/// dominant eigenvalue is `λ_max − λ_min`).
///
/// # Errors
///
/// As for [`dominant_eigenvalue`].
pub fn condition_estimate_spd(
    a: &CsrMatrix,
    tolerance: f64,
    max_iterations: usize,
) -> Result<f64, NumericError> {
    let top = dominant_eigenvalue(a, tolerance, max_iterations)?;
    let lambda_max = top.eigenvalue;
    // Build λ_max·I − A.
    let n = a.rows();
    let mut coo = crate::CooMatrix::new(n, n);
    for r in 0..n {
        let mut has_diag = false;
        for (c, v) in a.row_entries(r) {
            if c == r {
                coo.push(r, r, lambda_max - v);
                has_diag = true;
            } else {
                coo.push(r, c, -v);
            }
        }
        if !has_diag {
            coo.push(r, r, lambda_max);
        }
    }
    let shifted = coo.to_csr();
    let comp = dominant_eigenvalue(&shifted, tolerance, max_iterations)?;
    let lambda_min = (lambda_max - comp.eigenvalue).max(f64::MIN_POSITIVE);
    Ok(lambda_max / lambda_min)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;

    fn diag(values: &[f64]) -> CsrMatrix {
        let n = values.len();
        let mut coo = CooMatrix::new(n, n);
        for (i, &v) in values.iter().enumerate() {
            coo.push(i, i, v);
        }
        coo.to_csr()
    }

    #[test]
    fn finds_dominant_of_diagonal() {
        let a = diag(&[1.0, 5.0, 3.0]);
        let r = dominant_eigenvalue(&a, 1e-12, 500).unwrap();
        assert!((r.eigenvalue - 5.0).abs() < 1e-8);
    }

    #[test]
    fn condition_of_diagonal_matrix() {
        let a = diag(&[2.0, 10.0, 4.0]);
        let kappa = condition_estimate_spd(&a, 1e-12, 2000).unwrap();
        assert!((kappa - 5.0).abs() < 0.05, "κ = {kappa}");
    }

    #[test]
    fn grid_laplacian_condition_grows_with_size() {
        // Grounded chain Laplacians: κ grows ~n² — the reason the CG
        // path wants the Jacobi preconditioner on big grids.
        // Grounded at one end only: λ_min shrinks like 1/n².
        let chain = |n: usize| {
            let mut coo = CooMatrix::new(n, n);
            for i in 0..n {
                let mut d = if i == 0 { 1.0 } else { 0.0 };
                if i > 0 {
                    coo.push(i, i - 1, -1.0);
                    d += 1.0;
                }
                if i + 1 < n {
                    coo.push(i, i + 1, -1.0);
                    d += 1.0;
                }
                coo.push(i, i, d);
            }
            coo.to_csr()
        };
        let k_small = condition_estimate_spd(&chain(8), 1e-11, 100_000).unwrap();
        let k_large = condition_estimate_spd(&chain(32), 1e-11, 100_000).unwrap();
        assert!(k_large > 3.0 * k_small, "{k_small} vs {k_large}");
    }

    #[test]
    fn rejects_non_square() {
        let coo = CooMatrix::new(2, 3);
        assert!(dominant_eigenvalue(&coo.to_csr(), 1e-9, 100).is_err());
    }

    #[test]
    fn reports_no_convergence() {
        // Two nearly equal eigenvalues converge very slowly.
        let a = diag(&[1.0, 1.0 - 1e-12]);
        let err = dominant_eigenvalue(&a, 0.0, 3).unwrap_err();
        assert!(matches!(err, NumericError::NoConvergence { .. }));
    }

    #[test]
    fn zero_matrix_yields_zero() {
        let a = CooMatrix::new(3, 3).to_csr();
        let r = dominant_eigenvalue(&a, 1e-9, 10).unwrap();
        assert_eq!(r.eigenvalue, 0.0);
    }
}
