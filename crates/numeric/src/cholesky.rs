//! Cholesky factorization for symmetric positive-definite systems.

use crate::{DenseMatrix, NumericError};

/// A Cholesky factorization `A = L·Lᵀ` of a symmetric positive-definite
/// matrix.
///
/// Grid Laplacians with at least one grounded node are SPD, so this is
/// both a fast direct solver for medium grids and the oracle against which
/// the conjugate-gradient path is property-tested.
///
/// ```
/// use vpd_numeric::{CholeskyFactor, DenseMatrix};
///
/// # fn main() -> Result<(), vpd_numeric::NumericError> {
/// let a = DenseMatrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]])?;
/// let chol = CholeskyFactor::new(&a)?;
/// let x = chol.solve(&[8.0, 7.0])?;
/// assert!((x[0] - 1.25).abs() < 1e-12 && (x[1] - 1.5).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct CholeskyFactor {
    /// Lower-triangular factor, stored densely.
    l: DenseMatrix,
}

impl CholeskyFactor {
    /// Factors a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read; symmetry of the upper
    /// triangle is the caller's contract (checked in debug builds).
    ///
    /// # Errors
    ///
    /// * [`NumericError::DimensionMismatch`] if `a` is not square.
    /// * [`NumericError::NotPositiveDefinite`] if a diagonal pivot is not
    ///   strictly positive.
    pub fn new(a: &DenseMatrix) -> Result<Self, NumericError> {
        if !a.is_square() {
            return Err(NumericError::DimensionMismatch {
                expected: "square matrix".into(),
                found: format!("{}x{}", a.rows(), a.cols()),
            });
        }
        debug_assert!(
            a.asymmetry() < 1e-9,
            "CholeskyFactor::new called with an asymmetric matrix"
        );
        let n = a.rows();
        let mut l = DenseMatrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a.at(i, j);
                for k in 0..j {
                    sum -= l.at(i, k) * l.at(j, k);
                }
                if i == j {
                    if sum <= 0.0 {
                        // `sum` is the i-th Schur-complement diagonal, so
                        // the leading minor of order i+1 is the first one
                        // that fails positive definiteness.
                        return Err(NumericError::NotPositiveDefinite {
                            pivot: i,
                            value: sum,
                        });
                    }
                    l.set(i, j, sum.sqrt())?;
                } else {
                    l.set(i, j, sum / l.at(j, j))?;
                }
            }
        }
        Ok(Self { l })
    }

    /// Solves `A·x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] if `b` has the wrong
    /// length.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, NumericError> {
        let n = self.l.rows();
        if b.len() != n {
            return Err(NumericError::DimensionMismatch {
                expected: format!("rhs of length {n}"),
                found: format!("length {}", b.len()),
            });
        }
        // Forward substitution: L·y = b.
        let mut x = b.to_vec();
        for i in 0..n {
            let mut sum = x[i];
            for j in 0..i {
                sum -= self.l.at(i, j) * x[j];
            }
            x[i] = sum / self.l.at(i, i);
        }
        // Back substitution: Lᵀ·x = y.
        for i in (0..n).rev() {
            let mut sum = x[i];
            for j in (i + 1)..n {
                sum -= self.l.at(j, i) * x[j];
            }
            x[i] = sum / self.l.at(i, i);
        }
        Ok(x)
    }

    /// Dimension of the factored system.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.l.rows()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn solves_spd_3x3() {
        let a = DenseMatrix::from_rows(&[
            &[4.0, 12.0, -16.0],
            &[12.0, 37.0, -43.0],
            &[-16.0, -43.0, 98.0],
        ])
        .unwrap();
        let chol = CholeskyFactor::new(&a).unwrap();
        let b = [1.0, 2.0, 3.0];
        let x = chol.solve(&b).unwrap();
        let r: f64 = a
            .matvec(&x)
            .iter()
            .zip(&b)
            .map(|(ax, bi)| (ax - bi).abs())
            .fold(0.0, f64::max);
        assert!(r < 1e-10);
    }

    #[test]
    fn rejects_indefinite() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap(); // eigenvalues 3, -1
        assert!(matches!(
            CholeskyFactor::new(&a),
            Err(NumericError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn reports_failing_leading_minor() {
        // Leading minors: order 1 (det 4) and order 2 (det 4·3−2·2 = 8)
        // are fine; order 3 fails (the 3x3 determinant is negative), so
        // the error must name pivot index 2 with the Schur value it saw.
        let a = DenseMatrix::from_rows(&[&[4.0, 2.0, 0.0], &[2.0, 3.0, 5.0], &[0.0, 5.0, 1.0]])
            .unwrap();
        match CholeskyFactor::new(&a) {
            Err(NumericError::NotPositiveDefinite { pivot, value }) => {
                assert_eq!(pivot, 2);
                assert!(value <= 0.0);
            }
            other => panic!("expected NotPositiveDefinite, got {other:?}"),
        }
    }

    #[test]
    fn rejects_non_square() {
        assert!(CholeskyFactor::new(&DenseMatrix::zeros(2, 3)).is_err());
    }

    #[test]
    fn rejects_wrong_rhs() {
        let chol = CholeskyFactor::new(&DenseMatrix::identity(2)).unwrap();
        assert!(chol.solve(&[1.0, 2.0, 3.0]).is_err());
    }

    proptest! {
        /// Grounded grid-Laplacian-like matrices (diagonally dominant with
        /// positive diagonal) are SPD and solve accurately.
        #[test]
        fn prop_laplacian_like_solves(
            g in proptest::array::uniform8(0.1_f64..10.0),
            b in proptest::array::uniform3(-5.0_f64..5.0),
        ) {
            // 3-node chain with conductances g[0..4] and a ground leak on
            // every node => strictly diagonally dominant SPD.
            let a = DenseMatrix::from_rows(&[
                &[g[0] + g[1] + g[4], -g[1], 0.0],
                &[-g[1], g[1] + g[2] + g[5], -g[2]],
                &[0.0, -g[2], g[2] + g[3] + g[6]],
            ]).unwrap();
            let chol = CholeskyFactor::new(&a).unwrap();
            let x = chol.solve(&b).unwrap();
            let r: f64 = a.matvec(&x).iter().zip(&b)
                .map(|(ax, bi)| (ax - bi).abs()).fold(0.0, f64::max);
            prop_assert!(r < 1e-9);
        }

        /// Cholesky and LU agree on SPD systems.
        #[test]
        fn prop_agrees_with_lu(d in proptest::array::uniform4(1.0_f64..10.0)) {
            let n = 4;
            let a = DenseMatrix::from_fn(n, n, |i, j| {
                if i == j { d[i] + 2.0 } else { 1.0 / (1.0 + (i as f64 - j as f64).abs()) }
            });
            // Symmetrize explicitly (from_fn above is already symmetric, but
            // keep the invariant obvious).
            let b = [1.0, -2.0, 3.0, 0.5];
            let xc = CholeskyFactor::new(&a).unwrap().solve(&b).unwrap();
            let xl = crate::LuFactor::new(&a).unwrap().solve(&b).unwrap();
            for (c, l) in xc.iter().zip(&xl) {
                prop_assert!((c - l).abs() < 1e-9);
            }
        }
    }
}
