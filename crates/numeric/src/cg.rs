//! Preconditioned conjugate gradient for sparse SPD systems.

use crate::vector::{axpy, dot, norm2};
use crate::{CsrMatrix, NumericError};

/// Preconditioner choice for [`conjugate_gradient`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
#[non_exhaustive]
pub enum Preconditioner {
    /// No preconditioning.
    None,
    /// Diagonal (Jacobi) scaling — the right default for grid Laplacians,
    /// whose diagonal varies with local via density.
    #[default]
    Jacobi,
}

/// Settings for the conjugate-gradient solver.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct CgSettings {
    /// Relative residual target `‖r‖/‖b‖`.
    pub tolerance: f64,
    /// Iteration cap; `None` defaults to `10·n`.
    pub max_iterations: Option<usize>,
    /// Preconditioner.
    pub preconditioner: Preconditioner,
}

impl Default for CgSettings {
    fn default() -> Self {
        Self {
            tolerance: 1e-10,
            max_iterations: None,
            preconditioner: Preconditioner::Jacobi,
        }
    }
}

/// Convergence report returned alongside the solution
/// ([C-INTERMEDIATE]).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct CgReport {
    /// Iterations performed.
    pub iterations: usize,
    /// Final relative residual `‖b − A·x‖ / ‖b‖`.
    pub relative_residual: f64,
}

/// Solves the SPD system `A·x = b` by preconditioned conjugate gradient.
///
/// Returns the solution together with a [`CgReport`]. A zero right-hand
/// side returns the zero vector immediately.
///
/// ```
/// use vpd_numeric::{conjugate_gradient, CgSettings, CooMatrix};
///
/// # fn main() -> Result<(), vpd_numeric::NumericError> {
/// let mut coo = CooMatrix::new(2, 2);
/// coo.push(0, 0, 4.0);
/// coo.push(1, 1, 3.0);
/// coo.push(0, 1, 1.0);
/// coo.push(1, 0, 1.0);
/// let a = coo.to_csr();
/// let (x, report) = conjugate_gradient(&a, &[1.0, 2.0], &CgSettings::default())?;
/// assert!(report.relative_residual < 1e-10);
/// assert!((4.0 * x[0] + x[1] - 1.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// * [`NumericError::DimensionMismatch`] — non-square `A` or wrong `b`
///   length.
/// * [`NumericError::NoConvergence`] — the iteration cap was reached
///   before the tolerance; the report fields are embedded in the error.
/// * [`NumericError::NotPositiveDefinite`] — a breakdown (`pᵀAp ≤ 0`)
///   revealed an indefinite matrix.
pub fn conjugate_gradient(
    a: &CsrMatrix,
    b: &[f64],
    settings: &CgSettings,
) -> Result<(Vec<f64>, CgReport), NumericError> {
    let n = a.rows();
    if a.cols() != n {
        return Err(NumericError::DimensionMismatch {
            expected: "square matrix".into(),
            found: format!("{}x{}", a.rows(), a.cols()),
        });
    }
    if b.len() != n {
        return Err(NumericError::DimensionMismatch {
            expected: format!("rhs of length {n}"),
            found: format!("length {}", b.len()),
        });
    }

    let b_norm = norm2(b);
    if b_norm == 0.0 {
        return Ok((
            vec![0.0; n],
            CgReport {
                iterations: 0,
                relative_residual: 0.0,
            },
        ));
    }

    let inv_diag: Option<Vec<f64>> = match settings.preconditioner {
        Preconditioner::None => None,
        Preconditioner::Jacobi => Some(
            a.diagonal()
                .iter()
                .map(|&d| if d != 0.0 { 1.0 / d } else { 1.0 })
                .collect(),
        ),
    };
    let apply_precond = |r: &[f64]| -> Vec<f64> {
        match &inv_diag {
            None => r.to_vec(),
            Some(inv) => r.iter().zip(inv).map(|(ri, di)| ri * di).collect(),
        }
    };

    let max_iters = settings.max_iterations.unwrap_or(10 * n.max(1));
    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let mut z = apply_precond(&r);
    let mut p = z.clone();
    let mut rz = dot(&r, &z);
    let mut ap = vec![0.0; n];

    for iter in 0..max_iters {
        let rel = norm2(&r) / b_norm;
        if rel <= settings.tolerance {
            return Ok((
                x,
                CgReport {
                    iterations: iter,
                    relative_residual: rel,
                },
            ));
        }
        a.matvec_into(&p, &mut ap);
        let pap = dot(&p, &ap);
        if pap <= 0.0 {
            return Err(NumericError::NotPositiveDefinite { pivot: iter });
        }
        let alpha = rz / pap;
        axpy(alpha, &p, &mut x);
        axpy(-alpha, &ap, &mut r);
        z = apply_precond(&r);
        let rz_new = dot(&r, &z);
        let beta = rz_new / rz;
        rz = rz_new;
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
    }

    let rel = norm2(&r) / b_norm;
    if rel <= settings.tolerance {
        return Ok((
            x,
            CgReport {
                iterations: max_iters,
                relative_residual: rel,
            },
        ));
    }
    Err(NumericError::NoConvergence {
        iterations: max_iters,
        residual: rel,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CholeskyFactor, CooMatrix, DenseMatrix};
    use proptest::prelude::*;

    /// 1-D grounded Laplacian chain of `n` nodes with conductance `g` and a
    /// ground leak `gl` on each node.
    fn chain(n: usize, g: f64, gl: f64) -> CsrMatrix {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            let mut diag = gl;
            if i > 0 {
                coo.push(i, i - 1, -g);
                diag += g;
            }
            if i + 1 < n {
                coo.push(i, i + 1, -g);
                diag += g;
            }
            coo.push(i, i, diag);
        }
        coo.to_csr()
    }

    #[test]
    fn solves_chain_laplacian() {
        let a = chain(50, 1.0, 0.1);
        let b = vec![1.0; 50];
        let (x, report) = conjugate_gradient(&a, &b, &CgSettings::default()).unwrap();
        assert!(report.relative_residual < 1e-10);
        // Residual check
        let ax = a.matvec(&x);
        for (axi, bi) in ax.iter().zip(&b) {
            assert!((axi - bi).abs() < 1e-8);
        }
    }

    #[test]
    fn zero_rhs_short_circuits() {
        let a = chain(5, 1.0, 0.1);
        let (x, report) = conjugate_gradient(&a, &[0.0; 5], &CgSettings::default()).unwrap();
        assert_eq!(x, vec![0.0; 5]);
        assert_eq!(report.iterations, 0);
    }

    #[test]
    fn iteration_cap_reports_no_convergence() {
        let a = chain(100, 1.0, 1e-6); // poorly conditioned
        let settings = CgSettings {
            tolerance: 1e-14,
            max_iterations: Some(2),
            preconditioner: Preconditioner::None,
        };
        let err = conjugate_gradient(&a, &vec![1.0; 100], &settings).unwrap_err();
        assert!(matches!(err, NumericError::NoConvergence { iterations: 2, .. }));
    }

    #[test]
    fn indefinite_matrix_breaks_down() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(1, 1, -1.0);
        let err =
            conjugate_gradient(&coo.to_csr(), &[0.0, 1.0], &CgSettings::default()).unwrap_err();
        assert!(matches!(err, NumericError::NotPositiveDefinite { .. }));
    }

    #[test]
    fn wrong_rhs_rejected() {
        let a = chain(3, 1.0, 0.1);
        assert!(conjugate_gradient(&a, &[1.0], &CgSettings::default()).is_err());
    }

    #[test]
    fn jacobi_beats_unpreconditioned_on_scaled_system() {
        // Wildly varying diagonal: Jacobi should converge in far fewer
        // iterations.
        let n = 64;
        let mut coo = CooMatrix::new(n, n);
        let edge = |i: usize| if i % 2 == 0 { 1.0 } else { 1e4 };
        let mut diag = vec![0.0; n];
        for i in 0..n - 1 {
            let g = edge(i);
            coo.push(i, i + 1, -g);
            coo.push(i + 1, i, -g);
            diag[i] += g;
            diag[i + 1] += g;
        }
        for (i, d) in diag.iter().enumerate() {
            // Ground leak scaled with the local edge weight keeps the
            // diagonal wildly varying without breaking symmetry.
            coo.push(i, i, d + 0.01 * edge(i));
        }
        let a = coo.to_csr();
        assert_eq!(a.asymmetry().unwrap(), 0.0);
        let b = vec![1.0; n];
        let jacobi = conjugate_gradient(
            &a,
            &b,
            &CgSettings {
                preconditioner: Preconditioner::Jacobi,
                ..CgSettings::default()
            },
        )
        .unwrap()
        .1;
        let plain = conjugate_gradient(
            &a,
            &b,
            &CgSettings {
                preconditioner: Preconditioner::None,
                max_iterations: Some(10 * n),
                ..CgSettings::default()
            },
        );
        match plain {
            Ok((_, rep)) => assert!(jacobi.iterations <= rep.iterations),
            Err(_) => {} // plain CG failing outright also proves the point
        }
    }

    proptest! {
        /// CG agrees with Cholesky on random grounded Laplacian chains.
        #[test]
        fn prop_cg_matches_cholesky(
            g in 0.5_f64..5.0,
            gl in 0.05_f64..1.0,
            load in proptest::collection::vec(-2.0_f64..2.0, 8),
        ) {
            let n = load.len();
            let a = chain(n, g, gl);
            let (x_cg, _) = conjugate_gradient(&a, &load, &CgSettings::default()).unwrap();
            let dense = DenseMatrix::from_fn(n, n, |i, j| a.get(i, j));
            let x_ch = CholeskyFactor::new(&dense).unwrap().solve(&load).unwrap();
            for (c, d) in x_cg.iter().zip(&x_ch) {
                prop_assert!((c - d).abs() < 1e-6);
            }
        }
    }
}
