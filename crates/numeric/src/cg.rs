//! Preconditioned conjugate gradient for sparse SPD systems.

use crate::vector::{axpy, dot, norm2};
use crate::{CsrMatrix, NumericError};

/// Iterations without meaningful residual improvement before CG declares
/// itself stagnated (scaled up to `n / 4` for large systems).
const STAGNATION_WINDOW: usize = 50;

/// A residual must shrink below this fraction of the best seen so far to
/// count as progress for the stagnation watchdog.
const STAGNATION_IMPROVEMENT: f64 = 0.99;

/// Preconditioner choice for [`conjugate_gradient`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
#[non_exhaustive]
pub enum Preconditioner {
    /// No preconditioning.
    None,
    /// Diagonal (Jacobi) scaling — the right default for grid Laplacians,
    /// whose diagonal varies with local via density.
    #[default]
    Jacobi,
}

/// Settings for the conjugate-gradient solver.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct CgSettings {
    /// Relative residual target `‖r‖/‖b‖`.
    pub tolerance: f64,
    /// Iteration cap; `None` defaults to `10·n`.
    pub max_iterations: Option<usize>,
    /// Preconditioner.
    pub preconditioner: Preconditioner,
}

impl Default for CgSettings {
    fn default() -> Self {
        Self {
            tolerance: 1e-10,
            max_iterations: None,
            preconditioner: Preconditioner::Jacobi,
        }
    }
}

/// Convergence report returned alongside the solution
/// ([C-INTERMEDIATE]).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct CgReport {
    /// Iterations performed.
    pub iterations: usize,
    /// Final relative residual `‖b − A·x‖ / ‖b‖`.
    pub relative_residual: f64,
}

/// Reusable scratch space for [`conjugate_gradient_into`].
///
/// CG needs four working vectors plus the inverted diagonal; allocating
/// them per solve dominates the cost of small repeated systems. A
/// workspace is sized lazily on first use and reused across solves of
/// any dimension (resizing only when the dimension grows or shrinks).
#[derive(Clone, Debug, Default)]
pub struct CgWorkspace {
    r: Vec<f64>,
    z: Vec<f64>,
    p: Vec<f64>,
    ap: Vec<f64>,
    inv_diag: Vec<f64>,
}

impl CgWorkspace {
    /// An empty workspace; buffers are sized on first solve.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure(&mut self, n: usize) {
        self.r.resize(n, 0.0);
        self.z.resize(n, 0.0);
        self.p.resize(n, 0.0);
        self.ap.resize(n, 0.0);
        self.inv_diag.resize(n, 0.0);
    }
}

/// Solves the SPD system `A·x = b` by preconditioned conjugate gradient.
///
/// Returns the solution together with a [`CgReport`]. A zero right-hand
/// side returns the zero vector immediately.
///
/// ```
/// use vpd_numeric::{conjugate_gradient, CgSettings, CooMatrix};
///
/// # fn main() -> Result<(), vpd_numeric::NumericError> {
/// let mut coo = CooMatrix::new(2, 2);
/// coo.push(0, 0, 4.0);
/// coo.push(1, 1, 3.0);
/// coo.push(0, 1, 1.0);
/// coo.push(1, 0, 1.0);
/// let a = coo.to_csr();
/// let (x, report) = conjugate_gradient(&a, &[1.0, 2.0], &CgSettings::default())?;
/// assert!(report.relative_residual < 1e-10);
/// assert!((4.0 * x[0] + x[1] - 1.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// * [`NumericError::DimensionMismatch`] — non-square `A` or wrong `b`
///   length.
/// * [`NumericError::NoConvergence`] — the iteration cap was reached
///   before the tolerance, or the residual stagnated (no meaningful
///   improvement over a trailing window); the report fields — including
///   the `stagnated` flag — are embedded in the error.
/// * [`NumericError::NotPositiveDefinite`] — a breakdown (`pᵀAp ≤ 0`)
///   revealed an indefinite matrix.
pub fn conjugate_gradient(
    a: &CsrMatrix,
    b: &[f64],
    settings: &CgSettings,
) -> Result<(Vec<f64>, CgReport), NumericError> {
    let mut x = vec![0.0; a.rows()];
    let mut ws = CgWorkspace::new();
    let report = conjugate_gradient_into(a, b, &mut x, settings, &mut ws)?;
    Ok((x, report))
}

/// Solves `A·x = b` in place, warm-starting from the incoming `x` and
/// reusing caller-owned scratch space.
///
/// On entry `x` holds the initial guess (zeros reproduce the cold
/// [`conjugate_gradient`] path exactly); on successful exit it holds the
/// solution. When the guess is close — a previous solve of a slightly
/// perturbed system, as in Monte-Carlo sampling or design sweeps — CG
/// starts with a small residual and converges in a fraction of the cold
/// iteration count; a guess already within tolerance returns after zero
/// iterations. The workspace removes every per-solve allocation, so a
/// restamp + warm solve does no heap work at all.
///
/// On error `x` is left in an unspecified (partially updated) state;
/// refill it before warm-starting the next solve.
///
/// # Errors
///
/// Same contract as [`conjugate_gradient`]: `DimensionMismatch` on shape
/// errors (including a wrong `x` length), `NoConvergence` on hitting the
/// iteration cap, `NotPositiveDefinite` on breakdown.
pub fn conjugate_gradient_into(
    a: &CsrMatrix,
    b: &[f64],
    x: &mut [f64],
    settings: &CgSettings,
    ws: &mut CgWorkspace,
) -> Result<CgReport, NumericError> {
    let result = cg_run(a, b, x, settings, ws);
    // Observation only: integer counters after the fact, so the iterate
    // arithmetic (and therefore the result bits) cannot depend on
    // whether metrics are enabled.
    if vpd_obs::is_enabled() {
        match &result {
            Ok(rep) => {
                vpd_obs::incr("cg.solves");
                vpd_obs::add("cg.iterations", rep.iterations as u64);
                vpd_obs::observe("cg.iterations_per_solve", rep.iterations as u64);
                if rep.iterations == 0 {
                    vpd_obs::incr("cg.warm_hits");
                }
            }
            Err(NumericError::NoConvergence {
                iterations,
                stagnated,
                ..
            }) => {
                vpd_obs::incr("cg.failures");
                vpd_obs::add("cg.iterations", *iterations as u64);
                if *stagnated {
                    vpd_obs::incr("cg.stagnations");
                }
            }
            Err(_) => vpd_obs::incr("cg.failures"),
        }
    }
    result
}

fn cg_run(
    a: &CsrMatrix,
    b: &[f64],
    x: &mut [f64],
    settings: &CgSettings,
    ws: &mut CgWorkspace,
) -> Result<CgReport, NumericError> {
    let n = a.rows();
    if a.cols() != n {
        return Err(NumericError::DimensionMismatch {
            expected: "square matrix".into(),
            found: format!("{}x{}", a.rows(), a.cols()),
        });
    }
    if b.len() != n {
        return Err(NumericError::DimensionMismatch {
            expected: format!("rhs of length {n}"),
            found: format!("length {}", b.len()),
        });
    }
    if x.len() != n {
        return Err(NumericError::DimensionMismatch {
            expected: format!("initial guess of length {n}"),
            found: format!("length {}", x.len()),
        });
    }

    let b_norm = norm2(b);
    if b_norm == 0.0 {
        x.fill(0.0);
        return Ok(CgReport {
            iterations: 0,
            relative_residual: 0.0,
        });
    }

    ws.ensure(n);
    let jacobi = settings.preconditioner == Preconditioner::Jacobi;
    if jacobi {
        a.diagonal_into(&mut ws.inv_diag);
        for d in &mut ws.inv_diag {
            *d = if *d != 0.0 { 1.0 / *d } else { 1.0 };
        }
    }

    // r = b − A·x0. A zero guess multiplies out to exactly 0.0 per row,
    // so the cold path stays bitwise identical to r = b.
    a.matvec_into(x, &mut ws.ap);
    for i in 0..n {
        ws.r[i] = b[i] - ws.ap[i];
    }
    if jacobi {
        for i in 0..n {
            ws.z[i] = ws.r[i] * ws.inv_diag[i];
        }
    } else {
        ws.z.copy_from_slice(&ws.r);
    }
    ws.p.copy_from_slice(&ws.z);
    let mut rz = dot(&ws.r, &ws.z);

    let max_iters = settings.max_iterations.unwrap_or(10 * n.max(1));
    // Stagnation watchdog: CG residuals are not monotone, so only call
    // the iteration stalled after a generous window with no meaningful
    // improvement over the best residual seen. Monitoring never touches
    // the iterate arithmetic, so converging solves stay bitwise
    // identical with or without it.
    let stagnation_window = STAGNATION_WINDOW.max(n / 4);
    let mut best_rel = f64::INFINITY;
    let mut since_improved = 0usize;
    for iter in 0..max_iters {
        let rel = norm2(&ws.r) / b_norm;
        if rel <= settings.tolerance {
            return Ok(CgReport {
                iterations: iter,
                relative_residual: rel,
            });
        }
        if rel < STAGNATION_IMPROVEMENT * best_rel {
            best_rel = rel;
            since_improved = 0;
        } else {
            since_improved += 1;
            if since_improved >= stagnation_window {
                return Err(NumericError::NoConvergence {
                    iterations: iter,
                    residual: rel,
                    stagnated: true,
                });
            }
        }
        a.matvec_into(&ws.p, &mut ws.ap);
        let pap = dot(&ws.p, &ws.ap);
        if pap <= 0.0 {
            return Err(NumericError::NotPositiveDefinite {
                pivot: iter,
                value: pap,
            });
        }
        let alpha = rz / pap;
        axpy(alpha, &ws.p, x);
        axpy(-alpha, &ws.ap, &mut ws.r);
        if jacobi {
            for i in 0..n {
                ws.z[i] = ws.r[i] * ws.inv_diag[i];
            }
        } else {
            ws.z.copy_from_slice(&ws.r);
        }
        let rz_new = dot(&ws.r, &ws.z);
        let beta = rz_new / rz;
        rz = rz_new;
        for i in 0..n {
            ws.p[i] = ws.z[i] + beta * ws.p[i];
        }
    }

    let rel = norm2(&ws.r) / b_norm;
    if rel <= settings.tolerance {
        return Ok(CgReport {
            iterations: max_iters,
            relative_residual: rel,
        });
    }
    Err(NumericError::NoConvergence {
        iterations: max_iters,
        residual: rel,
        stagnated: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CholeskyFactor, CooMatrix, DenseMatrix};
    use proptest::prelude::*;

    /// 1-D grounded Laplacian chain of `n` nodes with conductance `g` and a
    /// ground leak `gl` on each node.
    fn chain(n: usize, g: f64, gl: f64) -> CsrMatrix {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            let mut diag = gl;
            if i > 0 {
                coo.push(i, i - 1, -g);
                diag += g;
            }
            if i + 1 < n {
                coo.push(i, i + 1, -g);
                diag += g;
            }
            coo.push(i, i, diag);
        }
        coo.to_csr()
    }

    #[test]
    fn solves_chain_laplacian() {
        let a = chain(50, 1.0, 0.1);
        let b = vec![1.0; 50];
        let (x, report) = conjugate_gradient(&a, &b, &CgSettings::default()).unwrap();
        assert!(report.relative_residual < 1e-10);
        // Residual check
        let ax = a.matvec(&x);
        for (axi, bi) in ax.iter().zip(&b) {
            assert!((axi - bi).abs() < 1e-8);
        }
    }

    #[test]
    fn zero_rhs_short_circuits() {
        let a = chain(5, 1.0, 0.1);
        let (x, report) = conjugate_gradient(&a, &[0.0; 5], &CgSettings::default()).unwrap();
        assert_eq!(x, vec![0.0; 5]);
        assert_eq!(report.iterations, 0);
    }

    #[test]
    fn iteration_cap_reports_no_convergence() {
        let a = chain(100, 1.0, 1e-6); // poorly conditioned
        let settings = CgSettings {
            tolerance: 1e-14,
            max_iterations: Some(2),
            preconditioner: Preconditioner::None,
        };
        let err = conjugate_gradient(&a, &vec![1.0; 100], &settings).unwrap_err();
        assert!(matches!(
            err,
            NumericError::NoConvergence { iterations: 2, .. }
        ));
    }

    #[test]
    fn iteration_exhaustion_embeds_full_diagnostics() {
        // Regression: the default `10·n` cap must not silently truncate —
        // exhaustion has to return the full embedded report (iterations,
        // finite residual, stagnation flag) so callers can climb the
        // resilience ladder instead of guessing what went wrong.
        let a = chain(100, 1.0, 1e-6);
        let settings = CgSettings {
            tolerance: 1e-14,
            max_iterations: Some(7),
            preconditioner: Preconditioner::None,
        };
        match conjugate_gradient(&a, &vec![1.0; 100], &settings) {
            Err(NumericError::NoConvergence {
                iterations,
                residual,
                stagnated,
            }) => {
                assert_eq!(iterations, 7);
                assert!(residual.is_finite() && residual > 1e-14);
                assert!(!stagnated, "7 iterations is too few to stall");
            }
            other => panic!("expected embedded NoConvergence report, got {other:?}"),
        }
    }

    #[test]
    fn residual_plateau_reports_stagnation() {
        // κ ≈ 4·10¹⁶: roundoff destroys conjugacy and the residual
        // plateaus far above tolerance; the watchdog must cut the run off
        // with `stagnated` well before the iteration cap burns out.
        let a = chain(200, 1e8, 1e-8);
        let settings = CgSettings {
            tolerance: 1e-16,
            max_iterations: Some(200_000),
            preconditioner: Preconditioner::None,
        };
        match conjugate_gradient(&a, &vec![1.0; 200], &settings) {
            Err(NumericError::NoConvergence {
                iterations,
                stagnated,
                ..
            }) => {
                assert!(stagnated, "plateau must be flagged as stagnation");
                assert!(iterations < 10_000, "watchdog must fire early");
            }
            other => panic!("expected stagnation error, got {other:?}"),
        }
    }

    #[test]
    fn indefinite_matrix_breaks_down() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0);
        coo.push(1, 1, -1.0);
        let err =
            conjugate_gradient(&coo.to_csr(), &[0.0, 1.0], &CgSettings::default()).unwrap_err();
        assert!(matches!(err, NumericError::NotPositiveDefinite { .. }));
    }

    #[test]
    fn wrong_rhs_rejected() {
        let a = chain(3, 1.0, 0.1);
        assert!(conjugate_gradient(&a, &[1.0], &CgSettings::default()).is_err());
    }

    #[test]
    fn jacobi_beats_unpreconditioned_on_scaled_system() {
        // Wildly varying diagonal: Jacobi should converge in far fewer
        // iterations.
        let n = 64;
        let mut coo = CooMatrix::new(n, n);
        let edge = |i: usize| if i.is_multiple_of(2) { 1.0 } else { 1e4 };
        let mut diag = vec![0.0; n];
        for i in 0..n - 1 {
            let g = edge(i);
            coo.push(i, i + 1, -g);
            coo.push(i + 1, i, -g);
            diag[i] += g;
            diag[i + 1] += g;
        }
        for (i, d) in diag.iter().enumerate() {
            // Ground leak scaled with the local edge weight keeps the
            // diagonal wildly varying without breaking symmetry.
            coo.push(i, i, d + 0.01 * edge(i));
        }
        let a = coo.to_csr();
        assert_eq!(a.asymmetry().unwrap(), 0.0);
        let b = vec![1.0; n];
        let jacobi = conjugate_gradient(
            &a,
            &b,
            &CgSettings {
                preconditioner: Preconditioner::Jacobi,
                ..CgSettings::default()
            },
        )
        .unwrap()
        .1;
        let plain = conjugate_gradient(
            &a,
            &b,
            &CgSettings {
                preconditioner: Preconditioner::None,
                max_iterations: Some(10 * n),
                ..CgSettings::default()
            },
        );
        if let Ok((_, rep)) = plain {
            assert!(jacobi.iterations <= rep.iterations);
        } // plain CG failing outright also proves the point
    }

    #[test]
    fn warm_start_from_solution_converges_instantly() {
        let a = chain(50, 1.0, 0.1);
        let b = vec![1.0; 50];
        let (mut x, cold) = conjugate_gradient(&a, &b, &CgSettings::default()).unwrap();
        assert!(cold.iterations > 0);
        let mut ws = CgWorkspace::new();
        let warm =
            conjugate_gradient_into(&a, &b, &mut x, &CgSettings::default(), &mut ws).unwrap();
        assert_eq!(warm.iterations, 0, "exact guess must be accepted as-is");
    }

    #[test]
    fn warm_start_across_perturbed_systems_converges_faster() {
        // The Monte-Carlo pattern: solve a nominal system, then a
        // slightly perturbed one warm-started from the nominal solution.
        let nominal = chain(200, 1.0, 0.5);
        let perturbed = chain(200, 1.004, 0.5);
        let b = vec![1.0; 200];
        let settings = CgSettings::default();

        let (x_nominal, _) = conjugate_gradient(&nominal, &b, &settings).unwrap();
        let (x_cold, cold) = conjugate_gradient(&perturbed, &b, &settings).unwrap();

        let mut x = x_nominal;
        let mut ws = CgWorkspace::new();
        let warm = conjugate_gradient_into(&perturbed, &b, &mut x, &settings, &mut ws).unwrap();
        assert!(
            warm.iterations < cold.iterations,
            "warm {} vs cold {}",
            warm.iterations,
            cold.iterations
        );
        for (w, c) in x.iter().zip(&x_cold) {
            assert!((w - c).abs() < 1e-7);
        }
    }

    #[test]
    fn zero_guess_reproduces_cold_path_bitwise() {
        let a = chain(64, 2.0, 0.05);
        let b: Vec<f64> = (0..64).map(|i| ((i * 37) % 11) as f64 - 5.0).collect();
        let settings = CgSettings::default();
        let (x_cold, rep_cold) = conjugate_gradient(&a, &b, &settings).unwrap();

        let mut x = vec![0.0; 64];
        let mut ws = CgWorkspace::new();
        let rep = conjugate_gradient_into(&a, &b, &mut x, &settings, &mut ws).unwrap();
        assert_eq!(rep.iterations, rep_cold.iterations);
        for (a_, b_) in x.iter().zip(&x_cold) {
            assert_eq!(a_.to_bits(), b_.to_bits());
        }
    }

    #[test]
    fn workspace_is_reusable_across_sizes() {
        let mut ws = CgWorkspace::new();
        let settings = CgSettings::default();
        for n in [8usize, 32, 16] {
            let a = chain(n, 1.0, 0.1);
            let b = vec![1.0; n];
            let mut x = vec![0.0; n];
            let rep = conjugate_gradient_into(&a, &b, &mut x, &settings, &mut ws).unwrap();
            assert!(rep.relative_residual <= settings.tolerance);
        }
    }

    #[test]
    fn wrong_guess_length_rejected() {
        let a = chain(3, 1.0, 0.1);
        let mut x = vec![0.0; 2];
        let mut ws = CgWorkspace::new();
        assert!(
            conjugate_gradient_into(&a, &[1.0; 3], &mut x, &CgSettings::default(), &mut ws)
                .is_err()
        );
    }

    proptest! {
        /// CG agrees with Cholesky on random grounded Laplacian chains.
        #[test]
        fn prop_cg_matches_cholesky(
            g in 0.5_f64..5.0,
            gl in 0.05_f64..1.0,
            load in proptest::collection::vec(-2.0_f64..2.0, 8),
        ) {
            let n = load.len();
            let a = chain(n, g, gl);
            let (x_cg, _) = conjugate_gradient(&a, &load, &CgSettings::default()).unwrap();
            let dense = DenseMatrix::from_fn(n, n, |i, j| a.get(i, j));
            let x_ch = CholeskyFactor::new(&dense).unwrap().solve(&load).unwrap();
            for (c, d) in x_cg.iter().zip(&x_ch) {
                prop_assert!((c - d).abs() < 1e-6);
            }
        }
    }
}
