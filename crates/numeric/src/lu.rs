//! LU factorization with partial pivoting.

use crate::{DenseMatrix, NumericError};

/// Threshold below which a pivot is treated as numerically zero.
const PIVOT_EPS: f64 = 1e-13;

/// An LU factorization `P·A = L·U` with partial (row) pivoting.
///
/// The factorization is computed once and can then solve many right-hand
/// sides ([C-INTERMEDIATE]): MNA reuses one factorization across load
/// steps.
///
/// ```
/// use vpd_numeric::{DenseMatrix, LuFactor};
///
/// # fn main() -> Result<(), vpd_numeric::NumericError> {
/// let a = DenseMatrix::from_rows(&[&[0.0, 2.0], &[1.0, 1.0]])?; // needs pivoting
/// let lu = LuFactor::new(&a)?;
/// let x = lu.solve(&[2.0, 2.0])?;
/// assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct LuFactor {
    /// Combined L (strict lower, unit diagonal implied) and U (upper).
    lu: DenseMatrix,
    /// Row permutation: `perm[i]` is the original row in position `i`.
    perm: Vec<usize>,
    /// Sign of the permutation, for the determinant.
    perm_sign: f64,
}

impl LuFactor {
    /// Factors a square matrix.
    ///
    /// # Errors
    ///
    /// * [`NumericError::DimensionMismatch`] if `a` is not square.
    /// * [`NumericError::Singular`] if a pivot underflows `1e-13` relative
    ///   to the matrix scale.
    pub fn new(a: &DenseMatrix) -> Result<Self, NumericError> {
        if !a.is_square() {
            return Err(NumericError::DimensionMismatch {
                expected: "square matrix".into(),
                found: format!("{}x{}", a.rows(), a.cols()),
            });
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut perm_sign = 1.0;

        // Scale for the relative singularity test.
        let scale = (0..n)
            .flat_map(|i| lu.row(i).iter().copied())
            .fold(0.0_f64, |m, v| m.max(v.abs()))
            .max(1.0);

        for k in 0..n {
            // Find the pivot row.
            let mut pivot_row = k;
            let mut pivot_mag = lu.at(k, k).abs();
            for i in (k + 1)..n {
                let mag = lu.at(i, k).abs();
                if mag > pivot_mag {
                    pivot_mag = mag;
                    pivot_row = i;
                }
            }
            if pivot_mag <= PIVOT_EPS * scale {
                return Err(NumericError::Singular { pivot: k });
            }
            if pivot_row != k {
                swap_rows(&mut lu, k, pivot_row);
                perm.swap(k, pivot_row);
                perm_sign = -perm_sign;
            }
            let pivot = lu.at(k, k);
            for i in (k + 1)..n {
                let factor = lu.at(i, k) / pivot;
                lu.set(i, k, factor)?;
                for j in (k + 1)..n {
                    let updated = lu.at(i, j) - factor * lu.at(k, j);
                    lu.set(i, j, updated)?;
                }
            }
        }

        Ok(Self {
            lu,
            perm,
            perm_sign,
        })
    }

    /// Solves `A·x = b` using the stored factorization.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] if `b` has the wrong
    /// length.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, NumericError> {
        let mut x = Vec::new();
        self.solve_into(b, &mut x)?;
        Ok(x)
    }

    /// Solves `A·x = b` into a caller-owned buffer, so a hot loop (one
    /// transient step per call) performs zero allocations after warm-up.
    ///
    /// `x` is resized to the system dimension. The substitution
    /// arithmetic is exactly [`LuFactor::solve`]'s — `solve` is a thin
    /// wrapper — so the two entry points return bitwise-identical
    /// solutions.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] if `b` has the wrong
    /// length.
    pub fn solve_into(&self, b: &[f64], x: &mut Vec<f64>) -> Result<(), NumericError> {
        let n = self.lu.rows();
        if b.len() != n {
            return Err(NumericError::DimensionMismatch {
                expected: format!("rhs of length {n}"),
                found: format!("length {}", b.len()),
            });
        }
        // Apply the permutation, then forward substitution (unit L).
        x.clear();
        x.extend(self.perm.iter().map(|&p| b[p]));
        for i in 1..n {
            let mut sum = x[i];
            for j in 0..i {
                sum -= self.lu.at(i, j) * x[j];
            }
            x[i] = sum;
        }
        // Back substitution (U).
        for i in (0..n).rev() {
            let mut sum = x[i];
            for j in (i + 1)..n {
                sum -= self.lu.at(i, j) * x[j];
            }
            x[i] = sum / self.lu.at(i, i);
        }
        Ok(())
    }

    /// The determinant of the factored matrix (product of U's diagonal
    /// times the permutation sign).
    #[must_use]
    pub fn determinant(&self) -> f64 {
        let n = self.lu.rows();
        (0..n).map(|i| self.lu.at(i, i)).product::<f64>() * self.perm_sign
    }

    /// Dimension of the factored system.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }
}

fn swap_rows(m: &mut DenseMatrix, a: usize, b: usize) {
    let cols = m.cols();
    for j in 0..cols {
        let va = m.at(a, j);
        let vb = m.at(b, j);
        // set() cannot fail here: indices are in range by construction.
        let _ = m.set(a, j, vb);
        let _ = m.set(b, j, va);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn residual_inf(a: &DenseMatrix, x: &[f64], b: &[f64]) -> f64 {
        a.matvec(x)
            .iter()
            .zip(b)
            .map(|(ax, bi)| (ax - bi).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn solves_known_3x3() {
        let a = DenseMatrix::from_rows(&[&[2.0, 1.0, 1.0], &[4.0, -6.0, 0.0], &[-2.0, 7.0, 2.0]])
            .unwrap();
        let lu = LuFactor::new(&a).unwrap();
        let x = lu.solve(&[5.0, -2.0, 9.0]).unwrap();
        assert!(residual_inf(&a, &x, &[5.0, -2.0, 9.0]) < 1e-10);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = DenseMatrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let lu = LuFactor::new(&a).unwrap();
        let x = lu.solve(&[3.0, 4.0]).unwrap();
        assert_eq!(x, vec![4.0, 3.0]);
    }

    #[test]
    fn singular_matrix_is_reported() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(matches!(
            LuFactor::new(&a),
            Err(NumericError::Singular { .. })
        ));
    }

    #[test]
    fn non_square_rejected() {
        let a = DenseMatrix::zeros(2, 3);
        assert!(matches!(
            LuFactor::new(&a),
            Err(NumericError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn wrong_rhs_length_rejected() {
        let lu = LuFactor::new(&DenseMatrix::identity(3)).unwrap();
        assert!(lu.solve(&[1.0]).is_err());
    }

    #[test]
    fn determinant_of_diagonal() {
        let a = DenseMatrix::from_rows(&[&[2.0, 0.0], &[0.0, 3.0]]).unwrap();
        assert!((LuFactor::new(&a).unwrap().determinant() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn determinant_sign_tracks_permutation() {
        // Swapping rows of the identity flips the determinant sign.
        let a = DenseMatrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        assert!((LuFactor::new(&a).unwrap().determinant() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn solve_into_matches_solve_bitwise_and_reuses_the_buffer() {
        let a = DenseMatrix::from_rows(&[&[0.0, 2.0, 1.0], &[3.0, 1.0, -1.0], &[1.0, 4.0, 2.0]])
            .unwrap();
        let lu = LuFactor::new(&a).unwrap();
        let mut buf = Vec::new();
        for b in [[5.0, -2.0, 9.0], [1.0, 0.0, 0.0], [-3.5, 2.25, 0.125]] {
            let fresh = lu.solve(&b).unwrap();
            lu.solve_into(&b, &mut buf).unwrap();
            assert_eq!(buf.len(), 3);
            for (y, z) in fresh.iter().zip(&buf) {
                assert_eq!(y.to_bits(), z.to_bits());
            }
        }
        assert!(lu.solve_into(&[1.0], &mut buf).is_err());
    }

    #[test]
    fn reuses_factorization_for_multiple_rhs() {
        let a = DenseMatrix::from_rows(&[&[3.0, 1.0], &[1.0, 2.0]]).unwrap();
        let lu = LuFactor::new(&a).unwrap();
        for b in [[1.0, 0.0], [0.0, 1.0], [5.0, -2.0]] {
            let x = lu.solve(&b).unwrap();
            assert!(residual_inf(&a, &x, &b) < 1e-12);
        }
    }

    proptest! {
        /// Diagonally dominant random systems solve with a tiny residual.
        #[test]
        fn prop_solves_diagonally_dominant(
            seed in proptest::array::uniform32(-1.0_f64..1.0),
            rhs in proptest::array::uniform4(-10.0_f64..10.0),
        ) {
            let n = 4;
            let mut a = DenseMatrix::from_fn(n, n, |i, j| seed[(i * n + j) % 32]);
            for i in 0..n {
                // Make strictly diagonally dominant => nonsingular.
                let off: f64 = (0..n).filter(|&j| j != i).map(|j| a.at(i, j).abs()).sum();
                a.set(i, i, off + 1.0).unwrap();
            }
            let lu = LuFactor::new(&a).unwrap();
            let x = lu.solve(&rhs).unwrap();
            prop_assert!(residual_inf(&a, &x, &rhs) < 1e-9);
        }

        /// det(P·A) consistency: determinant of identity-with-scaled-row.
        #[test]
        fn prop_determinant_scales_linearly(k in 0.1_f64..10.0) {
            let a = DenseMatrix::from_rows(&[&[k, 0.0], &[0.0, 1.0]]).unwrap();
            let d = LuFactor::new(&a).unwrap().determinant();
            prop_assert!((d - k).abs() < 1e-12 * k.max(1.0));
        }
    }
}
