//! Error type shared by every numeric kernel.

use std::fmt;

/// Errors produced by the linear-algebra kernels.
#[derive(Clone, PartialEq, Debug)]
#[non_exhaustive]
pub enum NumericError {
    /// Matrix dimensions are inconsistent with the requested operation.
    DimensionMismatch {
        /// What the operation expected (rows, cols or length).
        expected: String,
        /// What it received.
        found: String,
    },
    /// The matrix is singular (or numerically singular) to working
    /// precision; factorization cannot proceed.
    Singular {
        /// Pivot index at which the factorization broke down.
        pivot: usize,
    },
    /// The matrix is not symmetric positive definite (Cholesky and CG
    /// breakdown).
    NotPositiveDefinite {
        /// Pivot index at which a non-positive diagonal appeared — the
        /// leading minor of order `pivot + 1` is the first one that is
        /// not positive definite.
        pivot: usize,
        /// The offending pivot value (the Schur-complement diagonal for
        /// Cholesky, `pᵀAp` for a CG breakdown), kept so resilient-solve
        /// diagnostics can log *how* indefinite the system was.
        value: f64,
    },
    /// An iterative solver failed to reach the requested tolerance.
    NoConvergence {
        /// Iterations performed before giving up.
        iterations: usize,
        /// Relative residual at the final iterate.
        residual: f64,
        /// Whether the iteration had stopped making progress (the
        /// residual plateaued) rather than merely running out of
        /// iterations while still improving.
        stagnated: bool,
    },
    /// An entry index lies outside the matrix.
    IndexOutOfBounds {
        /// Offending row.
        row: usize,
        /// Offending column.
        col: usize,
        /// Matrix rows.
        rows: usize,
        /// Matrix columns.
        cols: usize,
    },
}

impl fmt::Display for NumericError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
            Self::Singular { pivot } => {
                write!(f, "matrix is singular at pivot {pivot}")
            }
            Self::NotPositiveDefinite { pivot, value } => {
                write!(
                    f,
                    "matrix is not positive definite: leading minor of order {} fails with pivot {value:.3e} at index {pivot}",
                    pivot + 1
                )
            }
            Self::NoConvergence {
                iterations,
                residual,
                stagnated,
            } => write!(
                f,
                "iterative solver did not converge after {iterations} iterations (relative residual {residual:.3e}{})",
                if *stagnated { ", stagnated" } else { "" }
            ),
            Self::IndexOutOfBounds {
                row,
                col,
                rows,
                cols,
            } => write!(
                f,
                "index ({row}, {col}) out of bounds for a {rows}x{cols} matrix"
            ),
        }
    }
}

impl std::error::Error for NumericError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_concise() {
        let errs: Vec<NumericError> = vec![
            NumericError::Singular { pivot: 3 },
            NumericError::NotPositiveDefinite {
                pivot: 0,
                value: -1.5e-3,
            },
            NumericError::NoConvergence {
                iterations: 100,
                residual: 1e-3,
                stagnated: false,
            },
            NumericError::DimensionMismatch {
                expected: "3x3".into(),
                found: "3x4".into(),
            },
            NumericError::IndexOutOfBounds {
                row: 5,
                col: 1,
                rows: 4,
                cols: 4,
            },
        ];
        for e in errs {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NumericError>();
    }
}
