//! Row-major dense matrix.

use crate::NumericError;

/// A row-major dense matrix of `f64`.
///
/// ```
/// use vpd_numeric::DenseMatrix;
///
/// # fn main() -> Result<(), vpd_numeric::NumericError> {
/// let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])?;
/// assert_eq!(a.get(1, 0)?, 3.0);
/// assert_eq!(a.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq, Debug, serde::Serialize, serde::Deserialize)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates a `rows × cols` matrix of zeros.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::DimensionMismatch`] when the rows have
    /// unequal lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self, NumericError> {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(nrows * ncols);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != ncols {
                return Err(NumericError::DimensionMismatch {
                    expected: format!("row of length {ncols}"),
                    found: format!("row {i} of length {}", row.len()),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Self {
            rows: nrows,
            cols: ncols,
            data,
        })
    }

    /// Builds a matrix by evaluating `f(row, col)` at every entry.
    #[must_use]
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Self::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m.data[i * cols + j] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    #[must_use]
    pub const fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub const fn cols(&self) -> usize {
        self.cols
    }

    /// `true` when the matrix is square.
    #[must_use]
    pub const fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Bounds-checked entry read.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::IndexOutOfBounds`] for an invalid index.
    pub fn get(&self, row: usize, col: usize) -> Result<f64, NumericError> {
        self.check(row, col)?;
        Ok(self.data[row * self.cols + col])
    }

    /// Bounds-checked entry write.
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::IndexOutOfBounds`] for an invalid index.
    pub fn set(&mut self, row: usize, col: usize, value: f64) -> Result<(), NumericError> {
        self.check(row, col)?;
        self.data[row * self.cols + col] = value;
        Ok(())
    }

    /// Adds `value` to the entry (MNA "stamping" primitive).
    ///
    /// # Errors
    ///
    /// Returns [`NumericError::IndexOutOfBounds`] for an invalid index.
    pub fn add_at(&mut self, row: usize, col: usize, value: f64) -> Result<(), NumericError> {
        self.check(row, col)?;
        self.data[row * self.cols + col] += value;
        Ok(())
    }

    /// Unchecked entry read for hot loops (still panics in debug builds
    /// through slice indexing rather than UB).
    #[must_use]
    pub fn at(&self, row: usize, col: usize) -> f64 {
        self.data[row * self.cols + col]
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    #[must_use]
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        let mut y = vec![0.0; self.rows];
        for i in 0..self.rows {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            y[i] = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
        y
    }

    /// The transpose `Aᵀ`.
    #[must_use]
    pub fn transpose(&self) -> Self {
        Self::from_fn(self.cols, self.rows, |i, j| self.at(j, i))
    }

    /// Maximum absolute asymmetry `max |A_ij − A_ji|` (0 for symmetric).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    #[must_use]
    pub fn asymmetry(&self) -> f64 {
        assert!(self.is_square(), "asymmetry requires a square matrix");
        let mut worst: f64 = 0.0;
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                worst = worst.max((self.at(i, j) - self.at(j, i)).abs());
            }
        }
        worst
    }

    /// Row-slice view.
    #[must_use]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    fn check(&self, row: usize, col: usize) -> Result<(), NumericError> {
        if row >= self.rows || col >= self.cols {
            return Err(NumericError::IndexOutOfBounds {
                row,
                col,
                rows: self.rows,
                cols: self.cols,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_matvec_is_identity() {
        let i3 = DenseMatrix::identity(3);
        assert_eq!(i3.matvec(&[1.0, 2.0, 3.0]), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn from_rows_rejects_ragged_input() {
        let err = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0]]).unwrap_err();
        assert!(matches!(err, NumericError::DimensionMismatch { .. }));
    }

    #[test]
    fn get_set_round_trip_and_bounds() {
        let mut m = DenseMatrix::zeros(2, 2);
        m.set(0, 1, 5.0).unwrap();
        assert_eq!(m.get(0, 1).unwrap(), 5.0);
        assert!(matches!(
            m.get(2, 0),
            Err(NumericError::IndexOutOfBounds { .. })
        ));
        assert!(m.set(0, 9, 1.0).is_err());
    }

    #[test]
    fn add_at_accumulates_like_mna_stamping() {
        let mut m = DenseMatrix::zeros(2, 2);
        m.add_at(0, 0, 2.0).unwrap();
        m.add_at(0, 0, 3.0).unwrap();
        assert_eq!(m.at(0, 0), 5.0);
    }

    #[test]
    fn transpose_involution() {
        let a = DenseMatrix::from_fn(3, 2, |i, j| (i * 10 + j) as f64);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn asymmetry_detects_nonsymmetric() {
        let sym = DenseMatrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]).unwrap();
        assert_eq!(sym.asymmetry(), 0.0);
        let asym = DenseMatrix::from_rows(&[&[2.0, 1.0], &[0.0, 2.0]]).unwrap();
        assert_eq!(asym.asymmetry(), 1.0);
    }

    #[test]
    #[should_panic(expected = "matvec dimension mismatch")]
    fn matvec_length_mismatch_panics() {
        let _ = DenseMatrix::identity(2).matvec(&[1.0]);
    }
}
