//! Vector kernels used by the iterative solvers.

/// Dot product.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot dimension mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `y ← y + alpha·x`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy dimension mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Euclidean norm.
#[must_use]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Infinity norm.
#[must_use]
pub fn norm_inf(a: &[f64]) -> f64 {
    a.iter().fold(0.0, |m, v| m.max(v.abs()))
}

/// Elementwise product `z = a ⊙ b`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn hadamard(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "hadamard dimension mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).collect()
}

/// Sum of all elements.
#[must_use]
pub fn sum(a: &[f64]) -> f64 {
    a.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(norm2(&[3.0, 4.0]), 5.0);
        assert_eq!(norm_inf(&[-7.0, 2.0]), 7.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, -1.0], &mut y);
        assert_eq!(y, vec![3.0, -1.0]);
    }

    #[test]
    fn hadamard_and_sum() {
        assert_eq!(hadamard(&[1.0, 2.0], &[3.0, 4.0]), vec![3.0, 8.0]);
        assert_eq!(sum(&[1.0, 2.0, 3.0]), 6.0);
    }

    #[test]
    #[should_panic(expected = "dot dimension mismatch")]
    fn dot_mismatch_panics() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn norms_of_empty() {
        assert_eq!(norm2(&[]), 0.0);
        assert_eq!(norm_inf(&[]), 0.0);
    }
}
