//! Resilient solve ladder for SPD grid systems.
//!
//! Degraded power grids — open vias, derated regulators, corroded sheets —
//! produce ill-conditioned Laplacians on which plain CG can stall short of
//! tolerance. [`resilient_solve_into`] climbs a three-rung ladder so such
//! systems degrade into slower-but-correct solves instead of errors:
//!
//! 1. **Warm CG** — preconditioned conjugate gradient from the caller's
//!    guess, exactly as [`conjugate_gradient_into`] would run it.
//! 2. **Cold-restart CG** — a stale warm-start can mislead the Krylov
//!    space; restart from zero with an enlarged iteration cap.
//! 3. **Dense LU** — densify the matrix and solve directly. `O(n³)` but
//!    unconditionally robust for nonsingular systems; acceptable because
//!    fallback is rare and grid blocks are modest.
//!
//! A cheap diagonal scan also routes *detectably* near-singular systems
//! straight to LU, where partial pivoting either solves them or reports
//! [`NumericError::Singular`] honestly.

use crate::vector::norm2;
use crate::{
    conjugate_gradient_into, CgSettings, CgWorkspace, CsrMatrix, DenseMatrix, LuFactor,
    NumericError, SparseCholesky,
};

/// Diagonal entries smaller than this fraction of the largest diagonal
/// flag the system as near-singular and route it straight to dense LU:
/// the implied condition number (≥ 10¹⁰) is beyond what Jacobi-scaled CG
/// resolves in double precision, so iterating would only burn time.
const NEAR_SINGULAR_DIAG_RATIO: f64 = 1e-10;

/// Which rung of the resilience ladder produced the solution.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum SolveMethod {
    /// Sparse Cholesky direct solve (the rung above warm CG, used by
    /// [`resilient_solve_direct_into`]).
    SparseCholesky,
    /// First-try (possibly warm-started) preconditioned CG.
    ConjugateGradient,
    /// Cold-restart CG with an enlarged iteration cap.
    ConjugateGradientRestart,
    /// Dense LU fallback.
    DenseLu,
}

/// Convergence diagnostic for a resilient solve ([C-INTERMEDIATE]).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct SolveReport {
    /// The ladder rung that produced the accepted solution.
    pub method: SolveMethod,
    /// Total CG iterations spent across all attempts (zero when the
    /// near-singular pre-check skipped CG entirely).
    pub iterations: usize,
    /// Relative residual `‖b − A·x‖ / ‖b‖` of the accepted solution.
    pub relative_residual: f64,
    /// Whether any CG attempt stagnated (residual plateau) on the way.
    pub stagnated: bool,
}

impl SolveReport {
    /// True when a first-choice rung (sparse Cholesky in direct mode,
    /// warm CG otherwise) was not the one that solved the system — i.e.
    /// a restart or dense factorization was needed.
    #[must_use]
    pub fn used_fallback(&self) -> bool {
        matches!(
            self.method,
            SolveMethod::ConjugateGradientRestart | SolveMethod::DenseLu
        )
    }
}

/// Settings for [`resilient_solve_into`].
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct ResilientSettings {
    /// CG settings for the first rung (the restart rung reuses them with
    /// an enlarged cap).
    pub cg: CgSettings,
    /// Multiplier applied to the effective iteration cap for the
    /// cold-restart rung.
    pub retry_iteration_factor: usize,
    /// Whether the dense LU rung is allowed. Disable to make exhaustion
    /// or stagnation a hard error (useful in tests and memory-tight
    /// contexts — densifying costs `O(n²)`).
    pub allow_dense_fallback: bool,
}

impl Default for ResilientSettings {
    fn default() -> Self {
        Self {
            cg: CgSettings::default(),
            retry_iteration_factor: 4,
            allow_dense_fallback: true,
        }
    }
}

impl From<CgSettings> for ResilientSettings {
    fn from(cg: CgSettings) -> Self {
        Self {
            cg,
            ..Self::default()
        }
    }
}

/// Solves `A·x = b` in place through the resilience ladder, warm-starting
/// the first CG rung from the incoming `x`.
///
/// On success `x` holds a solution whose relative residual is reported in
/// the returned [`SolveReport`] along with which rung produced it. The
/// dense-LU rung accepts whatever residual the factorization achieves, so
/// `relative_residual` may exceed `cg.tolerance` there — callers that
/// care should check the report.
///
/// # Errors
///
/// * [`NumericError::DimensionMismatch`] — shape errors, never retried.
/// * [`NumericError::NoConvergence`] — every permitted rung was
///   exhausted (only possible with `allow_dense_fallback = false`).
/// * [`NumericError::Singular`] — the dense rung found the system
///   genuinely singular.
/// * [`NumericError::NotPositiveDefinite`] — CG broke down and the dense
///   rung was disallowed.
pub fn resilient_solve_into(
    a: &CsrMatrix,
    b: &[f64],
    x: &mut [f64],
    settings: &ResilientSettings,
    ws: &mut CgWorkspace,
) -> Result<SolveReport, NumericError> {
    let result = ladder_run(a, b, x, settings, ws);
    // Ladder-stage accounting is observational (integer counters after
    // the solve), so enabling metrics cannot change the result bits.
    if vpd_obs::is_enabled() {
        match &result {
            Ok(rep) => {
                vpd_obs::incr("solve.solves");
                vpd_obs::incr(match rep.method {
                    // The direct rung accounts for itself before handing
                    // any degraded solve to this ladder.
                    SolveMethod::SparseCholesky => "solve.sparse_cholesky",
                    SolveMethod::ConjugateGradient => "solve.warm_cg",
                    SolveMethod::ConjugateGradientRestart => "solve.cold_restart",
                    SolveMethod::DenseLu => "solve.dense_lu",
                });
                if rep.used_fallback() {
                    vpd_obs::incr("solve.fallbacks");
                }
                if rep.stagnated {
                    vpd_obs::incr("solve.stagnations");
                }
                vpd_obs::observe("solve.iterations_per_solve", rep.iterations as u64);
            }
            Err(_) => vpd_obs::incr("solve.errors"),
        }
    }
    result
}

/// Solves `A·x = b` through a four-rung ladder whose first rung is a
/// sparse Cholesky direct solve: refactor `chol` against the (possibly
/// restamped) values of `a`, substitute, and accept the result when its
/// relative residual meets `settings.cg.tolerance` — the same bar CG has
/// to clear, so direct-mode answers match CG-mode answers within the CG
/// tolerance by construction. Any direct-rung failure (indefinite
/// restamp, poisoned factor, residual above tolerance) degrades to the
/// standard [`resilient_solve_into`] ladder: warm CG from the incoming
/// `x`, cold-restart CG, dense LU.
///
/// The refactor skips itself when the matrix values are
/// bitwise-unchanged, so sweeps that only move the right-hand side pay
/// two triangular substitutions per solve.
///
/// # Errors
///
/// * [`NumericError::DimensionMismatch`] — shape errors, never retried.
/// * Otherwise as for [`resilient_solve_into`], since every other
///   direct-rung failure falls through to that ladder.
pub fn resilient_solve_direct_into(
    a: &CsrMatrix,
    chol: &mut SparseCholesky,
    b: &[f64],
    x: &mut [f64],
    settings: &ResilientSettings,
    ws: &mut CgWorkspace,
) -> Result<SolveReport, NumericError> {
    match direct_rung(a, chol, b, x, settings) {
        Ok(report) => {
            if vpd_obs::is_enabled() {
                vpd_obs::incr("solve.solves");
                vpd_obs::incr("solve.sparse_cholesky");
                vpd_obs::observe("solve.iterations_per_solve", 0);
            }
            Ok(report)
        }
        Err(err @ NumericError::DimensionMismatch { .. }) => Err(err),
        Err(_) => {
            if vpd_obs::is_enabled() {
                vpd_obs::incr("solve.direct_degraded");
            }
            resilient_solve_into(a, b, x, settings, ws)
        }
    }
}

fn direct_rung(
    a: &CsrMatrix,
    chol: &mut SparseCholesky,
    b: &[f64],
    x: &mut [f64],
    settings: &ResilientSettings,
) -> Result<SolveReport, NumericError> {
    let n = a.rows();
    if b.len() != n || x.len() != n {
        return Err(NumericError::DimensionMismatch {
            expected: format!("rhs and guess of length {n}"),
            found: format!("lengths {} and {}", b.len(), x.len()),
        });
    }
    chol.refactor(a)?;
    // Substitute into a scratch copy so a rejected direct answer leaves
    // the caller's warm start in `x` intact for the CG ladder.
    let mut direct = b.to_vec();
    chol.solve_into(&mut direct)?;
    let b_norm = norm2(b);
    let relative_residual = if b_norm == 0.0 {
        0.0
    } else {
        let ax = a.matvec(&direct);
        let mut diff = 0.0;
        for i in 0..n {
            let d = b[i] - ax[i];
            diff += d * d;
        }
        diff.sqrt() / b_norm
    };
    if !relative_residual.is_finite() || relative_residual > settings.cg.tolerance {
        return Err(NumericError::NoConvergence {
            iterations: 0,
            residual: relative_residual,
            stagnated: false,
        });
    }
    x.copy_from_slice(&direct);
    Ok(SolveReport {
        method: SolveMethod::SparseCholesky,
        iterations: 0,
        relative_residual,
        stagnated: false,
    })
}

fn ladder_run(
    a: &CsrMatrix,
    b: &[f64],
    x: &mut [f64],
    settings: &ResilientSettings,
    ws: &mut CgWorkspace,
) -> Result<SolveReport, NumericError> {
    let n = a.rows();

    // Near-singular pre-check: a vanishing diagonal entry (relative to
    // the largest) means Jacobi scaling would blow up and CG would churn;
    // go straight to LU, whose pivoting handles or honestly rejects it.
    if settings.allow_dense_fallback && n > 0 && a.cols() == n && b.len() == n && x.len() == n {
        let mut min_abs = f64::INFINITY;
        let mut max_abs: f64 = 0.0;
        for i in 0..n {
            let d = a.get(i, i).abs();
            min_abs = min_abs.min(d);
            max_abs = max_abs.max(d);
        }
        if min_abs <= NEAR_SINGULAR_DIAG_RATIO * max_abs {
            return dense_rung(a, b, x, 0, false);
        }
    }

    // Rung 1: warm CG.
    let first = match conjugate_gradient_into(a, b, x, &settings.cg, ws) {
        Ok(rep) => {
            return Ok(SolveReport {
                method: SolveMethod::ConjugateGradient,
                iterations: rep.iterations,
                relative_residual: rep.relative_residual,
                stagnated: false,
            });
        }
        Err(err @ NumericError::DimensionMismatch { .. }) => return Err(err),
        Err(err) => err,
    };
    let (mut spent, mut stagnated) = match first {
        NumericError::NoConvergence {
            iterations,
            stagnated,
            ..
        } => (iterations, stagnated),
        // Breakdown (pᵀAp ≤ 0): roundoff on a near-indefinite system.
        _ => (0, false),
    };

    // Rung 2: cold restart with an enlarged cap. A bad warm start can
    // poison the Krylov space; zeros plus more headroom often recover.
    x.fill(0.0);
    let base_cap = settings.cg.max_iterations.unwrap_or(10 * n.max(1));
    let retry = CgSettings {
        max_iterations: Some(base_cap.saturating_mul(settings.retry_iteration_factor.max(1))),
        ..settings.cg
    };
    let second = match conjugate_gradient_into(a, b, x, &retry, ws) {
        Ok(rep) => {
            return Ok(SolveReport {
                method: SolveMethod::ConjugateGradientRestart,
                iterations: spent + rep.iterations,
                relative_residual: rep.relative_residual,
                stagnated,
            });
        }
        Err(err) => err,
    };
    if let NumericError::NoConvergence {
        iterations,
        stagnated: s2,
        ..
    } = second
    {
        spent += iterations;
        stagnated |= s2;
    }

    // Rung 3: dense LU.
    if !settings.allow_dense_fallback {
        return Err(second);
    }
    dense_rung(a, b, x, spent, stagnated)
}

/// Convenience wrapper over [`resilient_solve_into`] starting from a zero
/// guess with a fresh workspace.
///
/// # Errors
///
/// As for [`resilient_solve_into`].
pub fn resilient_solve(
    a: &CsrMatrix,
    b: &[f64],
    settings: &ResilientSettings,
) -> Result<(Vec<f64>, SolveReport), NumericError> {
    let mut x = vec![0.0; a.rows()];
    let mut ws = CgWorkspace::new();
    let report = resilient_solve_into(a, b, &mut x, settings, &mut ws)?;
    Ok((x, report))
}

fn dense_rung(
    a: &CsrMatrix,
    b: &[f64],
    x: &mut [f64],
    cg_iterations: usize,
    stagnated: bool,
) -> Result<SolveReport, NumericError> {
    let n = a.rows();
    if a.cols() != n {
        return Err(NumericError::DimensionMismatch {
            expected: "square matrix".into(),
            found: format!("{}x{}", a.rows(), a.cols()),
        });
    }
    if b.len() != n || x.len() != n {
        return Err(NumericError::DimensionMismatch {
            expected: format!("rhs and guess of length {n}"),
            found: format!("lengths {} and {}", b.len(), x.len()),
        });
    }
    let dense = DenseMatrix::from_fn(n, n, |i, j| a.get(i, j));
    let solution = LuFactor::new(&dense)?.solve(b)?;
    x.copy_from_slice(&solution);
    let b_norm = norm2(b);
    let relative_residual = if b_norm == 0.0 {
        0.0
    } else {
        let ax = a.matvec(x);
        let mut diff = 0.0;
        for i in 0..n {
            let d = b[i] - ax[i];
            diff += d * d;
        }
        diff.sqrt() / b_norm
    };
    Ok(SolveReport {
        method: SolveMethod::DenseLu,
        iterations: cg_iterations,
        relative_residual,
        stagnated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CooMatrix, Preconditioner};

    fn chain(n: usize, g: f64, gl: f64) -> CsrMatrix {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            let mut diag = gl;
            if i > 0 {
                coo.push(i, i - 1, -g);
                diag += g;
            }
            if i + 1 < n {
                coo.push(i, i + 1, -g);
                diag += g;
            }
            coo.push(i, i, diag);
        }
        coo.to_csr()
    }

    #[test]
    fn healthy_system_stays_on_cg_rung() {
        let a = chain(50, 1.0, 0.1);
        let b = vec![1.0; 50];
        let (x, report) = resilient_solve(&a, &b, &ResilientSettings::default()).unwrap();
        assert_eq!(report.method, SolveMethod::ConjugateGradient);
        assert!(!report.used_fallback());
        assert!(report.relative_residual < 1e-10);
        let ax = a.matvec(&x);
        for (axi, bi) in ax.iter().zip(&b) {
            assert!((axi - bi).abs() < 1e-8);
        }
    }

    #[test]
    fn cg_rung_matches_plain_cg_bitwise() {
        // On the happy path the ladder must be invisible: same iterate
        // sequence, same bits.
        let a = chain(64, 2.0, 0.05);
        let b: Vec<f64> = (0..64).map(|i| ((i * 37) % 11) as f64 - 5.0).collect();
        let (x_plain, _) = crate::conjugate_gradient(&a, &b, &CgSettings::default()).unwrap();
        let (x_ladder, report) = resilient_solve(&a, &b, &ResilientSettings::default()).unwrap();
        assert_eq!(report.method, SolveMethod::ConjugateGradient);
        for (p, l) in x_plain.iter().zip(&x_ladder) {
            assert_eq!(p.to_bits(), l.to_bits());
        }
    }

    #[test]
    fn restart_rung_recovers_from_tight_cap() {
        // A cap too small for the cold solve: rung 1 exhausts, rung 2
        // (4× cap) converges without needing LU.
        let a = chain(100, 1.0, 0.01);
        let b = vec![1.0; 100];
        let settings = ResilientSettings {
            cg: CgSettings {
                max_iterations: Some(40),
                ..CgSettings::default()
            },
            ..ResilientSettings::default()
        };
        let (x, report) = resilient_solve(&a, &b, &settings).unwrap();
        assert_eq!(report.method, SolveMethod::ConjugateGradientRestart);
        assert!(report.used_fallback());
        assert!(report.iterations > 40, "counts both attempts");
        let ax = a.matvec(&x);
        for (axi, bi) in ax.iter().zip(&b) {
            assert!((axi - bi).abs() < 1e-7);
        }
    }

    #[test]
    fn dense_rung_rescues_exhausted_iteration_budget() {
        // Caps too tight for either CG rung force the ladder all the way
        // down to LU, which simply solves the system.
        let a = chain(100, 1.0, 0.01);
        let b = vec![1.0; 100];
        let settings = ResilientSettings {
            cg: CgSettings {
                max_iterations: Some(2),
                ..CgSettings::default()
            },
            ..ResilientSettings::default()
        };
        let (x, report) = resilient_solve(&a, &b, &settings).unwrap();
        assert_eq!(report.method, SolveMethod::DenseLu);
        assert!(report.used_fallback());
        assert!(report.relative_residual < 1e-9);
        let ax = a.matvec(&x);
        for (axi, bi) in ax.iter().zip(&b) {
            assert!((axi - bi).abs() < 1e-8);
        }
    }

    #[test]
    fn fallback_disabled_surfaces_the_cg_error() {
        let a = chain(100, 1.0, 0.01);
        let b = vec![1.0; 100];
        let settings = ResilientSettings {
            cg: CgSettings {
                max_iterations: Some(2),
                ..CgSettings::default()
            },
            allow_dense_fallback: false,
            ..ResilientSettings::default()
        };
        let err = resilient_solve(&a, &b, &settings).unwrap_err();
        assert!(matches!(err, NumericError::NoConvergence { .. }));
    }

    #[test]
    fn stagnating_system_ends_on_lu_with_flag_set() {
        // κ ≈ 4·10¹⁶ without preconditioning: both CG rungs stagnate, LU
        // still produces a usable solution, and the report remembers that
        // stagnation happened on the way down.
        let a = chain(200, 1e8, 1e-8);
        let b = vec![1.0; 200];
        let settings = ResilientSettings {
            cg: CgSettings {
                tolerance: 1e-16,
                max_iterations: Some(200_000),
                preconditioner: Preconditioner::None,
            },
            ..ResilientSettings::default()
        };
        match resilient_solve(&a, &b, &settings) {
            Ok((_, report)) => {
                assert_eq!(report.method, SolveMethod::DenseLu);
                assert!(report.stagnated, "stagnation must survive into the report");
            }
            // Pivot decay on a κ ≈ 4e16 matrix may legitimately trip the
            // dense rung's relative singularity guard; that is still an
            // honest terminal answer, not a hang.
            Err(err) => assert!(matches!(err, NumericError::Singular { .. })),
        }
    }

    #[test]
    fn near_singular_diagonal_routes_to_lu() {
        // One essentially-open node: its diagonal is 1e-11 of the rest —
        // past the pre-check ratio, but still above LU's pivot floor.
        let n = 10;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            let d = if i == 3 { 1e-11 } else { 1.0 };
            coo.push(i, i, d);
        }
        let a = coo.to_csr();
        let b = vec![1.0; n];
        let (x, report) = resilient_solve(&a, &b, &ResilientSettings::default()).unwrap();
        assert_eq!(report.method, SolveMethod::DenseLu);
        assert_eq!(report.iterations, 0, "CG was skipped entirely");
        assert!((x[3] - 1e11).abs() / 1e11 < 1e-9);
    }

    #[test]
    fn genuinely_singular_system_reports_singular() {
        let n = 4;
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, if i == 0 { 0.0 } else { 1.0 });
        }
        let err =
            resilient_solve(&coo.to_csr(), &[1.0; 4], &ResilientSettings::default()).unwrap_err();
        assert!(matches!(err, NumericError::Singular { .. }));
    }

    #[test]
    fn dimension_mismatch_is_never_retried() {
        let a = chain(3, 1.0, 0.1);
        let err = resilient_solve(&a, &[1.0; 2], &ResilientSettings::default()).unwrap_err();
        assert!(matches!(err, NumericError::DimensionMismatch { .. }));
    }

    #[test]
    fn direct_rung_solves_and_matches_cg_within_tolerance() {
        let a = chain(80, 1.0, 0.05);
        let b: Vec<f64> = (0..80).map(|i| ((i * 29) % 13) as f64 - 6.0).collect();
        let settings = ResilientSettings::default();
        let mut chol = SparseCholesky::factor(&a).unwrap();
        let mut x = vec![0.0; 80];
        let mut ws = CgWorkspace::new();
        let report =
            resilient_solve_direct_into(&a, &mut chol, &b, &mut x, &settings, &mut ws).unwrap();
        assert_eq!(report.method, SolveMethod::SparseCholesky);
        assert_eq!(report.iterations, 0);
        assert!(!report.used_fallback(), "direct is a first-choice rung");
        assert!(report.relative_residual <= settings.cg.tolerance);
        let (x_cg, _) = resilient_solve(&a, &b, &settings).unwrap();
        let scale: f64 = x_cg.iter().fold(1.0_f64, |m, v| m.max(v.abs()));
        for (d, c) in x.iter().zip(&x_cg) {
            assert!((d - c).abs() / scale < 1e-8, "direct vs CG drifted");
        }
    }

    #[test]
    fn direct_rung_repeated_solves_are_bitwise_stable() {
        let a = chain(50, 2.0, 0.1);
        let b = vec![1.0; 50];
        let settings = ResilientSettings::default();
        let mut chol = SparseCholesky::factor(&a).unwrap();
        let mut ws = CgWorkspace::new();
        let mut x1 = vec![0.0; 50];
        resilient_solve_direct_into(&a, &mut chol, &b, &mut x1, &settings, &mut ws).unwrap();
        // Second call hits the bitwise refactor skip; bits must agree.
        let mut x2 = vec![0.0; 50];
        resilient_solve_direct_into(&a, &mut chol, &b, &mut x2, &settings, &mut ws).unwrap();
        for (p, q) in x1.iter().zip(&x2) {
            assert_eq!(p.to_bits(), q.to_bits());
        }
    }

    #[test]
    fn direct_failure_degrades_to_the_cg_ladder() {
        // Factor on an SPD system, then restamp to an indefinite one:
        // the direct rung rejects it and the ladder must still deliver
        // (dense LU, since CG breaks down on indefinite systems).
        let spd = chain(10, 1.0, 0.5);
        let mut chol = SparseCholesky::factor(&spd).unwrap();
        let mut coo = CooMatrix::new(10, 10);
        for i in 0..10 {
            // Node 4 gets a strongly negative leak: its diagonal ends up
            // at -1.0, so e₄ᵀ·A·e₄ < 0 and the matrix is indefinite.
            let mut diag = if i == 4 { -3.0 } else { 0.5 };
            if i > 0 {
                coo.push(i, i - 1, -1.0);
                diag += 1.0;
            }
            if i + 1 < 10 {
                coo.push(i, i + 1, -1.0);
                diag += 1.0;
            }
            coo.push(i, i, diag);
        }
        let indefinite = coo.to_csr();
        assert_eq!(indefinite.nnz(), spd.nnz(), "same pattern by construction");
        let b = vec![1.0; 10];
        let mut x = vec![0.0; 10];
        let mut ws = CgWorkspace::new();
        let report = resilient_solve_direct_into(
            &indefinite,
            &mut chol,
            &b,
            &mut x,
            &ResilientSettings::default(),
            &mut ws,
        )
        .unwrap();
        assert_ne!(report.method, SolveMethod::SparseCholesky);
        let ax = indefinite.matvec(&x);
        for (axi, bi) in ax.iter().zip(&b) {
            assert!((axi - bi).abs() < 1e-7);
        }
    }

    #[test]
    fn direct_dimension_mismatch_is_never_retried() {
        let a = chain(8, 1.0, 0.1);
        let mut chol = SparseCholesky::factor(&a).unwrap();
        let mut x = vec![0.0; 8];
        let mut ws = CgWorkspace::new();
        let err = resilient_solve_direct_into(
            &a,
            &mut chol,
            &[1.0; 5],
            &mut x,
            &ResilientSettings::default(),
            &mut ws,
        )
        .unwrap_err();
        assert!(matches!(err, NumericError::DimensionMismatch { .. }));
    }
}
