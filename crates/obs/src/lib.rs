//! Std-only observability for the solver stack: a process-global
//! metrics registry (atomic counters, gauges, fixed-bucket histograms),
//! scoped timing spans, and snapshot/NDJSON export.
//!
//! The registry is **disabled by default**. Every recording entry point
//! first loads one relaxed atomic bool; while disabled no locks are
//! taken, no time is read, and no memory is written, so instrumented
//! hot paths cost a single predictable branch. Recording itself is
//! strictly observational — integer atomics only, never touching the
//! instrumented computation — which is what lets the solver crates
//! guarantee bitwise-identical results with metrics on or off.
//!
//! ```
//! vpd_obs::set_enabled(true);
//! vpd_obs::incr("demo.runs");
//! vpd_obs::add("demo.items", 3);
//! {
//!     let _span = vpd_obs::span("demo.work_ns");
//!     // ... timed work ...
//! }
//! let snap = vpd_obs::snapshot();
//! assert_eq!(snap.counter("demo.items"), Some(3));
//! vpd_obs::set_enabled(false);
//! vpd_obs::reset();
//! ```
//!
//! Metric names are `&'static str` by design: each distinct name is
//! registered once (the backing cell is leaked, bounded by the fixed
//! set of instrumentation sites) and subsequent lookups are a short
//! mutex-guarded map probe — cheap next to any solve, and absent
//! entirely while disabled.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod registry;
mod snapshot;

pub use registry::{
    add, gauge_set, incr, is_enabled, observe, reset, set_enabled, span, Counter, Gauge, Histogram,
    SpanGuard, HISTOGRAM_BUCKETS,
};
pub use snapshot::{append_ndjson, snapshot, HistogramSnapshot, MetricsSnapshot};
