//! The process-global metric registry and its primitive cells.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Global enable flag. All recording entry points check this first with
/// one relaxed load, so the disabled cost is a predictable branch.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns metric recording on or off process-wide. Off is the default;
/// recorded values persist across a disable (use [`reset`] to zero).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether metric recording is currently enabled.
#[must_use]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n` to the count.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current count.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A last-write-wins floating-point value (rates, ratios, sizes).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Sets the gauge (stored as raw `f64` bits; no FP arithmetic).
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value (0.0 when never set).
    #[must_use]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    fn reset(&self) {
        self.0.store(0.0_f64.to_bits(), Ordering::Relaxed);
    }
}

/// Number of fixed power-of-two histogram buckets. Bucket `k` counts
/// values `v` with `prev_bound < v <= 2^k − 1`; the last bucket absorbs
/// everything larger (~2.1 × 10⁹ ns ≈ 2 s for span timings).
pub const HISTOGRAM_BUCKETS: usize = 32;

/// A fixed-bucket histogram of `u64` observations (iteration counts,
/// span nanoseconds). Power-of-two bucket bounds: no configuration, no
/// allocation, O(1) atomic recording.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one observation.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // Saturating: a sum overflow must not wrap into a small lie.
        let _ = self
            .sum
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                Some(s.saturating_add(value))
            });
    }

    /// Total observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Saturating sum of all observations.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Count in bucket `index` (None out of range).
    #[must_use]
    pub fn bucket(&self, index: usize) -> Option<u64> {
        self.buckets.get(index).map(|b| b.load(Ordering::Relaxed))
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
    }
}

/// The bucket an observation lands in: 0 for 0, otherwise the value's
/// bit width, clamped into the fixed bucket range.
pub(crate) fn bucket_index(value: u64) -> usize {
    ((u64::BITS - value.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
}

/// Inclusive upper bound of bucket `index` (`u64::MAX` for the last).
#[must_use]
pub(crate) fn bucket_upper_bound(index: usize) -> u64 {
    if index + 1 >= HISTOGRAM_BUCKETS {
        u64::MAX
    } else {
        (1_u64 << index) - 1
    }
}

#[derive(Default)]
pub(crate) struct Registry {
    pub(crate) counters: Mutex<BTreeMap<&'static str, &'static Counter>>,
    pub(crate) gauges: Mutex<BTreeMap<&'static str, &'static Gauge>>,
    pub(crate) histograms: Mutex<BTreeMap<&'static str, &'static Histogram>>,
}

pub(crate) fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// Looks up (registering on first use) a metric cell. The leak is
/// bounded: one cell per distinct static name, for the process lifetime.
fn cell<M: Default>(
    map: &Mutex<BTreeMap<&'static str, &'static M>>,
    name: &'static str,
) -> &'static M {
    let mut map = map.lock().expect("metric registry poisoned");
    map.entry(name)
        .or_insert_with(|| Box::leak(Box::new(M::default())))
}

/// Adds `n` to counter `name` (no-op while disabled).
pub fn add(name: &'static str, n: u64) {
    if is_enabled() {
        cell(&registry().counters, name).add(n);
    }
}

/// Increments counter `name` by one (no-op while disabled).
pub fn incr(name: &'static str) {
    add(name, 1);
}

/// Sets gauge `name` (no-op while disabled).
pub fn gauge_set(name: &'static str, value: f64) {
    if is_enabled() {
        cell(&registry().gauges, name).set(value);
    }
}

/// Records `value` into histogram `name` (no-op while disabled).
pub fn observe(name: &'static str, value: u64) {
    if is_enabled() {
        cell(&registry().histograms, name).record(value);
    }
}

/// Zeroes every registered metric (registrations persist). Intended for
/// tests and between measurement phases; recording may race a reset,
/// so quiesce instrumented work first if exact zeros matter.
pub fn reset() {
    let reg = registry();
    for c in reg
        .counters
        .lock()
        .expect("metric registry poisoned")
        .values()
    {
        c.reset();
    }
    for g in reg
        .gauges
        .lock()
        .expect("metric registry poisoned")
        .values()
    {
        g.reset();
    }
    for h in reg
        .histograms
        .lock()
        .expect("metric registry poisoned")
        .values()
    {
        h.reset();
    }
}

/// An RAII timing scope: on drop, the elapsed wall time in nanoseconds
/// is recorded into histogram `name`. While disabled the guard holds no
/// start time — the clock is never read.
#[derive(Debug)]
#[must_use = "a span records on drop; binding it to _ drops immediately"]
pub struct SpanGuard {
    start: Option<(&'static str, Instant)>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((name, start)) = self.start.take() {
            let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            // Re-check enabled: recording may have been turned off while
            // the span was open; observe() gates again, which is fine.
            observe(name, nanos);
        }
    }
}

/// Opens a timing span over histogram `name`; see [`SpanGuard`].
pub fn span(name: &'static str) -> SpanGuard {
    SpanGuard {
        start: is_enabled().then(|| (name, Instant::now())),
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    /// Registry state is process-global; tests in this file serialize
    /// on one mutex so their counts never interleave.
    pub(crate) fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn disabled_recording_is_dropped() {
        let _gate = lock();
        set_enabled(false);
        reset();
        incr("test.disabled");
        observe("test.disabled.hist", 5);
        gauge_set("test.disabled.gauge", 1.5);
        set_enabled(true);
        let snap = crate::snapshot();
        set_enabled(false);
        assert_eq!(snap.counter("test.disabled").unwrap_or(0), 0);
        assert_eq!(snap.gauge("test.disabled.gauge").unwrap_or(0.0), 0.0);
    }

    #[test]
    fn counters_accumulate_and_reset() {
        let _gate = lock();
        set_enabled(true);
        reset();
        incr("test.counter");
        add("test.counter", 41);
        assert_eq!(crate::snapshot().counter("test.counter"), Some(42));
        reset();
        assert_eq!(crate::snapshot().counter("test.counter"), Some(0));
        set_enabled(false);
    }

    #[test]
    fn histogram_buckets_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(2), 3);
        assert_eq!(bucket_upper_bound(HISTOGRAM_BUCKETS - 1), u64::MAX);
        // Every value's bucket bound brackets the value.
        for v in [0_u64, 1, 7, 100, 1 << 20, u64::MAX] {
            let i = bucket_index(v);
            assert!(v <= bucket_upper_bound(i));
            if i > 0 {
                assert!(v > bucket_upper_bound(i - 1), "{v} in bucket {i}");
            }
        }
    }

    #[test]
    fn histogram_records_count_and_sum() {
        let _gate = lock();
        set_enabled(true);
        reset();
        for v in [1_u64, 2, 3, 1000] {
            observe("test.hist", v);
        }
        let snap = crate::snapshot();
        let h = snap.histogram("test.hist").expect("registered");
        assert_eq!(h.count, 4);
        assert_eq!(h.sum, 1006);
        assert_eq!(h.buckets.iter().map(|&(_, c)| c).sum::<u64>(), 4);
        set_enabled(false);
    }

    #[test]
    fn span_times_land_in_the_named_histogram() {
        let _gate = lock();
        set_enabled(true);
        reset();
        {
            let _span = span("test.span_ns");
            std::hint::black_box(());
        }
        let snap = crate::snapshot();
        assert_eq!(snap.histogram("test.span_ns").map(|h| h.count), Some(1));
        set_enabled(false);
        // Disabled spans never read the clock or record.
        {
            let _span = span("test.span_ns");
        }
        set_enabled(true);
        assert_eq!(
            crate::snapshot().histogram("test.span_ns").map(|h| h.count),
            Some(1)
        );
        set_enabled(false);
    }

    #[test]
    fn gauges_overwrite() {
        let _gate = lock();
        set_enabled(true);
        reset();
        gauge_set("test.gauge", 2.5);
        gauge_set("test.gauge", 7.25);
        assert_eq!(crate::snapshot().gauge("test.gauge"), Some(7.25));
        set_enabled(false);
    }

    #[test]
    fn concurrent_increments_are_lost_update_free() {
        let _gate = lock();
        set_enabled(true);
        reset();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        incr("test.concurrent");
                    }
                });
            }
        });
        assert_eq!(crate::snapshot().counter("test.concurrent"), Some(8000));
        set_enabled(false);
    }
}
