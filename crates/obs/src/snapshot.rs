//! Point-in-time metric snapshots and their NDJSON serialization.
//!
//! The repo has no real serde (the compat stand-in is marker-only), so
//! the JSON here is hand-emitted: one object per snapshot, one line per
//! object in the NDJSON sink. Schema:
//!
//! ```json
//! {"label":"mc","counters":{"cg.iterations":1234,...},
//!  "gauges":{"mc.samples_per_sec":2120.4,...},
//!  "histograms":{"mc.run_ns":{"count":1,"sum":94000000,
//!                "buckets":[[134217727,1]]}}}
//! ```
//!
//! Histogram `buckets` lists only non-empty buckets as
//! `[upper_bound, count]` pairs. Non-finite gauge values serialize as
//! `null` so every emitted line stays strict JSON.

use crate::registry::{bucket_upper_bound, registry, HISTOGRAM_BUCKETS};
use std::io::Write;

/// An immutable copy of every registered metric, in sorted name order.
#[derive(Clone, PartialEq, Debug)]
pub struct MetricsSnapshot {
    /// Counter values as `(name, count)`.
    pub counters: Vec<(String, u64)>,
    /// Gauge values as `(name, value)`.
    pub gauges: Vec<(String, f64)>,
    /// Histogram summaries.
    pub histograms: Vec<HistogramSnapshot>,
}

/// One histogram's state inside a [`MetricsSnapshot`].
#[derive(Clone, PartialEq, Debug)]
pub struct HistogramSnapshot {
    /// Metric name.
    pub name: String,
    /// Total observations.
    pub count: u64,
    /// Saturating sum of observations.
    pub sum: u64,
    /// Non-empty buckets as `(inclusive upper bound, count)`.
    pub buckets: Vec<(u64, u64)>,
}

impl MetricsSnapshot {
    /// Value of counter `name`, if registered.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Value of gauge `name`, if registered.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Histogram `name`, if registered.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Serializes the snapshot as one single-line JSON object with the
    /// given `label` (typically the command or phase that produced it).
    #[must_use]
    pub fn to_json(&self, label: &str) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"label\":");
        push_json_string(&mut out, label);
        out.push_str(",\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_string(&mut out, name);
            out.push(':');
            out.push_str(&v.to_string());
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_string(&mut out, name);
            out.push(':');
            push_json_number(&mut out, *v);
        }
        out.push_str("},\"histograms\":{");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_json_string(&mut out, &h.name);
            out.push_str(&format!(
                ":{{\"count\":{},\"sum\":{},\"buckets\":[",
                h.count, h.sum
            ));
            for (j, (bound, count)) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("[{bound},{count}]"));
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }
}

/// Captures the current value of every registered metric. The capture
/// is per-metric atomic (each cell is read once), not cross-metric
/// atomic — concurrent recording may land between reads.
#[must_use]
pub fn snapshot() -> MetricsSnapshot {
    let reg = registry();
    let counters = reg
        .counters
        .lock()
        .expect("metric registry poisoned")
        .iter()
        .map(|(&name, c)| (name.to_owned(), c.get()))
        .collect();
    let gauges = reg
        .gauges
        .lock()
        .expect("metric registry poisoned")
        .iter()
        .map(|(&name, g)| (name.to_owned(), g.get()))
        .collect();
    let histograms = reg
        .histograms
        .lock()
        .expect("metric registry poisoned")
        .iter()
        .map(|(&name, h)| HistogramSnapshot {
            name: name.to_owned(),
            count: h.count(),
            sum: h.sum(),
            buckets: (0..HISTOGRAM_BUCKETS)
                .filter_map(|i| {
                    let c = h.bucket(i).unwrap_or(0);
                    (c > 0).then(|| (bucket_upper_bound(i), c))
                })
                .collect(),
        })
        .collect();
    MetricsSnapshot {
        counters,
        gauges,
        histograms,
    }
}

/// Appends `snapshot` as one NDJSON line to the file at `path`,
/// creating it if needed.
///
/// # Errors
///
/// Any I/O error from opening or writing the file.
pub fn append_ndjson(
    path: &std::path::Path,
    label: &str,
    snapshot: &MetricsSnapshot,
) -> std::io::Result<()> {
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    file.write_all(snapshot.to_json(label).as_bytes())?;
    file.write_all(b"\n")
}

fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// `f64::to_string` round-trips (shortest representation), but JSON has
/// no NaN/Infinity — those become `null`.
fn push_json_number(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&v.to_string());
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::tests::lock;
    use crate::{gauge_set, incr, observe, reset, set_enabled};

    #[test]
    fn snapshot_json_is_well_formed() {
        let _gate = lock();
        set_enabled(true);
        reset();
        incr("json.counter");
        gauge_set("json.gauge", 2.5);
        gauge_set("json.nan", f64::NAN);
        observe("json.hist", 3);
        let snap = snapshot();
        set_enabled(false);
        let line = snap.to_json("unit \"test\"");
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(!line.contains('\n'));
        assert!(line.contains("\"label\":\"unit \\\"test\\\"\""));
        assert!(line.contains("\"json.counter\":1"));
        assert!(line.contains("\"json.gauge\":2.5"));
        assert!(line.contains("\"json.nan\":null"));
        assert!(line.contains("\"json.hist\":{\"count\":1,\"sum\":3,\"buckets\":[[3,1]]}"));
    }

    #[test]
    fn snapshot_names_are_sorted() {
        let _gate = lock();
        set_enabled(true);
        reset();
        incr("sort.b");
        incr("sort.a");
        let snap = snapshot();
        set_enabled(false);
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
    }

    #[test]
    fn ndjson_sink_appends_lines() {
        let _gate = lock();
        set_enabled(true);
        reset();
        incr("ndjson.counter");
        let snap = snapshot();
        set_enabled(false);
        let path = std::env::temp_dir().join(format!("vpd_obs_test_{}.ndjson", std::process::id()));
        let _ = std::fs::remove_file(&path);
        append_ndjson(&path, "first", &snap).unwrap();
        append_ndjson(&path, "second", &snap).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"label\":\"first\""));
        assert!(lines[1].contains("\"label\":\"second\""));
    }
}
