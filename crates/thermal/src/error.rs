//! Thermal-model error type.

use std::fmt;
use vpd_numeric::NumericError;

/// Errors from thermal-mesh construction and solving.
#[derive(Clone, PartialEq, Debug)]
#[non_exhaustive]
pub enum ThermalError {
    /// A mesh parameter was non-positive or non-finite.
    InvalidParameter {
        /// Which parameter.
        what: &'static str,
        /// The rejected value (SI units).
        value: f64,
    },
    /// The power map does not match the mesh dimensions.
    ShapeMismatch {
        /// Expected `(nx, ny)`.
        expected: (usize, usize),
        /// Received `(nx, ny)`.
        found: (usize, usize),
    },
    /// The linear solve failed.
    Numeric(NumericError),
}

impl fmt::Display for ThermalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidParameter { what, value } => {
                write!(f, "invalid {what}: {value}; must be positive and finite")
            }
            Self::ShapeMismatch { expected, found } => write!(
                f,
                "power map is {}x{} but the mesh is {}x{}",
                found.0, found.1, expected.0, expected.1
            ),
            Self::Numeric(e) => write!(f, "thermal solve failed: {e}"),
        }
    }
}

impl std::error::Error for ThermalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Numeric(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NumericError> for ThermalError {
    fn from(e: NumericError) -> Self {
        Self::Numeric(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = ThermalError::ShapeMismatch {
            expected: (9, 9),
            found: (3, 3),
        };
        assert!(e.to_string().contains("3x3"));
        assert!(e.source().is_none());
        let n = ThermalError::from(NumericError::Singular { pivot: 1 });
        assert!(n.source().is_some());
    }
}
