//! Steady-state thermal modeling for vertical power delivery.
//!
//! Embedding regulators *under* the die (the paper's A2/A3) puts their
//! dissipation directly beneath the compute hotspot — a thermal cost the
//! dc-loss picture alone does not show. This crate provides the
//! substrate for that trade: a 2-D thermal resistance mesh solved with
//! the workspace's own sparse CG, plus temperature-derating models for
//! the power devices.
//!
//! ```
//! use vpd_thermal::ThermalMesh;
//! use vpd_units::{Celsius, Watts};
//!
//! # fn main() -> Result<(), vpd_thermal::ThermalError> {
//! let mesh = ThermalMesh::silicon_die_default(9, 9)?;
//! // 100 W uniformly over the die.
//! let power = vec![vec![Watts::new(100.0 / 81.0); 9]; 9];
//! let map = mesh.solve(&power)?;
//! assert!(map.max().value() > 25.0); // hotter than ambient
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod derate;
mod error;
mod mesh;

pub use derate::{DeratingModel, DeviceTechnology};
pub use error::ThermalError;
pub use mesh::{ThermalMap, ThermalMesh};
