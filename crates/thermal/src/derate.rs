//! Temperature derating of power-conversion loss.
//!
//! Conduction loss grows with junction temperature because on-resistance
//! does (`R_on(T) = R_on(25°C)·(1 + α·(T − 25))`). Silicon's mobility
//! collapse gives it roughly +0.8 %/K; GaN HEMTs derate more gently.
//! The electro-thermal loop in `vpd-core` multiplies each module's loss
//! by this factor at its local die temperature.

use vpd_units::Celsius;

/// Device technology for derating (kept separate from
/// `vpd_devices::Semiconductor` so the thermal crate stays a leaf
/// substrate).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, serde::Serialize, serde::Deserialize)]
pub enum DeviceTechnology {
    /// Silicon MOSFET.
    Si,
    /// GaN HEMT.
    GaN,
}

/// A linear conduction-loss derating model.
#[derive(Clone, Copy, PartialEq, Debug, serde::Serialize, serde::Deserialize)]
pub struct DeratingModel {
    /// Fractional R_on increase per kelvin above the 25 °C reference.
    alpha_per_k: f64,
    /// Junction temperature above which the module must shut down.
    t_max: Celsius,
}

impl DeratingModel {
    /// The standard model for a technology.
    #[must_use]
    pub fn for_technology(tech: DeviceTechnology) -> Self {
        match tech {
            DeviceTechnology::Si => Self {
                alpha_per_k: 0.008,
                t_max: Celsius::new(125.0),
            },
            DeviceTechnology::GaN => Self {
                alpha_per_k: 0.005,
                t_max: Celsius::new(150.0),
            },
        }
    }

    /// A custom model.
    #[must_use]
    pub fn new(alpha_per_k: f64, t_max: Celsius) -> Self {
        Self { alpha_per_k, t_max }
    }

    /// Loss multiplier at a junction temperature (≥ 1 above 25 °C,
    /// clamped at 1 below).
    #[must_use]
    pub fn loss_factor(&self, t_junction: Celsius) -> f64 {
        (1.0 + self.alpha_per_k * (t_junction.value() - 25.0)).max(1.0)
    }

    /// Whether the junction stays within its rating.
    #[must_use]
    pub fn within_rating(&self, t_junction: Celsius) -> bool {
        t_junction.value() <= self.t_max.value()
    }

    /// The shutdown temperature.
    #[must_use]
    pub fn t_max(&self) -> Celsius {
        self.t_max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn si_derates_faster_than_gan() {
        let si = DeratingModel::for_technology(DeviceTechnology::Si);
        let gan = DeratingModel::for_technology(DeviceTechnology::GaN);
        let hot = Celsius::new(105.0);
        assert!(si.loss_factor(hot) > gan.loss_factor(hot));
        // +0.8 %/K × 80 K = 1.64×.
        assert!((si.loss_factor(hot) - 1.64).abs() < 1e-9);
    }

    #[test]
    fn no_bonus_below_reference() {
        let si = DeratingModel::for_technology(DeviceTechnology::Si);
        assert_eq!(si.loss_factor(Celsius::new(0.0)), 1.0);
        assert_eq!(si.loss_factor(Celsius::new(25.0)), 1.0);
    }

    #[test]
    fn rating_checks() {
        let si = DeratingModel::for_technology(DeviceTechnology::Si);
        assert!(si.within_rating(Celsius::new(125.0)));
        assert!(!si.within_rating(Celsius::new(126.0)));
        let gan = DeratingModel::for_technology(DeviceTechnology::GaN);
        assert!(gan.within_rating(Celsius::new(150.0)));
    }

    #[test]
    fn custom_model() {
        let m = DeratingModel::new(0.01, Celsius::new(100.0));
        assert!((m.loss_factor(Celsius::new(75.0)) - 1.5).abs() < 1e-12);
        assert_eq!(m.t_max(), Celsius::new(100.0));
    }
}
