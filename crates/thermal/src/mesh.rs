//! 2-D steady-state thermal resistance mesh.
//!
//! Each cell exchanges heat laterally with its 4-neighbors (silicon
//! spreading) and vertically with the heatsink/ambient. The resulting
//! conductance system `G·T = P + G_v·T_amb` is symmetric positive
//! definite and solved with the workspace conjugate-gradient kernel.

use crate::ThermalError;
use vpd_numeric::{conjugate_gradient, CgSettings, CooMatrix};
use vpd_units::{Celsius, Watts};

/// A rectangular thermal mesh.
#[derive(Clone, Copy, PartialEq, Debug, serde::Serialize, serde::Deserialize)]
pub struct ThermalMesh {
    nx: usize,
    ny: usize,
    /// Lateral (cell-to-cell) thermal conductance, W/K.
    lateral_conductance: f64,
    /// Vertical (cell-to-heatsink) thermal conductance, W/K.
    vertical_conductance: f64,
    /// Heatsink/ambient temperature.
    ambient: Celsius,
}

impl ThermalMesh {
    /// A mesh with explicit conductances.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError::InvalidParameter`] for non-positive
    /// dimensions or conductances.
    pub fn new(
        nx: usize,
        ny: usize,
        lateral_conductance: f64,
        vertical_conductance: f64,
        ambient: Celsius,
    ) -> Result<Self, ThermalError> {
        if nx == 0 || ny == 0 {
            return Err(ThermalError::InvalidParameter {
                what: "mesh dimension",
                value: 0.0,
            });
        }
        for (what, v) in [
            ("lateral conductance", lateral_conductance),
            ("vertical conductance", vertical_conductance),
        ] {
            if !(v.is_finite() && v > 0.0) {
                return Err(ThermalError::InvalidParameter { what, value: v });
            }
        }
        Ok(Self {
            nx,
            ny,
            lateral_conductance,
            vertical_conductance,
            ambient,
        })
    }

    /// A silicon die with embedded/microchannel cooling, 25 °C coolant:
    /// lateral spreading through 0.5 mm of silicon (k ≈ 150 W/m·K) and
    /// an effective 20 W/cm²·K vertical stack — the class of cooling a
    /// 2 A/mm² (200 W/cm²) system requires. Conductances scale with the
    /// cell size of a 500 mm² die divided into `nx × ny` cells.
    ///
    /// # Errors
    ///
    /// As for [`ThermalMesh::new`].
    pub fn silicon_die_default(nx: usize, ny: usize) -> Result<Self, ThermalError> {
        if nx == 0 || ny == 0 {
            return Err(ThermalError::InvalidParameter {
                what: "mesh dimension",
                value: 0.0,
            });
        }
        let die_area_m2 = 500e-6; // 500 mm²
        let cell_area = die_area_m2 / (nx * ny) as f64;
        let k_si = 150.0; // W/(m·K)
        let die_thickness = 0.5e-3;
        // Lateral: k·A_cross/L with A_cross = pitch × thickness, L = pitch.
        let lateral = k_si * die_thickness; // pitch cancels
                                            // Vertical: 20 W/(cm²·K) = 2e5 W/(m²·K) effective microchannel stack.
        let vertical = 2.0e5 * cell_area;
        Self::new(nx, ny, lateral, vertical, Celsius::new(25.0))
    }

    /// Mesh width in cells.
    #[must_use]
    pub const fn nx(&self) -> usize {
        self.nx
    }

    /// Mesh height in cells.
    #[must_use]
    pub const fn ny(&self) -> usize {
        self.ny
    }

    /// The ambient (coolant) temperature.
    #[must_use]
    pub fn ambient(&self) -> Celsius {
        self.ambient
    }

    /// Solves the steady-state temperature field for a per-cell power
    /// map.
    ///
    /// # Errors
    ///
    /// * [`ThermalError::ShapeMismatch`] when the map doesn't match the
    ///   mesh.
    /// * [`ThermalError::Numeric`] if CG fails to converge.
    // Laplacian stamping indexes the power map and the flat node id in
    // lockstep, matching the textbook form.
    #[allow(clippy::needless_range_loop)]
    pub fn solve(&self, power: &[Vec<Watts>]) -> Result<ThermalMap, ThermalError> {
        if power.len() != self.ny || power.iter().any(|row| row.len() != self.nx) {
            return Err(ThermalError::ShapeMismatch {
                expected: (self.nx, self.ny),
                found: (power.first().map_or(0, Vec::len), power.len()),
            });
        }
        let n = self.nx * self.ny;
        let mut coo = CooMatrix::new(n, n);
        let mut rhs = vec![0.0; n];
        let gl = self.lateral_conductance;
        let gv = self.vertical_conductance;
        for y in 0..self.ny {
            for x in 0..self.nx {
                let i = y * self.nx + x;
                let mut diag = gv;
                if x + 1 < self.nx {
                    let j = i + 1;
                    coo.push(i, j, -gl);
                    coo.push(j, i, -gl);
                    diag += gl;
                }
                if x > 0 {
                    diag += gl;
                }
                if y + 1 < self.ny {
                    let j = i + self.nx;
                    coo.push(i, j, -gl);
                    coo.push(j, i, -gl);
                    diag += gl;
                }
                if y > 0 {
                    diag += gl;
                }
                coo.push(i, i, diag);
                rhs[i] = power[y][x].value() + gv * self.ambient.value();
            }
        }
        let (t, _) = conjugate_gradient(&coo.to_csr(), &rhs, &CgSettings::default())?;
        let temps = (0..self.ny)
            .map(|y| {
                (0..self.nx)
                    .map(|x| Celsius::new(t[y * self.nx + x]))
                    .collect()
            })
            .collect();
        Ok(ThermalMap { temps })
    }
}

/// A solved temperature field.
#[derive(Clone, PartialEq, Debug)]
pub struct ThermalMap {
    temps: Vec<Vec<Celsius>>,
}

impl ThermalMap {
    /// Temperature of cell `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics when the coordinate lies outside the mesh.
    #[must_use]
    pub fn at(&self, x: usize, y: usize) -> Celsius {
        self.temps[y][x]
    }

    /// Hottest cell.
    #[must_use]
    pub fn max(&self) -> Celsius {
        self.temps
            .iter()
            .flatten()
            .copied()
            .fold(Celsius::new(f64::NEG_INFINITY), Celsius::max)
    }

    /// Area-average temperature.
    #[must_use]
    pub fn mean(&self) -> Celsius {
        let n = (self.temps.len() * self.temps[0].len()) as f64;
        Celsius::new(self.temps.iter().flatten().map(|t| t.value()).sum::<f64>() / n)
    }

    /// The full field, row-major.
    #[must_use]
    pub fn cells(&self) -> &[Vec<Celsius>] {
        &self.temps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn uniform_power_gives_uniformish_field() {
        let mesh = ThermalMesh::silicon_die_default(9, 9).unwrap();
        let p = vec![vec![Watts::new(1.0); 9]; 9];
        let map = mesh.solve(&p).unwrap();
        // All cells identical by symmetry + uniformity (no boundary
        // heat loss laterally → exactly uniform).
        let t00 = map.at(0, 0).value();
        let t44 = map.at(4, 4).value();
        assert!((t00 - t44).abs() < 1e-6);
        // Rise = P/G_v per cell.
        let mesh_gv = 2.0e5 * (500e-6 / 81.0);
        let expected = 25.0 + 1.0 / mesh_gv;
        assert!((t44 - expected).abs() < 1e-6);
    }

    #[test]
    fn hotspot_is_hotter_than_edge() {
        let mesh = ThermalMesh::silicon_die_default(11, 11).unwrap();
        let mut p = vec![vec![Watts::new(0.5); 11]; 11];
        p[5][5] = Watts::new(20.0);
        let map = mesh.solve(&p).unwrap();
        assert!(map.at(5, 5).value() > map.at(0, 0).value() + 5.0);
        assert!(map.max().value() > map.mean().value());
    }

    #[test]
    fn lateral_spreading_smooths_the_peak() {
        let hot = |lateral: f64| {
            let mesh = ThermalMesh::new(11, 11, lateral, 0.03, Celsius::new(25.0)).unwrap();
            let mut p = vec![vec![Watts::new(0.2); 11]; 11];
            p[5][5] = Watts::new(10.0);
            mesh.solve(&p).unwrap().max().value()
        };
        assert!(hot(0.01) > hot(1.0), "more spreading, cooler peak");
    }

    #[test]
    fn paper_scale_sanity() {
        // 1 kW over a 500 mm² die with the hotspot profile: peak die
        // temperature lands in a plausible high-performance band.
        let n = 25;
        let mesh = ThermalMesh::silicon_die_default(n, n).unwrap();
        // Rough hotspot: half the power within the center 5x5.
        let mut p = vec![vec![Watts::new(500.0 / (n * n - 25) as f64); n]; n];
        for row in p.iter_mut().take(15).skip(10) {
            for cell in row.iter_mut().take(15).skip(10) {
                *cell = Watts::new(500.0 / 25.0);
            }
        }
        let map = mesh.solve(&p).unwrap();
        let peak = map.max().value();
        assert!(
            (55.0..160.0).contains(&peak),
            "peak {peak:.0} °C out of plausible band"
        );
    }

    #[test]
    fn shape_mismatch_rejected() {
        let mesh = ThermalMesh::silicon_die_default(4, 4).unwrap();
        let p = vec![vec![Watts::new(1.0); 3]; 3];
        assert!(matches!(
            mesh.solve(&p),
            Err(ThermalError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(ThermalMesh::new(0, 5, 1.0, 1.0, Celsius::new(25.0)).is_err());
        assert!(ThermalMesh::new(5, 5, -1.0, 1.0, Celsius::new(25.0)).is_err());
        assert!(ThermalMesh::silicon_die_default(0, 3).is_err());
    }

    proptest! {
        /// Superposition: the field of (P1 + P2) equals field(P1) +
        /// field(P2) − ambient offset (the system is linear).
        #[test]
        fn prop_superposition(
            p1 in 0.1_f64..5.0,
            p2 in 0.1_f64..5.0,
            x in 0_usize..5,
            y in 0_usize..5,
        ) {
            let mesh = ThermalMesh::silicon_die_default(5, 5).unwrap();
            let zero = vec![vec![Watts::ZERO; 5]; 5];
            let mut m1 = zero.clone();
            m1[y][x] = Watts::new(p1);
            let mut m2 = zero.clone();
            m2[2][2] = Watts::new(p2);
            let mut m12 = m1.clone();
            m12[2][2] += Watts::new(p2);
            let t1 = mesh.solve(&m1).unwrap();
            let t2 = mesh.solve(&m2).unwrap();
            let t12 = mesh.solve(&m12).unwrap();
            for cy in 0..5 {
                for cx in 0..5 {
                    let lhs = t12.at(cx, cy).value();
                    let rhs = t1.at(cx, cy).value() + t2.at(cx, cy).value() - 25.0;
                    prop_assert!((lhs - rhs).abs() < 1e-6);
                }
            }
        }
    }
}
