//! Line transports: stdio (tests, `vpd serve --stdio`) and a
//! **multiplexed** nonblocking TCP loop (`vpd serve`), plus the thin
//! [`call`] client used by `vpd call`.
//!
//! Both transports share one shape: read a request line, admit it (or
//! shed it), submit it to the bounded [`WorkerPool`], and let the
//! worker write the response line. Every accepted line gets **exactly
//! one** terminal response line — rejections included — so clients can
//! count instead of guessing.
//!
//! # Multiplexing
//!
//! TCP connections are served by **one** event-loop thread over
//! nonblocking sockets: an accept burst, then a read burst per
//! connection, splitting complete lines out of per-connection buffers.
//! Ten thousand idle clients therefore cost ten thousand small buffers
//! — not ten thousand threads. Workers write responses through a
//! connection's shared writer (a [`std::net::TcpStream`] clone wrapped
//! in a bounded retry loop, since the fd is nonblocking); a writer that
//! stays blocked past its budget marks the connection dead and drops
//! further bytes, so a stalled client cannot wedge a worker.
//!
//! # Admission control
//!
//! Overload degrades predictably instead of queueing unboundedly:
//!
//! * a full bounded queue rejects with `queue_full` (as before), and
//! * a request carrying `deadline_ms` that cannot meet it — estimated
//!   queue wait (EMA of recent service times × queue depth / workers)
//!   exceeding the budget — is **shed at admission** with the typed
//!   `shed` code, before it wastes queue space it is doomed to time out
//!   in. Requests without deadlines are never shed, and an idle queue
//!   never sheds (so a zero-deadline probe still reaches the dequeue
//!   check and fails deterministically there).
//!
//! # Batched block solves
//!
//! A worker that dequeues a `sharing_sweep` request pulls queued
//! requests sharing the same `(placement, modules)` compiled plan out
//! of the queue ([`WorkerScope::take_matching`]) and dispatches them as
//! **one** multi-RHS block solve — bitwise-identical per request to
//! sequential dispatch (see the engine docs). Batching is bounded by
//! `max_batch` requests and [`MAX_BATCH_COLUMNS`] total columns.
//!
//! Shutdown semantics (see DESIGN §12/§15):
//!
//! * A `shutdown` request is acknowledged, then the pool **drains**:
//!   in-flight requests (batches and streams included) complete and
//!   their responses are written; queued requests are handed back and
//!   answered with `{"code":"draining"}`; the listener closes.
//! * End of input (stdio EOF / client disconnect) **finishes** instead:
//!   everything already accepted runs to completion. On TCP, a single
//!   client hanging up does not stop the server; only a `shutdown`
//!   request (or killing the process) does. The workspace forbids
//!   `unsafe`, so no signal handler is installed — drive shutdown
//!   through the protocol.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::engine::Dispatcher;
use crate::pool::{SubmitError, WorkerPool, WorkerScope};
use crate::proto::{ErrorCode, Request, Response, Work, PROTOCOL_VERSION};
use vpd_core::{Architecture, VrPlacement};
use vpd_report::Json;

/// Ceiling on the total right-hand-side columns one batched block
/// solve may accumulate across coalesced requests.
pub const MAX_BATCH_COLUMNS: usize = 1024;

/// A connection buffering more than this many bytes without a newline
/// is answered with a parse error and closed.
const MAX_LINE_BYTES: usize = 4 << 20;

/// How long a worker retries a nonblocking connection write before
/// declaring the client dead.
const WRITE_BUDGET: Duration = Duration::from_secs(5);

/// Event-loop sleep when an iteration made no progress.
const IDLE_POLL: Duration = Duration::from_micros(200);

/// Service tuning knobs; the CLI flags map onto these 1:1.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Worker threads executing analyses (min 1).
    pub workers: usize,
    /// Bounded queue depth; a full queue rejects with `queue_full`.
    pub queue_depth: usize,
    /// Scenario-cache capacity in compiled entries (0 disables).
    pub cache_capacity: usize,
    /// Most requests one batched block solve may coalesce (min 1;
    /// 1 disables batching).
    pub max_batch: usize,
    /// How long the shed estimator's service-time EMA stays trusted
    /// after the last completion. Past this window the estimate is
    /// treated as cold: post-idle requests are admitted rather than
    /// shed on stale history, and the next completion re-seeds the EMA
    /// instead of blending into it.
    pub shed_staleness: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_depth: 64,
            cache_capacity: 32,
            max_batch: 16,
            shed_staleness: Duration::from_secs(5),
        }
    }
}

/// One queued unit: the parsed request plus where its response goes.
struct Job<W: Write + Send + 'static> {
    request: Request,
    accepted_at: Instant,
    writer: Arc<Mutex<W>>,
}

fn write_line<W: Write>(writer: &Mutex<W>, response: &Response) {
    // Serialize outside the lock and write the line in one call:
    // formatted IO straight onto an unbuffered socket would issue one
    // syscall per format fragment.
    let mut line = response.to_json().to_string();
    line.push('\n');
    let mut w = writer.lock().expect("response writer poisoned");
    // A torn-down connection makes writes fail; that request's client
    // is gone, which is not the server's problem.
    let _ = w.write_all(line.as_bytes());
    let _ = w.flush();
}

/// Checks a dequeued job's deadline; answers and consumes it on
/// expiry. Returns the job back when it is still within budget.
fn check_deadline<W: Write + Send + 'static>(job: Job<W>) -> Option<Job<W>> {
    let Some(budget_ms) = job.request.deadline_ms else {
        return Some(job);
    };
    let waited = job.accepted_at.elapsed();
    // `>=` so a zero deadline deterministically expires (useful for
    // tests and as an explicit "reject unless immediate" probe).
    if waited.as_millis() >= u128::from(budget_ms) {
        vpd_obs::incr("serve.rejected.deadline");
        write_line(
            &job.writer,
            &Response::error(
                job.request.id,
                ErrorCode::DeadlineExceeded,
                format!(
                    "request waited {} ms in queue, past its {budget_ms} ms deadline",
                    waited.as_millis()
                ),
            ),
        );
        return None;
    }
    Some(job)
}

fn run_job<W: Write + Send + 'static>(
    dispatcher: &Dispatcher,
    scope: &WorkerScope<'_, Job<W>>,
    job: Job<W>,
    max_batch: usize,
) {
    vpd_obs::incr("serve.requests");
    let _span = vpd_obs::span("serve.request_ns");
    if let Work::SharingSweep {
        placement, modules, ..
    } = job.request.work
    {
        run_sweep_batch(dispatcher, scope, job, placement, modules, max_batch);
        return;
    }
    let Job {
        request,
        accepted_at,
        writer,
    } = job;
    if let Work::TransientStream { arch, chunk } = request.work {
        // Streams own their deadline: the budget is re-checked between
        // chunks, so expiry mid-stream ends the stream with a typed
        // error record instead of a silent truncation.
        run_stream(
            dispatcher,
            scope.index(),
            request.id,
            arch,
            chunk,
            accepted_at,
            request.deadline_ms,
            &writer,
        );
        return;
    }
    let Some(job) = check_deadline(Job {
        request,
        accepted_at,
        writer,
    }) else {
        return;
    };
    let response = match dispatcher.dispatch_on(scope.index(), &job.request.work) {
        Ok((result, cached)) => {
            vpd_obs::incr("serve.ok");
            Response::ok(job.request.id, job.request.work.kind(), cached, result)
        }
        Err((code, message)) => {
            vpd_obs::incr("serve.errors");
            Response::error(job.request.id, code, message)
        }
    };
    write_line(&job.writer, &response);
}

/// Dispatches a dequeued `sharing_sweep` together with every queued
/// peer sharing its compiled plan: one cache check-out, one block
/// solve, one response per request. Expired members are answered with
/// `deadline_exceeded` instead of joining the solve.
fn run_sweep_batch<W: Write + Send + 'static>(
    dispatcher: &Dispatcher,
    scope: &WorkerScope<'_, Job<W>>,
    lead: Job<W>,
    placement: VrPlacement,
    modules: usize,
    max_batch: usize,
) {
    let sweep_len = |work: &Work| match work {
        Work::SharingSweep { setpoints, .. } => setpoints.len(),
        _ => 0,
    };
    let mut columns = sweep_len(&lead.request.work);
    let peers = scope.take_matching(max_batch.max(1) - 1, |j| match &j.request.work {
        Work::SharingSweep {
            placement: p,
            modules: m,
            setpoints,
        } => {
            let fits =
                *p == placement && *m == modules && columns + setpoints.len() <= MAX_BATCH_COLUMNS;
            if fits {
                columns += setpoints.len();
            }
            fits
        }
        _ => false,
    });
    // Coalesced peers skipped the pool's dequeue path; account for them
    // here so every request still counts exactly once.
    for _ in &peers {
        vpd_obs::incr("serve.requests");
    }
    let mut members = Vec::with_capacity(1 + peers.len());
    members.push(lead);
    members.extend(peers);
    let live: Vec<Job<W>> = members.into_iter().filter_map(check_deadline).collect();
    if live.is_empty() {
        return;
    }
    let sweeps: Vec<Vec<f64>> = live
        .iter()
        .map(|j| match &j.request.work {
            Work::SharingSweep { setpoints, .. } => setpoints.clone(),
            _ => unreachable!("batch members are sharing_sweep requests"),
        })
        .collect();
    let results =
        dispatcher.dispatch_sharing_sweep_batch(scope.index(), placement, modules, &sweeps);
    for (job, outcome) in live.iter().zip(results) {
        let response = match outcome {
            Ok((result, cached)) => {
                vpd_obs::incr("serve.ok");
                Response::ok(job.request.id, job.request.work.kind(), cached, result)
            }
            Err((code, message)) => {
                vpd_obs::incr("serve.errors");
                Response::error(job.request.id, code, message)
            }
        };
        write_line(&job.writer, &response);
    }
}

/// Drives one `transient_stream` request: chunk records with
/// `"done":false` and ascending `seq`, then a terminal record — the
/// summary on success, a typed error on deadline expiry or solver
/// failure. The deadline is checked before the compile/check-out and
/// again between chunks; an expired stream still returns its compiled
/// scenario to the cache (the run drops, the drop checks it back in).
#[allow(clippy::too_many_arguments)]
fn run_stream<W: Write + Send + 'static>(
    dispatcher: &Dispatcher,
    worker: usize,
    id: Option<i64>,
    arch: Architecture,
    chunk: usize,
    accepted_at: Instant,
    deadline_ms: Option<u64>,
    writer: &Mutex<W>,
) {
    let deadline_expired = |emitted: usize| -> bool {
        let Some(budget_ms) = deadline_ms else {
            return false;
        };
        let waited = accepted_at.elapsed();
        if waited.as_millis() >= u128::from(budget_ms) {
            vpd_obs::incr("serve.rejected.deadline");
            write_line(
                writer,
                &Response::error(
                    id,
                    ErrorCode::DeadlineExceeded,
                    format!(
                        "stream deadline of {budget_ms} ms expired after {emitted} chunk records"
                    ),
                ),
            );
            return true;
        }
        false
    };
    if deadline_expired(0) {
        return;
    }
    let mut run = match dispatcher.begin_transient_stream_on(worker, arch, chunk) {
        Ok(run) => run,
        Err((code, message)) => {
            vpd_obs::incr("serve.errors");
            write_line(writer, &Response::error(id, code, message));
            return;
        }
    };
    let cached = run.cached();
    let mut seq = 0usize;
    loop {
        match run.next_chunk() {
            Ok(Some(doc)) => {
                write_line(
                    writer,
                    &Response::stream(id, "transient_stream", cached, seq, false, doc),
                );
                seq += 1;
                if deadline_expired(seq) {
                    return;
                }
            }
            Ok(None) => break,
            Err((code, message)) => {
                vpd_obs::incr("serve.errors");
                write_line(writer, &Response::error(id, code, message));
                return;
            }
        }
    }
    vpd_obs::incr("serve.ok");
    write_line(
        writer,
        &Response::stream(id, "transient_stream", cached, seq, true, run.finish()),
    );
}

/// What ended a serve session.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Ended {
    /// Input exhausted; all accepted work completed.
    Eof,
    /// A `shutdown` request drained the service.
    Shutdown,
}

/// Deadline-aware load shedding: an exponential moving average of
/// recent per-request service times estimates how long a request would
/// wait behind the current queue; a deadline the estimate already
/// blows is rejected at admission with the typed `shed` code.
struct Admission {
    workers: u64,
    /// EMA of service time, nanoseconds; 0 until the first completion.
    est_ns: AtomicU64,
    /// When the EMA was last fed, as nanoseconds since `epoch`; 0 until
    /// the first completion.
    last_done_ns: AtomicU64,
    epoch: Instant,
    staleness: Duration,
}

impl Admission {
    fn new(workers: usize, staleness: Duration) -> Self {
        Self {
            workers: workers.max(1) as u64,
            est_ns: AtomicU64::new(0),
            last_done_ns: AtomicU64::new(0),
            epoch: Instant::now(),
            staleness,
        }
    }

    fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos())
            .unwrap_or(u64::MAX)
            .max(1)
    }

    /// Whether the estimate reflects traffic older than the staleness
    /// window (or no traffic at all).
    fn is_stale(&self) -> bool {
        let last = self.last_done_ns.load(Ordering::Relaxed);
        if last == 0 {
            return true;
        }
        let idle = self.now_ns().saturating_sub(last);
        u128::from(idle) > self.staleness.as_nanos()
    }

    fn record(&self, elapsed: Duration) {
        let obs = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        // The first completion after an idle gap re-seeds the EMA: the
        // pre-idle service profile is history, not a prior.
        let stale = self.is_stale();
        let old = self.est_ns.load(Ordering::Relaxed);
        let next = if stale || old == 0 {
            obs
        } else {
            (3 * (old / 4)) + obs / 4
        };
        self.est_ns.store(next.max(1), Ordering::Relaxed);
        self.last_done_ns.store(self.now_ns(), Ordering::Relaxed);
    }

    /// Estimated queue wait for a request entering behind `queued`
    /// jobs, in milliseconds. Zero until any request has completed.
    fn estimated_wait_ms(&self, queued: usize) -> u64 {
        let est = self.est_ns.load(Ordering::Relaxed);
        (est / 1_000_000).saturating_mul(queued as u64) / self.workers
    }

    /// A reject message when the request should be shed, `None` to
    /// admit. Never sheds deadline-less requests, an idle queue, or on
    /// a stale estimate — a post-idle burst must be measured before it
    /// can be shed, exactly like a cold start.
    fn should_shed(&self, queued: usize, deadline_ms: Option<u64>) -> Option<String> {
        let budget_ms = deadline_ms?;
        if queued == 0 || self.is_stale() {
            return None;
        }
        let wait_ms = self.estimated_wait_ms(queued);
        if wait_ms > budget_ms {
            Some(format!(
                "shed: estimated queue wait {wait_ms} ms exceeds the {budget_ms} ms deadline \
                 ({queued} queued); retry with backoff or a larger budget"
            ))
        } else {
            None
        }
    }
}

/// Builds the worker pool around a shared dispatcher.
fn build_pool<W: Write + Send + 'static>(
    dispatcher: &Arc<Dispatcher>,
    admission: &Arc<Admission>,
    cfg: &ServeConfig,
) -> WorkerPool<Job<W>> {
    let dispatcher = Arc::clone(dispatcher);
    let admission = Arc::clone(admission);
    let max_batch = cfg.max_batch.max(1);
    WorkerPool::new(
        cfg.workers,
        cfg.queue_depth,
        move |scope: &WorkerScope<'_, Job<W>>, job: Job<W>| {
            let started = Instant::now();
            run_job(&dispatcher, scope, job, max_batch);
            // Batches complete several requests in one handler pass;
            // charging the whole pass keeps the estimate conservative.
            admission.record(started.elapsed());
        },
    )
}

/// Handles one request line; returns `true` when the line was a
/// `shutdown` request (the caller then drains).
fn handle_line<W: Write + Send + 'static>(
    line: &str,
    pool: &WorkerPool<Job<W>>,
    admission: &Admission,
    writer: &Arc<Mutex<W>>,
) -> bool {
    if line.trim().is_empty() {
        return false;
    }
    let request = match Request::parse_line(line) {
        Ok(req) => req,
        Err(e) => {
            vpd_obs::incr("serve.rejected.invalid");
            write_line(writer, &Response::error(e.id, e.code, e.message));
            return false;
        }
    };
    if request.work == Work::Shutdown {
        return true;
    }
    if let Some(message) = admission.should_shed(pool.queued(), request.deadline_ms) {
        vpd_obs::incr("serve.shed.deadline");
        write_line(
            writer,
            &Response::error(request.id, ErrorCode::Shed, message),
        );
        return false;
    }
    let job = Job {
        request,
        accepted_at: Instant::now(),
        writer: Arc::clone(writer),
    };
    if let Err(err) = pool.submit(job) {
        let (job, code, message) = match err {
            SubmitError::QueueFull(job) => {
                vpd_obs::incr("serve.rejected.queue_full");
                vpd_obs::incr("serve.shed.queue_full");
                (job, ErrorCode::QueueFull, "queue is full; retry later")
            }
            SubmitError::Draining(job) => {
                vpd_obs::incr("serve.rejected.draining");
                vpd_obs::incr("serve.shed.draining");
                (job, ErrorCode::Draining, "server is draining")
            }
        };
        write_line(writer, &Response::error(job.request.id, code, message));
    }
    false
}

/// Acknowledges a shutdown request and drains the pool, answering every
/// pulled-back queued job with a typed `draining` rejection.
fn drain_with_rejections<W: Write + Send + 'static>(
    id: Option<i64>,
    pool: &WorkerPool<Job<W>>,
    writer: &Arc<Mutex<W>>,
) {
    write_line(
        writer,
        &Response::ok(
            id,
            "shutdown",
            false,
            vpd_report::Json::obj([("command", vpd_report::Json::from("shutdown"))]),
        ),
    );
    for job in pool.drain() {
        vpd_obs::incr("serve.rejected.draining");
        vpd_obs::incr("serve.shed.draining");
        write_line(
            &job.writer,
            &Response::error(
                job.request.id,
                ErrorCode::Draining,
                "server is draining for shutdown",
            ),
        );
    }
}

/// Serves one NDJSON session over arbitrary line I/O — the stdio mode,
/// and the deterministic harness the shutdown tests drive.
///
/// Returns the writer (all workers joined, so it is exclusively owned
/// again) plus how the session ended.
///
/// # Errors
///
/// Propagates read errors from `reader`.
pub fn serve_lines<R, W>(reader: R, writer: W, cfg: &ServeConfig) -> std::io::Result<(W, Ended)>
where
    R: BufRead,
    W: Write + Send + 'static,
{
    let dispatcher = Arc::new(Dispatcher::with_workers(cfg.cache_capacity, cfg.workers));
    let admission = Arc::new(Admission::new(cfg.workers, cfg.shed_staleness));
    let writer = Arc::new(Mutex::new(writer));
    let pool = build_pool(&dispatcher, &admission, cfg);
    let mut ended = Ended::Eof;
    for line in reader.lines() {
        let line = line?;
        if handle_line(&line, &pool, &admission, &writer) {
            let id = Request::parse_line(&line).ok().and_then(|r| r.id);
            drain_with_rejections(id, &pool, &writer);
            ended = Ended::Shutdown;
            break;
        }
    }
    if ended == Ended::Eof {
        pool.finish();
    }
    let writer = Arc::into_inner(writer)
        .expect("workers joined; no writer clones remain")
        .into_inner()
        .expect("response writer poisoned");
    Ok((writer, ended))
}

/// A worker-side writer over a nonblocking connection: retries
/// `WouldBlock` in a bounded loop, and past the budget (or on any hard
/// error) marks the connection dead and swallows further bytes so a
/// stalled or vanished client cannot wedge a worker thread.
struct ConnWriter {
    stream: TcpStream,
    dead: bool,
}

impl Write for ConnWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if self.dead || buf.is_empty() {
            return Ok(buf.len());
        }
        let started = Instant::now();
        loop {
            match self.stream.write(buf) {
                Ok(0) => {
                    self.dead = true;
                    return Ok(buf.len());
                }
                Ok(n) => return Ok(n),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if started.elapsed() > WRITE_BUDGET {
                        self.dead = true;
                        return Ok(buf.len());
                    }
                    std::thread::sleep(Duration::from_micros(100));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.dead = true;
                    return Ok(buf.len());
                }
            }
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        if !self.dead {
            let _ = self.stream.flush();
        }
        Ok(())
    }
}

/// One multiplexed connection's event-loop state.
struct Conn {
    stream: TcpStream,
    writer: Arc<Mutex<ConnWriter>>,
    buf: Vec<u8>,
    closed: bool,
}

impl Conn {
    fn accept(stream: TcpStream) -> std::io::Result<Self> {
        // One-line requests and responses are far smaller than a
        // segment; Nagle + delayed ACK would add ~40 ms per turn.
        let _ = stream.set_nodelay(true);
        stream.set_nonblocking(true)?;
        let writer = ConnWriter {
            stream: stream.try_clone()?,
            dead: false,
        };
        Ok(Self {
            stream,
            writer: Arc::new(Mutex::new(writer)),
            buf: Vec::new(),
            closed: false,
        })
    }
}

/// A bound TCP service, not yet accepting.
pub struct Server {
    listener: TcpListener,
    cfg: ServeConfig,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:7171`, or port 0 for an ephemeral
    /// port — see [`Server::local_addr`]).
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(addr: &str, cfg: ServeConfig) -> std::io::Result<Self> {
        Ok(Self {
            listener: TcpListener::bind(addr)?,
            cfg,
        })
    }

    /// The actually-bound address.
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> std::io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Accepts and serves connections on one multiplexed event-loop
    /// thread until a `shutdown` request arrives, then drains and
    /// returns.
    ///
    /// # Errors
    ///
    /// Propagates accept-loop failures.
    pub fn run(self) -> std::io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let dispatcher = Arc::new(Dispatcher::with_workers(
            self.cfg.cache_capacity,
            self.cfg.workers,
        ));
        let admission = Arc::new(Admission::new(self.cfg.workers, self.cfg.shed_staleness));
        let pool: WorkerPool<Job<ConnWriter>> = build_pool(&dispatcher, &admission, &self.cfg);
        let mut conns: Vec<Conn> = Vec::new();
        let mut scratch = [0u8; 64 * 1024];
        loop {
            let mut progress = false;
            // Accept burst.
            loop {
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        vpd_obs::incr("serve.connections");
                        if let Ok(conn) = Conn::accept(stream) {
                            conns.push(conn);
                        }
                        progress = true;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(e) => return Err(e),
                }
            }
            // Read burst per connection, splitting complete lines.
            for conn in &mut conns {
                loop {
                    match conn.stream.read(&mut scratch) {
                        Ok(0) => {
                            // EOF: a trailing unterminated line still
                            // counts (matches BufRead::lines).
                            if !conn.buf.is_empty() {
                                let line = String::from_utf8_lossy(&conn.buf).into_owned();
                                conn.buf.clear();
                                if handle_line(&line, &pool, &admission, &conn.writer) {
                                    let id = Request::parse_line(&line).ok().and_then(|r| r.id);
                                    drain_with_rejections(id, &pool, &conn.writer);
                                    return Ok(());
                                }
                            }
                            conn.closed = true;
                            break;
                        }
                        Ok(n) => {
                            progress = true;
                            conn.buf.extend_from_slice(&scratch[..n]);
                            let mut start = 0usize;
                            while let Some(pos) = conn.buf[start..].iter().position(|&b| b == b'\n')
                            {
                                let line = String::from_utf8_lossy(&conn.buf[start..start + pos])
                                    .into_owned();
                                start += pos + 1;
                                if handle_line(&line, &pool, &admission, &conn.writer) {
                                    let id = Request::parse_line(&line).ok().and_then(|r| r.id);
                                    drain_with_rejections(id, &pool, &conn.writer);
                                    return Ok(());
                                }
                            }
                            conn.buf.drain(..start);
                            if conn.buf.len() > MAX_LINE_BYTES {
                                vpd_obs::incr("serve.rejected.invalid");
                                write_line(
                                    &conn.writer,
                                    &Response::error(
                                        None,
                                        ErrorCode::Parse,
                                        "request line exceeds the size limit",
                                    ),
                                );
                                conn.closed = true;
                                break;
                            }
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                        Err(_) => {
                            conn.closed = true;
                            break;
                        }
                    }
                }
            }
            // A closed connection's pending responses keep flowing:
            // workers hold the writer clone until their jobs finish.
            conns.retain(|c| !c.closed);
            if !progress {
                std::thread::sleep(IDLE_POLL);
            }
        }
    }
}

/// Sends request lines over one connection and reads one **terminal**
/// response line per request — the `vpd call` client.
///
/// The first response's `version` field is checked against this
/// client's [`PROTOCOL_VERSION`]: a missing or different version fails
/// fast with `InvalidData` instead of misparsing a foreign protocol.
///
/// When `shutdown` is true a `{"kind":"shutdown"}` request is appended
/// after the payload lines. Responses arrive in completion order; match
/// them up by `id`. Streaming requests (`transient_stream`) emit chunk
/// records carrying `"done":false` before their terminal record — the
/// chunks are collected into the returned lines but do not count toward
/// the per-request tally, so a stream of any length still satisfies
/// exactly one expected response.
///
/// # Errors
///
/// Propagates connection and I/O failures. A clean server-side close
/// before all terminal responses arrive yields `UnexpectedEof`; a
/// protocol-version mismatch yields `InvalidData`.
pub fn call(addr: &str, lines: &[String], shutdown: bool) -> std::io::Result<Vec<String>> {
    let stream = TcpStream::connect(addr)?;
    let _ = stream.set_nodelay(true);
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut expected = 0usize;
    for line in lines {
        if line.trim().is_empty() {
            continue;
        }
        writeln!(writer, "{line}")?;
        expected += 1;
    }
    if shutdown {
        writer.write_all(b"{\"kind\":\"shutdown\",\"id\":-1}\n")?;
        expected += 1;
    }
    writer.flush()?;
    let mut responses = Vec::with_capacity(expected);
    let mut terminal = 0usize;
    let mut version_checked = false;
    let mut buf = String::new();
    while terminal < expected {
        buf.clear();
        let n = reader.read_line(&mut buf)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                format!("server closed after {terminal} of {expected} responses"),
            ));
        }
        let text = buf.trim_end().to_owned();
        let doc = Json::parse(&text).ok();
        if !version_checked {
            match doc
                .as_ref()
                .and_then(|j| j.get("version"))
                .and_then(Json::as_i64)
            {
                Some(v) if v == PROTOCOL_VERSION => version_checked = true,
                Some(v) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!(
                            "server speaks protocol version {v}; this client speaks \
                             {PROTOCOL_VERSION} — upgrade the older side"
                        ),
                    ))
                }
                None => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!(
                            "server response carries no protocol version (pre-v{PROTOCOL_VERSION} \
                             server); upgrade the server or use a matching client"
                        ),
                    ))
                }
            }
        }
        // A chunk record (`"done":false`) belongs to a still-open
        // stream; anything else — plain results, errors, and stream
        // summaries (`"done":true`) — terminates its request.
        let is_chunk = doc.is_some_and(|j| matches!(j.get("done"), Some(Json::Bool(false))));
        if !is_chunk {
            terminal += 1;
        }
        responses.push(text);
    }
    Ok(responses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn serve_script(lines: &[&str], cfg: &ServeConfig) -> (Vec<String>, Ended) {
        let input = lines.join("\n");
        let (out, ended) =
            serve_lines(Cursor::new(input), Vec::<u8>::new(), cfg).expect("serve session");
        let text = String::from_utf8(out).expect("utf8 output");
        (text.lines().map(str::to_owned).collect(), ended)
    }

    #[test]
    fn stdio_session_answers_every_line_and_finishes_on_eof() {
        let cfg = ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        };
        let (out, ended) = serve_script(
            &[
                r#"{"id":1,"kind":"ping"}"#,
                "",
                r#"{"id":2,"kind":"sharing","params":{"modules":12}}"#,
                "not json",
                r#"{"id":4,"kind":"stats"}"#,
            ],
            &cfg,
        );
        assert_eq!(ended, Ended::Eof);
        assert_eq!(out.len(), 4, "one response per non-empty line: {out:?}");
        // The reader thread answers parse errors inline while the
        // worker writes results, so only membership is deterministic —
        // clients match responses by id, and so does this test.
        let ping = out.iter().find(|l| l.contains(r#""id":1"#)).unwrap();
        assert!(ping.contains(r#""ok":true"#) && ping.contains(r#""command":"ping""#));
        assert!(ping.contains(r#""version":2"#), "{ping}");
        let sharing = out.iter().find(|l| l.contains(r#""id":2"#)).unwrap();
        assert!(sharing.contains(r#""command":"sharing""#), "{sharing}");
        assert!(out.iter().any(|l| l.contains(r#""code":"parse""#)));
        let stats = out.iter().find(|l| l.contains(r#""id":4"#)).unwrap();
        assert!(stats.contains(r#""command":"stats""#));
        assert!(stats.contains(r#""batch""#), "{stats}");
    }

    #[test]
    fn shutdown_request_acks_then_rejects_queued_work() {
        // Single worker and a script whose first request occupies it
        // long enough for the rest to queue is inherently racy — so
        // drive the deterministic half here (shutdown first, work
        // after) and leave the in-flight half to the pool tests.
        let cfg = ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        };
        let (out, ended) = serve_script(
            &[
                r#"{"id":10,"kind":"shutdown"}"#,
                r#"{"id":11,"kind":"ping"}"#,
                r#"{"id":12,"kind":"ping"}"#,
            ],
            &cfg,
        );
        assert_eq!(ended, Ended::Shutdown);
        // The ack is written; the lines after shutdown are never read.
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].contains(r#""id":10"#) && out[0].contains(r#""kind":"shutdown""#));
    }

    #[test]
    fn transient_stream_emits_ordered_chunks_then_a_summary() {
        let cfg = ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        };
        let (out, ended) = serve_script(
            &[r#"{"id":7,"kind":"transient_stream","params":{"arch":"a2","chunk":2000}}"#],
            &cfg,
        );
        assert_eq!(ended, Ended::Eof);
        // 60 µs at 10 ns is 6001 samples: chunks of 2000, 2000, 2000,
        // and 1, then the summary record.
        assert_eq!(out.len(), 5, "{}", out.len());
        for (i, line) in out[..4].iter().enumerate() {
            assert!(line.contains(&format!(r#""seq":{i}"#)), "{line}");
            assert!(line.contains(r#""done":false"#), "{line}");
            assert!(line.contains(r#""id":7"#), "{line}");
        }
        assert!(out[4].contains(r#""done":true"#), "{}", out[4]);
        assert!(out[4].contains(r#""seq":4"#), "{}", out[4]);
        assert!(out[4].contains(r#""command":"transient_stream""#));
        assert!(out[4].contains(r#""samples":6001"#) && out[4].contains(r#""chunks":4"#));
    }

    #[test]
    fn expired_stream_deadline_yields_a_typed_error_record() {
        let cfg = ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        };
        // A zero budget has always expired by the stream's first
        // deadline check: the stream terminates with one typed error
        // record and zero chunk records.
        let (out, _) = serve_script(
            &[r#"{"id":8,"kind":"transient_stream","params":{"arch":"a0"},"deadline_ms":0}"#],
            &cfg,
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(
            out[0].contains(r#""code":"deadline_exceeded""#) && out[0].contains("0 chunk records"),
            "{}",
            out[0]
        );
    }

    #[test]
    fn deadline_zero_rejects_at_dequeue() {
        let cfg = ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        };
        // A zero deadline with an idle queue is never shed at
        // admission; it reaches the dequeue check and expires there.
        let (out, _) = serve_script(&[r#"{"id":5,"kind":"ping","deadline_ms":0}"#], &cfg);
        assert_eq!(out.len(), 1);
        assert!(
            out[0].contains(r#""code":"deadline_exceeded""#),
            "{}",
            out[0]
        );
    }

    #[test]
    fn admission_sheds_only_doomed_deadlines_behind_a_queue() {
        let fresh = Duration::from_secs(60);
        let a = Admission::new(1, fresh);
        // No completions yet: never shed.
        assert!(a.should_shed(10, Some(1)).is_none());
        // 20 ms EMA, 4 queued → ~80 ms estimated wait.
        a.record(Duration::from_millis(20));
        assert_eq!(a.estimated_wait_ms(4), 80);
        assert!(
            a.should_shed(4, Some(50)).is_some(),
            "50 ms budget is doomed"
        );
        assert!(a.should_shed(4, Some(100)).is_none(), "100 ms budget fits");
        // Deadline-less requests and idle queues are never shed.
        assert!(a.should_shed(4, None).is_none());
        assert!(a.should_shed(0, Some(1)).is_none());
        // Two workers halve the wait.
        let a2 = Admission::new(2, fresh);
        a2.record(Duration::from_millis(20));
        assert_eq!(a2.estimated_wait_ms(4), 40);
        // The EMA tracks a shifting service time.
        a.record(Duration::from_millis(4));
        let est = a.estimated_wait_ms(1);
        assert!(est < 20, "EMA moved toward the faster observation: {est}");
    }

    #[test]
    fn stale_estimates_never_shed_and_the_next_completion_reseeds() {
        let a = Admission::new(1, Duration::from_millis(30));
        // A slow burst builds a large estimate; within the staleness
        // window it sheds a doomed deadline as before.
        a.record(Duration::from_millis(50));
        assert!(a.should_shed(4, Some(10)).is_some());
        // Idle past the window: the estimate is history, not a prior —
        // the first post-idle request is admitted, not shed.
        std::thread::sleep(Duration::from_millis(60));
        assert!(
            a.should_shed(4, Some(10)).is_none(),
            "a stale estimate must not shed post-idle requests"
        );
        // The first post-idle completion re-seeds the EMA instead of
        // blending into the stale value: 50 ms ⋅ ¾ would leave ~38 ms,
        // a re-seed leaves exactly the 2 ms observation.
        a.record(Duration::from_millis(2));
        assert_eq!(a.est_ns.load(Ordering::Relaxed), 2_000_000);
        assert!(a.should_shed(4, Some(10)).is_none(), "8 ms wait fits 10 ms");
        assert!(a.should_shed(4, Some(7)).is_some(), "7 ms budget is doomed");
    }
}
